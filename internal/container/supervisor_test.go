package container

import (
	"testing"
	"time"

	"ddoshield/internal/netsim"
)

func supervisedContainer(t *testing.T, cfg SupervisorConfig) (*Runtime, *Container, *Supervisor) {
	t.Helper()
	_, rt, sw := testRuntime(t)
	c, err := rt.Create(spec("sup", 20), sw, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sup := rt.Supervise(c, cfg)
	return rt, c, sup
}

func sched(rt *Runtime) func(d time.Duration) {
	return func(d time.Duration) {
		if err := rt.Network().Scheduler().RunFor(d); err != nil {
			panic(err)
		}
	}
}

func TestSupervisorRestartsCrash(t *testing.T) {
	rt, c, sup := supervisedContainer(t, SupervisorConfig{
		Policy:  RestartOnFailure,
		Backoff: time.Second,
	})
	run := sched(rt)
	c.Start()
	c.Kill()
	if c.State() != StateStopped || !c.Crashed() {
		t.Fatalf("after Kill: state=%v crashed=%v", c.State(), c.Crashed())
	}
	if !sup.RestartPending() {
		t.Fatal("no restart scheduled after crash")
	}
	run(2 * time.Second)
	if c.State() != StateRunning {
		t.Fatal("crashed container not restarted")
	}
	if sup.Restarts() != 1 {
		t.Fatalf("Restarts() = %d, want 1", sup.Restarts())
	}
}

func TestSupervisorNeverPolicy(t *testing.T) {
	rt, c, sup := supervisedContainer(t, SupervisorConfig{Policy: RestartNever})
	run := sched(rt)
	c.Start()
	c.Kill()
	run(time.Minute)
	if c.State() != StateStopped || sup.Restarts() != 0 {
		t.Fatalf("never policy restarted: state=%v restarts=%d", c.State(), sup.Restarts())
	}
}

func TestSupervisorManualStopNotRestarted(t *testing.T) {
	rt, c, sup := supervisedContainer(t, SupervisorConfig{Policy: RestartAlways})
	run := sched(rt)
	c.Start()
	c.Stop() // clean operator stop: must stay down even under "always"
	run(time.Minute)
	if c.State() != StateStopped {
		t.Fatal("manually stopped container was resurrected")
	}
	if sup.Restarts() != 0 {
		t.Fatalf("Restarts() = %d, want 0", sup.Restarts())
	}
}

func TestSupervisorManualStopCancelsPendingRestart(t *testing.T) {
	rt, c, _ := supervisedContainer(t, SupervisorConfig{
		Policy:  RestartAlways,
		Backoff: 5 * time.Second,
	})
	run := sched(rt)
	c.Start()
	c.Kill() // restart pending at +5s
	run(time.Second)
	c.Stop() // operator confirms: keep it down
	run(time.Minute)
	if c.State() != StateStopped {
		t.Fatal("pending restart resurrected a manually stopped container")
	}
	// A manual start re-arms supervision.
	c.Start()
	c.Kill()
	run(time.Minute)
	if c.State() != StateRunning {
		t.Fatal("supervision not re-armed after manual restart")
	}
}

func TestSupervisorExponentialBackoffAndCap(t *testing.T) {
	rt, c, sup := supervisedContainer(t, SupervisorConfig{
		Policy:        RestartOnFailure,
		Backoff:       time.Second,
		BackoffFactor: 2,
		MaxBackoff:    4 * time.Second,
		ResetAfter:    time.Hour, // never reset during this test
		MaxRestarts:   3,
	})
	run := sched(rt)
	s := rt.Network().Scheduler()
	c.Start()

	// Crash-loop: each restart is immediately followed by another crash.
	// Ladder: 1s, 2s, 4s (cap) — then the 4th crash exhausts MaxRestarts.
	var upAt []time.Duration
	for i := 0; i < 4; i++ {
		c.Kill()
		before := sup.Restarts()
		run(10 * time.Second)
		if sup.Restarts() > before {
			upAt = append(upAt, time.Duration(s.Now()))
		}
	}
	if len(upAt) != 3 {
		t.Fatalf("supervised restarts = %d, want 3", len(upAt))
	}
	if !sup.GaveUp() {
		t.Fatal("supervisor did not give up after MaxRestarts")
	}
	if c.State() != StateStopped {
		t.Fatal("container running after supervisor gave up")
	}
}

func TestSupervisorHealthProbeTriggersRestart(t *testing.T) {
	healthy := true
	rt, c, sup := supervisedContainer(t, SupervisorConfig{
		Policy:         RestartOnFailure,
		Backoff:        time.Second,
		Probe:          func(*Container) bool { return healthy },
		ProbeInterval:  time.Second,
		UnhealthyAfter: 3,
	})
	run := sched(rt)
	c.Start()
	run(10 * time.Second)
	if sup.UnhealthyEvents() != 0 {
		t.Fatal("healthy container marked unhealthy")
	}
	healthy = false
	run(3 * time.Second) // three consecutive failures
	if sup.UnhealthyEvents() != 1 {
		t.Fatalf("UnhealthyEvents = %d, want 1", sup.UnhealthyEvents())
	}
	if c.Crashes() == 0 {
		t.Fatal("unhealthy container was not killed")
	}
	healthy = true
	run(5 * time.Second)
	if c.State() != StateRunning || sup.Unhealthy() {
		t.Fatalf("unhealthy restart failed: state=%v unhealthy=%v", c.State(), sup.Unhealthy())
	}
}

func TestSupervisorDelayOverride(t *testing.T) {
	var draws int
	rt, c, _ := supervisedContainer(t, SupervisorConfig{
		Policy: RestartAlways,
		Delay: func(restarts int) time.Duration {
			draws++
			return 7 * time.Second
		},
	})
	run := sched(rt)
	c.Start()
	c.Kill()
	run(6 * time.Second)
	if c.State() != StateStopped {
		t.Fatal("restarted before the Delay hook's downtime elapsed")
	}
	run(2 * time.Second)
	if c.State() != StateRunning || draws != 1 {
		t.Fatalf("Delay override not honoured: state=%v draws=%d", c.State(), draws)
	}
}
