package experiments

import (
	"fmt"
	"time"

	"ddoshield/internal/faults"
	"ddoshield/internal/ids"
	"ddoshield/internal/ml/metrics"
	"ddoshield/internal/parallel"
	"ddoshield/internal/report"
	"ddoshield/internal/sysmon"
)

// ResilienceConfig parameterizes the fault-intensity sweep.
type ResilienceConfig struct {
	// Intensities are the fault intensities to sweep (default 0, 0.25,
	// 0.5, 1). Intensity 0 is the fault-free baseline the degradation is
	// measured against.
	Intensities []float64
	// Duration is the measured window per point (default DetectDuration).
	Duration time.Duration
	// FaultSeed drives random plan generation (default Seed+77). The same
	// seed is used at every intensity, so higher intensities extend rather
	// than reshuffle the fault campaign.
	FaultSeed int64
	// Kinds enables fault types (default flap, impair, crash-loop,
	// partition).
	Kinds []faults.Kind
	// Domains runs every intensity point's testbed partitioned across this
	// many PDES domains (0 inherits Scenario.Domains; <= 1 is serial).
	// Fault campaigns are byte-identical across domain counts, so the knob
	// changes wall-clock only.
	Domains int
}

func (cfg ResilienceConfig) withDefaults(sc Scenario) ResilienceConfig {
	if len(cfg.Intensities) == 0 {
		cfg.Intensities = []float64{0, 0.25, 0.5, 1}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = sc.DetectDuration
	}
	if cfg.FaultSeed == 0 {
		cfg.FaultSeed = sc.Seed + 77
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []faults.Kind{faults.LinkFlap, faults.LinkImpair, faults.CrashLoop, faults.Partition}
	}
	return cfg
}

// ResilienceRow is one model's detection quality at one fault intensity.
type ResilienceRow struct {
	Model string
	// Report holds the cross-run confusion metrics; precision and recall
	// are the degradation curves' y-axes.
	Report metrics.Report
	// Packets is the number of packets the unit classified.
	Packets uint64
}

// ResiliencePoint is one intensity step of the sweep.
type ResiliencePoint struct {
	Intensity float64
	Rows      []ResilienceRow
	// Faults are the per-kind injection counts, sorted by kind.
	Faults []faults.Counter
	// Restarts is the total supervised device restarts during the run.
	Restarts int
	// DeviceAvailabilityPct is the fleet-mean uptime share.
	DeviceAvailabilityPct float64
}

// ResilienceResult is the full sweep.
type ResilienceResult struct {
	Points []ResiliencePoint
}

// Curve extracts one model's per-intensity series of a metric, in sweep
// order — the degradation curve for plotting.
func (r *ResilienceResult) Curve(model string, metric func(metrics.Report) float64) []float64 {
	out := make([]float64, 0, len(r.Points))
	for _, pt := range r.Points {
		for _, row := range pt.Rows {
			if row.Model == model {
				out = append(out, metric(row.Report))
				break
			}
		}
	}
	return out
}

// RunResilience sweeps fault intensity and measures how each detector's
// precision and recall degrade — the robustness experiment: every point
// replays the same seeded detection campaign under a progressively harsher
// randomly generated (but seeded, hence reproducible) fault plan covering
// link flaps, impairments, crash loops and partitions.
// Every intensity point builds its own testbed, scheduler and RNG streams,
// so points run concurrently on Scenario.Workers goroutines; the shared
// trained models are only read (all Predict implementations are
// concurrency-safe). Points land in an index-addressed slice, so the result
// is byte-identical to a serial (Workers=1) run.
func (sc Scenario) RunResilience(models []TrainedModel, cfg ResilienceConfig) (*ResilienceResult, error) {
	cfg = cfg.withDefaults(sc)
	points := make([]ResiliencePoint, len(cfg.Intensities))
	errs := make([]error, len(cfg.Intensities))
	parallel.For(len(cfg.Intensities), sc.Workers, func(i int) {
		pt, err := sc.runResiliencePoint(models, cfg.Intensities[i], cfg)
		if err != nil {
			errs[i] = fmt.Errorf("resilience intensity %.2f: %w", cfg.Intensities[i], err)
			return
		}
		points[i] = *pt
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &ResilienceResult{Points: points}, nil
}

func (sc Scenario) runResiliencePoint(models []TrainedModel, intensity float64, cfg ResilienceConfig) (*ResiliencePoint, error) {
	if cfg.Domains > 0 {
		sc.Domains = cfg.Domains
	}
	tb, err := sc.buildTestbed(sc.Seed+1, sc.ChurnInDetect)
	if err != nil {
		return nil, err
	}
	// Establish the botnet before measurement begins, as RunRealTimeModels
	// does.
	tb.Start()
	if err := tb.Run(sc.InfectionLead); err != nil {
		return nil, err
	}
	lead := time.Duration(tb.Scheduler().Now())

	type liveUnit struct {
		name string
		unit *ids.Unit
	}
	units := make([]liveUnit, 0, len(models))
	for _, tm := range models {
		u := ids.New(ids.Config{
			Model:   tm.Model,
			Scaler:  tm.Scaler,
			Window:  sc.Window,
			Labeler: tb.Labeler(),
			Meter:   tb.IDSContainer(),
			Name:    tm.Model.Name(),
		})
		tb.AttachIDS(u)
		units = append(units, liveUnit{name: tm.Model.Name(), unit: u})
	}
	mons := make([]*sysmon.Monitor, 0, len(tb.Devices()))
	for _, dh := range tb.Devices() {
		m := sysmon.NewMonitor(dh.Container, sc.Window)
		m.Start(tb.Scheduler())
		mons = append(mons, m)
	}

	// The fault plan targets the device fleet by name; Schedule arms it
	// relative to now, so Start/Window are offsets into the measured run.
	targets := make([]string, 0, len(tb.Devices()))
	for _, dh := range tb.Devices() {
		targets = append(targets, dh.Container.Name())
	}
	tb.Injector().Schedule(faults.Random(faults.RandomConfig{
		Seed:      cfg.FaultSeed,
		Start:     sc.DetectWarmup,
		Window:    cfg.Duration - sc.DetectWarmup,
		Intensity: intensity,
		Targets:   targets,
		Kinds:     cfg.Kinds,
	}))

	sc.scheduleAttacks(tb, lead+sc.DetectWarmup, lead+cfg.Duration, sc.DetectPPS)
	if err := tb.Run(cfg.Duration); err != nil {
		return nil, err
	}

	pt := &ResiliencePoint{Intensity: intensity, Faults: tb.FaultCounters()}
	for _, lu := range units {
		lu.unit.Flush()
		pt.Rows = append(pt.Rows, ResilienceRow{
			Model:   lu.name,
			Report:  metrics.NewReport(lu.unit.Confusion()),
			Packets: lu.unit.PacketsSeen(),
		})
	}
	for _, s := range tb.DeviceSupervisors() {
		pt.Restarts += s.Restarts()
	}
	var avail float64
	for _, m := range mons {
		m.Stop()
		avail += m.Report(1).AvailabilityPct
	}
	if len(mons) > 0 {
		pt.DeviceAvailabilityPct = avail / float64(len(mons))
	}
	return pt, nil
}

// FormatResilience renders the sweep as a degradation table plus per-model
// recall curves.
func FormatResilience(res *ResilienceResult) string {
	headers := []string{"Intensity", "Model", "Precision (%)", "Recall (%)", "F1 (%)", "Avail (%)", "Restarts", "Faults"}
	var rows [][]string
	pct := func(v float64, ok bool) string {
		if !ok {
			return "n/a"
		}
		return fmt.Sprintf("%.2f", v*100)
	}
	for _, pt := range res.Points {
		faultStr := "-"
		if len(pt.Faults) > 0 {
			names := make([]string, len(pt.Faults))
			vals := make([]uint64, len(pt.Faults))
			for i, c := range pt.Faults {
				names[i], vals[i] = string(c.Kind), c.Count
			}
			faultStr = report.Counters(names, vals)
		}
		for i, row := range pt.Rows {
			r := []string{"", row.Model, pct(row.Report.Precision, row.Report.PrecisionDefined),
				pct(row.Report.Recall, row.Report.RecallDefined), pct(row.Report.F1, row.Report.F1Defined),
				"", "", ""}
			if i == 0 {
				r[0] = fmt.Sprintf("%.2f", pt.Intensity)
				r[5] = fmt.Sprintf("%.1f", pt.DeviceAvailabilityPct)
				r[6] = fmt.Sprintf("%d", pt.Restarts)
				r[7] = faultStr
			}
			rows = append(rows, r)
		}
	}
	out := report.Table(headers, rows)
	if len(res.Points) > 1 && len(res.Points[0].Rows) > 0 {
		out += "\nrecall vs intensity:\n"
		for _, row := range res.Points[0].Rows {
			curve := (&ResilienceResult{Points: res.Points}).Curve(row.Model, func(r metrics.Report) float64 { return r.Recall })
			out += fmt.Sprintf("%-8s %s\n", displayName(row.Model), report.Sparkline(curve, 0, 1))
		}
	}
	return out
}
