package telemetry

import (
	"testing"

	"ddoshield/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(4)
	if r.Capacity() != 4 || r.Len() != 0 {
		t.Fatalf("fresh recorder: cap=%d len=%d", r.Capacity(), r.Len())
	}
	r.Emit(sim.Second, CatNet, "queue-drop", "devA/eth0", 128)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Name != "queue-drop" || ev[0].Time != sim.Second || ev[0].Value != 128 {
		t.Fatalf("events = %+v", ev)
	}
}

// TestRecorderWraparound fills the ring well past capacity and asserts
// oldest-event eviction order, ascending Seq, and stable sim.Time
// ordering — the flight-recorder contract the exporters rely on.
func TestRecorderWraparound(t *testing.T) {
	const capacity, emitted = 8, 27
	r := NewRecorder(capacity)
	for i := 0; i < emitted; i++ {
		r.Emit(sim.Time(i)*sim.Millisecond, CatContainer, "tick", "c", int64(i))
	}
	if r.Emitted() != emitted {
		t.Fatalf("emitted = %d, want %d", r.Emitted(), emitted)
	}
	if r.Evicted() != emitted-capacity {
		t.Fatalf("evicted = %d, want %d", r.Evicted(), emitted-capacity)
	}
	ev := r.Events()
	if len(ev) != capacity {
		t.Fatalf("retained %d events, want %d", len(ev), capacity)
	}
	for i, e := range ev {
		wantSeq := uint64(emitted - capacity + i)
		if e.Seq != wantSeq {
			t.Fatalf("event %d: seq=%d, want %d (oldest-first eviction order)", i, e.Seq, wantSeq)
		}
		if e.Value != int64(wantSeq) {
			t.Fatalf("event %d: value=%d, want %d", i, e.Value, wantSeq)
		}
		if i > 0 && e.Time < ev[i-1].Time {
			t.Fatalf("sim.Time order violated at %d: %v < %v", i, e.Time, ev[i-1].Time)
		}
	}
}

// TestRecorderDroppedCounter pins the wraparound counter against capacity:
// every emit past the ring size increments telemetry_recorder_dropped_total
// by exactly one, and the counter tracks Evicted.
func TestRecorderDroppedCounter(t *testing.T) {
	const capacity, emitted = 8, 27
	r := NewRecorder(capacity)
	for i := 0; i < emitted; i++ {
		r.Emit(sim.Time(i), CatNet, "tick", "c", int64(i))
		want := uint64(0)
		if i >= capacity {
			want = uint64(i + 1 - capacity)
		}
		if got := r.Dropped().Value(); got != want {
			t.Fatalf("after emit %d: dropped=%d, want %d", i, got, want)
		}
	}
	if r.Dropped().Value() != emitted-capacity {
		t.Fatalf("dropped = %d, want %d", r.Dropped().Value(), emitted-capacity)
	}
	if r.Dropped().Value() != r.Evicted() {
		t.Fatalf("dropped %d != evicted %d", r.Dropped().Value(), r.Evicted())
	}
	reg := NewRegistry()
	reg.RegisterCounter(r.Dropped(), "telemetry_recorder_dropped_total")
	for _, s := range reg.Snapshot() {
		if s.Name == "telemetry_recorder_dropped_total" {
			if s.Value != float64(emitted-capacity) {
				t.Fatalf("exported dropped = %v, want %d", s.Value, emitted-capacity)
			}
			return
		}
	}
	t.Fatal("telemetry_recorder_dropped_total not exported")
}

func TestRecorderExactlyFull(t *testing.T) {
	const capacity = 5
	r := NewRecorder(capacity)
	for i := 0; i < capacity; i++ {
		r.Emit(sim.Time(i), CatIDS, "verdict", "u", int64(i))
	}
	if r.Evicted() != 0 {
		t.Fatalf("evicted = %d, want 0 at exact capacity", r.Evicted())
	}
	ev := r.Events()
	for i := range ev {
		if ev[i].Seq != uint64(i) {
			t.Fatalf("seq[%d]=%d", i, ev[i].Seq)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(0, CatNet, "x", "y", 0)
	if r.Events() != nil || r.Len() != 0 || r.Emitted() != 0 || r.Evicted() != 0 || r.Capacity() != 0 {
		t.Fatal("nil recorder must be inert")
	}
}
