package testbed

import (
	"math"
	"testing"
	"time"

	"ddoshield/internal/devices"
)

// layoutConfig is a representative partitioned fleet: a mixed profile
// cycle (bot-capable camera, light sensor, idle filler) across enough
// devices to cover both the scannable classic plane and the extension
// plane.
func layoutConfig(domains int) Config {
	return Config{
		Seed:         42,
		NumDevices:   1000,
		DeviceGroups: 8,
		Profiles:     devices.ScaleFleet,
		MeanThink:    30 * time.Second,
		Domains:      domains,
	}.withDefaults()
}

func samePlacement(a, b placement) bool {
	if len(a.deviceGroup) != len(b.deviceGroup) || len(a.deviceDomain) != len(b.deviceDomain) {
		return false
	}
	for i := range a.deviceGroup {
		if a.deviceGroup[i] != b.deviceGroup[i] {
			return false
		}
	}
	for i := range a.deviceDomain {
		if a.deviceDomain[i] != b.deviceDomain[i] {
			return false
		}
	}
	return true
}

// TestLayoutDeterministic pins the partitioner's core contract: the same
// seed and topology produce the identical device-to-group assignment on
// every call, and the assignment is a pure function of the topology — the
// Domains setting (execution mode) never changes which group a device
// lands in.
func TestLayoutDeterministic(t *testing.T) {
	base := layoutConfig(1).layout()
	for run := 0; run < 3; run++ {
		if got := layoutConfig(1).layout(); !samePlacement(got, base) {
			t.Fatalf("run %d: layout diverged from first call", run)
		}
	}
	// Group assignment must be identical under every Domains setting;
	// only the domain column may differ.
	for _, domains := range []int{2, 3, 9} {
		got := layoutConfig(domains).layout()
		for i := range base.deviceGroup {
			if got.deviceGroup[i] != base.deviceGroup[i] {
				t.Fatalf("Domains=%d moved device %d from group %d to %d",
					domains, i, base.deviceGroup[i], got.deviceGroup[i])
			}
		}
	}
}

// TestLayoutDomainsExcludeCore checks that devices only land on domains
// 1..Domains-1 (domain 0 is reserved for the core: TServer, IDS, C2,
// attacker, lan0), and that every non-core domain receives at least one
// group when there are enough groups to go around.
func TestLayoutDomainsExcludeCore(t *testing.T) {
	cfg := layoutConfig(5)
	pl := cfg.layout()
	used := make(map[int]bool)
	for i, d := range pl.deviceDomain {
		if d < 1 || d > cfg.Domains-1 {
			t.Fatalf("device %d on domain %d, want 1..%d", i, d, cfg.Domains-1)
		}
		used[d] = true
	}
	if len(used) != cfg.Domains-1 {
		t.Fatalf("only %d of %d non-core domains used", len(used), cfg.Domains-1)
	}
}

// TestLayoutSkewBound bounds the load skew the LPT packing produces.
// Greedy LPT guarantees max bin <= (4/3 - 1/3m) x optimal; with optimal
// >= mean that gives max/mean <= 4/3, and packing group sums onto domains
// compounds the two levels to at most (4/3)^2 < 1.8. The old round-robin
// layout concentrated whole profile classes into single domains and blew
// far past this (a bot-heavy class next to idle filler skews round-robin
// by the full class weight ratio, >100x for ScaleFleet).
func TestLayoutSkewBound(t *testing.T) {
	cfg := layoutConfig(5)
	pl := cfg.layout()

	check := func(name string, loads []float64, bound float64) {
		t.Helper()
		var sum, max float64
		for _, l := range loads {
			sum += l
			max = math.Max(max, l)
		}
		mean := sum / float64(len(loads))
		if mean == 0 {
			t.Fatalf("%s: zero mean load", name)
		}
		if ratio := max / mean; ratio > bound {
			t.Fatalf("%s: max/mean load skew %.3f exceeds %.2f (loads %v)",
				name, ratio, bound, loads)
		}
	}

	check("groups", binLoads(pl.weights, pl.deviceGroup, cfg.DeviceGroups), 4.0/3)

	groupWeight := make([]float64, cfg.DeviceGroups)
	for i, g := range pl.deviceGroup {
		groupWeight[g] += pl.weights[i]
	}
	domainLoad := make([]float64, cfg.Domains-1)
	for g, w := range groupWeight {
		domainLoad[pl.groupDomain[g]-1] += w
	}
	check("domains", domainLoad, 1.8)
}

// TestLayoutUniformFleetIsRoundRobin pins the degenerate case: when every
// device weighs the same, the stable LPT sort keeps index order and the
// lightest-bin rule cycles through bins — exactly the old i % groups
// layout, so uniform small topologies keep their historical placement.
func TestLayoutUniformFleetIsRoundRobin(t *testing.T) {
	cfg := Config{
		Seed:         1,
		NumDevices:   64,
		DeviceGroups: 4,
		Profiles:     []devices.Profile{devices.ProfileIdle},
		MeanThink:    time.Second,
	}.withDefaults()
	pl := cfg.layout()
	for i, g := range pl.deviceGroup {
		if g != i%4 {
			t.Fatalf("uniform fleet: device %d in group %d, want %d", i, g, i%4)
		}
	}
}

// TestLayoutShardTopologyFixed pins the core fabric's wiring contract:
// group g trunks to shard g*CoreShards/DeviceGroups (contiguous blocks,
// so the concentrated scannable plane sits behind shard 0), the mapping
// never varies with Domains (it is topology, not execution mode), and
// unsharded configs carry no shard columns at all.
func TestLayoutShardTopologyFixed(t *testing.T) {
	cfg := layoutConfig(1)
	cfg.CoreShards = 4
	base := cfg.layout()
	if base.groupShard == nil || base.shardDomain != nil {
		t.Fatalf("serial sharded layout: groupShard=%v shardDomain=%v", base.groupShard, base.shardDomain)
	}
	for g, s := range base.groupShard {
		if want := g * 4 / cfg.DeviceGroups; s != want {
			t.Fatalf("group %d on shard %d, want %d", g, s, want)
		}
	}
	for _, domains := range []int{2, 5, 9} {
		cfg := layoutConfig(domains)
		cfg.CoreShards = 4
		pl := cfg.layout()
		for g := range pl.groupShard {
			if pl.groupShard[g] != base.groupShard[g] {
				t.Fatalf("Domains=%d moved group %d to shard %d", domains, g, pl.groupShard[g])
			}
		}
		if len(pl.shardDomain) != 4 {
			t.Fatalf("Domains=%d: %d shard domains, want 4", domains, len(pl.shardDomain))
		}
		for s, d := range pl.shardDomain {
			if d < 1 || d > domains-1 {
				t.Fatalf("Domains=%d: shard %d on domain %d, want 1..%d", domains, s, d, domains-1)
			}
		}
	}
	if pl := layoutConfig(5).layout(); pl.groupShard != nil || pl.shardDomain != nil {
		t.Fatal("unsharded layout must not carry shard columns")
	}
}

// TestLayoutShardJointPackingSkew is the imbalance-and-locality
// regression for the core-plane weights. Each shard carries a virtual
// relay load (its groups' core pull scaled by shardRelayFraction) and
// must (a) run in the domain owning the plurality of that pull — so
// shard-to-edge deliveries for its hottest groups stay intra-domain —
// and (b) keep the combined per-domain load (device groups plus the
// shard relays co-located there) within a modest multiple of the mean.
// Dropping either half regresses the 100k bench: spreading shards for
// pure balance doubles the cross-domain message count, while ignoring
// the relay weight lets a hot shard silently overload a full group bin.
func TestLayoutShardJointPackingSkew(t *testing.T) {
	cfg := layoutConfig(5)
	cfg.CoreShards = 4
	pl := cfg.layout()

	groupWeight := make([]float64, cfg.DeviceGroups)
	for i, g := range pl.deviceGroup {
		groupWeight[g] += pl.weights[i]
	}
	coreWeight := cfg.corePullWeights(pl)
	for s, d := range pl.shardDomain {
		pull := make([]float64, cfg.Domains)
		for g, gs := range pl.groupShard {
			if gs == s {
				pull[pl.groupDomain[g]] += coreWeight[g]
			}
		}
		for _, p := range pull {
			if p > pull[d] {
				t.Fatalf("shard %d on domain %d pulling %.1f, but another domain pulls more (%v)",
					s, d, pull[d], pull)
			}
		}
	}
	shardWeight := make([]float64, cfg.CoreShards)
	for g, s := range pl.groupShard {
		shardWeight[s] += coreWeight[g] * shardRelayFraction
	}
	domainLoad := make([]float64, cfg.Domains-1)
	for g, w := range groupWeight {
		domainLoad[pl.groupDomain[g]-1] += w
	}
	for s, w := range shardWeight {
		domainLoad[pl.shardDomain[s]-1] += w
	}
	var sum, max float64
	for _, l := range domainLoad {
		sum += l
		max = math.Max(max, l)
	}
	mean := sum / float64(len(domainLoad))
	if mean == 0 {
		t.Fatal("zero mean combined domain load")
	}
	// Group packing alone honors the two-level LPT bound (4/3)^2 = 1.8;
	// co-locating a shard's relay weight with its plurality domain adds at
	// most shardRelayFraction of that domain's own pull on top.
	bound := 1.8 * (1 + shardRelayFraction)
	if ratio := max / mean; ratio > bound {
		t.Fatalf("combined group+shard skew %.3f exceeds %.2f (loads %v)", ratio, bound, domainLoad)
	}
}

// TestPartitionLPTProperties spot-checks the packer on a pathological
// weight vector: a few huge items plus a long tail.
func TestPartitionLPTProperties(t *testing.T) {
	weights := make([]float64, 103)
	weights[0], weights[1], weights[2] = 100, 90, 80
	for i := 3; i < len(weights); i++ {
		weights[i] = 1
	}
	assign := partitionLPT(weights, 3)
	loads := binLoads(weights, assign, 3)
	// The three heavy items must land in three different bins.
	if assign[0] == assign[1] || assign[1] == assign[2] || assign[0] == assign[2] {
		t.Fatalf("heavy items share a bin: %v", assign[:3])
	}
	var max, min = loads[0], loads[0]
	for _, l := range loads {
		max, min = math.Max(max, l), math.Min(min, l)
	}
	if max/min > 4.0/3 {
		t.Fatalf("pathological vector packed with skew %.3f: %v", max/min, loads)
	}
}
