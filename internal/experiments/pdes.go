package experiments

import (
	"fmt"
	"time"

	"ddoshield/internal/devices"
	"ddoshield/internal/faults"
	"ddoshield/internal/netsim"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry/prof"
	"ddoshield/internal/testbed"
)

// PDESScenario parameterizes the scaled parallel-engine benchmark: a
// fleet an order of magnitude beyond the paper's runs, split into edge
// groups with group-local HTTP servers so benign traffic stays inside
// its partition. That topology is what gives the conservative engine
// room to scale — only trunk crossings (infection traffic, the attack
// flood) serialize through the core domain.
type PDESScenario struct {
	Seed    int64
	Devices int
	// Groups is the number of edge switches; Domains is the PDES domain
	// count used for partitioned runs (core + one domain per group when
	// Domains = Groups+1).
	Groups  int
	Domains int
	// Duration is simulated time per run.
	Duration time.Duration
	// MeanThink paces benign HTTP requests; at 120 ms a 120-device fleet
	// sustains ~1000 requests/s of group-local traffic.
	MeanThink time.Duration
	// TrunkDelay is the edge-to-core propagation delay. It lower-bounds
	// the engine lookahead, so it directly sets the parallel window width.
	TrunkDelay time.Duration
	// Repeats measures each configuration this many times and keeps the
	// fastest wall-clock (noise from the host scheduler only ever slows a
	// run down). Minimum 1.
	Repeats int
}

// DefaultPDES is the scaled scenario from the PDES experiment: 120
// devices (12x the paper's 10-device fleet) across 8 edge groups.
func DefaultPDES() PDESScenario {
	return PDESScenario{
		Seed:       42,
		Devices:    120,
		Groups:     8,
		Domains:    9,
		Duration:   30 * time.Second,
		MeanThink:  120 * time.Millisecond,
		TrunkDelay: 5 * time.Millisecond,
		Repeats:    1,
	}
}

// httpFleet returns the default device classes restricted to their HTTP
// workloads — the edge servers speak HTTP only.
func httpFleet() []devices.Profile {
	fleet := make([]devices.Profile, 0, len(devices.DefaultFleet))
	for _, p := range devices.DefaultFleet {
		p.HTTP, p.Video, p.FTP = true, false, false
		fleet = append(fleet, p)
	}
	return fleet
}

func (p PDESScenario) build(domains, workers int, faulted, profiled bool) (*testbed.Testbed, error) {
	cfg := testbed.Config{
		Seed:         p.Seed,
		NumDevices:   p.Devices,
		DeviceGroups: p.Groups,
		EdgeServers:  true,
		Profiles:     httpFleet(),
		MeanThink:    p.MeanThink,
		TrunkLink:    netsim.LinkConfig{Delay: sim.FromDuration(p.TrunkDelay)},
		Domains:      domains,
		PDESWorkers:  workers,
		Profile:      profiled,
	}
	if faulted {
		// The faulted variant stresses the lifted gates: device churn plus
		// lossy access links, all driven by per-entity RNG streams.
		cfg.Churn = testbed.ChurnConfig{
			Enabled:  true,
			MeanUp:   20 * time.Second,
			MeanDown: 2 * time.Second,
		}
		cfg.Link = netsim.LinkConfig{LossProb: 0.01}
	}
	return testbed.New(cfg)
}

// chaos is the seeded fault campaign faulted benchmark runs inject: the
// full Random kind set (flaps, impairment windows, crash loops) at half
// intensity across the device fleet.
func (p PDESScenario) chaos() faults.Plan {
	return faults.Random(faults.RandomConfig{
		Seed:      p.Seed + 7,
		Start:     2 * time.Second,
		Window:    p.Duration - 2*time.Second,
		Intensity: 0.5,
	})
}

// PDESPoint is one measured configuration.
type PDESPoint struct {
	Domains int `json:"domains"`
	Workers int `json:"workers"`
	// WallMS is the fastest wall-clock over Repeats runs.
	WallMS float64 `json:"wall_ms"`
	// Speedup is serial wall-clock divided by this point's (1.0 for the
	// serial point itself).
	Speedup float64 `json:"speedup"`
	// Events counts handler invocations across all domains.
	Events uint64 `json:"events"`
	// Epochs counts engine synchronization windows (0 for serial).
	Epochs uint64 `json:"epochs,omitempty"`
}

// PDESReport is the emitted benchmark document.
type PDESReport struct {
	Devices    int         `json:"devices"`
	Groups     int         `json:"groups"`
	SimSeconds float64     `json:"sim_seconds"`
	Serial     PDESPoint   `json:"serial"`
	Parallel   []PDESPoint `json:"parallel"`
	// FaultedSerial and FaultedParallel measure the same topology with the
	// injector active (churn, lossy access links, and a seeded chaos plan of
	// flaps, impairment windows and crash loops). Both runs must produce
	// byte-identical Summaries; FaultedParallel.Speedup is relative to
	// FaultedSerial.
	FaultedSerial   PDESPoint `json:"faulted_serial"`
	FaultedParallel PDESPoint `json:"faulted_parallel"`
	// Scale, when populated (benchperf -pdes-scale), holds the fleet-size
	// sweep: heap bytes per device and devices-per-wall-second per count.
	Scale []ScalePoint `json:"scale,omitempty"`
	// Profile is the combined observability document (virtual-load
	// attribution, engine stats, wall-clock phases) from a profiled run of
	// the partitioned configuration; that run's Summary was verified
	// byte-identical to the unprofiled baseline, pinning the profiler's
	// observe-only contract. Bottlenecks are its digest findings.
	Profile     *prof.Profile `json:"profile,omitempty"`
	Bottlenecks []string      `json:"bottlenecks,omitempty"`
}

// runOnce executes one configuration and returns its point plus the
// Summary text used for the byte-identity cross-check.
func (p PDESScenario) runOnce(domains, workers int, faulted bool) (PDESPoint, string, error) {
	tb, err := p.build(domains, workers, faulted, false)
	if err != nil {
		return PDESPoint{}, "", err
	}
	tb.Start()
	if faulted {
		tb.Injector().Schedule(p.chaos())
	}
	start := time.Now()
	if err := tb.Run(p.Duration); err != nil {
		return PDESPoint{}, "", err
	}
	wall := time.Since(start)
	pt := PDESPoint{
		Domains: domains,
		Workers: workers,
		WallMS:  float64(wall.Nanoseconds()) / 1e6,
	}
	if e := tb.Engine(); e != nil {
		pt.Epochs = e.Epochs()
		for i := 0; i < e.NumDomains(); i++ {
			pt.Events += e.Domain(i).Stats().Events
		}
	} else {
		pt.Events = tb.Scheduler().Fired()
	}
	return pt, tb.Summary(), nil
}

// measure runs one configuration Repeats times, keeps the fastest wall
// clock, and verifies every run's Summary matches want (empty want skips
// the check and instead returns the observed Summary).
func (p PDESScenario) measure(domains, workers int, faulted bool, want string) (PDESPoint, string, error) {
	repeats := p.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var best PDESPoint
	for r := 0; r < repeats; r++ {
		pt, summary, err := p.runOnce(domains, workers, faulted)
		if err != nil {
			return PDESPoint{}, "", err
		}
		if want == "" {
			want = summary
		} else if summary != want {
			return PDESPoint{}, "", fmt.Errorf(
				"experiments: domains=%d workers=%d diverged from serial Summary\n--- want ---\n%s--- got ---\n%s",
				domains, workers, want, summary)
		}
		if r == 0 || pt.WallMS < best.WallMS {
			best = pt
		}
	}
	return best, want, nil
}

// RunPDESBench measures the serial engine against the partitioned engine
// at each worker count, cross-checking that every run produces a
// byte-identical testbed Summary. Worker counts beyond the host's
// parallelism are still valid (determinism is worker-independent); they
// just cannot go faster. A final faulted pair (serial vs partitioned at
// the highest worker count) repeats the measurement with the injector
// active, pinning that chaos neither breaks identity nor the speedup.
func (p PDESScenario) RunPDESBench(workerCounts []int) (*PDESReport, error) {
	rep := &PDESReport{
		Devices:    p.Devices,
		Groups:     p.Groups,
		SimSeconds: p.Duration.Seconds(),
	}
	serial, summary, err := p.measure(1, 1, false, "")
	if err != nil {
		return nil, err
	}
	serial.Speedup = 1
	rep.Serial = serial
	maxWorkers := 0
	for _, w := range workerCounts {
		pt, _, err := p.measure(p.Domains, w, false, summary)
		if err != nil {
			return nil, err
		}
		pt.Speedup = serial.WallMS / pt.WallMS
		rep.Parallel = append(rep.Parallel, pt)
		if w > maxWorkers {
			maxWorkers = w
		}
	}
	rep.Profile, rep.Bottlenecks, err = p.profileRun(p.Domains, maxWorkers, summary)
	if err != nil {
		return nil, err
	}
	fSerial, fSummary, err := p.measure(1, 1, true, "")
	if err != nil {
		return nil, err
	}
	fSerial.Speedup = 1
	rep.FaultedSerial = fSerial
	fPar, _, err := p.measure(p.Domains, maxWorkers, true, fSummary)
	if err != nil {
		return nil, err
	}
	fPar.Speedup = fSerial.WallMS / fPar.WallMS
	rep.FaultedParallel = fPar
	return rep, nil
}

// profileRun executes the partitioned configuration once with the profiler
// attached, verifies the Summary still matches the unprofiled baseline
// (the observe-only contract), and returns the combined profile document
// plus its digest findings.
func (p PDESScenario) profileRun(domains, workers int, want string) (*prof.Profile, []string, error) {
	tb, err := p.build(domains, workers, false, true)
	if err != nil {
		return nil, nil, err
	}
	tb.Start()
	if err := tb.Run(p.Duration); err != nil {
		return nil, nil, err
	}
	if s := tb.Summary(); s != want {
		return nil, nil, fmt.Errorf(
			"experiments: profiled run diverged from unprofiled Summary\n--- want ---\n%s--- got ---\n%s",
			want, s)
	}
	profile := tb.Profile(0)
	return profile, prof.BuildReport(profile).Findings, nil
}
