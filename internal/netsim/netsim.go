// Package netsim is the packet-level network simulator that replaces NS-3 in
// this reproduction of DDoShield-IoT. It models nodes with NICs, full-duplex
// links with finite bandwidth, propagation delay and drop-tail queues, and a
// learning Ethernet switch (the CSMA-segment analog the paper's topology
// uses to join the Devs, the Attacker, the TServer and the IDS).
//
// All state advances on a single sim.Scheduler; the simulation is therefore
// deterministic for a fixed seed and topology.
package netsim

import (
	"fmt"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// Port is anything that can terminate a link: a host NIC or a switch port.
type Port interface {
	// receive is invoked by the link when a frame finishes arriving.
	receive(raw []byte)
	// String identifies the port for diagnostics.
	String() string
}

// Tap observes frames on a link. Taps run at frame-delivery time with the
// simulated timestamp, exactly like a passive capture interface. The pcap
// writer and the IDS monitor are both taps.
type Tap func(t sim.Time, raw []byte)

// Network owns the simulated topology: the scheduler, every node, link and
// switch, and the MAC address allocator.
type Network struct {
	sched   *sim.Scheduler
	nodes   []*Node
	links   []*Link
	macSeq  uint64
	nameSet map[string]bool
}

// New creates an empty network driven by sched.
func New(sched *sim.Scheduler) *Network {
	return &Network{sched: sched, nameSet: make(map[string]bool)}
}

// Scheduler exposes the simulation scheduler driving this network.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Now reports the current simulated time.
func (n *Network) Now() sim.Time { return n.sched.Now() }

// NewNode adds a named host node. Names must be unique.
func (n *Network) NewNode(name string) *Node {
	if n.nameSet[name] {
		name = fmt.Sprintf("%s-%d", name, len(n.nodes))
	}
	n.nameSet[name] = true
	node := &Node{net: n, name: name}
	n.nodes = append(n.nodes, node)
	return node
}

// Nodes returns the hosts in creation order.
func (n *Network) Nodes() []*Node {
	out := make([]*Node, len(n.nodes))
	copy(out, n.nodes)
	return out
}

func (n *Network) nextMAC() packet.MAC {
	n.macSeq++
	return packet.MACFromUint64(n.macSeq)
}

// Node is a simulated host: a container-backed device, the attacker, the
// target server or the IDS. A node owns one or more NICs.
type Node struct {
	net  *Network
	name string
	nics []*NIC
}

// Name returns the node's unique name.
func (nd *Node) Name() string { return nd.name }

// Network returns the owning network.
func (nd *Node) Network() *Network { return nd.net }

// AddNIC attaches a new NIC to the node.
func (nd *Node) AddNIC() *NIC {
	nic := &NIC{node: nd, mac: nd.net.nextMAC(), index: len(nd.nics)}
	nd.nics = append(nd.nics, nic)
	return nic
}

// NIC returns the i-th NIC, or nil when absent.
func (nd *Node) NIC(i int) *NIC {
	if i < 0 || i >= len(nd.nics) {
		return nil
	}
	return nd.nics[i]
}

// NICs returns all NICs in attachment order.
func (nd *Node) NICs() []*NIC {
	out := make([]*NIC, len(nd.nics))
	copy(out, nd.nics)
	return out
}

// NIC is a network interface with a MAC address, bound to one end of a link.
type NIC struct {
	node    *Node
	mac     packet.MAC
	index   int
	link    *Link
	side    int // 0 or 1: which end of the link this NIC terminates
	handler func(raw []byte)
	// ingress, when set, vets every arriving frame before the handler;
	// returning false drops it (the firewall hook).
	ingress func(raw []byte) bool

	rxFrames       uint64
	rxBytes        uint64
	txFrames       uint64
	txBytes        uint64
	ingressDropped uint64
}

var _ Port = (*NIC)(nil)

// MAC reports the NIC's hardware address.
func (c *NIC) MAC() packet.MAC { return c.mac }

// Node reports the owning node.
func (c *NIC) Node() *Node { return c.node }

// Attached reports whether the NIC is wired to a link.
func (c *NIC) Attached() bool { return c.link != nil }

// SetHandler installs the receive callback (the host network stack).
func (c *NIC) SetHandler(fn func(raw []byte)) { c.handler = fn }

// Send transmits a raw frame out of the NIC. Frames sent on an unattached
// NIC are silently dropped, like a cable that was unplugged (device churn).
func (c *NIC) Send(raw []byte) {
	if c.link == nil {
		return
	}
	c.txFrames++
	c.txBytes += uint64(len(raw))
	c.link.send(c.side, raw)
}

// Stats reports cumulative frame/byte counters (rx then tx).
func (c *NIC) Stats() (rxFrames, rxBytes, txFrames, txBytes uint64) {
	return c.rxFrames, c.rxBytes, c.txFrames, c.txBytes
}

func (c *NIC) receive(raw []byte) {
	if c.ingress != nil && !c.ingress(raw) {
		c.ingressDropped++
		return
	}
	c.rxFrames++
	c.rxBytes += uint64(len(raw))
	if c.handler != nil {
		c.handler(raw)
	}
}

// SetIngressFilter installs (or clears, with nil) a frame filter that runs
// before the receive handler; returning false drops the frame. A firewall
// in front of the host attaches here.
func (c *NIC) SetIngressFilter(fn func(raw []byte) bool) { c.ingress = fn }

// IngressDropped reports frames discarded by the ingress filter.
func (c *NIC) IngressDropped() uint64 { return c.ingressDropped }

// String identifies the NIC as "node/ethN".
func (c *NIC) String() string { return fmt.Sprintf("%s/eth%d", c.node.name, c.index) }

// LinkConfig sets the physical properties of a duplex link.
type LinkConfig struct {
	// RateBps is the line rate in bits per second (default 100 Mb/s).
	RateBps int64
	// Delay is the one-way propagation delay (default 1 ms).
	Delay sim.Time
	// QueueBytes caps each direction's drop-tail queue (default 128 KiB).
	QueueBytes int
	// LossProb drops each frame independently with this probability,
	// using rng. Zero disables random loss.
	LossProb float64
	// RNG drives random loss; required when LossProb > 0.
	RNG *sim.RNG
}

func (cfg LinkConfig) withDefaults() LinkConfig {
	if cfg.RateBps <= 0 {
		cfg.RateBps = 100_000_000
	}
	if cfg.Delay <= 0 {
		cfg.Delay = sim.Millisecond
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = 128 << 10
	}
	return cfg
}

// Impairments are runtime-adjustable link degradations beyond up/down —
// the knobs the fault injector turns. All probabilities are independent
// per-frame draws from RNG; zero values disable the corresponding effect.
type Impairments struct {
	// LossProb silently discards each frame with this probability.
	LossProb float64
	// CorruptProb flips one random bit of the delivered copy of a frame
	// with this probability. The corrupted frame still arrives; receivers
	// see it fail checksum or dissection, exactly like real bit rot.
	CorruptProb float64
	// DupProb delivers a second copy of the frame, one serialization time
	// after the original, with this probability.
	DupProb float64
	// ReorderProb holds a frame for ReorderDelay extra propagation with
	// this probability, letting frames sent after it overtake it.
	ReorderProb float64
	// ReorderDelay is the extra hold applied to reordered frames
	// (default: 4x the link's propagation delay).
	ReorderDelay sim.Time
	// RNG drives the random draws; required when any probability > 0.
	RNG *sim.RNG
}

// Active reports whether any impairment probability is set.
func (im Impairments) Active() bool {
	return im.LossProb > 0 || im.CorruptProb > 0 || im.DupProb > 0 || im.ReorderProb > 0
}

// LinkStats is the full per-link counter set, aggregated over both
// directions. QueueDrops counts drop-tail and sent-while-down discards;
// InFlightDrops counts frames that were in flight when the link went down.
type LinkStats struct {
	TxFrames      uint64
	TxBytes       uint64
	QueueDrops    uint64
	LossFrames    uint64
	CorruptFrames uint64
	DupFrames     uint64
	ReorderFrames uint64
	InFlightDrops uint64
}

// Drops totals every discarded frame (queue, random loss, in-flight cut).
func (s LinkStats) Drops() uint64 { return s.QueueDrops + s.LossFrames + s.InFlightDrops }

// Add accumulates o into s, for fleet-wide aggregation.
func (s *LinkStats) Add(o LinkStats) {
	s.TxFrames += o.TxFrames
	s.TxBytes += o.TxBytes
	s.QueueDrops += o.QueueDrops
	s.LossFrames += o.LossFrames
	s.CorruptFrames += o.CorruptFrames
	s.DupFrames += o.DupFrames
	s.ReorderFrames += o.ReorderFrames
	s.InFlightDrops += o.InFlightDrops
}

// Link is a full-duplex point-to-point link between two ports. Each
// direction has an independent transmitter with a drop-tail byte queue.
type Link struct {
	net  *Network
	cfg  LinkConfig
	imp  Impairments
	ends [2]Port
	dirs [2]*direction // dirs[i] carries frames from ends[i] to ends[1-i]
	taps []Tap
	up   bool
}

type direction struct {
	link          *Link
	from          int
	queue         [][]byte
	queued        int // bytes waiting (excluding the frame in transmission)
	busy          bool
	txFrames      uint64
	txBytes       uint64
	dropFrames    uint64
	lossFrames    uint64
	corruptFrames uint64
	dupFrames     uint64
	reorderFrames uint64
	inflightDrops uint64
}

// Connect wires two ports with a duplex link.
func (n *Network) Connect(a, b Port, cfg LinkConfig) *Link {
	l := &Link{net: n, cfg: cfg.withDefaults(), ends: [2]Port{a, b}, up: true}
	l.dirs[0] = &direction{link: l, from: 0}
	l.dirs[1] = &direction{link: l, from: 1}
	bindPort(a, l, 0)
	bindPort(b, l, 1)
	n.links = append(n.links, l)
	return l
}

func bindPort(p Port, l *Link, side int) {
	switch v := p.(type) {
	case *NIC:
		v.link = l
		v.side = side
	case *switchPort:
		v.link = l
		v.side = side
	}
}

// AddTap registers a passive observer invoked for every frame the link
// delivers (in either direction).
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// SetUp raises or cuts the link. Frames sent while the link is down are
// dropped at the queue; frames already in flight when it goes down are
// dropped at their arrival instant (a cut cable loses what's on the wire)
// and counted in LinkStats.InFlightDrops. Used by churn and fault models.
func (l *Link) SetUp(up bool) { l.up = up }

// Up reports whether the link is currently passing traffic.
func (l *Link) Up() bool { return l.up }

// SetImpairments installs (or, with the zero value, clears) runtime
// impairments. Takes effect for frames transmitted after the call.
func (l *Link) SetImpairments(im Impairments) { l.imp = im }

// Impairments returns the currently active impairment set.
func (l *Link) Impairments() Impairments { return l.imp }

// Ends returns the two ports the link connects, in Connect order.
func (l *Link) Ends() [2]Port { return l.ends }

// Stats aggregates both directions' counters (legacy three-value form;
// drops totals queue, loss and in-flight discards).
func (l *Link) Stats() (txFrames, txBytes, drops uint64) {
	s := l.Counters()
	return s.TxFrames, s.TxBytes, s.Drops()
}

// Counters aggregates both directions' full counter set.
func (l *Link) Counters() LinkStats {
	var s LinkStats
	for _, d := range l.dirs {
		s.TxFrames += d.txFrames
		s.TxBytes += d.txBytes
		s.QueueDrops += d.dropFrames
		s.LossFrames += d.lossFrames
		s.CorruptFrames += d.corruptFrames
		s.DupFrames += d.dupFrames
		s.ReorderFrames += d.reorderFrames
		s.InFlightDrops += d.inflightDrops
	}
	return s
}

// serializationTime is how long a frame of n bytes occupies the transmitter.
func (l *Link) serializationTime(n int) sim.Time {
	return sim.Time(int64(n) * 8 * int64(sim.Second) / l.cfg.RateBps)
}

func (l *Link) send(from int, raw []byte) {
	if !l.up {
		l.dirs[from].dropFrames++
		return
	}
	d := l.dirs[from]
	if d.busy {
		if d.queued+len(raw) > l.cfg.QueueBytes {
			d.dropFrames++ // drop-tail: queue full
			return
		}
		d.queue = append(d.queue, raw)
		d.queued += len(raw)
		return
	}
	d.transmit(raw)
}

func (d *direction) transmit(raw []byte) {
	l := d.link
	d.busy = true
	ser := l.serializationTime(len(raw))
	sched := l.net.sched
	// Transmitter frees after serialization; frame lands after propagation.
	sched.At(sched.Now()+ser, func() {
		d.txFrames++
		d.txBytes += uint64(len(raw))
		if len(d.queue) > 0 {
			next := d.queue[0]
			d.queue = d.queue[1:]
			d.queued -= len(next)
			d.transmit(next)
		} else {
			d.busy = false
		}
	})
	if l.cfg.LossProb > 0 && l.cfg.RNG != nil && l.cfg.RNG.Bool(l.cfg.LossProb) {
		d.lossFrames++
		return
	}
	arrive := sched.Now() + ser + l.cfg.Delay
	dup := false
	if im := l.imp; im.RNG != nil && im.Active() {
		if im.LossProb > 0 && im.RNG.Bool(im.LossProb) {
			d.lossFrames++
			return
		}
		if im.CorruptProb > 0 && im.RNG.Bool(im.CorruptProb) {
			raw = corruptedCopy(raw, im.RNG)
			d.corruptFrames++
		}
		if im.DupProb > 0 && im.RNG.Bool(im.DupProb) {
			dup = true
			d.dupFrames++
		}
		if im.ReorderProb > 0 && im.RNG.Bool(im.ReorderProb) {
			extra := im.ReorderDelay
			if extra <= 0 {
				extra = 4 * l.cfg.Delay
			}
			arrive += extra
			d.reorderFrames++
		}
	}
	d.scheduleArrival(arrive, raw)
	if dup {
		d.scheduleArrival(arrive+ser, raw)
	}
}

func (d *direction) scheduleArrival(at sim.Time, raw []byte) {
	l := d.link
	sched := l.net.sched
	to := l.ends[1-d.from]
	sched.At(at, func() {
		if !l.up {
			d.inflightDrops++
			return
		}
		for _, tap := range l.taps {
			tap(sched.Now(), raw)
		}
		to.receive(raw)
	})
}

// corruptedCopy returns raw with one pseudo-randomly chosen bit flipped,
// leaving the original (which other arrival events may share) untouched.
func corruptedCopy(raw []byte, rng *sim.RNG) []byte {
	if len(raw) == 0 {
		return raw
	}
	b := make([]byte, len(raw))
	copy(b, raw)
	bit := rng.Intn(len(b) * 8)
	b[bit/8] ^= 1 << uint(bit%8)
	return b
}
