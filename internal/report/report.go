// Package report renders experiment series as terminal graphics: unicode
// sparklines and labeled ASCII bar charts, so cmd/benchtables can show the
// paper's figures (per-second accuracy dips, throughput under attack,
// connected-bots population) directly in the terminal next to their CSV.
package report

import (
	"fmt"
	"math"
	"strings"
)

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as one line of unicode block characters, scaled
// between lo and hi. Pass lo==hi to auto-scale to the data range.
func Sparkline(vals []float64, lo, hi float64) string {
	if len(vals) == 0 {
		return ""
	}
	if lo == hi {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo == hi { // constant series
			hi = lo + 1
		}
	}
	var b strings.Builder
	span := hi - lo
	for _, v := range vals {
		t := (v - lo) / span
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		idx := int(t * float64(len(sparkLevels)-1))
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Downsample reduces vals to at most width points by bucket-averaging, so
// long series fit a terminal row.
func Downsample(vals []float64, width int) []float64 {
	if width <= 0 || len(vals) <= width {
		out := make([]float64, len(vals))
		copy(out, vals)
		return out
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(vals) / width
		hi := (i + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		var s float64
		for _, v := range vals[lo:hi] {
			s += v
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

// Bar renders one labeled horizontal bar scaled to max (value max fills
// width runes).
func Bar(label string, value, max float64, width int) string {
	if width <= 0 {
		width = 40
	}
	n := 0
	if max > 0 {
		n = int(value / max * float64(width))
	}
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return fmt.Sprintf("%-10s %s%s %.2f", label,
		strings.Repeat("█", n), strings.Repeat("·", width-n), value)
}

// Table renders an aligned ASCII table: a header row, a rule, then the data
// rows. Column widths fit the widest cell; numeric formatting is the
// caller's job. Used for the fault-counter and resilience-degradation
// tables next to the paper's Table I/II renderings.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", w-len([]rune(cell))))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Counters renders "name=value" pairs on one line, in the given order —
// the compact form summaries use for per-fault counters.
func Counters(names []string, values []uint64) string {
	parts := make([]string, len(names))
	for i, n := range names {
		var v uint64
		if i < len(values) {
			v = values[i]
		}
		parts[i] = fmt.Sprintf("%s=%d", n, v)
	}
	return strings.Join(parts, " ")
}

// BarChart renders one bar per (label, value) pair, scaled to the largest
// value.
func BarChart(labels []string, values []float64, width int) string {
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for i := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		b.WriteString(Bar(label, values[i], max, width))
		b.WriteByte('\n')
	}
	return b.String()
}
