package testbed

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/prof"
	"ddoshield/internal/telemetry/trace"
)

// profileArtifacts runs the standard determinism campaign (the
// pdesRunArtifacts scenario) with the profiler toggled, returning every
// byte-comparable artifact, the virtual-load attribution JSON, and the
// testbed for section-level checks.
func profileArtifacts(t *testing.T, domains, workers int, profile bool) (summary, prom, spans, virtual string, tb *Testbed) {
	t.Helper()
	tb, err := New(Config{
		Seed:              42,
		NumDevices:        12,
		DeviceGroups:      4,
		MeanThink:         700 * time.Millisecond,
		Domains:           domains,
		PDESWorkers:       workers,
		Profile:           profile,
		TraceSampleRate:   0.2,
		TraceSpanCapacity: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	tb.ScheduleAttackWave(8*time.Second, 2*time.Second,
		tb.DefaultAttackWave(4*time.Second, 150))
	if err := tb.Run(25 * time.Second); err != nil {
		t.Fatal(err)
	}
	var pb, sb bytes.Buffer
	if err := telemetry.WritePrometheus(&pb, tb.Registry()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSpans(&sb, trace.CanonicalSpans(tb.Tracer().Spans())); err != nil {
		t.Fatal(err)
	}
	vj, err := (&prof.Profile{Virtual: tb.VirtualProfile(0)}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	return tb.Summary(), pb.String(), sb.String(), string(vj), tb
}

// TestProfileDeterminism is the observability tentpole's regression test:
// attaching the profiler must not perturb any deterministic artifact —
// Summary, Prometheus snapshot and canonical spans stay byte-identical to
// the unprofiled serial baseline across Domains ∈ {1, 2, NumCPU} — and the
// virtual-load attribution itself is byte-identical across every run,
// because it is evaluated through the reference layout rather than the
// execution partitioning. CI runs this by name in the profiler job.
func TestProfileDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("profiled determinism matrix is slow")
	}
	wantSummary, wantProm, wantSpans, wantVirtual, _ := profileArtifacts(t, 1, 1, false)
	if wantSpans == "" {
		t.Fatal("baseline produced no trace spans")
	}
	cpus := runtime.NumCPU()
	if cpus < 4 {
		cpus = 4
	}
	for _, tc := range []struct {
		domains, workers int
	}{
		{1, 1},
		{2, 0},
		{cpus, 0},
	} {
		summary, prom, spans, virtual, tb := profileArtifacts(t, tc.domains, tc.workers, true)
		if summary != wantSummary {
			t.Fatalf("domains=%d profiled: Summary diverged\n--- baseline ---\n%s--- profiled ---\n%s",
				tc.domains, wantSummary, summary)
		}
		if prom != wantProm {
			t.Fatalf("domains=%d profiled: Prometheus snapshot diverged (%d vs %d bytes)",
				tc.domains, len(wantProm), len(prom))
		}
		if spans != wantSpans {
			t.Fatalf("domains=%d profiled: canonical span output diverged (%d vs %d bytes)",
				tc.domains, len(wantSpans), len(spans))
		}
		if virtual != wantVirtual {
			t.Fatalf("domains=%d: virtual profile diverged from baseline\n--- baseline ---\n%s--- got ---\n%s",
				tc.domains, wantVirtual, virtual)
		}
		if !prof.Enabled {
			continue
		}
		if tb.Profiler() == nil {
			t.Fatal("Config.Profile set but Profiler() is nil")
		}
		p := tb.Profile(0)
		if p.Wall == nil || len(p.Wall.Phases) == 0 {
			t.Fatal("profiled run missing wall phases")
		}
		if tc.domains > 1 {
			if p.Engine == nil || p.Engine.Window == nil {
				t.Fatalf("domains=%d profiled: engine section incomplete: %+v", tc.domains, p.Engine)
			}
			if len(p.Wall.PerDomain) != tc.domains {
				t.Fatalf("domains=%d: wall per-domain rows = %d", tc.domains, len(p.Wall.PerDomain))
			}
		}
		if rep := tb.BottleneckReport(0).String(); rep == "" {
			t.Fatal("bottleneck report rendered empty")
		}
	}
}

// TestVirtualProfileShape pins the attribution's structure on a short
// grouped campaign: the default reference layout is one domain per group
// plus the core, every entity kind is represented, the trunk traffic shows
// up as cross-domain frames, and the core switch — every trunk crossing's
// serialization point — ranks among the hottest entities.
func TestVirtualProfileShape(t *testing.T) {
	tb, err := New(Config{Seed: 11, NumDevices: 8, DeviceGroups: 2, MeanThink: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	if err := tb.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	vp := tb.VirtualProfile(0)
	if vp.EvalDomains != 3 {
		t.Fatalf("eval domains = %d, want DeviceGroups+1 = 3", vp.EvalDomains)
	}
	kinds := map[string]bool{}
	for _, k := range vp.Kinds {
		kinds[k.Kind] = true
	}
	for _, want := range []string{prof.KindDevice, prof.KindSwitch, prof.KindLink, prof.KindHost, prof.KindFaults} {
		if !kinds[want] {
			t.Errorf("virtual profile missing kind %q: %+v", want, vp.Kinds)
		}
	}
	if len(vp.Cross) == 0 {
		t.Fatal("grouped topology produced no cross-domain frames")
	}
	var coreIn uint64
	for _, c := range vp.Cross {
		if c.To == 0 {
			coreIn += c.Count
		}
	}
	if coreIn == 0 {
		t.Fatalf("no frames attributed into the core domain: %+v", vp.Cross)
	}
	found := false
	for _, e := range vp.TopEntities {
		if e.Kind == prof.KindSwitch && e.Name == "lan0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("core switch missing from top entities: %+v", vp.TopEntities)
	}
	if vp.ImbalanceIndex < 1 {
		t.Fatalf("imbalance index %.3f < 1", vp.ImbalanceIndex)
	}
}
