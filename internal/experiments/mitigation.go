package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"ddoshield/internal/ids"
	"ddoshield/internal/mitigation"
	"ddoshield/internal/report"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/testbed"
)

// MitigationSweepConfig parameterizes the closed-loop defense sweep: a
// grid over responder aggregation threshold × verdict-cache size ×
// reaction delay, each point measuring the three numbers that grade a
// mitigation deployment — time-to-mitigate, collateral damage and
// residual attack throughput. Every point runs under each Domains value
// in DomainSet and must produce byte-identical Summary and Prometheus
// output, so the reported numbers are only ever published for runs the
// determinism machinery has vouched for.
type MitigationSweepConfig struct {
	Seed int64
	// Thresholds sweeps the responder's /24 aggregation threshold
	// (default {4, 64}: aggressive prefix blocking vs per-address rules).
	Thresholds []int
	// CacheSizes sweeps the verdict-cache capacity (default {128, 1024}).
	CacheSizes []int
	// ReactionDelays sweeps the alert→install control-plane lag
	// (default {0, 2 s}).
	ReactionDelays []time.Duration
	// Devices is the fleet size (default 10).
	Devices int
	// Warmup is the benign+infection lead before the flood (default 25 s).
	Warmup time.Duration
	// Flood is the attack-wave duration (default 20 s; the run ends 5 s
	// after the flood so rule expiry and recovery are visible).
	Flood time.Duration
	// PPS is the per-bot flood rate (default 200).
	PPS int
	// Window is the IDS aggregation window (default 1 s).
	Window time.Duration
	// DomainSet is the Domains values every point is cross-checked under
	// (default {1, 2, min(NumCPU, 4)}).
	DomainSet []int
}

func (c MitigationSweepConfig) withDefaults() MitigationSweepConfig {
	if len(c.Thresholds) == 0 {
		c.Thresholds = []int{4, 64}
	}
	if len(c.CacheSizes) == 0 {
		c.CacheSizes = []int{128, 1024}
	}
	if len(c.ReactionDelays) == 0 {
		c.ReactionDelays = []time.Duration{0, 2 * time.Second}
	}
	if c.Devices <= 0 {
		c.Devices = 10
	}
	if c.Warmup <= 0 {
		c.Warmup = 25 * time.Second
	}
	if c.Flood <= 0 {
		c.Flood = 20 * time.Second
	}
	if c.PPS <= 0 {
		c.PPS = 200
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if len(c.DomainSet) == 0 {
		cpu := runtime.NumCPU()
		if cpu > 4 {
			cpu = 4
		}
		if cpu < 2 {
			cpu = 2
		}
		c.DomainSet = []int{1, 2, cpu}
	}
	return c
}

// MitigationPoint is one grid point's measurements.
type MitigationPoint struct {
	Threshold       int     `json:"aggregate_threshold"`
	CacheSize       int     `json:"cache_size"`
	ReactionDelayMS float64 `json:"reaction_delay_ms"`
	// DetectionLatencyS and TimeToMitigateS are -1 when the anchor never
	// happened (e.g. the flood was never detected).
	DetectionLatencyS float64 `json:"detection_latency_s"`
	TimeToMitigateS   float64 `json:"time_to_mitigate_s"`
	// CollateralDrops counts benign frames wrongly dropped; AttackDrops
	// counts attack frames the defense cut; AttackPassed is the residual
	// that still reached the stack.
	CollateralDrops uint64 `json:"collateral_drops"`
	AttackDrops     uint64 `json:"attack_drops"`
	AttackPassed    uint64 `json:"attack_passed"`
	// ResidualAttackPPS is AttackPassed amortized over the flood window.
	ResidualAttackPPS float64 `json:"residual_attack_pps"`
	Evaluated         uint64  `json:"frames_evaluated"`
	Dropped           uint64  `json:"frames_dropped"`
	CacheInserts      uint64  `json:"cache_inserts"`
	CacheEvictions    uint64  `json:"cache_evictions"`
}

// runMitigationPoint runs one grid point under one Domains setting and
// returns the point plus the byte-identity artifacts.
func (c MitigationSweepConfig) runMitigationPoint(threshold, cacheSize int, delay time.Duration, domains int) (MitigationPoint, string, string, error) {
	pt := MitigationPoint{
		Threshold:         threshold,
		CacheSize:         cacheSize,
		ReactionDelayMS:   float64(delay) / float64(time.Millisecond),
		DetectionLatencyS: -1,
		TimeToMitigateS:   -1,
	}
	// The topology (4 device groups) is identical for every DomainSet
	// member — Domains only changes how the same simulation executes.
	tb, err := testbed.New(testbed.Config{
		Seed:         c.Seed,
		NumDevices:   c.Devices,
		DeviceGroups: 4,
		Domains:      domains,
	})
	if err != nil {
		return pt, "", "", err
	}
	// The unit registers no metrics of its own: ids_window_cpu_us is a
	// wall-clock histogram, and this sweep byte-diffs Prometheus output
	// across Domains. Everything mitigation exports is simulated-time.
	unit := ids.New(ids.Config{
		Model:   ids.NewThresholdRule(),
		Window:  c.Window,
		Labeler: tb.Labeler(),
	})
	tb.AttachIDS(unit)
	fw := tb.AttachMitigation(unit, testbed.MitigationConfig{
		CacheSize: cacheSize,
		Responder: mitigation.ResponderConfig{
			AggregateThreshold: threshold,
			ReactionDelay:      delay,
		},
	})
	tb.Start()
	tb.ScheduleAttackWave(c.Warmup, 0, tb.DefaultAttackWave(c.Flood/3, c.PPS))
	if err := tb.Run(c.Warmup + c.Flood + 5*time.Second); err != nil {
		return pt, "", "", err
	}
	unit.Flush()
	if d, ok := tb.DetectionLatency(unit); ok {
		pt.DetectionLatencyS = d.Seconds()
	}
	if d, ok := tb.TimeToMitigate(fw); ok {
		pt.TimeToMitigateS = d.Seconds()
	}
	pt.CollateralDrops = fw.CollateralDrops()
	pt.AttackDrops = fw.AttackDrops()
	pt.AttackPassed = fw.AttackPassed()
	pt.ResidualAttackPPS = float64(pt.AttackPassed) / c.Flood.Seconds()
	pt.Evaluated, pt.Dropped = fw.Stats()
	cs := fw.CacheStats()
	pt.CacheInserts, pt.CacheEvictions = cs.Inserts, cs.Evictions
	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, tb.Registry()); err != nil {
		return pt, "", "", err
	}
	return pt, tb.Summary(), b.String(), nil
}

// RunMitigationSweep runs the full grid. Each point executes under every
// Domains in DomainSet; a Summary or Prometheus divergence aborts the
// sweep, so published numbers always come from verified-deterministic
// runs.
func RunMitigationSweep(cfg MitigationSweepConfig) ([]MitigationPoint, error) {
	cfg = cfg.withDefaults()
	var out []MitigationPoint
	for _, threshold := range cfg.Thresholds {
		for _, cacheSize := range cfg.CacheSizes {
			for _, delay := range cfg.ReactionDelays {
				var (
					point                MitigationPoint
					wantSummary, wantPro string
				)
				for i, domains := range cfg.DomainSet {
					pt, summary, prom, err := cfg.runMitigationPoint(threshold, cacheSize, delay, domains)
					if err != nil {
						return nil, err
					}
					if i == 0 {
						point, wantSummary, wantPro = pt, summary, prom
						continue
					}
					if summary != wantSummary {
						return nil, fmt.Errorf("experiments: mitigation point (t=%d cache=%d delay=%s): Domains=%d Summary diverged\n--- want ---\n%s--- got ---\n%s",
							threshold, cacheSize, delay, domains, wantSummary, summary)
					}
					if prom != wantPro {
						return nil, fmt.Errorf("experiments: mitigation point (t=%d cache=%d delay=%s): Domains=%d Prometheus snapshot diverged",
							threshold, cacheSize, delay, domains)
					}
				}
				out = append(out, point)
			}
		}
	}
	return out, nil
}

// FormatMitigationSweep renders the sweep as a benchtable.
func FormatMitigationSweep(points []MitigationPoint) string {
	headers := []string{"Thresh", "Cache", "Delay (ms)", "Detect (s)", "TTM (s)", "Collateral", "Attack drops", "Residual (pps)", "Evictions"}
	var rows [][]string
	lat := func(v float64) string {
		if v < 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", v)
	}
	for _, pt := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", pt.Threshold),
			fmt.Sprintf("%d", pt.CacheSize),
			fmt.Sprintf("%.0f", pt.ReactionDelayMS),
			lat(pt.DetectionLatencyS),
			lat(pt.TimeToMitigateS),
			fmt.Sprintf("%d", pt.CollateralDrops),
			fmt.Sprintf("%d", pt.AttackDrops),
			fmt.Sprintf("%.1f", pt.ResidualAttackPPS),
			fmt.Sprintf("%d", pt.CacheEvictions),
		})
	}
	return report.Table(headers, rows)
}
