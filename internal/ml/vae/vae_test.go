package vae

import (
	"testing"

	"ddoshield/internal/sim"
)

// anomalyData builds benign points on a low-dimensional structure (a line
// with noise) and anomalies off it.
func anomalyData(n int, frac float64, seed int64) ([][]float64, []int) {
	rng := sim.NewRNG(seed)
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		x := make([]float64, 8)
		if rng.Float64() < frac {
			for j := range x {
				x[j] = rng.Uniform(-4, 4) // unstructured anomaly
			}
			ys[i] = 1
		} else {
			t := rng.NormFloat64()
			for j := range x {
				x[j] = t*float64(j+1)/4 + 0.05*rng.NormFloat64()
			}
		}
		xs[i] = x
	}
	return xs, ys
}

func TestVAEFlagsAnomalies(t *testing.T) {
	xs, ys := anomalyData(3000, 0.1, 1)
	m, err := Train(Config{Seed: 1, Epochs: 15}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := anomalyData(600, 0.1, 2)
	correct := 0
	for i := range testX {
		if m.Predict(testX[i]) == testY[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(testX))
	if acc < 0.85 {
		t.Fatalf("anomaly accuracy = %.3f", acc)
	}
}

func TestReconErrorOrdering(t *testing.T) {
	xs, ys := anomalyData(2000, 0.05, 3)
	m, err := Train(Config{Seed: 3, Epochs: 15}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// A structured (benign-like) point reconstructs better than noise.
	benign := make([]float64, 8)
	for j := range benign {
		benign[j] = float64(j+1) / 4
	}
	noise := []float64{3, -3, 3, -3, 3, -3, 3, -3}
	if m.ReconError(benign) >= m.ReconError(noise) {
		t.Fatalf("recon errors: benign=%v noise=%v",
			m.ReconError(benign), m.ReconError(noise))
	}
}

func TestVAETrainsOnBenignOnly(t *testing.T) {
	// All-malicious labels leave nothing to train on.
	xs := [][]float64{{1, 2}, {3, 4}}
	ys := []int{1, 1}
	if _, err := Train(Config{}, xs, ys); err == nil {
		t.Fatal("trained with no benign rows")
	}
}

func TestVAEDeterministic(t *testing.T) {
	xs, ys := anomalyData(500, 0.1, 5)
	m1, err := Train(Config{Seed: 7, Epochs: 3}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(Config{Seed: 7, Epochs: 3}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Threshold != m2.Threshold {
		t.Fatal("same-seed training diverged")
	}
	if m1.Name() != "vae" || m1.MemoryBytes() <= 0 {
		t.Fatal("metadata broken")
	}
}
