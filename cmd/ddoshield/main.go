// Command ddoshield runs a full DDoShield-IoT testbed scenario: benign
// traffic from the device fleet against the TServer, a Mirai campaign
// (scan, infect, C2, flood waves), and capture at the TServer uplink. It
// writes the labeled dataset as CSV and, optionally, the raw capture as a
// standard pcap file — the data-generation phase of §IV-D.
//
// Usage:
//
//	ddoshield -duration 10m -devices 20 -out dataset.csv -pcap run.pcap
//	ddoshield -devices 1000 -groups 8 -domains 4     # partitioned fleet run
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"ddoshield/internal/faults"
	"ddoshield/internal/ids"
	"ddoshield/internal/mitigation"
	"ddoshield/internal/pcap"
	"ddoshield/internal/scenario"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/prof"
	"ddoshield/internal/telemetry/trace"
	"ddoshield/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ddoshield:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration  = flag.Duration("duration", 2*time.Minute, "simulated run length")
		devices   = flag.Int("devices", 10, "IoT device count")
		groups    = flag.Int("groups", 0, "split the fleet across this many edge switches (0/1 = flat single-switch topology); devices are packed by the load-aware partitioner")
		shards    = flag.Int("core-shards", 0, "shard the core fabric across this many switches (0/1 = single core switch; requires -groups >= the shard count); contiguous group blocks trunk to each shard, the server/IDS/C2/attacker plane stays on the root switch")
		seed      = flag.Int64("seed", 42, "simulation seed")
		warmup    = flag.Duration("warmup", 30*time.Second, "benign-only lead before the first attack wave")
		attackDur = flag.Duration("attack", 12*time.Second, "duration of each flood vector")
		attackGap = flag.Duration("gap", 3*time.Second, "gap between flood vectors")
		pps       = flag.Int("pps", 400, "per-bot flood rate (packets/s)")
		churn     = flag.Bool("churn", false, "enable device churn (reboots)")
		domains   = flag.Int("domains", 1, "PDES domain count (>1 partitions the run across scheduler goroutines; results are byte-identical to -domains 1)")
		chaos     = flag.Float64("chaos", 0, "fault-injection intensity in [0,1]: seeded random plan of link flaps, impairment windows and crash loops across the fleet (0 disables)")
		outCSV    = flag.String("out", "", "write the labeled dataset CSV here")
		outPcap   = flag.String("pcap", "", "write the raw capture here (pcap format)")
		window    = flag.Duration("window", time.Second, "feature aggregation window")
		config    = flag.String("config", "", "JSON scenario file (overrides topology/attack flags)")

		metricsOut  = flag.String("metrics-out", "", "write a Prometheus-text metrics snapshot here at end of run")
		metricsJSON = flag.String("metrics-json", "", "write a JSON metrics snapshot here at end of run")
		traceOut    = flag.String("trace-out", "", "write the flight recorder as chrome://tracing JSON here")
		listen      = flag.String("listen", "", "serve live /metrics, /metrics.json and /trace on this address (e.g. :9090)")

		idsFlag       = flag.Bool("ids", false, "attach an inline threshold-rule IDS unit at the TServer uplink (detection latency is printed at end of run)")
		mitigate      = flag.Bool("mitigate", false, "close the detection loop: install the verdict-cache firewall at the TServer ingress, fed by IDS alerts (requires -ids)")
		mitigationOut = flag.String("mitigation-out", "", "write the final mitigation scoreboard JSON here (requires -mitigate)")

		traceSample = flag.Float64("trace-sample", 0, "causal-tracing flow sample rate in [0,1] (0 disables; 1 traces every flow)")
		spanOut     = flag.String("span-out", "", "write finished causal-trace spans here as JSONL (analyze with tracetool)")
		summaryOut  = flag.String("summary-out", "", "write the end-of-run testbed summary here (byte-stable for a given seed, for determinism diffing)")
		profileOut  = flag.String("profile-out", "", "write the simulation profile (virtual-load attribution, engine stats, wall-clock phases) here as JSON and print the bottleneck report; enables the wall-clock profiler")
		pprofFlag   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -listen address (requires -listen)")
	)
	flag.Parse()
	if *pprofFlag && *listen == "" {
		return fmt.Errorf("-pprof requires -listen")
	}
	if *mitigate && !*idsFlag {
		return fmt.Errorf("-mitigate requires -ids (the firewall is driven by IDS window alerts)")
	}
	if *mitigationOut != "" && !*mitigate {
		return fmt.Errorf("-mitigation-out requires -mitigate")
	}

	var (
		tb  *testbed.Testbed
		def *scenario.Definition
		err error
	)
	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			return err
		}
		def, err = scenario.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		tb, err = def.Apply()
		if err != nil {
			return err
		}
		*duration = def.Duration()
		*window = def.Window()
		fmt.Printf("scenario %q loaded from %s\n", def.Name, *config)
	} else {
		tb, err = testbed.New(testbed.Config{
			Seed:            *seed,
			NumDevices:      *devices,
			DeviceGroups:    *groups,
			CoreShards:      *shards,
			Churn:           testbed.ChurnConfig{Enabled: *churn},
			TraceSampleRate: *traceSample,
			Domains:         *domains,
			Profile:         *profileOut != "",
		})
		if err != nil {
			return err
		}
	}

	dc := tb.NewDatasetCollector(*window)
	tb.AddTap(dc.Tap())

	var pcapFile *os.File
	if *outPcap != "" {
		pcapFile, err = os.Create(*outPcap)
		if err != nil {
			return err
		}
		defer pcapFile.Close()
		pw, err := pcap.NewWriter(pcapFile, 0)
		if err != nil {
			return err
		}
		tb.AddTap(pw.Tap())
	}

	ts := tb.NewThroughputSampler(time.Second)

	// The detection loop: an inline threshold-rule unit at the observation
	// tap, optionally closed by the verdict-cache firewall at the ingress.
	var (
		unit *ids.Unit
		fw   *mitigation.Firewall
	)
	if *idsFlag {
		unit = ids.New(ids.Config{
			Model:    ids.NewThresholdRule(),
			Window:   *window,
			Labeler:  tb.Labeler(),
			Registry: tb.Registry(),
		})
		tb.AttachIDS(unit)
		if *mitigate {
			fw = tb.AttachMitigation(unit, testbed.MitigationConfig{})
		}
	}

	// Live observability endpoint: the sim thread refreshes rendered
	// snapshots once per simulated second; HTTP handlers only ever serve
	// those cached bytes, so no handler touches simulation state.
	var live *telemetry.LiveServer
	if *listen != "" {
		live = telemetry.NewLiveServerOptions(telemetry.LiveServerOptions{EnablePprof: *pprofFlag})
		tb.Scheduler().Every(time.Second, func() {
			live.Update(tb.Scheduler().Now(), tb.Registry(), tb.Recorder())
			if fw != nil {
				if data, err := tb.MitigationScoreboard().JSON(); err == nil {
					live.UpdateMitigation(data)
				}
			}
		})
		// The profile walks the whole topology, so refresh it at a coarser
		// cadence than the per-second metrics tick.
		tb.Scheduler().Every(5*time.Second, func() {
			if data, err := tb.Profile(0).JSON(); err == nil {
				live.UpdateProfile(data)
			}
		})
		srv := &http.Server{Addr: *listen, Handler: live.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "ddoshield: telemetry listener:", err)
			}
		}()
		defer srv.Close()
		endpoints := "/metrics, /metrics.json, /trace, /profile.json"
		if *pprofFlag {
			endpoints += ", /debug/pprof/"
		}
		if fw != nil {
			endpoints += ", /mitigation.json"
		}
		fmt.Printf("telemetry: serving %s on %s\n", endpoints, *listen)
	}

	tb.Start()

	if *chaos > 0 {
		tb.Injector().Schedule(faults.Random(faults.RandomConfig{
			Seed:      *seed + 7,
			Start:     *warmup / 2,
			Window:    *duration,
			Intensity: *chaos,
		}))
	}

	if def == nil {
		// Repeating SYN/ACK/UDP waves for the whole run (the scenario file
		// carries its own attack plan).
		wave := tb.DefaultAttackWave(*attackDur, *pps)
		period := time.Duration(len(wave))*(*attackDur+*attackGap) + *attackGap
		for start := *warmup; start < *duration; start += period {
			tb.ScheduleAttackWave(start, *attackGap, wave)
		}
	}

	if def != nil {
		fmt.Printf("running scenario %q for %v...\n", def.Name, *duration)
	} else {
		fmt.Printf("running %v with %d devices (seed %d)...\n", *duration, *devices, *seed)
	}
	startWall := time.Now()
	if err := tb.Run(*duration); err != nil {
		return err
	}
	fmt.Printf("simulated %v in %v wall time\n", *duration, time.Since(startWall).Round(time.Millisecond))
	// Everything after Run — dataset rendering, snapshot writing — is the
	// teardown phase of the campaign profile.
	tb.Profiler().StartPhase(prof.PhaseTeardown)

	ds := dc.Dataset()
	fmt.Println("dataset:", ds.Summarize())
	fmt.Printf("devices infected: %d/%d, C2 bots connected: %d\n",
		tb.InfectedCount(), len(tb.Devices()), tb.C2().Bots())
	probes, connects, cracked, infections := tb.Attacker().Stats()
	fmt.Printf("attacker: %d probes, %d connects, %d cracked, %d infections\n",
		probes, connects, cracked, infections)
	if unit != nil {
		// Flush the trailing partial window so the last alerts are scored.
		unit.Flush()
		det, ttm := "n/a", "n/a"
		if d, ok := tb.DetectionLatency(unit); ok {
			det = d.Round(time.Millisecond).String()
		}
		if fw != nil {
			if d, ok := tb.TimeToMitigate(fw); ok {
				ttm = d.Round(time.Millisecond).String()
			}
			fmt.Printf("defense: detection latency %s, time-to-mitigate %s\n", det, ttm)
			evaluated, dropped := fw.Stats()
			fmt.Printf("mitigation: %d frames evaluated, %d dropped (%d attack, %d collateral), %d attack frames passed\n",
				evaluated, dropped, fw.AttackDrops(), fw.CollateralDrops(), fw.AttackPassed())
		} else {
			fmt.Printf("defense: detection latency %s\n", det)
		}
	}
	httpReqs, _ := tb.HTTPServer().Stats()
	streams, _ := tb.VideoServer().Stats()
	_, transfers, _, _ := tb.FTPServer().Stats()
	fmt.Printf("benign: %d HTTP requests, %d video streams, %d FTP transfers\n",
		httpReqs, streams, transfers)
	samples := ts.Samples()
	if len(samples) > 0 {
		var sum uint64
		for _, s := range samples {
			sum += s.RxBytes
		}
		fmt.Printf("TServer mean rx: %.2f Mb/s over %d s\n",
			float64(sum)*8/float64(len(samples))/1e6, len(samples))
	}

	if *outCSV != "" {
		f, err := os.Create(*outCSV)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ds.WriteCSV(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("dataset written to %s\n", *outCSV)
	}
	if *outPcap != "" {
		fmt.Printf("capture written to %s\n", *outPcap)
	}
	if err := writeSnapshot(*metricsOut, "metrics", func(w *os.File) error {
		return telemetry.WritePrometheus(w, tb.Registry())
	}); err != nil {
		return err
	}
	if err := writeSnapshot(*metricsJSON, "metrics JSON", func(w *os.File) error {
		return telemetry.WriteJSON(w, tb.Scheduler().Now(), tb.Registry())
	}); err != nil {
		return err
	}
	if err := writeSnapshot(*traceOut, "trace", func(w *os.File) error {
		return telemetry.WriteChromeTrace(w, tb.Recorder())
	}); err != nil {
		return err
	}
	if err := writeSnapshot(*summaryOut, "summary", func(w *os.File) error {
		_, err := w.WriteString(tb.Summary())
		return err
	}); err != nil {
		return err
	}
	if fw != nil {
		if err := writeSnapshot(*mitigationOut, "mitigation scoreboard", func(w *os.File) error {
			data, err := tb.MitigationScoreboard().JSON()
			if err != nil {
				return err
			}
			_, err = w.Write(data)
			return err
		}); err != nil {
			return err
		}
	}
	if *spanOut != "" {
		if tb.Tracer() == nil {
			fmt.Println("spans: no tracer attached (set -trace-sample > 0, or a scenario without tracing was loaded); skipping", *spanOut)
		} else if err := writeSnapshot(*spanOut, "spans", func(w *os.File) error {
			return trace.WriteSpans(w, tb.Tracer().Spans())
		}); err != nil {
			return err
		}
	}
	// The profile is written last so its teardown phase covers the other
	// artifacts' rendering time.
	tb.Profiler().EndPhase(prof.PhaseTeardown)
	if *profileOut != "" {
		if err := writeSnapshot(*profileOut, "profile", func(w *os.File) error {
			return tb.Profile(0).WriteJSON(w)
		}); err != nil {
			return err
		}
		fmt.Fprint(os.Stderr, tb.BottleneckReport(0).String())
	}
	return nil
}

// writeSnapshot renders one end-of-run telemetry artifact to path (no-op
// when path is empty).
func writeSnapshot(path, what string, render func(*os.File) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s written to %s\n", what, path)
	return nil
}
