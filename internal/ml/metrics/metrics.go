// Package metrics implements the evaluation measures of §IV-C: accuracy,
// precision, recall and F1-score over a confusion matrix. The paper notes
// that during real-time detection only accuracy is meaningful (windows may
// contain a single class, making precision/recall divide by zero); the
// Report type mirrors that by exposing Defined flags alongside values.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Confusion is a binary confusion matrix with the malicious class as
// positive.
type Confusion struct {
	TP int // malicious predicted malicious
	TN int // benign predicted benign
	FP int // benign predicted malicious
	FN int // malicious predicted benign
}

// Add accumulates one prediction.
func (c *Confusion) Add(truth, pred int) {
	switch {
	case truth == 1 && pred == 1:
		c.TP++
	case truth == 0 && pred == 0:
		c.TN++
	case truth == 0 && pred == 1:
		c.FP++
	default:
		c.FN++
	}
}

// AddBatch accumulates parallel truth/prediction slices.
func (c *Confusion) AddBatch(truth, pred []int) {
	for i := range truth {
		c.Add(truth[i], pred[i])
	}
}

// Merge folds another confusion matrix into c.
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.TN += o.TN
	c.FP += o.FP
	c.FN += o.FN
}

// Total reports the number of accumulated predictions.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Accuracy is (TP+TN)/total; NaN-free (0 on empty).
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision is TP/(TP+FP). ok=false when undefined (no positive
// predictions) — the division-by-zero case the paper avoids in real time.
func (c Confusion) Precision() (v float64, ok bool) {
	if c.TP+c.FP == 0 {
		return 0, false
	}
	return float64(c.TP) / float64(c.TP+c.FP), true
}

// Recall is TP/(TP+FN). ok=false when undefined (no positive truths).
func (c Confusion) Recall() (v float64, ok bool) {
	if c.TP+c.FN == 0 {
		return 0, false
	}
	return float64(c.TP) / float64(c.TP+c.FN), true
}

// F1 is the harmonic mean of precision and recall. ok=false when either
// constituent is undefined or both are zero.
func (c Confusion) F1() (v float64, ok bool) {
	p, pok := c.Precision()
	r, rok := c.Recall()
	if !pok || !rok || p+r == 0 {
		return 0, false
	}
	return 2 * p * r / (p + r), true
}

// Report bundles the four metrics with definedness flags.
type Report struct {
	Accuracy         float64
	Precision        float64
	PrecisionDefined bool
	Recall           float64
	RecallDefined    bool
	F1               float64
	F1Defined        bool
	Confusion        Confusion
}

// NewReport evaluates a confusion matrix.
func NewReport(c Confusion) Report {
	r := Report{Accuracy: c.Accuracy(), Confusion: c}
	r.Precision, r.PrecisionDefined = c.Precision()
	r.Recall, r.RecallDefined = c.Recall()
	r.F1, r.F1Defined = c.F1()
	return r
}

// Evaluate builds a report from parallel truth/prediction slices.
func Evaluate(truth, pred []int) Report {
	var c Confusion
	c.AddBatch(truth, pred)
	return NewReport(c)
}

// String renders a one-line summary with percentages.
func (r Report) String() string {
	fmtPct := func(v float64, def bool) string {
		if !def {
			return "n/a"
		}
		return fmt.Sprintf("%.2f%%", v*100)
	}
	return fmt.Sprintf("acc=%.2f%% prec=%s rec=%s f1=%s (tp=%d tn=%d fp=%d fn=%d)",
		r.Accuracy*100,
		fmtPct(r.Precision, r.PrecisionDefined),
		fmtPct(r.Recall, r.RecallDefined),
		fmtPct(r.F1, r.F1Defined),
		r.Confusion.TP, r.Confusion.TN, r.Confusion.FP, r.Confusion.FN)
}

// Mean averages a series of values, returning 0 on empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Min returns the smallest value, or +Inf on empty input.
func Min(vals []float64) float64 {
	m := math.Inf(1)
	for _, v := range vals {
		if v < m {
			m = v
		}
	}
	return m
}

// ROCPoint is one operating point of a score-based detector.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // true-positive rate (recall)
	FPR       float64 // false-positive rate
}

// ROC computes the receiver-operating-characteristic curve and its AUC for
// a score-based detector (higher score = more malicious). Score-producing
// models (SVM margins, Isolation Forest anomaly scores, VAE reconstruction
// errors) are threshold-tunable; ROC quantifies the whole trade-off rather
// than one operating point.
func ROC(scores []float64, truth []int) (auc float64, curve []ROCPoint) {
	n := len(scores)
	if n == 0 || n != len(truth) {
		return 0, nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var pos, neg int
	for _, y := range truth {
		if y == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, nil
	}
	curve = append(curve, ROCPoint{Threshold: math.Inf(1)})
	tp, fp := 0, 0
	var prevScore = math.Inf(1)
	for _, i := range idx {
		if scores[i] != prevScore {
			curve = append(curve, ROCPoint{
				Threshold: scores[i],
				TPR:       float64(tp) / float64(pos),
				FPR:       float64(fp) / float64(neg),
			})
			prevScore = scores[i]
		}
		if truth[i] == 1 {
			tp++
		} else {
			fp++
		}
	}
	curve = append(curve, ROCPoint{Threshold: math.Inf(-1), TPR: 1, FPR: 1})
	// Trapezoidal AUC over the curve.
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		auc += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return auc, curve
}
