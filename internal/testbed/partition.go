package testbed

import "sort"

// Load-aware fleet placement. The round-robin `i % groups` layout this
// replaces put every heavy device class in lock-step across groups and —
// worse — concentrated whole profile classes into single PDES domains,
// so one hot domain serialized the epoch barrier while idle domains
// waited. Placement here is greedy LPT (longest-processing-time) bin
// packing over each device's expected event rate: sort devices by weight
// descending, assign each to the currently lightest bin. The classic
// 4/3-approximation bound applies, which in practice keeps the max/min
// domain event-rate ratio within a small constant for any mixed fleet
// (the partition tests pin the observed bound).
//
// Determinism: placement is a pure function of (profiles, think time,
// scannability, group count) — no RNG, no map iteration, stable sorts
// only. The same Config therefore yields the same topology on every run,
// and the topology never depends on Domains: execution mode chooses where
// groups *run*, never what is *simulated*, preserving byte-identical
// output across Domains settings.

// placement is the computed layout for one Config.
type placement struct {
	// weights[i] is device i's expected event-rate weight.
	weights []float64
	// deviceGroup[i] is device i's access-switch group (all 0 when the
	// topology is flat).
	deviceGroup []int
	// groupDomain[g] is group g's PDES domain (nil when Domains <= 1 or
	// the topology is flat).
	groupDomain []int
	// deviceDomain[i] is device i's PDES domain (0 when serial).
	deviceDomain []int
}

// layout computes the fleet placement for the configuration. Requires
// withDefaults() to have run (Profiles, MeanThink, group/domain counts
// populated).
func (c Config) layout() placement { return c.layoutDomains(c.Domains) }

// layoutDomains computes the placement for an arbitrary domain count,
// independent of c.Domains. The execution engine uses the layout at
// c.Domains (via layout); the profiler's virtual-load attribution
// re-evaluates the same pure function at a fixed reference count so its
// snapshot is byte-identical across Domains settings.
func (c Config) layoutDomains(domains int) placement {
	pl := placement{
		weights:      make([]float64, c.NumDevices),
		deviceGroup:  make([]int, c.NumDevices),
		deviceDomain: make([]int, c.NumDevices),
	}
	for i := range pl.weights {
		p := c.Profiles[i%len(c.Profiles)]
		pl.weights[i] = p.EventWeight(c.MeanThink, deviceScannable(i))
	}
	if c.DeviceGroups > 1 {
		pl.deviceGroup = partitionLPT(pl.weights, c.DeviceGroups)
	}
	if domains > 1 {
		if c.DeviceGroups > 1 {
			// Domain granularity is the group: a group's devices share an
			// edge switch, and that whole subtree must execute in one
			// domain. Pack groups onto the non-core domains by their
			// summed device weight.
			groupWeight := make([]float64, c.DeviceGroups)
			for i, g := range pl.deviceGroup {
				groupWeight[g] += pl.weights[i]
			}
			bins := partitionLPT(groupWeight, domains-1)
			pl.groupDomain = make([]int, c.DeviceGroups)
			for g, b := range bins {
				pl.groupDomain[g] = 1 + b
			}
			for i, g := range pl.deviceGroup {
				pl.deviceDomain[i] = pl.groupDomain[g]
			}
		} else {
			// Flat topology, partitioned execution: devices spread
			// directly over the non-core domains.
			bins := partitionLPT(pl.weights, domains-1)
			for i, b := range bins {
				pl.deviceDomain[i] = 1 + b
			}
		}
	}
	return pl
}

// domainOfGroup reports group g's PDES domain (0 when serial).
func (pl placement) domainOfGroup(g int) int {
	if pl.groupDomain == nil {
		return 0
	}
	return pl.groupDomain[g]
}

// partitionLPT assigns each weighted item to one of bins bins, heaviest
// items first, each to the currently lightest bin (ties break toward the
// lowest bin index; equal-weight items keep index order via the stable
// sort, so a uniform fleet degrades to exactly the old round-robin).
func partitionLPT(weights []float64, bins int) []int {
	assign := make([]int, len(weights))
	if bins <= 1 {
		return assign
	}
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	load := make([]float64, bins)
	for _, idx := range order {
		best := 0
		for b := 1; b < bins; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		assign[idx] = best
		load[best] += weights[idx]
	}
	return assign
}

// binLoads sums the assigned weight per bin — the quantity the skew test
// bounds.
func binLoads(weights []float64, assign []int, bins int) []float64 {
	load := make([]float64, bins)
	for i, b := range assign {
		load[b] += weights[i]
	}
	return load
}
