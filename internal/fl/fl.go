// Package fl emulates the Federated-Learning NIDS the paper's conclusion
// names as its next objective: each IoT site trains the CNN detector on
// its own locally captured traffic, only model weights travel to the
// aggregation server, and FedAvg (McMahan et al.) combines them into a
// global model — no raw traffic leaves any site, addressing the privacy
// concern the paper raises. In line with the paper's Green-AI framing,
// training measures the energy each round consumes.
package fl

import (
	"fmt"
	"time"

	"ddoshield/internal/dataset"
	"ddoshield/internal/ml/cnn"
	"ddoshield/internal/sim"
)

// Config tunes the federation.
type Config struct {
	// Rounds is the number of federated rounds (default 5).
	Rounds int
	// LocalEpochs is each client's per-round training budget (default 2).
	LocalEpochs int
	// ClientFraction samples this share of clients per round (default 1).
	ClientFraction float64
	// Model configures the shared CNN architecture (Inputs set from data).
	Model cnn.Config
	// DevicePowerWatts estimates client energy from measured compute time
	// (default 3 W, a Raspberry-Pi-class device under load).
	DevicePowerWatts float64
	// Seed drives client sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 5
	}
	if c.LocalEpochs <= 0 {
		c.LocalEpochs = 2
	}
	if c.ClientFraction <= 0 || c.ClientFraction > 1 {
		c.ClientFraction = 1
	}
	if c.DevicePowerWatts <= 0 {
		c.DevicePowerWatts = 3
	}
	return c
}

// RoundStats records one federated round.
type RoundStats struct {
	// Round is the 1-based round number.
	Round int
	// Participants is how many clients trained this round.
	Participants int
	// MeanLocalLoss averages the participants' final local epoch loss.
	MeanLocalLoss float64
	// ComputeTime is the summed wall-clock training time across clients.
	ComputeTime time.Duration
	// EnergyJoules estimates the round's client-side training energy.
	EnergyJoules float64
}

// Result is the trained global model plus the round history.
type Result struct {
	Global *cnn.Network
	Rounds []RoundStats
	// TotalEnergyJoules sums client training energy over all rounds —
	// the Green-AI budget of the federation.
	TotalEnergyJoules float64
}

// Train runs FedAvg over client shards. Each shard is one site's local
// labeled dataset (already preprocessed/scaled); shards never leave their
// client.
func Train(cfg Config, shards []*dataset.Dataset) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(shards) == 0 {
		return nil, fmt.Errorf("fl: no client shards")
	}
	var width int
	for _, sh := range shards {
		if sh.Len() > 0 {
			width = sh.NumFeatures()
			break
		}
	}
	if width == 0 {
		return nil, fmt.Errorf("fl: all client shards empty")
	}
	mc := cfg.Model
	mc.Inputs = width
	mc.Epochs = cfg.LocalEpochs
	if mc.Seed == 0 {
		mc.Seed = cfg.Seed
	}
	global, err := cnn.New(mc)
	if err != nil {
		return nil, fmt.Errorf("fl: %w", err)
	}
	rng := sim.Substream(cfg.Seed, "fl")
	res := &Result{Global: global}

	acc := global.Clone() // aggregation accumulator
	for round := 1; round <= cfg.Rounds; round++ {
		// Sample participants.
		k := int(float64(len(shards)) * cfg.ClientFraction)
		if k < 1 {
			k = 1
		}
		perm := rng.Perm(len(shards))[:k]

		acc.ZeroWeights()
		var totalSamples int
		for _, ci := range perm {
			if shards[ci].Len() > 0 {
				totalSamples += shards[ci].Len()
			}
		}
		if totalSamples == 0 {
			return nil, fmt.Errorf("fl: round %d sampled only empty shards", round)
		}

		stats := RoundStats{Round: round}
		var lossSum float64
		start := time.Now()
		for _, ci := range perm {
			shard := shards[ci]
			if shard.Len() == 0 {
				continue
			}
			local := global.Clone()
			local.Cfg.Seed = cfg.Seed + int64(round)*1000 + int64(ci)
			xs, ys := shard.XY()
			tr, err := local.Fit(xs, ys)
			if err != nil {
				return nil, fmt.Errorf("fl: client %d round %d: %w", ci, round, err)
			}
			if n := len(tr.EpochLoss); n > 0 {
				lossSum += tr.EpochLoss[n-1]
			}
			stats.Participants++
			// FedAvg: weight by local sample count.
			acc.ScaleAccumulate(local, float64(shard.Len())/float64(totalSamples))
		}
		stats.ComputeTime = time.Since(start)
		stats.EnergyJoules = stats.ComputeTime.Seconds() * cfg.DevicePowerWatts
		if stats.Participants > 0 {
			stats.MeanLocalLoss = lossSum / float64(stats.Participants)
		}
		global.SetWeightsFrom(acc)
		res.Rounds = append(res.Rounds, stats)
		res.TotalEnergyJoules += stats.EnergyJoules
	}
	return res, nil
}

// Partition splits a dataset into n client shards. When byLabelSkew is
// true the split is non-IID: odd shards receive a malicious-heavy mix,
// even shards a benign-heavy one — the heterogeneity real IoT sites show.
func Partition(ds *dataset.Dataset, n int, byLabelSkew bool, rng *sim.RNG) []*dataset.Dataset {
	if n < 1 {
		n = 1
	}
	shards := make([]*dataset.Dataset, n)
	var odd, even []int
	for i := range shards {
		shards[i] = dataset.New(ds.Names)
		if i%2 == 1 {
			odd = append(odd, i)
		} else {
			even = append(even, i)
		}
	}
	if len(odd) == 0 {
		odd = even
	}
	perm := rng.Perm(ds.Len())
	for k, idx := range perm {
		s := &ds.Samples[idx]
		var target int
		if byLabelSkew {
			// 80% of malicious to odd shards, 80% of benign to even ones.
			toOdd := rng.Float64() < 0.8
			if s.Y == dataset.Benign {
				toOdd = !toOdd
			}
			if toOdd {
				target = odd[rng.Intn(len(odd))]
			} else {
				target = even[rng.Intn(len(even))]
			}
		} else {
			target = k % n
		}
		shards[target].Add(s.X, s.Y)
	}
	return shards
}
