// Command benchperf runs the hot-path microbenchmarks programmatically and
// emits a machine-readable JSON report — the artifact CI and EXPERIMENTS.md
// track for the allocation-free scheduler, the pooled packet pipeline and
// the window extractor:
//
//	benchperf                       run the core benchmarks, write BENCH_scheduler.json
//	benchperf -out path.json        choose the output path
//	benchperf -sweep                also run the (slow) parallel resilience sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ddoshield/internal/experiments"
	"ddoshield/internal/features"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// Result is one benchmark's headline numbers.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Report is the emitted JSON document.
type Report struct {
	GoMaxProcs int      `json:"gomaxprocs"`
	GoVersion  string   `json:"go_version"`
	Benchmarks []Result `json:"benchmarks"`
}

func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

var noop sim.Handler = func() {}

func benchScheduler(b *testing.B) {
	s := sim.NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, noop)
		s.Step()
	}
}

func benchSchedulerCancel(b *testing.B) {
	s := sim.NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := s.After(time.Microsecond, noop)
		ev.Cancel()
	}
}

func benchPacketRoundtrip(b *testing.B) {
	src, dst := packet.MACFromUint64(1), packet.MACFromUint64(2)
	ip := packet.IPv4{Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(10, 0, 0, 2), TTL: 64}
	tcp := packet.TCP{SrcPort: 40000, DstPort: 80, Seq: 1234, Flags: packet.FlagSYN, Window: 65535}
	payload := []byte("GET / HTTP/1.1\r\n\r\n")
	buf := make([]byte, 0, 128)
	p := packet.Acquire()
	defer p.Release()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = packet.AppendTCP(buf[:0], src, dst, ip, tcp, payload)
		if err := packet.DecodeInto(p, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchExtractorWindow(b *testing.B) {
	e := features.NewExtractor(time.Second, func(w *features.Window) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := sim.Time(i) * sim.Second
		for j := 0; j < 1000; j++ {
			e.Add(features.Basic{
				Time:    base + sim.Time(j)*sim.Millisecond,
				Src:     packet.AddrFrom4(10, 0, byte(j%4), byte(j%200)),
				Dst:     packet.AddrFrom4(10, 0, 0, 1),
				Proto:   packet.ProtoTCP,
				SrcPort: uint16(30000 + j%512),
				DstPort: 80,
				Length:  60,
				Flags:   packet.FlagSYN,
				Seq:     uint32(j) * 1664525,
			})
		}
		e.Flush()
	}
}

type constModel struct{}

func (constModel) Predict([]float64) int { return 1 }
func (constModel) Name() string          { return "allpos" }

func benchResilienceSweep(b *testing.B) {
	sc := experiments.Quick()
	sc.Devices = 4
	sc.InfectionLead = 20 * time.Second
	sc.DetectDuration = 20 * time.Second
	models := []experiments.TrainedModel{{Model: constModel{}}}
	cfg := experiments.ResilienceConfig{Intensities: []float64{0, 0.25, 0.5, 1}}
	for i := 0; i < b.N; i++ {
		if _, err := sc.RunResilience(models, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_scheduler.json", "output path for the JSON report")
	sweep := flag.Bool("sweep", false, "also run the (slow) parallel resilience sweep benchmark")
	flag.Parse()

	rep := Report{GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}
	rep.Benchmarks = append(rep.Benchmarks,
		measure("Scheduler", benchScheduler),
		measure("SchedulerCancel", benchSchedulerCancel),
		measure("PacketRoundtrip", benchPacketRoundtrip),
		measure("ExtractorWindow", benchExtractorWindow),
	)
	if *sweep {
		rep.Benchmarks = append(rep.Benchmarks, measure("ResilienceSweep", benchResilienceSweep))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	for _, r := range rep.Benchmarks {
		fmt.Printf("%-18s %12.1f ns/op %8d B/op %6d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Println("wrote", *out)
}
