package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ddoshield/internal/sim"
)

// get issues one request against the live server's handler and returns the
// response status, content type and body.
func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestLiveServerEmptySnapshots pins the before-first-Update contract: every
// endpoint answers 204 No Content with its content type already set.
func TestLiveServerEmptySnapshots(t *testing.T) {
	s := NewLiveServer()
	h := s.Handler()
	cases := []struct {
		path, contentType string
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/metrics.json", "application/json"},
		{"/trace", "application/json"},
	}
	for _, c := range cases {
		status, ct, body := get(t, h, c.path)
		if status != http.StatusNoContent {
			t.Errorf("%s before Update: status=%d, want 204", c.path, status)
		}
		if ct != c.contentType {
			t.Errorf("%s: content-type=%q, want %q", c.path, ct, c.contentType)
		}
		if body != "" {
			t.Errorf("%s: unexpected body %q", c.path, body)
		}
	}
	if s.Updates() != 0 {
		t.Fatalf("updates = %d before any Update", s.Updates())
	}
}

// TestLiveServerServesSnapshots publishes a snapshot and checks each
// endpoint returns 200 with the rendered content.
func TestLiveServerServesSnapshots(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("frames_total", L("nic", "tserver/eth0"))
	c.Add(42)
	rec := NewRecorder(16)
	rec.Emit(sim.Second, CatIDS, "alert", "ids", 7)

	s := NewLiveServer()
	s.Update(2*sim.Second, reg, rec)
	if s.Updates() != 1 {
		t.Fatalf("updates = %d, want 1", s.Updates())
	}
	h := s.Handler()

	status, ct, body := get(t, h, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status=%d", status)
	}
	if ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics: content-type=%q", ct)
	}
	if !strings.Contains(body, `frames_total{nic="tserver/eth0"} 42`) {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	status, ct, body = get(t, h, "/metrics.json")
	if status != http.StatusOK || ct != "application/json" {
		t.Fatalf("/metrics.json: status=%d content-type=%q", status, ct)
	}
	if !strings.Contains(body, `"frames_total"`) {
		t.Fatalf("/metrics.json body missing counter:\n%s", body)
	}

	status, ct, body = get(t, h, "/trace")
	if status != http.StatusOK || ct != "application/json" {
		t.Fatalf("/trace: status=%d content-type=%q", status, ct)
	}
	if !strings.Contains(body, `"alert"`) {
		t.Fatalf("/trace body missing event:\n%s", body)
	}
}

// TestLiveServerProfileEndpoint checks /profile.json serves exactly the
// bytes published by UpdateProfile (204 before the first publish).
func TestLiveServerProfileEndpoint(t *testing.T) {
	s := NewLiveServer()
	h := s.Handler()
	status, _, _ := get(t, h, "/profile.json")
	if status != http.StatusNoContent {
		t.Fatalf("/profile.json before publish: status=%d, want 204", status)
	}
	doc := `{"virtual":{"eval_domains":3}}`
	s.UpdateProfile([]byte(doc))
	status, ct, body := get(t, h, "/profile.json")
	if status != http.StatusOK || ct != "application/json" {
		t.Fatalf("/profile.json: status=%d content-type=%q", status, ct)
	}
	if body != doc {
		t.Fatalf("/profile.json body = %q, want %q", body, doc)
	}
}

// TestLiveServerMitigationEndpoint checks /mitigation.json serves exactly
// the bytes published by UpdateMitigation (204 before the first publish),
// the defense-scoreboard analogue of the profile endpoint.
func TestLiveServerMitigationEndpoint(t *testing.T) {
	s := NewLiveServer()
	h := s.Handler()
	status, ct, _ := get(t, h, "/mitigation.json")
	if status != http.StatusNoContent {
		t.Fatalf("/mitigation.json before publish: status=%d, want 204", status)
	}
	if ct != "application/json" {
		t.Fatalf("/mitigation.json: content-type=%q", ct)
	}
	doc := `{"now_s":12,"units":[{"unit":"ids","attack_drops":7}]}`
	s.UpdateMitigation([]byte(doc))
	status, ct, body := get(t, h, "/mitigation.json")
	if status != http.StatusOK || ct != "application/json" {
		t.Fatalf("/mitigation.json: status=%d content-type=%q", status, ct)
	}
	if body != doc {
		t.Fatalf("/mitigation.json body = %q, want %q", body, doc)
	}
	// Republish: handlers must serve the newest board.
	s.UpdateMitigation([]byte(`{"now_s":13}`))
	if _, _, body = get(t, h, "/mitigation.json"); body != `{"now_s":13}` {
		t.Fatalf("stale scoreboard served: %q", body)
	}
}

// TestLiveServerPprofOptIn pins the pprof exposure contract: the runtime
// profiler endpoints exist only when LiveServerOptions.EnablePprof is set;
// the default handler keeps them 404.
func TestLiveServerPprofOptIn(t *testing.T) {
	status, _, _ := get(t, NewLiveServer().Handler(), "/debug/pprof/")
	if status != http.StatusNotFound {
		t.Fatalf("default handler serves pprof: status=%d, want 404", status)
	}
	s := NewLiveServerOptions(LiveServerOptions{EnablePprof: true})
	h := s.Handler()
	status, _, body := get(t, h, "/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("pprof index: status=%d, want 200", status)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index body unexpected:\n%s", body)
	}
	if status, _, _ = get(t, h, "/debug/pprof/cmdline"); status != http.StatusOK {
		t.Fatalf("pprof cmdline: status=%d, want 200", status)
	}
}

// TestLiveServerUpdateRefreshesCache verifies handlers serve the latest
// published snapshot, not the one rendered at first Update.
func TestLiveServerUpdateRefreshesCache(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("ticks_total")
	s := NewLiveServer()

	c.Inc()
	s.Update(sim.Second, reg, nil)
	h := s.Handler()
	_, _, body := get(t, h, "/metrics")
	if !strings.Contains(body, "ticks_total 1") {
		t.Fatalf("first snapshot:\n%s", body)
	}

	c.Add(9)
	_, _, body = get(t, h, "/metrics")
	if !strings.Contains(body, "ticks_total 1") {
		t.Fatalf("cache must not move before Update:\n%s", body)
	}

	s.Update(2*sim.Second, reg, nil)
	if s.Updates() != 2 {
		t.Fatalf("updates = %d, want 2", s.Updates())
	}
	_, _, body = get(t, h, "/metrics")
	if !strings.Contains(body, "ticks_total 10") {
		t.Fatalf("second snapshot not served:\n%s", body)
	}
}
