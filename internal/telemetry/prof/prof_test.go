package prof

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ddoshield/internal/sim"
)

// TestProfilerHotPathAllocFree pins the enabled profiler's probe callbacks
// at zero allocations: every accumulator is preallocated at New, so epoch
// loops never pay for observation. CI runs this by name.
func TestProfilerHotPathAllocFree(t *testing.T) {
	p := New(8)
	allocs := testing.AllocsPerRun(1000, func() {
		p.OnEpoch(1000, 6000, 250)
		p.OnCrossMessages(1, 0, 3)
		p.OnCrossMessages(0, 7, 2)
		p.OnDomainWindow(0, 40, 1200, 300)
		p.OnDomainWindow(7, 2, 80, 900)
	})
	if allocs != 0 {
		t.Fatalf("probe hot path allocates %.1f/op, want 0", allocs)
	}
}

// TestEngineProbeAllocFree pins the engine's probe-attached epoch loop at
// zero allocations per cross-domain round trip, matching the probe-less
// guarantee.
func TestEngineProbeAllocFree(t *testing.T) {
	e := sim.NewEngine(2, 25)
	p := New(2)
	e.SetProbe(p)
	var ping, pong sim.Handler
	ping = func() {
		e.Domain(0).Post(e.Domain(1), e.Domain(0).Scheduler().Now()+25, pong)
	}
	pong = func() {
		e.Domain(1).Post(e.Domain(0), e.Domain(1).Scheduler().Now()+25, ping)
	}
	e.Domain(0).Scheduler().At(0, ping)
	// Warm pools: message structs, outbox slices, scheduler nodes, scratch.
	if err := e.RunFor(10_000, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.RunFor(1_000, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("probed engine epoch loop allocates %.1f/op, want 0", allocs)
	}
	if p.epochs == 0 || p.crossTotal == 0 || p.events[0] == 0 || p.events[1] == 0 {
		t.Fatalf("probe saw no traffic: epochs=%d cross=%d events=%v", p.epochs, p.crossTotal, p.events)
	}
	if p.execNs[0] < 0 || p.mergeNs < 0 {
		t.Fatal("negative wall accounting")
	}
}

// TestPhaseAccumulation checks phase timers accumulate across open/close
// cycles and ignore unmatched EndPhase calls.
func TestPhaseAccumulation(t *testing.T) {
	p := New(1)
	p.EndPhase(PhaseRun) // not open: no-op
	if got := p.PhaseNs(PhaseRun); got != 0 {
		t.Fatalf("unmatched EndPhase recorded %d ns", got)
	}
	for i := 0; i < 2; i++ {
		p.StartPhase(PhaseRun)
		time.Sleep(time.Millisecond)
		p.EndPhase(PhaseRun)
	}
	if got := p.PhaseNs(PhaseRun); got < int64(time.Millisecond) {
		t.Fatalf("accumulated run phase %d ns, want >= 1ms", got)
	}
	wp := p.WallProfile()
	found := false
	for _, ph := range wp.Phases {
		if ph.Phase == "run" && ph.MS > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("WallProfile missing run phase: %+v", wp.Phases)
	}
}

// TestNilProfilerSafe checks every method tolerates a nil receiver, so
// call sites stay branch-free.
func TestNilProfilerSafe(t *testing.T) {
	var p *Profiler
	p.OnEpoch(0, 10, 1)
	p.OnCrossMessages(0, 1, 2)
	p.OnDomainWindow(0, 1, 2, 3)
	p.StartPhase(PhaseBuild)
	p.EndPhase(PhaseBuild)
	if p.WallProfile() != nil {
		t.Fatal("nil profiler WallProfile should be nil")
	}
	if p.Domains() != 0 || p.PhaseNs(PhaseRun) != 0 {
		t.Fatal("nil profiler accessors should be zero")
	}
}

// TestBuildVirtualDeterministic pins the virtual section's canonical
// ordering: byte-equal JSON for permuted but equal inputs.
func TestBuildVirtualDeterministic(t *testing.T) {
	entities := []Entity{
		{Name: "lan0", Kind: KindSwitch, Domain: 0, Events: 900},
		{Name: "dev00", Kind: KindDevice, Domain: 1, Events: 100},
		{Name: "dev01", Kind: KindDevice, Domain: 2, Events: 300},
		{Name: "trunk0", Kind: KindLink, Domain: -1, Events: 500},
	}
	cross := []CrossLoad{{From: 2, To: 0, Count: 7}, {From: 0, To: 1, Count: 3}}
	a := BuildVirtual(3, entities, cross, 2)
	// Reversed input order: aggregation must not depend on it.
	rev := []Entity{entities[3], entities[2], entities[1], entities[0]}
	b := BuildVirtual(3, rev, []CrossLoad{cross[1], cross[0]}, 2)
	aj, err := (&Profile{Virtual: a}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := (&Profile{Virtual: b}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("virtual profile JSON depends on input order:\n--- a ---\n%s--- b ---\n%s", aj, bj)
	}
	if a.TotalEvents != 1800 || a.Entities != 4 {
		t.Fatalf("totals: got %d events over %d entities", a.TotalEvents, a.Entities)
	}
	// Domain attribution excludes the link (Domain -1): 900+100+300 over 3
	// domains, mean ~433.3, max 900 -> imbalance ~2.08.
	if a.ImbalanceIndex < 2.0 || a.ImbalanceIndex > 2.1 {
		t.Fatalf("imbalance index %.3f, want ~2.08", a.ImbalanceIndex)
	}
	if a.TopEntities[0].Name != "lan0" || a.TopEntities[0].XMean != 2.0 {
		t.Fatalf("top entity %+v, want lan0 at 2.0x mean", a.TopEntities[0])
	}
	if a.Cross[0].From != 0 || a.Cross[1].From != 2 {
		t.Fatalf("cross pairs unsorted: %+v", a.Cross)
	}
}

// TestReportRendersFindings exercises the digest over a fully populated
// profile: the table renders every section and the findings name the
// straggler, the hot entity and the core-switch serialization.
func TestReportRendersFindings(t *testing.T) {
	entities := []Entity{
		{Name: "lan0", Kind: KindSwitch, Domain: 0, Events: 6200},
		{Name: "dev00", Kind: KindDevice, Domain: 1, Events: 800},
		{Name: "dev01", Kind: KindDevice, Domain: 2, Events: 1000},
	}
	p := &Profile{
		Virtual: BuildVirtual(3, entities, []CrossLoad{{From: 1, To: 0, Count: 50}}, 3),
		Engine: &EngineProfile{
			Domains: 3, Epochs: 10, LookaheadNs: 5e6,
			PerDomain: []DomainEngine{
				{Domain: 0, Events: 6200, MsgsIn: 90, MsgsOut: 10},
				{Domain: 1, Events: 800, MsgsIn: 5, MsgsOut: 60},
				{Domain: 2, Events: 1000, MsgsIn: 5, MsgsOut: 40},
			},
			Cross: []CrossLoad{{From: 1, To: 0, Count: 60}, {From: 2, To: 0, Count: 40}},
		},
		Wall: &WallProfile{
			Phases: []PhaseWall{{Phase: "build", MS: 10}, {Phase: "run", MS: 200}},
			PerDomain: []DomainWall{
				{Domain: 0, ExecMS: 180, WaitMS: 2, WaitShare: 0.01},
				{Domain: 1, ExecMS: 20, WaitMS: 140, WaitShare: 0.875},
				{Domain: 2, ExecMS: 30, WaitMS: 130, WaitShare: 0.81},
			},
		},
	}
	r := BuildReport(p)
	out := r.String()
	for _, want := range []string{
		"switch lan0",
		"core-domain switch serializes",
		"domain 1 spent 88% of its epoch wall clock waiting",
		"straggler: domain 0",
		"imbalance",
		"1->0: 60 msgs (60% of 100 total)",
		"campaign phases: build 10.0 ms, run 200.0 ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Table has one row per domain with all three sections populated.
	if !strings.Contains(out, "virt events") || !strings.Contains(out, "wait %") {
		t.Errorf("table headers missing:\n%s", out)
	}
	if BuildReport(nil).String() != "" {
		t.Error("nil profile should render empty report")
	}
}
