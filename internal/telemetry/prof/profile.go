package prof

import (
	"encoding/json"
	"io"
	"sort"

	"ddoshield/internal/sim"
)

// Entity kind names used by the virtual-load attribution.
const (
	KindDevice = "device"
	KindSwitch = "switch"
	KindLink   = "link"
	KindIDS    = "ids"
	KindFaults = "faults"
	KindHost   = "host"
)

// Entity is one attributable simulation object and its deterministic event
// count (frames for network entities, packets for IDS units, injections
// for the fault injector). Domain is the entity's domain under the
// reference layout the caller evaluated; -1 marks entities that span
// domains (links, the injector) and are excluded from per-domain load.
type Entity struct {
	Name   string
	Kind   string
	Domain int
	Events uint64
}

// CrossLoad is one (src,dst) domain pair's traffic count: frames in the
// virtual section, merged engine messages in the engine section.
type CrossLoad struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	Count uint64 `json:"count"`
}

// KindLoad aggregates the virtual load of one entity kind.
type KindLoad struct {
	Kind     string  `json:"kind"`
	Entities int     `json:"entities"`
	Events   uint64  `json:"events"`
	Share    float64 `json:"share"`
}

// DomainLoad aggregates the virtual load placed on one reference domain.
type DomainLoad struct {
	Domain   int     `json:"domain"`
	Entities int     `json:"entities"`
	Events   uint64  `json:"events"`
	Share    float64 `json:"share"`
}

// EntityLoad is one hot entity in the top-N ranking. XMean is its event
// count over the mean event count across all entities — the "core switch
// executed 6.2x mean events" number.
type EntityLoad struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Domain int     `json:"domain"`
	Events uint64  `json:"events"`
	XMean  float64 `json:"x_mean"`
}

// VirtualProfile is the deterministic plane's attribution document. Every
// value derives from per-entity simulation counters mapped through a
// reference domain layout evaluated at EvalDomains — a pure function of
// the topology, never of the run's actual Domains setting — so the JSON
// encoding is byte-identical across runs, worker counts and Domains
// settings alike.
type VirtualProfile struct {
	// EvalDomains is the reference domain count the attribution was
	// evaluated at (domain 0 = core, 1..EvalDomains-1 = device groups).
	EvalDomains int `json:"eval_domains"`
	// Entities and TotalEvents cover every attributed entity.
	Entities    int    `json:"entities"`
	TotalEvents uint64 `json:"total_events"`
	// Kinds aggregates load by entity kind, sorted by kind name.
	Kinds []KindLoad `json:"kinds"`
	// Domains aggregates domain-attributed load (links and the injector
	// span domains and are excluded), sorted by domain index.
	Domains []DomainLoad `json:"domains"`
	// ImbalanceIndex is max/mean events per domain: 1.0 is a perfectly
	// balanced layout, K is everything-on-one-domain.
	ImbalanceIndex float64 `json:"imbalance_index"`
	// Cross counts frames that traversed a link whose endpoints land in
	// different reference domains, by (src,dst) pair, sorted by (from,to).
	Cross []CrossLoad `json:"cross_domain_frames,omitempty"`
	// TopEntities ranks the hottest entities (events desc, name asc).
	TopEntities []EntityLoad `json:"top_entities,omitempty"`
}

// BuildVirtual assembles the deterministic attribution from raw entities
// and the cross-domain frame matrix. Determinism: aggregation uses sorted
// orders only (kind name, domain index, (events desc, name asc)), so equal
// inputs yield byte-equal JSON.
func BuildVirtual(evalDomains int, entities []Entity, cross []CrossLoad, topN int) *VirtualProfile {
	if evalDomains < 1 {
		evalDomains = 1
	}
	vp := &VirtualProfile{EvalDomains: evalDomains, Entities: len(entities)}
	kinds := make(map[string]*KindLoad)
	domEvents := make([]uint64, evalDomains)
	domEntities := make([]int, evalDomains)
	var domTotal uint64
	for _, e := range entities {
		vp.TotalEvents += e.Events
		k := kinds[e.Kind]
		if k == nil {
			k = &KindLoad{Kind: e.Kind}
			kinds[e.Kind] = k
		}
		k.Entities++
		k.Events += e.Events
		if e.Domain >= 0 && e.Domain < evalDomains {
			domEvents[e.Domain] += e.Events
			domEntities[e.Domain]++
			domTotal += e.Events
		}
	}
	for _, k := range kinds {
		if vp.TotalEvents > 0 {
			k.Share = float64(k.Events) / float64(vp.TotalEvents)
		}
		vp.Kinds = append(vp.Kinds, *k)
	}
	sort.Slice(vp.Kinds, func(i, j int) bool { return vp.Kinds[i].Kind < vp.Kinds[j].Kind })
	var maxDom uint64
	for d := 0; d < evalDomains; d++ {
		dl := DomainLoad{Domain: d, Entities: domEntities[d], Events: domEvents[d]}
		if domTotal > 0 {
			dl.Share = float64(dl.Events) / float64(domTotal)
		}
		if dl.Events > maxDom {
			maxDom = dl.Events
		}
		vp.Domains = append(vp.Domains, dl)
	}
	if domTotal > 0 {
		mean := float64(domTotal) / float64(evalDomains)
		vp.ImbalanceIndex = float64(maxDom) / mean
	}
	vp.Cross = append(vp.Cross, cross...)
	sort.Slice(vp.Cross, func(i, j int) bool {
		if vp.Cross[i].From != vp.Cross[j].From {
			return vp.Cross[i].From < vp.Cross[j].From
		}
		return vp.Cross[i].To < vp.Cross[j].To
	})
	if topN > 0 && len(entities) > 0 {
		ranked := make([]Entity, len(entities))
		copy(ranked, entities)
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].Events != ranked[j].Events {
				return ranked[i].Events > ranked[j].Events
			}
			return ranked[i].Name < ranked[j].Name
		})
		if topN > len(ranked) {
			topN = len(ranked)
		}
		mean := float64(vp.TotalEvents) / float64(len(entities))
		for _, e := range ranked[:topN] {
			el := EntityLoad{Name: e.Name, Kind: e.Kind, Domain: e.Domain, Events: e.Events}
			if mean > 0 {
				el.XMean = float64(e.Events) / mean
			}
			vp.TopEntities = append(vp.TopEntities, el)
		}
	}
	return vp
}

// WindowStats summarizes epoch window widths in virtual nanoseconds.
type WindowStats struct {
	MinNs  int64   `json:"min_ns"`
	MaxNs  int64   `json:"max_ns"`
	MeanNs float64 `json:"mean_ns"`
}

// DomainEngine is one domain's engine-plane accounting. Deterministic for
// a fixed (seed, Domains) configuration and independent of the worker
// count; unlike the virtual section it legitimately varies with Domains
// (the partitioning itself is what it measures).
type DomainEngine struct {
	Domain int    `json:"domain"`
	Events uint64 `json:"events"`
	// MaxWindowEvents is the largest single-window event count (profiler
	// runs only).
	MaxWindowEvents uint64 `json:"max_window_events,omitempty"`
	MsgsOut         uint64 `json:"msgs_out"`
	MsgsIn          uint64 `json:"msgs_in"`
	MaxHorizonLagNs int64  `json:"max_horizon_lag_ns"`
}

// EngineProfile is the engine plane: epoch counts, window-width stats,
// per-domain event totals and the merged cross-domain message matrix.
type EngineProfile struct {
	Domains     int            `json:"domains"`
	LookaheadNs int64          `json:"lookahead_ns"`
	Epochs      uint64         `json:"epochs"`
	Window      *WindowStats   `json:"window,omitempty"`
	PerDomain   []DomainEngine `json:"per_domain"`
	Cross       []CrossLoad    `json:"cross_domain_msgs,omitempty"`
}

// BuildEngine assembles the engine section from the engine's DomainStats
// plus, when a profiler rode the run, its window-width stats, per-window
// maxima and cross-message matrix (p may be nil: stats-only section).
func BuildEngine(lookahead sim.Time, epochs uint64, stats []sim.DomainStats, p *Profiler) *EngineProfile {
	ep := &EngineProfile{
		Domains:     len(stats),
		LookaheadNs: int64(lookahead),
		Epochs:      epochs,
	}
	for i, st := range stats {
		de := DomainEngine{
			Domain:          i,
			Events:          st.Events,
			MsgsOut:         st.MsgsOut,
			MsgsIn:          st.MsgsIn,
			MaxHorizonLagNs: int64(st.HorizonLag),
		}
		if p != nil && i < p.domains {
			de.MaxWindowEvents = p.maxWinEv[i]
		}
		ep.PerDomain = append(ep.PerDomain, de)
	}
	if p != nil && p.epochs > 0 {
		ep.Window = &WindowStats{
			MinNs:  int64(p.widthMin),
			MaxNs:  int64(p.widthMax),
			MeanNs: float64(p.widthSum) / float64(p.epochs),
		}
		for from := 0; from < p.domains; from++ {
			for to := 0; to < p.domains; to++ {
				if n := p.cross[from*p.domains+to]; n > 0 {
					ep.Cross = append(ep.Cross, CrossLoad{From: from, To: to, Count: n})
				}
			}
		}
	}
	return ep
}

// PhaseWall is one campaign phase's wall clock.
type PhaseWall struct {
	Phase string  `json:"phase"`
	MS    float64 `json:"ms"`
}

// DomainWall is one domain's wall-clock epoch-phase split. WaitShare is
// wait/(exec+wait): the fraction of the domain's epoch wall clock spent
// blocked at barriers — the straggler indicator.
type DomainWall struct {
	Domain    int     `json:"domain"`
	ExecMS    float64 `json:"exec_ms"`
	WaitMS    float64 `json:"wait_ms"`
	WaitShare float64 `json:"wait_share"`
}

// WallProfile is the wall-clock plane. By contract it never enters
// deterministic artifacts; consumers compare it across hosts at their own
// risk.
type WallProfile struct {
	Phases []PhaseWall `json:"phases"`
	// BuildDevicesPerSecond is fleet size over build+start wall time — the
	// headline construction-throughput figure the scale bench tracks.
	// Omitted when the fleet size is unknown or no build was timed.
	BuildDevicesPerSecond float64      `json:"build_devices_per_second,omitempty"`
	MergeMS               float64      `json:"merge_ms,omitempty"`
	PerDomain             []DomainWall `json:"per_domain,omitempty"`
}

// WallProfile snapshots the wall-clock plane (nil receiver yields nil).
func (p *Profiler) WallProfile() *WallProfile {
	if p == nil {
		return nil
	}
	wp := &WallProfile{MergeMS: float64(p.mergeNs) / 1e6}
	if buildNs := p.phaseNs[PhaseBuild] + p.phaseNs[PhaseStart]; buildNs > 0 && p.devices > 0 {
		wp.BuildDevicesPerSecond = float64(p.devices) / (float64(buildNs) / 1e9)
	}
	for ph := Phase(0); ph < numPhases; ph++ {
		wp.Phases = append(wp.Phases, PhaseWall{Phase: ph.String(), MS: float64(p.phaseNs[ph]) / 1e6})
	}
	if p.epochs > 0 {
		for d := 0; d < p.domains; d++ {
			dw := DomainWall{
				Domain: d,
				ExecMS: float64(p.execNs[d]) / 1e6,
				WaitMS: float64(p.waitNs[d]) / 1e6,
			}
			if total := p.execNs[d] + p.waitNs[d]; total > 0 {
				dw.WaitShare = float64(p.waitNs[d]) / float64(total)
			}
			wp.PerDomain = append(wp.PerDomain, dw)
		}
	}
	return wp
}

// Profile is the combined document: the deterministic virtual plane, the
// engine plane, and the wall-clock plane. Sections are independent — a
// serial run has no Engine section, an unprofiled run no Wall section.
type Profile struct {
	Virtual *VirtualProfile `json:"virtual,omitempty"`
	Engine  *EngineProfile  `json:"engine,omitempty"`
	Wall    *WallProfile    `json:"wall,omitempty"`
}

// JSON renders the profile as indented JSON with a trailing newline.
func (p *Profile) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteJSON writes the indented JSON document to w.
func (p *Profile) WriteJSON(w io.Writer) error {
	data, err := p.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
