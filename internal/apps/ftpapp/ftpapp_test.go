package ftpapp

import (
	"testing"
	"time"

	"ddoshield/internal/netsim"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

func pair(t *testing.T) (*sim.Scheduler, *netstack.Host, *netstack.Host) {
	t.Helper()
	s := sim.NewScheduler()
	net := netsim.New(s)
	sw := net.NewSwitch("sw")
	subnet := packet.MustParsePrefix("10.0.0.0/24")
	mk := func(i int) *netstack.Host {
		nic := net.NewNode("h").AddNIC()
		net.Connect(nic, sw.NewPort(), netsim.LinkConfig{})
		return netstack.NewHost(nic, netstack.HostConfig{
			Addr: subnet.Host(uint32(i)), Subnet: subnet, Seed: int64(i),
		})
	}
	return s, mk(1), mk(2)
}

func TestFullSessionTransfers(t *testing.T) {
	s, ch, sh := pair(t)
	srv := NewServer(ServerConfig{Seed: 1, MeanFileBytes: 32 << 10})
	if err := srv.Attach(sh); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(sh.Addr(), 0, "iot", "iot", 5*time.Second, 3)
	cl.Attach(ch)
	if err := s.Run(120 * sim.Second); err != nil {
		t.Fatal(err)
	}
	sessions, completed, failed, bytesIn := cl.Stats()
	if sessions < 10 {
		t.Fatalf("sessions = %d", sessions)
	}
	if completed < sessions*7/10 {
		t.Fatalf("completed = %d of %d (failed=%d)", completed, sessions, failed)
	}
	if bytesIn == 0 {
		t.Fatal("no file bytes received")
	}
	logins, transfers, bytesOut, authFails := srv.Stats()
	if logins == 0 || transfers == 0 {
		t.Fatalf("server: logins=%d transfers=%d", logins, transfers)
	}
	if bytesOut < bytesIn {
		t.Fatalf("server sent %d < client received %d", bytesOut, bytesIn)
	}
	if authFails != 0 {
		t.Fatalf("authFails = %d", authFails)
	}
}

func TestAuthRejectsWrongPassword(t *testing.T) {
	s, ch, sh := pair(t)
	srv := NewServer(ServerConfig{Seed: 1, Users: map[string]string{"iot": "secret"}})
	if err := srv.Attach(sh); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(sh.Addr(), 0, "iot", "wrong", 2*time.Second, 5)
	cl.Attach(ch)
	if err := s.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	_, completed, failed, _ := cl.Stats()
	if completed != 0 {
		t.Fatalf("completed = %d with wrong password", completed)
	}
	if failed == 0 {
		t.Fatal("no failures recorded")
	}
	_, _, _, authFails := srv.Stats()
	if authFails == 0 {
		t.Fatal("server recorded no auth failures")
	}
}

func TestAnonymousAcceptedWhenNoUsers(t *testing.T) {
	s, ch, sh := pair(t)
	srv := NewServer(ServerConfig{Seed: 2})
	if err := srv.Attach(sh); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(sh.Addr(), 0, "anonymous", "x@y", 2*time.Second, 8)
	cl.Attach(ch)
	if err := s.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	_, completed, _, _ := cl.Stats()
	if completed == 0 {
		t.Fatal("anonymous session never completed")
	}
}

func TestParsePASV(t *testing.T) {
	addr, port, ok := parsePASV("227 entering passive mode (10,0,0,2,78,32)")
	if !ok {
		t.Fatal("parse failed")
	}
	if addr != packet.AddrFrom4(10, 0, 0, 2) {
		t.Fatalf("addr = %v", addr)
	}
	if port != 78<<8|32 {
		t.Fatalf("port = %d", port)
	}
	if _, _, ok := parsePASV("227 nonsense"); ok {
		t.Fatal("accepted malformed reply")
	}
	if _, _, ok := parsePASV("227 (1,2,3)"); ok {
		t.Fatal("accepted short tuple")
	}
}

func TestUnknownCommandGets502(t *testing.T) {
	s, ch, sh := pair(t)
	srv := NewServer(ServerConfig{Seed: 3})
	if err := srv.Attach(sh); err != nil {
		t.Fatal(err)
	}
	conn := ch.DialTCP(sh.Addr(), 21)
	var lines []string
	buf := ""
	conn.OnData = func(d []byte) {
		buf += string(d)
		for {
			i := -1
			for j := 0; j+1 < len(buf); j++ {
				if buf[j] == '\r' && buf[j+1] == '\n' {
					i = j
					break
				}
			}
			if i < 0 {
				return
			}
			lines = append(lines, buf[:i])
			buf = buf[i+2:]
		}
	}
	conn.OnConnect = func() { conn.Send([]byte("NOOP\r\n")) }
	if err := s.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range lines {
		if len(l) >= 3 && l[:3] == "502" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no 502 reply in %v", lines)
	}
}
