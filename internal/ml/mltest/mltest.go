// Package mltest provides shared synthetic datasets for the ML package
// tests: linearly separable blobs, noisy blobs, and an XOR-style pattern
// that defeats linear models but not trees or the CNN.
package mltest

import (
	"ddoshield/internal/sim"
)

// Blobs generates n points split between two Gaussian blobs in d
// dimensions, centers at ±sep/2 on every axis. Returns rows and labels.
func Blobs(n, d int, sep float64, seed int64) ([][]float64, []int) {
	rng := sim.NewRNG(seed)
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		y := i % 2
		c := -sep / 2
		if y == 1 {
			c = sep / 2
		}
		x := make([]float64, d)
		for j := range x {
			x[j] = c + rng.NormFloat64()
		}
		xs[i] = x
		ys[i] = y
	}
	return xs, ys
}

// XOR generates the 2-D XOR pattern with Gaussian jitter: class 1 in
// quadrants (+,+) and (-,-), class 0 otherwise.
func XOR(n int, seed int64) ([][]float64, []int) {
	rng := sim.NewRNG(seed)
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		a, b := rng.Intn(2), rng.Intn(2)
		x := []float64{
			(float64(a)*2 - 1) * 2 * (1 + 0.2*rng.NormFloat64()),
			(float64(b)*2 - 1) * 2 * (1 + 0.2*rng.NormFloat64()),
		}
		xs[i] = x
		if a == b {
			ys[i] = 1
		}
	}
	return xs, ys
}

// Accuracy scores predictions from a predict function over rows.
func Accuracy(predict func([]float64) int, xs [][]float64, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	ok := 0
	for i := range xs {
		if predict(xs[i]) == ys[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(xs))
}
