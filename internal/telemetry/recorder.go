package telemetry

import (
	"sync"

	"ddoshield/internal/sim"
)

// Category classifies flight-recorder events by emitting subsystem.
type Category uint8

// Event categories.
const (
	CatNet Category = iota + 1
	CatTCP
	CatContainer
	CatSupervisor
	CatFault
	CatIDS
	CatSysmon
	CatExperiment
)

// String renders the category (used as the chrome-tracing "cat" field).
func (c Category) String() string {
	switch c {
	case CatNet:
		return "net"
	case CatTCP:
		return "tcp"
	case CatContainer:
		return "container"
	case CatSupervisor:
		return "supervisor"
	case CatFault:
		return "fault"
	case CatIDS:
		return "ids"
	case CatSysmon:
		return "sysmon"
	case CatExperiment:
		return "experiment"
	}
	return "other"
}

// TraceEvent is one flight-recorder entry: a named occurrence at a
// simulated instant, attributed to an actor (a NIC, link, container or
// detection unit). Name and Actor are expected to be pre-interned
// strings (static literals and names computed once at construction), so
// emitting allocates nothing.
type TraceEvent struct {
	// Seq is the global emission sequence number (0-based). It survives
	// ring eviction, so consumers can detect gaps.
	Seq uint64
	// Time is the simulated instant of the event.
	Time sim.Time
	// Cat is the emitting subsystem.
	Cat Category
	// Name identifies what happened ("queue-drop", "retransmit", "crash").
	Name string
	// Actor identifies the subject ("dev03/eth0", "tserver").
	Actor string
	// Value carries an event-specific magnitude (bytes dropped, restart
	// count, window verdict), 0 when unused.
	Value int64
}

// DefaultRecorderCapacity bounds the flight recorder when the caller
// passes no explicit capacity.
const DefaultRecorderCapacity = 16384

// Recorder is a bounded ring-buffer flight recorder. When the ring is
// full the oldest event is evicted — exactly the crash-dump discipline of
// an aircraft flight recorder: you always hold the most recent window of
// history at a fixed memory cost, however long the run.
//
// Emit is allocation-free and guarded by a mutex, so a live exporter on
// another goroutine can snapshot safely while the simulation runs. A nil
// *Recorder ignores Emit, letting subsystems record unconditionally.
type Recorder struct {
	mu   sync.Mutex
	buf  []TraceEvent
	next uint64 // total events emitted; buf slot = seq % cap
	// dropped counts ring wraparounds (events evicted before anyone read
	// them); register it as telemetry_recorder_dropped_total so exports
	// reveal when the retained window is shorter than the run.
	dropped Counter
}

// NewRecorder returns a recorder holding up to capacity events
// (DefaultRecorderCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{buf: make([]TraceEvent, 0, capacity)}
}

// Emit records one event, evicting the oldest when full. Safe on a nil
// recorder.
func (r *Recorder) Emit(t sim.Time, cat Category, name, actor string, value int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ev := TraceEvent{Seq: r.next, Time: t, Cat: cat, Name: name, Actor: actor, Value: value}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[int(r.next%uint64(cap(r.buf)))] = ev
		r.dropped.Inc()
	}
	r.next++
	r.mu.Unlock()
}

// Emitted reports the total number of events ever emitted.
func (r *Recorder) Emitted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Dropped returns the counter of events evicted by ring wraparound, for
// registration as telemetry_recorder_dropped_total. Nil on a nil recorder.
func (r *Recorder) Dropped() *Counter {
	if r == nil {
		return nil
	}
	return &r.dropped
}

// Evicted reports how many events were pushed out of the ring.
func (r *Recorder) Evicted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next <= uint64(cap(r.buf)) {
		return 0
	}
	return r.next - uint64(cap(r.buf))
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Capacity reports the ring size.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Events returns the retained events oldest-first (ascending Seq, and
// therefore nondecreasing sim.Time, since emission follows the virtual
// clock).
func (r *Recorder) Events() []TraceEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEvent, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	start := int(r.next % uint64(cap(r.buf)))
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}
