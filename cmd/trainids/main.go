// Command trainids trains the three detectors of the paper (Random Forest,
// K-Means, CNN) on a labeled dataset CSV produced by cmd/ddoshield, prints
// the offline evaluation metrics of §IV-D (accuracy, precision, recall,
// F1), and persists each trained model — the PKL-file phase of the paper's
// pipeline.
//
// Usage:
//
//	trainids -data dataset.csv -outdir models/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ddoshield/internal/dataset"
	"ddoshield/internal/experiments"
	"ddoshield/internal/ml/modelio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trainids:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataPath = flag.String("data", "", "labeled dataset CSV (required)")
		outDir   = flag.String("outdir", ".", "directory for saved models")
		seed     = flag.Int64("seed", 42, "training seed")
		maxN     = flag.Int("maxsamples", 80000, "training subsample cap")
	)
	flag.Parse()
	if *dataPath == "" {
		return fmt.Errorf("-data is required")
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		return err
	}
	ds, err := dataset.ReadCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Println("dataset:", ds.Summarize())

	sc := experiments.Quick()
	sc.Seed = *seed
	sc.MaxTrainSamples = *maxN
	tr, err := sc.TrainModels(ds)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for _, tm := range tr.Models() {
		name := tm.Model.Name()
		fmt.Printf("%-8s %v (model %0.2f Kb)\n", name, tm.TrainReport, float64(tm.SizeBytes)/1024)
		path := filepath.Join(*outDir, name+".model")
		if err := modelio.SaveBundleFile(path, modelio.Bundle{Model: tm.Model, Scaler: tm.Scaler}); err != nil {
			return err
		}
		fmt.Printf("         saved to %s\n", path)
	}
	return nil
}
