package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(3*Second, func() { order = append(order, 3) })
	s.At(1*Second, func() { order = append(order, 1) })
	s.At(2*Second, func() { order = append(order, 2) })
	if err := s.Run(10 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Second, func() { order = append(order, i) })
	}
	s.Drain()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-instant events fired out of scheduling order: %v", order)
		}
	}
}

func TestSchedulerAtTailFiresAfterNormalEvents(t *testing.T) {
	s := NewScheduler()
	var order []string
	// Interleave tail and normal scheduling at the same instant: the tail
	// events must fire last regardless of when they were scheduled, and in
	// FIFO order among themselves.
	s.AtTail(Second, func() { order = append(order, "tail-0") })
	s.At(Second, func() { order = append(order, "norm-0") })
	s.AtTail(Second, func() { order = append(order, "tail-1") })
	s.At(Second, func() {
		order = append(order, "norm-1")
		// A tail event scheduled from inside a normal event at the same
		// instant still lands in the tail phase of that instant.
		s.AtTail(Second, func() { order = append(order, "tail-2") })
	})
	// A later instant must fire after every phase of the earlier one.
	s.At(2*Second, func() { order = append(order, "next") })
	s.Drain()
	want := []string{"norm-0", "norm-1", "tail-0", "tail-1", "tail-2", "next"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerAtTailPastClampsAndCancels(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(2*Second, func() {
		ev := s.AtTail(Second, func() {})
		if ev.At() != 2*Second {
			t.Errorf("past tail event scheduled at %v, want clamp to now (2s)", ev.At())
		}
	})
	ev := s.AtTail(3*Second, func() { fired = true })
	ev.Cancel()
	s.Drain()
	if fired {
		t.Fatal("cancelled tail event fired")
	}
	// Pooled node reuse must clear the tail flag: the next normal event
	// allocated from the free list must not inherit tail-phase ordering.
	var order []string
	s.AtTail(5*Second, func() { order = append(order, "tail") })
	s.At(5*Second, func() { order = append(order, "norm") })
	s.Drain()
	if len(order) != 2 || order[0] != "norm" || order[1] != "tail" {
		t.Fatalf("after node reuse, order = %v, want [norm tail]", order)
	}
}

func TestSchedulerClockAdvancesToEventTime(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.At(5*Second, func() { at = s.Now() })
	s.Drain()
	if at != 5*Second {
		t.Fatalf("Now() during event = %v, want 5s", at)
	}
}

func TestSchedulerPastSchedulingClamps(t *testing.T) {
	s := NewScheduler()
	s.At(2*Second, func() {
		ev := s.At(1*Second, func() {})
		if ev.At() != 2*Second {
			t.Errorf("past event scheduled at %v, want clamp to now (2s)", ev.At())
		}
	})
	s.Drain()
}

func TestSchedulerHorizonStopsBeforeLaterEvents(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(1*Second, func() { fired++ })
	s.At(10*Second, func() { fired++ })
	if err := s.Run(5 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (event past horizon must not fire)", fired)
	}
	if s.Now() != 5*Second {
		t.Fatalf("Now() = %v, want horizon 5s", s.Now())
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 pending", s.Len())
	}
}

func TestSchedulerEventAtHorizonFires(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(5*Second, func() { fired = true })
	if err := s.Run(5 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("event exactly at horizon did not fire")
	}
}

func TestEventCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	ev := s.At(Second, func() { fired = true })
	ev.Cancel()
	s.Drain()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(1*Second, func() {
		fired++
		s.Stop()
	})
	s.At(2*Second, func() { fired++ })
	err := s.Run(10 * Second)
	if err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestSchedulerAfterUsesCurrentInstant(t *testing.T) {
	s := NewScheduler()
	var secondAt Time
	s.At(3*Second, func() {
		s.After(2*time.Second, func() { secondAt = s.Now() })
	})
	s.Drain()
	if secondAt != 5*Second {
		t.Fatalf("After fired at %v, want 5s", secondAt)
	}
}

func TestTickerFiresAtInterval(t *testing.T) {
	s := NewScheduler()
	var times []Time
	tk := s.Every(time.Second, func() { times = append(times, s.Now()) })
	if err := s.Run(5 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(times) != 5 {
		t.Fatalf("ticks = %d, want 5", len(times))
	}
	for i, at := range times {
		if want := Time(i+1) * Second; at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	if tk.Ticks() != 5 {
		t.Fatalf("Ticks() = %d, want 5", tk.Ticks())
	}
}

func TestTickerStopHaltsTicks(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tk *Ticker
	tk = s.Every(time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	if err := s.Run(10 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 3 {
		t.Fatalf("ticks after Stop = %d, want 3", n)
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	s := NewScheduler()
	if err := s.RunFor(3 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if s.Now() != 5*Second {
		t.Fatalf("Now() = %v, want 5s", s.Now())
	}
}

func TestTimeConversions(t *testing.T) {
	tt := FromDuration(1500 * time.Millisecond)
	if tt.Seconds() != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", tt.Seconds())
	}
	if tt.Duration() != 1500*time.Millisecond {
		t.Fatalf("Duration() = %v", tt.Duration())
	}
	if got := tt.Add(500 * time.Millisecond); got != 2*Second {
		t.Fatalf("Add = %v, want 2s", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestSubstreamIndependence(t *testing.T) {
	a := Substream(1, "scanner")
	b := Substream(1, "payload")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("substreams look correlated: %d/64 equal draws", same)
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(7)
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(3.0)
	}
	mean := sum / n
	if mean < 2.8 || mean > 3.2 {
		t.Fatalf("Exp mean = %v, want ~3.0", mean)
	}
}

func TestRNGParetoBounds(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := g.Pareto(100, 1.5)
		if v < 100 {
			t.Fatalf("Pareto variate %v below scale 100", v)
		}
	}
}

func TestRNGUniformRange(t *testing.T) {
	g := NewRNG(11)
	if err := quick.Check(func(lo, span uint8) bool {
		l, h := float64(lo), float64(lo)+float64(span)+1
		v := g.Uniform(l, h)
		return v >= l && v < h
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGNormalTruncation(t *testing.T) {
	g := NewRNG(13)
	for i := 0; i < 1000; i++ {
		if v := g.Normal(0, 10, 1); v < 1 {
			t.Fatalf("Normal truncation violated: %v", v)
		}
	}
}

func TestPick(t *testing.T) {
	g := NewRNG(17)
	choices := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(g, choices)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never chose some elements: %v", seen)
	}
}

// Property: for any batch of events with arbitrary firing offsets, the
// scheduler fires them in non-decreasing time order.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, off := range offsets {
			at := Time(off) * Millisecond
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Drain()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
