package features

import (
	"testing"
	"time"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// fillWindow appends n packets landing inside window widx to e.
func fillWindow(e *Extractor, widx int64, n int) {
	base := sim.Time(widx) * sim.Second
	for i := 0; i < n; i++ {
		b := Basic{
			Time:    base + sim.Time(i)*sim.Millisecond,
			Src:     packet.AddrFrom4(10, 0, byte(i%4), byte(i%200)),
			Dst:     packet.AddrFrom4(10, 0, 0, 1),
			Proto:   packet.ProtoTCP,
			SrcPort: uint16(30000 + i%512),
			DstPort: 80,
			Length:  60,
			Flags:   packet.FlagSYN,
			Seq:     uint32(i) * 1664525,
		}
		e.Add(b)
	}
}

// BenchmarkExtractorWindow measures closing one 1000-packet window:
// ComputeStats over the reused scratch maps plus the emission itself. One
// iteration = one window. The first window grows the packet buffer and
// the scratch maps' bucket arrays; warming it before ResetTimer keeps
// those one-time allocations out of the steady-state B/op figure.
func BenchmarkExtractorWindow(b *testing.B) {
	e := NewExtractor(time.Second, func(w *Window) {})
	fillWindow(e, 0, 1000)
	e.Flush()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fillWindow(e, int64(i+1), 1000)
		e.Flush()
	}
}

// TestExtractorBenchZeroBytes runs the window benchmark through
// testing.Benchmark and pins both allocation counters to exactly zero.
// TestExtractorSteadyStateAllocs already covers allocs/op; this guards
// bytes/op too, so a warmup regression (or a new per-window allocation
// that AllocsPerRun's rounding might forgive) fails CI.
func TestExtractorBenchZeroBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard is slow")
	}
	r := testing.Benchmark(BenchmarkExtractorWindow)
	if a := r.AllocsPerOp(); a != 0 {
		t.Fatalf("BenchmarkExtractorWindow allocs/op = %d, want 0", a)
	}
	if bb := r.AllocedBytesPerOp(); bb != 0 {
		t.Fatalf("BenchmarkExtractorWindow bytes/op = %d, want 0", bb)
	}
}

func TestExtractorSteadyStateAllocs(t *testing.T) {
	e := NewExtractor(time.Second, func(w *Window) {})
	// Warm the packet buffer and the scratch maps' bucket arrays.
	fillWindow(e, 0, 200)
	e.Flush()
	widx := int64(1)
	allocs := testing.AllocsPerRun(50, func() {
		fillWindow(e, widx, 200)
		e.Flush()
		widx++
	})
	if allocs != 0 {
		t.Fatalf("steady-state window close allocated %.1f/op, want 0", allocs)
	}
}
