package botnet

import (
	"testing"
	"time"

	"ddoshield/internal/netsim"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

type rig struct {
	sched *sim.Scheduler
	net   *netsim.Network
	sw    *netsim.Switch
	next  uint32
}

func newRig() *rig {
	s := sim.NewScheduler()
	net := netsim.New(s)
	return &rig{sched: s, net: net, sw: net.NewSwitch("sw")}
}

var subnet = packet.MustParsePrefix("10.0.0.0/16")

func (r *rig) host(lastOctets uint32) *netstack.Host {
	nic := r.net.NewNode("h").AddNIC()
	r.net.Connect(nic, r.sw.NewPort(), netsim.LinkConfig{})
	r.next++
	return netstack.NewHost(nic, netstack.HostConfig{
		Addr:   subnet.Host(lastOctets),
		Subnet: subnet,
		Seed:   int64(lastOctets),
	})
}

func TestAttackTypeRoundTrip(t *testing.T) {
	for _, at := range []AttackType{AttackSYN, AttackACK, AttackUDP} {
		got, err := ParseAttackType(at.String())
		if err != nil || got != at {
			t.Fatalf("round trip %v: %v %v", at, got, err)
		}
	}
	if _, err := ParseAttackType("dns"); err == nil {
		t.Fatal("accepted unknown type")
	}
}

func TestCommandRoundTrip(t *testing.T) {
	cmd := Command{
		Type:     AttackSYN,
		Target:   packet.MustParseAddr("10.0.1.1"),
		Port:     80,
		Duration: 60 * time.Second,
		PPS:      500,
	}
	got, err := ParseCommand(cmd.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != cmd {
		t.Fatalf("round trip: %+v vs %+v", got, cmd)
	}
	if _, err := ParseCommand("ATK nonsense"); err == nil {
		t.Fatal("accepted malformed command")
	}
	if _, err := ParseCommand("ATK syn 10.0.0.999 80 60 500"); err == nil {
		t.Fatal("accepted bad address")
	}
}

func TestSYNFloodEmitsSpoofedSYNs(t *testing.T) {
	r := newRig()
	bot := r.host(10)
	target := r.host(0x0100 + 1) // 10.0.1.1
	spoof := packet.MustParsePrefix("10.0.200.0/24")
	var syns, others int
	srcs := map[packet.Addr]bool{}
	ports := map[uint16]bool{}
	r.sw.AddTap(netsim.DecodeTap(func(p *packet.Packet) {
		if p.HasTCP && p.IPv4.Dst == target.Addr() && p.TCP.DstPort == 80 {
			if p.TCP.Flags == packet.FlagSYN {
				syns++
				srcs[p.IPv4.Src] = true
				ports[p.TCP.SrcPort] = true
			} else {
				others++
			}
		}
	}))
	cmd := Command{Type: AttackSYN, Target: target.Addr(), Port: 80, Duration: 2 * time.Second, PPS: 500}
	f := NewFlood(bot, sim.NewRNG(1), cmd, spoof)
	done := false
	f.OnDone = func() { done = true }
	f.Start()
	if err := r.sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("flood never reported done")
	}
	if syns < 800 || syns > 1200 {
		t.Fatalf("SYNs = %d, want ~1000 (2s at 500pps)", syns)
	}
	if len(srcs) < 100 {
		t.Fatalf("distinct spoofed sources = %d", len(srcs))
	}
	for src := range srcs {
		if !spoof.Contains(src) {
			t.Fatalf("source %v outside spoof range", src)
		}
	}
	if len(ports) < 100 {
		t.Fatalf("distinct source ports = %d", len(ports))
	}
	if f.Sent() == 0 {
		t.Fatal("Sent() = 0")
	}
}

func TestUDPFloodUsesOwnAddressAndPayload(t *testing.T) {
	r := newRig()
	bot := r.host(11)
	target := r.host(0x0100 + 1)
	var udps int
	var payloadLen int
	dstPorts := map[uint16]bool{}
	r.sw.AddTap(netsim.DecodeTap(func(p *packet.Packet) {
		if p.HasUDP && p.IPv4.Dst == target.Addr() {
			udps++
			payloadLen = len(p.Payload)
			dstPorts[p.UDP.DstPort] = true
			if p.IPv4.Src != bot.Addr() {
				t.Errorf("UDP flood spoofed source %v", p.IPv4.Src)
			}
		}
	}))
	cmd := Command{Type: AttackUDP, Target: target.Addr(), Duration: time.Second, PPS: 200}
	f := NewFlood(bot, sim.NewRNG(2), cmd, packet.MustParsePrefix("10.0.200.0/24"))
	f.Start()
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if udps < 150 || udps > 260 {
		t.Fatalf("UDP datagrams = %d, want ~200", udps)
	}
	if payloadLen != UDPPayloadLen {
		t.Fatalf("payload = %d bytes, want %d", payloadLen, UDPPayloadLen)
	}
	if len(dstPorts) < 50 {
		t.Fatalf("destination ports not randomized: %d distinct", len(dstPorts))
	}
}

func TestACKFloodFlags(t *testing.T) {
	r := newRig()
	bot := r.host(12)
	target := r.host(0x0100 + 1)
	acks := 0
	r.sw.AddTap(netsim.DecodeTap(func(p *packet.Packet) {
		if p.HasTCP && p.IPv4.Dst == target.Addr() && p.TCP.DstPort == 80 && p.TCP.Flags == packet.FlagACK {
			acks++
		}
	}))
	cmd := Command{Type: AttackACK, Target: target.Addr(), Port: 80, Duration: time.Second, PPS: 100}
	f := NewFlood(bot, sim.NewRNG(3), cmd, packet.MustParsePrefix("10.0.200.0/24"))
	f.Start()
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if acks < 80 {
		t.Fatalf("ACK packets = %d", acks)
	}
}

func TestC2RegistrationAndBroadcast(t *testing.T) {
	r := newRig()
	c2Host := r.host(2)
	c2 := NewC2(0)
	if err := c2.Attach(c2Host); err != nil {
		t.Fatal(err)
	}
	target := r.host(0x0100 + 1)
	spoof := packet.MustParsePrefix("10.0.200.0/24")
	bots := make([]*Bot, 3)
	for i := range bots {
		bots[i] = NewBot("bot"+string(rune('a'+i)), c2Host.Addr(), 0, spoof, int64(i))
		bots[i].Attach(r.host(uint32(20 + i)))
	}
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if c2.Bots() != 3 {
		t.Fatalf("connected bots = %d, want 3", c2.Bots())
	}
	n := c2.Broadcast(Command{Type: AttackUDP, Target: target.Addr(), Duration: time.Second, PPS: 50})
	if n != 3 {
		t.Fatalf("Broadcast reached %d", n)
	}
	if err := r.sched.RunFor((10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for i, b := range bots {
		attacks, pkts := b.Stats()
		if attacks != 1 || pkts == 0 {
			t.Fatalf("bot %d: attacks=%d pkts=%d", i, attacks, pkts)
		}
	}
	reg, sent := c2.Stats()
	if reg != 3 || sent != 3 {
		t.Fatalf("c2 stats reg=%d sent=%d", reg, sent)
	}
}

func TestBotDetachDropsFromC2(t *testing.T) {
	r := newRig()
	c2Host := r.host(2)
	c2 := NewC2(0)
	if err := c2.Attach(c2Host); err != nil {
		t.Fatal(err)
	}
	b := NewBot("bot1", c2Host.Addr(), 0, packet.Prefix{}, 1)
	b.Attach(r.host(20))
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if c2.Bots() != 1 {
		t.Fatalf("bots = %d", c2.Bots())
	}
	b.Detach()
	if err := r.sched.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c2.Bots() != 0 {
		t.Fatalf("bots after detach = %d", c2.Bots())
	}
	hist := c2.History()
	if len(hist) < 2 || hist[len(hist)-1].Bots != 0 {
		t.Fatalf("history = %+v", hist)
	}
}

func TestBotReconnectsAfterC2Restart(t *testing.T) {
	r := newRig()
	c2Host := r.host(2)
	c2 := NewC2(0)
	if err := c2.Attach(c2Host); err != nil {
		t.Fatal(err)
	}
	b := NewBot("bot1", c2Host.Addr(), 0, packet.Prefix{}, 1)
	b.Attach(r.host(20))
	if err := r.sched.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c2.Bots() != 1 {
		t.Fatal("bot not registered")
	}
	// C2 goes down: bot's session dies; C2 comes back; bot re-registers.
	c2.Detach()
	for _, sess := range c2.bots {
		sess.conn.Abort()
	}
	c2.bots = map[string]*botSession{}
	if err := r.sched.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c2.Attach(c2Host); err != nil {
		t.Fatal(err)
	}
	if err := r.sched.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c2.Bots() != 1 {
		t.Fatalf("bot never re-registered: %d", c2.Bots())
	}
}

func TestScheduleWave(t *testing.T) {
	r := newRig()
	c2Host := r.host(2)
	c2 := NewC2(0)
	if err := c2.Attach(c2Host); err != nil {
		t.Fatal(err)
	}
	target := r.host(0x0100 + 1)
	b := NewBot("bot1", c2Host.Addr(), 0, packet.MustParsePrefix("10.0.200.0/24"), 1)
	b.Attach(r.host(20))
	cmds := []Command{
		{Type: AttackSYN, Target: target.Addr(), Port: 80, Duration: 2 * time.Second, PPS: 100},
		{Type: AttackUDP, Target: target.Addr(), Duration: 2 * time.Second, PPS: 100},
	}
	c2.ScheduleWave(10*sim.Second, 3*time.Second, cmds)
	if err := r.sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	attacks, pkts := b.Stats()
	if attacks != 2 {
		t.Fatalf("attacks = %d, want 2", attacks)
	}
	if pkts < 300 {
		t.Fatalf("pkts = %d", pkts)
	}
}
