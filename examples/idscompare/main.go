// Idscompare reproduces the paper's core experiment as a library user
// would: generate a labeled dataset from one testbed run, train the three
// detectors (RF, K-Means, CNN), then evaluate all of them in real time on
// a second, different run — printing Table I and Table II side by side
// with the paper's published numbers.
package main

import (
	"fmt"
	"log"

	"ddoshield/internal/experiments"
)

func main() {
	sc := experiments.Quick()

	fmt.Println("=== 1. dataset generation run ===")
	ds, err := sc.GenerateDataset()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("corpus:", ds.Summarize())

	fmt.Println("\n=== 2. offline training (the PKL phase) ===")
	tr, err := sc.TrainModels(ds)
	if err != nil {
		log.Fatal(err)
	}
	for _, tm := range tr.Models() {
		fmt.Printf("%-8s %v\n", tm.Model.Name(), tm.TrainReport)
	}

	fmt.Println("\n=== 3. real-time detection run ===")
	rt, err := sc.RunRealTime(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nTable I (paper: RF 61.22, K-Means 94.82, CNN 95.47):")
	fmt.Println(experiments.FormatTable1(rt.Table1))
	fmt.Println("Table II (paper: CPU ~66% flat; Mem 98/87/276 Kb; Size 712/11/736 Kb):")
	fmt.Println(experiments.FormatTable2(rt.Table2))

	fmt.Println("per-second accuracy dips (the §IV-D boundary effect):")
	for _, r := range rt.Table1 {
		fmt.Printf("  %-8s avg %.2f%%, worst window %.2f%%\n",
			r.Model, r.AvgAccuracy*100, r.MinAccuracy*100)
	}
}
