package ids

import (
	"ddoshield/internal/dataset"
	"ddoshield/internal/features"
)

// ThresholdRule is a tiny deterministic detector over the window feature
// vector: a packet is malicious when its window's SYN-without-ACK ratio or
// UDP fraction crosses a threshold — the flood signatures of the paper's
// three attack vectors. It implements ml.Classifier, so it plugs in where
// a trained model would; the mitigation sweep and the ddoshield -ids flag
// use it because it needs no training data and behaves identically on
// every host.
type ThresholdRule struct {
	synIdx, udpIdx int
	// SynNoAck flags windows whose win_syn_noack_ratio exceeds it
	// (default 20).
	SynNoAck float64
	// UDPFrac flags windows whose win_udp_fraction exceeds it
	// (default 0.4).
	UDPFrac float64
}

// NewThresholdRule returns the rule with default thresholds, with feature
// indices resolved from the canonical features.Names layout.
func NewThresholdRule() *ThresholdRule {
	r := &ThresholdRule{SynNoAck: 20, UDPFrac: 0.4, synIdx: -1, udpIdx: -1}
	for i, n := range features.Names() {
		switch n {
		case "win_syn_noack_ratio":
			r.synIdx = i
		case "win_udp_fraction":
			r.udpIdx = i
		}
	}
	return r
}

// Predict implements ml.Classifier.
func (r *ThresholdRule) Predict(x []float64) int {
	if r.synIdx >= 0 && x[r.synIdx] > r.SynNoAck {
		return dataset.Malicious
	}
	if r.udpIdx >= 0 && x[r.udpIdx] > r.UDPFrac {
		return dataset.Malicious
	}
	return dataset.Benign
}

// Name implements ml.Classifier.
func (r *ThresholdRule) Name() string { return "threshold-rule" }
