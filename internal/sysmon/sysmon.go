// Package sysmon measures resource consumption of testbed components — the
// `docker stats` analog behind Table II's sustainability evaluation. A
// Monitor samples any Metered component (containers and the IDS unit both
// qualify) once per simulated interval, recording the compute time consumed
// and the memory held.
//
// CPU accounting caveat: the simulation host is far faster than the IoT-
// class hardware the paper targets, so raw compute-per-window is converted
// to a CPU percentage through a configurable SpeedFactor (how many times
// slower the reference IoT device is than the simulation host). The factor
// scales all models identically, so Table II's comparative shape is
// preserved regardless of its value.
package sysmon

import (
	"time"

	"ddoshield/internal/ml/metrics"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
)

// Metered is anything whose cumulative compute time and current memory can
// be sampled.
type Metered interface {
	CPUTime() time.Duration
	MemBytes() int64
}

// Runnable is optionally implemented by metered components with an up/down
// state (containers). Monitors record it per sample, and Report turns it
// into the availability percentage the fault-injection experiments track.
type Runnable interface {
	Running() bool
}

// Sample is one per-interval measurement.
type Sample struct {
	// Time is the sampling instant.
	Time sim.Time
	// CPU is the compute time consumed during the interval.
	CPU time.Duration
	// MemBytes is the memory held at the sampling instant.
	MemBytes int64
	// Running records the target's up/down state at the sampling instant
	// (always true for targets without one).
	Running bool
}

// Monitor periodically samples a Metered component.
type Monitor struct {
	target   Metered
	interval time.Duration
	ticker   *sim.Ticker
	lastCPU  time.Duration
	samples  []Sample
}

// NewMonitor returns an unstarted monitor sampling target every interval
// (default 1 s) of simulated time.
func NewMonitor(target Metered, interval time.Duration) *Monitor {
	if interval <= 0 {
		interval = time.Second
	}
	return &Monitor{target: target, interval: interval}
}

// Start begins sampling on sched.
func (m *Monitor) Start(sched *sim.Scheduler) {
	if m.ticker != nil {
		return
	}
	m.lastCPU = m.target.CPUTime()
	run, hasRun := m.target.(Runnable)
	m.ticker = sched.Every(m.interval, func() {
		cpu := m.target.CPUTime()
		m.samples = append(m.samples, Sample{
			Time:     sched.Now(),
			CPU:      cpu - m.lastCPU,
			MemBytes: m.target.MemBytes(),
			Running:  !hasRun || run.Running(),
		})
		m.lastCPU = cpu
	})
}

// Stop halts sampling.
func (m *Monitor) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
		m.ticker = nil
	}
}

// Samples returns the recorded timeline.
func (m *Monitor) Samples() []Sample {
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// Publish registers the monitor's Table II aggregates as live registry
// gauges (sysmon_cpu_percent, sysmon_mem_kb, sysmon_mem_peak_kb,
// sysmon_availability_pct, sysmon_intervals), labeled target=name. The
// gauges are evaluated at export time straight through Report(), so a
// registry snapshot and a Report(speedFactor) call can never disagree.
func (m *Monitor) Publish(reg *telemetry.Registry, name string, speedFactor float64) {
	target := telemetry.L("target", name)
	reg.RegisterGaugeFunc(func() float64 { return m.Report(speedFactor).CPUPercent },
		"sysmon_cpu_percent", target)
	reg.RegisterGaugeFunc(func() float64 { return m.Report(speedFactor).MeanMemKb },
		"sysmon_mem_kb", target)
	reg.RegisterGaugeFunc(func() float64 { return m.Report(speedFactor).PeakMemKb },
		"sysmon_mem_peak_kb", target)
	reg.RegisterGaugeFunc(func() float64 { return m.Report(speedFactor).AvailabilityPct },
		"sysmon_availability_pct", target)
	reg.RegisterGaugeFunc(func() float64 { return float64(len(m.samples)) },
		"sysmon_intervals", target)
}

// Report aggregates a monitor's samples into Table II's three columns.
type Report struct {
	// CPUPercent is the mean per-interval CPU share, scaled by SpeedFactor.
	CPUPercent float64
	// MeanMemKb and PeakMemKb are memory in the paper's Kb units.
	MeanMemKb float64
	PeakMemKb float64
	// AvailabilityPct is the share of sampling instants the target was up —
	// the uptime metric the fault-injection experiments degrade.
	AvailabilityPct float64
	// Intervals is the number of samples aggregated.
	Intervals int
}

// Report aggregates the samples. speedFactor is the assumed slowdown of
// the reference IoT device versus the simulation host (see package doc).
func (m *Monitor) Report(speedFactor float64) Report {
	if speedFactor <= 0 {
		speedFactor = 1
	}
	var r Report
	r.Intervals = len(m.samples)
	if r.Intervals == 0 {
		return r
	}
	cpuShares := make([]float64, 0, len(m.samples))
	var memSum float64
	up := 0
	for _, s := range m.samples {
		share := float64(s.CPU) / float64(m.interval) * speedFactor * 100
		if share > 100 {
			share = 100 // a real device saturates at 100%
		}
		cpuShares = append(cpuShares, share)
		mem := float64(s.MemBytes) / 1024
		memSum += mem
		if mem > r.PeakMemKb {
			r.PeakMemKb = mem
		}
		if s.Running {
			up++
		}
	}
	r.CPUPercent = metrics.Mean(cpuShares)
	r.MeanMemKb = memSum / float64(len(m.samples))
	r.AvailabilityPct = float64(up) / float64(len(m.samples)) * 100
	return r
}

// EnergyJoules estimates the energy the sampled component consumed, given
// the reference device's active power draw — the Green-AI accounting the
// paper's conclusion calls for. The estimate charges active power for the
// CPU-busy fraction of each interval.
func (m *Monitor) EnergyJoules(activeWatts float64) float64 {
	if activeWatts <= 0 {
		return 0
	}
	var busy time.Duration
	for _, s := range m.samples {
		busy += s.CPU
	}
	return busy.Seconds() * activeWatts
}
