package experiments

import (
	"testing"
	"time"

	"ddoshield/internal/telemetry/prof"
)

// TestRunPDESBenchQuick exercises the serial-vs-parallel benchmark at CI
// scale: the report must carry every requested worker point and the
// internal Summary cross-check (serial vs partitioned) must hold.
func TestRunPDESBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("PDES benchmark runs full campaigns")
	}
	sc := DefaultPDES()
	sc.Devices = 24
	sc.Groups = 4
	sc.Domains = 5
	sc.Duration = 5 * time.Second
	rep, err := sc.RunPDESBench([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Serial.WallMS <= 0 || rep.Serial.Events == 0 {
		t.Fatalf("serial point not measured: %+v", rep.Serial)
	}
	if len(rep.Parallel) != 2 {
		t.Fatalf("got %d parallel points, want 2", len(rep.Parallel))
	}
	for _, pt := range rep.Parallel {
		if pt.Domains != 5 {
			t.Fatalf("parallel point ran with %d domains, want 5", pt.Domains)
		}
		if pt.Speedup <= 0 || pt.Events == 0 || pt.Epochs == 0 {
			t.Fatalf("parallel point not measured: %+v", pt)
		}
	}
	// The profiled run's Summary matched the unprofiled baseline inside
	// RunPDESBench; pin that the report carries the profile sections and
	// digest findings.
	if rep.Profile == nil || rep.Profile.Virtual == nil || rep.Profile.Engine == nil {
		t.Fatalf("profile sections missing: %+v", rep.Profile)
	}
	if len(rep.Bottlenecks) == 0 {
		t.Fatal("no bottleneck findings")
	}
	if prof.Enabled && (rep.Profile.Wall == nil || len(rep.Profile.Wall.PerDomain) == 0) {
		t.Fatalf("wall plane missing from profiled run: %+v", rep.Profile.Wall)
	}
	// The faulted pair runs with the injector active; its own Summary
	// cross-check (faulted serial vs faulted partitioned) already ran
	// inside RunPDESBench — here just pin that both points were measured.
	if rep.FaultedSerial.WallMS <= 0 || rep.FaultedSerial.Events == 0 {
		t.Fatalf("faulted serial point not measured: %+v", rep.FaultedSerial)
	}
	if rep.FaultedParallel.Domains != 5 || rep.FaultedParallel.Speedup <= 0 || rep.FaultedParallel.Epochs == 0 {
		t.Fatalf("faulted parallel point not measured: %+v", rep.FaultedParallel)
	}
}

// TestHTTPFleetProfiles pins the benchmark fleet to HTTP-only workloads:
// edge servers speak HTTP, so any video/FTP client in the fleet would
// spend the run retrying refused connections.
func TestHTTPFleetProfiles(t *testing.T) {
	fleet := httpFleet()
	if len(fleet) == 0 {
		t.Fatal("empty fleet")
	}
	for _, p := range fleet {
		if !p.HTTP || p.Video || p.FTP {
			t.Fatalf("profile %q not HTTP-only: %+v", p.Kind, p)
		}
	}
}
