package botnet

import (
	"fmt"
	"strings"

	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// AttackHTTP is the application-level GET flood the paper's §IV-D
// deliberately excludes ("more complex application-level attacks like
// HTTP Flood ... necessitate additional application-level analysis") and
// §V lists among the threats a fuller testbed should cover. Unlike the
// raw-frame vectors, an HTTP flood opens real TCP connections from the
// bot's own address and issues well-formed requests — traffic that is
// protocol-indistinguishable from benign browsing at the header level,
// which is exactly what makes it the hard case for the IDS.
const AttackHTTP AttackType = 4

// Engine is a runnable attack: the raw-frame Flood and the HTTPFlood both
// implement it, and the bot drives either through this interface.
type Engine interface {
	// Start begins the attack.
	Start()
	// Stop halts it immediately.
	Stop()
	// Running reports whether the attack is in progress.
	Running() bool
	// Sent reports attack units emitted (packets or requests).
	Sent() uint64
	// SetOnDone installs the completion callback.
	SetOnDone(fn func())
}

var (
	_ Engine = (*Flood)(nil)
	_ Engine = (*HTTPFlood)(nil)
)

// SetOnDone implements Engine for the raw-frame flood.
func (f *Flood) SetOnDone(fn func()) { f.OnDone = fn }

// HTTPFlood issues GET requests over real TCP connections at a target
// rate. Each request is a fresh short-lived connection, the classic GET
// flood that exhausts server backlogs and worker pools.
type HTTPFlood struct {
	host   *netstack.Host
	rng    *sim.RNG
	cmd    Command
	ticker *sim.Ticker
	ends   sim.Time
	onDone func()

	requests  uint64
	completed uint64
}

// NewHTTPFlood prepares (but does not start) an HTTP GET flood. cmd.PPS is
// interpreted as requests per second; cmd.Port 0 defaults to 80.
func NewHTTPFlood(host *netstack.Host, rng *sim.RNG, cmd Command) *HTTPFlood {
	if cmd.Port == 0 {
		cmd.Port = 80
	}
	return &HTTPFlood{host: host, rng: rng, cmd: cmd}
}

// Sent reports requests issued so far.
func (h *HTTPFlood) Sent() uint64 { return h.requests }

// Completed reports requests that received any response bytes.
func (h *HTTPFlood) Completed() uint64 { return h.completed }

// Running reports whether the flood is active.
func (h *HTTPFlood) Running() bool { return h.ticker != nil }

// SetOnDone implements Engine.
func (h *HTTPFlood) SetOnDone(fn func()) { h.onDone = fn }

// Start begins issuing requests.
func (h *HTTPFlood) Start() {
	if h.ticker != nil {
		return
	}
	h.ends = h.host.Now().Add(h.cmd.Duration)
	perTick := float64(h.cmd.PPS) * floodBatchInterval.Seconds()
	var credit float64
	h.ticker = h.host.Scheduler().Every(floodBatchInterval, func() {
		if h.host.Now() >= h.ends {
			h.Stop()
			if h.onDone != nil {
				h.onDone()
			}
			return
		}
		credit += perTick
		for ; credit >= 1; credit-- {
			h.request()
		}
	})
}

// Stop halts the flood; in-flight requests abort.
func (h *HTTPFlood) Stop() {
	if h.ticker != nil {
		h.ticker.Stop()
		h.ticker = nil
	}
}

// request issues one GET over a fresh connection.
func (h *HTTPFlood) request() {
	h.requests++
	conn := h.host.DialTCP(h.cmd.Target, h.cmd.Port)
	path := fmt.Sprintf("/?%d", h.rng.Uint32())
	conn.OnConnect = func() {
		conn.Send([]byte("GET " + path + " HTTP/1.1\r\nHost: target\r\n\r\n"))
	}
	responded := false
	conn.OnData = func(d []byte) {
		if !responded {
			responded = true
			h.completed++
			// A GET flood doesn't wait for the body: sever immediately to
			// free the local port and maximize server-side churn.
			conn.Abort()
		}
	}
	conn.OnRemoteClose = func() { conn.Close() }
}

// httpTypeName is the wire token of the extended vector.
const httpTypeName = "http"

// attackTypeName resolves extended names (keeps the original switch
// untouched for the three paper vectors).
func attackTypeName(a AttackType) (string, bool) {
	if a == AttackHTTP {
		return httpTypeName, true
	}
	return "", false
}

// parseExtendedAttackType resolves extended names.
func parseExtendedAttackType(s string) (AttackType, bool) {
	if strings.EqualFold(s, httpTypeName) {
		return AttackHTTP, true
	}
	return 0, false
}

// BotAddrs exposes the connected bots' remote addresses (used by the
// interval-based labeler for application-level attacks).
func (c *C2) BotAddrs() []packet.Addr {
	out := make([]packet.Addr, 0, len(c.bots))
	for _, s := range c.sessions() {
		addr, _ := s.conn.RemoteAddr()
		out = append(out, addr)
	}
	return out
}

// AttackInterval records one broadcast attack: its command, time span and
// the bots that received it. Application-level vectors (HTTP) cannot be
// labeled from headers alone; the testbed labels them by interval+source.
type AttackInterval struct {
	Cmd   Command
	Start sim.Time
	End   sim.Time
	Bots  []packet.Addr
}

// Intervals returns the recorded attack history.
func (c *C2) Intervals() []AttackInterval {
	out := make([]AttackInterval, len(c.intervals))
	copy(out, c.intervals)
	return out
}
