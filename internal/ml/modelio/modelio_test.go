package modelio

import (
	"bytes"
	"path/filepath"
	"testing"

	"ddoshield/internal/dataset"
	"ddoshield/internal/ml"
	"ddoshield/internal/ml/cnn"
	"ddoshield/internal/ml/forest"
	"ddoshield/internal/ml/iforest"
	"ddoshield/internal/ml/kmeans"
	"ddoshield/internal/ml/mltest"
	"ddoshield/internal/ml/svm"
	"ddoshield/internal/ml/vae"
)

func TestRoundTripAllModels(t *testing.T) {
	xs, ys := mltest.Blobs(300, 16, 3, 1)
	probe := xs[:50]

	rf, err := forest.Train(forest.Config{Trees: 10, Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	km, err := kmeans.Train(kmeans.Config{Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := cnn.Train(cnn.Config{Epochs: 2, Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}

	for _, m := range []interface {
		Predict([]float64) int
		Name() string
	}{rf, km, net} {
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("save %s: %v", m.Name(), err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("load %s: %v", m.Name(), err)
		}
		if got.Name() != m.Name() {
			t.Fatalf("kind changed: %s -> %s", m.Name(), got.Name())
		}
		for _, x := range probe {
			if got.Predict(x) != m.Predict(x) {
				t.Fatalf("%s: prediction changed after round trip", m.Name())
			}
		}
	}
}

func TestModelSizeOrdering(t *testing.T) {
	// Table II's shape: the K-Means model is dramatically smaller than RF
	// and CNN (11 Kb vs ~712/736 Kb in the paper).
	// Overlapping blobs grow deep trees, as noisy IDS traffic does.
	xs, ys := mltest.Blobs(2000, 26, 0.5, 2)
	rf, err := forest.Train(forest.Config{Trees: 50, MaxDepth: 12, Seed: 2}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	km, err := kmeans.Train(kmeans.Config{Seed: 2}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := cnn.Train(cnn.Config{Epochs: 1, Seed: 2}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	sz := map[string]int64{}
	for _, m := range []interface {
		Predict([]float64) int
		Name() string
	}{rf, km, net} {
		n, err := SizeBytes(m)
		if err != nil {
			t.Fatal(err)
		}
		sz[m.Name()] = n
	}
	if sz["kmeans"]*10 > sz["rf"] || sz["kmeans"]*10 > sz["cnn"] {
		t.Fatalf("size ordering broken: %v", sz)
	}
}

func TestSaveLoadFile(t *testing.T) {
	xs, ys := mltest.Blobs(100, 8, 3, 3)
	km, err := kmeans.Train(kmeans.Config{Seed: 3}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "kmeans.gob")
	if err := SaveFile(path, km); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "kmeans" {
		t.Fatal("wrong kind from file")
	}
}

func TestLoadRejectsJunk(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("accepted junk")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	xs, ys := mltest.Blobs(200, 16, 3, 9)
	km, err := kmeans.Train(kmeans.Config{Seed: 9}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	sc := &dataset.StandardScaler{Mean: make([]float64, 16), Std: make([]float64, 16)}
	for i := range sc.Std {
		sc.Std[i] = 2
		sc.Mean[i] = float64(i)
	}
	var buf bytes.Buffer
	if err := SaveBundle(&buf, Bundle{Model: km, Scaler: sc}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model.Name() != "kmeans" || got.Scaler == nil {
		t.Fatalf("bundle = %+v", got)
	}
	if got.Scaler.Mean[3] != 3 || got.Scaler.Std[3] != 2 {
		t.Fatal("scaler corrupted")
	}
	// Bundle without scaler.
	buf.Reset()
	if err := SaveBundle(&buf, Bundle{Model: km}); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Scaler != nil {
		t.Fatal("phantom scaler")
	}
}

func TestOffsetViewRoundTrip(t *testing.T) {
	xs, ys := mltest.Blobs(200, 10, 3, 10)
	rf, err := forest.Train(forest.Config{Trees: 3, Seed: 10}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	v := ml.OffsetView{Inner: rf, Offset: 6}
	var buf bytes.Buffer
	if err := Save(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gv, ok := got.(ml.OffsetView)
	if !ok || gv.Offset != 6 {
		t.Fatalf("got %T %+v", got, got)
	}
	probe := make([]float64, 16)
	if gv.Predict(probe) != v.Predict(probe) {
		t.Fatal("prediction changed")
	}
}

func TestRoundTripExtensionModels(t *testing.T) {
	xs, ys := mltest.Blobs(300, 12, 3, 11)
	probe := xs[:20]

	sv, err := svm.Train(svm.Config{Seed: 11}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	ifo, err := iforest.Train(iforest.Config{Trees: 20, Seed: 11}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	va, err := vae.Train(vae.Config{Seed: 11, Epochs: 2}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ml.Classifier{sv, ifo, va} {
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("save %s: %v", m.Name(), err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("load %s: %v", m.Name(), err)
		}
		if got.Name() != m.Name() {
			t.Fatalf("kind changed: %s -> %s", m.Name(), got.Name())
		}
		for _, x := range probe {
			if got.Predict(x) != m.Predict(x) {
				t.Fatalf("%s: prediction changed after round trip", m.Name())
			}
		}
	}
}

func TestBundleFileRoundTrip(t *testing.T) {
	xs, ys := mltest.Blobs(100, 8, 3, 12)
	km, err := kmeans.Train(kmeans.Config{Seed: 12}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.model")
	if err := SaveBundleFile(path, Bundle{Model: km}); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Model.Name() != "kmeans" {
		t.Fatal("wrong kind")
	}
	if _, err := LoadBundleFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("loaded missing file")
	}
}

func TestLoadBundleRejectsPlainModel(t *testing.T) {
	xs, ys := mltest.Blobs(60, 4, 3, 13)
	km, err := kmeans.Train(kmeans.Config{Seed: 13}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, km); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(&buf); err == nil {
		t.Fatal("plain model accepted as bundle")
	}
}

type unknownModel struct{}

func (unknownModel) Predict([]float64) int { return 0 }
func (unknownModel) Name() string          { return "mystery" }

func TestSaveRejectsUnknownModel(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, unknownModel{}); err == nil {
		t.Fatal("unknown model type accepted")
	}
	if _, err := SizeBytes(unknownModel{}); err == nil {
		t.Fatal("SizeBytes accepted unknown model")
	}
}
