// Package report renders experiment series as terminal graphics: unicode
// sparklines and labeled ASCII bar charts, so cmd/benchtables can show the
// paper's figures (per-second accuracy dips, throughput under attack,
// connected-bots population) directly in the terminal next to their CSV.
package report

import (
	"fmt"
	"math"
	"strings"
)

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as one line of unicode block characters, scaled
// between lo and hi. Pass lo==hi to auto-scale to the data range.
func Sparkline(vals []float64, lo, hi float64) string {
	if len(vals) == 0 {
		return ""
	}
	if lo == hi {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo == hi { // constant series
			hi = lo + 1
		}
	}
	var b strings.Builder
	span := hi - lo
	for _, v := range vals {
		t := (v - lo) / span
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		idx := int(t * float64(len(sparkLevels)-1))
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Downsample reduces vals to at most width points by bucket-averaging, so
// long series fit a terminal row.
func Downsample(vals []float64, width int) []float64 {
	if width <= 0 || len(vals) <= width {
		out := make([]float64, len(vals))
		copy(out, vals)
		return out
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(vals) / width
		hi := (i + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		var s float64
		for _, v := range vals[lo:hi] {
			s += v
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

// Bar renders one labeled horizontal bar scaled to max (value max fills
// width runes).
func Bar(label string, value, max float64, width int) string {
	if width <= 0 {
		width = 40
	}
	n := 0
	if max > 0 {
		n = int(value / max * float64(width))
	}
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return fmt.Sprintf("%-10s %s%s %.2f", label,
		strings.Repeat("█", n), strings.Repeat("·", width-n), value)
}

// BarChart renders one bar per (label, value) pair, scaled to the largest
// value.
func BarChart(labels []string, values []float64, width int) string {
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for i := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		b.WriteString(Bar(label, values[i], max, width))
		b.WriteByte('\n')
	}
	return b.String()
}
