package netstack

import (
	"fmt"

	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry/trace"
)

// Router is a multi-homed IPv4 forwarder: it joins several LAN segments,
// decrements TTL, and relays packets according to a longest-prefix-match
// routing table. The paper's default topology is a single CSMA segment,
// but the testbed is explicitly meant to be extended to "more dynamic and
// variable network conditions" (§V); Router provides the multi-segment
// substrate for such scenarios.
type Router struct {
	name   string
	sched  *sim.Scheduler
	ifaces []*routerIface
	routes []Route

	forwarded  uint64
	ttlExpired uint64
	noRoute    uint64
}

// Route maps a destination prefix to an egress interface index and, for
// off-link destinations, a next-hop address (zero = deliver directly).
type Route struct {
	Prefix  packet.Prefix
	IfIndex int
	NextHop packet.Addr
}

type routerIface struct {
	router *Router
	host   *Host
	index  int
}

// NewRouter creates a router with no interfaces.
func NewRouter(name string, sched *sim.Scheduler) *Router {
	return &Router{name: name, sched: sched}
}

// AddInterface binds a NIC with an address/subnet as one router port. The
// interface answers ARP on its segment like any host.
func (r *Router) AddInterface(nic *netsim.NIC, cfg HostConfig) *Host {
	h := NewHost(nic, cfg)
	iface := &routerIface{router: r, host: h, index: len(r.ifaces)}
	r.ifaces = append(r.ifaces, iface)
	// Chain into the host's IPv4 path: packets not addressed to the
	// interface itself are candidates for forwarding.
	h.forwarder = iface
	return h
}

// AddRoute appends a route. Routes are matched longest-prefix-first.
func (r *Router) AddRoute(rt Route) error {
	if rt.IfIndex < 0 || rt.IfIndex >= len(r.ifaces) {
		return fmt.Errorf("router %s: no interface %d", r.name, rt.IfIndex)
	}
	r.routes = append(r.routes, rt)
	return nil
}

// Stats reports packets forwarded, dropped for TTL expiry, and dropped for
// lack of a route.
func (r *Router) Stats() (forwarded, ttlExpired, noRoute uint64) {
	return r.forwarded, r.ttlExpired, r.noRoute
}

// lookup returns the best route for dst.
func (r *Router) lookup(dst packet.Addr) (Route, bool) {
	best := -1
	var out Route
	for _, rt := range r.routes {
		if rt.Prefix.Contains(dst) && rt.Prefix.Bits > best {
			best = rt.Prefix.Bits
			out = rt
		}
	}
	return out, best >= 0
}

// forward relays one IPv4 packet that arrived on an interface but is not
// addressed to the router itself.
func (ifc *routerIface) forward(ip packet.IPv4, payload []byte) {
	r := ifc.router
	if ip.TTL <= 1 {
		r.ttlExpired++
		return
	}
	rt, ok := r.lookup(ip.Dst)
	if !ok {
		r.noRoute++
		return
	}
	egress := r.ifaces[rt.IfIndex]
	hop := rt.NextHop
	if hop.IsZero() {
		hop = ip.Dst
	}
	ip.TTL--
	r.forwarded++
	// Rebuild the packet with the decremented TTL and fresh checksum,
	// then resolve the next hop on the egress segment.
	body := make([]byte, len(payload))
	copy(body, payload)
	out := ip
	egress.host.sendIPVia(hop, trace.Context{}, func(dstMAC packet.MAC) []byte {
		eth := packet.Ethernet{Dst: dstMAC, Src: egress.host.MAC(), Type: packet.EtherTypeIPv4}
		b := eth.Marshal(make([]byte, 0, packet.EthernetHeaderLen+packet.IPv4HeaderLen+len(body)))
		b = out.Marshal(b, len(body))
		return append(b, body...)
	})
}
