// Command benchtables regenerates every table and figure of the paper's
// evaluation section from scratch:
//
//	benchtables -table 1            Table I  (real-time detection accuracy)
//	benchtables -table 2            Table II (CPU %, memory, model size)
//	benchtables -table all          both tables + §IV-D dataset & training rows
//	benchtables -table ext          the §V extension study (SVM, IF, VAE)
//	benchtables -series per-second  the per-window accuracy timeline with its
//	                                boundary dips (§IV-D discussion)
//	benchtables -series bots        the connected-bots timeline (DDoSim)
//	benchtables -series throughput  TServer throughput under attack (DDoSim)
//	-scale quick|paper selects the CI-scale or paper-scale scenario.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ddoshield/internal/botnet"
	"ddoshield/internal/experiments"
	"ddoshield/internal/report"
	"ddoshield/internal/sim"
	"ddoshield/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table  = flag.String("table", "", "regenerate a table: 1, 2 or all")
		series = flag.String("series", "", "regenerate a series: per-second, bots, throughput")
		scale  = flag.String("scale", "quick", "scenario scale: quick or paper")
		seed   = flag.Int64("seed", 0, "override the scenario seed (0 = preset)")
	)
	flag.Parse()
	if *table == "" && *series == "" {
		*table = "all"
	}

	var sc experiments.Scenario
	switch *scale {
	case "quick":
		sc = experiments.Quick()
	case "paper":
		sc = experiments.Paper()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	switch *series {
	case "":
	case "bots":
		return runBotsSeries(sc)
	case "throughput":
		return runThroughputSeries(sc)
	case "per-second":
		return runPerSecondSeries(sc)
	default:
		return fmt.Errorf("unknown series %q", *series)
	}

	switch *table {
	case "1", "2", "all", "ext":
	default:
		return fmt.Errorf("unknown table %q", *table)
	}

	if *table == "ext" {
		return runExtensionStudy(sc)
	}

	fmt.Printf("== generating dataset (%v run, %d devices) ==\n", sc.TrainDuration, sc.Devices)
	ds, err := sc.GenerateDataset()
	if err != nil {
		return err
	}
	sum := ds.Summarize()
	fmt.Printf("§IV-D dataset: %s\n", sum)
	fmt.Printf("  (paper: 3,012,885 malicious / 2,243,634 benign — 57.3%%/42.7%%; here %.1f%%/%.1f%%)\n\n",
		100*float64(sum.Malicious)/float64(sum.Total), 100*float64(sum.Benign)/float64(sum.Total))

	fmt.Println("== training RF / K-Means / CNN ==")
	tr, err := sc.TrainModels(ds)
	if err != nil {
		return err
	}
	fmt.Println("§IV-D offline training metrics (80/20 split):")
	for _, tm := range tr.Models() {
		fmt.Printf("  %-8s %v\n", tm.Model.Name(), tm.TrainReport)
	}
	fmt.Println()

	fmt.Printf("== real-time detection (%v run) ==\n", sc.DetectDuration)
	rt, err := sc.RunRealTime(tr)
	if err != nil {
		return err
	}

	if *table == "1" || *table == "all" {
		fmt.Println("TABLE I — ML Models Performance Evaluation in Real-Time Detection")
		fmt.Println(experiments.FormatTable1(rt.Table1))
		fmt.Println("paper reference: RF 61.22 / K-Means 94.82 / CNN 95.47")
		for _, r := range rt.Table1 {
			fmt.Printf("  %-8s worst window: %.2f%%\n", r.Model, r.MinAccuracy*100)
		}
		fmt.Println("paper reference minimum: 35% (K-Means, at attack boundaries)")
		fmt.Println()
	}
	if *table == "2" || *table == "all" {
		fmt.Println("TABLE II — ML Models Sustainability")
		fmt.Println(experiments.FormatTable2(rt.Table2))
		fmt.Println("paper reference: RF 65.46/98.07/712.30  K-Means 67.88/86.83/11.20  CNN 65.94/275.85/736.30")
	}
	if len(rt.Detection) > 0 {
		fmt.Println()
		fmt.Println("DETECTION LATENCY — first attack packet origin → first correct alert")
		fmt.Println(experiments.FormatDetection(rt.Detection))
	}
	return nil
}

// runExtensionStudy trains and evaluates the §V extension detectors (SVM,
// Isolation Forest, VAE) in the same real-time environment as Table I.
func runExtensionStudy(sc experiments.Scenario) error {
	fmt.Printf("== generating dataset (%v run) ==\n", sc.TrainDuration)
	ds, err := sc.GenerateDataset()
	if err != nil {
		return err
	}
	fmt.Println("== training SVM / Isolation Forest / VAE ==")
	ext, err := sc.TrainExtendedModels(ds)
	if err != nil {
		return err
	}
	for _, tm := range ext {
		fmt.Printf("  %-8s %v (model %.2f Kb)\n",
			tm.Model.Name(), tm.TrainReport, float64(tm.SizeBytes)/1024)
	}
	fmt.Println("== real-time detection ==")
	rt, err := sc.RunRealTimeModels(ext)
	if err != nil {
		return err
	}
	fmt.Println("EXTENSION STUDY — §V additional models, real-time")
	fmt.Println(experiments.FormatTable1(rt.Table1))
	fmt.Println(experiments.FormatTable2(rt.Table2))
	if len(rt.Detection) > 0 {
		fmt.Println(experiments.FormatDetection(rt.Detection))
	}
	return nil
}

func runBotsSeries(sc experiments.Scenario) error {
	fmt.Println("# connected-bots timeline (DDoSim-inherited figure)")
	fmt.Println("time_s,bots")
	hist, err := sc.BotsTimeline(true, sc.TrainDuration)
	if err != nil {
		return err
	}
	for _, s := range hist {
		fmt.Printf("%.1f,%d\n", s.Time.Seconds(), s.Bots)
	}
	return nil
}

func runThroughputSeries(sc experiments.Scenario) error {
	fmt.Println("# TServer rx throughput under SYN flood (DDoSim-inherited figure)")
	tb, err := testbed.New(testbed.Config{Seed: sc.Seed, NumDevices: sc.Devices})
	if err != nil {
		return err
	}
	ts := tb.NewThroughputSampler(time.Second)
	tb.Start()
	if err := tb.Run(90 * time.Second); err != nil {
		return err
	}
	tb.C2().Broadcast(botnet.Command{
		Type: botnet.AttackSYN, Target: tb.TServerAddr(), Port: 80,
		Duration: 30 * time.Second, PPS: sc.TrainPPS,
	})
	if err := tb.Run(60 * time.Second); err != nil {
		return err
	}
	fmt.Println("time_s,rx_mbps,phase")
	rates := make([]float64, 0, len(ts.Samples()))
	for _, s := range ts.Samples() {
		phase := "benign"
		if s.Time > 90*sim.Second && s.Time <= 120*sim.Second {
			phase = "attack"
		}
		mbps := float64(s.RxBytes) * 8 / 1e6
		rates = append(rates, mbps)
		fmt.Printf("%.0f,%.3f,%s\n", s.Time.Seconds(), mbps, phase)
	}
	fmt.Printf("\n# rx Mb/s (attack window at t=90..120s)\nrx       %s\n",
		report.Sparkline(report.Downsample(rates, 72), 0, 0))
	return nil
}

func runPerSecondSeries(sc experiments.Scenario) error {
	ds, err := sc.GenerateDataset()
	if err != nil {
		return err
	}
	tr, err := sc.TrainModels(ds)
	if err != nil {
		return err
	}
	rt, err := sc.RunRealTime(tr)
	if err != nil {
		return err
	}
	fmt.Println("# per-second accuracy series (§IV-D boundary-dip figure)")
	fmt.Println("time_s,model,packets,truth_malicious,accuracy")
	for _, row := range rt.Table1 {
		for _, w := range row.Series {
			fmt.Printf("%.0f,%s,%d,%d,%.4f\n",
				w.Start.Seconds(), row.Model, w.Packets, w.TruthMalicious, w.Accuracy)
		}
	}
	fmt.Println("\n# accuracy per window, 0-100% (dips are attack boundaries)")
	for _, row := range rt.Table1 {
		accs := make([]float64, len(row.Series))
		for i, w := range row.Series {
			accs[i] = w.Accuracy
		}
		fmt.Printf("%-8s %s\n", row.Model, report.Sparkline(report.Downsample(accs, 72), 0, 1))
	}
	return nil
}
