// Miraicampaign narrates a full botnet campaign phase by phase: the
// scanner cracking factory telnet credentials, the loader planting bots,
// the C2 population growing under device churn, and a flood wave degrading
// the TServer — the DDoSim-inherited scenario DDoShield-IoT builds on.
package main

import (
	"fmt"
	"log"
	"time"

	"ddoshield/internal/botnet"
	"ddoshield/internal/netsim"
	"ddoshield/internal/sim"
	"ddoshield/internal/testbed"
)

func main() {
	tb, err := testbed.New(testbed.Config{
		Seed:       7,
		NumDevices: 15,
		// Churn makes devices reboot; reboots shed the (memory-resident)
		// infection, so the population breathes.
		Churn: testbed.ChurnConfig{
			Enabled: true,
			MeanUp:  2 * time.Minute,
		},
		// Constrain the uplinks so the flood's impact on the TServer is
		// visible in throughput.
		Link: netsim.LinkConfig{RateBps: 20_000_000, Delay: sim.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}

	ts := tb.NewThroughputSampler(time.Second)
	tb.Start()

	fmt.Println("=== phase 1: scan & infect (0-2 min) ===")
	if err := tb.Run(2 * time.Minute); err != nil {
		log.Fatal(err)
	}
	probes, _, cracked, infections := tb.Attacker().Stats()
	fmt.Printf("scanner: %d probes, %d cracked, %d infections; C2 population: %d\n",
		probes, cracked, infections, tb.C2().Bots())
	for _, dh := range tb.Devices() {
		status := "clean"
		if dh.Device.Infected() {
			status = "INFECTED"
		} else if !dh.Device.Vulnerable() {
			status = "hardened"
		}
		fmt.Printf("  %-18s %-9s (%d lifetime infections)\n",
			dh.Container.Name(), status, dh.Device.Infections())
	}

	fmt.Println("\n=== phase 2: SYN flood (2:00-2:40) ===")
	tb.C2().Broadcast(botnet.Command{
		Type:     botnet.AttackSYN,
		Target:   tb.TServerAddr(),
		Port:     80,
		Duration: 40 * time.Second,
		PPS:      2000,
	})
	if err := tb.Run(50 * time.Second); err != nil {
		log.Fatal(err)
	}
	_, synDropped, halfExpired := tb.HTTPServer().Listener().Stats()
	fmt.Printf("TServer under attack: %d SYNs dropped at the backlog, %d half-open expired\n",
		synDropped, halfExpired)

	fmt.Println("\n=== phase 3: recovery (2:50-3:50) ===")
	if err := tb.Run(time.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nTServer rx throughput (10 s buckets):")
	var bucket uint64
	for i, s := range ts.Samples() {
		bucket += s.RxBytes
		if (i+1)%10 == 0 {
			fmt.Printf("  t=%3ds  %6.2f Mb/s\n", i+1, float64(bucket)*8/10/1e6)
			bucket = 0
		}
	}

	fmt.Println("\nconnected-bots timeline:")
	for _, p := range tb.C2().History() {
		fmt.Printf("  t=%-8v bots=%d\n", p.Time, p.Bots)
	}
}
