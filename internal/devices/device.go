package devices

import (
	"time"

	"ddoshield/internal/apps/ftpapp"
	"ddoshield/internal/apps/httpapp"
	"ddoshield/internal/apps/rtmpapp"
	"ddoshield/internal/botnet"
	"ddoshield/internal/container"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
)

// Profile describes a class of IoT device: its factory telnet credential
// (drawn from the Mirai dictionary for vulnerable classes, empty for
// hardened ones) and the benign workloads it runs against the TServer.
type Profile struct {
	// Kind is a human-readable class name ("ip-camera", ...).
	Kind string
	// Cred is the factory telnet credential; a zero value hardens the
	// device against dictionary attack.
	Cred botnet.Credential
	// HTTP, Video, FTP enable the corresponding client workloads.
	HTTP  bool
	Video bool
	FTP   bool
	// ThinkScale stretches (>1) or compresses (<1) client think times,
	// differentiating chatty devices from quiet ones. Zero means 1.
	ThinkScale float64
}

// Built-in profiles modeled on the device classes Mirai notoriously
// conscripted (cameras, DVRs) plus benign-only classes.
var (
	// ProfileIPCamera is a vulnerable camera that watches video streams
	// and fetches firmware/config over HTTP.
	ProfileIPCamera = Profile{
		Kind: "ip-camera", Cred: botnet.Credential{User: "root", Pass: "xc3511"},
		HTTP: true, Video: true,
	}
	// ProfileDVR is a vulnerable DVR doing video and FTP.
	ProfileDVR = Profile{
		Kind: "dvr", Cred: botnet.Credential{User: "root", Pass: "vizxv"},
		Video: true, FTP: true,
	}
	// ProfileRouter is a vulnerable home router with light HTTP chatter.
	ProfileRouter = Profile{
		Kind: "router", Cred: botnet.Credential{User: "admin", Pass: "admin"},
		HTTP: true, ThinkScale: 2,
	}
	// ProfileSensor is a hardened sensor posting small HTTP readings.
	ProfileSensor = Profile{
		Kind: "sensor", HTTP: true, ThinkScale: 0.5,
	}
	// ProfileSmartTV is a hardened TV streaming video.
	ProfileSmartTV = Profile{
		Kind: "smart-tv", Video: true,
	}
)

// DefaultFleet cycles the built-in profiles: 3 of 5 classes vulnerable.
var DefaultFleet = []Profile{
	ProfileIPCamera, ProfileDVR, ProfileRouter, ProfileSensor, ProfileSmartTV,
}

// Config wires a Device to its environment.
type Config struct {
	// Name identifies the device (bot ID, container name).
	Name string
	// Profile selects class behaviour.
	Profile Profile
	// TServer is the benign target server's address.
	TServer packet.Addr
	// SpoofRange is handed to the bot for flood source forging.
	SpoofRange packet.Prefix
	// Seed drives the device's workloads.
	Seed int64
	// MeanThink is the base think time between benign requests
	// (default 5 s, scaled by the profile's ThinkScale).
	MeanThink time.Duration
}

// Device is one Dev: telnet service + benign clients + (after infection) a
// bot. It implements container.App.
type Device struct {
	cfg    Config
	telnet *TelnetService
	http   *httpapp.Client
	video  *rtmpapp.Client
	ftp    *ftpapp.Client
	bot    *botnet.Bot
	host   *netstack.Host

	infections uint64
	running    bool
}

var _ container.App = (*Device)(nil)

// New returns an unstarted device.
func New(cfg Config) *Device {
	if cfg.MeanThink <= 0 {
		cfg.MeanThink = 5 * time.Second
	}
	return &Device{cfg: cfg}
}

// Start implements container.App: it brings up the telnet service and the
// profile's benign clients. A restarted device is clean (no bot).
func (d *Device) Start(c *container.Container) {
	d.StartOn(c.Host())
}

// StartOn brings the device up on an arbitrary host (tests use this
// without a container runtime).
func (d *Device) StartOn(h *netstack.Host) {
	if d.running {
		return
	}
	d.running = true
	d.host = h
	p := d.cfg.Profile
	d.telnet = NewTelnetService(p.Cred.User, p.Cred.Pass)
	d.telnet.OnInstall = d.install
	// Port 23 is bound fresh each start; errors only occur on double start.
	_ = d.telnet.Attach(h)
	think := d.cfg.MeanThink
	if p.ThinkScale > 0 {
		think = time.Duration(float64(think) * p.ThinkScale)
	}
	if p.HTTP {
		d.http = httpapp.NewClient(d.cfg.TServer, 0, think, d.cfg.Seed+1)
		d.http.Attach(h)
	}
	if p.Video {
		d.video = rtmpapp.NewClient(d.cfg.TServer, 0, 2*think, d.cfg.Seed+2)
		d.video.Attach(h)
	}
	if p.FTP {
		d.ftp = ftpapp.NewClient(d.cfg.TServer, 0, "anonymous", "iot@dev", 3*think, d.cfg.Seed+3)
		d.ftp.Attach(h)
	}
}

// Stop implements container.App: everything is torn down, including any
// implant — Mirai does not survive a reboot.
func (d *Device) Stop() {
	if !d.running {
		return
	}
	d.running = false
	if d.bot != nil {
		d.bot.Detach()
		d.bot = nil
	}
	if d.telnet != nil {
		d.telnet.Detach()
		d.telnet = nil
	}
	if d.http != nil {
		d.http.Detach()
		d.http = nil
	}
	if d.video != nil {
		d.video.Detach()
		d.video = nil
	}
	if d.ftp != nil {
		d.ftp.Detach()
		d.ftp = nil
	}
}

// install plants (or restarts) the bot; invoked by the telnet INSTALL
// command the loader issues.
func (d *Device) install(c2 packet.Addr, port uint16) {
	if !d.running {
		return
	}
	if d.bot != nil {
		d.bot.Detach()
	}
	d.infections++
	d.bot = botnet.NewBot(d.cfg.Name, c2, port, d.cfg.SpoofRange, d.cfg.Seed+9)
	d.bot.Attach(d.host)
}

// Infected reports whether a bot is currently planted.
func (d *Device) Infected() bool { return d.bot != nil }

// Bot exposes the implant for inspection (nil when clean).
func (d *Device) Bot() *botnet.Bot { return d.bot }

// Infections reports how many times the device has been (re)infected.
func (d *Device) Infections() uint64 { return d.infections }

// Telnet exposes the telnet service (nil when stopped).
func (d *Device) Telnet() *TelnetService { return d.telnet }

// Profile reports the device's profile.
func (d *Device) Profile() Profile { return d.cfg.Profile }

// Vulnerable reports whether the profile carries a factory credential.
func (d *Device) Vulnerable() bool { return d.cfg.Profile.Cred.User != "" }

// BenignStats aggregates the benign clients' request/transfer counters.
func (d *Device) BenignStats() (started, completed uint64) {
	if d.http != nil {
		f, c, _, _ := d.http.Stats()
		started += f
		completed += c
	}
	if d.video != nil {
		p, fin, _ := d.video.Stats()
		started += p
		completed += fin
	}
	if d.ftp != nil {
		s, c, _, _ := d.ftp.Stats()
		started += s
		completed += c
	}
	return started, completed
}
