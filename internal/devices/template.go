package devices

import (
	"time"

	"ddoshield/internal/packet"
)

// Template is the immutable, shared blueprint for one class of device in
// one deployment context: the profile's behavior table, the pre-scaled
// client think times, and the addresses every instance targets. A fleet
// holds one Template per (profile, target) pair and every Device carries
// only a pointer to it, so the per-device footprint stays a small struct
// (name, seed, runtime state) no matter how large the fleet grows — the
// flyweight pattern lean IoT simulation frameworks use to reach
// 100k–1M-client fleets.
//
// Templates are read-only after construction and therefore safe to share
// across PDES domains.
type Template struct {
	profile Profile
	tserver packet.Addr
	spoof   packet.Prefix
	// think is the profile-scaled base think time; video and FTP clients
	// derive their own pacing from it (2x and 3x) exactly as the original
	// per-device config did.
	think time.Duration
}

// TemplateConfig parameterizes NewTemplate.
type TemplateConfig struct {
	// Profile selects class behaviour.
	Profile Profile
	// TServer is the benign target server's address.
	TServer packet.Addr
	// SpoofRange is handed to the bot for flood source forging.
	SpoofRange packet.Prefix
	// MeanThink is the base think time between benign requests
	// (default 5 s, scaled by the profile's ThinkScale).
	MeanThink time.Duration
}

// NewTemplate builds the shared blueprint for one device class.
func NewTemplate(cfg TemplateConfig) *Template {
	if cfg.MeanThink <= 0 {
		cfg.MeanThink = 5 * time.Second
	}
	think := cfg.MeanThink
	if cfg.Profile.ThinkScale > 0 {
		think = time.Duration(float64(think) * cfg.Profile.ThinkScale)
	}
	return &Template{
		profile: cfg.Profile,
		tserver: cfg.TServer,
		spoof:   cfg.SpoofRange,
		think:   think,
	}
}

// Profile reports the class profile the template instantiates.
func (t *Template) Profile() Profile { return t.profile }

// TServer reports the benign target address instances aim at.
func (t *Template) TServer() packet.Addr { return t.tserver }

// Think reports the profile-scaled base think time.
func (t *Template) Think() time.Duration { return t.think }

// Instantiate returns an unstarted flyweight device backed by this
// template. name identifies the device (bot ID, container name) and seed
// drives its private randomness; everything class-level is shared.
func (t *Template) Instantiate(name string, seed int64) *Device {
	return &Device{tmpl: t, name: name, seed: seed}
}

// rearm resets a retained service to factory-new state for a device
// (re)start: the device's credential, fresh stats, its install hook.
//
// Devices keep their TelnetService across restarts instead of returning
// it to a fleet-wide pool. Retention must be strictly per-device: telnet
// sessions opened before a crash outlive Stop() — their connection events
// and retransmit timers keep firing against the service object — so a
// service recycled to a DIFFERENT device would let those late events
// observe the new owner's credential and install hook, and which device
// got the recycled object would depend on pool scheduling, not on the
// simulation. (That exact bug made faulted partitioned campaigns diverge
// from serial ones.) Per-device reuse gives churn-heavy campaigns the
// same allocation win with no cross-device channel.
func (t *TelnetService) rearm(user, pass string, onInstall func(c2 packet.Addr, port uint16)) {
	t.user, t.pass = user, pass
	t.hardened = user == ""
	t.OnInstall = onInstall
	t.listener = nil
	t.logins, t.failures, t.installs = 0, 0, 0
}
