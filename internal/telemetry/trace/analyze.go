package trace

import (
	"bufio"
	"io"
	"sort"
	"strconv"

	"ddoshield/internal/sim"
)

// HopStat aggregates every span sharing one hop name.
type HopStat struct {
	Name  string
	Count int
	Drops int
	Total sim.Time
	Min   sim.Time
	Max   sim.Time
}

// Mean is the average span latency for the hop.
func (h HopStat) Mean() sim.Time {
	if h.Count == 0 {
		return 0
	}
	return h.Total / sim.Time(h.Count)
}

// Breakdown computes the per-hop latency profile of a span set, sorted by
// hop name for stable output.
func Breakdown(spans []Span) []HopStat {
	byName := make(map[string]*HopStat)
	for _, s := range spans {
		st := byName[s.Name]
		if st == nil {
			st = &HopStat{Name: s.Name, Min: s.Latency()}
			byName[s.Name] = st
		}
		lat := s.Latency()
		st.Count++
		st.Total += lat
		if lat < st.Min {
			st.Min = lat
		}
		if lat > st.Max {
			st.Max = lat
		}
		if s.Dropped() {
			st.Drops++
		}
	}
	out := make([]HopStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TraceSummary is the per-trace rollup: flow provenance from the root span,
// end-to-end bounds, and the first drop cause (if any).
type TraceSummary struct {
	Trace  TraceID
	Kind   Kind
	Flow   Flow
	Origin string // root span name
	Start  sim.Time
	End    sim.Time // max End over the trace's spans
	Spans  int
	Drop   DropCause // first discard in span-ID order; DropNone if delivered
}

// Latency is the trace's origin-to-last-event duration.
func (t TraceSummary) Latency() sim.Time { return t.End - t.Start }

// Delivered reports whether the trace ended without a discard.
func (t TraceSummary) Delivered() bool { return t.Drop == DropNone }

// Summaries rolls spans up per trace, sorted by trace ID. Traces whose
// root span was evicted from the ring keep a zero Flow/Origin.
func Summaries(spans []Span) []TraceSummary {
	byTrace := make(map[TraceID]*TraceSummary)
	firstDrop := make(map[TraceID]SpanID)
	for _, s := range spans {
		ts := byTrace[s.Trace]
		if ts == nil {
			ts = &TraceSummary{Trace: s.Trace, Kind: s.Kind, Start: s.Start, End: s.End}
			byTrace[s.Trace] = ts
		}
		ts.Spans++
		if s.Start < ts.Start {
			ts.Start = s.Start
		}
		if s.End > ts.End {
			ts.End = s.End
		}
		if s.Root() {
			ts.Flow = s.Flow
			ts.Origin = s.Name
			ts.Start = s.Start
		}
		if s.Dropped() {
			if prev, ok := firstDrop[s.Trace]; !ok || s.ID < prev {
				firstDrop[s.Trace] = s.ID
				ts.Drop = s.Drop
			}
		}
	}
	out := make([]TraceSummary, 0, len(byTrace))
	for _, ts := range byTrace {
		out = append(out, *ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Trace < out[j].Trace })
	return out
}

// TopSlowest returns the n highest-latency traces, slowest first (ties
// broken by trace ID for determinism).
func TopSlowest(sums []TraceSummary, n int) []TraceSummary {
	out := make([]TraceSummary, len(sums))
	copy(out, sums)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Latency() != out[j].Latency() {
			return out[i].Latency() > out[j].Latency()
		}
		return out[i].Trace < out[j].Trace
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// CriticalPath returns the chain of spans from a trace's root to its
// latest-ending leaf: at each step it descends into the child whose
// subtree ends last (ties broken by span ID). Returns nil when the trace
// or its root span is absent.
func CriticalPath(spans []Span, id TraceID) []Span {
	children := make(map[SpanID][]Span)
	var root *Span
	for i := range spans {
		s := spans[i]
		if s.Trace != id {
			continue
		}
		if s.Root() {
			root = &spans[i]
			continue
		}
		children[s.Parent] = append(children[s.Parent], s)
	}
	if root == nil {
		return nil
	}
	// subtreeEnd memoizes the latest End reachable under each span.
	var subtreeEnd func(s Span) sim.Time
	memo := make(map[SpanID]sim.Time)
	subtreeEnd = func(s Span) sim.Time {
		if v, ok := memo[s.ID]; ok {
			return v
		}
		end := s.End
		for _, ch := range children[s.ID] {
			if e := subtreeEnd(ch); e > end {
				end = e
			}
		}
		memo[s.ID] = end
		return end
	}
	path := []Span{*root}
	cur := *root
	for {
		kids := children[cur.ID]
		if len(kids) == 0 {
			return path
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i].ID < kids[j].ID })
		best := kids[0]
		bestEnd := subtreeEnd(best)
		for _, k := range kids[1:] {
			if e := subtreeEnd(k); e > bestEnd {
				best, bestEnd = k, e
			}
		}
		path = append(path, best)
		cur = best
	}
}

// WriteChromeSpans renders spans as chrome://tracing "complete" events:
// one timeline row (tid) per trace, span nesting shown by duration
// containment. Load via chrome://tracing or https://ui.perfetto.dev.
func WriteChromeSpans(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	for i, s := range spans {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n{\"name\":")
		bw.WriteString(strconv.Quote(s.Name))
		bw.WriteString(",\"cat\":\"")
		bw.WriteString(s.Kind.String())
		bw.WriteString("\",\"ph\":\"X\",\"pid\":1,\"tid\":")
		bw.WriteString(strconv.FormatUint(uint64(s.Trace), 10))
		bw.WriteString(",\"ts\":")
		bw.WriteString(strconv.FormatFloat(float64(s.Start)/1e3, 'f', 3, 64))
		bw.WriteString(",\"dur\":")
		bw.WriteString(strconv.FormatFloat(float64(s.Latency())/1e3, 'f', 3, 64))
		bw.WriteString(",\"args\":{\"actor\":")
		bw.WriteString(strconv.Quote(s.Actor))
		if s.Root() {
			bw.WriteString(",\"flow\":\"")
			bw.Write(appendFlow(nil, s.Flow))
			bw.WriteByte('"')
		}
		if s.Dropped() {
			bw.WriteString(",\"drop\":\"")
			bw.WriteString(s.Drop.String())
			bw.WriteByte('"')
		}
		if s.Tag != "" {
			bw.WriteString(",\"tag\":")
			bw.WriteString(strconv.Quote(s.Tag))
		}
		bw.WriteString("}}")
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
