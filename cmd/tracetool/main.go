// Command tracetool analyzes causal-trace span files produced by a traced
// testbed run (ddoshield -trace-sample ... -span-out spans.jsonl).
//
// The default report is the per-hop latency breakdown plus trace-level
// aggregates. Options add the top-N slowest flows, the critical path of one
// trace, and a chrome://tracing export:
//
//	tracetool -in spans.jsonl
//	tracetool -in spans.jsonl -top 10
//	tracetool -in spans.jsonl -mitigated
//	tracetool -in spans.jsonl -trace 17
//	tracetool -in spans.jsonl -chrome spans-chrome.json
package main

import (
	"flag"
	"fmt"
	"os"

	"ddoshield/internal/telemetry/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "span JSONL file from ddoshield -span-out (required)")
		top       = flag.Int("top", 0, "also list the N slowest flows")
		mitigated = flag.Bool("mitigated", false, "list only the flows cut by the mitigation verdict cache (drop cause \"mitigated\")")
		traceID   = flag.Uint64("trace", 0, "print the critical path of this trace ID")
		chrome    = flag.String("chrome", "", "write a chrome://tracing export of all spans here")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	spans, err := trace.ReadSpans(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s holds no spans", *in)
	}

	sums := trace.Summaries(spans)
	delivered, dropped := 0, 0
	for _, s := range sums {
		if s.Delivered() {
			delivered++
		} else {
			dropped++
		}
	}
	fmt.Printf("%d spans across %d traces (%d delivered, %d dropped)\n\n",
		len(spans), len(sums), delivered, dropped)

	fmt.Println("Per-hop latency breakdown:")
	fmt.Println("hop             count   drops        mean         min         max")
	for _, h := range trace.Breakdown(spans) {
		fmt.Printf("%-14s %6d  %6d  %10s  %10s  %10s\n",
			h.Name, h.Count, h.Drops, h.Mean(), h.Min, h.Max)
	}

	if *top > 0 {
		fmt.Printf("\nTop %d slowest flows:\n", *top)
		printFlows(trace.TopSlowest(sums, *top))
	}

	if *mitigated {
		var hit []trace.TraceSummary
		for _, s := range sums {
			if s.Drop == trace.DropMitigated {
				hit = append(hit, s)
			}
		}
		fmt.Printf("\n%d of %d dropped flows were cut by mitigation:\n", len(hit), dropped)
		printFlows(hit)
	}

	if *traceID != 0 {
		path := trace.CriticalPath(spans, trace.TraceID(*traceID))
		if path == nil {
			return fmt.Errorf("trace %d not found (or its root span was evicted)", *traceID)
		}
		fmt.Printf("\nCritical path of trace %d:\n", *traceID)
		origin := path[0].Start
		for _, s := range path {
			marker := ""
			if s.Dropped() {
				marker = "  DROP " + s.Drop.String()
			} else if s.Tag != "" {
				marker = "  [" + s.Tag + "]"
			}
			fmt.Printf("  +%-12s %-14s %-18s span=%-6d dur=%s%s\n",
				(s.Start - origin).Duration(), s.Name, s.Actor, uint64(s.ID),
				s.Latency(), marker)
		}
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeSpans(f, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nchrome://tracing export written to %s\n", *chrome)
	}
	return nil
}

// printFlows renders one trace-summary table row per flow (shared by -top
// and -mitigated).
func printFlows(sums []trace.TraceSummary) {
	fmt.Println("trace  kind     latency      spans  drop            flow")
	for _, s := range sums {
		drop := "-"
		if !s.Delivered() {
			drop = s.Drop.String()
		}
		fmt.Printf("%5d  %-7s  %10s  %5d  %-14s  %s (%s)\n",
			uint64(s.Trace), s.Kind, s.Latency(), s.Spans, drop,
			trace.FlowString(s.Flow), s.Origin)
	}
}
