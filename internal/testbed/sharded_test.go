package testbed

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"

	"ddoshield/internal/netsim"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/trace"
)

// shardedArtifacts runs one full campaign on the sharded core fabric —
// CoreShards=4 over 4 edge groups, so every group trunks into its own
// shard switch — and returns the byte-comparable artifacts. The faulted
// variant layers device churn, the five-kind chaos plan, and lossy
// access + trunk links on top, exercising fault sub-events that now
// execute in shard domains.
func shardedArtifacts(t *testing.T, domains, workers int, faulted bool) (summary, prom, spans string) {
	t.Helper()
	cfg := Config{
		Seed:              42,
		NumDevices:        12,
		DeviceGroups:      4,
		CoreShards:        4,
		MeanThink:         700 * time.Millisecond,
		Domains:           domains,
		PDESWorkers:       workers,
		TraceSampleRate:   0.2,
		TraceSpanCapacity: 1 << 20,
	}
	if faulted {
		cfg.Churn = ChurnConfig{Enabled: true, MeanUp: 8 * time.Second, MeanDown: time.Second}
		cfg.Faults = chaosPlan()
		cfg.Link = netsim.LinkConfig{LossProb: 0.01}
		cfg.TrunkLink = netsim.LinkConfig{LossProb: 0.02}
	}
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tb.CoreShardSwitches()); got != 4 {
		t.Fatalf("got %d core shard switches, want 4", got)
	}
	tb.Start()
	tb.ScheduleAttackWave(8*time.Second, 2*time.Second,
		tb.DefaultAttackWave(4*time.Second, 150))
	if err := tb.Run(25 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.Tracer().Evicted() != 0 {
		t.Fatalf("span ring evicted %d spans; grow TraceSpanCapacity", tb.Tracer().Evicted())
	}
	var pb, sb bytes.Buffer
	if err := telemetry.WritePrometheus(&pb, tb.Registry()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSpans(&sb, trace.CanonicalSpans(tb.Tracer().Spans())); err != nil {
		t.Fatal(err)
	}
	return tb.Summary(), pb.String(), sb.String()
}

// TestShardedCoreDeterminism is the core-fabric acceptance test: the same
// seeded campaign on a 4-shard core must produce byte-identical Summary
// output, Prometheus snapshots and canonical span files across
// Domains ∈ {1, 2, NumCPU}. Shard switches live in their own PDES domains
// under the partitioned engine, so this pins that frames relayed through
// the fabric (device scans, C2 traffic, flood convergence on the TServer)
// merge deterministically at the extra shard hops. Run under -race in CI.
func TestShardedCoreDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded determinism matrix is slow")
	}
	wantSummary, wantProm, wantSpans := shardedArtifacts(t, 1, 1, false)
	if !strings.Contains(wantSummary, "corefab      shards=4") {
		t.Fatalf("summary missing core-fabric section:\n%s", wantSummary)
	}
	if strings.Contains(wantSummary, "infected=0") {
		t.Fatalf("campaign conscripted nothing through the fabric:\n%s", wantSummary)
	}
	if wantSpans == "" {
		t.Fatal("serial baseline produced no trace spans")
	}
	cpus := runtime.NumCPU()
	if cpus < 4 {
		cpus = 4
	}
	for _, tc := range []struct{ domains, workers int }{
		{2, 0},
		{2, 1},
		{cpus, 0},
	} {
		summary, prom, spans := shardedArtifacts(t, tc.domains, tc.workers, false)
		if summary != wantSummary {
			t.Fatalf("domains=%d workers=%d: sharded Summary diverged\n--- serial ---\n%s--- parallel ---\n%s",
				tc.domains, tc.workers, wantSummary, summary)
		}
		if prom != wantProm {
			t.Fatalf("domains=%d workers=%d: sharded Prometheus snapshot diverged (%d vs %d bytes)",
				tc.domains, tc.workers, len(wantProm), len(prom))
		}
		if spans != wantSpans {
			t.Fatalf("domains=%d workers=%d: sharded canonical span output diverged (%d vs %d bytes)",
				tc.domains, tc.workers, len(wantSpans), len(spans))
		}
	}
}

// TestShardedCoreFaultedDeterminism layers the full chaos stack — churn,
// the five-kind fault plan, lossy access and trunk links — on the 4-shard
// fabric and demands the same byte-identity bar across domain counts.
func TestShardedCoreFaultedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded faulted determinism matrix is slow")
	}
	wantSummary, wantProm, wantSpans := shardedArtifacts(t, 1, 1, true)
	if !strings.Contains(wantSummary, "faults") {
		t.Fatalf("faulted baseline injected nothing:\n%s", wantSummary)
	}
	if wantSpans == "" {
		t.Fatal("faulted baseline produced no trace spans")
	}
	cpus := runtime.NumCPU()
	if cpus < 4 {
		cpus = 4
	}
	for _, domains := range []int{2, cpus} {
		summary, prom, spans := shardedArtifacts(t, domains, 0, true)
		if summary != wantSummary {
			t.Fatalf("domains=%d: faulted sharded Summary diverged\n--- serial ---\n%s--- parallel ---\n%s",
				domains, wantSummary, summary)
		}
		if prom != wantProm {
			t.Fatalf("domains=%d: faulted sharded Prometheus snapshot diverged", domains)
		}
		if spans != wantSpans {
			t.Fatalf("domains=%d: faulted sharded canonical span output diverged", domains)
		}
	}
}

// TestSerialBuildByteIdentity pins the parallel-construction contract: a
// campaign on a topology built with the per-group goroutine fan-out must
// be byte-identical to one built with Config.SerialBuild — same MACs,
// same link indices, same registration order, hence same Summary and
// Prometheus snapshot after identical traffic.
func TestSerialBuildByteIdentity(t *testing.T) {
	run := func(serial bool) (string, string) {
		tb, err := New(Config{
			Seed:         11,
			NumDevices:   16,
			DeviceGroups: 4,
			CoreShards:   2,
			MeanThink:    500 * time.Millisecond,
			Domains:      2,
			SerialBuild:  serial,
		})
		if err != nil {
			t.Fatal(err)
		}
		tb.Start()
		tb.ScheduleAttackWave(4*time.Second, time.Second,
			tb.DefaultAttackWave(2*time.Second, 100))
		if err := tb.Run(12 * time.Second); err != nil {
			t.Fatal(err)
		}
		var pb bytes.Buffer
		if err := telemetry.WritePrometheus(&pb, tb.Registry()); err != nil {
			t.Fatal(err)
		}
		return tb.Summary(), pb.String()
	}
	wantSummary, wantProm := run(true)
	gotSummary, gotProm := run(false)
	if gotSummary != wantSummary {
		t.Fatalf("parallel build diverged from serial build\n--- serial ---\n%s--- parallel ---\n%s",
			wantSummary, gotSummary)
	}
	if gotProm != wantProm {
		t.Fatalf("parallel build Prometheus snapshot diverged (%d vs %d bytes)",
			len(wantProm), len(gotProm))
	}
}

// TestCoreShardsDefaultUnsharded pins backward compatibility: CoreShards
// unset (or 1) must build the classic single-core-switch topology — no
// shard switches, no corefab summary section — and behave identically to
// an explicit CoreShards=1.
func TestCoreShardsDefaultUnsharded(t *testing.T) {
	run := func(shards int) (*Testbed, string) {
		tb, err := New(Config{
			Seed:         5,
			NumDevices:   8,
			DeviceGroups: 4,
			CoreShards:   shards,
			MeanThink:    500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		tb.Start()
		if err := tb.Run(8 * time.Second); err != nil {
			t.Fatal(err)
		}
		return tb, tb.Summary()
	}
	tbDefault, sumDefault := run(0)
	tbOne, sumOne := run(1)
	if len(tbDefault.CoreShardSwitches()) != 0 || len(tbOne.CoreShardSwitches()) != 0 {
		t.Fatal("unsharded configs must not build shard switches")
	}
	if strings.Contains(sumDefault, "corefab") {
		t.Fatalf("unsharded summary must not report a core fabric:\n%s", sumDefault)
	}
	if sumDefault != sumOne {
		t.Fatalf("CoreShards=0 and CoreShards=1 diverged\n--- 0 ---\n%s--- 1 ---\n%s",
			sumDefault, sumOne)
	}
}

// TestCoreShardsValidation pins the config surface: negative counts,
// sharding a flat topology, and more shards than groups are all rejected.
func TestCoreShardsValidation(t *testing.T) {
	if _, err := New(Config{Seed: 1, NumDevices: 4, CoreShards: -1}); err == nil {
		t.Fatal("negative CoreShards should be rejected")
	}
	if _, err := New(Config{Seed: 1, NumDevices: 4, CoreShards: 2}); err == nil {
		t.Fatal("CoreShards > 1 on a flat topology should be rejected")
	}
	if _, err := New(Config{Seed: 1, NumDevices: 8, DeviceGroups: 2, CoreShards: 3}); err == nil {
		t.Fatal("CoreShards > DeviceGroups should be rejected")
	}
	if _, err := New(Config{Seed: 1, NumDevices: 8, ScannableDevices: -1}); err == nil {
		t.Fatal("negative ScannableDevices should be rejected")
	}
}
