package packet

import (
	"encoding/binary"
	"fmt"
)

// EtherType identifies the payload protocol of an Ethernet II frame.
type EtherType uint16

// EtherTypes carried on the simulated network.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
)

// EthernetHeaderLen is the length of an Ethernet II header in bytes.
const EthernetHeaderLen = 14

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst  MAC
	Src  MAC
	Type EtherType
}

// Marshal appends the wire encoding of the header to b and returns the
// extended slice.
func (h *Ethernet) Marshal(b []byte) []byte {
	b = append(b, h.Dst[:]...)
	b = append(b, h.Src[:]...)
	return binary.BigEndian.AppendUint16(b, uint16(h.Type))
}

// UnmarshalEthernet decodes an Ethernet II header and returns it along with
// the remaining payload bytes.
func UnmarshalEthernet(b []byte) (Ethernet, []byte, error) {
	if len(b) < EthernetHeaderLen {
		return Ethernet{}, nil, fmt.Errorf("ethernet: frame too short (%d bytes)", len(b))
	}
	var h Ethernet
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.Type = EtherType(binary.BigEndian.Uint16(b[12:14]))
	return h, b[EthernetHeaderLen:], nil
}
