package httpapp

import (
	"testing"
	"time"

	"ddoshield/internal/netsim"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// pair builds a client host and a server host on one switch.
func pair(t *testing.T) (*sim.Scheduler, *netstack.Host, *netstack.Host) {
	t.Helper()
	s := sim.NewScheduler()
	net := netsim.New(s)
	sw := net.NewSwitch("sw")
	subnet := packet.MustParsePrefix("10.0.0.0/24")
	mk := func(i int) *netstack.Host {
		nic := net.NewNode("h").AddNIC()
		net.Connect(nic, sw.NewPort(), netsim.LinkConfig{})
		return netstack.NewHost(nic, netstack.HostConfig{
			Addr: subnet.Host(uint32(i)), Subnet: subnet, Seed: int64(i),
		})
	}
	return s, mk(1), mk(2)
}

func TestClientFetchesObjects(t *testing.T) {
	s, ch, sh := pair(t)
	srv := NewServer(ServerConfig{Seed: 1})
	if err := srv.Attach(sh); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(sh.Addr(), 0, 2*time.Second, 7)
	cl.Attach(ch)
	if err := s.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	fetches, completed, failed, bytesIn := cl.Stats()
	if fetches < 15 {
		t.Fatalf("fetches = %d, want ~30", fetches)
	}
	if completed < fetches*8/10 {
		t.Fatalf("completed = %d of %d", completed, fetches)
	}
	if failed > fetches/10 {
		t.Fatalf("failed = %d of %d", failed, fetches)
	}
	if bytesIn == 0 {
		t.Fatal("no body bytes received")
	}
	requests, bytesOut := srv.Stats()
	if requests == 0 || bytesOut == 0 {
		t.Fatalf("server stats: %d req / %d bytes", requests, bytesOut)
	}
	cl.Detach()
	srv.Detach()
}

func TestServerRejectsNonGET(t *testing.T) {
	s, ch, sh := pair(t)
	srv := NewServer(ServerConfig{Seed: 1})
	if err := srv.Attach(sh); err != nil {
		t.Fatal(err)
	}
	conn := ch.DialTCP(sh.Addr(), 80)
	var resp []byte
	conn.OnConnect = func() { conn.Send([]byte("POST / HTTP/1.1\r\n\r\n")) }
	conn.OnData = func(d []byte) { resp = append(resp, d...) }
	conn.OnRemoteClose = func() { conn.Close() }
	if err := s.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(resp) == 0 || string(resp[:12]) != "HTTP/1.1 400" {
		t.Fatalf("response = %q", resp)
	}
	requests, _ := srv.Stats()
	if requests != 0 {
		t.Fatal("bad request counted as served")
	}
}

func TestParseContentLength(t *testing.T) {
	h := "HTTP/1.1 200 OK\r\nServer: x\r\nContent-Length: 1234"
	if got := parseContentLength(h); got != 1234 {
		t.Fatalf("parseContentLength = %d", got)
	}
	if got := parseContentLength("HTTP/1.1 200 OK"); got != 0 {
		t.Fatalf("missing header -> %d", got)
	}
}

func TestResponseSizesHeavyTailed(t *testing.T) {
	s, ch, sh := pair(t)
	srv := NewServer(ServerConfig{MeanObjectBytes: 8 << 10, Seed: 5})
	if err := srv.Attach(sh); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(sh.Addr(), 0, 500*time.Millisecond, 9)
	cl.Attach(ch)
	if err := s.Run(120 * sim.Second); err != nil {
		t.Fatal(err)
	}
	_, completed, _, bytesIn := cl.Stats()
	if completed < 100 {
		t.Fatalf("completed = %d", completed)
	}
	mean := float64(bytesIn) / float64(completed)
	if mean < 1000 || mean > 100_000 {
		t.Fatalf("mean object size = %.0f bytes, implausible", mean)
	}
}
