// Conservative parallel discrete-event engine (PDES).
//
// The Engine partitions a simulation into K Domains, each owning a private
// Scheduler that advances on its own goroutine. Synchronization uses the
// classic conservative-lookahead rule executed as synchronous epochs: with T
// the global minimum next-event time and L the lookahead (the minimum
// latency of any cross-domain interaction), every event in [T, T+L) is
// causally independent of events outside its own domain, so all domains may
// execute that window in parallel. Cross-domain effects travel as
// timestamped messages that are buffered in per-domain outboxes during a
// window and merged at the barrier in a deterministic order — (time, sender
// domain index, per-domain sequence number) — so the interleaving of
// messages from different domains never depends on goroutine scheduling.
//
// Determinism: for a fixed domain count K the engine produces bit-identical
// results for any worker count, including the inline serial path, because
// each domain's events execute sequentially in (time, seq) order and the
// merge order is a pure function of message data. The worker count only
// decides which OS thread runs a window, never what the window computes.
package sim

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// maxLookahead bounds the lookahead so window arithmetic (T + lookahead)
// can never overflow Time.
const maxLookahead = Time(1) << 61

// message is one pooled cross-domain event notice. The (at, from, seq)
// triple is the deterministic merge key; fn runs on the receiving domain's
// scheduler at instant at.
type message struct {
	at   Time
	from int32  // sender domain index (merge tiebreak after time)
	seq  uint64 // sender-local sequence (merge tiebreak after sender)
	fn   Handler
}

// DomainStats is one domain's execution accounting, for telemetry.
type DomainStats struct {
	// Events is the total events the domain's scheduler has fired.
	Events uint64
	// BarrierWaits counts epoch barriers the domain participated in.
	BarrierWaits uint64
	// MsgsOut and MsgsIn count cross-domain messages sent and received.
	MsgsOut uint64
	MsgsIn  uint64
	// HorizonLag is the running maximum, across every window executed so
	// far, of how far the domain's clock trailed the epoch frontier at the
	// end of a window (idle domains lag the most). A last-window-only value
	// is useless post-run — the final window usually drains every queue —
	// so the max is what diagnosis wants.
	HorizonLag Time
}

// EngineProbe observes engine execution for the simulation profiler. All
// callbacks are invoked from the engine's coordinator goroutine (never from
// a domain worker), so implementations need no locking. The virtual-time
// arguments (window bounds, event counts, message counts) are deterministic
// for a fixed (topology, seed, Domains) configuration; the wall-clock
// nanosecond arguments are not and must never leak into deterministic
// artifacts.
type EngineProbe interface {
	// OnEpoch fires once per epoch, after the previous epoch's cross-domain
	// merge and before the epoch's windows run. start/end are the epoch
	// window bounds (end exclusive); mergeNs is the wall clock the merge
	// just consumed.
	OnEpoch(start, end Time, mergeNs int64)
	// OnCrossMessages fires during merge, once per non-empty (sender,
	// receiver) outbox: n messages from domain `from` are being delivered
	// into domain `to` this epoch.
	OnCrossMessages(from, to, n int)
	// OnDomainWindow fires once per domain per epoch, after the barrier:
	// the domain fired events events this window, spent execNs wall clock
	// executing them, and then waited waitNs at the barrier for the epoch's
	// slowest domain (0 on the serial path, which has no barrier).
	OnDomainWindow(domain int, events uint64, execNs, waitNs int64)
}

// Domain is one partition of the simulated world: a private scheduler plus
// the outboxes carrying its cross-domain sends. All objects assigned to a
// domain must schedule exclusively on its Scheduler; the only legal
// cross-domain interaction is Post.
type Domain struct {
	eng   *Engine
	idx   int
	sched *Scheduler

	out    [][]*message // out[t]: messages for domain t, appended this window
	free   []*message   // message pool (owner-only)
	msgSeq uint64

	// windowEnd is the exclusive end of the window the domain is currently
	// (or was last) allowed to execute; Post validates against it.
	windowEnd Time

	msgsOut uint64
	msgsIn  uint64
	waits   uint64
	maxLag  Time

	// Probe scratch, written by runWindow (or the timing wrapper around it)
	// and read by the coordinator after the barrier; the WaitGroup provides
	// the happens-before edge on the parallel path.
	lastEvents uint64
	lastExecNs int64
	doneAtNs   int64

	err error // window panic captured by the worker goroutine
}

// Index reports the domain's stable index in [0, K).
func (d *Domain) Index() int { return d.idx }

// Scheduler returns the domain's private scheduler.
func (d *Domain) Scheduler() *Scheduler { return d.sched }

// Stats returns a snapshot of the domain's execution counters.
func (d *Domain) Stats() DomainStats {
	return DomainStats{
		Events:       d.sched.Fired(),
		BarrierWaits: d.waits,
		MsgsOut:      d.msgsOut,
		MsgsIn:       d.msgsIn,
		HorizonLag:   d.maxLag,
	}
}

func (d *Domain) allocMsg() *message {
	if n := len(d.free); n > 0 {
		m := d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
		return m
	}
	return &message{}
}

// Post schedules fn at absolute instant at on domain to. It must be called
// from within one of d's executing events (or before the engine runs), and
// the target instant must respect the lookahead contract: at >= the end of
// d's current window. netsim guarantees this structurally — every
// cross-domain interaction traverses a link whose propagation delay is at
// least the engine lookahead — so a violation is a model bug and panics.
func (d *Domain) Post(to *Domain, at Time, fn Handler) {
	if to == d {
		d.sched.At(at, fn)
		return
	}
	if at < d.windowEnd {
		panic(fmt.Sprintf(
			"sim: cross-domain post from domain %d to %d at %v violates lookahead window end %v",
			d.idx, to.idx, at, d.windowEnd))
	}
	m := d.allocMsg()
	m.at = at
	m.from = int32(d.idx)
	m.seq = d.msgSeq
	m.fn = fn
	d.msgSeq++
	d.out[to.idx] = append(d.out[to.idx], m)
	d.msgsOut++
}

// runWindow executes every local event strictly before end. windowEnd is
// published first so Post can validate the lookahead contract while the
// window's events run.
func (d *Domain) runWindow(end Time) {
	d.windowEnd = end
	s := d.sched
	for len(s.queue) > 0 && s.queue[0].at < end {
		s.Step()
	}
	if lag := end - 1 - s.now; lag > d.maxLag {
		d.maxLag = lag
	}
	d.waits++
}

// runWindowTimed is runWindow plus the probe's wall-clock accounting:
// events fired, execute nanoseconds, and the instant the domain finished
// (the barrier-wait baseline). Only called when a probe is attached.
func (d *Domain) runWindowTimed(end Time) {
	fired := d.sched.Fired()
	start := time.Now()
	d.runWindow(end)
	d.lastExecNs = time.Since(start).Nanoseconds()
	d.lastEvents = d.sched.Fired() - fired
	d.doneAtNs = time.Now().UnixNano()
}

// Engine drives K domains through conservative epochs.
type Engine struct {
	domains   []*Domain
	lookahead Time
	epochs    uint64
	stopped   atomic.Bool
	probe     EngineProbe // nil unless a profiler is attached

	inbox []*message // merge scratch, reused across epochs
}

// NewEngine builds an engine with k domains (k >= 1) and the given
// lookahead. A lookahead of 0 is allowed at construction (topology builders
// derive it from link delays afterwards) but must be set before Run.
func NewEngine(k int, lookahead Time) *Engine {
	if k < 1 {
		k = 1
	}
	e := &Engine{}
	e.SetLookahead(lookahead)
	e.domains = make([]*Domain, k)
	for i := range e.domains {
		d := &Domain{eng: e, idx: i, sched: NewScheduler(), out: make([][]*message, k)}
		e.domains[i] = d
	}
	return e
}

// NumDomains reports K.
func (e *Engine) NumDomains() int { return len(e.domains) }

// Domain returns the i-th domain.
func (e *Engine) Domain(i int) *Domain { return e.domains[i] }

// Lookahead reports the configured lookahead.
func (e *Engine) Lookahead() Time { return e.lookahead }

// SetLookahead sets the conservative window width: the minimum simulated
// delay of any cross-domain interaction. Call before Run.
func (e *Engine) SetLookahead(t Time) {
	if t > maxLookahead {
		t = maxLookahead
	}
	e.lookahead = t
}

// Epochs reports how many barrier epochs Run has executed so far.
func (e *Engine) Epochs() uint64 { return e.epochs }

// SetProbe attaches (or, with nil, detaches) an execution probe. Call
// before Run; a nil probe keeps every hot path exactly as it was (no
// timestamping, no callbacks).
func (e *Engine) SetProbe(p EngineProbe) { e.probe = p }

// Probe reports the attached probe (nil when none).
func (e *Engine) Probe() EngineProbe { return e.probe }

// Stop halts a running engine at the next barrier. Safe to call from any
// goroutine (e.g. a domain event deciding to end the run).
func (e *Engine) Stop() { e.stopped.Store(true) }

// Now reports the reference clock: domain 0's current time. Between Run
// calls every domain clock agrees (all are advanced to the horizon).
func (e *Engine) Now() Time { return e.domains[0].sched.Now() }

// mergeOutboxes drains every domain's outboxes into the receivers' queues.
// For each receiving domain the pending messages are ordered by (time,
// sender domain index, sender sequence) before insertion, so the receiver's
// scheduler sees one deterministic arrival order regardless of which worker
// ran which window when. Messages recycle to their sender's pool — safe
// here because merging happens only between epochs, when no domain runs.
func (e *Engine) mergeOutboxes() {
	for ti, target := range e.domains {
		pending := e.inbox[:0]
		for _, d := range e.domains {
			if box := d.out[ti]; len(box) > 0 {
				if e.probe != nil {
					e.probe.OnCrossMessages(d.idx, ti, len(box))
				}
				pending = append(pending, box...)
				d.out[ti] = box[:0]
			}
		}
		if len(pending) == 0 {
			continue
		}
		slices.SortFunc(pending, func(a, b *message) int {
			switch {
			case a.at < b.at:
				return -1
			case a.at > b.at:
				return 1
			case a.from != b.from:
				return int(a.from) - int(b.from)
			case a.seq < b.seq:
				return -1
			default:
				return 1
			}
		})
		for i, m := range pending {
			target.sched.At(m.at, m.fn)
			m.fn = nil
			e.domains[m.from].free = append(e.domains[m.from].free, m)
			pending[i] = nil
		}
		target.msgsIn += uint64(len(pending))
		e.inbox = pending[:0]
	}
}

// minNextEvent reports the earliest pending event time across all domains.
func (e *Engine) minNextEvent() (Time, bool) {
	var min Time
	ok := false
	for _, d := range e.domains {
		if len(d.sched.queue) == 0 {
			continue
		}
		if at := d.sched.queue[0].at; !ok || at < min {
			min = at
			ok = true
		}
	}
	return min, ok
}

// Run executes events until every domain's clock passes horizon (events at
// exactly the horizon still fire), the queues drain, or Stop is called.
// workers bounds concurrent window execution: <= 1 runs every window inline
// on the caller's goroutine (the engine-overhead baseline), larger values
// use one goroutine per domain gated by a worker semaphore. The results are
// identical for every workers value; only wall-clock time differs.
func (e *Engine) Run(horizon Time, workers int) error {
	if e.lookahead <= 0 {
		return errors.New("sim: engine lookahead must be positive (derive it from cross-domain link delays)")
	}
	if workers > len(e.domains) {
		workers = len(e.domains)
	}
	e.stopped.Store(false)
	if workers > 1 {
		// The goroutine plumbing lives in its own frame so the serial path
		// (and the steady-state fast path it guards) stays allocation-free.
		if err := e.runParallel(horizon, workers); err != nil {
			return err
		}
	} else {
		for {
			if e.stopped.Load() {
				return ErrStopped
			}
			w, ok := e.stepEpochHeader(horizon)
			if !ok {
				break
			}
			if e.probe != nil {
				for _, d := range e.domains {
					d.runWindowTimed(w)
				}
				for _, d := range e.domains {
					e.probe.OnDomainWindow(d.idx, d.lastEvents, d.lastExecNs, 0)
				}
			} else {
				for _, d := range e.domains {
					d.runWindow(w)
				}
			}
			e.epochs++
		}
	}
	for _, d := range e.domains {
		if d.sched.now < horizon {
			d.sched.now = horizon
		}
	}
	return nil
}

// nextWindow merges nothing; it derives the epoch window from the earliest
// pending event and the lookahead: start is that event's time, end
// (exclusive) is capped at horizon+1 so events at exactly the horizon still
// fire. ok is false when no event at or before the horizon remains.
func (e *Engine) nextWindow(horizon Time) (start, end Time, ok bool) {
	t, ok := e.minNextEvent()
	if !ok || t > horizon {
		return 0, 0, false
	}
	w := horizon + 1
	if e.lookahead < w-t {
		w = t + e.lookahead
	}
	return t, w, true
}

// stepEpochHeader runs the between-windows part of one epoch: merge the
// previous epoch's outboxes and derive the next window. With a probe
// attached the merge is timed and the probe's OnEpoch fires with the
// window bounds. Shared by the serial and parallel epoch loops.
func (e *Engine) stepEpochHeader(horizon Time) (Time, bool) {
	var mergeNs int64
	if e.probe != nil {
		start := time.Now()
		e.mergeOutboxes()
		mergeNs = time.Since(start).Nanoseconds()
	} else {
		e.mergeOutboxes()
	}
	t, w, ok := e.nextWindow(horizon)
	if !ok {
		return 0, false
	}
	if e.probe != nil {
		e.probe.OnEpoch(t, w, mergeNs)
	}
	return w, true
}

// runParallel is the epoch loop with one persistent goroutine per domain,
// gated by a semaphore of `workers` execution slots. Worker panics (model
// bugs like cross-domain scheduling) are captured and surfaced as errors
// after the barrier.
func (e *Engine) runParallel(horizon Time, workers int) error {
	k := len(e.domains)
	var wg sync.WaitGroup
	windowCh := make([]chan Time, k)
	done := make(chan struct{})
	defer close(done)
	sem := make(chan struct{}, workers)
	probed := e.probe != nil
	for i := range e.domains {
		windowCh[i] = make(chan Time, 1)
		go func(d *Domain, win <-chan Time) {
			for {
				select {
				case <-done:
					return
				case w := <-win:
					sem <- struct{}{}
					func() {
						defer func() {
							if r := recover(); r != nil {
								d.err = fmt.Errorf("sim: domain %d window panic: %v", d.idx, r)
							}
						}()
						if probed {
							d.runWindowTimed(w)
						} else {
							d.runWindow(w)
						}
					}()
					<-sem
					wg.Done()
				}
			}
		}(e.domains[i], windowCh[i])
	}
	for {
		if e.stopped.Load() {
			return ErrStopped
		}
		w, ok := e.stepEpochHeader(horizon)
		if !ok {
			return nil
		}
		wg.Add(k)
		for i := range windowCh {
			windowCh[i] <- w
		}
		wg.Wait()
		if probed {
			// Barrier accounting: each domain's wait is the gap between
			// finishing its window and the barrier releasing (now). The
			// slowest domain — the straggler — waits ~0.
			barrier := time.Now().UnixNano()
			for _, d := range e.domains {
				waitNs := barrier - d.doneAtNs
				if waitNs < 0 {
					waitNs = 0
				}
				e.probe.OnDomainWindow(d.idx, d.lastEvents, d.lastExecNs, waitNs)
			}
		}
		for _, d := range e.domains {
			if d.err != nil {
				err := d.err
				d.err = nil
				return err
			}
		}
		e.epochs++
	}
}

// RunFor executes events for d of simulated time past the reference clock.
func (e *Engine) RunFor(dur Time, workers int) error {
	return e.Run(e.Now()+dur, workers)
}
