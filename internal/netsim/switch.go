package netsim

import (
	"strconv"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/trace"
)

// Switch is a learning Ethernet switch: the CSMA segment that joins the
// testbed's containers in the paper's topology. It floods unknown and
// broadcast destinations and learns source MACs per port.
type Switch struct {
	net     *Network
	name    string
	ports   []*switchPort
	table   map[packet.MAC]*switchPort
	taps    []Tap
	ctxTaps []TapCtx
	dom     *sim.Domain // nil in serial networks
	sched   *sim.Scheduler

	// Shared telemetry counters; Stats()/PartitionDrops() are adapters.
	forwarded      telemetry.Counter
	flooded        telemetry.Counter
	partitionDrops telemetry.Counter
}

// NewSwitch adds a named learning switch to the network (domain 0).
func (n *Network) NewSwitch(name string) *Switch {
	return n.NewSwitchInDomain(name, 0)
}

// NewSwitchInDomain adds a named learning switch assigned to the given
// PDES domain. On a serial network the domain index is ignored.
func (n *Network) NewSwitchInDomain(name string, domain int) *Switch {
	s := &Switch{net: n, name: name, table: make(map[packet.MAC]*switchPort)}
	s.dom, s.sched = n.domainFor(domain)
	n.switches = append(n.switches, s)
	n.registerSwitch(s)
	return s
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// Scheduler is the event queue the switch relays frames on (its domain
// scheduler in a partitioned network, the global one otherwise).
func (s *Switch) Scheduler() *sim.Scheduler { return s.sched }

// Domain reports the switch's PDES domain (nil in serial networks).
func (s *Switch) Domain() *sim.Domain { return s.dom }

// NewPort adds a port to the switch; wire it with Network.Connect.
func (s *Switch) NewPort() Port {
	p := &switchPort{sw: s, index: len(s.ports)}
	p.name = s.name + "/port" + strconv.Itoa(p.index)
	s.ports = append(s.ports, p)
	return p
}

// AddTap registers a passive observer invoked for every frame the switch
// relays (once per ingress frame, regardless of fan-out). Tapping the switch
// is the testbed's span-port analog: the IDS sees all segment traffic.
func (s *Switch) AddTap(t Tap) { s.taps = append(s.taps, t) }

// AddTapCtx registers a trace-context-aware span-port observer (the IDS
// attaches here to join sampled packets' causal chains).
func (s *Switch) AddTapCtx(t TapCtx) { s.ctxTaps = append(s.ctxTaps, t) }

// Stats reports frames forwarded to a learned port and frames flooded.
func (s *Switch) Stats() (forwarded, flooded uint64) {
	return s.forwarded.Value(), s.flooded.Value()
}

// Forget clears the MAC learning table (e.g. after heavy churn).
func (s *Switch) Forget() { s.table = make(map[packet.MAC]*switchPort) }

// Learn pre-seeds the MAC table, binding mac to p exactly as if a frame
// from mac had already arrived on that port. Fleet-scale topologies prime
// their switches (alongside static ARP, see testbed.Config.PrimeARP) so
// first-contact unicast forwards instead of flooding the whole segment.
// Later dynamic learning overwrites the entry as usual. Returns false
// when p is not a port of this switch.
func (s *Switch) Learn(mac packet.MAC, p Port) bool {
	sp, ok := p.(*switchPort)
	if !ok || sp.sw != s {
		return false
	}
	s.table[mac] = sp
	return true
}

// SetGroup assigns a port to a partition group. Ports only exchange frames
// within their group; frames crossing a group boundary are silently
// discarded (and counted), modeling a switch-level network partition. All
// ports start in group 0. Returns false when p is not a port of this switch.
func (s *Switch) SetGroup(p Port, group int) bool {
	sp, ok := p.(*switchPort)
	if !ok || sp.sw != s {
		return false
	}
	sp.group = group
	return true
}

// GroupOf reports a port's partition group (0 for foreign ports).
func (s *Switch) GroupOf(p Port) int {
	if sp, ok := p.(*switchPort); ok && sp.sw == s {
		return sp.group
	}
	return 0
}

// ClearGroups heals all partitions, returning every port to group 0.
func (s *Switch) ClearGroups() {
	for _, p := range s.ports {
		p.group = 0
	}
}

// PartitionDrops reports frames discarded at a partition boundary.
func (s *Switch) PartitionDrops() uint64 { return s.partitionDrops.Value() }

type switchPort struct {
	sw    *Switch
	index int
	name  string // "switch/portN", precomputed
	link  *Link
	side  int
	group int
}

var _ Port = (*switchPort)(nil)

func (p *switchPort) String() string { return p.name }

func (p *switchPort) scheduler() *sim.Scheduler { return p.sw.sched }
func (p *switchPort) domain() *sim.Domain       { return p.sw.dom }

func (p *switchPort) send(raw []byte, tc trace.Context) {
	if p.link != nil {
		p.link.send(p.side, raw, tc)
	}
}

func (p *switchPort) receive(raw []byte, tc trace.Context) {
	s := p.sw
	now := s.sched.Now()
	eth, _, err := packet.UnmarshalEthernet(raw)
	if err != nil {
		tc.Start(now, "switch", p.name).Drop(now, trace.DropMalformed)
		return // runt frame: discard
	}
	span := tc.Start(now, "switch", p.name)
	for _, tap := range s.taps {
		tap(now, raw)
	}
	for _, tap := range s.ctxTaps {
		tap(now, raw, span)
	}
	if !eth.Src.IsBroadcast() {
		s.table[eth.Src] = p
	}
	if !eth.Dst.IsBroadcast() {
		if out, ok := s.table[eth.Dst]; ok {
			if out != p {
				if out.group != p.group {
					s.partitionDrops.Inc()
					s.net.emit(now, telemetry.CatNet, "partition-drop", p.name, int64(len(raw)))
					span.Drop(now, trace.DropPartition)
					return
				}
				s.forwarded.Inc()
				span.Finish(now)
				out.send(raw, span)
				return
			}
			// Destination hangs off the ingress port: nothing to relay.
			span.FinishTag(now, "same-port")
			return
		}
	}
	// Broadcast or unknown unicast: flood all other ports in the group.
	s.flooded.Inc()
	span.Finish(now)
	for _, out := range s.ports {
		if out != p && out.group == p.group {
			out.send(raw, span)
		}
	}
}

// TapAll attaches the tap to every frame relayed by the switch plus every
// frame delivered on the given extra links. Convenience for experiments.
func TapAll(tap Tap, s *Switch, links ...*Link) {
	if s != nil {
		s.AddTap(tap)
	}
	for _, l := range links {
		l.AddTap(tap)
	}
}

// DecodeTap wraps a packet-level observer as a raw Tap, dropping frames
// that fail Ethernet dissection.
func DecodeTap(fn func(p *packet.Packet)) Tap {
	return func(t sim.Time, raw []byte) {
		p, err := packet.Decode(t, raw)
		if err != nil {
			return
		}
		fn(p)
	}
}
