// Package modelio persists trained models, playing the role of the PKL
// files in §IV-D: after offline training the models are serialized, and
// the real-time IDS loads them back for detection. The on-disk size of
// these files is the "Model Size" column of Table II.
package modelio

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ddoshield/internal/dataset"
	"ddoshield/internal/ml"
	"ddoshield/internal/ml/cnn"
	"ddoshield/internal/ml/forest"
	"ddoshield/internal/ml/iforest"
	"ddoshield/internal/ml/kmeans"
	"ddoshield/internal/ml/svm"
	"ddoshield/internal/ml/vae"
)

// envelope tags the concrete model type on the wire.
type envelope struct {
	Kind string
}

// Save serializes a trained classifier.
func Save(w io.Writer, c ml.Classifier) error {
	enc := gob.NewEncoder(w)
	return save(enc, c)
}

func save(enc *gob.Encoder, c ml.Classifier) error {
	if v, ok := c.(ml.OffsetView); ok {
		if err := enc.Encode(envelope{Kind: "offset"}); err != nil {
			return fmt.Errorf("modelio: encode envelope: %w", err)
		}
		if err := enc.Encode(v.Offset); err != nil {
			return fmt.Errorf("modelio: encode offset: %w", err)
		}
		return save(enc, v.Inner)
	}
	if err := enc.Encode(envelope{Kind: c.Name()}); err != nil {
		return fmt.Errorf("modelio: encode envelope: %w", err)
	}
	var err error
	switch m := c.(type) {
	case *forest.Forest:
		err = enc.Encode(m)
	case *kmeans.Model:
		err = enc.Encode(m)
	case *cnn.Network:
		err = enc.Encode(m)
	case *svm.Model:
		err = enc.Encode(m)
	case *iforest.Model:
		err = enc.Encode(m)
	case *vae.Model:
		err = enc.Encode(m)
	default:
		return fmt.Errorf("modelio: unsupported model %q", c.Name())
	}
	if err != nil {
		return fmt.Errorf("modelio: encode %s: %w", c.Name(), err)
	}
	return nil
}

// Load deserializes a classifier written by Save.
func Load(r io.Reader) (ml.Classifier, error) {
	return load(gob.NewDecoder(r))
}

func load(dec *gob.Decoder) (ml.Classifier, error) {
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("modelio: decode envelope: %w", err)
	}
	switch env.Kind {
	case "offset":
		var off int
		if err := dec.Decode(&off); err != nil {
			return nil, fmt.Errorf("modelio: decode offset: %w", err)
		}
		inner, err := load(dec)
		if err != nil {
			return nil, err
		}
		return ml.OffsetView{Inner: inner, Offset: off}, nil
	case "rf":
		var m forest.Forest
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("modelio: decode rf: %w", err)
		}
		return &m, nil
	case "kmeans":
		var m kmeans.Model
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("modelio: decode kmeans: %w", err)
		}
		return &m, nil
	case "cnn":
		var m cnn.Network
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("modelio: decode cnn: %w", err)
		}
		m.Rebind()
		return &m, nil
	case "svm":
		var m svm.Model
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("modelio: decode svm: %w", err)
		}
		return &m, nil
	case "iforest":
		var m iforest.Model
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("modelio: decode iforest: %w", err)
		}
		return &m, nil
	case "vae":
		var m vae.Model
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("modelio: decode vae: %w", err)
		}
		return &m, nil
	}
	return nil, fmt.Errorf("modelio: unknown model kind %q", env.Kind)
}

// Bundle pairs a classifier with the feature scaler it was trained behind
// (nil for scale-invariant models): everything the Real-Time IDS Unit
// needs to score live traffic.
type Bundle struct {
	Model  ml.Classifier
	Scaler *dataset.StandardScaler
}

// SaveBundle serializes a detection bundle.
func SaveBundle(w io.Writer, b Bundle) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(envelope{Kind: "bundle"}); err != nil {
		return fmt.Errorf("modelio: encode envelope: %w", err)
	}
	hasScaler := b.Scaler != nil
	if err := enc.Encode(hasScaler); err != nil {
		return fmt.Errorf("modelio: encode scaler flag: %w", err)
	}
	if hasScaler {
		if err := enc.Encode(b.Scaler); err != nil {
			return fmt.Errorf("modelio: encode scaler: %w", err)
		}
	}
	return save(enc, b.Model)
}

// LoadBundle deserializes a detection bundle written by SaveBundle.
func LoadBundle(r io.Reader) (Bundle, error) {
	dec := gob.NewDecoder(r)
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return Bundle{}, fmt.Errorf("modelio: decode envelope: %w", err)
	}
	if env.Kind != "bundle" {
		return Bundle{}, fmt.Errorf("modelio: not a bundle (kind %q)", env.Kind)
	}
	var hasScaler bool
	if err := dec.Decode(&hasScaler); err != nil {
		return Bundle{}, fmt.Errorf("modelio: decode scaler flag: %w", err)
	}
	var b Bundle
	if hasScaler {
		b.Scaler = &dataset.StandardScaler{}
		if err := dec.Decode(b.Scaler); err != nil {
			return Bundle{}, fmt.Errorf("modelio: decode scaler: %w", err)
		}
	}
	m, err := load(dec)
	if err != nil {
		return Bundle{}, err
	}
	b.Model = m
	return b, nil
}

// SaveBundleFile writes a bundle to path.
func SaveBundleFile(path string, b Bundle) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	if err := SaveBundle(f, b); err != nil {
		return err
	}
	return f.Close()
}

// LoadBundleFile reads a bundle from path.
func LoadBundleFile(path string) (Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return Bundle{}, fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	return LoadBundle(f)
}

// SaveFile writes the model to path.
func SaveFile(path string, c ml.Classifier) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	if err := Save(f, c); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (ml.Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// countingWriter tallies bytes without storing them.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// SizeBytes reports the serialized model size — Table II's "Model Size"
// without touching the filesystem.
func SizeBytes(c ml.Classifier) (int64, error) {
	var cw countingWriter
	if err := Save(&cw, c); err != nil {
		return 0, err
	}
	return cw.n, nil
}
