package mitigation

import (
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
)

// Verdict is the cached per-flow decision the ingress hot path acts on.
type Verdict uint8

// Verdicts.
const (
	// VerdictAllow passes the frame to the host stack.
	VerdictAllow Verdict = iota
	// VerdictDrop discards the frame.
	VerdictDrop
	// VerdictRateLimit passes one frame in every keep, drops the rest.
	VerdictRateLimit
)

var verdictNames = [3]string{"allow", "drop", "rate-limit"}

// String renders the verdict label used in metrics and the scoreboard.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "unknown"
}

// flowKey is the 5-tuple the verdict cache is keyed by, packed for
// compare-by-value probing. Addresses are big-endian uint32s (the
// trace.Flow form); ports pack as srcPort<<16 | dstPort.
type flowKey struct {
	src, dst uint32
	ports    uint32
	proto    uint8
}

// entry is one verdict-cache slot. keep/count implement rate limiting
// (pass when count%keep == 1); rev ties the cached decision to the rule
// revision it was computed under, so any rule change invalidates every
// memoized verdict at once without touching the table.
type entry struct {
	key       flowKey
	verdict   Verdict
	live      bool
	rule      uint8 // ruleNone/ruleAddr/rulePrefix/ruleFlow attribution
	keep      uint32
	count     uint32
	rev       uint32
	installed sim.Time
	expiry    sim.Time
}

// probeWindow bounds the linear probe: a lookup or insert inspects at most
// this many slots, so the hot path is O(1) with a hard constant.
const probeWindow = 8

// cacheAgeBounds buckets evicted/expired entry lifetimes in microseconds
// (10 ms .. 120 s). Ages are whole simulated-time integers, so histogram
// sums stay exactly reproducible.
var cacheAgeBounds = []float64{1e4, 1e5, 5e5, 1e6, 5e6, 1e7, 3e7, 6e7, 1.2e8}

// verdictCache is a fixed-size, allocation-free open-addressing table of
// per-flow verdicts consulted on the NIC ingress hot path. All mutation
// happens on the owning domain's scheduler (packet arrivals and the
// deterministic sweep both run there), so partitioned campaigns replay
// byte-identically.
type verdictCache struct {
	entries []entry
	mask    uint32

	hits, misses       telemetry.Counter
	inserts, evictions telemetry.Counter
	expirations        telemetry.Counter
	age                *telemetry.Histogram
}

// newVerdictCache sizes the table to the next power of two >= capacity.
// The age histogram is supplied by the owner so a registry-exported
// instance and the cache observe through the same object.
func newVerdictCache(capacity int, age *telemetry.Histogram) *verdictCache {
	if capacity < probeWindow {
		capacity = probeWindow
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &verdictCache{
		entries: make([]entry, size),
		mask:    uint32(size - 1),
		age:     age,
	}
}

// hash mixes the 5-tuple with a splitmix64-style finalizer; the low bits
// index the table.
func (vc *verdictCache) hash(k flowKey) uint32 {
	x := uint64(k.src)<<32 | uint64(k.dst)
	x ^= uint64(k.ports)<<8 | uint64(k.proto)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x)
}

// retire frees a slot, attributing the entry's lifetime to the age
// histogram and the given counter (expirations or evictions).
func (vc *verdictCache) retire(e *entry, now sim.Time, cause *telemetry.Counter) {
	e.live = false
	cause.Inc()
	vc.age.Observe(float64((now - e.installed) / sim.Microsecond))
}

// lookup returns the live entry for k under rule revision rev, or nil on a
// miss. Expired and stale-revision entries found on the probe path are
// retired in place (lazy aging; the sweep catches the rest).
func (vc *verdictCache) lookup(k flowKey, now sim.Time, rev uint32) *entry {
	idx := vc.hash(k)
	for i := uint32(0); i < probeWindow; i++ {
		e := &vc.entries[(idx+i)&vc.mask]
		if !e.live || e.key != k {
			continue
		}
		if e.expiry <= now || e.rev != rev {
			vc.retire(e, now, &vc.expirations)
			break
		}
		vc.hits.Inc()
		return e
	}
	vc.misses.Inc()
	return nil
}

// insert stores a verdict for k, reusing the key's slot, then any dead
// slot in the probe window, then deterministically evicting the
// earliest-expiring entry. Always succeeds; returns the written entry.
func (vc *verdictCache) insert(k flowKey, v Verdict, keep uint32, rev uint32, now, expiry sim.Time) *entry {
	idx := vc.hash(k)
	var victim *entry
	for i := uint32(0); i < probeWindow; i++ {
		e := &vc.entries[(idx+i)&vc.mask]
		if e.live && e.key == k {
			victim = e
			break
		}
		if !e.live {
			if victim == nil || victim.live {
				victim = e
			}
			continue
		}
		if e.expiry <= now {
			vc.retire(e, now, &vc.expirations)
			if victim == nil || victim.live {
				victim = e
			}
			continue
		}
		if victim == nil || (victim.live && e.expiry < victim.expiry) {
			victim = e
		}
	}
	if victim.live && victim.key != k {
		vc.retire(victim, now, &vc.evictions)
	}
	vc.inserts.Inc()
	*victim = entry{key: k, verdict: v, live: true, keep: keep, rev: rev, installed: now, expiry: expiry}
	return victim
}

// sweep retires every expired or stale-revision entry — the deterministic
// aging pass the owning scheduler runs on a fixed simulated-time cadence.
func (vc *verdictCache) sweep(now sim.Time, rev uint32) {
	for i := range vc.entries {
		e := &vc.entries[i]
		if e.live && (e.expiry <= now || e.rev != rev) {
			vc.retire(e, now, &vc.expirations)
		}
	}
}

// size counts entries still live at now under revision rev.
func (vc *verdictCache) size(now sim.Time, rev uint32) int {
	n := 0
	for i := range vc.entries {
		e := &vc.entries[i]
		if e.live && e.expiry > now && e.rev == rev {
			n++
		}
	}
	return n
}

// CacheStats is a point-in-time snapshot of the verdict cache's counters,
// the scoreboard's cache panel.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Inserts   uint64 `json:"inserts"`
	Evictions uint64 `json:"evictions"`
	Expired   uint64 `json:"expired"`
}
