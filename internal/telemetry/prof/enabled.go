//go:build !prof_off

package prof

// Enabled reports whether the profiler is compiled in. Attach sites guard
// on it (`if cfg.Profile && prof.Enabled { ... }`), so building with
// -tags prof_off folds the constant to false and dead-code-eliminates the
// profiler construction, the engine probe attach and every phase timer.
const Enabled = true
