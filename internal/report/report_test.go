package report

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSparklineShape(t *testing.T) {
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0, 7)
	if got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("sparkline = %q", got)
	}
}

func TestSparklineAutoScale(t *testing.T) {
	got := Sparkline([]float64{10, 20, 10}, 0, 0)
	if utf8.RuneCountInString(got) != 3 {
		t.Fatalf("length = %q", got)
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[1] != '█' {
		t.Fatalf("auto-scaled = %q", got)
	}
}

func TestSparklineConstantSeries(t *testing.T) {
	got := Sparkline([]float64{5, 5, 5}, 0, 0)
	if utf8.RuneCountInString(got) != 3 {
		t.Fatalf("constant series = %q", got)
	}
}

func TestSparklineEmpty(t *testing.T) {
	if Sparkline(nil, 0, 1) != "" {
		t.Fatal("empty series should render empty")
	}
}

func TestSparklineClamping(t *testing.T) {
	got := []rune(Sparkline([]float64{-100, 100}, 0, 1))
	if got[0] != '▁' || got[1] != '█' {
		t.Fatalf("clamping = %q", string(got))
	}
}

func TestDownsample(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	out := Downsample(vals, 10)
	if len(out) != 10 {
		t.Fatalf("length = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatal("downsampled means not increasing on a ramp")
		}
	}
	// No-op cases.
	if got := Downsample(vals[:5], 10); len(got) != 5 {
		t.Fatalf("short series resized: %d", len(got))
	}
}

// Property: downsampling preserves the value range envelope.
func TestDownsampleBoundsProperty(t *testing.T) {
	f := func(raw []float64, w uint8) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v == v && v > -1e12 && v < 1e12 { // finite, bounded
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		width := int(w%32) + 1
		out := Downsample(vals, width)
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for _, v := range out {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBar(t *testing.T) {
	got := Bar("rf", 50, 100, 10)
	if !strings.Contains(got, "█████·····") {
		t.Fatalf("bar = %q", got)
	}
	if !strings.Contains(got, "50.00") {
		t.Fatalf("bar value missing: %q", got)
	}
	// Zero max: no fill, no panic.
	if got := Bar("x", 5, 0, 10); !strings.Contains(got, "··········") {
		t.Fatalf("zero-max bar = %q", got)
	}
}

func TestBarChart(t *testing.T) {
	got := BarChart([]string{"a", "b"}, []float64{1, 2}, 8)
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 2 {
		t.Fatalf("chart = %q", got)
	}
	if !strings.Contains(lines[1], "████████") {
		t.Fatalf("max bar not full: %q", lines[1])
	}
}

func TestTableAlignment(t *testing.T) {
	got := Table([]string{"a", "long"}, [][]string{{"xx", "y"}, {"z", "wwwww"}})
	want := "a  | long \n" +
		"---+------\n" +
		"xx | y    \n" +
		"z  | wwwww\n"
	if got != want {
		t.Fatalf("table:\n%q\nwant:\n%q", got, want)
	}
}

func TestTableRaggedRows(t *testing.T) {
	got := Table([]string{"k", "v"}, [][]string{{"only-key"}})
	if !strings.Contains(got, "only-key | ") {
		t.Fatalf("ragged row mis-rendered: %q", got)
	}
}

func TestCounters(t *testing.T) {
	if got := Counters([]string{"crash", "flap"}, []uint64{2, 1}); got != "crash=2 flap=1" {
		t.Fatalf("Counters = %q", got)
	}
	if got := Counters(nil, nil); got != "" {
		t.Fatalf("empty Counters = %q", got)
	}
}
