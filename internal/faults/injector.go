package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ddoshield/internal/container"
	"ddoshield/internal/netsim"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
)

// Target is one fault-injectable endpoint: a container and/or its uplink.
type Target struct {
	Name      string
	Container *container.Container
	Link      *netsim.Link
}

// Injector applies fault plans to registered targets on the simulation
// scheduler. All state changes happen inside scheduled events, so two
// injectors built from the same seed over the same topology replay the
// same fault sequence.
type Injector struct {
	sched    *sim.Scheduler
	seed     int64
	sw       *netsim.Switch
	targets  []Target
	byName   map[string]int
	counters map[Kind]uint64
	rec      *telemetry.Recorder
}

// NewInjector builds an injector. sw may be nil when partitions are unused.
func NewInjector(sched *sim.Scheduler, seed int64, sw *netsim.Switch) *Injector {
	return &Injector{
		sched:    sched,
		seed:     seed,
		sw:       sw,
		byName:   make(map[string]int),
		counters: make(map[Kind]uint64),
	}
}

// Register adds a named target. Registration order fixes the resolution
// order of globbed target lists, so register in a deterministic order.
func (in *Injector) Register(tg Target) {
	if _, dup := in.byName[tg.Name]; dup {
		return
	}
	in.byName[tg.Name] = len(in.targets)
	in.targets = append(in.targets, tg)
}

// RegisterContainer is Register sugar for a container and its uplink.
func (in *Injector) RegisterContainer(c *container.Container) {
	in.Register(Target{Name: c.Name(), Container: c, Link: c.Link()})
}

// Targets lists registered targets in registration order.
func (in *Injector) Targets() []Target {
	out := make([]Target, len(in.targets))
	copy(out, in.targets)
	return out
}

// resolve expands a name list (exact, trailing-* glob, or empty for all)
// into targets, in registration order, without duplicates.
func (in *Injector) resolve(names []string) []Target {
	if len(names) == 0 {
		return in.Targets()
	}
	picked := make([]bool, len(in.targets))
	for _, name := range names {
		if prefix, ok := strings.CutSuffix(name, "*"); ok {
			for i := range in.targets {
				if strings.HasPrefix(in.targets[i].Name, prefix) {
					picked[i] = true
				}
			}
			continue
		}
		if i, ok := in.byName[name]; ok {
			picked[i] = true
		}
	}
	var out []Target
	for i, p := range picked {
		if p {
			out = append(out, in.targets[i])
		}
	}
	return out
}

// Schedule arms every event of the plan relative to the current simulated
// instant. It may be called before the testbed starts (events in the past
// clamp to now) and more than once (plans compose).
func (in *Injector) Schedule(p Plan) {
	now := in.sched.Now()
	for _, e := range p.Events {
		e := e
		in.sched.At(now.Add(e.At), func() { in.apply(e) })
	}
}

// apply executes one event at its injection instant.
func (in *Injector) apply(e Event) {
	switch e.Kind {
	case LinkFlap:
		in.applyLinkFlap(e)
	case LinkImpair:
		in.applyLinkImpair(e)
	case Partition:
		in.applyPartition(e)
	case Crash:
		for _, tg := range in.resolve(e.Targets) {
			in.kill(tg)
		}
	case CrashLoop:
		in.applyCrashLoop(e)
	}
}

// SetTelemetry exposes the per-kind injection counters as registry metrics
// (faults_injections_total{kind=...}, evaluated at export time) and routes
// a trace event per injection into the flight recorder. Either argument
// may be nil.
func (in *Injector) SetTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder) {
	in.rec = rec
	for _, k := range Kinds() {
		k := k
		reg.RegisterCounterFunc(func() uint64 { return in.counters[k] },
			"faults_injections_total", telemetry.L("kind", string(k)))
	}
}

// count tallies one injection of kind k against actor and mirrors it into
// the flight recorder.
func (in *Injector) count(k Kind, actor string) {
	in.counters[k]++
	in.rec.Emit(in.sched.Now(), telemetry.CatFault, string(k), actor, int64(in.counters[k]))
}

func (in *Injector) applyLinkFlap(e Event) {
	d := e.Duration
	if d <= 0 {
		d = 5 * time.Second
	}
	for _, tg := range in.resolve(e.Targets) {
		if tg.Link == nil || !tg.Link.Up() {
			continue
		}
		tg.Link.SetUp(false)
		in.count(LinkFlap, tg.Name)
		link, c := tg.Link, tg.Container
		in.sched.After(d, func() {
			// Do not re-cable a container that stopped in the meantime;
			// its next Start raises the link itself.
			if c != nil && c.State() != container.StateRunning {
				return
			}
			link.SetUp(true)
		})
	}
}

func (in *Injector) applyLinkImpair(e Event) {
	for _, tg := range in.resolve(e.Targets) {
		if tg.Link == nil {
			continue
		}
		imp := e.Impair
		if imp.RNG == nil {
			imp.RNG = sim.Substream(in.seed, "faults/impair/"+tg.Name)
		}
		prev := tg.Link.Impairments()
		tg.Link.SetImpairments(imp)
		in.count(LinkImpair, tg.Name)
		if e.Duration > 0 {
			link := tg.Link
			in.sched.After(e.Duration, func() { link.SetImpairments(prev) })
		}
	}
}

func (in *Injector) applyPartition(e Event) {
	if in.sw == nil {
		return
	}
	assigned := false
	for gi, names := range e.Groups {
		for _, tg := range in.resolve(names) {
			if tg.Link == nil {
				continue
			}
			for _, p := range tg.Link.Ends() {
				if in.sw.SetGroup(p, gi+1) {
					assigned = true
				}
			}
		}
	}
	if !assigned {
		return
	}
	in.count(Partition, in.sw.Name())
	d := e.Duration
	if d <= 0 {
		d = 10 * time.Second
	}
	in.sched.After(d, func() { in.sw.ClearGroups() })
}

func (in *Injector) applyCrashLoop(e Event) {
	every := e.Every
	if every <= 0 {
		every = time.Second
	}
	d := e.Duration
	if d <= 0 {
		d = 5 * time.Second
	}
	targets := in.resolve(e.Targets)
	deadline := in.sched.Now().Add(d)
	var tick func()
	tick = func() {
		for _, tg := range targets {
			in.kill(tg)
		}
		if in.sched.Now() < deadline {
			in.sched.After(every, tick)
		}
	}
	tick()
}

func (in *Injector) kill(tg Target) {
	if tg.Container == nil || tg.Container.State() != container.StateRunning {
		return
	}
	tg.Container.Kill()
	in.count(Crash, tg.Name)
}

// Counter is one per-kind injection count.
type Counter struct {
	Kind  Kind
	Count uint64
}

// Counters reports how many times each fault kind was injected, sorted by
// kind for deterministic iteration. Crash and CrashLoop kills share the
// Crash counter (each kill is one injection); flaps, impairment windows
// and partitions count one per affected link/switch.
func (in *Injector) Counters() []Counter {
	out := make([]Counter, 0, len(in.counters))
	for k, v := range in.counters {
		out = append(out, Counter{Kind: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// CounterMap returns the counts keyed by kind string (a fresh copy).
func (in *Injector) CounterMap() map[string]uint64 {
	out := make(map[string]uint64, len(in.counters))
	for k, v := range in.counters {
		out[string(k)] = v
	}
	return out
}

// String renders the counters as "kind=n kind=n", sorted, for summaries.
func (in *Injector) String() string {
	cs := in.Counters()
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprintf("%s=%d", c.Kind, c.Count)
	}
	return strings.Join(parts, " ")
}
