package testbed

import (
	"strings"
	"testing"
	"time"

	"ddoshield/internal/container"
	"ddoshield/internal/faults"
	"ddoshield/internal/netsim"
)

// fourKindPlan hits the fleet with four fault kinds: a flap, a fleet-wide
// impairment window, a crash and a partition.
func fourKindPlan() faults.Plan {
	var p faults.Plan
	p.Add(faults.Event{
		Kind: faults.LinkFlap, At: 20 * time.Second, Duration: 4 * time.Second,
		Targets: []string{"dev00*"},
	})
	p.Add(faults.Event{
		Kind: faults.LinkImpair, At: 30 * time.Second, Duration: 25 * time.Second,
		Targets: []string{"dev*"},
		Impair:  netsim.Impairments{LossProb: 0.05, CorruptProb: 0.05, DupProb: 0.02},
	})
	p.Add(faults.Event{
		Kind: faults.Crash, At: 45 * time.Second, Targets: []string{"dev01*"},
	})
	p.Add(faults.Event{
		Kind: faults.Partition, At: 60 * time.Second, Duration: 10 * time.Second,
		Groups: [][]string{{"dev00*", "dev01*"}, {"dev02*", "dev03*", "dev04*"}},
	})
	return p
}

// TestFaultedRunsAreDeterministic is the determinism regression test: two
// testbed runs with the same seed, the same fault plan and churn enabled
// must produce byte-identical summaries.
func TestFaultedRunsAreDeterministic(t *testing.T) {
	run := func() (*Testbed, string) {
		tb, err := New(Config{
			Seed:         31,
			NumDevices:   5,
			MeanThink:    2 * time.Second,
			ScanInterval: 100 * time.Millisecond,
			Churn: ChurnConfig{
				Enabled:  true,
				MeanUp:   40 * time.Second,
				MeanDown: 2 * time.Second,
			},
			Faults: fourKindPlan(),
		})
		if err != nil {
			t.Fatal(err)
		}
		tb.Start()
		tb.ScheduleAttackWave(40*time.Second, 3*time.Second,
			tb.DefaultAttackWave(10*time.Second, 200))
		if err := tb.Run(2 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return tb, tb.Summary()
	}
	tb1, s1 := run()
	_, s2 := run()
	if s1 != s2 {
		t.Fatalf("same-seed faulted runs diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", s1, s2)
	}

	// The run must have actually injected all four kinds.
	counters := tb1.FaultCounters()
	if len(counters) < 3 {
		t.Fatalf("only %d fault kinds injected: %v", len(counters), counters)
	}
	for _, c := range counters {
		if c.Count == 0 {
			t.Fatalf("fault kind %s has a zero counter", c.Kind)
		}
	}
	if !strings.Contains(s1, "faults") {
		t.Fatalf("summary missing fault counters:\n%s", s1)
	}
	// The Mirai campaign must have survived the fault campaign: the
	// attacker kept conscripting devices even as churn and crashes wiped
	// infections.
	if _, _, _, infections := tb1.Attacker().Stats(); infections < 3 {
		t.Fatalf("campaign stalled under faults: %d infections\n%s", infections, s1)
	}
	if !strings.Contains(s1, "devices      total=5") {
		t.Fatalf("summary missing fleet line:\n%s", s1)
	}
}

// TestChurnDoesNotResurrectStoppedDevice pins the supervisor-routed churn
// fix: a device stopped by an operator mid-churn stays down instead of
// being revived by a stale reboot callback.
func TestChurnDoesNotResurrectStoppedDevice(t *testing.T) {
	tb, err := New(Config{
		Seed:         7,
		NumDevices:   4,
		ScanInterval: 100 * time.Millisecond,
		Churn: ChurnConfig{
			Enabled:  true,
			MeanUp:   10 * time.Second,
			MeanDown: time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	if err := tb.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	victim := tb.Devices()[0].Container
	victim.Stop()
	if err := tb.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if victim.State() != container.StateStopped {
		t.Fatalf("stopped device was resurrected: %v", victim.State())
	}
	// The rest of the fleet kept churning.
	restarts := 0
	for _, s := range tb.DeviceSupervisors() {
		restarts += s.Restarts()
	}
	if restarts == 0 {
		t.Fatal("churn produced no supervised reboots")
	}
}

// TestFaultCrashedDeviceIsRevivedBySupervisor checks the default (no-churn)
// supervision: a fault-plan crash comes back via RestartOnFailure.
func TestFaultCrashedDeviceIsRevivedBySupervisor(t *testing.T) {
	var p faults.Plan
	p.Add(faults.Event{Kind: faults.Crash, At: 5 * time.Second, Targets: []string{"dev00*"}})
	tb, err := New(Config{Seed: 3, NumDevices: 2, Faults: p})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	if err := tb.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := tb.Devices()[0].Container
	if c.Crashes() == 0 {
		t.Fatal("fault plan did not crash the device")
	}
	if c.State() != container.StateRunning {
		t.Fatalf("crashed device not revived: %v", c.State())
	}
	if got := tb.FaultCounters(); len(got) != 1 || got[0].Kind != faults.Crash || got[0].Count != 1 {
		t.Fatalf("fault counters = %v", got)
	}
}
