// Package netstack implements the userspace network stack that runs inside
// each simulated container: ARP, IPv4, UDP sockets and an event-driven TCP
// with three-way handshake, sliding-window data transfer, retransmission and
// connection teardown. The paper's testbed relies on the Linux stack inside
// Docker containers; the IDS features (SYN-without-ACK ratio, short-lived
// connections, sequence-number variance) only make sense if handshakes and
// retransmissions genuinely happen on the wire, so this package provides
// them.
package netstack

import (
	"fmt"
	"sync"
	"time"

	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/trace"
)

// HostConfig configures a host's single-homed IPv4 stack.
type HostConfig struct {
	// Addr is the host's IPv4 address.
	Addr packet.Addr
	// Subnet is the directly connected prefix.
	Subnet packet.Prefix
	// Gateway is the default next hop for off-subnet destinations; zero
	// means off-subnet traffic is unroutable.
	Gateway packet.Addr
	// Seed drives the stack's RNG (ISNs, ephemeral ports, IP IDs).
	Seed int64
	// TTL is the initial TTL for generated packets (default 64).
	TTL uint8
}

type pendingFrame struct {
	build func(dstMAC packet.MAC) []byte
	// tc is the queued packet's origin span; it stays open across the ARP
	// wait so the trace charges resolution delay to the origin hop.
	tc trace.Context
}

type arpEntry struct {
	mac     packet.MAC
	pending []pendingFrame
	tries   int
	waiting bool
}

// Host is one endpoint's network stack bound to a NIC.
//
// The stack is lazy: the ARP/UDP/listener/connection tables, the RNG and
// the cached name string are all nil until first use, so an idle device —
// one that never sends or binds a socket — costs only the struct itself.
// Reads tolerate nil maps (a nil map lookup is legal Go); every write goes
// through an ensure-accessor that takes storage from a shared pool, and
// ReleaseIdle returns empty tables to the pools on churn-down.
type Host struct {
	nic   *netsim.NIC
	sched *sim.Scheduler
	cfg   HostConfig
	rng   *sim.RNG // lazy: see rand()
	name  string   // lazy cached Addr string: see Name()

	arp       map[packet.Addr]*arpEntry
	udpSocks  map[uint16]*UDPSocket
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	ipID      uint16
	ephemeral uint16

	// forwarder, when non-nil, receives IPv4 packets addressed elsewhere
	// (set by Router.AddInterface).
	forwarder *routerIface

	// Counters for diagnostics and tests.
	rxIPv4    uint64
	rxARP     uint64
	rxBadDst  uint64
	txIPv4    uint64
	arpFailed uint64
}

// NewHost binds a stack to nic. The NIC's receive handler is taken over.
// Tables, RNG and name are materialized on first use, not here — at fleet
// scale most hosts never touch them.
func NewHost(nic *netsim.NIC, cfg HostConfig) *Host {
	if cfg.TTL == 0 {
		cfg.TTL = 64
	}
	h := &Host{
		nic:       nic,
		sched:     nic.Node().Scheduler(),
		cfg:       cfg,
		ephemeral: 32768,
	}
	nic.SetHandlerCtx(h.receive)
	return h
}

// Table storage pools shared across the fleet: hosts borrow map storage on
// first write and return it (empty) on ReleaseIdle, so a churn-heavy
// campaign recycles a working set of tables instead of holding one of each
// per device.
var (
	arpMapPool      = sync.Pool{New: func() any { return make(map[packet.Addr]*arpEntry) }}
	udpMapPool      = sync.Pool{New: func() any { return make(map[uint16]*UDPSocket) }}
	listenerMapPool = sync.Pool{New: func() any { return make(map[uint16]*Listener) }}
	connMapPool     = sync.Pool{New: func() any { return make(map[connKey]*Conn) }}
)

// arpMap (and its siblings below) materialize the corresponding table
// before a write; reads go straight to the possibly-nil field.
func (h *Host) arpMap() map[packet.Addr]*arpEntry {
	if h.arp == nil {
		h.arp = arpMapPool.Get().(map[packet.Addr]*arpEntry)
	}
	return h.arp
}

func (h *Host) udpMap() map[uint16]*UDPSocket {
	if h.udpSocks == nil {
		h.udpSocks = udpMapPool.Get().(map[uint16]*UDPSocket)
	}
	return h.udpSocks
}

func (h *Host) listenerMap() map[uint16]*Listener {
	if h.listeners == nil {
		h.listeners = listenerMapPool.Get().(map[uint16]*Listener)
	}
	return h.listeners
}

func (h *Host) connMap() map[connKey]*Conn {
	if h.conns == nil {
		h.conns = connMapPool.Get().(map[connKey]*Conn)
	}
	return h.conns
}

// rand returns the host's RNG, deriving it on first use. The stream is
// keyed by (seed, address) only, so the draw sequence is identical whether
// the RNG is built eagerly at NewHost or lazily at the first ISN.
func (h *Host) rand() *sim.RNG {
	if h.rng == nil {
		h.rng = sim.Substream(h.cfg.Seed, "netstack/"+h.Name())
	}
	return h.rng
}

// ReleaseIdle returns table storage that holds no live state to the shared
// pools. Called on container halt/churn-down; behavior-preserving because
// only *empty* tables are released — a populated ARP cache persists across
// restarts exactly as it always did.
func (h *Host) ReleaseIdle() {
	if h.arp != nil && len(h.arp) == 0 {
		arpMapPool.Put(h.arp)
		h.arp = nil
	}
	if h.udpSocks != nil && len(h.udpSocks) == 0 {
		udpMapPool.Put(h.udpSocks)
		h.udpSocks = nil
	}
	if h.listeners != nil && len(h.listeners) == 0 {
		listenerMapPool.Put(h.listeners)
		h.listeners = nil
	}
	if h.conns != nil && len(h.conns) == 0 {
		connMapPool.Put(h.conns)
		h.conns = nil
	}
}

// AddStaticARP installs a permanent neighbor entry, bypassing resolution.
// Large fleets use it to pre-bind the pairs that will talk (device to its
// edge server, scanner to its target plane): one ARP broadcast on a
// 100k-host segment costs 100k deliveries, so at scale resolution traffic
// — not payload traffic — dominates the event count unless primed away.
func (h *Host) AddStaticARP(ip packet.Addr, mac packet.MAC) {
	e := h.arp[ip]
	if e == nil {
		e = &arpEntry{}
		h.arpMap()[ip] = e
	}
	e.mac = mac
	if e.waiting {
		e.waiting = false
		pending := e.pending
		e.pending = nil
		for _, p := range pending {
			h.txIPv4++
			h.nic.SendCtx(p.build(mac), p.tc)
			p.tc.Finish(h.sched.Now())
		}
	}
}

// emitTCP records a transport-layer trace event in the network's flight
// recorder (a no-op when no recorder is attached). The recorder is looked
// up per call so instrumentation attached after NewHost still takes
// effect; the chain is a few pointer loads and allocation-free.
func (h *Host) emitTCP(name string, value int64) {
	h.nic.Node().Network().Recorder().Emit(h.sched.Now(), telemetry.CatTCP, name, h.Name(), value)
}

// Addr reports the host's IPv4 address.
func (h *Host) Addr() packet.Addr { return h.cfg.Addr }

// Name reports the host's address string — the actor label its spans and
// trace events carry. Rendered once on first use and cached so the hot
// paths stay alloc-free.
func (h *Host) Name() string {
	if h.name == "" {
		h.name = h.cfg.Addr.String()
	}
	return h.name
}

// Tracer resolves the network's packet tracer at call time (nil when
// tracing is off; the trace API is nil-receiver safe).
func (h *Host) Tracer() *trace.Tracer { return h.nic.Node().Network().Tracer() }

// traceOrigin opens an origin span for a locally generated packet when its
// flow is sampled; unsampled flows get the zero Context at zero cost.
func (h *Host) traceOrigin(name string, dst packet.Addr, srcPort, dstPort uint16, proto uint8) trace.Context {
	tr := h.Tracer()
	if tr == nil {
		return trace.Context{}
	}
	f := trace.Flow{
		Src: h.cfg.Addr.Uint32(), Dst: dst.Uint32(),
		SrcPort: srcPort, DstPort: dstPort, Proto: proto,
	}
	return tr.Origin(h.sched.Now(), f, name, h.Name())
}

// MAC reports the bound NIC's hardware address.
func (h *Host) MAC() packet.MAC { return h.nic.MAC() }

// NIC returns the bound NIC.
func (h *Host) NIC() *netsim.NIC { return h.nic }

// Scheduler returns the simulation scheduler the stack runs on.
func (h *Host) Scheduler() *sim.Scheduler { return h.sched }

// Now reports the current simulated time.
func (h *Host) Now() sim.Time { return h.sched.Now() }

// nextIPID returns a fresh IPv4 identification value.
func (h *Host) nextIPID() uint16 {
	h.ipID++
	return h.ipID
}

// nextEphemeralPort returns the next client port in the ephemeral range.
func (h *Host) nextEphemeralPort() uint16 {
	for i := 0; i < 65536; i++ {
		h.ephemeral++
		if h.ephemeral < 32768 {
			h.ephemeral = 32768
		}
		p := h.ephemeral
		if _, used := h.udpSocks[p]; used {
			continue
		}
		if _, used := h.listeners[p]; used {
			continue
		}
		return p
	}
	return 0
}

// nextHop returns the IP the frame must be L2-addressed to: the destination
// itself when on-subnet, otherwise the default gateway.
func (h *Host) nextHop(dst packet.Addr) (packet.Addr, error) {
	if h.cfg.Subnet.Contains(dst) || dst == (packet.Addr{255, 255, 255, 255}) {
		return dst, nil
	}
	if h.cfg.Gateway.IsZero() {
		return packet.Addr{}, fmt.Errorf("netstack %s: no route to %s", h.cfg.Addr, dst)
	}
	return h.cfg.Gateway, nil
}

const (
	arpRetryInterval = 100 * time.Millisecond
	arpMaxTries      = 3
)

// sendIP resolves the next hop's MAC (via ARP, queueing the frame while
// resolution is in flight) and transmits the frame built by build.
func (h *Host) sendIP(dst packet.Addr, build func(dstMAC packet.MAC) []byte) {
	h.sendIPCtx(dst, trace.Context{}, build)
}

// sendIPCtx is sendIP carrying the packet's origin span: the span closes at
// NIC hand-off (so it covers any ARP wait) or terminates as DropNoRoute.
func (h *Host) sendIPCtx(dst packet.Addr, tc trace.Context, build func(dstMAC packet.MAC) []byte) {
	hop, err := h.nextHop(dst)
	if err != nil {
		// Unroutable: silently dropped, as a real stack would.
		tc.Drop(h.sched.Now(), trace.DropNoRoute)
		return
	}
	h.sendIPVia(hop, tc, build)
}

// sendIPVia transmits via an explicit next-hop address on this segment.
func (h *Host) sendIPVia(hop packet.Addr, tc trace.Context, build func(dstMAC packet.MAC) []byte) {
	e := h.arp[hop]
	if e != nil && e.mac != (packet.MAC{}) {
		h.txIPv4++
		h.nic.SendCtx(build(e.mac), tc)
		tc.Finish(h.sched.Now())
		return
	}
	if e == nil {
		e = &arpEntry{}
		h.arpMap()[hop] = e
	}
	e.pending = append(e.pending, pendingFrame{build: build, tc: tc})
	if !e.waiting {
		e.waiting = true
		e.tries = 0
		h.sendARPRequest(hop, e)
	}
}

func (h *Host) sendARPRequest(target packet.Addr, e *arpEntry) {
	e.tries++
	req := packet.ARP{
		Op:        packet.ARPRequest,
		SenderMAC: h.MAC(),
		SenderIP:  h.cfg.Addr,
		TargetIP:  target,
	}
	h.nic.Send(packet.BuildARP(h.MAC(), packet.BroadcastMAC, req))
	h.sched.After(arpRetryInterval, func() {
		if e.mac != (packet.MAC{}) || !e.waiting {
			return
		}
		if e.tries >= arpMaxTries {
			e.waiting = false
			h.arpFailed += uint64(len(e.pending))
			for _, p := range e.pending {
				p.tc.Drop(h.sched.Now(), trace.DropNoRoute)
			}
			e.pending = nil
			return
		}
		h.sendARPRequest(target, e)
	})
}

// ResolveMAC performs ARP resolution for ip and invokes cb with the result.
// The flood engines use it once per target, then forge frames directly.
func (h *Host) ResolveMAC(ip packet.Addr, cb func(mac packet.MAC, ok bool)) {
	hop, err := h.nextHop(ip)
	if err != nil {
		cb(packet.MAC{}, false)
		return
	}
	if e := h.arp[hop]; e != nil && e.mac != (packet.MAC{}) {
		cb(e.mac, true)
		return
	}
	// Piggyback on the pending-frame machinery with a zero-length frame
	// builder that just reports the resolution.
	h.sendIP(ip, func(mac packet.MAC) []byte {
		cb(mac, true)
		return nil
	})
	// Failure notification after the retries would have elapsed.
	h.sched.After(time.Duration(arpMaxTries+1)*arpRetryInterval, func() {
		if e := h.arp[hop]; e == nil || e.mac == (packet.MAC{}) {
			cb(packet.MAC{}, false)
		}
	})
}

// SendRaw transmits a pre-built frame verbatim. Nil and runt frames are
// ignored. This is the raw-socket analog the Mirai attack engines use.
func (h *Host) SendRaw(frame []byte) { h.SendRawCtx(frame, trace.Context{}) }

// SendRawCtx is SendRaw carrying a trace context opened by the caller (the
// flood engines originate spans themselves, since their spoofed flows never
// pass through sendIP).
func (h *Host) SendRawCtx(frame []byte, tc trace.Context) {
	if len(frame) < packet.EthernetHeaderLen {
		tc.Drop(h.sched.Now(), trace.DropMalformed)
		return
	}
	h.nic.SendCtx(frame, tc)
}

// receive is the NIC ingress path. A sampled frame's chain continues in a
// "deliver" span covering dissection and socket dispatch; the span ends
// terminally at a socket, or as a cause-tagged drop.
func (h *Host) receive(raw []byte, tc trace.Context) {
	now := h.sched.Now()
	span := tc.Start(now, "deliver", h.Name())
	eth, rest, err := packet.UnmarshalEthernet(raw)
	if err != nil {
		span.Drop(now, trace.DropMalformed)
		return
	}
	if eth.Dst != h.MAC() && !eth.Dst.IsBroadcast() {
		h.rxBadDst++
		span.Drop(now, trace.DropBadDst)
		return
	}
	switch eth.Type {
	case packet.EtherTypeARP:
		h.rxARP++
		span.Finish(now)
		h.handleARP(rest)
	case packet.EtherTypeIPv4:
		h.handleIPv4(rest, span)
	default:
		span.Drop(now, trace.DropNoSocket)
	}
}

func (h *Host) handleARP(b []byte) {
	a, err := packet.UnmarshalARP(b)
	if err != nil {
		return
	}
	// Learn the sender's mapping the way a real stack does: refresh an
	// entry we already hold, or create one when the packet actually
	// concerns us (a reply we solicited, or a request probing our own
	// address — we are about to answer, so the requester will talk to us).
	// Broadcast requests aimed at third parties update nothing; without
	// this restriction every flooded ARP request would materialize a cache
	// entry on all N hosts of the segment, defeating the idle flyweight at
	// fleet scale.
	if !a.SenderIP.IsZero() {
		e := h.arp[a.SenderIP]
		if e == nil && (a.Op == packet.ARPReply || a.TargetIP == h.cfg.Addr) {
			e = &arpEntry{}
			h.arpMap()[a.SenderIP] = e
		}
		if e != nil {
			e.mac = a.SenderMAC
			if e.waiting {
				e.waiting = false
				pending := e.pending
				e.pending = nil
				for _, p := range pending {
					if f := p.build(e.mac); f != nil {
						h.txIPv4++
						h.nic.SendCtx(f, p.tc)
					}
					p.tc.Finish(h.sched.Now())
				}
			}
		}
	}
	if a.Op == packet.ARPRequest && a.TargetIP == h.cfg.Addr {
		reply := packet.ARP{
			Op:        packet.ARPReply,
			SenderMAC: h.MAC(),
			SenderIP:  h.cfg.Addr,
			TargetMAC: a.SenderMAC,
			TargetIP:  a.SenderIP,
		}
		h.nic.Send(packet.BuildARP(h.MAC(), a.SenderMAC, reply))
	}
}

func (h *Host) handleIPv4(b []byte, tc trace.Context) {
	now := h.sched.Now()
	ip, payload, err := packet.UnmarshalIPv4(b)
	if err != nil {
		tc.Drop(now, trace.DropMalformed)
		return
	}
	if ip.Dst != h.cfg.Addr && ip.Dst != (packet.Addr{255, 255, 255, 255}) {
		if h.forwarder != nil {
			tc.FinishTag(now, "forward")
			h.forwarder.forward(ip, payload)
			return
		}
		h.rxBadDst++
		tc.Drop(now, trace.DropBadDst)
		return
	}
	h.rxIPv4++
	switch ip.Proto {
	case packet.ProtoTCP:
		h.handleTCP(ip, payload, tc)
	case packet.ProtoUDP:
		h.handleUDP(ip, payload, tc)
	default:
		tc.Drop(now, trace.DropNoSocket)
	}
}

// Stats reports receive-path counters: IPv4 packets accepted, ARP packets
// seen, frames addressed elsewhere, IPv4 packets sent, and IP packets whose
// ARP resolution failed.
func (h *Host) Stats() (rxIPv4, rxARP, rxBadDst, txIPv4, arpFailed uint64) {
	return h.rxIPv4, h.rxARP, h.rxBadDst, h.txIPv4, h.arpFailed
}
