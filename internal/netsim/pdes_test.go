package netsim

import (
	"fmt"
	"reflect"
	"testing"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// pdesStarResult captures everything observable about one run of the star
// topology: per-receiver delivery logs (arrival time, frame length) plus
// aggregate switch counters.
type pdesStarResult struct {
	deliveries [][]string
	forwarded  uint64
	flooded    uint64
}

// runPDESStar builds leaves nodes hanging off one switch, blasts frames
// between the leaves on a deterministic schedule, and runs to the horizon.
// With domains <= 1 the network is serial; otherwise the switch lives in
// domain 0 and leaf i in domain 1 + i%(domains-1), exercising the
// cross-domain arrival path in both directions through the switch.
func runPDESStar(t *testing.T, leaves, domains, workers int) pdesStarResult {
	t.Helper()
	return runPDESStarCfg(t, leaves, domains, workers, LinkConfig{Delay: sim.Millisecond}, Impairments{})
}

// runPDESStarCfg is runPDESStar with the leaf uplink config and an optional
// impairment set (installed on every uplink before the run) under test
// control, so lossy and impaired cross-domain links get the same
// serial-vs-partitioned identity treatment as clean ones. Per-run RNG state
// is created inside, so every invocation sees identical streams.
func runPDESStarCfg(t *testing.T, leaves, domains, workers int, cfg LinkConfig, im Impairments) pdesStarResult {
	t.Helper()
	const horizon = 200 * sim.Millisecond
	var (
		net    *Network
		engine *sim.Engine
	)
	if domains > 1 {
		engine = sim.NewEngine(domains, 0)
		net = NewPartitioned(engine)
	} else {
		net = New(sim.NewScheduler())
	}
	domainOf := func(leaf int) int {
		if domains <= 1 {
			return 0
		}
		return 1 + leaf%(domains-1)
	}
	net.SetSeed(99) // roots the keyed loss streams when cfg.RNG is nil
	sw := net.NewSwitch("sw0")
	if im.Active() {
		im.RNG = sim.NewRNG(4242)
	}
	nics := make([]*NIC, leaves)
	res := pdesStarResult{deliveries: make([][]string, leaves)}
	for i := 0; i < leaves; i++ {
		i := i
		node := net.NewNodeInDomain(fmt.Sprintf("leaf%d", i), domainOf(i))
		nics[i] = node.AddNIC()
		l := net.Connect(nics[i], sw.NewPort(), cfg)
		if im.Active() {
			l.SetImpairments(im)
		}
		nics[i].SetHandler(func(raw []byte) {
			res.deliveries[i] = append(res.deliveries[i],
				fmt.Sprintf("%d:%d", node.Scheduler().Now(), len(raw)))
		})
	}
	// Each leaf streams frames to the next leaf; frame sizes vary so queue
	// and serialization interact. The first frame per sender floods (its
	// destination MAC is unlearned), later ones forward.
	for i := 0; i < leaves; i++ {
		i := i
		src, dst := nics[i], nics[(i+1)%leaves]
		sched := src.Node().Scheduler()
		for k := 0; k < 40; k++ {
			k := k
			sched.At(sim.Time(i+1)*sim.Millisecond+sim.Time(k)*3*sim.Millisecond, func() {
				eth := packet.Ethernet{Dst: dst.MAC(), Src: src.MAC(), Type: packet.EtherTypeIPv4}
				raw := eth.Marshal(nil)
				raw = append(raw, make([]byte, 50+(i*37+k*11)%400)...)
				src.Send(raw)
			})
		}
	}
	if engine != nil {
		la, ok := net.MinCrossDomainDelay()
		if !ok {
			t.Fatal("expected cross-domain links in partitioned star")
		}
		engine.SetLookahead(la)
		if err := engine.Run(horizon, workers); err != nil {
			t.Fatal(err)
		}
	} else {
		net.Scheduler().Run(horizon)
	}
	res.forwarded, res.flooded = sw.Stats()
	return res
}

// TestPartitionedStarMatchesSerial pins the core netsim PDES property: the
// same topology and send schedule produce identical deliveries, arrival
// instants and switch behavior whether executed serially, partitioned into
// a few domains, or partitioned with parallel workers.
func TestPartitionedStarMatchesSerial(t *testing.T) {
	const leaves = 6
	want := runPDESStar(t, leaves, 1, 1)
	var total int
	for _, d := range want.deliveries {
		total += len(d)
	}
	if total == 0 {
		t.Fatal("serial baseline delivered nothing")
	}
	for _, tc := range []struct{ domains, workers int }{
		{3, 1}, {3, 3}, {4, 4}, {7, 4},
	} {
		got := runPDESStar(t, leaves, tc.domains, tc.workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("domains=%d workers=%d diverged from serial:\ngot  %+v\nwant %+v",
				tc.domains, tc.workers, got, want)
		}
	}
}

func TestMinCrossDomainDelay(t *testing.T) {
	e := sim.NewEngine(2, 0)
	net := NewPartitioned(e)
	a := net.NewNodeInDomain("a", 0)
	b := net.NewNodeInDomain("b", 1)
	c := net.NewNodeInDomain("c", 1)
	if _, ok := net.MinCrossDomainDelay(); ok {
		t.Fatal("no links yet: want ok=false")
	}
	// Same-domain link must not contribute.
	net.Connect(b.AddNIC(), c.AddNIC(), LinkConfig{Delay: sim.Microsecond})
	if _, ok := net.MinCrossDomainDelay(); ok {
		t.Fatal("same-domain link should not count as cross-domain")
	}
	net.Connect(a.AddNIC(), b.AddNIC(), LinkConfig{Delay: 5 * sim.Millisecond})
	net.Connect(a.AddNIC(), c.AddNIC(), LinkConfig{Delay: 2 * sim.Millisecond})
	if la, ok := net.MinCrossDomainDelay(); !ok || la != 2*sim.Millisecond {
		t.Fatalf("lookahead = %v, %v; want 2ms, true", la, ok)
	}
}

// TestCrossDomainLossMatchesSerial replaces the old "loss rejected in
// partitioned mode" pin: every leaf uplink is cross-domain AND lossy, and
// the delivery logs (instants, sizes, switch counters) must still be
// byte-identical to the serial run. The loss streams are keyed by
// (network seed, link index, direction), so the drop pattern cannot depend
// on how domains interleave.
func TestCrossDomainLossMatchesSerial(t *testing.T) {
	const leaves = 6
	cfg := LinkConfig{Delay: sim.Millisecond, LossProb: 0.3}
	want := runPDESStarCfg(t, leaves, 1, 1, cfg, Impairments{})
	var total int
	for _, d := range want.deliveries {
		total += len(d)
	}
	if total == 0 || total >= leaves*40 {
		t.Fatalf("loss inactive: %d of %d frames delivered", total, leaves*40)
	}
	for _, tc := range []struct{ domains, workers int }{
		{3, 1}, {4, 4}, {7, 4},
	} {
		got := runPDESStarCfg(t, leaves, tc.domains, tc.workers, cfg, Impairments{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("domains=%d workers=%d lossy run diverged from serial:\ngot  %+v\nwant %+v",
				tc.domains, tc.workers, got, want)
		}
	}
}

// TestCrossDomainImpairmentsMatchSerial replaces the old "impairments
// rejected in partitioned mode" pin: loss, corruption, duplication and
// reordering are all armed on cross-domain links, with per-direction RNG
// streams split off one shared spec RNG at install time. The sender's
// domain draws every impairment decision before the frame crosses the
// epoch barrier, so partitioned runs replay the serial one exactly.
func TestCrossDomainImpairmentsMatchSerial(t *testing.T) {
	const leaves = 6
	cfg := LinkConfig{Delay: sim.Millisecond}
	im := Impairments{LossProb: 0.1, CorruptProb: 0.1, DupProb: 0.1, ReorderProb: 0.1}
	want := runPDESStarCfg(t, leaves, 1, 1, cfg, im)
	var total int
	for _, d := range want.deliveries {
		total += len(d)
	}
	if total == 0 {
		t.Fatal("serial impaired baseline delivered nothing")
	}
	for _, tc := range []struct{ domains, workers int }{
		{3, 1}, {4, 4}, {7, 4},
	} {
		got := runPDESStarCfg(t, leaves, tc.domains, tc.workers, cfg, im)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("domains=%d workers=%d impaired run diverged from serial:\ngot  %+v\nwant %+v",
				tc.domains, tc.workers, got, want)
		}
	}
}
