package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic pseudo-random stream. Every stochastic component of
// the testbed (traffic arrival processes, Mirai scanner target selection,
// flood payload generation, ML initialization) draws from its own named
// stream so that changing one component does not perturb the others — the
// same discipline NS-3 enforces with its RngStream substreams.
type RNG struct {
	r *rand.Rand
}

// xoshiroSource is a xoshiro256++ generator behind the math/rand.Source64
// interface. The default math/rand source carries 607 words of state and
// spends ~20k cycles in Seed() expanding it — at fleet scale (one stream
// per client app, per lossy link direction, per churned device) that
// seeding dominated topology start-up and its 4.9 KB state dominated
// per-stream heap. xoshiro256++ seeds in four SplitMix64 steps, holds 32
// bytes of state, and passes the same statistical batteries, so swapping
// the source keeps every stream deterministic per seed while removing the
// construction wall.
type xoshiroSource struct {
	s [4]uint64
}

var _ rand.Source64 = (*xoshiroSource)(nil)

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Seed implements rand.Source: the four state words are the SplitMix64
// expansion of the seed (the initialization the xoshiro authors prescribe,
// and the same primitive KeyedStream derives child seeds with).
func (x *xoshiroSource) Seed(seed int64) {
	v := uint64(seed)
	for i := range x.s {
		v = SplitMix64(v)
		x.s[i] = v
	}
}

// Uint64 implements rand.Source64 (xoshiro256++ next()).
func (x *xoshiroSource) Uint64() uint64 {
	r := rotl(x.s[0]+x.s[3], 23) + x.s[0]
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return r
}

// Int63 implements rand.Source.
func (x *xoshiroSource) Int63() int64 { return int64(x.Uint64() >> 1) }

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	src := &xoshiroSource{}
	src.Seed(seed)
	return &RNG{r: rand.New(src)}
}

// Substream derives an independent child stream from a parent seed and a
// component label, by mixing the label into the seed with an FNV-style hash.
func Substream(seed int64, label string) *RNG {
	h := uint64(seed) * 0x9E3779B97F4A7C15
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001B3
	}
	return NewRNG(int64(h))
}

// SplitMix64 is the SplitMix64 finalizer: a bijective avalanche mix of x.
// It is the seed-derivation primitive behind KeyedStream — strong enough
// that adjacent structural keys (link 3 vs link 4, direction 0 vs 1) yield
// statistically independent streams.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// KeyedStream derives an independent stream from a root seed and a chain of
// structural keys — (link index, direction), (device id), and so on. Unlike
// Substream's label hashing, the keys are raw integers, so per-entity
// streams can be derived in hot construction paths without formatting
// strings. Entities keyed this way draw from their own stream regardless of
// how events interleave globally, which is what keeps random behaviour
// byte-identical between the serial scheduler and the partitioned engine.
func KeyedStream(seed int64, keys ...uint64) *RNG {
	h := SplitMix64(uint64(seed))
	for _, k := range keys {
		h = SplitMix64(h ^ k)
	}
	return NewRNG(int64(h))
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint32 returns a uniform uint32.
func (g *RNG) Uint32() uint32 { return g.r.Uint32() }

// Uint64 returns a uniform uint64.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard-normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Exp returns an exponential variate with the given mean (>0). Exponential
// inter-arrival times drive the Poisson arrival processes used for benign
// request workloads.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Uniform returns a uniform variate in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + g.r.Float64()*(hi-lo)
}

// Normal returns a normal variate with the given mean and standard
// deviation, truncated below at lo (useful for strictly positive sizes).
func (g *RNG) Normal(mean, stddev, lo float64) float64 {
	v := mean + g.r.NormFloat64()*stddev
	if v < lo {
		return lo
	}
	return v
}

// Pareto returns a bounded Pareto variate with shape alpha and scale xm.
// Heavy-tailed Pareto sizes model file-transfer and video-segment lengths.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return xm
	}
	u := g.r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Pick returns a uniformly chosen element of choices.
func Pick[T any](g *RNG, choices []T) T {
	return choices[g.Intn(len(choices))]
}

// Bytes fills b with pseudo-random bytes (flood payloads, stream data).
func (g *RNG) Bytes(b []byte) {
	// math/rand.Read never returns an error.
	_, _ = g.r.Read(b)
}
