package packet

import (
	"testing"

	"ddoshield/internal/telemetry/trace"
)

// TestReleaseResetsTraceContext forces pool reuse and pins the guarantee
// that a recycled Packet never carries the previous frame's trace context:
// both Release and DecodeInto must clear it.
func TestReleaseResetsTraceContext(t *testing.T) {
	tr := trace.New(trace.Config{SampleRate: 1})
	src, dst, ip, tcp, payload := benchFrameArgs()
	frame := BuildTCP(src, dst, ip, tcp, payload)

	p := Acquire()
	if err := DecodeInto(p, 0, frame); err != nil {
		t.Fatal(err)
	}
	p.Trace = tr.OriginKind(0, trace.Flow{Src: 1, Dst: 2, Proto: 6}, trace.KindAttack, "flood-syn", "bot")
	if !p.Trace.Sampled() {
		t.Fatal("setup: trace context not live")
	}
	p.Release()

	// Drain the pool until the same struct comes back (sync.Pool gives no
	// ordering guarantee); cap the attempts so the test cannot spin.
	var reused *Packet
	held := make([]*Packet, 0, 1024)
	for i := 0; i < 1024; i++ {
		q := Acquire()
		if q == p {
			reused = q
			break
		}
		held = append(held, q)
	}
	for _, q := range held {
		q.Release()
	}
	if reused == nil {
		t.Skip("pool never returned the released Packet; nothing to check")
	}
	if reused.Trace.Sampled() || reused.Trace != (trace.Context{}) {
		t.Fatalf("recycled Packet kept a stale trace context: %+v", reused.Trace)
	}

	// DecodeInto must also reset a caller-assigned context.
	reused.Trace = tr.OriginKind(0, trace.Flow{Src: 3, Dst: 4, Proto: 17}, trace.KindBenign, "udp-tx", "dev")
	if err := DecodeInto(reused, 0, frame); err != nil {
		t.Fatal(err)
	}
	if reused.Trace.Sampled() {
		t.Fatal("DecodeInto kept a stale trace context")
	}
	reused.Release()
}
