// Customids demonstrates the extensibility the paper emphasizes: plugging
// a user-defined detector into the Real-Time IDS Unit. The detector here
// is a hand-written rule (no training at all): flag a packet when its
// window's SYN-without-ACK ratio or UDP fraction is anomalous. It is wired
// into the same monitor → preprocess → detect pipeline the ML models use,
// and scored against the same ground truth.
package main

import (
	"fmt"
	"log"
	"time"

	"ddoshield/internal/dataset"
	"ddoshield/internal/features"
	"ddoshield/internal/ids"
	"ddoshield/internal/testbed"
)

// ruleDetector is a user-supplied ml.Classifier: any type with Predict and
// Name plugs into ids.Config.Model.
type ruleDetector struct {
	synRatioIdx int
	udpFracIdx  int
}

func (r *ruleDetector) Predict(x []float64) int {
	if x[r.synRatioIdx] > 20 || x[r.udpFracIdx] > 0.4 {
		return dataset.Malicious
	}
	return dataset.Benign
}

func (r *ruleDetector) Name() string { return "threshold-rule" }

func main() {
	// Locate the features the rule needs by name, so it survives schema
	// evolution.
	idx := map[string]int{}
	for i, n := range features.Names() {
		idx[n] = i
	}
	rule := &ruleDetector{
		synRatioIdx: idx["win_syn_noack_ratio"],
		udpFracIdx:  idx["win_udp_fraction"],
	}

	tb, err := testbed.New(testbed.Config{Seed: 11, NumDevices: 10})
	if err != nil {
		log.Fatal(err)
	}
	unit := ids.New(ids.Config{
		Model:   rule,
		Window:  time.Second,
		Labeler: tb.Labeler(),
		Meter:   tb.IDSContainer(),
	})
	tb.AddTap(unit.Tap())

	tb.Start()
	tb.ScheduleAttackWave(45*time.Second, 3*time.Second,
		tb.DefaultAttackWave(12*time.Second, 400))
	if err := tb.Run(2 * time.Minute); err != nil {
		log.Fatal(err)
	}
	unit.Flush()

	fmt.Println("=== custom rule-based IDS in the DDoShield-IoT pipeline ===")
	fmt.Printf("windows: %d, packets: %d\n", len(unit.Results()), unit.PacketsSeen())
	fmt.Printf("average per-window accuracy: %.2f%% (worst %.2f%%)\n",
		unit.AverageAccuracy()*100, unit.MinAccuracy()*100)
	alerts := 0
	for _, w := range unit.Results() {
		if w.Alert {
			alerts++
		}
	}
	fmt.Printf("windows flagged as attack: %d\n", alerts)
	fmt.Printf("confusion: %+v\n", unit.Confusion())
	fmt.Printf("IDS container CPU time: %v\n", tb.IDSContainer().CPUTime())
}
