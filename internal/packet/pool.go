package packet

import (
	"sync"

	"ddoshield/internal/telemetry/trace"
)

// pktPool recycles Packet structs for the capture hot path. A simulated DDoS
// run decodes one Packet per captured frame at every tap; without pooling
// that is the single largest allocation source in the pipeline.
var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// Acquire returns a Packet from the pool, ready to be filled by DecodeInto.
// Its previous contents are unspecified; DecodeInto overwrites every field.
//
// Ownership contract: the caller owns the Packet until it calls Release.
// Taps that hand a pooled Packet to observers must guarantee the observers
// do not retain the pointer (or any field referencing it) past the callback
// return — after Release the struct is recycled and will be overwritten by
// an unrelated frame. Code that needs to keep a decoded packet should use
// Decode, or copy the fields it needs before returning.
func Acquire() *Packet {
	return pktPool.Get().(*Packet)
}

// Release returns a Packet obtained from Acquire to the pool. The caller
// must not touch p afterwards. Release on a Packet that observers retained
// is a use-after-free-style bug; see the contract on Acquire.
func (p *Packet) Release() {
	// Drop slice references so pooled packets do not pin frame buffers alive
	// between captures, and clear the trace context so a recycled Packet
	// can never inherit a stale TraceID.
	p.Raw = nil
	p.Payload = nil
	p.Trace = trace.Context{}
	pktPool.Put(p)
}
