package botnet

import (
	"fmt"
	"strings"
	"time"

	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry/trace"
)

// AttackType enumerates the implemented Mirai flood vectors. The paper
// evaluates SYN, ACK and UDP floods and deliberately excludes
// application-level attacks (HTTP/DNS floods).
type AttackType int

// Flood vectors.
const (
	AttackSYN AttackType = iota + 1
	AttackACK
	AttackUDP
)

// String renders the vector name used in the C2 wire protocol.
func (a AttackType) String() string {
	switch a {
	case AttackSYN:
		return "syn"
	case AttackACK:
		return "ack"
	case AttackUDP:
		return "udp"
	}
	if name, ok := attackTypeName(a); ok {
		return name
	}
	return fmt.Sprintf("AttackType(%d)", int(a))
}

// ParseAttackType parses a C2 vector token.
func ParseAttackType(s string) (AttackType, error) {
	switch strings.ToLower(s) {
	case "syn":
		return AttackSYN, nil
	case "ack":
		return AttackACK, nil
	case "udp":
		return AttackUDP, nil
	}
	if at, ok := parseExtendedAttackType(s); ok {
		return at, nil
	}
	return 0, fmt.Errorf("botnet: unknown attack type %q", s)
}

// Command is one attack order: flood target:port with the given vector for
// Duration at PPS packets per second (per bot).
type Command struct {
	Type     AttackType
	Target   packet.Addr
	Port     uint16
	Duration time.Duration
	PPS      int
}

// String renders the C2 wire form ("ATK syn 10.0.1.1 80 60 500").
func (c Command) String() string {
	return fmt.Sprintf("ATK %s %s %d %d %d",
		c.Type, c.Target, c.Port, int(c.Duration/time.Second), c.PPS)
}

// ParseCommand parses the C2 wire form.
func ParseCommand(line string) (Command, error) {
	var (
		typ       string
		target    string
		port      uint16
		durS, pps int
	)
	if _, err := fmt.Sscanf(line, "ATK %s %s %d %d %d", &typ, &target, &port, &durS, &pps); err != nil {
		return Command{}, fmt.Errorf("botnet: parse command %q: %w", line, err)
	}
	at, err := ParseAttackType(typ)
	if err != nil {
		return Command{}, err
	}
	addr, err := packet.ParseAddr(target)
	if err != nil {
		return Command{}, err
	}
	return Command{Type: at, Target: addr, Port: port, Duration: time.Duration(durS) * time.Second, PPS: pps}, nil
}

// floodBatchInterval is the pacing quantum: each tick emits pps-scaled
// batches so high rates do not cost one scheduler event per packet.
const floodBatchInterval = 10 * time.Millisecond

// UDPPayloadLen is the fixed flood datagram payload size (Mirai's default
// UDP flood uses 512-byte payloads).
const UDPPayloadLen = 512

// Flood executes one attack command from a host. The spoof prefix, when
// non-zero, supplies the randomized source addresses for SYN/ACK floods
// (Mirai forges sources via raw sockets); UDP floods use the bot's own
// address with randomized ports, as the real generic UDP vector does.
type Flood struct {
	host   *netstack.Host
	rng    *sim.RNG
	cmd    Command
	spoof  packet.Prefix
	ticker *sim.Ticker
	ends   sim.Time
	dstMAC packet.MAC
	// OnDone fires when the attack duration elapses.
	OnDone func()

	sent    uint64
	payload []byte
	// originName is the trace origin-span label ("flood-syn", ...),
	// precomputed so the per-packet emit path stays allocation-free.
	originName string
}

// NewFlood prepares (but does not start) a flood.
func NewFlood(host *netstack.Host, rng *sim.RNG, cmd Command, spoof packet.Prefix) *Flood {
	payload := make([]byte, UDPPayloadLen)
	rng.Bytes(payload)
	return &Flood{
		host: host, rng: rng, cmd: cmd, spoof: spoof, payload: payload,
		originName: "flood-" + cmd.Type.String(),
	}
}

// Sent reports packets emitted so far.
func (f *Flood) Sent() uint64 { return f.sent }

// Start resolves the target's MAC and begins emitting packets.
func (f *Flood) Start() {
	f.ends = f.host.Now().Add(f.cmd.Duration)
	f.host.ResolveMAC(f.cmd.Target, func(mac packet.MAC, ok bool) {
		if !ok || f.ticker != nil {
			return
		}
		f.dstMAC = mac
		perTick := float64(f.cmd.PPS) * floodBatchInterval.Seconds()
		var credit float64
		f.ticker = f.host.Scheduler().Every(floodBatchInterval, func() {
			if f.host.Now() >= f.ends {
				f.Stop()
				if f.OnDone != nil {
					f.OnDone()
				}
				return
			}
			credit += perTick
			for ; credit >= 1; credit-- {
				f.emit()
			}
		})
	})
}

// Stop halts the flood immediately.
func (f *Flood) Stop() {
	if f.ticker != nil {
		f.ticker.Stop()
		f.ticker = nil
	}
}

// Running reports whether the flood is currently emitting.
func (f *Flood) Running() bool { return f.ticker != nil }

func (f *Flood) spoofedSource() packet.Addr {
	if f.spoof.Bits == 0 {
		return f.host.Addr()
	}
	n := f.spoof.NumHosts()
	return f.spoof.Host(uint32(f.rng.Intn(int(n))) + 1)
}

// originCtx opens a KindAttack origin span for one flood packet when the
// (randomized) flow is sampled; with tracing off it costs nothing.
func (f *Flood) originCtx(src packet.Addr, srcPort, dstPort uint16, proto uint8) trace.Context {
	tr := f.host.Tracer()
	if tr == nil {
		return trace.Context{}
	}
	fl := trace.Flow{
		Src: src.Uint32(), Dst: f.cmd.Target.Uint32(),
		SrcPort: srcPort, DstPort: dstPort, Proto: proto,
	}
	return tr.OriginKind(f.host.Now(), fl, trace.KindAttack, f.originName, f.host.Name())
}

func (f *Flood) emit() {
	f.sent++
	ip := packet.IPv4{
		TTL: 64,
		ID:  uint16(f.rng.Intn(65536)),
		Dst: f.cmd.Target,
	}
	switch f.cmd.Type {
	case AttackSYN:
		ip.Src = f.spoofedSource()
		tcp := packet.TCP{
			SrcPort: uint16(f.rng.Intn(64512) + 1024),
			DstPort: f.cmd.Port,
			Seq:     f.rng.Uint32(),
			Flags:   packet.FlagSYN,
			Window:  uint16(f.rng.Intn(65535) + 1),
		}
		oc := f.originCtx(ip.Src, tcp.SrcPort, tcp.DstPort, packet.ProtoTCP)
		f.host.SendRawCtx(packet.BuildTCP(f.host.MAC(), f.dstMAC, ip, tcp, nil), oc)
		oc.Finish(f.host.Now())
	case AttackACK:
		ip.Src = f.spoofedSource()
		tcp := packet.TCP{
			SrcPort: uint16(f.rng.Intn(64512) + 1024),
			DstPort: f.cmd.Port,
			Seq:     f.rng.Uint32(),
			Ack:     f.rng.Uint32(),
			Flags:   packet.FlagACK,
			Window:  uint16(f.rng.Intn(65535) + 1),
		}
		oc := f.originCtx(ip.Src, tcp.SrcPort, tcp.DstPort, packet.ProtoTCP)
		f.host.SendRawCtx(packet.BuildTCP(f.host.MAC(), f.dstMAC, ip, tcp, nil), oc)
		oc.Finish(f.host.Now())
	case AttackUDP:
		ip.Src = f.host.Addr()
		udp := packet.UDP{
			SrcPort: uint16(f.rng.Intn(64512) + 1024),
			DstPort: f.udpDstPort(),
		}
		oc := f.originCtx(ip.Src, udp.SrcPort, udp.DstPort, packet.ProtoUDP)
		f.host.SendRawCtx(packet.BuildUDP(f.host.MAC(), f.dstMAC, ip, udp, f.payload), oc)
		oc.Finish(f.host.Now())
	}
}

// udpDstPort randomizes the destination port when the command leaves it 0
// (Mirai's generic UDP flood sprays random ports), otherwise targets the
// commanded port.
func (f *Flood) udpDstPort() uint16 {
	if f.cmd.Port != 0 {
		return f.cmd.Port
	}
	return uint16(f.rng.Intn(64512) + 1024)
}
