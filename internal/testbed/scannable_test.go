package testbed

import (
	"testing"
	"time"
)

// TestScannablePlaneDefault pins the attacker's default probe space at the
// classic 254-address 10.0.2.0/24 plane regardless of fleet size: without
// Config.ScannableDevices, devices beyond the first 246 live outside the
// scanner's reach (they are benign-only extension capacity), and widening
// requests on fleets that fit the classic plane change nothing.
func TestScannablePlaneDefault(t *testing.T) {
	for _, tc := range []struct {
		name    string
		devices int
		limit   int
	}{
		{"small fleet", 8, 0},
		{"fleet beyond classic plane", 300, 0},
		{"widened but fleet fits classic plane", 8, 2048},
	} {
		tb, err := New(Config{Seed: 3, NumDevices: tc.devices, ScannableDevices: tc.limit})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := tb.Attacker().ScanSpan(); got != 254 {
			t.Fatalf("%s: scan span = %d, want classic 254", tc.name, got)
		}
	}
}

// TestScannablePlaneWidened checks the extension wiring: raising
// ScannableDevices past the classic 246-device plane extends the scanner
// with exactly the extension-plane addresses that exist, capped by the
// fleet size.
func TestScannablePlaneWidened(t *testing.T) {
	for _, tc := range []struct {
		name    string
		devices int
		limit   int
		want    int
	}{
		{"fully scannable fleet", 300, 300, 254 + (300 - 246)},
		{"partially widened", 300, 260, 254 + (260 - 246)},
		{"limit beyond fleet", 300, 2048, 254 + (300 - 246)},
	} {
		tb, err := New(Config{Seed: 3, NumDevices: tc.devices, ScannableDevices: tc.limit})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := tb.Attacker().ScanSpan(); got != tc.want {
			t.Fatalf("%s: scan span = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestExtendedPlaneInfection is the end-to-end satellite check: with the
// plane widened, the scan-and-infect pipeline must actually conscript
// devices living at extension addresses (10.4.0.0+), proving ARP/FDB
// wiring, scanner target selection and the loader all reach past the
// classic 246-device boundary.
func TestExtendedPlaneInfection(t *testing.T) {
	if testing.Short() {
		t.Skip("extension-plane campaign is slow")
	}
	tb, err := New(Config{
		Seed:             21,
		NumDevices:       250,
		ScannableDevices: 250,
		ScanInterval:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	if err := tb.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	extension := 0
	for i, d := range tb.Devices() {
		if i >= classicPlaneDevices && d.Device.Infected() {
			extension++
		}
	}
	if extension == 0 {
		t.Fatalf("no extension-plane device infected (fleet infected=%d)", tb.InfectedCount())
	}
}
