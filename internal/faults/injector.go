package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ddoshield/internal/container"
	"ddoshield/internal/netsim"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
)

// Target is one fault-injectable endpoint: a container and/or its uplink.
type Target struct {
	Name      string
	Container *container.Container
	Link      *netsim.Link
}

// Injector applies fault plans to registered targets. Every fault is
// domain-local by construction: Schedule resolves targets up front (while
// the simulation is single-threaded) and splits each event into sub-events
// placed directly on the scheduler that owns the touched state — the
// container's domain for crashes, each link end's domain for flaps and
// impairment windows, the switch's domain for partitions. A cross-domain
// link is therefore flapped by two sub-events at the same instant, one per
// side, and the whole campaign replays byte-identically whether the run is
// serial or partitioned.
type Injector struct {
	sched   *sim.Scheduler // reference clock for Schedule offsets (domain 0)
	seed    int64
	sw      *netsim.Switch
	targets []Target
	byName  map[string]int
	// counts holds one atomic counter per Kinds() entry; sub-events bump
	// them from their own domains, so they must be race-safe.
	counts [5]telemetry.Counter
	rec    *telemetry.Recorder
}

// NewInjector builds an injector. sw may be nil when partitions are unused.
func NewInjector(sched *sim.Scheduler, seed int64, sw *netsim.Switch) *Injector {
	return &Injector{
		sched:  sched,
		seed:   seed,
		sw:     sw,
		byName: make(map[string]int),
	}
}

// Register adds a named target. Registration order fixes the resolution
// order of globbed target lists, so register in a deterministic order.
func (in *Injector) Register(tg Target) {
	if _, dup := in.byName[tg.Name]; dup {
		return
	}
	in.byName[tg.Name] = len(in.targets)
	in.targets = append(in.targets, tg)
}

// RegisterContainer is Register sugar for a container and its uplink.
func (in *Injector) RegisterContainer(c *container.Container) {
	in.Register(Target{Name: c.Name(), Container: c, Link: c.Link()})
}

// Targets lists registered targets in registration order.
func (in *Injector) Targets() []Target {
	out := make([]Target, len(in.targets))
	copy(out, in.targets)
	return out
}

// resolve expands a name list (exact, trailing-* glob, or empty for all)
// into targets, in registration order, without duplicates.
func (in *Injector) resolve(names []string) []Target {
	if len(names) == 0 {
		return in.Targets()
	}
	picked := make([]bool, len(in.targets))
	for _, name := range names {
		if prefix, ok := strings.CutSuffix(name, "*"); ok {
			for i := range in.targets {
				if strings.HasPrefix(in.targets[i].Name, prefix) {
					picked[i] = true
				}
			}
			continue
		}
		if i, ok := in.byName[name]; ok {
			picked[i] = true
		}
	}
	var out []Target
	for i, p := range picked {
		if p {
			out = append(out, in.targets[i])
		}
	}
	return out
}

// Schedule arms every event of the plan relative to the current simulated
// instant. It may be called before the testbed starts (events in the past
// clamp to now) and more than once (plans compose) — but only while no
// simulation events are executing (before Run, or between Run calls),
// because it inserts sub-events onto every owning domain's scheduler
// directly. Targets are resolved here, at scheduling time.
func (in *Injector) Schedule(p Plan) {
	now := in.sched.Now()
	for _, e := range p.Events {
		at := now.Add(e.At)
		switch e.Kind {
		case LinkFlap:
			in.scheduleLinkFlap(at, e)
		case LinkImpair:
			in.scheduleLinkImpair(at, e)
		case Partition:
			in.schedulePartition(at, e)
		case Crash:
			for _, tg := range in.resolve(e.Targets) {
				in.scheduleKill(at, tg)
			}
		case CrashLoop:
			in.scheduleCrashLoop(at, e)
		}
	}
}

// SetTelemetry exposes the per-kind injection counters as registry metrics
// (faults_injections_total{kind=...}, evaluated at export time) and routes
// a trace event per injection into the flight recorder. Either argument
// may be nil.
func (in *Injector) SetTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder) {
	in.rec = rec
	for i, k := range Kinds() {
		c := &in.counts[i]
		reg.RegisterCounterFunc(c.Value, "faults_injections_total", telemetry.L("kind", string(k)))
	}
}

// kindIndex maps a kind to its counter slot (Kinds() order).
func kindIndex(k Kind) int {
	for i, kk := range Kinds() {
		if kk == k {
			return i
		}
	}
	return 0
}

// count tallies one injection of kind k against actor and mirrors it into
// the flight recorder. now must be the clock of the scheduler the firing
// sub-event runs on — in a partitioned run there is no other "now" the
// event may observe.
func (in *Injector) count(k Kind, actor string, now sim.Time) {
	c := &in.counts[kindIndex(k)]
	c.Inc()
	in.rec.Emit(now, telemetry.CatFault, string(k), actor, int64(c.Value()))
}

// containerSide reports which link side the target's container terminates
// (0 when unknown). The container-side sub-event is the one that counts
// the injection and guards its restore on container state — decisions that
// must run in the container's own domain.
func containerSide(tg Target) int {
	if tg.Container == nil || tg.Link == nil {
		return 0
	}
	if s := tg.Link.SideOf(tg.Container.Host().NIC()); s >= 0 {
		return s
	}
	return 0
}

// scheduleLinkFlap cuts each target link at at, one sub-event per side on
// the side's owning scheduler, restoring after Duration. Each sub-event
// reads and writes only its own side's state, so the two sides of a
// cross-domain link flap independently yet at identical instants.
func (in *Injector) scheduleLinkFlap(at sim.Time, e Event) {
	d := e.Duration
	if d <= 0 {
		d = 5 * time.Second
	}
	for _, tg := range in.resolve(e.Targets) {
		if tg.Link == nil {
			continue
		}
		link, c := tg.Link, tg.Container
		name := tg.Name
		ownSide := containerSide(tg)
		for side := 0; side < 2; side++ {
			side := side
			sched := link.SideScheduler(side)
			counting := side == ownSide
			sched.At(at, func() {
				if !link.UpSide(side) {
					return // already down (halted container or overlapping flap)
				}
				link.SetUpSide(side, false)
				if counting {
					in.count(LinkFlap, name, sched.Now())
				}
				sched.After(d, func() {
					// Do not re-cable a container that stopped in the
					// meantime; its next Start raises its side itself. The
					// far side always comes back — nothing else will raise
					// it.
					if counting && c != nil && c.State() != container.StateRunning {
						return
					}
					link.SetUpSide(side, true)
				})
			})
		}
	}
}

// scheduleLinkImpair installs the event's impairment set on each target
// link at at, one sub-event per side, restoring the side's previous set
// after Duration. Every (target, side) gets a private RNG stream — split
// off the event's RNG, or derived from the injector seed — fixed here at
// scheduling time, so the draw sequences are independent of event
// interleaving in either execution mode.
func (in *Injector) scheduleLinkImpair(at sim.Time, e Event) {
	for _, tg := range in.resolve(e.Targets) {
		if tg.Link == nil {
			continue
		}
		base := e.Impair.RNG
		if base == nil {
			base = sim.Substream(in.seed, "faults/impair/"+tg.Name)
		}
		link, name := tg.Link, tg.Name
		ownSide := containerSide(tg)
		for side := 0; side < 2; side++ {
			side := side
			imp := e.Impair
			imp.RNG = sim.NewRNG(base.Int63())
			sched := link.SideScheduler(side)
			counting := side == ownSide
			sched.At(at, func() {
				prev := link.ImpairmentsSide(side)
				link.SetImpairmentsSide(side, imp)
				if counting {
					in.count(LinkImpair, name, sched.Now())
				}
				if e.Duration > 0 {
					sched.After(e.Duration, func() { link.SetImpairmentsSide(side, prev) })
				}
			})
		}
	}
}

// schedulePartition groups the switch's ports at at and heals after
// Duration. Partitions touch only the switch's port-group table, so the
// whole event runs in the switch's domain; SetGroup ignores ports of other
// switches, which makes device uplinks in edge topologies no-ops.
func (in *Injector) schedulePartition(at sim.Time, e Event) {
	if in.sw == nil {
		return
	}
	groups := make([][]Target, len(e.Groups))
	for gi, names := range e.Groups {
		groups[gi] = in.resolve(names)
	}
	sched := in.sw.Scheduler()
	sched.At(at, func() {
		assigned := false
		for gi, tgs := range groups {
			for _, tg := range tgs {
				if tg.Link == nil {
					continue
				}
				for _, p := range tg.Link.Ends() {
					if in.sw.SetGroup(p, gi+1) {
						assigned = true
					}
				}
			}
		}
		if !assigned {
			return
		}
		in.count(Partition, in.sw.Name(), sched.Now())
		d := e.Duration
		if d <= 0 {
			d = 10 * time.Second
		}
		sched.After(d, func() { in.sw.ClearGroups() })
	})
}

// scheduleCrashLoop arms one self-rescheduling kill loop per target, each
// on its own container's scheduler, pacing at Every for Duration.
func (in *Injector) scheduleCrashLoop(at sim.Time, e Event) {
	every := e.Every
	if every <= 0 {
		every = time.Second
	}
	d := e.Duration
	if d <= 0 {
		d = 5 * time.Second
	}
	for _, tg := range in.resolve(e.Targets) {
		if tg.Container == nil {
			continue
		}
		tg := tg
		sched := tg.Container.Scheduler()
		deadline := at.Add(d)
		var tick func()
		tick = func() {
			in.kill(tg)
			if sched.Now() < deadline {
				sched.After(every, tick)
			}
		}
		sched.At(at, tick)
	}
}

// scheduleKill arms one kill on the target container's own scheduler.
func (in *Injector) scheduleKill(at sim.Time, tg Target) {
	if tg.Container == nil {
		return
	}
	tg.Container.Scheduler().At(at, func() { in.kill(tg) })
}

// kill crashes the target if it is running. Runs on the container's
// scheduler: the state check, the kill and the supervisor reaction are all
// container-domain-local.
func (in *Injector) kill(tg Target) {
	if tg.Container == nil || tg.Container.State() != container.StateRunning {
		return
	}
	tg.Container.Kill()
	in.count(Crash, tg.Name, tg.Container.Scheduler().Now())
}

// Counter is one per-kind injection count.
type Counter struct {
	Kind  Kind
	Count uint64
}

// Counters reports how many times each fault kind was injected, sorted by
// kind for deterministic iteration. Crash and CrashLoop kills share the
// Crash counter (each kill is one injection); flaps, impairment windows
// and partitions count one per affected link/switch.
func (in *Injector) Counters() []Counter {
	var out []Counter
	for i, k := range Kinds() {
		if v := in.counts[i].Value(); v > 0 {
			out = append(out, Counter{Kind: k, Count: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// CounterMap returns the nonzero counts keyed by kind string (a fresh copy).
func (in *Injector) CounterMap() map[string]uint64 {
	out := make(map[string]uint64)
	for i, k := range Kinds() {
		if v := in.counts[i].Value(); v > 0 {
			out[string(k)] = v
		}
	}
	return out
}

// String renders the counters as "kind=n kind=n", sorted, for summaries.
func (in *Injector) String() string {
	cs := in.Counters()
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprintf("%s=%d", c.Kind, c.Count)
	}
	return strings.Join(parts, " ")
}
