package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

func sampleFrame(n int) []byte {
	eth := packet.Ethernet{Dst: packet.MACFromUint64(1), Src: packet.MACFromUint64(2), Type: packet.EtherTypeIPv4}
	b := eth.Marshal(nil)
	for i := 0; i < n; i++ {
		b = append(b, byte(i))
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{sampleFrame(10), sampleFrame(100), sampleFrame(1000)}
	times := []sim.Time{0, 1500 * sim.Millisecond, 65 * sim.Second}
	for i, f := range frames {
		if err := w.WriteFrame(times[i], f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records", len(recs))
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Data, frames[i]) {
			t.Fatalf("record %d data mismatch", i)
		}
		if rec.OrigLen != len(frames[i]) {
			t.Fatalf("record %d OrigLen = %d", i, rec.OrigLen)
		}
		// Timestamps survive at microsecond resolution.
		if got, want := rec.Time/sim.Microsecond, times[i]/sim.Microsecond; got != want {
			t.Fatalf("record %d time = %v, want %v", i, rec.Time, times[i])
		}
	}
}

func TestGlobalHeaderFormat(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 4096); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("header length = %d", len(hdr))
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != MagicMicroseconds {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint16(hdr[4:6]) != 2 || binary.LittleEndian.Uint16(hdr[6:8]) != 4 {
		t.Fatal("bad version")
	}
	if binary.LittleEndian.Uint32(hdr[16:20]) != 4096 {
		t.Fatal("bad snaplen")
	}
	if binary.LittleEndian.Uint32(hdr[20:24]) != LinkTypeEthernet {
		t.Fatal("bad linktype")
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	frame := sampleFrame(200)
	if err := w.WriteFrame(sim.Second, frame); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 64 {
		t.Fatalf("captured %d bytes, want snaplen 64", len(rec.Data))
	}
	if rec.OrigLen != len(frame) {
		t.Fatalf("OrigLen = %d, want %d", rec.OrigLen, len(frame))
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	junk := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(junk)); err == nil {
		t.Fatal("accepted junk header")
	}
}

func TestReaderEOFCleanly(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next on empty capture = %v, want EOF", err)
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(0, sampleFrame(100)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestBufferTapCapturesLiveTraffic(t *testing.T) {
	s := sim.NewScheduler()
	net := netsim.New(s)
	a := net.NewNode("a").AddNIC()
	b := net.NewNode("b").AddNIC()
	l := net.Connect(a, b, netsim.LinkConfig{})
	b.SetHandler(func([]byte) {})
	cap := NewBuffer(0)
	l.AddTap(cap.Tap())
	f := sampleFrame(50)
	a.Send(f)
	a.Send(f)
	s.Drain()
	if cap.Len() != 2 {
		t.Fatalf("captured %d frames", cap.Len())
	}
	if cap.Records()[0].Time <= 0 {
		t.Fatal("capture timestamp missing")
	}
	cap.Reset()
	if cap.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestBufferLimit(t *testing.T) {
	cap := NewBuffer(2)
	tap := cap.Tap()
	for i := 0; i < 5; i++ {
		tap(sim.Time(i), sampleFrame(10))
	}
	if cap.Len() != 2 {
		t.Fatalf("limited buffer holds %d", cap.Len())
	}
}

func TestBufferWriteTo(t *testing.T) {
	cap := NewBuffer(0)
	tap := cap.Tap()
	tap(sim.Second, sampleFrame(30))
	tap(2*sim.Second, sampleFrame(40))
	var buf bytes.Buffer
	if _, err := cap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || len(recs[1].Data) != 40+packet.EthernetHeaderLen {
		t.Fatalf("round trip through WriteTo failed: %d records", len(recs))
	}
}

// failWriter errors after n bytes to exercise sticky error handling.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	w, err := NewWriter(&failWriter{n: 30}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(0, sampleFrame(100)); err == nil {
		t.Fatal("expected write error")
	}
	if err := w.WriteFrame(0, sampleFrame(100)); err == nil {
		t.Fatal("sticky error not preserved")
	}
	if w.Count() != 0 {
		t.Fatal("failed writes counted")
	}
}
