package netsim

import (
	"testing"
	"testing/quick"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// frame builds a minimal Ethernet frame with an n-byte payload.
func frame(src, dst packet.MAC, n int) []byte {
	eth := packet.Ethernet{Dst: dst, Src: src, Type: packet.EtherTypeIPv4}
	b := eth.Marshal(nil)
	return append(b, make([]byte, n)...)
}

func twoNodes(t *testing.T, cfg LinkConfig) (*sim.Scheduler, *NIC, *NIC) {
	t.Helper()
	s := sim.NewScheduler()
	net := New(s)
	a := net.NewNode("a").AddNIC()
	b := net.NewNode("b").AddNIC()
	net.Connect(a, b, cfg)
	return s, a, b
}

func TestLinkDeliversFrame(t *testing.T) {
	s, a, b := twoNodes(t, LinkConfig{})
	var got []byte
	b.SetHandler(func(raw []byte) { got = raw })
	f := frame(a.MAC(), b.MAC(), 100)
	a.Send(f)
	s.Drain()
	if got == nil {
		t.Fatal("frame not delivered")
	}
	if len(got) != len(f) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(f))
	}
}

func TestLinkLatencyModel(t *testing.T) {
	// 1000-byte frame at 1 Mb/s: serialization 8 ms, plus 2 ms propagation.
	s, a, b := twoNodes(t, LinkConfig{RateBps: 1_000_000, Delay: 2 * sim.Millisecond})
	var at sim.Time
	b.SetHandler(func(raw []byte) { at = s.Now() })
	f := frame(a.MAC(), b.MAC(), 1000-packet.EthernetHeaderLen)
	a.Send(f)
	s.Drain()
	want := 8*sim.Millisecond + 2*sim.Millisecond
	if at != want {
		t.Fatalf("arrival at %v, want %v", at, want)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	// Two 1000-byte frames at 1 Mb/s: second arrives one serialization
	// time after the first (transmitter busy).
	s, a, b := twoNodes(t, LinkConfig{RateBps: 1_000_000, Delay: sim.Millisecond})
	var arrivals []sim.Time
	b.SetHandler(func(raw []byte) { arrivals = append(arrivals, s.Now()) })
	f := frame(a.MAC(), b.MAC(), 1000-packet.EthernetHeaderLen)
	a.Send(f)
	a.Send(f)
	s.Drain()
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(arrivals))
	}
	if gap := arrivals[1] - arrivals[0]; gap != 8*sim.Millisecond {
		t.Fatalf("inter-arrival gap = %v, want 8ms", gap)
	}
}

func TestLinkDropTailQueue(t *testing.T) {
	// Queue capacity 2000 bytes: the first frame transmits immediately,
	// two queue, the rest drop.
	s, a, b := twoNodes(t, LinkConfig{RateBps: 1_000_000, QueueBytes: 2000})
	delivered := 0
	b.SetHandler(func(raw []byte) { delivered++ })
	f := frame(a.MAC(), b.MAC(), 1000-packet.EthernetHeaderLen)
	for i := 0; i < 10; i++ {
		a.Send(f)
	}
	s.Drain()
	if delivered != 3 {
		t.Fatalf("delivered %d frames, want 3 (1 in flight + 2 queued)", delivered)
	}
	_, _, drops := a.link.Stats()
	if drops != 7 {
		t.Fatalf("drops = %d, want 7", drops)
	}
}

func TestLinkRandomLoss(t *testing.T) {
	s, a, b := twoNodes(t, LinkConfig{LossProb: 0.5, RNG: sim.NewRNG(1)})
	delivered := 0
	b.SetHandler(func(raw []byte) { delivered++ })
	f := frame(a.MAC(), b.MAC(), 64)
	const n = 1000
	for i := 0; i < n; i++ {
		a.Send(f)
	}
	s.Drain()
	if delivered < 400 || delivered > 600 {
		t.Fatalf("delivered %d/%d with 50%% loss", delivered, n)
	}
}

func TestLinkDownDropsTraffic(t *testing.T) {
	s, a, b := twoNodes(t, LinkConfig{})
	delivered := 0
	b.SetHandler(func(raw []byte) { delivered++ })
	a.link.SetUp(false)
	a.Send(frame(a.MAC(), b.MAC(), 64))
	s.Drain()
	if delivered != 0 {
		t.Fatal("frame delivered over a down link")
	}
	a.link.SetUp(true)
	a.Send(frame(a.MAC(), b.MAC(), 64))
	s.Drain()
	if delivered != 1 {
		t.Fatal("frame lost after link restored")
	}
}

func TestUnattachedNICDoesNotPanic(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	nic := net.NewNode("lone").AddNIC()
	if nic.Attached() {
		t.Fatal("Attached() true for unwired NIC")
	}
	nic.Send(frame(nic.MAC(), packet.BroadcastMAC, 10)) // must not panic
	s.Drain()
}

func TestNICStats(t *testing.T) {
	s, a, b := twoNodes(t, LinkConfig{})
	b.SetHandler(func(raw []byte) {})
	f := frame(a.MAC(), b.MAC(), 86) // 100 bytes on the wire
	a.Send(f)
	a.Send(f)
	s.Drain()
	_, _, txF, txB := a.Stats()
	rxF, rxB, _, _ := b.Stats()
	if txF != 2 || txB != 200 {
		t.Fatalf("a tx = %d frames / %d bytes", txF, txB)
	}
	if rxF != 2 || rxB != 200 {
		t.Fatalf("b rx = %d frames / %d bytes", rxF, rxB)
	}
}

func TestTapSeesDeliveredFrames(t *testing.T) {
	s, a, b := twoNodes(t, LinkConfig{})
	b.SetHandler(func(raw []byte) {})
	var tapped []sim.Time
	a.link.AddTap(func(at sim.Time, raw []byte) { tapped = append(tapped, at) })
	a.Send(frame(a.MAC(), b.MAC(), 64))
	s.Drain()
	if len(tapped) != 1 {
		t.Fatalf("tap saw %d frames, want 1", len(tapped))
	}
}

func buildStar(t *testing.T) (*sim.Scheduler, *Switch, []*NIC) {
	t.Helper()
	s := sim.NewScheduler()
	net := New(s)
	sw := net.NewSwitch("sw0")
	nics := make([]*NIC, 4)
	for i := range nics {
		nics[i] = net.NewNode("host").AddNIC()
		net.Connect(nics[i], sw.NewPort(), LinkConfig{})
	}
	return s, sw, nics
}

func TestSwitchFloodsUnknownThenLearns(t *testing.T) {
	s, sw, nics := buildStar(t)
	counts := make([]int, len(nics))
	for i, nic := range nics {
		i := i
		nic.SetHandler(func(raw []byte) { counts[i]++ })
	}
	// First frame 0->1: destination unknown, flooded to 1,2,3.
	nics[0].Send(frame(nics[0].MAC(), nics[1].MAC(), 64))
	s.Drain()
	if counts[1] != 1 || counts[2] != 1 || counts[3] != 1 {
		t.Fatalf("flood counts = %v", counts)
	}
	// Reply 1->0: 1's frame teaches the switch where 0 is... 0 was already
	// learned from the first frame, so this goes only to 0.
	nics[1].Send(frame(nics[1].MAC(), nics[0].MAC(), 64))
	s.Drain()
	if counts[0] != 1 || counts[2] != 1 || counts[3] != 1 {
		t.Fatalf("after learned unicast, counts = %v", counts)
	}
	// Now 0->1 again: learned, delivered only to 1.
	nics[0].Send(frame(nics[0].MAC(), nics[1].MAC(), 64))
	s.Drain()
	if counts[1] != 2 || counts[2] != 1 || counts[3] != 1 {
		t.Fatalf("after second frame, counts = %v", counts)
	}
	fwd, flooded := sw.Stats()
	if fwd != 2 || flooded != 1 {
		t.Fatalf("switch stats forwarded=%d flooded=%d, want 2/1", fwd, flooded)
	}
}

func TestSwitchBroadcast(t *testing.T) {
	s, _, nics := buildStar(t)
	counts := make([]int, len(nics))
	for i, nic := range nics {
		i := i
		nic.SetHandler(func(raw []byte) { counts[i]++ })
	}
	nics[2].Send(frame(nics[2].MAC(), packet.BroadcastMAC, 64))
	s.Drain()
	if counts[0] != 1 || counts[1] != 1 || counts[3] != 1 || counts[2] != 0 {
		t.Fatalf("broadcast counts = %v", counts)
	}
}

func TestSwitchTapSeesEachIngressOnce(t *testing.T) {
	s, sw, nics := buildStar(t)
	for _, nic := range nics {
		nic.SetHandler(func(raw []byte) {})
	}
	tapped := 0
	sw.AddTap(func(at sim.Time, raw []byte) { tapped++ })
	// Broadcast fans out to 3 ports but the tap must fire once.
	nics[0].Send(frame(nics[0].MAC(), packet.BroadcastMAC, 64))
	s.Drain()
	if tapped != 1 {
		t.Fatalf("tap fired %d times, want 1", tapped)
	}
}

func TestSwitchForget(t *testing.T) {
	s, sw, nics := buildStar(t)
	counts := make([]int, len(nics))
	for i, nic := range nics {
		i := i
		nic.SetHandler(func(raw []byte) { counts[i]++ })
	}
	nics[0].Send(frame(nics[0].MAC(), nics[1].MAC(), 64))
	s.Drain()
	sw.Forget()
	// After Forget, 1->0 floods again.
	nics[1].Send(frame(nics[1].MAC(), nics[0].MAC(), 64))
	s.Drain()
	if counts[2] != 2 || counts[3] != 2 {
		t.Fatalf("after Forget, flood did not reach all: %v", counts)
	}
}

func TestDecodeTap(t *testing.T) {
	s, a, b := twoNodes(t, LinkConfig{})
	b.SetHandler(func(raw []byte) {})
	var pkts []*packet.Packet
	a.link.AddTap(DecodeTap(func(p *packet.Packet) { pkts = append(pkts, p) }))
	raw := packet.BuildUDP(a.MAC(), b.MAC(),
		packet.IPv4{TTL: 64, Src: packet.MustParseAddr("10.0.0.1"), Dst: packet.MustParseAddr("10.0.0.2")},
		packet.UDP{SrcPort: 1, DstPort: 2}, []byte("x"))
	a.Send(raw)
	s.Drain()
	if len(pkts) != 1 || !pkts[0].HasUDP {
		t.Fatalf("decode tap failed: %v", pkts)
	}
}

func TestNodeNaming(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	n1 := net.NewNode("dev")
	n2 := net.NewNode("dev") // duplicate gets suffixed
	if n1.Name() == n2.Name() {
		t.Fatalf("duplicate node names: %q vs %q", n1.Name(), n2.Name())
	}
	if len(net.Nodes()) != 2 {
		t.Fatalf("Nodes() = %d", len(net.Nodes()))
	}
}

func TestMultiNICNode(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	router := net.NewNode("router")
	n0, n1 := router.AddNIC(), router.AddNIC()
	if router.NIC(0) != n0 || router.NIC(1) != n1 || router.NIC(2) != nil {
		t.Fatal("NIC indexing broken")
	}
	if n0.MAC() == n1.MAC() {
		t.Fatal("NICs share a MAC")
	}
	if len(router.NICs()) != 2 {
		t.Fatal("NICs() length")
	}
}

// Property: on a single link, every sent frame is either delivered,
// dropped at the queue, or lost to random loss — nothing vanishes and
// nothing is duplicated.
func TestLinkConservationProperty(t *testing.T) {
	f := func(sizes []uint8, lossSeed int64) bool {
		if len(sizes) == 0 {
			return true
		}
		s := sim.NewScheduler()
		net := New(s)
		a := net.NewNode("a").AddNIC()
		b := net.NewNode("b").AddNIC()
		net.Connect(a, b, LinkConfig{
			RateBps:    1_000_000,
			QueueBytes: 4096,
			LossProb:   0.1,
			RNG:        sim.NewRNG(lossSeed),
		})
		delivered := 0
		b.SetHandler(func(raw []byte) { delivered++ })
		for _, sz := range sizes {
			a.Send(frame(a.MAC(), b.MAC(), int(sz)))
		}
		s.Drain()
		tx, _, drops := a.link.Stats()
		return uint64(delivered) == tx-a.link.dirs[0].lossFrames.Value() &&
			uint64(delivered)+drops == uint64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHopPathAllocFree pins the steady-state hop path — NIC tx, link
// serialization/propagation, switch forwarding, second link, NIC rx — at
// zero allocations per delivered frame. The transmit-done handler is
// pre-bound per direction and delivery events are pooled; a regression
// here silently multiplies GC pressure by the fleet's packet rate.
func TestHopPathAllocFree(t *testing.T) {
	s, _, nics := buildStar(t)
	delivered := 0
	for _, nic := range nics {
		nic.SetHandler(func([]byte) { delivered++ })
	}
	ab := frame(nics[0].MAC(), nics[1].MAC(), 100)
	ba := frame(nics[1].MAC(), nics[0].MAC(), 0)
	// Teach the switch both MACs so the measured loop forwards, and warm
	// the event/arrival pools.
	nics[0].Send(ab)
	nics[1].Send(ba)
	s.Drain()
	allocs := testing.AllocsPerRun(200, func() {
		nics[0].Send(ab)
		s.Drain()
	})
	if allocs != 0 {
		t.Fatalf("hop path allocates %.1f times per frame, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("no frames delivered")
	}
}
