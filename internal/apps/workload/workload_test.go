package workload

import (
	"testing"
	"time"

	"ddoshield/internal/netsim"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

func TestPoissonProcessRate(t *testing.T) {
	s := sim.NewScheduler()
	rng := sim.NewRNG(1)
	n := 0
	p := NewPoisson(s, rng, time.Second, func() { n++ })
	p.Start()
	if err := s.Run(1000 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if n < 900 || n > 1100 {
		t.Fatalf("arrivals over 1000s at mean 1s = %d", n)
	}
	if p.Fired() != uint64(n) {
		t.Fatalf("Fired() = %d, want %d", p.Fired(), n)
	}
}

func TestProcessStop(t *testing.T) {
	s := sim.NewScheduler()
	rng := sim.NewRNG(2)
	n := 0
	var p *Process
	p = NewUniform(s, rng, time.Second, 2*time.Second, func() {
		n++
		if n == 5 {
			p.Stop()
		}
	})
	p.Start()
	p.Start() // idempotent
	if err := s.Run(100 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("arrivals after Stop = %d, want 5", n)
	}
}

func TestUniformProcessBounds(t *testing.T) {
	s := sim.NewScheduler()
	rng := sim.NewRNG(3)
	var gaps []sim.Time
	last := sim.Time(0)
	p := NewUniform(s, rng, time.Second, 3*time.Second, func() {
		gaps = append(gaps, s.Now()-last)
		last = s.Now()
	})
	p.Start()
	if err := s.Run(100 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, g := range gaps {
		if g < sim.Second || g >= 3*sim.Second {
			t.Fatalf("gap %v outside [1s,3s)", g)
		}
	}
	if len(gaps) < 30 {
		t.Fatalf("too few arrivals: %d", len(gaps))
	}
}

func TestLineReaderSplitsLines(t *testing.T) {
	var lines []string
	lr := &LineReader{OnLine: func(l string) { lines = append(lines, l) }}
	lr.Feed([]byte("USER admin\r\nPA"))
	lr.Feed([]byte("SS secret\r\n"))
	lr.Feed([]byte("plain-lf\n"))
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "USER admin" || lines[1] != "PASS secret" || lines[2] != "plain-lf" {
		t.Fatalf("lines = %v", lines)
	}
}

func TestLineReaderMaxLine(t *testing.T) {
	n := 0
	lr := &LineReader{MaxLine: 10, OnLine: func(string) { n++ }}
	lr.Feed(make([]byte, 100)) // no newline, over cap: discarded
	lr.Feed([]byte("ok\n"))
	if n != 1 {
		t.Fatalf("lines after poisoned buffer = %d, want 1", n)
	}
}

func TestLineReaderMultipleLinesOneFeed(t *testing.T) {
	var lines []string
	lr := &LineReader{OnLine: func(l string) { lines = append(lines, l) }}
	lr.Feed([]byte("a\r\nb\r\nc\r\n"))
	if len(lines) != 3 || lines[2] != "c" {
		t.Fatalf("lines = %v", lines)
	}
}

func TestChunkerStreamsAtInterval(t *testing.T) {
	s, conn, received := chunkerRig(t)
	ck := NewChunker(s, conn, 10000, 1000, 100*time.Millisecond)
	done := false
	ck.OnDone = func() { done = true }
	ck.Start()
	ck.Start() // idempotent
	if err := s.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("chunker never finished")
	}
	if ck.Remaining() != 0 {
		t.Fatalf("Remaining = %d", ck.Remaining())
	}
	if *received != 10000 {
		t.Fatalf("received %d of 10000", *received)
	}
}

func TestChunkerStop(t *testing.T) {
	s, conn, received := chunkerRig(t)
	ck := NewChunker(s, conn, 100000, 1000, 100*time.Millisecond)
	ck.Start()
	if err := s.Run(1 * sim.Second); err != nil {
		t.Fatal(err)
	}
	ck.Stop()
	got := *received
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if *received != got {
		t.Fatal("chunker kept streaming after Stop")
	}
	if ck.Remaining() == 0 {
		t.Fatal("Remaining should be nonzero after early stop")
	}
}

func TestChunkerStopsWhenConnDies(t *testing.T) {
	s, conn, _ := chunkerRig(t)
	ck := NewChunker(s, conn, 100000, 1000, 100*time.Millisecond)
	done := false
	ck.OnDone = func() { done = true }
	ck.Start()
	if err := s.Run(1 * sim.Second); err != nil {
		t.Fatal(err)
	}
	conn.Abort()
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("chunker did not finish after the connection died")
	}
}

// chunkerRig builds an established TCP connection and returns the sending
// side plus a counter of bytes received at the peer.
func chunkerRig(t *testing.T) (*sim.Scheduler, *netstack.Conn, *int) {
	t.Helper()
	s := sim.NewScheduler()
	net := netsim.New(s)
	sw := net.NewSwitch("sw")
	subnet := packet.MustParsePrefix("10.0.0.0/24")
	mk := func(n uint32) *netstack.Host {
		nic := net.NewNode("h").AddNIC()
		net.Connect(nic, sw.NewPort(), netsim.LinkConfig{})
		return netstack.NewHost(nic, netstack.HostConfig{Addr: subnet.Host(n), Subnet: subnet, Seed: int64(n)})
	}
	a, b := mk(1), mk(2)
	received := new(int)
	if _, err := b.ListenTCP(80, 0, func(c *netstack.Conn) {
		c.OnData = func(d []byte) { *received += len(d) }
	}); err != nil {
		t.Fatal(err)
	}
	conn := a.DialTCP(b.Addr(), 80)
	if err := s.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if conn.State() != netstack.StateEstablished {
		t.Fatal("connection not established")
	}
	return s, conn, received
}

func TestAttachLines(t *testing.T) {
	s, conn, _ := chunkerRig(t)
	_ = s
	var lines []string
	lr := AttachLines(conn, func(l string) { lines = append(lines, l) })
	lr.Feed([]byte("via reader\r\n"))
	conn.OnData([]byte("via conn\r\n"))
	if len(lines) != 2 || lines[1] != "via conn" {
		t.Fatalf("lines = %v", lines)
	}
}
