package netstack

import (
	"bytes"
	"testing"
	"testing/quick"

	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

func TestSimultaneousClose(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	client, server := hosts[0], hosts[1]
	var serverConn *Conn
	serverClosed, clientClosed := false, false
	if _, err := server.ListenTCP(80, 0, func(c *Conn) {
		serverConn = c
		c.OnClose = func(err error) { serverClosed = true }
	}); err != nil {
		t.Fatal(err)
	}
	c := client.DialTCP(server.Addr(), 80)
	c.OnClose = func(err error) { clientClosed = true }
	c.OnConnect = func() {
		// Wait for the server's accept (the final ACK is still in flight
		// when the client connects), then close both ends in the same
		// instant: the FINs cross on the wire.
		client.Scheduler().After(10*sim.Millisecond.Duration(), func() {
			c.Close()
			serverConn.Close()
		})
	}
	if err := s.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !clientClosed || !serverClosed {
		t.Fatalf("simultaneous close did not complete: client=%v server=%v",
			clientClosed, serverClosed)
	}
}

func TestServerInitiatedClose(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	client, server := hosts[0], hosts[1]
	if _, err := server.ListenTCP(80, 0, func(c *Conn) {
		c.Send([]byte("bye"))
		c.Close()
	}); err != nil {
		t.Fatal(err)
	}
	c := client.DialTCP(server.Addr(), 80)
	var got []byte
	sawRemoteClose := false
	c.OnData = func(d []byte) { got = append(got, d...) }
	c.OnRemoteClose = func() {
		sawRemoteClose = true
		c.Close()
	}
	if err := s.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if string(got) != "bye" || !sawRemoteClose {
		t.Fatalf("got=%q remoteClose=%v", got, sawRemoteClose)
	}
	if c.State() != StateClosed && c.State() != StateTimeWait {
		t.Fatalf("client state = %v", c.State())
	}
}

func TestListenerCloseStopsNewConnections(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	client, server := hosts[0], hosts[1]
	accepted := 0
	l, err := server.ListenTCP(80, 0, func(c *Conn) { accepted++ })
	if err != nil {
		t.Fatal(err)
	}
	c1 := client.DialTCP(server.Addr(), 80)
	_ = c1
	if err := s.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if accepted != 1 {
		t.Fatalf("accepted = %d", accepted)
	}
	l.Close()
	c2 := client.DialTCP(server.Addr(), 80)
	var refused error
	c2.OnClose = func(err error) { refused = err }
	if err := s.RunFor((30 * sim.Second).Duration()); err != nil {
		t.Fatal(err)
	}
	if accepted != 1 {
		t.Fatal("closed listener accepted a connection")
	}
	if refused != ErrRefused {
		t.Fatalf("dial to closed listener: %v", refused)
	}
	// The port can be rebound after close.
	if _, err := server.ListenTCP(80, 0, nil); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestSendBeforeConnectIsBuffered(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	client, server := hosts[0], hosts[1]
	var got []byte
	if _, err := server.ListenTCP(80, 0, func(c *Conn) {
		c.OnData = func(d []byte) { got = append(got, d...) }
	}); err != nil {
		t.Fatal(err)
	}
	c := client.DialTCP(server.Addr(), 80)
	// Queue data immediately, before the handshake completes.
	c.Send([]byte("early"))
	if err := s.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if string(got) != "early" {
		t.Fatalf("got %q", got)
	}
}

func TestZeroLengthSendNoop(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	client, server := hosts[0], hosts[1]
	if _, err := server.ListenTCP(80, 0, nil); err != nil {
		t.Fatal(err)
	}
	c := client.DialTCP(server.Addr(), 80)
	c.OnConnect = func() { c.Send(nil) }
	if err := s.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	sent, _, _ := c.Stats()
	if sent != 0 {
		t.Fatalf("zero-length send transmitted %d bytes", sent)
	}
}

func TestAbortIdempotent(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	client, server := hosts[0], hosts[1]
	if _, err := server.ListenTCP(80, 0, nil); err != nil {
		t.Fatal(err)
	}
	c := client.DialTCP(server.Addr(), 80)
	closes := 0
	c.OnClose = func(err error) { closes++ }
	c.OnConnect = func() {
		c.Abort()
		c.Abort()
		c.Close() // after abort: all no-ops
	}
	if err := s.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if closes != 1 {
		t.Fatalf("OnClose fired %d times", closes)
	}
}

func TestInterleavedBidirectionalTransfer(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	client, server := hosts[0], hosts[1]
	const chunk = 10_000
	var atServer, atClient []byte
	if _, err := server.ListenTCP(80, 0, func(c *Conn) {
		c.OnData = func(d []byte) {
			atServer = append(atServer, d...)
			c.Send(d) // echo
		}
	}); err != nil {
		t.Fatal(err)
	}
	c := client.DialTCP(server.Addr(), 80)
	payload := bytes.Repeat([]byte("x"), chunk)
	c.OnData = func(d []byte) { atClient = append(atClient, d...) }
	c.OnConnect = func() { c.Send(payload) }
	if err := s.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(atServer) != chunk || len(atClient) != chunk {
		t.Fatalf("echo lengths: server=%d client=%d", len(atServer), len(atClient))
	}
}

// Property: any payload (1..8 KiB of arbitrary bytes) survives a TCP
// transfer over a clean link bit-for-bit.
func TestTCPTransferProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 8192 {
			data = data[:8192]
		}
		s, hosts := lanQuiet(2)
		client, server := hosts[0], hosts[1]
		var got []byte
		if _, err := server.ListenTCP(80, 0, func(c *Conn) {
			c.OnData = func(d []byte) { got = append(got, d...) }
		}); err != nil {
			return false
		}
		c := client.DialTCP(server.Addr(), 80)
		c.OnConnect = func() { c.Send(data) }
		if err := s.Run(60 * sim.Second); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// lanQuiet is lan without a *testing.T (for property functions).
func lanQuiet(n int) (*sim.Scheduler, []*Host) {
	s := sim.NewScheduler()
	net := netsim.New(s)
	sw := net.NewSwitch("sw0")
	subnet := packet.MustParsePrefix("10.0.0.0/24")
	hosts := make([]*Host, n)
	for i := 0; i < n; i++ {
		nic := net.NewNode("h").AddNIC()
		net.Connect(nic, sw.NewPort(), netsim.LinkConfig{})
		hosts[i] = NewHost(nic, HostConfig{
			Addr:   subnet.Host(uint32(i + 1)),
			Subnet: subnet,
			Seed:   int64(100 + i),
		})
	}
	return s, hosts
}
