package botnet

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"ddoshield/internal/apps/workload"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// TelnetPort is the service the scanner probes and the loader infects over.
const TelnetPort = 23

// ScanRange is one contiguous extra address block the scanner probes in
// addition to TargetRange. Fleet-scale extension planes are contiguous but
// not prefix-aligned, hence a base+count pair rather than a CIDR prefix.
type ScanRange struct {
	// Base is the first probed address of the block.
	Base packet.Addr
	// Count is how many consecutive addresses the block spans.
	Count uint32
}

// AttackerConfig tunes the scan-and-infect pipeline.
type AttackerConfig struct {
	// TargetRange is the address space the scanner probes.
	TargetRange packet.Prefix
	// ExtraRanges widens the scanner's probe space beyond TargetRange
	// (the testbed's 10.4.0.0+ extension device plane). Targets are drawn
	// uniformly over TargetRange plus every extra range; with no extras,
	// target selection is bit-for-bit the classic single-range draw.
	ExtraRanges []ScanRange
	// C2Addr/C2Port are handed to infected devices in the INSTALL command.
	C2Addr packet.Addr
	C2Port uint16
	// MeanProbeInterval paces the scanner (default 500 ms between probes).
	MeanProbeInterval time.Duration
	// Dictionary is the credential list (default DefaultDictionary).
	Dictionary []Credential
	// CredsPerConnection bounds login attempts per telnet session
	// (default 3, matching the device's retry allowance).
	CredsPerConnection int
	// ReinfectCooldown is how long the loader leaves a freshly infected
	// target alone before probing it again (default 10 min). A rebooted
	// device is therefore re-conscripted on the next sweep after its
	// cooldown, not instantly.
	ReinfectCooldown time.Duration
	// Seed drives target selection.
	Seed int64
}

func (cfg AttackerConfig) withDefaults() AttackerConfig {
	if cfg.MeanProbeInterval <= 0 {
		cfg.MeanProbeInterval = 500 * time.Millisecond
	}
	if len(cfg.Dictionary) == 0 {
		cfg.Dictionary = DefaultDictionary
	}
	if cfg.CredsPerConnection <= 0 {
		cfg.CredsPerConnection = 3
	}
	if cfg.ReinfectCooldown <= 0 {
		cfg.ReinfectCooldown = 10 * time.Minute
	}
	if cfg.C2Port == 0 {
		cfg.C2Port = DefaultC2Port
	}
	return cfg
}

// Attacker is the scan-and-infect component: a Mirai-style telnet
// dictionary scanner plus the loader that plants the bot on cracked
// devices. It runs in the Attacker container of the testbed.
type Attacker struct {
	cfg  AttackerConfig
	host *netstack.Host
	rng  *sim.RNG
	proc *workload.Process
	// nextCred remembers the dictionary position per target so successive
	// probes continue where the last connection left off.
	nextCred map[packet.Addr]int
	inflight map[packet.Addr]bool
	// cooldown holds per-target instants before which re-probing is skipped.
	cooldown map[packet.Addr]sim.Time

	// OnInfected fires after a successful INSTALL.
	OnInfected func(addr packet.Addr, cred Credential)

	probes     uint64
	connects   uint64
	cracked    uint64
	infections uint64
}

// NewAttacker returns an unstarted attacker.
func NewAttacker(cfg AttackerConfig) *Attacker {
	cfg = cfg.withDefaults()
	return &Attacker{
		cfg:      cfg,
		rng:      sim.Substream(cfg.Seed, "attacker"),
		nextCred: make(map[packet.Addr]int),
		inflight: make(map[packet.Addr]bool),
		cooldown: make(map[packet.Addr]sim.Time),
	}
}

// Attach starts scanning from the given host.
func (a *Attacker) Attach(h *netstack.Host) {
	a.host = h
	a.proc = workload.NewPoisson(h.Scheduler(), a.rng, a.cfg.MeanProbeInterval, a.probe)
	a.proc.Start()
}

// Detach stops the scanner (sessions in flight finish naturally).
func (a *Attacker) Detach() {
	if a.proc != nil {
		a.proc.Stop()
		a.proc = nil
	}
}

// Stats reports probes launched, telnet connects, credentials cracked and
// completed infections.
func (a *Attacker) Stats() (probes, connects, cracked, infections uint64) {
	return a.probes, a.connects, a.cracked, a.infections
}

// ScanSpan reports how many distinct addresses the scanner draws targets
// from: TargetRange's hosts plus every extra range. The classic
// 10.0.2.0/24 configuration spans exactly 254.
func (a *Attacker) ScanSpan() int {
	n := int(a.cfg.TargetRange.NumHosts())
	if n < 0 {
		n = 0
	}
	for _, r := range a.cfg.ExtraRanges {
		n += int(r.Count)
	}
	return n
}

// probe picks a random target and attempts the dictionary against it. The
// draw is one uniform pick over the concatenated ranges, so a single-range
// attacker consumes its RNG stream exactly as it always has.
func (a *Attacker) probe() {
	n := int(a.cfg.TargetRange.NumHosts())
	if n < 0 {
		n = 0
	}
	total := a.ScanSpan()
	if total <= 0 {
		return
	}
	k := a.rng.Intn(total)
	var target packet.Addr
	if k < n {
		target = a.cfg.TargetRange.Host(uint32(k) + 1)
	} else {
		k -= n
		for _, r := range a.cfg.ExtraRanges {
			if k < int(r.Count) {
				target = packet.AddrFromUint32(r.Base.Uint32() + uint32(k))
				break
			}
			k -= int(r.Count)
		}
	}
	if target == a.host.Addr() || target == a.cfg.C2Addr || a.inflight[target] {
		return
	}
	if until, ok := a.cooldown[target]; ok && a.host.Now() < until {
		return
	}
	start := a.nextCred[target]
	if start >= len(a.cfg.Dictionary) {
		return // dictionary exhausted against this host
	}
	a.probes++
	a.inflight[target] = true
	creds := a.cfg.Dictionary[start:min(start+a.cfg.CredsPerConnection, len(a.cfg.Dictionary))]
	sess := &telnetSession{
		host:      a.host,
		creds:     creds,
		onConnect: func() { a.connects++ },
		onShell:   func(conn *netstack.Conn) { conn.Close() },
		onDone: func(cred Credential, ok bool, tried int) {
			a.nextCred[target] = start + tried
			if !ok {
				delete(a.inflight, target)
				return
			}
			a.cracked++
			a.nextCred[target] = 0 // re-probe succeeds fast after reboot
			a.cooldown[target] = a.host.Now().Add(a.cfg.ReinfectCooldown)
			a.infect(target, cred)
		},
	}
	sess.dial(target)
}

// infect logs back into a cracked device and plants the bot.
func (a *Attacker) infect(target packet.Addr, cred Credential) {
	install := fmt.Sprintf("INSTALL %s %d", a.cfg.C2Addr, a.cfg.C2Port)
	sess := &telnetSession{
		host:  a.host,
		creds: []Credential{cred},
		onShell: func(conn *netstack.Conn) {
			conn.Send([]byte(install + "\r\n"))
		},
		onLine: func(conn *netstack.Conn, line string) {
			if strings.TrimSpace(line) == "OK" {
				a.infections++
				if a.OnInfected != nil {
					a.OnInfected(target, cred)
				}
				conn.Send([]byte("exit\r\n"))
				conn.Close()
			}
		},
		onDone: func(Credential, bool, int) {
			delete(a.inflight, target)
		},
	}
	sess.dial(target)
}

// telnetSession is an expect-style client for the devices' telnet service:
// it answers "login: " and "Password: " prompts from a credential list and
// detects the "$ " shell prompt.
type telnetSession struct {
	host  *netstack.Host
	creds []Credential
	// onConnect fires when the TCP connection completes.
	onConnect func()
	// onShell fires at the shell prompt (successful login).
	onShell func(conn *netstack.Conn)
	// onLine receives shell-mode output lines after login.
	onLine func(conn *netstack.Conn, line string)
	// onDone reports the final outcome exactly once: the winning credential
	// (ok=true) or failure, plus how many credentials were conclusively
	// rejected or accepted.
	onDone func(cred Credential, ok bool, tried int)

	conn     *netstack.Conn
	buf      bytes.Buffer
	idx      int
	phase    int // 0 waiting login prompt, 1 waiting password prompt, 2 waiting verdict, 3 shell
	lines    workload.LineReader
	reported bool
}

func (s *telnetSession) dial(target packet.Addr) {
	conn := s.host.DialTCP(target, TelnetPort)
	s.conn = conn
	conn.OnConnect = func() {
		if s.onConnect != nil {
			s.onConnect()
		}
	}
	conn.OnData = s.feed
	conn.OnRemoteClose = func() { conn.Close() }
	conn.OnClose = func(err error) { s.finish(Credential{}, false) }
	s.lines.OnLine = func(line string) {
		if s.onLine != nil {
			s.onLine(conn, line)
		}
	}
}

func (s *telnetSession) finish(cred Credential, ok bool) {
	if s.reported {
		return
	}
	s.reported = true
	tried := s.idx
	if ok {
		tried = s.idx + 1
	}
	if s.onDone != nil {
		s.onDone(cred, ok, tried)
	}
}

func (s *telnetSession) feed(data []byte) {
	if s.phase == 3 {
		s.lines.Feed(data)
		return
	}
	s.buf.Write(data)
	for {
		b := s.buf.Bytes()
		switch s.phase {
		case 0: // expect "login: "
			i := bytes.Index(b, []byte("login: "))
			if i < 0 {
				return
			}
			s.buf.Next(i + len("login: "))
			if s.idx >= len(s.creds) {
				s.conn.Close()
				s.finish(Credential{}, false)
				return
			}
			s.conn.Send([]byte(s.creds[s.idx].User + "\r\n"))
			s.phase = 1
		case 1: // expect "Password: "
			i := bytes.Index(b, []byte("Password: "))
			if i < 0 {
				return
			}
			s.buf.Next(i + len("Password: "))
			s.conn.Send([]byte(s.creds[s.idx].Pass + "\r\n"))
			s.phase = 2
		case 2: // expect "$ " (success) or another "login: " (failure)
			if i := bytes.Index(b, []byte("$ ")); i >= 0 {
				s.buf.Next(i + 2)
				s.phase = 3
				cred := s.creds[s.idx]
				s.finish(cred, true)
				if s.onShell != nil {
					s.onShell(s.conn)
				}
				return
			}
			if i := bytes.Index(b, []byte("incorrect")); i >= 0 {
				s.buf.Next(i + len("incorrect"))
				s.idx++
				s.phase = 0
				continue
			}
			return
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
