package scenario

import (
	"strings"
	"testing"
	"time"

	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

const sample = `{
  "name": "smoke",
  "seed": 7,
  "devices": 6,
  "durationSec": 120,
  "meanThinkSec": 2,
  "scanIntervalMillis": 100,
  "churn": {"enabled": true, "meanUpSec": 60, "meanDownSec": 3},
  "link": {"rateMbps": 50, "delayMs": 2, "queueKB": 64, "lossProb": 0.01},
  "attacks": [
    {"atSec": 60, "type": "syn", "port": 80, "durationSec": 10, "pps": 300},
    {"atSec": 80, "type": "udp", "durationSec": 10, "pps": 300}
  ],
  "windowMillis": 500
}`

func TestLoadValid(t *testing.T) {
	d, err := Load(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "smoke" || d.Devices != 6 {
		t.Fatalf("parsed: %+v", d)
	}
	if d.Duration() != 2*time.Minute {
		t.Fatalf("Duration = %v", d.Duration())
	}
	if d.Window() != 500*time.Millisecond {
		t.Fatalf("Window = %v", d.Window())
	}
	cfg := d.TestbedConfig()
	if cfg.Seed != 7 || cfg.NumDevices != 6 {
		t.Fatalf("config: %+v", cfg)
	}
	if cfg.Link.RateBps != 50_000_000 || cfg.Link.QueueBytes != 64<<10 {
		t.Fatalf("link: %+v", cfg.Link)
	}
	if cfg.Link.Delay != 2*sim.Millisecond {
		t.Fatalf("delay: %v", cfg.Link.Delay)
	}
	if !cfg.Churn.Enabled || cfg.Churn.MeanUp != time.Minute {
		t.Fatalf("churn: %+v", cfg.Churn)
	}
	if cfg.Link.RNG == nil {
		t.Fatal("loss without RNG")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"durationSec": 10, "bogus": 1}`,
		"no duration":      `{"devices": 3}`,
		"bad type":         `{"durationSec": 10, "attacks":[{"atSec":1,"type":"dns","durationSec":1,"pps":1}]}`,
		"attack too late":  `{"durationSec": 10, "attacks":[{"atSec":20,"type":"syn","durationSec":1,"pps":1}]}`,
		"zero pps":         `{"durationSec": 10, "attacks":[{"atSec":1,"type":"syn","durationSec":1,"pps":0}]}`,
		"too many devices": `{"durationSec": 10, "devices": 300000}`,
		"not json":         `nope`,
	}
	for name, body := range cases {
		if _, err := Load(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestApplyRunsScenario(t *testing.T) {
	d, err := Load(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := d.Apply()
	if err != nil {
		t.Fatal(err)
	}
	// Count spoofed SYNs at the TServer to prove the scheduled attack ran.
	syns := 0
	tb.AddTap(netsim.DecodeTap(func(p *packet.Packet) {
		if p.HasTCP && p.TCP.Flags == packet.FlagSYN && p.IPv4.Src[2] >= 200 {
			syns++
		}
	}))
	tb.Start()
	if err := tb.Run(d.Duration()); err != nil {
		t.Fatal(err)
	}
	if tb.InfectedCount() == 0 {
		t.Fatal("scenario produced no infections")
	}
	if syns == 0 {
		t.Fatal("scheduled SYN flood never fired")
	}
}
