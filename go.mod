module ddoshield

go 1.22
