// Package ml is the from-scratch machine-learning layer of the IDS: the
// paper's three detectors (Random Forest, entropy-penalized K-Means and a
// 1-D Convolutional Neural Network) behind a common Classifier interface,
// plus evaluation metrics and model serialization. The paper implements RF
// and K-Means with scikit-learn and the CNN with TensorFlow; here all three
// are reimplemented in pure Go on the same feature vectors.
package ml

// Classifier is a trained model that labels one feature vector with a
// class index (dataset.Benign or dataset.Malicious in the IDS).
type Classifier interface {
	// Predict returns the predicted class of x.
	Predict(x []float64) int
	// Name identifies the model family ("rf", "kmeans", "cnn").
	Name() string
}

// PredictBatch labels every row of xs using c.
func PredictBatch(c Classifier, xs [][]float64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = c.Predict(x)
	}
	return out
}

// OffsetView adapts a classifier trained on a suffix of the feature vector
// (e.g. the statistical block only) to full vectors: Predict drops the
// first Offset columns before delegating. The Table I RF reproduction uses
// it to model a detector whose decisions are driven by the shared
// window-statistics block — the behaviour the paper attributes to its RF.
type OffsetView struct {
	Inner  Classifier
	Offset int
}

var _ Classifier = OffsetView{}

// Predict delegates on the column suffix.
func (v OffsetView) Predict(x []float64) int { return v.Inner.Predict(x[v.Offset:]) }

// Name reports the inner model's name.
func (v OffsetView) Name() string { return v.Inner.Name() }

// MemoryBytes delegates when the inner model reports a footprint.
func (v OffsetView) MemoryBytes() int64 {
	if mr, ok := v.Inner.(interface{ MemoryBytes() int64 }); ok {
		return mr.MemoryBytes()
	}
	return 0
}
