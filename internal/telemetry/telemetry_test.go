package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge reads %v", g.Value())
	}
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || !math.IsInf(bounds[3], 1) {
		t.Fatalf("bounds = %v", bounds)
	}
	// 0.5 and 1 land in le=1; 2 in le=10; 50 in le=100; 1000 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", counts, want)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 1053.5 {
		t.Fatalf("sum = %v, want 1053.5", h.Sum())
	}
}

func TestRegistrySnapshotDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("zzz_total")
	reg.NewCounter("aaa_total", L("b", "2"))
	reg.NewCounter("aaa_total", L("b", "1"))
	reg.NewGauge("mmm")
	snap := reg.Snapshot()
	var order []string
	for _, s := range snap {
		order = append(order, s.Name+s.Labels)
	}
	want := []string{`aaa_total{b="1"}`, `aaa_total{b="2"}`, "mmm", "zzz_total"}
	if strings.Join(order, " ") != strings.Join(want, " ") {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestRegistryReregistrationReplaces(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewCounter("x_total", L("k", "v"))
	a.Add(5)
	b := reg.NewCounter("x_total", L("k", "v"))
	b.Add(7)
	if reg.Len() != 1 {
		t.Fatalf("registry holds %d metrics, want 1", reg.Len())
	}
	if got := reg.Snapshot()[0].Value; got != 7 {
		t.Fatalf("snapshot value = %v, want the replacement's 7", got)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var reg *Registry
	c := reg.NewCounter("x_total")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("standalone counter from nil registry must work")
	}
	g := reg.NewGauge("y")
	g.Set(2)
	h := reg.NewHistogram("z", []float64{1})
	h.Observe(0.5)
	reg.RegisterCounterFunc(func() uint64 { return 0 }, "f_total")
	reg.RegisterGaugeFunc(func() float64 { return 0 }, "fg")
	if reg.Snapshot() != nil || reg.Len() != 0 {
		t.Fatal("nil registry must report nothing")
	}
}

func TestFuncMetrics(t *testing.T) {
	reg := NewRegistry()
	n := uint64(7)
	reg.RegisterCounterFunc(func() uint64 { return n }, "fn_total")
	v := 1.5
	reg.RegisterGaugeFunc(func() float64 { return v }, "fn_gauge")
	snap := reg.Snapshot()
	if snap[1].Value != 7 || snap[0].Value != 1.5 {
		t.Fatalf("func metric snapshot wrong: %+v", snap)
	}
	n, v = 9, 2.5
	snap = reg.Snapshot()
	if snap[1].Value != 9 || snap[0].Value != 2.5 {
		t.Fatalf("func metrics must re-evaluate at export: %+v", snap)
	}
}

func TestLabelRendering(t *testing.T) {
	got := renderLabels([]Label{L("z", "1"), L("a", `quo"te`)})
	want := `{a="quo\"te",z="1"}`
	if got != want {
		t.Fatalf("labels = %s, want %s", got, want)
	}
	if renderLabels(nil) != "" {
		t.Fatal("no labels must render empty")
	}
}
