package packet

// Checksum computes the 16-bit one's-complement Internet checksum (RFC 1071)
// over data. IPv4 headers, TCP and UDP segments all use it.
func Checksum(data []byte) uint16 {
	return finish(sum(0, data))
}

// sum accumulates 16-bit words of data into acc without folding.
func sum(acc uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		acc += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		acc += uint32(data[n-1]) << 8
	}
	return acc
}

func finish(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = (acc & 0xffff) + acc>>16
	}
	return ^uint16(acc)
}

// pseudoHeaderSum accumulates the TCP/UDP pseudo-header: source address,
// destination address, zero+protocol, and the transport-segment length.
func pseudoHeaderSum(src, dst Addr, proto uint8, length int) uint32 {
	var acc uint32
	acc = sum(acc, src[:])
	acc = sum(acc, dst[:])
	acc += uint32(proto)
	acc += uint32(length)
	return acc
}

// TransportChecksum computes the TCP/UDP checksum over the pseudo-header,
// the transport header (with its checksum field zeroed by the caller), and
// the payload.
func TransportChecksum(src, dst Addr, proto uint8, segment []byte) uint16 {
	acc := pseudoHeaderSum(src, dst, proto, len(segment))
	acc = sum(acc, segment)
	return finish(acc)
}
