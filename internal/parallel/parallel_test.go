package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var hits [n]int32
		For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForSerialRunsInOrder(t *testing.T) {
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	ran := false
	For(0, 4, func(int) { ran = true })
	For(-5, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}
