package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"ddoshield/internal/sim"
)

func buildTestRegistry() *Registry {
	reg := NewRegistry()
	reg.NewCounter("netsim_nic_rx_frames_total", L("nic", "tserver/eth0")).Add(12)
	reg.NewGauge("sysmon_cpu_percent", L("target", "ids")).Set(7.25)
	h := reg.NewHistogram("ids_window_cpu_us", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	return reg
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, buildTestRegistry()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE netsim_nic_rx_frames_total counter",
		`netsim_nic_rx_frames_total{nic="tserver/eth0"} 12`,
		"# TYPE sysmon_cpu_percent gauge",
		`sysmon_cpu_percent{target="ids"} 7.25`,
		"# TYPE ids_window_cpu_us histogram",
		`ids_window_cpu_us_bucket{le="10"} 1`,
		`ids_window_cpu_us_bucket{le="100"} 2`,
		`ids_window_cpu_us_bucket{le="+Inf"} 3`,
		"ids_window_cpu_us_sum 5055",
		"ids_window_cpu_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two renders are byte-identical.
	var buf2 bytes.Buffer
	_ = WritePrometheus(&buf2, buildTestRegistry())
	if buf.String() != buf2.String() {
		t.Fatal("prometheus export not deterministic")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, 90*sim.Second, buildTestRegistry()); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		SimNowNs int64 `json:"sim_now_ns"`
		Metrics  []struct {
			Name  string   `json:"name"`
			Type  string   `json:"type"`
			Value *float64 `json:"value"`
			Count *uint64  `json:"count"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if snap.SimNowNs != int64(90*sim.Second) {
		t.Fatalf("sim_now_ns = %d", snap.SimNowNs)
	}
	if len(snap.Metrics) != 3 {
		t.Fatalf("got %d metrics, want 3", len(snap.Metrics))
	}
	byName := map[string]int{}
	for i, m := range snap.Metrics {
		byName[m.Name] = i
	}
	if m := snap.Metrics[byName["netsim_nic_rx_frames_total"]]; m.Value == nil || *m.Value != 12 {
		t.Fatalf("counter row wrong: %+v", m)
	}
	if m := snap.Metrics[byName["ids_window_cpu_us"]]; m.Count == nil || *m.Count != 3 {
		t.Fatalf("histogram row wrong: %+v", m)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	rec := NewRecorder(16)
	rec.Emit(1500*sim.Microsecond, CatNet, "queue-drop", "dev00/eth0", 64)
	rec.Emit(2*sim.Second, CatContainer, "crash", "dev00-camera", 1)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var evs []struct {
		Name  string  `json:"name"`
		Cat   string  `json:"cat"`
		Phase string  `json:"ph"`
		TS    float64 `json:"ts"`
		Args  struct {
			Actor string `json:"actor"`
			Value int64  `json:"value"`
		} `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "queue-drop" || evs[0].Cat != "net" || evs[0].Phase != "i" {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[0].TS != 1500 { // 1500 µs
		t.Fatalf("ts = %v µs, want 1500", evs[0].TS)
	}
	if evs[1].Args.Actor != "dev00-camera" || evs[1].Args.Value != 1 {
		t.Fatalf("event 1 args = %+v", evs[1].Args)
	}
}

func TestLiveServer(t *testing.T) {
	reg := buildTestRegistry()
	rec := NewRecorder(8)
	rec.Emit(sim.Second, CatFault, "crash", "dev01", 1)
	srv := NewLiveServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, _ := get("/metrics"); code != 204 {
		t.Fatalf("before Update: /metrics = %d, want 204", code)
	}
	srv.Update(3*sim.Second, reg, rec)
	if srv.Updates() != 1 {
		t.Fatalf("updates = %d", srv.Updates())
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "netsim_nic_rx_frames_total") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"sim_now_ns"`) {
		t.Fatalf("/metrics.json = %d:\n%s", code, body)
	}
	if code, body := get("/trace"); code != 200 || !strings.Contains(body, `"crash"`) {
		t.Fatalf("/trace = %d:\n%s", code, body)
	}
}
