package netstack

import (
	"errors"
	"fmt"
	"time"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry/trace"
)

// ConnState enumerates the implemented subset of the TCP state machine.
type ConnState int

// TCP connection states.
const (
	StateClosed ConnState = iota + 1
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateLastAck
	StateClosing
	StateTimeWait
)

var stateNames = map[ConnState]string{
	StateClosed: "CLOSED", StateSynSent: "SYN_SENT", StateSynRcvd: "SYN_RCVD",
	StateEstablished: "ESTABLISHED", StateFinWait1: "FIN_WAIT_1",
	StateFinWait2: "FIN_WAIT_2", StateCloseWait: "CLOSE_WAIT",
	StateLastAck: "LAST_ACK", StateClosing: "CLOSING", StateTimeWait: "TIME_WAIT",
}

// String renders the RFC 793 state name.
func (s ConnState) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("ConnState(%d)", int(s))
}

// Transport tuning constants. These are deliberately simple (fixed RTO base,
// fixed window) — the dynamics that matter to the IDS are handshakes, ACK
// clocking and retransmission, not congestion-control minutiae.
const (
	// MSS is the maximum TCP payload per segment.
	MSS = 1400
	// sendWindow caps unacknowledged bytes in flight.
	sendWindow = 16 * MSS
	// advertisedWindow is the receive window advertised in every segment.
	advertisedWindow = 65535
	// baseRTO is the initial retransmission timeout.
	baseRTO = 200 * time.Millisecond
	// maxRetries aborts the connection after this many timeouts in a row.
	maxRetries = 5
	// timeWaitDelay is how long a closed connection lingers in TIME_WAIT.
	timeWaitDelay = 1 * time.Second
	// synRcvdTimeout evicts half-open (SYN_RCVD) connections that never
	// complete the handshake — the resource a SYN flood exhausts.
	synRcvdTimeout = 5 * time.Second
	// DefaultBacklog is the default cap on simultaneous half-open
	// connections per listener.
	DefaultBacklog = 128
)

// Errors surfaced through Conn.OnClose.
var (
	// ErrReset reports the peer aborted the connection with RST.
	ErrReset = errors.New("connection reset by peer")
	// ErrTimeout reports retransmissions were exhausted.
	ErrTimeout = errors.New("connection timed out")
	// ErrRefused reports the peer answered the SYN with RST.
	ErrRefused = errors.New("connection refused")
)

type connKey struct {
	remote     packet.Addr
	remotePort uint16
	localPort  uint16
}

// Conn is one TCP connection endpoint. Interaction is callback-based: the
// owner installs OnConnect/OnData/OnClose before traffic flows (for dialed
// connections, before the handshake completes; for accepted connections,
// inside the listener's accept callback).
type Conn struct {
	host  *Host
	key   connKey
	state ConnState

	// Send side.
	iss     uint32
	sndUna  uint32
	sndNxt  uint32
	sendBuf []byte // bytes [sndUna, sndUna+len) — unacked + unsent
	finQ    bool   // close requested: FIN follows the buffered data
	finSent bool
	finSeq  uint32

	// Receive side.
	rcvNxt  uint32
	gotSYN  bool
	peerFIN bool

	// Retransmission.
	rtx     sim.Event
	rto     time.Duration
	retries int

	// Lifecycle callbacks.
	OnConnect func()
	OnData    func(data []byte)
	OnClose   func(err error)
	// OnRemoteClose fires once when the peer half-closes (FIN received)
	// while the local side is still open.
	OnRemoteClose func()

	connected   bool
	closeFired  bool
	acceptedBy  *Listener
	established sim.Time

	bytesSent   uint64
	bytesRcvd   uint64
	retransmits uint64
}

// State reports the connection's current TCP state.
func (c *Conn) State() ConnState { return c.state }

// RemoteAddr reports the peer's address and port.
func (c *Conn) RemoteAddr() (packet.Addr, uint16) { return c.key.remote, c.key.remotePort }

// LocalPort reports the local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// Host returns the owning stack.
func (c *Conn) Host() *Host { return c.host }

// Stats reports payload bytes sent, received, and retransmitted segments.
func (c *Conn) Stats() (sent, rcvd, retransmits uint64) {
	return c.bytesSent, c.bytesRcvd, c.retransmits
}

// EstablishedAt reports when the connection reached ESTABLISHED.
func (c *Conn) EstablishedAt() sim.Time { return c.established }

// Listener accepts inbound TCP connections on a port.
type Listener struct {
	host    *Host
	port    uint16
	accept  func(*Conn)
	backlog int
	halfDM  map[connKey]*Conn // half-open (SYN_RCVD) connections; nil until first SYN
	closed  bool

	accepted    uint64
	synDropped  uint64
	halfExpired uint64
}

// ListenTCP binds port and invokes accept for every connection that
// completes the three-way handshake. backlog caps half-open connections;
// zero means DefaultBacklog.
func (h *Host) ListenTCP(port uint16, backlog int, accept func(*Conn)) (*Listener, error) {
	if _, used := h.listeners[port]; used {
		return nil, fmt.Errorf("tcp port %d already bound on %s", port, h.cfg.Addr)
	}
	if backlog <= 0 {
		backlog = DefaultBacklog
	}
	// halfDM stays nil until the first inbound SYN: an idle service (every
	// device binds telnet) then costs no backlog storage.
	l := &Listener{host: h, port: port, accept: accept, backlog: backlog}
	h.listenerMap()[port] = l
	return l, nil
}

// Port reports the listening port.
func (l *Listener) Port() uint16 { return l.port }

// SetAccept replaces the accept callback (e.g. a data-channel listener
// created before its handler is known).
func (l *Listener) SetAccept(accept func(*Conn)) { l.accept = accept }

// Close stops accepting new connections; established ones are unaffected.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.host.listeners, l.port)
}

// Stats reports completed accepts, SYNs dropped by backlog pressure, and
// half-open entries that timed out. Backlog exhaustion under SYN flood is
// the mechanism by which the attack degrades the TServer.
func (l *Listener) Stats() (accepted, synDropped, halfExpired uint64) {
	return l.accepted, l.synDropped, l.halfExpired
}

// HalfOpen reports the number of half-open connections currently held.
func (l *Listener) HalfOpen() int { return len(l.halfDM) }

// DialTCP opens a connection to dst:port. Callbacks on the returned Conn
// should be installed immediately (the SYN is already in flight, but no
// callback can fire until the current event returns).
func (h *Host) DialTCP(dst packet.Addr, dstPort uint16) *Conn {
	key := connKey{remote: dst, remotePort: dstPort, localPort: h.nextEphemeralPort()}
	c := &Conn{
		host:  h,
		key:   key,
		state: StateSynSent,
		iss:   h.rand().Uint32(),
		rto:   baseRTO,
	}
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1 // SYN consumes one sequence number
	h.connMap()[key] = c
	c.sendSegment(c.iss, 0, packet.FlagSYN, nil)
	c.armRetransmit()
	return c
}

// Send queues payload bytes for transmission. Data queued after Close is
// discarded.
func (c *Conn) Send(data []byte) {
	if c.finQ || c.state == StateClosed || len(data) == 0 {
		return
	}
	switch c.state {
	case StateSynSent, StateSynRcvd, StateEstablished, StateCloseWait:
		c.sendBuf = append(c.sendBuf, data...)
		c.pump()
	}
}

// Buffered reports bytes queued but not yet acknowledged.
func (c *Conn) Buffered() int { return len(c.sendBuf) }

// Close performs an orderly shutdown: buffered data is sent, then FIN.
func (c *Conn) Close() {
	if c.finQ || c.state == StateClosed {
		return
	}
	c.finQ = true
	c.pump()
}

// Abort sends RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	c.sendSegment(c.sndNxt, c.rcvNxt, packet.FlagRST|packet.FlagACK, nil)
	c.teardown(ErrReset)
}

// --- internals ---

func (c *Conn) sendSegment(seq, ack uint32, flags uint8, payload []byte) {
	c.sendSegmentTraced("tcp-tx", seq, ack, flags, payload)
}

// sendSegmentTraced is sendSegment with an explicit origin-span name, so
// retransmissions trace as "tcp-retransmit" rather than "tcp-tx".
func (c *Conn) sendSegmentTraced(origin string, seq, ack uint32, flags uint8, payload []byte) {
	h := c.host
	ip := packet.IPv4{TTL: h.cfg.TTL, ID: h.nextIPID(), Src: h.cfg.Addr, Dst: c.key.remote}
	tcp := packet.TCP{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     seq,
		Ack:     ack,
		Flags:   flags,
		Window:  advertisedWindow,
	}
	oc := h.traceOrigin(origin, c.key.remote, c.key.localPort, c.key.remotePort, packet.ProtoTCP)
	h.sendIPCtx(c.key.remote, oc, func(dstMAC packet.MAC) []byte {
		return packet.BuildTCP(h.MAC(), dstMAC, ip, tcp, payload)
	})
}

// outstanding reports unacknowledged bytes in flight.
func (c *Conn) outstanding() uint32 { return c.sndNxt - c.sndUna }

// pump transmits as much buffered data as the window allows, then FIN.
func (c *Conn) pump() {
	switch c.state {
	case StateEstablished, StateCloseWait, StateFinWait1, StateLastAck:
	default:
		return // handshake not complete (data stays buffered) or closed
	}
	sentAny := false
	for {
		unsent := uint32(len(c.sendBuf)) - c.dataInFlight()
		if unsent == 0 || c.outstanding() >= sendWindow {
			break
		}
		n := unsent
		if n > MSS {
			n = MSS
		}
		if c.outstanding()+n > sendWindow {
			n = sendWindow - c.outstanding()
		}
		off := c.dataInFlight()
		seg := c.sendBuf[off : off+n]
		flags := packet.FlagACK
		if off+n == uint32(len(c.sendBuf)) {
			flags |= packet.FlagPSH
		}
		c.sendSegment(c.sndNxt, c.rcvNxt, flags, seg)
		c.sndNxt += n
		c.bytesSent += uint64(n)
		sentAny = true
	}
	if c.finQ && !c.finSent && c.dataInFlight() == uint32(len(c.sendBuf)) {
		c.finSeq = c.sndNxt
		c.sendSegment(c.sndNxt, c.rcvNxt, packet.FlagFIN|packet.FlagACK, nil)
		c.sndNxt++
		c.finSent = true
		sentAny = true
		switch c.state {
		case StateEstablished:
			c.state = StateFinWait1
		case StateCloseWait:
			c.state = StateLastAck
		}
	}
	if sentAny && !c.rtx.Pending() {
		c.armRetransmit()
	}
}

// dataInFlight reports how many buffered payload bytes have been sent
// (acked bytes are trimmed from sendBuf, so flight = sndNxt-sndUna minus
// any SYN/FIN sequence numbers outstanding).
func (c *Conn) dataInFlight() uint32 {
	n := c.outstanding()
	if c.state == StateSynSent || c.state == StateSynRcvd {
		// SYN still unacked.
		if n > 0 {
			n--
		}
	}
	if c.finSent {
		if n > 0 {
			n--
		}
	}
	return n
}

func (c *Conn) armRetransmit() {
	c.disarmRetransmit()
	c.rtx = c.host.sched.After(c.rto, c.onRetransmitTimeout)
}

func (c *Conn) disarmRetransmit() {
	c.rtx.Cancel()
	c.rtx = sim.Event{}
}

func (c *Conn) onRetransmitTimeout() {
	c.rtx = sim.Event{}
	if c.state == StateClosed || c.state == StateTimeWait {
		return
	}
	c.retries++
	if c.retries > maxRetries {
		if c.state == StateSynSent {
			c.teardown(ErrRefused)
		} else {
			c.teardown(ErrTimeout)
		}
		return
	}
	c.retransmits++
	c.host.emitTCP("retransmit", int64(c.retries))
	c.rto *= 2
	switch c.state {
	case StateSynSent:
		c.sendSegmentTraced("tcp-retransmit", c.iss, 0, packet.FlagSYN, nil)
	case StateSynRcvd:
		c.sendSegmentTraced("tcp-retransmit", c.iss, c.rcvNxt, packet.FlagSYN|packet.FlagACK, nil)
	default:
		// Resend the earliest unacknowledged chunk (go-back-one).
		if n := uint32(len(c.sendBuf)); n > 0 {
			seg := n
			if seg > MSS {
				seg = MSS
			}
			c.sendSegmentTraced("tcp-retransmit", c.sndUna, c.rcvNxt, packet.FlagACK|packet.FlagPSH, c.sendBuf[:seg])
		} else if c.finSent && c.sndUna == c.finSeq {
			c.sendSegmentTraced("tcp-retransmit", c.finSeq, c.rcvNxt, packet.FlagFIN|packet.FlagACK, nil)
		}
	}
	c.armRetransmit()
}

func (c *Conn) teardown(err error) {
	c.disarmRetransmit()
	if c.state == StateClosed {
		return
	}
	c.state = StateClosed
	delete(c.host.conns, c.key)
	if c.acceptedBy != nil {
		delete(c.acceptedBy.halfDM, c.key)
	}
	if !c.closeFired {
		c.closeFired = true
		if c.OnClose != nil {
			c.OnClose(err)
		}
	}
}

func (c *Conn) enterTimeWait() {
	c.disarmRetransmit()
	c.state = StateTimeWait
	c.host.sched.After(timeWaitDelay, func() {
		if c.state == StateTimeWait {
			c.state = StateClosed
			delete(c.host.conns, c.key)
		}
	})
	if !c.closeFired {
		c.closeFired = true
		if c.OnClose != nil {
			c.OnClose(nil)
		}
	}
}

// handleTCP dispatches an inbound segment to a connection or listener. tc
// is the packet's "deliver" span: it ends terminally when a socket takes
// the segment, or as a drop (no-socket, SYN backlog) otherwise.
func (h *Host) handleTCP(ip packet.IPv4, payload []byte, tc trace.Context) {
	now := h.sched.Now()
	tcp, data, err := packet.UnmarshalTCP(payload, ip.Src, ip.Dst, true)
	if err != nil {
		tc.Drop(now, trace.DropMalformed)
		return
	}
	key := connKey{remote: ip.Src, remotePort: tcp.SrcPort, localPort: tcp.DstPort}
	if c, ok := h.conns[key]; ok {
		tc.FinishTerminal(now)
		c.handleSegment(tcp, data)
		return
	}
	if l, ok := h.listeners[tcp.DstPort]; ok && tcp.Flags&packet.FlagSYN != 0 && tcp.Flags&packet.FlagACK == 0 {
		l.handleSYN(key, tcp, tc)
		return
	}
	// No socket: answer with RST (except to RSTs), as a real stack does.
	// The Mirai scanner interprets this as "telnet closed".
	tc.Drop(now, trace.DropNoSocket)
	if tcp.Flags&packet.FlagRST == 0 {
		h.sendRST(ip.Src, tcp)
	}
}

func (h *Host) sendRST(dst packet.Addr, in packet.TCP) {
	ip := packet.IPv4{TTL: h.cfg.TTL, ID: h.nextIPID(), Src: h.cfg.Addr, Dst: dst}
	seq := in.Ack
	ack := in.Seq + 1
	flags := packet.FlagRST | packet.FlagACK
	tcp := packet.TCP{
		SrcPort: in.DstPort, DstPort: in.SrcPort,
		Seq: seq, Ack: ack, Flags: flags, Window: 0,
	}
	oc := h.traceOrigin("tcp-rst", dst, in.DstPort, in.SrcPort, packet.ProtoTCP)
	h.sendIPCtx(dst, oc, func(dstMAC packet.MAC) []byte {
		return packet.BuildTCP(h.MAC(), dstMAC, ip, tcp, nil)
	})
}

func (l *Listener) handleSYN(key connKey, tcp packet.TCP, tc trace.Context) {
	now := l.host.sched.Now()
	if l.closed {
		tc.Drop(now, trace.DropNoSocket)
		return
	}
	if len(l.halfDM) >= l.backlog {
		l.synDropped++ // SYN-flood pressure: silently drop
		l.host.emitTCP("syn-drop", int64(l.port))
		tc.Drop(now, trace.DropSynBacklog)
		return
	}
	tc.FinishTerminal(now)
	h := l.host
	c := &Conn{
		host:       h,
		key:        key,
		state:      StateSynRcvd,
		iss:        h.rand().Uint32(),
		rto:        baseRTO,
		rcvNxt:     tcp.Seq + 1,
		gotSYN:     true,
		acceptedBy: l,
	}
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	h.connMap()[key] = c
	if l.halfDM == nil {
		l.halfDM = make(map[connKey]*Conn)
	}
	l.halfDM[key] = c
	c.sendSegment(c.iss, c.rcvNxt, packet.FlagSYN|packet.FlagACK, nil)
	c.armRetransmit()
	// Evict if the handshake never completes.
	h.sched.After(synRcvdTimeout, func() {
		if c.state == StateSynRcvd {
			l.halfExpired++
			c.teardown(ErrTimeout)
		}
	})
}

// seqLEQ reports a <= b in sequence space.
func seqLEQ(a, b uint32) bool { return int32(b-a) >= 0 }

// seqLT reports a < b in sequence space.
func seqLT(a, b uint32) bool { return int32(b-a) > 0 }

func (c *Conn) handleSegment(tcp packet.TCP, data []byte) {
	if tcp.Flags&packet.FlagRST != 0 {
		switch c.state {
		case StateSynSent:
			c.teardown(ErrRefused)
		default:
			c.teardown(ErrReset)
		}
		return
	}

	switch c.state {
	case StateSynSent:
		if tcp.Flags&packet.FlagSYN != 0 && tcp.Flags&packet.FlagACK != 0 && tcp.Ack == c.iss+1 {
			c.rcvNxt = tcp.Seq + 1
			c.gotSYN = true
			c.sndUna = tcp.Ack
			c.retries = 0
			c.rto = baseRTO
			c.disarmRetransmit()
			c.state = StateEstablished
			c.established = c.host.sched.Now()
			c.sendSegment(c.sndNxt, c.rcvNxt, packet.FlagACK, nil)
			c.connected = true
			if c.OnConnect != nil {
				c.OnConnect()
			}
			c.pump()
		}
		return
	case StateSynRcvd:
		if tcp.Flags&packet.FlagACK != 0 && tcp.Ack == c.iss+1 {
			c.sndUna = tcp.Ack
			c.retries = 0
			c.rto = baseRTO
			c.disarmRetransmit()
			c.state = StateEstablished
			c.established = c.host.sched.Now()
			if l := c.acceptedBy; l != nil {
				delete(l.halfDM, c.key)
				l.accepted++
				if l.accept != nil {
					l.accept(c)
				}
			}
			c.connected = true
			if c.OnConnect != nil {
				c.OnConnect()
			}
			// Fall through to process any piggybacked data.
		} else {
			return
		}
	case StateClosed, StateTimeWait:
		return
	}

	// ACK processing.
	if tcp.Flags&packet.FlagACK != 0 && seqLT(c.sndUna, tcp.Ack) && seqLEQ(tcp.Ack, c.sndNxt) {
		acked := tcp.Ack - c.sndUna
		dataAcked := acked
		if c.finSent && tcp.Ack == c.finSeq+1 {
			dataAcked--
		}
		if int(dataAcked) <= len(c.sendBuf) {
			c.sendBuf = c.sendBuf[dataAcked:]
		} else {
			c.sendBuf = nil
		}
		c.sndUna = tcp.Ack
		c.retries = 0
		c.rto = baseRTO
		if c.outstanding() == 0 {
			c.disarmRetransmit()
		} else {
			c.armRetransmit()
		}
		// FIN acknowledged?
		if c.finSent && tcp.Ack == c.finSeq+1 {
			switch c.state {
			case StateFinWait1:
				c.state = StateFinWait2
			case StateClosing:
				c.enterTimeWait()
				return
			case StateLastAck:
				c.disarmRetransmit()
				c.state = StateClosed
				delete(c.host.conns, c.key)
				if !c.closeFired {
					c.closeFired = true
					if c.OnClose != nil {
						c.OnClose(nil)
					}
				}
				return
			}
		}
		c.pump()
	}

	// In-order data delivery.
	if len(data) > 0 {
		switch c.state {
		case StateEstablished, StateFinWait1, StateFinWait2:
			if tcp.Seq == c.rcvNxt {
				c.rcvNxt += uint32(len(data))
				c.bytesRcvd += uint64(len(data))
				c.sendSegment(c.sndNxt, c.rcvNxt, packet.FlagACK, nil)
				if c.OnData != nil {
					c.OnData(data)
				}
			} else {
				// Duplicate or out-of-order: re-ACK the expected seq.
				c.sendSegment(c.sndNxt, c.rcvNxt, packet.FlagACK, nil)
			}
		}
	}

	// FIN processing.
	if tcp.Flags&packet.FlagFIN != 0 && tcp.Seq+uint32(len(data)) == c.rcvNxt && !c.peerFIN {
		c.peerFIN = true
		c.rcvNxt++
		c.sendSegment(c.sndNxt, c.rcvNxt, packet.FlagACK, nil)
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
			if c.OnRemoteClose != nil {
				c.OnRemoteClose()
			}
		case StateFinWait1:
			c.state = StateClosing
		case StateFinWait2:
			c.enterTimeWait()
		}
	}
}
