package cnn

import (
	"math"
	"testing"

	"ddoshield/internal/ml/mltest"
)

func TestCNNLearnsBlobs(t *testing.T) {
	xs, ys := mltest.Blobs(600, 16, 2, 1)
	n, res, err := Train(Config{Epochs: 8, Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.95 {
		t.Fatalf("train accuracy = %.3f", res.FinalAccuracy)
	}
	testX, testY := mltest.Blobs(200, 16, 2, 2)
	if acc := mltest.Accuracy(n.Predict, testX, testY); acc < 0.93 {
		t.Fatalf("test accuracy = %.3f", acc)
	}
}

func TestLossDecreases(t *testing.T) {
	xs, ys := mltest.Blobs(400, 16, 2, 3)
	_, res, err := Train(Config{Epochs: 6, Seed: 3}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1]
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestProbSumsToOne(t *testing.T) {
	xs, ys := mltest.Blobs(100, 16, 2, 4)
	n, _, err := Train(Config{Epochs: 2, Seed: 4}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Prob(xs[0])
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability %v out of range", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestCNNRejectsBadInput(t *testing.T) {
	if _, _, err := Train(Config{}, nil, nil); err == nil {
		t.Fatal("accepted empty training set")
	}
	if _, _, err := Train(Config{}, [][]float64{{1, 2}}, []int{0, 1}); err == nil {
		t.Fatal("accepted mismatched labels")
	}
	// Input too short for two conv+pool blocks.
	if _, err := New(Config{Inputs: 4}); err == nil {
		t.Fatal("accepted too-short input")
	}
}

func TestGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny network: backprop must match
	// finite differences.
	cfg := Config{Inputs: 12, Conv1Filters: 2, Conv2Filters: 2, Hidden: 4, Seed: 5}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 12)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	y := 1
	loss := func() float64 {
		var a activations
		n.forward(x, &a)
		return -math.Log(a.prob[y] + 1e-12)
	}
	g := newGrads(n)
	var a activations
	var scratch bwScratch
	n.forward(x, &a)
	n.backward(&a, y, g, &scratch)

	check := func(w [][]float64, gw [][]float64, name string) {
		const eps = 1e-6
		// Probe a few entries per tensor.
		for _, probe := range [][2]int{{0, 0}, {1, 0}} {
			i, j := probe[0], probe[1]
			if i >= len(w) || j >= len(w[i]) {
				continue
			}
			orig := w[i][j]
			w[i][j] = orig + eps
			lp := loss()
			w[i][j] = orig - eps
			lm := loss()
			w[i][j] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-gw[i][j]) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("%s[%d][%d]: numerical %v vs backprop %v", name, i, j, num, gw[i][j])
			}
		}
	}
	check(n.W1, g.w1, "W1")
	check(n.W2, g.w2, "W2")
	check(n.W3, g.w3, "W3")
	check(n.W4, g.w4, "W4")
}

func TestNumParamsAndMemory(t *testing.T) {
	n, err := New(Config{Inputs: 26, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumParams() < 1000 {
		t.Fatalf("NumParams = %d, implausibly small", n.NumParams())
	}
	if n.MemoryBytes() <= int64(n.NumParams())*8 {
		t.Fatal("MemoryBytes must include activations")
	}
	if n.Name() != "cnn" {
		t.Fatal("Name()")
	}
}

func TestDeterministicTraining(t *testing.T) {
	xs, ys := mltest.Blobs(200, 16, 2, 6)
	n1, _, err := Train(Config{Epochs: 2, Seed: 8}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	n2, _, err := Train(Config{Epochs: 2, Seed: 8}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if n1.W3[0][0] != n2.W3[0][0] {
		t.Fatal("same-seed training diverged")
	}
}

func TestCloneAndWeightOps(t *testing.T) {
	xs, ys := mltest.Blobs(200, 16, 2, 9)
	n, _, err := Train(Config{Epochs: 1, Seed: 9}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	clone := n.Clone()
	// Clone predicts identically but is independent storage.
	for i := 0; i < 20; i++ {
		if clone.Predict(xs[i]) != n.Predict(xs[i]) {
			t.Fatal("clone predictions differ")
		}
	}
	clone.W1[0][0] += 100
	if n.W1[0][0] == clone.W1[0][0] {
		t.Fatal("clone shares weight storage")
	}

	// ScaleAccumulate of two halves reproduces the original.
	acc := n.Clone()
	acc.ZeroWeights()
	acc.ScaleAccumulate(n, 0.5)
	acc.ScaleAccumulate(n, 0.5)
	if diff := acc.W3[1][1] - n.W3[1][1]; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("averaged weights diverge: %v", diff)
	}

	// SetWeightsFrom copies values, not references.
	dst := n.Clone()
	dst.ZeroWeights()
	dst.SetWeightsFrom(n)
	if dst.W4[0][0] != n.W4[0][0] {
		t.Fatal("SetWeightsFrom did not copy")
	}
	dst.W4[0][0] += 1
	if dst.W4[0][0] == n.W4[0][0] {
		t.Fatal("SetWeightsFrom aliased storage")
	}
}
