package packet

import (
	"bytes"
	"testing"
	"testing/quick"

	"ddoshield/internal/sim"
)

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x2a}
	if got := m.String(); got != "02:00:00:00:00:2a" {
		t.Fatalf("String() = %q", got)
	}
}

func TestMACFromUint64Unique(t *testing.T) {
	seen := map[MAC]bool{}
	for i := uint64(0); i < 1000; i++ {
		m := MACFromUint64(i)
		if seen[m] {
			t.Fatalf("duplicate MAC for counter %d", i)
		}
		if m.IsBroadcast() {
			t.Fatalf("counter %d produced broadcast MAC", i)
		}
		seen[m] = true
	}
}

func TestParseAddrRoundTrip(t *testing.T) {
	for _, s := range []string{"0.0.0.0", "10.0.0.1", "192.168.1.254", "255.255.255.255"} {
		a, err := ParseAddr(s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", s, err)
		}
		if a.String() != s {
			t.Fatalf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseAddrRejectsMalformed(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "-1.0.0.0"} {
		if _, err := ParseAddr(s); err == nil {
			t.Fatalf("ParseAddr(%q) accepted malformed input", s)
		}
	}
}

func TestAddrUint32RoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		return AddrFromUint32(v).Uint32() == v
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/24")
	cases := []struct {
		addr string
		want bool
	}{
		{"10.0.0.1", true},
		{"10.0.0.254", true},
		{"10.0.1.1", false},
		{"11.0.0.1", false},
	}
	for _, c := range cases {
		if got := p.Contains(MustParseAddr(c.addr)); got != c.want {
			t.Errorf("Contains(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestPrefixHostAndNumHosts(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/24")
	if got := p.Host(1); got != MustParseAddr("10.0.0.1") {
		t.Fatalf("Host(1) = %v", got)
	}
	if got := p.Host(200); got != MustParseAddr("10.0.0.200") {
		t.Fatalf("Host(200) = %v", got)
	}
	if got := p.NumHosts(); got != 254 {
		t.Fatalf("NumHosts() = %d, want 254", got)
	}
	wide := MustParsePrefix("10.0.0.0/16")
	if got := wide.NumHosts(); got != 65534 {
		t.Fatalf("/16 NumHosts() = %d, want 65534", got)
	}
}

func TestParsePrefixRejectsMalformed(t *testing.T) {
	for _, s := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/24"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Fatalf("ParsePrefix(%q) accepted malformed input", s)
		}
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of this data is 0xddf2 (header example).
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Verifies that an odd trailing byte is padded on the right.
	even := Checksum([]byte{0xab, 0x00})
	odd := Checksum([]byte{0xab})
	if even != odd {
		t.Fatalf("odd-length padding mismatch: %#04x vs %#04x", odd, even)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	h := Ethernet{Dst: MACFromUint64(1), Src: MACFromUint64(2), Type: EtherTypeIPv4}
	b := h.Marshal(nil)
	if len(b) != EthernetHeaderLen {
		t.Fatalf("marshaled length = %d", len(b))
	}
	got, rest, err := UnmarshalEthernet(append(b, 0xde, 0xad))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, h)
	}
	if !bytes.Equal(rest, []byte{0xde, 0xad}) {
		t.Fatalf("rest = %x", rest)
	}
}

func TestEthernetTooShort(t *testing.T) {
	if _, _, err := UnmarshalEthernet(make([]byte, 13)); err == nil {
		t.Fatal("accepted 13-byte frame")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{
		Op:        ARPRequest,
		SenderMAC: MACFromUint64(7),
		SenderIP:  MustParseAddr("10.0.0.7"),
		TargetMAC: MAC{},
		TargetIP:  MustParseAddr("10.0.0.1"),
	}
	b := a.Marshal(nil)
	if len(b) != ARPLen {
		t.Fatalf("marshaled length = %d", len(b))
	}
	got, err := UnmarshalARP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, a)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	h := IPv4{
		TOS:   0,
		ID:    0x1234,
		Flags: 2, // don't fragment
		TTL:   64,
		Proto: ProtoTCP,
		Src:   MustParseAddr("10.0.0.5"),
		Dst:   MustParseAddr("10.0.1.1"),
	}
	payload := []byte("hello world")
	b := h.Marshal(nil, len(payload))
	b = append(b, payload...)
	got, rest, err := UnmarshalIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.TTL != 64 || got.Proto != ProtoTCP || got.ID != 0x1234 || got.Flags != 2 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.TotalLen != uint16(IPv4HeaderLen+len(payload)) {
		t.Fatalf("TotalLen = %d", got.TotalLen)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %q", rest)
	}
}

func TestIPv4CorruptionDetected(t *testing.T) {
	h := IPv4{TTL: 64, Proto: ProtoUDP, Src: MustParseAddr("1.2.3.4"), Dst: MustParseAddr("5.6.7.8")}
	b := h.Marshal(nil, 0)
	b[8] ^= 0xff // corrupt TTL
	if _, _, err := UnmarshalIPv4(b); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestTCPRoundTripAndChecksum(t *testing.T) {
	src, dst := MustParseAddr("10.0.0.5"), MustParseAddr("10.0.1.1")
	h := TCP{SrcPort: 44321, DstPort: 80, Seq: 1000, Ack: 2000, Flags: FlagSYN | FlagACK, Window: 65535}
	payload := []byte("GET / HTTP/1.1\r\n")
	b := h.Marshal(nil, src, dst, payload)
	got, rest, err := UnmarshalTCP(b, src, dst, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 44321 || got.DstPort != 80 || got.Seq != 1000 || got.Ack != 2000 ||
		got.Flags != FlagSYN|FlagACK || got.Window != 65535 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %q", rest)
	}
}

func TestTCPChecksumDetectsCorruption(t *testing.T) {
	src, dst := MustParseAddr("10.0.0.5"), MustParseAddr("10.0.1.1")
	h := TCP{SrcPort: 1, DstPort: 2, Flags: FlagACK}
	b := h.Marshal(nil, src, dst, []byte("data"))
	b[len(b)-1] ^= 0x01
	if _, _, err := UnmarshalTCP(b, src, dst, true); err == nil {
		t.Fatal("corrupted segment accepted")
	}
	// Spoofed source address must also fail the pseudo-header check.
	if _, _, err := UnmarshalTCP(h.Marshal(nil, src, dst, nil), MustParseAddr("9.9.9.9"), dst, true); err == nil {
		t.Fatal("wrong pseudo-header accepted")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	src, dst := MustParseAddr("10.0.0.9"), MustParseAddr("10.0.1.1")
	h := UDP{SrcPort: 5353, DstPort: 53}
	payload := bytes.Repeat([]byte{0xaa}, 512)
	b := h.Marshal(nil, src, dst, payload)
	got, rest, err := UnmarshalUDP(b, src, dst, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 5353 || got.DstPort != 53 || got.Length != uint16(UDPHeaderLen+512) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	src, dst := MustParseAddr("10.0.0.9"), MustParseAddr("10.0.1.1")
	h := UDP{SrcPort: 1000, DstPort: 2000}
	b := h.Marshal(nil, src, dst, []byte("payload"))
	b[len(b)-2] ^= 0x10
	if _, _, err := UnmarshalUDP(b, src, dst, true); err == nil {
		t.Fatal("corrupted datagram accepted")
	}
}

func TestDecodeTCPFrame(t *testing.T) {
	src, dst := MustParseAddr("10.0.0.5"), MustParseAddr("10.0.1.1")
	raw := BuildTCP(MACFromUint64(1), MACFromUint64(2),
		IPv4{TTL: 64, ID: 7, Src: src, Dst: dst},
		TCP{SrcPort: 40000, DstPort: 80, Seq: 5, Flags: FlagSYN, Window: 1024},
		nil)
	p, err := Decode(3*sim.Second, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasIPv4 || !p.HasTCP || p.HasUDP || p.HasARP {
		t.Fatalf("dissection flags wrong: %+v", p)
	}
	if p.Time != 3*sim.Second {
		t.Fatalf("Time = %v", p.Time)
	}
	if p.Proto() != ProtoTCP || p.SrcPort() != 40000 || p.DstPort() != 80 {
		t.Fatalf("accessors wrong: proto=%d %d->%d", p.Proto(), p.SrcPort(), p.DstPort())
	}
	if p.TCP.Flags&FlagSYN == 0 || p.TCP.Flags&FlagACK != 0 {
		t.Fatalf("flags = %s", FlagString(p.TCP.Flags))
	}
	if p.Len() != len(raw) {
		t.Fatalf("Len() = %d, want %d", p.Len(), len(raw))
	}
}

func TestDecodeUDPFrame(t *testing.T) {
	src, dst := MustParseAddr("10.0.0.6"), MustParseAddr("10.0.1.1")
	payload := []byte{1, 2, 3, 4}
	raw := BuildUDP(MACFromUint64(3), MACFromUint64(4),
		IPv4{TTL: 64, Src: src, Dst: dst},
		UDP{SrcPort: 9999, DstPort: 1900},
		payload)
	p, err := Decode(0, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasUDP || !bytes.Equal(p.Payload, payload) {
		t.Fatalf("UDP dissection wrong: %+v payload=%x", p, p.Payload)
	}
}

func TestDecodeARPFrame(t *testing.T) {
	raw := BuildARP(MACFromUint64(5), BroadcastMAC, ARP{
		Op:        ARPRequest,
		SenderMAC: MACFromUint64(5),
		SenderIP:  MustParseAddr("10.0.0.5"),
		TargetIP:  MustParseAddr("10.0.0.1"),
	})
	p, err := Decode(0, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasARP || p.HasIPv4 {
		t.Fatalf("ARP dissection wrong: %+v", p)
	}
	if !p.Eth.Dst.IsBroadcast() {
		t.Fatal("ARP request not broadcast")
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{
		Src: MustParseAddr("1.1.1.1"), Dst: MustParseAddr("2.2.2.2"),
		Proto: ProtoTCP, SrcPort: 10, DstPort: 20,
	}
	r := k.Reverse()
	if r.Src != k.Dst || r.Dst != k.Src || r.SrcPort != k.DstPort || r.DstPort != k.SrcPort {
		t.Fatalf("Reverse() = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse is not identity")
	}
}

func TestFlagString(t *testing.T) {
	if got := FlagString(FlagSYN | FlagACK); got != "SYN|ACK" {
		t.Fatalf("FlagString = %q", got)
	}
	if got := FlagString(0); got != "none" {
		t.Fatalf("FlagString(0) = %q", got)
	}
}

// Property: any TCP frame built by BuildTCP decodes back to the same
// 5-tuple, flags and payload.
func TestBuildDecodeTCPProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		src, dst := AddrFromUint32(0x0a000001), AddrFromUint32(0x0a000102)
		raw := BuildTCP(MACFromUint64(1), MACFromUint64(2),
			IPv4{TTL: 64, Src: src, Dst: dst},
			TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags, Window: 512},
			payload)
		p, err := Decode(0, raw)
		if err != nil || !p.HasTCP {
			return false
		}
		return p.TCP.SrcPort == sp && p.TCP.DstPort == dp && p.TCP.Seq == seq &&
			p.TCP.Ack == ack && p.TCP.Flags == flags && bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: transport checksum verification accepts every well-formed
// segment produced by Marshal.
func TestTCPChecksumSelfConsistentProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		src, dst := AddrFromUint32(0x0a000001), AddrFromUint32(0x0a000102)
		h := TCP{SrcPort: sp, DstPort: dp, Flags: FlagACK}
		b := h.Marshal(nil, src, dst, payload)
		_, _, err := UnmarshalTCP(b, src, dst, true)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
