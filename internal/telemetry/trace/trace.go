// Package trace implements span-based causal packet tracing for the
// simulated testbed. A packet acquires a trace context at its origin (flood
// engine, benign client, C2 command) when deterministic head-based sampling
// selects its flow; every hop then records a child span with sim-time
// bounds, and discards terminate the chain with a cause tag. The tracer
// feeds per-hop and end-to-end latency histograms into a telemetry.Registry
// and retains finished spans in a bounded ring for offline analysis
// (cmd/tracetool).
//
// Hot-path discipline: an unsampled packet carries the zero Context, whose
// methods are allocation-free no-ops, and the sampling decision itself is a
// pure hash with no map lookups or allocations. Span records are pooled.
// All IDs are sequential in event order, so a fixed seed produces
// byte-identical trace output.
package trace

import (
	"math"
	"sync"

	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
)

// latencyBucketsUs spans 1 µs to 1 s, the range between a switch hop and a
// queued-behind-a-flood delivery (values are microseconds).
var latencyBucketsUs = []float64{
	1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000,
}

// Config parameterizes a Tracer.
type Config struct {
	// Seed perturbs the flow-sampling hash so different runs can sample
	// different flow subsets at the same rate.
	Seed int64
	// SampleRate is the fraction of flows traced, in [0, 1]. The decision
	// is per-flow (hash of the 5-tuple), so every packet of a sampled flow
	// is traced. Rates >= 1 trace everything; 0 disables sampling.
	SampleRate float64
	// SpanCapacity bounds the finished-span ring; the oldest spans are
	// evicted on overflow (default 65536).
	SpanCapacity int
	// Classify maps a flow to its kind at origin time. Nil leaves flows
	// KindUnknown; explicit OriginKind calls bypass it either way.
	Classify func(f Flow) Kind
	// Registry, when non-nil, receives the tracer's counters and latency
	// histograms.
	Registry *telemetry.Registry
}

// DefaultSpanCapacity is the finished-span ring size when Config leaves it 0.
const DefaultSpanCapacity = 65536

// Tracer owns sampling, span lifecycle, metrics, and the finished-span
// ring. All methods are safe for concurrent use and nil-receiver safe.
type Tracer struct {
	seed      uint64
	threshold uint64
	sampleAll bool
	classify  func(Flow) Kind

	mu        sync.Mutex
	nextTrace uint64
	nextSpan  uint64
	active    map[SpanID]*Span
	free      []*Span
	ring      []Span
	finished  uint64 // total spans ever finished; ring index = finished % cap

	firstAttack     sim.Time
	haveFirstAttack bool

	spans  telemetry.Counter
	traces [numKinds]telemetry.Counter
	drops  [numDropCauses]telemetry.Counter
	e2e    [numKinds]*telemetry.Histogram
	hops   map[string]*telemetry.Histogram
	reg    *telemetry.Registry
}

// New builds a Tracer and, when cfg.Registry is set, registers its metrics:
// trace_spans_total, trace_traces_total{kind}, trace_drops_total{cause},
// trace_end_to_end_us{kind} and (lazily, per hop name) trace_hop_latency_us.
func New(cfg Config) *Tracer {
	capacity := cfg.SpanCapacity
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	tr := &Tracer{
		seed:      uint64(cfg.Seed),
		classify:  cfg.Classify,
		active:    make(map[SpanID]*Span),
		ring:      make([]Span, 0, capacity),
		hops:      make(map[string]*telemetry.Histogram),
		reg:       cfg.Registry,
		sampleAll: cfg.SampleRate >= 1,
	}
	if cfg.SampleRate > 0 && cfg.SampleRate < 1 {
		tr.threshold = uint64(cfg.SampleRate * float64(math.MaxUint64))
	}
	for k := 0; k < numKinds; k++ {
		kind := telemetry.L("kind", Kind(k).String())
		if tr.reg != nil {
			tr.reg.RegisterCounter(&tr.traces[k], "trace_traces_total", kind)
			tr.e2e[k] = tr.reg.NewHistogram("trace_end_to_end_us", latencyBucketsUs, kind)
		} else {
			tr.e2e[k] = telemetry.NewHistogram(latencyBucketsUs)
		}
	}
	if tr.reg != nil {
		tr.reg.RegisterCounter(&tr.spans, "trace_spans_total")
		for c := 1; c < numDropCauses; c++ {
			tr.reg.RegisterCounter(&tr.drops[c], "trace_drops_total",
				telemetry.L("cause", DropCause(c).String()))
		}
	}
	return tr
}

// splitmix is the SplitMix64 finalizer: a fast, well-distributed 64-bit
// mixer used for the sampling hash.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// flowHash folds the 5-tuple and seed into one mixed 64-bit value. Pure
// function of its inputs: the sampling verdict for a flow is identical
// across runs with the same seed.
func flowHash(f Flow, seed uint64) uint64 {
	a := uint64(f.Src)<<32 | uint64(f.Dst)
	b := uint64(f.SrcPort)<<24 | uint64(f.DstPort)<<8 | uint64(f.Proto)
	return splitmix(splitmix(a^seed) ^ b)
}

// sampleFlow is the head-based sampling decision: allocation-free, no locks.
func (tr *Tracer) sampleFlow(f Flow) bool {
	if tr.sampleAll {
		return true
	}
	if tr.threshold == 0 {
		return false
	}
	return flowHash(f, tr.seed) < tr.threshold
}

// Sampled reports whether flow f would be traced, without starting a trace.
func (tr *Tracer) Sampled(f Flow) bool {
	if tr == nil {
		return false
	}
	return tr.sampleFlow(f)
}

// Origin starts a new trace for f when sampling selects it, classifying
// the flow via Config.Classify. The returned context is the origin span;
// unsampled flows get the zero Context (all methods no-ops, 0 allocs).
func (tr *Tracer) Origin(t sim.Time, f Flow, name, actor string) Context {
	if tr == nil || !tr.sampleFlow(f) {
		return Context{}
	}
	kind := KindUnknown
	if tr.classify != nil {
		kind = tr.classify(f)
	}
	return tr.origin(t, f, kind, name, actor)
}

// OriginKind is Origin with the kind fixed by the caller — the flood
// engines know their packets are attack traffic regardless of any
// classifier.
func (tr *Tracer) OriginKind(t sim.Time, f Flow, kind Kind, name, actor string) Context {
	if tr == nil || !tr.sampleFlow(f) {
		return Context{}
	}
	return tr.origin(t, f, kind, name, actor)
}

func (tr *Tracer) origin(t sim.Time, f Flow, kind Kind, name, actor string) Context {
	tr.mu.Lock()
	tr.nextTrace++
	id := TraceID(tr.nextTrace)
	sp := tr.acquire()
	*sp = Span{Trace: id, ID: tr.newSpanID(), Name: name, Actor: actor, Kind: kind, Flow: f, Start: t}
	tr.active[sp.ID] = sp
	// Track the MINIMUM origin time, not the first seen: in partitioned
	// runs domains execute their windows in arbitrary goroutine order, so
	// the first attack origin observed here need not be the earliest.
	if kind == KindAttack && (!tr.haveFirstAttack || t < tr.firstAttack) {
		tr.haveFirstAttack = true
		tr.firstAttack = t
	}
	sid := sp.ID
	tr.mu.Unlock()
	tr.traces[kind%numKinds].Inc()
	tr.spans.Inc()
	return Context{tr: tr, Trace: id, Span: sid, Root: t, Kind: kind}
}

// newSpanID must be called with mu held.
func (tr *Tracer) newSpanID() SpanID {
	tr.nextSpan++
	return SpanID(tr.nextSpan)
}

// acquire must be called with mu held.
func (tr *Tracer) acquire() *Span {
	if n := len(tr.free); n > 0 {
		sp := tr.free[n-1]
		tr.free = tr.free[:n-1]
		return sp
	}
	return new(Span)
}

func (tr *Tracer) child(c Context, t sim.Time, name, actor string) Context {
	tr.mu.Lock()
	sp := tr.acquire()
	*sp = Span{Trace: c.Trace, ID: tr.newSpanID(), Parent: c.Span, Name: name, Actor: actor, Kind: c.Kind, Start: t}
	tr.active[sp.ID] = sp
	sid := sp.ID
	tr.mu.Unlock()
	tr.spans.Inc()
	return Context{tr: tr, Trace: c.Trace, Span: sid, Root: c.Root, Kind: c.Kind}
}

func (tr *Tracer) finish(c Context, t sim.Time, tag string, cause DropCause, terminal bool) {
	tr.mu.Lock()
	sp, ok := tr.active[c.Span]
	if !ok {
		// Already finished (e.g. the duplicate delivery of a dup-impaired
		// frame): finishing twice is a deliberate no-op.
		tr.mu.Unlock()
		return
	}
	delete(tr.active, c.Span)
	sp.End = t
	sp.Tag = tag
	sp.Drop = cause
	start, name := sp.Start, sp.Name
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, *sp)
	} else {
		tr.ring[int(tr.finished%uint64(cap(tr.ring)))] = *sp
	}
	tr.finished++
	tr.free = append(tr.free, sp)
	hist := tr.hops[name]
	if hist == nil {
		if tr.reg != nil {
			hist = tr.reg.NewHistogram("trace_hop_latency_us", latencyBucketsUs, telemetry.L("hop", name))
		} else {
			hist = telemetry.NewHistogram(latencyBucketsUs)
		}
		tr.hops[name] = hist
	}
	tr.mu.Unlock()
	// Observe whole microseconds (integer division BEFORE the float
	// conversion): integral values this small are exact in float64, so the
	// histogram sums are commutative and snapshots stay byte-identical no
	// matter which order parallel domains interleave their observations.
	hist.Observe(float64((t - start) / 1e3))
	if cause != DropNone {
		tr.drops[cause%numDropCauses].Inc()
	} else if terminal {
		tr.e2e[c.Kind%numKinds].Observe(float64((t - c.Root) / 1e3))
	}
}

// FirstAttackOrigin reports the sim time of the first KindAttack origin
// span, the start anchor for the detection-latency metric.
func (tr *Tracer) FirstAttackOrigin() (sim.Time, bool) {
	if tr == nil {
		return 0, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.firstAttack, tr.haveFirstAttack
}

// Spans returns the finished spans in finish order, oldest first. The
// result is a copy.
func (tr *Tracer) Spans() []Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Span, len(tr.ring))
	if len(tr.ring) < cap(tr.ring) {
		copy(out, tr.ring)
		return out
	}
	head := int(tr.finished % uint64(cap(tr.ring)))
	n := copy(out, tr.ring[head:])
	copy(out[n:], tr.ring[:head])
	return out
}

// Evicted reports how many finished spans the ring has discarded.
func (tr *Tracer) Evicted() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.ring) < cap(tr.ring) {
		return 0
	}
	return tr.finished - uint64(len(tr.ring))
}

// Active reports spans started but not yet finished (should drain to the
// in-flight set at quiesce).
func (tr *Tracer) Active() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.active)
}

// Context is a packet's position in its trace: the current span plus the
// trace's identity, origin time and kind. The zero Context is valid and
// means "not sampled": every method is an allocation-free no-op. Contexts
// are values — copy them freely alongside the frame they describe.
type Context struct {
	tr    *Tracer
	Trace TraceID
	Span  SpanID
	Root  sim.Time // origin span start, for end-to-end latency
	Kind  Kind
}

// Sampled reports whether the context belongs to a live trace.
func (c Context) Sampled() bool { return c.tr != nil }

// Start opens a child span under c and returns its context. The parent
// may already be finished (hops hand off before the next one starts).
func (c Context) Start(t sim.Time, name, actor string) Context {
	if c.tr == nil {
		return Context{}
	}
	return c.tr.child(c, t, name, actor)
}

// Finish closes the span at t. Finishing a span twice (or finishing the
// zero Context) is a no-op.
func (c Context) Finish(t sim.Time) {
	if c.tr != nil {
		c.tr.finish(c, t, "", DropNone, false)
	}
}

// FinishTag closes the span with an annotation (e.g. the IDS verdict).
func (c Context) FinishTag(t sim.Time, tag string) {
	if c.tr != nil {
		c.tr.finish(c, t, tag, DropNone, false)
	}
}

// FinishTerminal closes the span and records the trace's end-to-end
// latency (origin start → t) in trace_end_to_end_us{kind}. The delivery
// point (netstack dispatch to a socket) calls this.
func (c Context) FinishTerminal(t sim.Time) {
	if c.tr != nil {
		c.tr.finish(c, t, "", DropNone, true)
	}
}

// Drop closes the span as a discard with the given cause, counted in
// trace_drops_total{cause}.
func (c Context) Drop(t sim.Time, cause DropCause) {
	if c.tr != nil {
		c.tr.finish(c, t, "", cause, false)
	}
}
