package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"ddoshield/internal/sim"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (one # TYPE line per metric name, then the samples). Output is
// deterministic: metrics sort by name, then label string.
func WritePrometheus(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	lastName := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastName {
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.Name, s.Kind)
			lastName = s.Name
		}
		switch s.Kind {
		case KindHistogram:
			cum := uint64(0)
			for i, b := range s.Buckets {
				cum += s.BucketCounts[i]
				fmt.Fprintf(bw, "%s_bucket%s %d\n", s.Name, mergeLabel(s.Labels, "le", formatBound(b)), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", s.Name, s.Labels, formatFloat(s.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", s.Name, s.Labels, s.Count)
		default:
			fmt.Fprintf(bw, "%s%s %s\n", s.Name, s.Labels, formatFloat(s.Value))
		}
	}
	return bw.Flush()
}

// mergeLabel inserts one extra label pair into a rendered label string.
func mergeLabel(labels, key, value string) string {
	pair := key + `="` + escapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return formatFloat(b)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonMetric is the machine-readable snapshot row.
type jsonMetric struct {
	Name         string    `json:"name"`
	Labels       string    `json:"labels,omitempty"`
	Type         string    `json:"type"`
	Value        *float64  `json:"value,omitempty"`
	Buckets      []float64 `json:"buckets,omitempty"`
	BucketCounts []uint64  `json:"bucket_counts,omitempty"`
	Sum          *float64  `json:"sum,omitempty"`
	Count        *uint64   `json:"count,omitempty"`
}

type jsonSnapshot struct {
	SimNowNs int64        `json:"sim_now_ns"`
	Metrics  []jsonMetric `json:"metrics"`
}

// WriteJSON renders a machine-readable snapshot of the registry at the
// given simulated instant — the format EXPERIMENTS.md regenerates figures
// from. Deterministic for a deterministic registry.
func WriteJSON(w io.Writer, now sim.Time, r *Registry) error {
	snap := jsonSnapshot{SimNowNs: int64(now)}
	for _, s := range r.Snapshot() {
		m := jsonMetric{Name: s.Name, Labels: s.Labels, Type: s.Kind.String()}
		if s.Kind == KindHistogram {
			buckets := make([]float64, len(s.Buckets))
			copy(buckets, s.Buckets)
			if n := len(buckets); n > 0 && math.IsInf(buckets[n-1], 1) {
				buckets[n-1] = math.MaxFloat64 // JSON cannot carry +Inf
			}
			m.Buckets = buckets
			m.BucketCounts = s.BucketCounts
			sum, count := s.Sum, s.Count
			m.Sum, m.Count = &sum, &count
		} else {
			v := s.Value
			m.Value = &v
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// chromeEvent is one entry of the chrome://tracing "Trace Event Format":
// an instant event ("ph":"i") with microsecond timestamps on the virtual
// clock. Load the output in chrome://tracing or https://ui.perfetto.dev.
type chromeEvent struct {
	Name  string     `json:"name"`
	Cat   string     `json:"cat"`
	Phase string     `json:"ph"`
	TS    float64    `json:"ts"` // microseconds
	PID   int        `json:"pid"`
	TID   int        `json:"tid"`
	Scope string     `json:"s"`
	Args  chromeArgs `json:"args"`
}

type chromeArgs struct {
	Actor string `json:"actor,omitempty"`
	Value int64  `json:"value"`
	Seq   uint64 `json:"seq"`
}

// WriteChromeTrace renders the recorder's retained events as a
// chrome://tracing-compatible JSON array, oldest first. The category
// becomes the trace "cat" (filterable in the UI) and every category gets
// its own tid so the viewer lays subsystems out as separate rows.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, ev := range r.Events() {
		if i > 0 {
			bw.WriteString(",\n")
		}
		ce := chromeEvent{
			Name:  ev.Name,
			Cat:   ev.Cat.String(),
			Phase: "i",
			TS:    float64(ev.Time) / 1e3,
			PID:   1,
			TID:   int(ev.Cat),
			Scope: "g",
			Args:  chromeArgs{Actor: ev.Actor, Value: ev.Value, Seq: ev.Seq},
		}
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		bw.Write(b)
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
