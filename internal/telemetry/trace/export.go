package trace

import (
	"bufio"
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"ddoshield/internal/sim"
)

// FlowString renders a flow as "src:sport>dst:dport/proto" with dotted-quad
// addresses — the compact provenance form written on root-span lines.
func FlowString(f Flow) string {
	return string(appendFlow(make([]byte, 0, 48), f))
}

func appendIPv4(b []byte, a uint32) []byte {
	b = strconv.AppendUint(b, uint64(a>>24&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a>>16&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a>>8&0xff), 10)
	b = append(b, '.')
	return strconv.AppendUint(b, uint64(a&0xff), 10)
}

func appendFlow(b []byte, f Flow) []byte {
	b = appendIPv4(b, f.Src)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(f.SrcPort), 10)
	b = append(b, '>')
	b = appendIPv4(b, f.Dst)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(f.DstPort), 10)
	b = append(b, '/')
	return strconv.AppendUint(b, uint64(f.Proto), 10)
}

// ParseFlow inverts FlowString.
func ParseFlow(s string) (Flow, error) {
	var f Flow
	var srcA, srcB, srcC, srcD, dstA, dstB, dstC, dstD, sport, dport, proto int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d:%d>%d.%d.%d.%d:%d/%d",
		&srcA, &srcB, &srcC, &srcD, &sport, &dstA, &dstB, &dstC, &dstD, &dport, &proto)
	if err != nil || n != 11 {
		return f, fmt.Errorf("trace: malformed flow %q", s)
	}
	f.Src = uint32(srcA)<<24 | uint32(srcB)<<16 | uint32(srcC)<<8 | uint32(srcD)
	f.Dst = uint32(dstA)<<24 | uint32(dstB)<<16 | uint32(dstC)<<8 | uint32(dstD)
	f.SrcPort = uint16(sport)
	f.DstPort = uint16(dport)
	f.Proto = uint8(proto)
	return f, nil
}

// WriteSpans writes spans as one JSON object per line, in slice order.
// Zero-valued optional fields (parent, flow, drop, tag) are omitted, and
// field order is fixed, so equal span sets serialize byte-identically.
func WriteSpans(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	var scratch []byte
	for _, s := range spans {
		bw.WriteString(`{"trace":`)
		bw.WriteString(strconv.FormatUint(uint64(s.Trace), 10))
		bw.WriteString(`,"span":`)
		bw.WriteString(strconv.FormatUint(uint64(s.ID), 10))
		if s.Parent != 0 {
			bw.WriteString(`,"parent":`)
			bw.WriteString(strconv.FormatUint(uint64(s.Parent), 10))
		}
		bw.WriteString(`,"name":`)
		bw.WriteString(strconv.Quote(s.Name))
		bw.WriteString(`,"actor":`)
		bw.WriteString(strconv.Quote(s.Actor))
		bw.WriteString(`,"kind":"`)
		bw.WriteString(s.Kind.String())
		bw.WriteByte('"')
		if s.Parent == 0 {
			bw.WriteString(`,"flow":"`)
			scratch = appendFlow(scratch[:0], s.Flow)
			bw.Write(scratch)
			bw.WriteByte('"')
		}
		bw.WriteString(`,"start":`)
		bw.WriteString(strconv.FormatInt(int64(s.Start), 10))
		bw.WriteString(`,"end":`)
		bw.WriteString(strconv.FormatInt(int64(s.End), 10))
		if s.Drop != DropNone {
			bw.WriteString(`,"drop":"`)
			bw.WriteString(s.Drop.String())
			bw.WriteByte('"')
		}
		if s.Tag != "" {
			bw.WriteString(`,"tag":`)
			bw.WriteString(strconv.Quote(s.Tag))
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

// CanonicalSpans rewrites spans into a run-order-independent canonical
// form. Trace and span IDs are allocation-order artifacts: parallel
// domains interleave allocations (and finish order) nondeterministically,
// so two runs of the same scenario can emit the same causal structure
// under different numberings. This function restores comparability:
// traces are ordered by their origin span (start time, flow, name, actor,
// then full structural comparison), spans within a trace follow a
// canonical pre-order walk of the parent/child tree with structurally
// sorted siblings, and every ID is renumbered densely in that order.
// Runs with identical causal structure then serialize byte-identically
// through WriteSpans. Spans whose parent is absent from the input (still
// active, or evicted from the ring) become roots with Parent 0.
func CanonicalSpans(spans []Span) []Span {
	byTrace := make(map[TraceID][]Span)
	for _, s := range spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	trees := make([]*spanTree, 0, len(byTrace))
	for _, g := range byTrace {
		trees = append(trees, newSpanTree(g))
	}
	slices.SortFunc(trees, compareTrees)
	out := make([]Span, 0, len(spans))
	var next SpanID
	for ti, t := range trees {
		out = t.appendCanonical(out, TraceID(ti+1), &next)
	}
	return out
}

// spanTree is one trace's spans arranged as a forest (normally a single
// tree rooted at the origin span).
type spanTree struct {
	spans    []Span
	children map[SpanID][]int // parent span ID -> child indices, canonical order
	roots    []int
}

func newSpanTree(g []Span) *spanTree {
	t := &spanTree{spans: g, children: make(map[SpanID][]int)}
	present := make(map[SpanID]bool, len(g))
	for _, s := range g {
		present[s.ID] = true
	}
	for i, s := range g {
		if s.Parent != 0 && present[s.Parent] {
			t.children[s.Parent] = append(t.children[s.Parent], i)
		} else {
			t.roots = append(t.roots, i)
		}
	}
	// Canonicalize sibling order bottom-up: once a node's descendants are
	// sorted, comparing two siblings' subtrees is well-defined.
	var sortKids func(idx []int)
	sortKids = func(idx []int) {
		for _, i := range idx {
			sortKids(t.children[t.spans[i].ID])
		}
		slices.SortFunc(idx, func(a, b int) int { return compareSubtrees(t, a, t, b) })
	}
	sortKids(t.roots)
	return t
}

// compareSubtrees orders two canonically-sorted subtrees (possibly from
// different trees) by span fields, then child count, then children
// pairwise. Subtrees that compare equal are structurally identical, so
// any residual ordering ambiguity cannot affect serialized output.
func compareSubtrees(ta *spanTree, a int, tb *spanTree, b int) int {
	sa, sb := &ta.spans[a], &tb.spans[b]
	if c := cmp.Compare(sa.Start, sb.Start); c != 0 {
		return c
	}
	if c := cmp.Compare(sa.End, sb.End); c != 0 {
		return c
	}
	if c := strings.Compare(sa.Name, sb.Name); c != 0 {
		return c
	}
	if c := strings.Compare(sa.Actor, sb.Actor); c != 0 {
		return c
	}
	if c := cmp.Compare(int(sa.Kind), int(sb.Kind)); c != 0 {
		return c
	}
	if c := cmp.Compare(int(sa.Drop), int(sb.Drop)); c != 0 {
		return c
	}
	if c := strings.Compare(sa.Tag, sb.Tag); c != 0 {
		return c
	}
	if c := compareFlows(sa.Flow, sb.Flow); c != 0 {
		return c
	}
	ca, cb := ta.children[sa.ID], tb.children[sb.ID]
	if c := cmp.Compare(len(ca), len(cb)); c != 0 {
		return c
	}
	for i := range ca {
		if c := compareSubtrees(ta, ca[i], tb, cb[i]); c != 0 {
			return c
		}
	}
	return 0
}

func compareFlows(a, b Flow) int {
	if c := cmp.Compare(a.Src, b.Src); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Dst, b.Dst); c != 0 {
		return c
	}
	if c := cmp.Compare(a.SrcPort, b.SrcPort); c != 0 {
		return c
	}
	if c := cmp.Compare(a.DstPort, b.DstPort); c != 0 {
		return c
	}
	return cmp.Compare(a.Proto, b.Proto)
}

func compareTrees(a, b *spanTree) int {
	n := min(len(a.roots), len(b.roots))
	for i := 0; i < n; i++ {
		if c := compareSubtrees(a, a.roots[i], b, b.roots[i]); c != 0 {
			return c
		}
	}
	return cmp.Compare(len(a.roots), len(b.roots))
}

// appendCanonical walks the forest pre-order, renumbering the trace and
// every span/parent ID densely.
func (t *spanTree) appendCanonical(out []Span, tid TraceID, next *SpanID) []Span {
	var walk func(i int, parent SpanID)
	walk = func(i int, parent SpanID) {
		*next++
		id := *next
		s := t.spans[i]
		oldID := s.ID
		s.Trace, s.ID, s.Parent = tid, id, parent
		out = append(out, s)
		for _, c := range t.children[oldID] {
			walk(c, id)
		}
	}
	for _, r := range t.roots {
		walk(r, 0)
	}
	return out
}

// wireSpan is the JSON shape WriteSpans emits, for read-back.
type wireSpan struct {
	Trace  uint64 `json:"trace"`
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent"`
	Name   string `json:"name"`
	Actor  string `json:"actor"`
	Kind   string `json:"kind"`
	Flow   string `json:"flow"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Drop   string `json:"drop"`
	Tag    string `json:"tag"`
}

// ReadSpans parses WriteSpans output (JSONL). Blank lines are skipped.
func ReadSpans(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ws wireSpan
		if err := json.Unmarshal(raw, &ws); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		s := Span{
			Trace:  TraceID(ws.Trace),
			ID:     SpanID(ws.Span),
			Parent: SpanID(ws.Parent),
			Name:   ws.Name,
			Actor:  ws.Actor,
			Kind:   ParseKind(ws.Kind),
			Start:  sim.Time(ws.Start),
			End:    sim.Time(ws.End),
			Drop:   ParseDropCause(ws.Drop),
			Tag:    ws.Tag,
		}
		if ws.Flow != "" {
			f, err := ParseFlow(ws.Flow)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			s.Flow = f
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
