package prof

import (
	"fmt"
	"strings"

	"ddoshield/internal/report"
)

// Report is the straggler/bottleneck digest of a Profile: a per-domain
// table plus plain-language findings ("domain 3 spent 41% of wall clock
// waiting", "switch lan0 executed 6.2x mean entity events"). Findings mix
// deterministic attribution with wall-clock phase data, so the report —
// like the Wall section it reads — is not a deterministic artifact.
type Report struct {
	// Findings are ranked observations, most load-bearing first.
	Findings []string `json:"findings"`

	profile *Profile
}

// BuildReport digests a profile. Sections that are absent (serial runs
// have no engine plane, unprofiled runs no wall plane) simply contribute
// no rows or findings.
func BuildReport(p *Profile) *Report {
	r := &Report{profile: p}
	if p == nil {
		return r
	}
	r.addEntityFindings()
	r.addWallFindings()
	r.addImbalanceFinding()
	r.addCrossFinding()
	r.addPhaseFinding()
	return r
}

// addEntityFindings names the hottest entity — at fleet scale this is the
// core switch every trunk crossing serializes through.
func (r *Report) addEntityFindings() {
	v := r.profile.Virtual
	if v == nil || len(v.TopEntities) == 0 {
		return
	}
	top := v.TopEntities[0]
	f := fmt.Sprintf("%s %s executed %.1fx the mean entity event count (%d events",
		top.Kind, top.Name, top.XMean, top.Events)
	if top.Domain >= 0 {
		f += fmt.Sprintf(", domain %d", top.Domain)
	}
	f += ")"
	if top.Kind == KindSwitch && top.Domain == 0 {
		f += " — the core-domain switch serializes every trunk crossing"
	}
	r.Findings = append(r.Findings, f)
}

// addWallFindings names the worst barrier-waiter and the straggler it
// waited for.
func (r *Report) addWallFindings() {
	w := r.profile.Wall
	if w == nil || len(w.PerDomain) == 0 {
		return
	}
	waiter, straggler := 0, 0
	for i, d := range w.PerDomain {
		if d.WaitShare > w.PerDomain[waiter].WaitShare {
			waiter = i
		}
		if d.ExecMS > w.PerDomain[straggler].ExecMS {
			straggler = i
		}
	}
	wd := w.PerDomain[waiter]
	if wd.WaitShare > 0 {
		r.Findings = append(r.Findings, fmt.Sprintf(
			"domain %d spent %.0f%% of its epoch wall clock waiting at barriers (%.1f ms); straggler: domain %d at %.1f ms execute",
			wd.Domain, wd.WaitShare*100, wd.WaitMS,
			w.PerDomain[straggler].Domain, w.PerDomain[straggler].ExecMS))
	}
}

// addImbalanceFinding reports the virtual max/mean domain load index.
func (r *Report) addImbalanceFinding() {
	v := r.profile.Virtual
	if v == nil || v.ImbalanceIndex == 0 || len(v.Domains) == 0 {
		return
	}
	hot := 0
	for i, d := range v.Domains {
		if d.Events > v.Domains[hot].Events {
			hot = i
		}
	}
	r.Findings = append(r.Findings, fmt.Sprintf(
		"virtual load imbalance (max/mean events per domain) = %.2f across %d domains; hottest: domain %d with %d events",
		v.ImbalanceIndex, v.EvalDomains, v.Domains[hot].Domain, v.Domains[hot].Events))
}

// addCrossFinding names the heaviest cross-domain message pair.
func (r *Report) addCrossFinding() {
	e := r.profile.Engine
	if e == nil || len(e.Cross) == 0 {
		return
	}
	var total uint64
	hot := 0
	for i, c := range e.Cross {
		total += c.Count
		if c.Count > e.Cross[hot].Count {
			hot = i
		}
	}
	h := e.Cross[hot]
	r.Findings = append(r.Findings, fmt.Sprintf(
		"cross-domain traffic concentrates on %d->%d: %d msgs (%.0f%% of %d total) over %d epochs",
		h.From, h.To, h.Count, float64(h.Count)/float64(total)*100, total, e.Epochs))
}

// addPhaseFinding summarizes the campaign phase split.
func (r *Report) addPhaseFinding() {
	w := r.profile.Wall
	if w == nil || len(w.Phases) == 0 {
		return
	}
	var parts []string
	var total float64
	for _, ph := range w.Phases {
		total += ph.MS
		parts = append(parts, fmt.Sprintf("%s %.1f ms", ph.Phase, ph.MS))
	}
	if total == 0 {
		return
	}
	r.Findings = append(r.Findings, "campaign phases: "+strings.Join(parts, ", "))
}

// Table renders the per-domain digest as an aligned text table: virtual
// load, engine counters and wall-clock phase split side by side, with "-"
// where a section is absent.
func (r *Report) Table() string {
	p := r.profile
	if p == nil {
		return ""
	}
	rows := 0
	if p.Virtual != nil && len(p.Virtual.Domains) > rows {
		rows = len(p.Virtual.Domains)
	}
	if p.Engine != nil && len(p.Engine.PerDomain) > rows {
		rows = len(p.Engine.PerDomain)
	}
	if p.Wall != nil && len(p.Wall.PerDomain) > rows {
		rows = len(p.Wall.PerDomain)
	}
	if rows == 0 {
		return ""
	}
	headers := []string{"domain", "virt events", "virt share", "engine events", "msgs in", "msgs out", "exec ms", "wait ms", "wait %"}
	var table [][]string
	for i := 0; i < rows; i++ {
		row := []string{fmt.Sprintf("%d", i), "-", "-", "-", "-", "-", "-", "-", "-"}
		if p.Virtual != nil && i < len(p.Virtual.Domains) {
			d := p.Virtual.Domains[i]
			row[1] = fmt.Sprintf("%d", d.Events)
			row[2] = fmt.Sprintf("%.1f%%", d.Share*100)
		}
		if p.Engine != nil && i < len(p.Engine.PerDomain) {
			d := p.Engine.PerDomain[i]
			row[3] = fmt.Sprintf("%d", d.Events)
			row[4] = fmt.Sprintf("%d", d.MsgsIn)
			row[5] = fmt.Sprintf("%d", d.MsgsOut)
		}
		if p.Wall != nil && i < len(p.Wall.PerDomain) {
			d := p.Wall.PerDomain[i]
			row[6] = fmt.Sprintf("%.1f", d.ExecMS)
			row[7] = fmt.Sprintf("%.1f", d.WaitMS)
			row[8] = fmt.Sprintf("%.0f%%", d.WaitShare*100)
		}
		table = append(table, row)
	}
	return report.Table(headers, table)
}

// String renders the table followed by the findings — the human-readable
// bottleneck report.
func (r *Report) String() string {
	var b strings.Builder
	if t := r.Table(); t != "" {
		b.WriteString(t)
	}
	for _, f := range r.Findings {
		b.WriteString("  * ")
		b.WriteString(f)
		b.WriteString("\n")
	}
	return b.String()
}
