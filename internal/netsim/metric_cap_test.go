package netsim

import (
	"strings"
	"testing"

	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
)

// promText renders the registry's Prometheus snapshot.
func promText(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestMetricEntityCapCutoff pins the per-entity cardinality cap added for
// fleet-scale topologies: exactly the first limit entities (in creation
// order: the switch, then each node's NIC and access link) publish metric
// series; later entities stay out of the snapshot entirely.
func TestMetricEntityCapCutoff(t *testing.T) {
	net := New(sim.NewScheduler())
	net.SetMetricEntityLimit(3)
	reg := telemetry.NewRegistry()
	net.SetTelemetry(reg, nil)

	sw := net.NewSwitch("sw0")                  // slot 1
	na := net.NewNode("a").AddNIC()             // slot 2
	net.Connect(na, sw.NewPort(), LinkConfig{}) // slot 3
	nb := net.NewNode("b").AddNIC()             // over the cap
	net.Connect(nb, sw.NewPort(), LinkConfig{}) // over the cap
	na.SetHandler(func([]byte) {})
	nb.SetHandler(func([]byte) {})

	links := net.Links()
	text := promText(t, reg)
	for _, want := range []string{
		`netsim_switch_forwarded_total{switch="sw0"}`,
		`netsim_nic_tx_frames_total{nic="` + na.String() + `"}`,
		`netsim_link_tx_frames_total{dir="` + links[0].String() + `"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot missing registered series %s:\n%s", want, text)
		}
	}
	for _, banned := range []string{
		`nic="` + nb.String() + `"`,
		`dir="` + links[1].String() + `"`,
	} {
		if strings.Contains(text, banned) {
			t.Errorf("snapshot contains capped entity %s:\n%s", banned, text)
		}
	}
}

// TestMetricEntityCapStillAggregates pins the cap's other half: capped
// entities keep counting. Their Stats()/Counters() accessors move, and
// fleet-total aggregations (summing Counters over Links(), the switch's
// forwarded count) include the capped entities' traffic — only the
// per-entity snapshot series are suppressed.
func TestMetricEntityCapStillAggregates(t *testing.T) {
	net := New(sim.NewScheduler())
	net.SetMetricEntityLimit(3)
	reg := telemetry.NewRegistry()
	net.SetTelemetry(reg, nil)

	sw := net.NewSwitch("sw0")
	na := net.NewNode("a").AddNIC()
	net.Connect(na, sw.NewPort(), LinkConfig{})
	nb := net.NewNode("b").AddNIC() // capped, as is its link below
	net.Connect(nb, sw.NewPort(), LinkConfig{})
	na.SetHandler(func([]byte) {})
	nb.SetHandler(func([]byte) {})

	// Two frames each way; the second forwards instead of flooding.
	const frames = 2
	for i := 0; i < frames; i++ {
		na.Send(frame(na.MAC(), nb.MAC(), 100))
		nb.Send(frame(nb.MAC(), na.MAC(), 100))
		net.Scheduler().Drain()
	}

	// The capped NIC and link still count.
	rxF, _, txF, _ := nb.Stats()
	if txF != frames || rxF != frames {
		t.Fatalf("capped NIC b0 stats rx=%d tx=%d, want %d/%d", rxF, txF, frames, frames)
	}
	links := net.Links()
	if len(links) != 2 {
		t.Fatalf("Links() = %d, want 2", len(links))
	}
	capped := links[1]
	if got := capped.Counters().TxFrames; got != 2*frames {
		t.Fatalf("capped link counters tx=%d, want %d", got, 2*frames)
	}
	// Per-direction attribution on the capped link works too.
	if got := capped.CountersSide(0).TxFrames; got != frames {
		t.Fatalf("capped link side 0 tx=%d, want %d", got, frames)
	}
	// Fleet totals built by aggregation include the capped entities.
	var total uint64
	for _, l := range links {
		total += l.Counters().TxFrames
	}
	if total != 4*frames {
		t.Fatalf("fleet link total = %d, want %d", total, 4*frames)
	}
	// Each of the 2*frames sends traverses the switch exactly once.
	fwd, fld := sw.Stats()
	if fwd+fld != 2*frames {
		t.Fatalf("switch saw %d frames (fwd=%d fld=%d), want %d", fwd+fld, fwd, fld, 2*frames)
	}
	// And the registered (uncapped) link's series move with its counter.
	text := promText(t, reg)
	want := `netsim_link_tx_frames_total{dir="` + links[0].String() + `"} 2`
	if !strings.Contains(text, want) {
		t.Errorf("registered link series not counting (want %s):\n%s", want, text)
	}
}
