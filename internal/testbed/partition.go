package testbed

import "sort"

// Load-aware fleet placement. The round-robin `i % groups` layout this
// replaces put every heavy device class in lock-step across groups and —
// worse — concentrated whole profile classes into single PDES domains,
// so one hot domain serialized the epoch barrier while idle domains
// waited. Placement here is greedy LPT (longest-processing-time) bin
// packing over each device's expected event rate: sort devices by weight
// descending, assign each to the currently lightest bin. The classic
// 4/3-approximation bound applies, which in practice keeps the max/min
// domain event-rate ratio within a small constant for any mixed fleet
// (the partition tests pin the observed bound).
//
// Determinism: placement is a pure function of (profiles, think time,
// scannability, group count) — no RNG, no map iteration, stable sorts
// only. The same Config therefore yields the same topology on every run,
// and the topology never depends on Domains: execution mode chooses where
// groups *run*, never what is *simulated*, preserving byte-identical
// output across Domains settings.

// placement is the computed layout for one Config.
type placement struct {
	// weights[i] is device i's expected event-rate weight.
	weights []float64
	// deviceGroup[i] is device i's access-switch group (all 0 when the
	// topology is flat).
	deviceGroup []int
	// groupShard[g] is group g's core-fabric shard (nil when the core is
	// unsharded). Pure topology: contiguous blocks of groups
	// (g*CoreShards/DeviceGroups), never a function of Domains.
	groupShard []int
	// groupDomain[g] is group g's PDES domain (nil when Domains <= 1 or
	// the topology is flat).
	groupDomain []int
	// shardDomain[s] is core shard s's PDES domain (nil when serial or
	// unsharded).
	shardDomain []int
	// deviceDomain[i] is device i's PDES domain (0 when serial).
	deviceDomain []int
}

// layout computes the fleet placement for the configuration. Requires
// withDefaults() to have run (Profiles, MeanThink, group/domain counts
// populated).
func (c Config) layout() placement { return c.layoutDomains(c.Domains) }

// layoutDomains computes the placement for an arbitrary domain count,
// independent of c.Domains. The execution engine uses the layout at
// c.Domains (via layout); the profiler's virtual-load attribution
// re-evaluates the same pure function at a fixed reference count so its
// snapshot is byte-identical across Domains settings.
func (c Config) layoutDomains(domains int) placement {
	pl := placement{
		weights:      make([]float64, c.NumDevices),
		deviceGroup:  make([]int, c.NumDevices),
		deviceDomain: make([]int, c.NumDevices),
	}
	for i := range pl.weights {
		p := c.Profiles[i%len(c.Profiles)]
		pl.weights[i] = p.EventWeight(c.MeanThink, c.deviceScannable(i))
	}
	shards := c.coreShardCount()
	if shards > 1 {
		// Shard assignment is fixed topology (group g trunks to shard
		// g*CoreShards/DeviceGroups — contiguous blocks), computed before
		// any domain decision so the wiring never varies with Domains.
		// Blocks rather than round-robin because assignGroups below
		// concentrates the scannable plane into the lowest groups when it
		// fits one shard; block assignment keeps those groups behind a
		// single fabric switch so a scan probe crosses one shard, not
		// source shard -> lan0 -> target shard.
		pl.groupShard = make([]int, c.DeviceGroups)
		for g := range pl.groupShard {
			pl.groupShard[g] = g * shards / c.DeviceGroups
		}
	}
	if c.DeviceGroups > 1 {
		pl.deviceGroup = c.assignGroups(pl.weights, shards)
	}
	if domains > 1 {
		if c.DeviceGroups > 1 {
			// Domain granularity is the group: a group's devices share an
			// edge switch, and that whole subtree must execute in one
			// domain. Pack groups onto the non-core domains by their
			// summed device weight. Core-fabric shards then place by
			// traffic plurality: each shard carries a virtual relay load
			// (its groups' core pull scaled by shardRelayFraction) and runs
			// in whichever domain already owns the largest share of that
			// pull, so shard-to-edge deliveries for its hottest groups stay
			// intra-domain heap pushes instead of epoch-mailbox crossings.
			// Locality beats spreading here: the relay weight is a small
			// fraction of a domain's load (the skew test bounds the
			// combined packing), while every avoided crossing saves a
			// mailbox round on each scan probe and flood packet.
			groupWeight := make([]float64, c.DeviceGroups)
			for i, g := range pl.deviceGroup {
				groupWeight[g] += pl.weights[i]
			}
			bins := partitionLPT(groupWeight, domains-1)
			pl.groupDomain = make([]int, c.DeviceGroups)
			for g := range pl.groupDomain {
				pl.groupDomain[g] = 1 + bins[g]
			}
			if shards > 1 {
				coreWeight := c.corePullWeights(pl)
				pl.shardDomain = make([]int, shards)
				for s := range pl.shardDomain {
					pull := make([]float64, domains)
					first := -1
					for g, gs := range pl.groupShard {
						if gs != s {
							continue
						}
						if first < 0 {
							first = g
						}
						pull[pl.groupDomain[g]] += coreWeight[g]
					}
					best := pl.groupDomain[first]
					for d := 1; d < domains; d++ {
						if pull[d] > pull[best] {
							best = d
						}
					}
					pl.shardDomain[s] = best
				}
			}
			for i, g := range pl.deviceGroup {
				pl.deviceDomain[i] = pl.groupDomain[g]
			}
		} else {
			// Flat topology, partitioned execution: devices spread
			// directly over the non-core domains.
			bins := partitionLPT(pl.weights, domains-1)
			for i, b := range bins {
				pl.deviceDomain[i] = 1 + b
			}
		}
	}
	return pl
}

// assignGroups packs devices onto edge groups. The base policy is plain
// greedy LPT over device event weight. With a sharded core there is one
// refinement: scan/conscription traffic between scannable devices is the
// dominant device-to-device core crossing, and scattering the scannable
// plane across shards turns every probe into source shard -> lan0 ->
// target shard (three fabric switch events, four cross-domain messages)
// where the unsharded core pays one. When the plane fits inside one
// shard's share of the fleet, concentrate it: scannable devices LPT-pack
// over shard 0's group block only — the address-contiguous vulnerable
// subnet sits behind one aggregation shard — and the rest of the fleet
// balances over all groups around them.
func (c Config) assignGroups(weights []float64, shards int) []int {
	restrict := 0 // 0 = no shard restriction for scannable devices
	if shards > 1 {
		scannable := c.scannableLimit()
		if scannable > c.NumDevices {
			scannable = c.NumDevices
		}
		if scannable*shards <= c.NumDevices {
			// Shard 0's contiguous block under g*shards/DeviceGroups.
			restrict = (c.DeviceGroups + shards - 1) / shards
		}
	}
	if restrict == 0 {
		return partitionLPT(weights, c.DeviceGroups)
	}
	assign := make([]int, len(weights))
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	load := make([]float64, c.DeviceGroups)
	for _, idx := range order {
		bins := c.DeviceGroups
		if c.deviceScannable(idx) {
			bins = restrict
		}
		best := 0
		for b := 1; b < bins; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		assign[idx] = best
		load[best] += weights[idx]
	}
	return assign
}

// shardRelayFraction scales a crossing device's event weight down to the
// forwarding work its packets impose on a core shard switch. Per crossing
// packet the shard executes roughly one forwarding event while the
// endpoints execute the device-side timer/netstack/app cascade of several
// events, and only the cross-group slice of a scannable device's traffic
// reaches the fabric at all; 0.15 matches the shard-switch engine-event
// share observed in the 100k profile (BENCH_pdes.json bottleneck digest).
const shardRelayFraction = 0.15

// corePullWeights reports, per group, the event weight its devices pull
// through the core fabric: every device when the benign target is the
// central TServer, only scannable (bot-capable) devices when EdgeServers
// keep benign traffic group-local.
func (c Config) corePullWeights(pl placement) []float64 {
	out := make([]float64, c.DeviceGroups)
	for i, g := range pl.deviceGroup {
		if !c.EdgeServers || c.deviceScannable(i) {
			out[g] += pl.weights[i]
		}
	}
	return out
}

// domainOfGroup reports group g's PDES domain (0 when serial).
func (pl placement) domainOfGroup(g int) int {
	if pl.groupDomain == nil {
		return 0
	}
	return pl.groupDomain[g]
}

// domainOfShard reports core shard s's PDES domain (0 when serial).
func (pl placement) domainOfShard(s int) int {
	if pl.shardDomain == nil {
		return 0
	}
	return pl.shardDomain[s]
}

// partitionLPT assigns each weighted item to one of bins bins, heaviest
// items first, each to the currently lightest bin (ties break toward the
// lowest bin index; equal-weight items keep index order via the stable
// sort, so a uniform fleet degrades to exactly the old round-robin).
func partitionLPT(weights []float64, bins int) []int {
	assign := make([]int, len(weights))
	if bins <= 1 {
		return assign
	}
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	load := make([]float64, bins)
	for _, idx := range order {
		best := 0
		for b := 1; b < bins; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		assign[idx] = best
		load[best] += weights[idx]
	}
	return assign
}

// binLoads sums the assigned weight per bin — the quantity the skew test
// bounds.
func binLoads(weights []float64, assign []int, bins int) []float64 {
	load := make([]float64, bins)
	for i, b := range assign {
		load[b] += weights[i]
	}
	return load
}
