package faults

import (
	"testing"
	"time"

	"ddoshield/internal/container"
	"ddoshield/internal/netsim"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// rig is a minimal injectable topology: n containers on one switch.
type rig struct {
	sched *sim.Scheduler
	net   *netsim.Network
	rt    *container.Runtime
	sw    *netsim.Switch
	cs    []*container.Container
	in    *Injector
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	s := sim.NewScheduler()
	net := netsim.New(s)
	rt := container.NewRuntime(net)
	sw := net.NewSwitch("sw0")
	r := &rig{sched: s, net: net, rt: rt, sw: sw, in: NewInjector(s, 1, sw)}
	for i := 0; i < n; i++ {
		c, err := rt.Create(container.Spec{
			Name: name(i), Image: "test",
			Host: netstack.HostConfig{
				Addr:   packet.AddrFrom4(10, 0, 0, byte(10+i)),
				Subnet: packet.Prefix{Addr: packet.AddrFrom4(10, 0, 0, 0), Bits: 24},
				Seed:   int64(i),
			},
		}, sw, netsim.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		r.cs = append(r.cs, c)
		r.in.RegisterContainer(c)
	}
	return r
}

func name(i int) string { return "dev0" + string(rune('0'+i)) }

func (r *rig) run(d time.Duration) {
	if err := r.sched.RunFor(d); err != nil {
		panic(err)
	}
}

func TestInjectorLinkFlap(t *testing.T) {
	r := newRig(t, 2)
	var p Plan
	p.Add(Event{Kind: LinkFlap, At: time.Second, Duration: 3 * time.Second, Targets: []string{"dev00"}})
	r.in.Schedule(p)
	r.run(2 * time.Second)
	if r.cs[0].Link().Up() {
		t.Fatal("link not cut at flap start")
	}
	if r.cs[1].Link().Up() == false {
		t.Fatal("flap hit an untargeted link")
	}
	r.run(3 * time.Second)
	if !r.cs[0].Link().Up() {
		t.Fatal("link not restored after flap duration")
	}
	if cs := r.in.CounterMap(); cs[string(LinkFlap)] != 1 {
		t.Fatalf("counters = %v", cs)
	}
}

func TestInjectorFlapDoesNotRecableStoppedContainer(t *testing.T) {
	r := newRig(t, 1)
	var p Plan
	p.Add(Event{Kind: LinkFlap, At: time.Second, Duration: 2 * time.Second, Targets: []string{"dev00"}})
	r.in.Schedule(p)
	r.run(2 * time.Second)
	r.cs[0].Stop() // operator stops the container mid-flap
	r.run(5 * time.Second)
	if r.cs[0].Link().Up() {
		t.Fatal("flap restore re-cabled a stopped container")
	}
}

func TestInjectorImpairAppliesAndRestores(t *testing.T) {
	r := newRig(t, 1)
	var p Plan
	p.Add(Event{
		Kind: LinkImpair, At: time.Second, Duration: 4 * time.Second,
		Targets: []string{"dev00"},
		Impair:  netsim.Impairments{CorruptProb: 0.5},
	})
	r.in.Schedule(p)
	r.run(2 * time.Second)
	im := r.cs[0].Link().Impairments()
	if im.CorruptProb != 0.5 {
		t.Fatalf("impairment not applied: %+v", im)
	}
	if im.RNG == nil {
		t.Fatal("injector did not fill the impairment RNG")
	}
	r.run(4 * time.Second)
	if r.cs[0].Link().Impairments().Active() {
		t.Fatal("impairment not restored after window")
	}
}

func TestInjectorCrashAndGlob(t *testing.T) {
	r := newRig(t, 3)
	var p Plan
	p.Add(Event{Kind: Crash, At: time.Second, Targets: []string{"dev*"}})
	r.in.Schedule(p)
	r.run(2 * time.Second)
	for i, c := range r.cs {
		if c.State() != container.StateStopped || !c.Crashed() {
			t.Fatalf("container %d not crashed: %v", i, c.State())
		}
	}
	if cs := r.in.CounterMap(); cs[string(Crash)] != 3 {
		t.Fatalf("counters = %v", cs)
	}
}

func TestInjectorCrashLoopFightsSupervisor(t *testing.T) {
	r := newRig(t, 1)
	sup := r.rt.Supervise(r.cs[0], container.SupervisorConfig{
		Policy:  container.RestartAlways,
		Backoff: 500 * time.Millisecond,
		// Keep the ladder flat so the loop gets several rounds in.
		BackoffFactor: 1,
		ResetAfter:    time.Hour,
	})
	var p Plan
	p.Add(Event{Kind: CrashLoop, At: time.Second, Duration: 6 * time.Second, Every: time.Second, Targets: []string{"dev00"}})
	r.in.Schedule(p)
	r.run(20 * time.Second)
	kills := r.in.CounterMap()[string(Crash)]
	if kills < 3 {
		t.Fatalf("crash loop killed only %d times", kills)
	}
	if sup.Restarts() < 2 {
		t.Fatalf("supervisor restarted only %d times under crash loop", sup.Restarts())
	}
	if r.cs[0].State() != container.StateRunning {
		t.Fatal("container not revived once the crash loop ended")
	}
}

func TestInjectorPartitionHeals(t *testing.T) {
	r := newRig(t, 4)
	var p Plan
	p.Add(Event{
		Kind: Partition, At: time.Second, Duration: 5 * time.Second,
		Groups: [][]string{{"dev00", "dev01"}, {"dev02", "dev03"}},
	})
	r.in.Schedule(p)
	r.run(2 * time.Second)
	g0 := r.sw.GroupOf(r.cs[0].Link().Ends()[1])
	g2 := r.sw.GroupOf(r.cs[2].Link().Ends()[1])
	if g0 == g2 || g0 == 0 || g2 == 0 {
		t.Fatalf("partition groups not applied: %d vs %d", g0, g2)
	}
	r.run(5 * time.Second)
	if r.sw.GroupOf(r.cs[0].Link().Ends()[1]) != 0 {
		t.Fatal("partition did not heal")
	}
	if cs := r.in.CounterMap(); cs[string(Partition)] != 1 {
		t.Fatalf("counters = %v", cs)
	}
}

func TestRandomPlanDeterministicAndScaled(t *testing.T) {
	cfg := RandomConfig{
		Seed: 42, Window: time.Minute, Intensity: 1,
		Kinds: []Kind{LinkFlap, LinkImpair, CrashLoop, Partition},
	}
	a, b := Random(cfg), Random(cfg)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different plans:\n%s\nvs\n%s", a, b)
	}
	if len(a.Events) == 0 {
		t.Fatal("full-intensity plan is empty")
	}
	if got := len(a.Kinds()); got != 4 {
		t.Fatalf("plan uses %d kinds, want 4", got)
	}
	cfg.Intensity = 0
	if !Random(cfg).Empty() {
		t.Fatal("zero-intensity plan is not empty")
	}
	cfg.Intensity = 0.3
	if low := Random(cfg); len(low.Events) >= len(a.Events) {
		t.Fatalf("intensity 0.3 produced %d events, full produced %d", len(low.Events), len(a.Events))
	}
	// Events must fit the window (with effect margin).
	for _, e := range a.Events {
		if e.At < 0 || e.At > time.Minute {
			t.Fatalf("event outside window: %+v", e)
		}
	}
}

func TestInjectorCountersSorted(t *testing.T) {
	r := newRig(t, 2)
	var p Plan
	p.Add(Event{Kind: Crash, At: time.Second, Targets: []string{"dev00"}})
	p.Add(Event{Kind: LinkFlap, At: time.Second, Duration: time.Second, Targets: []string{"dev01"}})
	r.in.Schedule(p)
	r.run(3 * time.Second)
	cs := r.in.Counters()
	if len(cs) != 2 || cs[0].Kind != Crash || cs[1].Kind != LinkFlap {
		t.Fatalf("counters not sorted: %v", cs)
	}
	if s := r.in.String(); s != "crash=1 link-flap=1" {
		t.Fatalf("String() = %q", s)
	}
}
