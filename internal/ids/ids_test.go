package ids

import (
	"testing"
	"time"

	"ddoshield/internal/dataset"
	"ddoshield/internal/features"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// thresholdModel flags packets as malicious when the window's
// SYN-no-ACK-ratio feature exceeds a threshold — a stand-in classifier
// with perfectly understood behaviour.
type thresholdModel struct {
	featIdx int
	thr     float64
}

func (m *thresholdModel) Predict(x []float64) int {
	if x[m.featIdx] > m.thr {
		return dataset.Malicious
	}
	return dataset.Benign
}

func (m *thresholdModel) Name() string { return "threshold" }

func (m *thresholdModel) MemoryBytes() int64 { return 16 }

// featIndex finds a feature's vector position by name.
func featIndex(t *testing.T, name string) int {
	t.Helper()
	for i, n := range features.Names() {
		if n == name {
			return i
		}
	}
	t.Fatalf("feature %q not found", name)
	return -1
}

func synFrame(t sim.Time, srcOctet byte, seq uint32) *packet.Packet {
	raw := packet.BuildTCP(packet.MACFromUint64(1), packet.MACFromUint64(2),
		packet.IPv4{TTL: 64, Src: packet.AddrFrom4(10, 0, 200, srcOctet), Dst: packet.AddrFrom4(10, 0, 1, 1)},
		packet.TCP{SrcPort: uint16(1024 + seq%60000), DstPort: 80, Seq: seq, Flags: packet.FlagSYN, Window: 512},
		nil)
	p, err := packet.Decode(t, raw)
	if err != nil {
		panic(err)
	}
	return p
}

func benignFrame(t sim.Time, seq uint32) *packet.Packet {
	raw := packet.BuildTCP(packet.MACFromUint64(3), packet.MACFromUint64(2),
		packet.IPv4{TTL: 64, Src: packet.AddrFrom4(10, 0, 0, 5), Dst: packet.AddrFrom4(10, 0, 1, 1)},
		packet.TCP{SrcPort: 40000, DstPort: 80, Seq: seq, Flags: packet.FlagACK | packet.FlagPSH, Window: 512},
		[]byte("data"))
	p, err := packet.Decode(t, raw)
	if err != nil {
		panic(err)
	}
	return p
}

// spoofLabeler marks the 10.0.200.0/24 range as malicious.
func spoofLabeler(b *features.Basic) int {
	if b.Src[2] == 200 {
		return dataset.Malicious
	}
	return dataset.Benign
}

func TestUnitDetectsFloodWindows(t *testing.T) {
	u := New(Config{
		Model:   &thresholdModel{featIdx: featIndex(t, "win_syn_noack_ratio"), thr: 5},
		Window:  time.Second,
		Labeler: spoofLabeler,
	})
	// Window 0: benign only. Window 1: flood only. Window 2: benign.
	for i := 0; i < 20; i++ {
		u.Feed(benignFrame(sim.Time(i)*50*sim.Millisecond, uint32(1000+i)))
	}
	for i := 0; i < 100; i++ {
		u.Feed(synFrame(sim.Second+sim.Time(i)*9*sim.Millisecond, byte(i), uint32(i*7919)))
	}
	for i := 0; i < 20; i++ {
		u.Feed(benignFrame(2*sim.Second+sim.Time(i)*50*sim.Millisecond, uint32(2000+i)))
	}
	u.Flush()

	res := u.Results()
	if len(res) != 3 {
		t.Fatalf("windows = %d, want 3", len(res))
	}
	if res[0].Alert || !res[1].Alert || res[2].Alert {
		t.Fatalf("alerts = %v %v %v", res[0].Alert, res[1].Alert, res[2].Alert)
	}
	for i, r := range res {
		if r.Accuracy != 1 {
			t.Fatalf("window %d accuracy = %v (pure windows, perfect model)", i, r.Accuracy)
		}
	}
	if u.AverageAccuracy() != 1 {
		t.Fatalf("AverageAccuracy = %v", u.AverageAccuracy())
	}
	if u.PacketsSeen() != 140 {
		t.Fatalf("PacketsSeen = %d", u.PacketsSeen())
	}
	c := u.Confusion()
	if c.TP != 100 || c.TN != 40 || c.FP != 0 || c.FN != 0 {
		t.Fatalf("confusion = %+v", c)
	}
}

func TestMixedWindowDropsAccuracy(t *testing.T) {
	// A window containing both classes: the window-level statistical
	// features push the shared stats toward "flood", so the threshold
	// model misclassifies the benign minority — the boundary-second
	// accuracy dip of §IV-D.
	u := New(Config{
		Model:   &thresholdModel{featIdx: featIndex(t, "win_syn_noack_ratio"), thr: 5},
		Window:  time.Second,
		Labeler: spoofLabeler,
	})
	for i := 0; i < 80; i++ {
		u.Feed(synFrame(sim.Time(i)*10*sim.Millisecond, byte(i), uint32(i*7919)))
	}
	for i := 0; i < 20; i++ {
		u.Feed(benignFrame(800*sim.Millisecond+sim.Time(i)*10*sim.Millisecond, uint32(i)))
	}
	u.Flush()
	res := u.Results()
	if len(res) != 1 {
		t.Fatalf("windows = %d", len(res))
	}
	if res[0].Accuracy != 0.8 {
		t.Fatalf("mixed-window accuracy = %v, want 0.8", res[0].Accuracy)
	}
	if u.MinAccuracy() != 0.8 {
		t.Fatalf("MinAccuracy = %v", u.MinAccuracy())
	}
}

func TestUnitWithoutModelRecordsTruth(t *testing.T) {
	u := New(Config{Window: time.Second, Labeler: spoofLabeler})
	u.Feed(synFrame(0, 1, 1))
	u.Feed(benignFrame(100*sim.Millisecond, 2))
	u.Flush()
	res := u.Results()
	if len(res) != 1 || res[0].TruthMalicious != 1 || res[0].PredMalicious != 0 {
		t.Fatalf("results = %+v", res)
	}
}

func TestUnitMetering(t *testing.T) {
	u := New(Config{
		Model:  &thresholdModel{featIdx: 0, thr: 0.5},
		Window: time.Second,
	})
	for i := 0; i < 1000; i++ {
		u.Feed(benignFrame(sim.Time(i)*sim.Millisecond, uint32(i)))
	}
	u.Flush()
	if u.CPUTime() <= 0 {
		t.Fatal("no CPU attributed")
	}
	if u.MemBytes() < 1000*40 {
		t.Fatalf("MemBytes = %d, must include window buffer", u.MemBytes())
	}
}

type fakeMeter struct{ total time.Duration }

func (f *fakeMeter) AddCPU(d time.Duration) { f.total += d }

func TestUnitMirrorsCPUToMeter(t *testing.T) {
	m := &fakeMeter{}
	u := New(Config{Model: &thresholdModel{featIdx: 0, thr: 0.5}, Meter: m})
	for i := 0; i < 100; i++ {
		u.Feed(benignFrame(sim.Time(i)*sim.Millisecond, uint32(i)))
	}
	u.Flush()
	if m.total != u.CPUTime() {
		t.Fatalf("meter %v != unit %v", m.total, u.CPUTime())
	}
}

func TestScalerApplied(t *testing.T) {
	// A scaler that shifts the threshold feature proves Transform runs:
	// with the identity scaler the model alerts; with a centering scaler
	// that maps everything to 0 it never does.
	idx := featIndex(t, "win_syn_noack_ratio")
	sc := &dataset.StandardScaler{
		Mean: make([]float64, features.NumFeatures()),
		Std:  make([]float64, features.NumFeatures()),
	}
	for i := range sc.Std {
		sc.Std[i] = 1
	}
	sc.Mean[idx] = 1e9 // giant shift: feature goes hugely negative
	u := New(Config{
		Model:  &thresholdModel{featIdx: idx, thr: 5},
		Scaler: sc,
		Window: time.Second,
	})
	for i := 0; i < 50; i++ {
		u.Feed(synFrame(sim.Time(i)*10*sim.Millisecond, byte(i), uint32(i)))
	}
	u.Flush()
	if u.Results()[0].Alert {
		t.Fatal("scaler not applied before prediction")
	}
}

func TestDetachStopsTap(t *testing.T) {
	u := New(Config{Window: time.Second, Labeler: spoofLabeler})
	tap := u.Tap()
	p := benignFrame(0, 1)
	tap(p.Time, p.Raw)
	u.Detach()
	p2 := benignFrame(100*sim.Millisecond, 2)
	tap(p2.Time, p2.Raw)
	u.Flush()
	if u.PacketsSeen() != 1 {
		t.Fatalf("PacketsSeen = %d after detach", u.PacketsSeen())
	}
}

func TestOnWindowCallbackAndFlaggedSrcs(t *testing.T) {
	var got []*WindowResult
	u := New(Config{
		Model:    &thresholdModel{featIdx: featIndex(t, "win_syn_noack_ratio"), thr: 5},
		Window:   time.Second,
		Labeler:  spoofLabeler,
		OnWindow: func(r *WindowResult) { got = append(got, r) },
	})
	for i := 0; i < 50; i++ {
		u.Feed(synFrame(sim.Time(i)*10*sim.Millisecond, byte(i%10), uint32(i*999)))
	}
	u.Flush()
	if len(got) != 1 {
		t.Fatalf("OnWindow fired %d times", len(got))
	}
	w := got[0]
	if !w.Alert {
		t.Fatal("flood window not alerted")
	}
	if len(w.FlaggedSrcs) != 10 {
		t.Fatalf("FlaggedSrcs = %d distinct, want 10", len(w.FlaggedSrcs))
	}
	seen := map[[4]byte]bool{}
	for _, src := range w.FlaggedSrcs {
		if seen[src] {
			t.Fatal("duplicate flagged source")
		}
		seen[src] = true
	}
}
