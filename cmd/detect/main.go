// Command detect replays a pcap capture through the Real-Time IDS Unit
// (Fig. 2) with a previously trained model, printing the per-window
// verdicts — the real-time detection phase of §IV-D driven from recorded
// traffic instead of a live testbed.
//
// Usage:
//
//	detect -model models/kmeans.model -pcap run.pcap -window 1s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ddoshield/internal/ids"
	"ddoshield/internal/ml/modelio"
	"ddoshield/internal/packet"
	"ddoshield/internal/pcap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "detect:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath = flag.String("model", "", "trained model file (required)")
		pcapPath  = flag.String("pcap", "", "capture to replay (required)")
		window    = flag.Duration("window", time.Second, "aggregation window")
		verbose   = flag.Bool("v", false, "print every window, not only alerts")
	)
	flag.Parse()
	if *modelPath == "" || *pcapPath == "" {
		return fmt.Errorf("-model and -pcap are required")
	}

	bundle, err := modelio.LoadBundleFile(*modelPath)
	if err != nil {
		return err
	}
	model := bundle.Model
	f, err := os.Open(*pcapPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}

	unit := ids.New(ids.Config{Model: model, Scaler: bundle.Scaler, Window: *window})
	frames := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		frames++
		p, err := packet.Decode(rec.Time, rec.Data)
		if err != nil {
			continue
		}
		unit.Feed(p)
	}
	unit.Flush()

	alerts := 0
	for _, w := range unit.Results() {
		if w.Alert {
			alerts++
		}
		if w.Alert || *verbose {
			verdict := "benign"
			if w.Alert {
				verdict = "ATTACK"
			}
			fmt.Printf("%8s  %-6s  %6d pkts  %6d flagged\n",
				w.Start, verdict, w.Packets, w.PredMalicious)
		}
	}
	fmt.Printf("model %s over %d frames: %d windows, %d alerts, %.1f ms compute\n",
		model.Name(), frames, len(unit.Results()), alerts,
		float64(unit.CPUTime().Microseconds())/1000)
	return nil
}
