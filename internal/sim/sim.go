// Package sim provides the discrete-event simulation engine that underpins
// the DDoShield-IoT testbed. It plays the role NS-3's core module plays in
// the paper: a virtual clock, an ordered event queue, and deterministic
// pseudo-random number streams so that every experiment is reproducible
// bit-for-bit from its seed.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// Time is an instant on the simulated clock, expressed as nanoseconds since
// the beginning of the simulation. It is distinct from wall-clock time: a
// ten-minute simulated run (the paper's dataset-generation phase) typically
// executes in seconds of real time.
type Time int64

// Common simulated-time unit anchors, mirroring time.Duration's constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// Duration returns the simulated instant as a time.Duration offset from the
// simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the simulated instant as fractional seconds since the
// simulation epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add offsets the instant by a real-duration amount of simulated time.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// String renders the instant in time.Duration notation (e.g. "1.5s").
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a duration-since-epoch into a simulated instant.
func FromDuration(d time.Duration) Time { return Time(d) }

// Handler is a callback scheduled to run at a simulated instant.
type Handler func()

// node is a pooled heap entry. Nodes are recycled through the scheduler's
// free list the moment they fire or are cancelled; the id generation counter
// is bumped on every recycle so stale Event handles can detect that the node
// they point at no longer belongs to them.
type node struct {
	s    *Scheduler
	at   Time
	seq  uint64 // FIFO tiebreak for same-instant events
	id   uint64 // generation; incremented when the node is released
	idx  int    // heap index; -1 while on the free list
	tail bool   // tail-phase event: fires after every normal event at `at`
	fn   Handler
}

// Event is a by-value handle to a scheduled callback. The zero Event is
// inert: Cancel and the accessors are no-ops on it. Handles stay safe after
// the event fires or is cancelled — the underlying pooled node carries a
// generation counter, so a stale handle can never cancel an unrelated event
// that recycled the same node.
//
// Events are ordered by firing time; events scheduled for the same instant
// fire in scheduling order (FIFO), which keeps the simulation deterministic.
type Event struct {
	n         *node
	id        uint64
	at        Time
	cancelled bool
}

// At reports the instant the event was scheduled to fire.
func (e *Event) At() Time { return e.at }

// IsZero reports whether the handle is the zero Event (never scheduled).
func (e *Event) IsZero() bool { return e.n == nil }

// Pending reports whether the event is still waiting to fire: it was
// scheduled, has not fired, and was not cancelled.
func (e *Event) Pending() bool { return e.n != nil && e.n.id == e.id }

// Cancelled reports whether Cancel was called through this handle before the
// event fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Cancel prevents a pending event from firing and removes it from the event
// queue immediately (no tombstone is left behind — long-lived tickers and
// supervisor timers no longer bloat the queue). Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	if e.n == nil || e.cancelled || e.n.id != e.id {
		return
	}
	e.cancelled = true
	e.n.s.removeNode(e.n)
}

// ErrStopped is returned by Run when the simulation was halted with Stop
// before reaching its horizon.
var ErrStopped = errors.New("simulation stopped")

// Scheduler is the simulation kernel: it owns the virtual clock and the
// event queue — an intrusive, index-tracked binary min-heap over pooled
// event nodes, so steady-state schedule/fire cycles allocate nothing. A
// Scheduler is not safe for concurrent use; the entire simulated world runs
// on a single logical thread, exactly as an NS-3 simulation does.
type Scheduler struct {
	now     Time
	queue   []*node // binary min-heap ordered by (at, seq)
	free    []*node // recycled nodes
	seq     uint64
	running bool
	stopped bool
	fired   uint64
}

// NewScheduler returns a scheduler with the clock at the simulation epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Len reports the number of pending (not yet fired, not cancelled) events.
// Cancelled events are removed from the queue eagerly, so this is O(1).
func (s *Scheduler) Len() int { return len(s.queue) }

// Fired reports the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// alloc takes a node from the free list, or mints one.
func (s *Scheduler) alloc() *node {
	if n := len(s.free); n > 0 {
		nd := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return nd
	}
	return &node{s: s, id: 1, idx: -1}
}

// release invalidates outstanding handles and recycles the node.
func (s *Scheduler) release(nd *node) {
	nd.id++
	nd.fn = nil
	nd.idx = -1
	nd.tail = false
	s.free = append(s.free, nd)
}

// At schedules fn to run at the absolute simulated instant t. Scheduling in
// the past is an error that would break causality, so it is clamped to the
// current instant instead.
func (s *Scheduler) At(t Time, fn Handler) Event {
	if t < s.now {
		t = s.now
	}
	nd := s.alloc()
	nd.at = t
	nd.seq = s.seq
	nd.fn = fn
	s.seq++
	s.push(nd)
	return Event{n: nd, id: nd.id, at: t}
}

// AtTail schedules fn to run at instant t in the *tail phase*: after every
// normal event scheduled for t, regardless of scheduling order. Tail events
// at the same instant fire in scheduling order among themselves. This is the
// hook order-normalizing stages hang off — netsim drains its buffered frame
// deliveries from a tail event, so same-instant deliveries execute in a
// canonical structural order rather than in (execution-mode-dependent)
// scheduling order. A normal event scheduled for t *while the tail phase of
// t is already running* fires after the currently-running tail handler, in
// scheduling order relative to other such late arrivals.
func (s *Scheduler) AtTail(t Time, fn Handler) Event {
	if t < s.now {
		t = s.now
	}
	nd := s.alloc()
	nd.at = t
	nd.seq = s.seq
	nd.tail = true
	nd.fn = fn
	s.seq++
	s.push(nd)
	return Event{n: nd, id: nd.id, at: t}
}

// After schedules fn to run d of simulated time from now.
func (s *Scheduler) After(d time.Duration, fn Handler) Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Every schedules fn to run every interval of simulated time, starting one
// interval from now, until the returned Ticker is stopped.
func (s *Scheduler) Every(interval time.Duration, fn Handler) *Ticker {
	if interval <= 0 {
		interval = time.Nanosecond
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	t.schedule()
	return t
}

// Stop halts the simulation: Run returns ErrStopped after the current event
// finishes.
func (s *Scheduler) Stop() { s.stopped = true }

// Step fires the single earliest pending event and advances the clock to
// its instant. It reports false when no events remain.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	nd := s.popMin()
	s.now = nd.at
	fn := nd.fn
	s.release(nd) // recycle before firing so fn can reuse the node
	s.fired++
	fn()
	return true
}

// Run executes events in order until the clock passes horizon, the queue
// drains, or Stop is called. Events scheduled exactly at the horizon still
// fire. It returns ErrStopped if halted early, nil otherwise.
func (s *Scheduler) Run(horizon Time) error {
	if s.running {
		return errors.New("scheduler already running")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		if s.queue[0].at > horizon {
			break
		}
		s.Step()
	}
	// The horizon was reached (or the queue drained): advance the clock so
	// Now() reflects the full span that was simulated.
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunFor executes events for d of simulated time from the current instant.
func (s *Scheduler) RunFor(d time.Duration) error {
	return s.Run(s.now.Add(d))
}

// Drain runs until the event queue is empty (no horizon). Useful in tests.
func (s *Scheduler) Drain() {
	for s.Step() {
	}
}

// --- intrusive binary min-heap over (at, seq) ---

func nodeLess(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.tail != b.tail {
		return !a.tail
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(nd *node) {
	nd.idx = len(s.queue)
	s.queue = append(s.queue, nd)
	s.siftUp(nd.idx)
}

func (s *Scheduler) popMin() *node {
	nd := s.queue[0]
	last := len(s.queue) - 1
	s.queue[0] = s.queue[last]
	s.queue[0].idx = 0
	s.queue[last] = nil
	s.queue = s.queue[:last]
	if last > 0 {
		s.siftDown(0)
	}
	return nd
}

// removeNode deletes an arbitrary pending node from the heap via its tracked
// index and recycles it.
func (s *Scheduler) removeNode(nd *node) {
	i := nd.idx
	last := len(s.queue) - 1
	if i < 0 || i > last || s.queue[i] != nd {
		return
	}
	if i != last {
		s.queue[i] = s.queue[last]
		s.queue[i].idx = i
	}
	s.queue[last] = nil
	s.queue = s.queue[:last]
	if i < last {
		// The displaced node may need to move either way.
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
	s.release(nd)
}

func (s *Scheduler) siftUp(i int) {
	q := s.queue
	nd := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !nodeLess(nd, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].idx = i
		i = parent
	}
	q[i] = nd
	nd.idx = i
}

// siftDown restores the heap below i; it reports whether the node moved.
func (s *Scheduler) siftDown(i int) bool {
	q := s.queue
	nd := q[i]
	start := i
	n := len(q)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && nodeLess(q[right], q[left]) {
			child = right
		}
		if !nodeLess(q[child], nd) {
			break
		}
		q[i] = q[child]
		q[i].idx = i
		i = child
	}
	q[i] = nd
	nd.idx = i
	return i != start
}

// Ticker repeatedly fires a handler at a fixed simulated interval.
type Ticker struct {
	s        *Scheduler
	interval time.Duration
	fn       Handler
	tick     Handler // cached self-rescheduling closure (one alloc per ticker)
	pending  Event
	stopped  bool
	ticks    uint64
}

func (t *Ticker) schedule() {
	if t.tick == nil {
		t.tick = func() {
			if t.stopped {
				return
			}
			t.ticks++
			t.fn()
			if !t.stopped {
				t.schedule()
			}
		}
	}
	t.pending = t.s.After(t.interval, t.tick)
}

// Stop cancels all future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.pending.Cancel()
}

// Ticks reports how many times the ticker has fired.
func (t *Ticker) Ticks() uint64 { return t.ticks }

// Interval reports the tick interval.
func (t *Ticker) Interval() time.Duration { return t.interval }

// String summarizes scheduler state, for debugging.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sim.Scheduler{now=%s pending=%d fired=%d}", s.now, len(s.queue), s.fired)
}
