package svm

import (
	"testing"

	"ddoshield/internal/ml/mltest"
)

func TestSVMLearnsBlobs(t *testing.T) {
	xs, ys := mltest.Blobs(800, 8, 3, 1)
	m, err := Train(Config{Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := mltest.Blobs(300, 8, 3, 2)
	if acc := mltest.Accuracy(m.Predict, testX, testY); acc < 0.95 {
		t.Fatalf("blob accuracy = %.3f", acc)
	}
}

func TestSVMMarginSign(t *testing.T) {
	xs, ys := mltest.Blobs(400, 4, 4, 3)
	m, err := Train(Config{Seed: 3}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	pos := []float64{2, 2, 2, 2}
	neg := []float64{-2, -2, -2, -2}
	if m.Margin(pos) <= 0 || m.Margin(neg) >= 0 {
		t.Fatalf("margins: pos=%v neg=%v", m.Margin(pos), m.Margin(neg))
	}
}

func TestSVMCannotLearnXOR(t *testing.T) {
	// A linear model must fail on XOR — documents the limitation that
	// motivates the tree/deep models.
	xs, ys := mltest.XOR(800, 4)
	m, err := Train(Config{Seed: 4}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(m.Predict, xs, ys); acc > 0.75 {
		t.Fatalf("linear SVM implausibly solved XOR: %.3f", acc)
	}
}

func TestSVMRejectsBadInput(t *testing.T) {
	if _, err := Train(Config{}, nil, nil); err == nil {
		t.Fatal("accepted empty set")
	}
	if _, err := Train(Config{}, [][]float64{{1}}, []int{0, 1}); err == nil {
		t.Fatal("accepted mismatch")
	}
}

func TestSVMDeterministic(t *testing.T) {
	xs, ys := mltest.Blobs(200, 4, 2, 5)
	m1, err := Train(Config{Seed: 9}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(Config{Seed: 9}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if m1.W[0] != m2.W[0] || m1.B != m2.B {
		t.Fatal("same-seed training diverged")
	}
	if m1.Name() != "svm" || m1.MemoryBytes() <= 0 {
		t.Fatal("metadata broken")
	}
}
