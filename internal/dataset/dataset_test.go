package dataset

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"ddoshield/internal/sim"
)

func sample(t *testing.T) *Dataset {
	t.Helper()
	d := New([]string{"a", "b"})
	for i := 0; i < 100; i++ {
		y := Benign
		if i%3 == 0 {
			y = Malicious
		}
		d.Add([]float64{float64(i), float64(i) * 2}, y)
	}
	return d
}

func TestSummarize(t *testing.T) {
	d := sample(t)
	s := d.Summarize()
	if s.Total != 100 || s.Malicious != 34 || s.Benign != 66 {
		t.Fatalf("summary = %+v", s)
	}
	if r := s.BalanceRatio(); math.Abs(r-34.0/66.0) > 1e-12 {
		t.Fatalf("BalanceRatio = %v", r)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBalanceRatioDegenerate(t *testing.T) {
	d := New([]string{"a"})
	d.Add([]float64{1}, Benign)
	if d.Summarize().BalanceRatio() != 0 {
		t.Fatal("single-class balance should be 0")
	}
}

func TestSplit(t *testing.T) {
	d := sample(t)
	train, test := d.Split(0.8)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split = %d/%d", train.Len(), test.Len())
	}
	if train.NumFeatures() != 2 {
		t.Fatal("schema lost in split")
	}
	// Clamping.
	tr, te := d.Split(1.5)
	if tr.Len() != 100 || te.Len() != 0 {
		t.Fatal("clamp high failed")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	d1, d2 := sample(t), sample(t)
	d1.Shuffle(sim.NewRNG(5))
	d2.Shuffle(sim.NewRNG(5))
	for i := range d1.Samples {
		if d1.Samples[i].X[0] != d2.Samples[i].X[0] {
			t.Fatal("same-seed shuffles differ")
		}
	}
}

func TestSubsample(t *testing.T) {
	d := sample(t)
	sub := d.Subsample(10, sim.NewRNG(1))
	if sub.Len() != 10 {
		t.Fatalf("subsample = %d", sub.Len())
	}
	seen := map[float64]bool{}
	for _, s := range sub.Samples {
		if seen[s.X[0]] {
			t.Fatal("subsample drew with replacement")
		}
		seen[s.X[0]] = true
	}
	all := d.Subsample(1000, sim.NewRNG(1))
	if all.Len() != 100 {
		t.Fatalf("oversized subsample = %d", all.Len())
	}
}

func TestXYViews(t *testing.T) {
	d := sample(t)
	xs, ys := d.XY()
	if len(xs) != 100 || len(ys) != 100 {
		t.Fatal("XY lengths")
	}
	if ys[0] != Malicious || ys[1] != Benign {
		t.Fatalf("labels = %v", ys[:4])
	}
}

func TestStandardScaler(t *testing.T) {
	d := New([]string{"a", "b", "const"})
	for i := 0; i < 1000; i++ {
		d.Add([]float64{float64(i), float64(i%10) * 100, 7}, Benign)
	}
	sc := FitStandard(d)
	sc.Apply(d)
	// After scaling: mean ~0, std ~1 per non-constant feature.
	for j := 0; j < 2; j++ {
		var mean, m2 float64
		for i := range d.Samples {
			mean += d.Samples[i].X[j]
		}
		mean /= float64(d.Len())
		for i := range d.Samples {
			dv := d.Samples[i].X[j] - mean
			m2 += dv * dv
		}
		std := math.Sqrt(m2 / float64(d.Len()))
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-9 {
			t.Fatalf("feature %d after scaling: mean=%v std=%v", j, mean, std)
		}
	}
	// Constant feature centered at 0, not NaN.
	if v := d.Samples[0].X[2]; v != 0 || math.IsNaN(v) {
		t.Fatalf("constant feature scaled to %v", v)
	}
}

func TestScalerTransformedCopies(t *testing.T) {
	d := New([]string{"a"})
	d.Add([]float64{10}, Benign)
	d.Add([]float64{20}, Benign)
	sc := FitStandard(d)
	x := []float64{15}
	out := sc.Transformed(x)
	if x[0] != 15 {
		t.Fatal("Transformed mutated input")
	}
	if out[0] != 0 { // 15 is the mean
		t.Fatalf("Transformed(mean) = %v", out[0])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.NumFeatures() != d.NumFeatures() {
		t.Fatalf("round trip: %d/%d", got.Len(), got.NumFeatures())
	}
	for i := range d.Samples {
		if got.Samples[i].Y != d.Samples[i].Y {
			t.Fatalf("label %d mismatch", i)
		}
		for j := range d.Samples[i].X {
			if got.Samples[i].X[j] != d.Samples[i].X[j] {
				t.Fatalf("value (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"a,b\n1,2\n",            // header missing label column
		"a,label\n1,2,3\n",      // too many fields
		"a,label\nxx,1\n",       // bad float
		"a,label\n1.5,benign\n", // bad label
	}
	for _, c := range cases {
		if _, err := ReadCSV(bytes.NewReader([]byte(c))); err == nil {
			t.Fatalf("accepted malformed csv %q", c)
		}
	}
}

// Property: CSV round-trip preserves arbitrary float vectors exactly.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(vals []float64, label bool) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true // CSV schema excludes non-finite values
			}
		}
		names := make([]string, len(vals))
		for i := range names {
			names[i] = "f" + string(rune('a'+i%26))
		}
		d := New(names)
		y := Benign
		if label {
			y = Malicious
		}
		d.Add(vals, y)
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || got.Len() != 1 || got.Samples[0].Y != y {
			return false
		}
		for j, v := range vals {
			if got.Samples[0].X[j] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxScaler(t *testing.T) {
	d := New([]string{"a", "b", "const"})
	for i := 0; i <= 10; i++ {
		d.Add([]float64{float64(i), float64(i) * -3, 7}, Benign)
	}
	sc := FitMinMax(d)
	sc.Apply(d)
	for i := range d.Samples {
		for j := 0; j < 2; j++ {
			v := d.Samples[i].X[j]
			if v < 0 || v > 1 {
				t.Fatalf("value %v outside [0,1]", v)
			}
		}
		if d.Samples[i].X[2] != 0 {
			t.Fatalf("constant feature = %v, want 0", d.Samples[i].X[2])
		}
	}
	// Extremes map to the interval ends.
	if d.Samples[0].X[0] != 0 || d.Samples[10].X[0] != 1 {
		t.Fatalf("extremes = %v / %v", d.Samples[0].X[0], d.Samples[10].X[0])
	}
	// Out-of-range values clamp: below-min a (range [0,10]) and above-max
	// b (range [-30,0]).
	out := sc.Transform([]float64{-5, 100, 7})
	if out[0] != 0 || out[1] != 1 {
		t.Fatalf("clamping failed: %v", out)
	}
}

func TestMinMaxEmptyDataset(t *testing.T) {
	d := New([]string{"a"})
	sc := FitMinMax(d)
	got := sc.Transform([]float64{0.5})
	if got[0] != 0.5 {
		t.Fatalf("empty-fit transform = %v", got)
	}
}
