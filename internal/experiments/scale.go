package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"ddoshield/internal/devices"
	"ddoshield/internal/netsim"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/prof"
	"ddoshield/internal/testbed"
)

// ScaleConfig parameterizes the fleet-scale benchmark: a sweep over device
// counts measuring the two numbers that gate million-device campaigns —
// heap bytes per device (the memory wall) and devices-per-wall-second
// (the throughput headline). Each count runs the same campaign under
// Domains ∈ DomainSet and cross-checks byte-identical Summary and
// Prometheus output, so the scale numbers are only ever reported for runs
// the determinism machinery has vouched for.
type ScaleConfig struct {
	Seed int64
	// Counts is the fleet-size sweep (default 1k/10k/100k).
	Counts []int
	// Duration is simulated time per run (default 5 s).
	Duration time.Duration
	// MeanThink paces the active minority of the fleet (default 60 s: a
	// mostly-idle fleet, the regime large IoT deployments live in).
	MeanThink time.Duration
	// TrunkDelay bounds the engine lookahead (default 5 ms).
	TrunkDelay time.Duration
	// DomainSet is the Domains values each count is verified under; the
	// fastest partitioned member supplies the headline. The default is
	// {1, 2, min(NumCPU, groups+1), groups/4+1} deduplicated: the NumCPU
	// entry exploits real parallelism where the host has it, and the
	// groups/4+1 entry is the event-heap-splitting regime that pays even
	// on single-core hosts (smaller per-domain heaps mean cheaper
	// scheduler operations at fleet scale).
	DomainSet []int
	// CoreShards is the core-fabric shard axis: every count is measured at
	// each shard value (default {1}, the classic single core switch), with
	// byte-identity verified across DomainSet within each shard setting.
	CoreShards []int
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.Counts) == 0 {
		c.Counts = []int{1_000, 10_000, 100_000}
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.MeanThink <= 0 {
		c.MeanThink = 60 * time.Second
	}
	if c.TrunkDelay <= 0 {
		c.TrunkDelay = 5 * time.Millisecond
	}
	if len(c.CoreShards) == 0 {
		c.CoreShards = []int{1}
	}
	return c
}

// ScalePoint is one (fleet size, core shards) combination's measurements.
type ScalePoint struct {
	Devices int `json:"devices"`
	Groups  int `json:"groups"`
	// CoreShards is the core-fabric shard count the point ran with.
	CoreShards int `json:"core_shards"`
	// Domains/Workers identify the fastest partitioned configuration; the
	// headline numbers below come from it.
	Domains    int     `json:"domains"`
	Workers    int     `json:"workers"`
	SimSeconds float64 `json:"sim_seconds"`
	// HeapBytesPerDevice is the live-heap delta of building and starting
	// the fleet, divided by the device count (runtime.MemStats.HeapAlloc
	// after a forced GC on both sides).
	HeapBytesPerDevice float64 `json:"heap_bytes_per_device"`
	// BuildMS is the wall clock to construct and start the topology
	// (testbed.New through Testbed.Start) on the default, parallel
	// construction path — the best observed across the partitioned
	// DomainSet members; SerialBuildMS is the same span with
	// Config.SerialBuild forcing the single-goroutine reference path, and
	// BuildDevicesPerSecond is the construction-throughput headline
	// (Devices over BuildMS).
	BuildMS               float64 `json:"build_ms"`
	SerialBuildMS         float64 `json:"serial_build_ms"`
	BuildDevicesPerSecond float64 `json:"build_devices_per_second"`
	// WallMS is the fastest campaign wall clock across DomainSet runs;
	// SerialWallMS is the Domains=1 member for reference.
	WallMS       float64 `json:"wall_ms"`
	SerialWallMS float64 `json:"serial_wall_ms"`
	Events       uint64  `json:"events"`
	// DevicesPerWallSecond is the headline: device-simulated-seconds
	// delivered per wall-clock second (Devices x SimSeconds / wall).
	DevicesPerWallSecond float64 `json:"devices_per_wall_second"`
	// Profile is the headline run's combined observability document.
	// Partitioned sweep members run with the profiler attached while the
	// serial baseline runs without it, so the byte-identity cross-check
	// doubles as the profiling-on == profiling-off regression. Bottlenecks
	// are the digest findings naming this scale's dominant cost.
	Profile     *prof.Profile `json:"profile,omitempty"`
	Bottlenecks []string      `json:"bottlenecks,omitempty"`
}

// scaleGroups picks the edge-switch count for a fleet: one group per ~256
// devices, between 4 and 64.
func scaleGroups(devices int) int {
	g := devices / 256
	if g < 4 {
		g = 4
	}
	if g > 64 {
		g = 64
	}
	return g
}

// scaleFleet is devices.ScaleFleet restricted to HTTP workloads (the edge
// servers speak HTTP only).
func scaleFleet() []devices.Profile {
	fleet := make([]devices.Profile, 0, len(devices.ScaleFleet))
	for _, p := range devices.ScaleFleet {
		p.Video, p.FTP = false, false
		fleet = append(fleet, p)
	}
	return fleet
}

// liveHeap forces two GC cycles (the second collects pool contents freed
// by the first) and reports the live heap.
func liveHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// scaleScannable widens the attacker's plane for the bench: enough devices
// (spread across groups by the partitioner) that the recruit-and-flood
// campaign pushes real traffic through the trunks and core fabric, bounded
// so the scan span stays dense enough to crack bots within the short sim.
func scaleScannable(count int) int {
	if count < 2048 {
		return count
	}
	return 2048
}

// buildScale assembles the scale topology for one count at one
// (shards, domains) setting.
func (c ScaleConfig) buildScale(count, groups, shards, domains int, profiled, serialBuild bool) (*testbed.Testbed, error) {
	return testbed.New(testbed.Config{
		Seed:             c.Seed,
		NumDevices:       count,
		DeviceGroups:     groups,
		CoreShards:       shards,
		EdgeServers:      true,
		Profiles:         scaleFleet(),
		MeanThink:        c.MeanThink,
		ScanInterval:     time.Millisecond,
		ScannableDevices: scaleScannable(count),
		TrunkLink:        netsim.LinkConfig{Delay: sim.FromDuration(c.TrunkDelay)},
		Domains:          domains,
		Profile:          profiled,
		SerialBuild:      serialBuild,
		// At fleet scale, dynamic ARP floods (one broadcast = one delivery
		// per host) would dominate the event count; prime the caches so the
		// sweep measures payload traffic.
		PrimeARP: true,
	})
}

// scaleCampaign arms the core-plane load: the attacker recruits from the
// widened scannable plane from t=0, and the conscripted bots flood the
// central TServer for the back half of the run — traffic that crosses the
// trunks and the core fabric, which is what the CoreShards axis spreads.
func scaleCampaign(tb *testbed.Testbed, d time.Duration) {
	tb.ScheduleAttackWave(d/2, d/8, tb.DefaultAttackWave(d/8, 400))
}

// scaleRun is one (count, domains) measurement: wall clocks, event count,
// the byte-identity artifacts, and — for profiled runs — the combined
// profile document and its digest findings.
type scaleRun struct {
	buildMS, wallMS float64
	events          uint64
	summary, prom   string
	profile         *prof.Profile
	bottlenecks     []string
}

// runScalePoint measures one (count, shards, domains) triple. BuildMS
// spans the whole construction pipeline — testbed.New (topology) plus
// Start (fleet bring-up) — since New is where the parallel staged build
// spends its time.
func (c ScaleConfig) runScalePoint(count, groups, shards, domains int, profiled bool) (scaleRun, error) {
	var r scaleRun
	// Level the GC state before timing: the serial reference build is
	// measured right after liveHeap's forced collections, so without this
	// the partitioned builds would start on a dirty heap and pay an extra
	// mid-build GC cycle the reference never sees.
	runtime.GC()
	// Construction is one monotonic allocation burst — nothing allocated
	// is garbage until the fleet is live — so the collector is off for the
	// burst and the one deferred mark is paid between the two measurement
	// windows, exactly where the pre-build runtime.GC above sits: each
	// phase then carries only its own collector cost.
	gcPrev := debug.SetGCPercent(-1)
	buildStart := time.Now()
	tb, err := c.buildScale(count, groups, shards, domains, profiled, false)
	if err != nil {
		debug.SetGCPercent(gcPrev)
		return scaleRun{}, err
	}
	tb.Start()
	r.buildMS = float64(time.Since(buildStart).Nanoseconds()) / 1e6
	debug.SetGCPercent(gcPrev)
	runtime.GC()
	scaleCampaign(tb, c.Duration)
	runStart := time.Now()
	if err := tb.Run(c.Duration); err != nil {
		return scaleRun{}, err
	}
	r.wallMS = float64(time.Since(runStart).Nanoseconds()) / 1e6
	if e := tb.Engine(); e != nil {
		for i := 0; i < e.NumDomains(); i++ {
			r.events += e.Domain(i).Stats().Events
		}
	} else {
		r.events = tb.Scheduler().Fired()
	}
	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, tb.Registry()); err != nil {
		return scaleRun{}, err
	}
	r.summary, r.prom = tb.Summary(), b.String()
	if profiled {
		r.profile = tb.Profile(0)
		r.bottlenecks = prof.BuildReport(r.profile).Findings
	}
	return r, nil
}

// RunScaleBench sweeps the configured fleet sizes crossed with the
// core-shard axis. For each (count, shards) pair it measures heap bytes per
// device and the single-goroutine reference build once (on the widest
// partitioned build, with Config.SerialBuild), then runs the campaign under
// every Domains in DomainSet — the serial baseline unprofiled, every
// partitioned member with the profiler attached — requiring byte-identical
// Summary and Prometheus output across all of them (which simultaneously
// pins profiling-on == profiling-off); the fastest partitioned run supplies
// WallMS, the devices-per-wall-second headline, and the profile/bottleneck
// digest.
func RunScaleBench(cfg ScaleConfig) ([]ScalePoint, error) {
	cfg = cfg.withDefaults()
	var out []ScalePoint
	for _, count := range cfg.Counts {
		groups := scaleGroups(count)
		domainSet := cfg.DomainSet
		if len(domainSet) == 0 {
			cpu := runtime.NumCPU()
			if cpu > groups+1 {
				cpu = groups + 1
			}
			// groups/4+1 is the event-heap-splitting point: on hosts with
			// few cores the NumCPU member degenerates to the serial runs
			// already present, but splitting the fleet's event heaps into
			// many small per-domain heaps still pays at 10k+ devices.
			domainSet = []int{1, 2}
			for _, d := range []int{cpu, groups/4 + 1} {
				dup := false
				for _, have := range domainSet {
					dup = dup || have == d
				}
				if !dup && d > 1 {
					domainSet = append(domainSet, d)
				}
			}
		}
		widest := domainSet[0]
		for _, d := range domainSet {
			if d > widest {
				widest = d
			}
		}

		for _, shards := range cfg.CoreShards {
			if shards > groups {
				shards = groups
			}
			// Heap footprint (live-heap delta across build+start, amortized
			// per device) and the serial-build reference wall clock, off one
			// SerialBuild topology at the widest partitioned setting.
			before := liveHeap()
			// Same collector-off construction window as runScalePoint, so
			// the serial and parallel builds are measured under identical
			// GC regimes; liveHeap's forced collections below pay the
			// deferred mark outside the timed span.
			gcPrev := debug.SetGCPercent(-1)
			serialStart := time.Now()
			tb, err := cfg.buildScale(count, groups, shards, widest, false, true)
			if err != nil {
				debug.SetGCPercent(gcPrev)
				return nil, err
			}
			tb.Start()
			serialBuildMS := float64(time.Since(serialStart).Nanoseconds()) / 1e6
			debug.SetGCPercent(gcPrev)
			after := liveHeap()
			heapPerDevice := float64(after-before) / float64(count)
			runtime.KeepAlive(tb)

			pt := ScalePoint{
				Devices:            count,
				Groups:             groups,
				CoreShards:         shards,
				SimSeconds:         cfg.Duration.Seconds(),
				HeapBytesPerDevice: heapPerDevice,
				SerialBuildMS:      serialBuildMS,
			}
			var wantSummary, wantProm string
			for _, domains := range domainSet {
				r, err := cfg.runScalePoint(count, groups, shards, domains, domains > 1)
				if err != nil {
					return nil, err
				}
				if wantSummary == "" {
					wantSummary, wantProm = r.summary, r.prom
				} else if r.summary != wantSummary {
					return nil, fmt.Errorf("experiments: scale %d devices shards=%d: Domains=%d Summary diverged\n--- want ---\n%s--- got ---\n%s",
						count, shards, domains, wantSummary, r.summary)
				} else if r.prom != wantProm {
					return nil, fmt.Errorf("experiments: scale %d devices shards=%d: Domains=%d Prometheus snapshot diverged", count, shards, domains)
				}
				if domains == 1 {
					pt.SerialWallMS = r.wallMS
				}
				if domains > 1 {
					// Construction and campaign are independent axes:
					// BuildMS is the best observed parallel-path build
					// across the sweep, not whichever member happened to
					// have the fastest campaign wall.
					if pt.BuildMS == 0 || r.buildMS < pt.BuildMS {
						pt.BuildMS = r.buildMS
					}
					if pt.WallMS == 0 || r.wallMS < pt.WallMS {
						pt.Domains = domains
						pt.Workers = domains
						pt.WallMS = r.wallMS
						pt.Events = r.events
						pt.Profile = r.profile
						pt.Bottlenecks = r.bottlenecks
					}
				}
			}
			if pt.WallMS == 0 {
				// DomainSet held only serial runs; report those.
				pt.Domains, pt.Workers, pt.WallMS = 1, 1, pt.SerialWallMS
			}
			pt.DevicesPerWallSecond = float64(count) * pt.SimSeconds / (pt.WallMS / 1e3)
			if pt.BuildMS > 0 {
				pt.BuildDevicesPerSecond = float64(count) / (pt.BuildMS / 1e3)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}
