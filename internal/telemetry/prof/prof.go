// Package prof is the simulation profiler: always-on performance
// accounting for PDES campaigns, built around two strictly separated
// planes.
//
// The deterministic plane counts virtual load — events attributed to
// entities (devices, switches, links, IDS units, the fault injector),
// cross-domain traffic by (src,dst) domain pair, epoch window widths, and
// a load-imbalance index. Everything in it derives from simulation state
// alone, so snapshots are byte-identical across runs and across worker
// counts; the virtual-load attribution is additionally evaluated against a
// fixed reference domain layout (see VirtualProfile.EvalDomains) so it is
// byte-identical across Domains settings too.
//
// The wall-clock plane times each domain's epoch phases — execute vs.
// barrier-wait vs. merge — plus the build/start/run/teardown campaign
// phases. It is host-dependent by nature and is excluded from every
// deterministic artifact: Summary, Prometheus snapshots and canonical
// trace spans never read it, which the determinism tests pin.
//
// The Profiler implements sim.EngineProbe. All probe callbacks run on the
// engine's coordinator goroutine against preallocated accumulators, so the
// enabled hot path performs zero allocations (pinned by AllocsPerRun in
// CI). Building with -tags prof_off compiles the profiler away entirely:
// Enabled folds to false and every attach site dead-codes out.
package prof

import (
	"time"

	"ddoshield/internal/sim"
)

// Phase identifies one campaign wall-clock phase.
type Phase uint8

const (
	// PhaseBuild covers topology construction (testbed.New).
	PhaseBuild Phase = iota
	// PhaseStart covers container/fleet startup (testbed.Start).
	PhaseStart
	// PhaseRun covers simulation execution (testbed.Run, cumulative
	// across calls).
	PhaseRun
	// PhaseTeardown covers end-of-run artifact rendering and collection.
	PhaseTeardown
	numPhases
)

// String names the phase for reports and JSON.
func (p Phase) String() string {
	switch p {
	case PhaseBuild:
		return "build"
	case PhaseStart:
		return "start"
	case PhaseRun:
		return "run"
	case PhaseTeardown:
		return "teardown"
	}
	return "unknown"
}

// Profiler accumulates one campaign's execution profile. Create with New,
// attach to the engine with sim.Engine.SetProbe, and bracket campaign
// phases with StartPhase/EndPhase. All methods are nil-receiver safe so
// call sites need no profiling-enabled branches.
//
// Concurrency: the engine invokes the probe callbacks from its coordinator
// goroutine only, and the phase timers belong to the campaign driver
// thread; the Profiler therefore needs no internal locking. Snapshot
// methods (WallProfile, engine extras) must not race Run.
type Profiler struct {
	domains int
	// devices sizes the build-rate derivation (build_devices_per_second);
	// 0 leaves the rate unreported.
	devices int

	// Deterministic engine accounting (per (seed, Domains) configuration;
	// independent of the worker count).
	epochs     uint64
	widthMin   sim.Time
	widthMax   sim.Time
	widthSum   uint64
	events     []uint64 // per-domain events, summed over windows
	maxWinEv   []uint64 // per-domain max events in any single window
	cross      []uint64 // KxK cross-domain message matrix, [from*K+to]
	crossTotal uint64

	// Wall-clock plane (never enters deterministic artifacts).
	execNs    []int64
	waitNs    []int64
	mergeNs   int64
	phaseNs   [numPhases]int64
	phaseOpen [numPhases]int64 // UnixNano at StartPhase; 0 when closed
}

// New builds a profiler for a campaign partitioned into domains domains
// (1 for the serial path: phase timers still work, engine accounting
// stays empty).
func New(domains int) *Profiler {
	if domains < 1 {
		domains = 1
	}
	return &Profiler{
		domains:  domains,
		events:   make([]uint64, domains),
		maxWinEv: make([]uint64, domains),
		cross:    make([]uint64, domains*domains),
		execNs:   make([]int64, domains),
		waitNs:   make([]int64, domains),
	}
}

// SetDevices records the fleet size the campaign builds, enabling the
// wall plane's build_devices_per_second derivation.
func (p *Profiler) SetDevices(n int) {
	if p == nil || n < 0 {
		return
	}
	p.devices = n
}

// Domains reports the domain count the profiler was sized for.
func (p *Profiler) Domains() int {
	if p == nil {
		return 0
	}
	return p.domains
}

// OnEpoch implements sim.EngineProbe: accumulate window-width stats and
// the merge wall clock.
func (p *Profiler) OnEpoch(start, end sim.Time, mergeNs int64) {
	if p == nil {
		return
	}
	width := end - start
	if p.epochs == 0 || width < p.widthMin {
		p.widthMin = width
	}
	if width > p.widthMax {
		p.widthMax = width
	}
	p.widthSum += uint64(width)
	p.epochs++
	p.mergeNs += mergeNs
}

// OnCrossMessages implements sim.EngineProbe: count one merged outbox into
// the (from,to) matrix cell.
func (p *Profiler) OnCrossMessages(from, to, n int) {
	if p == nil || from < 0 || to < 0 || from >= p.domains || to >= p.domains {
		return
	}
	p.cross[from*p.domains+to] += uint64(n)
	p.crossTotal += uint64(n)
}

// OnDomainWindow implements sim.EngineProbe: accumulate one domain's
// per-window event count and execute/barrier-wait wall clock.
func (p *Profiler) OnDomainWindow(domain int, events uint64, execNs, waitNs int64) {
	if p == nil || domain < 0 || domain >= p.domains {
		return
	}
	p.events[domain] += events
	if events > p.maxWinEv[domain] {
		p.maxWinEv[domain] = events
	}
	p.execNs[domain] += execNs
	p.waitNs[domain] += waitNs
}

// StartPhase opens one campaign phase's wall-clock timer. Phases may be
// opened and closed repeatedly (PhaseRun often is); the durations
// accumulate.
func (p *Profiler) StartPhase(ph Phase) {
	if p == nil || ph >= numPhases {
		return
	}
	p.phaseOpen[ph] = time.Now().UnixNano()
}

// EndPhase closes a phase opened by StartPhase, folding the elapsed wall
// clock into the phase total. Closing a phase that is not open is a no-op.
func (p *Profiler) EndPhase(ph Phase) {
	if p == nil || ph >= numPhases {
		return
	}
	if open := p.phaseOpen[ph]; open != 0 {
		p.phaseNs[ph] += time.Now().UnixNano() - open
		p.phaseOpen[ph] = 0
	}
}

// PhaseNs reports the accumulated wall clock of one phase.
func (p *Profiler) PhaseNs(ph Phase) int64 {
	if p == nil || ph >= numPhases {
		return 0
	}
	return p.phaseNs[ph]
}
