// Quickstart: assemble a DDoShield-IoT testbed, run two simulated minutes
// of combined benign + Mirai traffic, and print what happened. This is the
// smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"ddoshield/internal/testbed"
)

func main() {
	// A testbed is the paper's Fig. 1 in one call: TServer (HTTP + video +
	// FTP servers), an IoT device fleet, the Mirai attacker/C2, and an IDS
	// container, all wired to one simulated switch.
	tb, err := testbed.New(testbed.Config{
		Seed:       1,
		NumDevices: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	tb.Start()

	// 60 s of benign traffic while the Mirai scanner conscripts devices,
	// then one SYN/ACK/UDP attack wave against the TServer.
	tb.ScheduleAttackWave(60*time.Second, 3*time.Second,
		tb.DefaultAttackWave(15*time.Second, 300))

	if err := tb.Run(2 * time.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== DDoShield-IoT quickstart ===")
	fmt.Printf("simulated time: %v\n", tb.Scheduler().Now())
	fmt.Printf("devices infected: %d/%d (C2 sees %d bots)\n",
		tb.InfectedCount(), len(tb.Devices()), tb.C2().Bots())

	probes, connects, cracked, infections := tb.Attacker().Stats()
	fmt.Printf("attacker: %d telnet probes, %d connects, %d credentials cracked, %d bots installed\n",
		probes, connects, cracked, infections)

	httpReqs, httpBytes := tb.HTTPServer().Stats()
	streams, videoBytes := tb.VideoServer().Stats()
	_, transfers, ftpBytes, _ := tb.FTPServer().Stats()
	fmt.Printf("benign traffic: %d HTTP requests (%d KiB), %d video streams (%d KiB), %d FTP transfers (%d KiB)\n",
		httpReqs, httpBytes>>10, streams, videoBytes>>10, transfers, ftpBytes>>10)

	var floodPkts uint64
	for _, dh := range tb.Devices() {
		if bot := dh.Device.Bot(); bot != nil {
			_, sent := bot.Stats()
			floodPkts += sent
		}
	}
	fmt.Printf("flood packets emitted by the botnet: %d\n", floodPkts)
	_, synDropped, halfExpired := tb.HTTPServer().Listener().Stats()
	fmt.Printf("TServer backlog pressure: %d SYNs dropped, %d half-open expired\n",
		synDropped, halfExpired)
}
