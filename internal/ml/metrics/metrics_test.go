package metrics

import (
	"math"
	"testing"
)

func TestConfusionCounting(t *testing.T) {
	var c Confusion
	truth := []int{1, 1, 1, 0, 0, 0, 0, 1}
	pred := []int{1, 1, 0, 0, 0, 1, 0, 1}
	c.AddBatch(truth, pred)
	if c.TP != 3 || c.TN != 3 || c.FP != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 8 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	p, ok := c.Precision()
	if !ok || math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("Precision = %v %v", p, ok)
	}
	r, ok := c.Recall()
	if !ok || math.Abs(r-0.75) > 1e-12 {
		t.Fatalf("Recall = %v %v", r, ok)
	}
	f1, ok := c.F1()
	if !ok || math.Abs(f1-0.75) > 1e-12 {
		t.Fatalf("F1 = %v %v", f1, ok)
	}
}

func TestUndefinedMetricsSingleClassWindow(t *testing.T) {
	// A benign-only window predicted all benign: precision/recall/F1 are
	// undefined — the division-by-zero case §IV-D describes.
	var c Confusion
	c.AddBatch([]int{0, 0, 0}, []int{0, 0, 0})
	if c.Accuracy() != 1 {
		t.Fatal("accuracy should be 1")
	}
	if _, ok := c.Precision(); ok {
		t.Fatal("precision defined with no positive predictions")
	}
	if _, ok := c.Recall(); ok {
		t.Fatal("recall defined with no positive truths")
	}
	if _, ok := c.F1(); ok {
		t.Fatal("F1 defined with undefined constituents")
	}
	r := NewReport(c)
	if r.PrecisionDefined || r.RecallDefined || r.F1Defined {
		t.Fatalf("report = %+v", r)
	}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestEmptyConfusion(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestMerge(t *testing.T) {
	a := Confusion{TP: 1, TN: 2, FP: 3, FN: 4}
	b := Confusion{TP: 10, TN: 20, FP: 30, FN: 40}
	a.Merge(b)
	if a.TP != 11 || a.TN != 22 || a.FP != 33 || a.FN != 44 {
		t.Fatalf("merged = %+v", a)
	}
}

func TestEvaluate(t *testing.T) {
	r := Evaluate([]int{1, 0}, []int{1, 1})
	if r.Accuracy != 0.5 {
		t.Fatalf("accuracy = %v", r.Accuracy)
	}
	if !r.PrecisionDefined || r.Precision != 0.5 {
		t.Fatalf("precision = %v", r.Precision)
	}
}

func TestMeanMin(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if !math.IsInf(Min(nil), 1) {
		t.Fatal("Min(nil)")
	}
	if Min([]float64{3, 1, 2}) != 1 {
		t.Fatal("Min")
	}
}

func TestROCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truth := []int{1, 1, 0, 0}
	auc, curve := ROC(scores, truth)
	if math.Abs(auc-1) > 1e-12 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
	if len(curve) < 3 {
		t.Fatalf("curve too short: %d points", len(curve))
	}
}

func TestROCRandomScores(t *testing.T) {
	// Anti-correlated scores: AUC 0.
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	truth := []int{1, 1, 0, 0}
	auc, _ := ROC(scores, truth)
	if auc > 1e-12 {
		t.Fatalf("inverted AUC = %v, want 0", auc)
	}
	// Uninformative constant scores: AUC 0.5.
	auc, _ = ROC([]float64{1, 1, 1, 1}, truth)
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("constant-score AUC = %v, want 0.5", auc)
	}
}

func TestROCDegenerate(t *testing.T) {
	if auc, curve := ROC(nil, nil); auc != 0 || curve != nil {
		t.Fatal("empty input")
	}
	if auc, _ := ROC([]float64{1, 2}, []int{1, 1}); auc != 0 {
		t.Fatal("single-class input")
	}
	if auc, _ := ROC([]float64{1}, []int{1, 0}); auc != 0 {
		t.Fatal("length mismatch")
	}
}

func TestROCMonotoneCurve(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.7, 0.3, 0.5, 0.6, 0.2}
	truth := []int{1, 0, 1, 0, 1, 0, 0}
	auc, curve := ROC(scores, truth)
	if auc < 0 || auc > 1 {
		t.Fatalf("AUC out of range: %v", auc)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].TPR < curve[i-1].TPR || curve[i].FPR < curve[i-1].FPR {
			t.Fatalf("curve not monotone at %d: %+v", i, curve)
		}
	}
}
