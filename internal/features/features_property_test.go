package features

import (
	"math"
	"testing"
	"testing/quick"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// arbitraryBasic derives a deterministic Basic from fuzz inputs.
func arbitraryBasic(i int, src uint32, sp, dp uint16, length uint16, flags uint8, proto bool) Basic {
	p := packet.ProtoTCP
	if proto {
		p = packet.ProtoUDP
		flags = 0
	}
	return Basic{
		Time:    sim.Time(i) * sim.Millisecond,
		Src:     packet.AddrFromUint32(src),
		Dst:     packet.AddrFrom4(10, 0, 1, 1),
		Proto:   p,
		SrcPort: sp,
		DstPort: dp,
		Length:  int(length%1500) + packet.EthernetHeaderLen,
		Flags:   flags,
		Seq:     src * 2654435761,
	}
}

// Property: window statistics respect their structural invariants for any
// packet mix.
func TestStatsInvariantsProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 400 {
			seeds = seeds[:400]
		}
		pkts := make([]Basic, len(seeds))
		for i, s := range seeds {
			pkts[i] = arbitraryBasic(i, s, uint16(s), uint16(s>>8), uint16(s>>4), uint8(s>>24), s%3 == 0)
		}
		st := ComputeStats(pkts)
		n := len(pkts)
		switch {
		case st.PacketCount != n:
			return false
		case st.ByteCount <= 0:
			return false
		case math.Abs(st.MeanPacketLen-float64(st.ByteCount)/float64(n)) > 1e-9:
			return false
		case st.DstPortEntropy < 0 || st.DstPortEntropy > math.Log2(float64(n))+1e-9:
			return false
		case st.SrcAddrEntropy < 0 || st.SrcAddrEntropy > math.Log2(float64(n))+1e-9:
			return false
		case st.UniqueDstPorts < 1 || st.UniqueDstPorts > n:
			return false
		case st.UniqueSrcs < 1 || st.UniqueSrcs > n:
			return false
		case st.SynCount < 0 || st.SynCount+st.SynAckCount > n:
			return false
		case st.SynNoAckRatio < 0:
			return false
		case st.ShortLivedConns < 0 || st.ShortLivedConns > st.FlowCount:
			return false
		case st.FlowCount < 1 || st.FlowCount > n:
			return false
		case st.SeqStd < 0 || st.SeqStd > 0.5+1e-9:
			return false
		case st.UDPFraction < 0 || st.UDPFraction > 1:
			return false
		case st.MeanInterarrival < 0:
			return false
		}
		// The aggregated vector must be NaN/Inf-free.
		v := AppendVector(nil, &pkts[0], &st)
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the extractor partitions any monotone packet stream — every
// packet lands in exactly one window, and windows never mix boundaries.
func TestExtractorPartitionProperty(t *testing.T) {
	f := func(gaps []uint16) bool {
		if len(gaps) == 0 {
			return true
		}
		var total int
		var windows []*Window
		e := NewExtractor(0, func(w *Window) {
			windows = append(windows, cloneWindow(w))
			total += len(w.Packets)
		})
		now := sim.Time(0)
		for i, g := range gaps {
			now += sim.Time(g) * sim.Millisecond
			b := arbitraryBasic(i, uint32(i), 1, 2, 100, 0, false)
			b.Time = now
			e.Add(b)
		}
		e.Flush()
		if total != len(gaps) {
			return false
		}
		for _, w := range windows {
			for _, p := range w.Packets {
				if p.Time < w.Start || p.Time >= w.Start+sim.Second {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
