// Package httpapp implements the Apache analog of the TServer and its
// client workload: a minimal HTTP/1.1 server over the simulated TCP stack
// that answers GETs with configurable object sizes, and a client that
// fetches objects with Poisson think times over short-lived connections —
// the benign web traffic of the paper's benign-traffic mix.
package httpapp

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ddoshield/internal/apps/workload"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// DefaultPort is the HTTP port the TServer listens on.
const DefaultPort = 80

// ServerConfig tunes the HTTP server.
type ServerConfig struct {
	// Port to listen on (default 80).
	Port uint16
	// MeanObjectBytes is the mean response body size (default 8 KiB);
	// actual sizes are drawn from a bounded Pareto (heavy-tailed, like
	// real web objects).
	MeanObjectBytes int
	// Seed drives the size distribution.
	Seed int64
}

// Server is the Apache analog.
type Server struct {
	cfg      ServerConfig
	rng      *sim.RNG
	listener *netstack.Listener

	requests uint64
	bytesOut uint64
}

// NewServer returns an unstarted HTTP server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Port == 0 {
		cfg.Port = DefaultPort
	}
	if cfg.MeanObjectBytes <= 0 {
		cfg.MeanObjectBytes = 8 << 10
	}
	return &Server{cfg: cfg, rng: sim.Substream(cfg.Seed, "httpapp/server")}
}

// Attach binds the server to a host's stack and starts listening.
func (s *Server) Attach(h *netstack.Host) error {
	l, err := h.ListenTCP(s.cfg.Port, 0, s.accept)
	if err != nil {
		return fmt.Errorf("httpapp: %w", err)
	}
	s.listener = l
	return nil
}

// Detach stops accepting connections.
func (s *Server) Detach() {
	if s.listener != nil {
		s.listener.Close()
		s.listener = nil
	}
}

// Stats reports requests served and body bytes sent.
func (s *Server) Stats() (requests, bytesOut uint64) { return s.requests, s.bytesOut }

// Listener exposes the underlying TCP listener (for backlog statistics
// under attack).
func (s *Server) Listener() *netstack.Listener { return s.listener }

func (s *Server) accept(c *netstack.Conn) {
	var buf strings.Builder
	c.OnData = func(d []byte) {
		buf.Write(d)
		req := buf.String()
		end := strings.Index(req, "\r\n\r\n")
		if end < 0 {
			if buf.Len() > 8192 {
				c.Abort()
			}
			return
		}
		buf.Reset()
		line := req
		if i := strings.Index(req, "\r\n"); i >= 0 {
			line = req[:i]
		}
		s.respond(c, line)
	}
	c.OnRemoteClose = func() { c.Close() }
}

func (s *Server) respond(c *netstack.Conn, requestLine string) {
	fields := strings.Fields(requestLine)
	if len(fields) < 2 || fields[0] != "GET" {
		c.Send([]byte("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n"))
		c.Close()
		return
	}
	s.requests++
	// Heavy-tailed object size, bounded to keep single responses sane.
	size := int(s.rng.Pareto(float64(s.cfg.MeanObjectBytes)/3, 1.5))
	if size > 1<<20 {
		size = 1 << 20
	}
	header := fmt.Sprintf("HTTP/1.1 200 OK\r\nServer: tserver-apache\r\nContent-Length: %d\r\n\r\n", size)
	body := make([]byte, size)
	s.rng.Bytes(body)
	s.bytesOut += uint64(size)
	c.Send([]byte(header))
	c.Send(body)
	// HTTP/1.0-style: close after the response; clients open fresh
	// connections per object, producing the short-lived-connection pattern
	// the IDS features examine.
	c.Close()
}

// Client fetches objects from the server in a Poisson loop, one short-lived
// connection per object.
type Client struct {
	host      *netstack.Host
	server    packet.Addr
	port      uint16
	meanThink time.Duration
	proc      *workload.Process
	rng       *sim.RNG

	fetches   uint64
	completed uint64
	failed    uint64
	bytesIn   uint64
}

// NewClient returns an unstarted client that will fetch from server:port
// with exponential think times of the given mean (default 2 s).
func NewClient(server packet.Addr, port uint16, meanThink time.Duration, seed int64) *Client {
	if port == 0 {
		port = DefaultPort
	}
	if meanThink <= 0 {
		meanThink = 2 * time.Second
	}
	return &Client{
		server:    server,
		port:      port,
		meanThink: meanThink,
		rng:       sim.Substream(seed, "httpapp/client"),
	}
}

// Attach binds the client to a host and starts the fetch loop.
func (c *Client) Attach(h *netstack.Host) {
	c.host = h
	c.proc = workload.NewPoisson(h.Scheduler(), c.rng, c.meanThink, c.fetch)
	c.proc.Start()
}

// Detach stops the fetch loop (in-flight fetches finish naturally).
func (c *Client) Detach() {
	if c.proc != nil {
		c.proc.Stop()
		c.proc = nil
	}
}

// Stats reports fetches started, completed, failed and body bytes received.
func (c *Client) Stats() (fetches, completed, failed, bytesIn uint64) {
	return c.fetches, c.completed, c.failed, c.bytesIn
}

func (c *Client) fetch() {
	c.fetches++
	conn := c.host.DialTCP(c.server, c.port)
	path := fmt.Sprintf("/obj/%d", c.rng.Intn(1000))
	var (
		header   strings.Builder
		inBody   bool
		expected int
		got      int
	)
	conn.OnConnect = func() {
		conn.Send([]byte("GET " + path + " HTTP/1.1\r\nHost: tserver\r\n\r\n"))
	}
	conn.OnData = func(d []byte) {
		if !inBody {
			header.Write(d)
			full := header.String()
			end := strings.Index(full, "\r\n\r\n")
			if end < 0 {
				return
			}
			expected = parseContentLength(full[:end])
			got = len(full) - end - 4
			inBody = true
		} else {
			got += len(d)
		}
		c.bytesIn += uint64(len(d))
		if inBody && got >= expected {
			c.completed++
			conn.Close()
		}
	}
	conn.OnRemoteClose = func() { conn.Close() }
	conn.OnClose = func(err error) {
		if err != nil {
			c.failed++
		}
	}
}

func parseContentLength(header string) int {
	for _, line := range strings.Split(header, "\r\n") {
		if v, ok := strings.CutPrefix(line, "Content-Length: "); ok {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err == nil {
				return n
			}
		}
	}
	return 0
}
