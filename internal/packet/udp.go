package packet

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the length of a UDP header in bytes.
const UDPHeaderLen = 8

// UDP is a UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16 // header + payload, filled by Marshal
	Checksum uint16 // filled by Marshal
}

// Marshal appends the wire encoding of the header plus payload to b,
// computing the transport checksum over the (src, dst) pseudo-header.
func (h *UDP) Marshal(b []byte, src, dst Addr, payload []byte) []byte {
	start := len(b)
	h.Length = uint16(UDPHeaderLen + len(payload))
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint16(b, h.Length)
	b = append(b, 0, 0) // checksum placeholder
	b = append(b, payload...)
	cs := TransportChecksum(src, dst, ProtoUDP, b[start:])
	if cs == 0 {
		cs = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	h.Checksum = cs
	binary.BigEndian.PutUint16(b[start+6:start+8], cs)
	return b
}

// UnmarshalUDP decodes a UDP header and returns it with the payload bytes.
// When verify is true the transport checksum is validated.
func UnmarshalUDP(b []byte, src, dst Addr, verify bool) (UDP, []byte, error) {
	if len(b) < UDPHeaderLen {
		return UDP{}, nil, fmt.Errorf("udp: datagram too short (%d bytes)", len(b))
	}
	var h UDP
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	h.Checksum = binary.BigEndian.Uint16(b[6:8])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(b) {
		return UDP{}, nil, fmt.Errorf("udp: bad length %d (datagram %d)", h.Length, len(b))
	}
	if verify && h.Checksum != 0 {
		if TransportChecksum(src, dst, ProtoUDP, b[:h.Length]) != 0 {
			return UDP{}, nil, fmt.Errorf("udp: checksum mismatch")
		}
	}
	return h, b[UDPHeaderLen:h.Length], nil
}
