// Package cnn implements the paper's third detector: a one-dimensional
// convolutional neural network over the aggregated feature vector, with
// convolution, ReLU, max-pooling, dense layers and a softmax head, trained
// by mini-batch SGD with momentum on cross-entropy loss — the pure-Go
// stand-in for the TensorFlow model of §III-B.
package cnn

import (
	"fmt"
	"math"
	"sync"

	"ddoshield/internal/sim"
)

// Config describes the architecture and the training schedule.
type Config struct {
	// Inputs is the feature-vector length (required).
	Inputs int
	// Conv1Filters/Conv2Filters size the two conv blocks (defaults 16/32).
	Conv1Filters int
	Conv2Filters int
	// Kernel is the 1-D convolution width (default 3).
	Kernel int
	// Hidden is the dense layer width (default 64).
	Hidden int
	// Classes is the output width (default 2).
	Classes int
	// Epochs, BatchSize, LearningRate, Momentum drive SGD
	// (defaults 10, 64, 0.01, 0.9).
	Epochs       int
	BatchSize    int
	LearningRate float64
	Momentum     float64
	// Seed drives weight initialization and batch shuffling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Conv1Filters <= 0 {
		c.Conv1Filters = 16
	}
	if c.Conv2Filters <= 0 {
		c.Conv2Filters = 32
	}
	if c.Kernel <= 0 {
		c.Kernel = 3
	}
	if c.Hidden <= 0 {
		c.Hidden = 64
	}
	if c.Classes <= 0 {
		c.Classes = 2
	}
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.01
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		c.Momentum = 0.9
	}
	return c
}

// Network is the trained model. Weight tensors are exported for gob
// serialization; layout is documented per field.
type Network struct {
	Cfg Config
	// W1 [f1][kernel], B1 [f1]: conv1 over the single input channel.
	W1 [][]float64
	B1 []float64
	// W2 [f2][f1*kernel], B2 [f2]: conv2 over f1 channels.
	W2 [][]float64
	B2 []float64
	// W3 [hidden][flat], B3 [hidden]: dense layer.
	W3 [][]float64
	B3 []float64
	// W4 [classes][hidden], B4 [classes]: output layer.
	W4 [][]float64
	B4 []float64

	// Geometry, precomputed at construction.
	len1, pool1, len2, pool2, flat int
}

// Name implements ml.Classifier.
func (n *Network) Name() string { return "cnn" }

// New builds an untrained network with small random weights.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.Inputs <= 0 {
		return nil, fmt.Errorf("cnn: Inputs required")
	}
	n := &Network{Cfg: cfg}
	n.geometry()
	if n.pool2 < 1 {
		return nil, fmt.Errorf("cnn: input length %d too short for architecture", cfg.Inputs)
	}
	rng := sim.Substream(cfg.Seed, "cnn")
	he := func(fanIn int) float64 { return math.Sqrt(2 / float64(fanIn)) }
	mat := func(rows, cols int, scale float64) [][]float64 {
		m := make([][]float64, rows)
		for i := range m {
			m[i] = make([]float64, cols)
			for j := range m[i] {
				m[i][j] = rng.NormFloat64() * scale
			}
		}
		return m
	}
	n.W1 = mat(cfg.Conv1Filters, cfg.Kernel, he(cfg.Kernel))
	n.B1 = make([]float64, cfg.Conv1Filters)
	n.W2 = mat(cfg.Conv2Filters, cfg.Conv1Filters*cfg.Kernel, he(cfg.Conv1Filters*cfg.Kernel))
	n.B2 = make([]float64, cfg.Conv2Filters)
	n.W3 = mat(cfg.Hidden, n.flat, he(n.flat))
	n.B3 = make([]float64, cfg.Hidden)
	n.W4 = mat(cfg.Classes, cfg.Hidden, he(cfg.Hidden))
	n.B4 = make([]float64, cfg.Classes)
	return n, nil
}

// geometry derives layer lengths from the config.
func (n *Network) geometry() {
	c := n.Cfg
	n.len1 = c.Inputs - c.Kernel + 1
	n.pool1 = n.len1 / 2
	n.len2 = n.pool1 - c.Kernel + 1
	n.pool2 = n.len2 / 2
	n.flat = n.pool2 * c.Conv2Filters
}

// NumParams counts trainable parameters.
func (n *Network) NumParams() int {
	count := func(m [][]float64) int {
		t := 0
		for _, r := range m {
			t += len(r)
		}
		return t
	}
	return count(n.W1) + len(n.B1) + count(n.W2) + len(n.B2) +
		count(n.W3) + len(n.B3) + count(n.W4) + len(n.B4)
}

// InferenceBatch is the batch width assumed for the live-memory estimate:
// production inference engines (the paper's TensorFlow runtime included)
// hold activation tensors for a whole batch at once.
const InferenceBatch = 64

// MemoryBytes estimates the live inference footprint: parameters plus the
// activation tensors of one inference batch — the reason the CNN is the
// heaviest model in Table II.
func (n *Network) MemoryBytes() int64 {
	params := int64(n.NumParams()) * 8
	acts := int64(n.Cfg.Conv1Filters*(n.len1+n.pool1)+
		n.Cfg.Conv2Filters*(n.len2+n.pool2)+
		n.flat+n.Cfg.Hidden+n.Cfg.Classes) * 8
	return params + acts*InferenceBatch + 256
}

// activations holds one forward pass (retained for backprop).
type activations struct {
	in    []float64
	conv1 [][]float64 // [f1][len1] post-ReLU
	pool1 [][]float64 // [f1][pool1]
	arg1  [][]int     // argmax indices for pool1
	conv2 [][]float64 // [f2][len2] post-ReLU
	pool2 [][]float64 // [f2][pool2]
	arg2  [][]int
	flat  []float64
	hid   []float64 // post-ReLU
	out   []float64 // logits
	prob  []float64 // softmax
}

func relu(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

func (n *Network) forward(x []float64, a *activations) {
	c := n.Cfg
	a.in = x
	// conv1: single input channel.
	a.conv1 = grow2(a.conv1, c.Conv1Filters, n.len1)
	for f := 0; f < c.Conv1Filters; f++ {
		w := n.W1[f]
		for i := 0; i < n.len1; i++ {
			s := n.B1[f]
			for k := 0; k < c.Kernel; k++ {
				s += w[k] * x[i+k]
			}
			a.conv1[f][i] = relu(s)
		}
	}
	a.pool1, a.arg1 = maxpool(a.conv1, a.pool1, a.arg1, n.pool1)
	// conv2: over f1 channels.
	a.conv2 = grow2(a.conv2, c.Conv2Filters, n.len2)
	for f := 0; f < c.Conv2Filters; f++ {
		w := n.W2[f]
		for i := 0; i < n.len2; i++ {
			s := n.B2[f]
			wi := 0
			for ch := 0; ch < c.Conv1Filters; ch++ {
				row := a.pool1[ch]
				for k := 0; k < c.Kernel; k++ {
					s += w[wi] * row[i+k]
					wi++
				}
			}
			a.conv2[f][i] = relu(s)
		}
	}
	a.pool2, a.arg2 = maxpool(a.conv2, a.pool2, a.arg2, n.pool2)
	// flatten.
	if cap(a.flat) < n.flat {
		a.flat = make([]float64, n.flat)
	}
	a.flat = a.flat[:n.flat]
	fi := 0
	for f := 0; f < c.Conv2Filters; f++ {
		for i := 0; i < n.pool2; i++ {
			a.flat[fi] = a.pool2[f][i]
			fi++
		}
	}
	// dense + ReLU.
	a.hid = growv(a.hid, c.Hidden)
	for h := 0; h < c.Hidden; h++ {
		s := n.B3[h]
		w := n.W3[h]
		for j, v := range a.flat {
			s += w[j] * v
		}
		a.hid[h] = relu(s)
	}
	// output + softmax.
	a.out = growv(a.out, c.Classes)
	maxLogit := math.Inf(-1)
	for o := 0; o < c.Classes; o++ {
		s := n.B4[o]
		w := n.W4[o]
		for h, v := range a.hid {
			s += w[h] * v
		}
		a.out[o] = s
		if s > maxLogit {
			maxLogit = s
		}
	}
	a.prob = growv(a.prob, c.Classes)
	var z float64
	for o, s := range a.out {
		e := math.Exp(s - maxLogit)
		a.prob[o] = e
		z += e
	}
	for o := range a.prob {
		a.prob[o] /= z
	}
}

func grow2(m [][]float64, rows, cols int) [][]float64 {
	if len(m) != rows {
		m = make([][]float64, rows)
	}
	for i := range m {
		if cap(m[i]) < cols {
			m[i] = make([]float64, cols)
		}
		m[i] = m[i][:cols]
	}
	return m
}

func grow2i(m [][]int, rows, cols int) [][]int {
	if len(m) != rows {
		m = make([][]int, rows)
	}
	for i := range m {
		if cap(m[i]) < cols {
			m[i] = make([]int, cols)
		}
		m[i] = m[i][:cols]
	}
	return m
}

func growv(v []float64, n int) []float64 {
	if cap(v) < n {
		v = make([]float64, n)
	}
	return v[:n]
}

// maxpool performs width-2 max pooling per channel, recording argmaxes.
func maxpool(in, out [][]float64, arg [][]int, outLen int) ([][]float64, [][]int) {
	out = grow2(out, len(in), outLen)
	arg = grow2i(arg, len(in), outLen)
	for ch := range in {
		for i := 0; i < outLen; i++ {
			j := 2 * i
			v, a := in[ch][j], j
			if j+1 < len(in[ch]) && in[ch][j+1] > v {
				v, a = in[ch][j+1], j+1
			}
			out[ch][i] = v
			arg[ch][i] = a
		}
	}
	return out, arg
}

// actPool recycles inference activation buffers. Predict pulls a buffer per
// call instead of mutating Network state, so trained networks are safe to
// share across goroutines — the parallel experiment sweeps rely on that.
var actPool = sync.Pool{New: func() any { return new(activations) }}

// Predict returns the argmax class for x. It is safe for concurrent use.
func (n *Network) Predict(x []float64) int {
	a := actPool.Get().(*activations)
	n.forward(x, a)
	best, bestP := 0, -1.0
	for o, p := range a.prob {
		if p > bestP {
			best, bestP = o, p
		}
	}
	a.in = nil // do not pin the caller's vector in the pool
	actPool.Put(a)
	return best
}

// Prob returns the class probability vector for x.
func (n *Network) Prob(x []float64) []float64 {
	var a activations
	n.forward(x, &a)
	out := make([]float64, len(a.prob))
	copy(out, a.prob)
	return out
}
