package forest

import (
	"testing"

	"ddoshield/internal/ml/mltest"
)

func TestForestLearnsBlobs(t *testing.T) {
	xs, ys := mltest.Blobs(600, 6, 3, 1)
	f, err := Train(Config{Trees: 20, Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := mltest.Blobs(200, 6, 3, 2)
	if acc := mltest.Accuracy(f.Predict, testX, testY); acc < 0.95 {
		t.Fatalf("blob accuracy = %.3f", acc)
	}
}

func TestForestLearnsXOR(t *testing.T) {
	xs, ys := mltest.XOR(800, 3)
	f, err := Train(Config{Trees: 25, MaxDepth: 8, Seed: 2}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := mltest.XOR(300, 4)
	if acc := mltest.Accuracy(f.Predict, testX, testY); acc < 0.95 {
		t.Fatalf("XOR accuracy = %.3f (trees must beat linear boundary)", acc)
	}
}

func TestForestRejectsBadInput(t *testing.T) {
	if _, err := Train(Config{}, nil, nil); err == nil {
		t.Fatal("accepted empty training set")
	}
	if _, err := Train(Config{}, [][]float64{{1}}, []int{0, 1}); err == nil {
		t.Fatal("accepted mismatched labels")
	}
}

func TestForestDeterministic(t *testing.T) {
	xs, ys := mltest.Blobs(200, 4, 2, 5)
	f1, err := Train(Config{Trees: 5, Seed: 9}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Train(Config{Trees: 5, Seed: 9}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if f1.NumNodes() != f2.NumNodes() {
		t.Fatal("same-seed forests differ")
	}
	probe := make([]float64, 4)
	for i := 0; i < 4; i++ {
		probe[i] = 0.3
	}
	if f1.Predict(probe) != f2.Predict(probe) {
		t.Fatal("same-seed predictions differ")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	xs, ys := mltest.XOR(500, 6)
	f, err := Train(Config{Trees: 3, MaxDepth: 4, Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, tree := range f.TreeList {
		if d := tree.Depth(); d > 5 { // depth counts nodes: 4 splits + leaf
			t.Fatalf("tree depth %d exceeds max", d)
		}
	}
}

func TestPureNodeBecomesLeaf(t *testing.T) {
	// Single-class data: the tree must be a single leaf.
	xs := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	ys := []int{1, 1, 1, 1}
	f, err := Train(Config{Trees: 1, Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.TreeList[0].Nodes) != 1 {
		t.Fatalf("pure tree has %d nodes", len(f.TreeList[0].Nodes))
	}
	if f.Predict([]float64{0, 0}) != 1 {
		t.Fatal("pure tree mispredicts")
	}
}

func TestMemoryBytesScalesWithNodes(t *testing.T) {
	xs, ys := mltest.Blobs(400, 4, 1, 7) // overlapping: bigger trees
	small, err := Train(Config{Trees: 2, MaxDepth: 3, Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Train(Config{Trees: 40, MaxDepth: 12, Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if small.MemoryBytes() >= big.MemoryBytes() {
		t.Fatalf("memory: small=%d big=%d", small.MemoryBytes(), big.MemoryBytes())
	}
	if small.Name() != "rf" {
		t.Fatal("Name()")
	}
}
