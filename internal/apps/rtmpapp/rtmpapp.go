// Package rtmpapp implements the Nginx-RTMP analog of the TServer and its
// client workload: a streaming server on port 1935 that, on a PLAY request,
// pushes media chunks at a constant bitrate for the stream's duration, and
// a client that watches streams in an on/off loop. This is the video
// component of the paper's benign-traffic mix; it contributes long-lived,
// high-volume, steadily paced flows — the opposite signature of a flood —
// which is what makes it a useful benign baseline.
package rtmpapp

import (
	"fmt"
	"strings"
	"time"

	"ddoshield/internal/apps/workload"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// DefaultPort is the RTMP port.
const DefaultPort = 1935

// ServerConfig tunes the streaming server.
type ServerConfig struct {
	// Port to listen on (default 1935).
	Port uint16
	// BitrateBps is the media bitrate (default 2 Mb/s).
	BitrateBps int64
	// ChunkBytes is the push granularity (default 4 KiB).
	ChunkBytes int
	// MeanStreamDur is the mean stream length (default 30 s), exponential.
	MeanStreamDur time.Duration
	// Seed drives stream durations.
	Seed int64
}

func (cfg ServerConfig) withDefaults() ServerConfig {
	if cfg.Port == 0 {
		cfg.Port = DefaultPort
	}
	if cfg.BitrateBps <= 0 {
		cfg.BitrateBps = 2_000_000
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 4 << 10
	}
	if cfg.MeanStreamDur <= 0 {
		cfg.MeanStreamDur = 30 * time.Second
	}
	return cfg
}

// Server is the Nginx-RTMP analog.
type Server struct {
	cfg      ServerConfig
	rng      *sim.RNG
	host     *netstack.Host
	listener *netstack.Listener

	streams  uint64
	bytesOut uint64
	active   int
}

// NewServer returns an unstarted streaming server.
func NewServer(cfg ServerConfig) *Server {
	return &Server{cfg: cfg.withDefaults(), rng: sim.Substream(cfg.Seed, "rtmpapp/server")}
}

// Attach binds the server to a host and starts listening.
func (s *Server) Attach(h *netstack.Host) error {
	s.host = h
	l, err := h.ListenTCP(s.cfg.Port, 0, s.accept)
	if err != nil {
		return fmt.Errorf("rtmpapp: %w", err)
	}
	s.listener = l
	return nil
}

// Detach stops accepting streams.
func (s *Server) Detach() {
	if s.listener != nil {
		s.listener.Close()
		s.listener = nil
	}
}

// Stats reports streams served and media bytes pushed.
func (s *Server) Stats() (streams, bytesOut uint64) { return s.streams, s.bytesOut }

// Active reports streams currently playing.
func (s *Server) Active() int { return s.active }

func (s *Server) accept(c *netstack.Conn) {
	workload.AttachLines(c, func(line string) {
		if !strings.HasPrefix(strings.ToUpper(line), "PLAY") {
			c.Send([]byte("ERROR unknown command\r\n"))
			return
		}
		s.startStream(c)
	})
	c.OnRemoteClose = func() { c.Close() }
}

func (s *Server) startStream(c *netstack.Conn) {
	s.streams++
	s.active++
	dur := time.Duration(s.rng.Exp(float64(s.cfg.MeanStreamDur)))
	if dur < time.Second {
		dur = time.Second
	}
	total := int(s.cfg.BitrateBps / 8 * int64(dur) / int64(time.Second))
	interval := time.Duration(int64(s.cfg.ChunkBytes) * 8 * int64(time.Second) / s.cfg.BitrateBps)
	c.Send([]byte(fmt.Sprintf("OK stream bytes=%d\r\n", total)))
	ck := workload.NewChunker(s.host.Scheduler(), c, total, s.cfg.ChunkBytes, interval)
	sent := total
	ck.OnDone = func() {
		s.active--
		s.bytesOut += uint64(sent - ck.Remaining())
		c.Close()
	}
	ck.Start()
}

// Client watches streams in an on/off loop: dial, PLAY, consume until the
// server closes, think, repeat.
type Client struct {
	host      *netstack.Host
	server    packet.Addr
	port      uint16
	meanThink time.Duration
	proc      *workload.Process
	rng       *sim.RNG
	watching  bool

	plays    uint64
	finished uint64
	bytesIn  uint64
}

// NewClient returns an unstarted viewer workload. meanThink is the pause
// between streams (default 5 s).
func NewClient(server packet.Addr, port uint16, meanThink time.Duration, seed int64) *Client {
	if port == 0 {
		port = DefaultPort
	}
	if meanThink <= 0 {
		meanThink = 5 * time.Second
	}
	return &Client{
		server:    server,
		port:      port,
		meanThink: meanThink,
		rng:       sim.Substream(seed, "rtmpapp/client"),
	}
}

// Attach binds the viewer to a host and starts the watch loop.
func (c *Client) Attach(h *netstack.Host) {
	c.host = h
	c.proc = workload.NewPoisson(h.Scheduler(), c.rng, c.meanThink, c.play)
	c.proc.Start()
}

// Detach stops the watch loop (a stream in progress plays out).
func (c *Client) Detach() {
	if c.proc != nil {
		c.proc.Stop()
		c.proc = nil
	}
}

// Stats reports plays started, streams finished, and media bytes received.
func (c *Client) Stats() (plays, finished, bytesIn uint64) {
	return c.plays, c.finished, c.bytesIn
}

func (c *Client) play() {
	if c.watching {
		return // one stream at a time per viewer
	}
	c.watching = true
	c.plays++
	conn := c.host.DialTCP(c.server, c.port)
	conn.OnConnect = func() {
		conn.Send([]byte(fmt.Sprintf("PLAY stream%d\r\n", c.rng.Intn(50))))
	}
	conn.OnData = func(d []byte) { c.bytesIn += uint64(len(d)) }
	conn.OnRemoteClose = func() {
		c.finished++
		conn.Close()
	}
	conn.OnClose = func(err error) { c.watching = false }
}
