package testbed

import (
	"ddoshield/internal/container"
	"ddoshield/internal/netsim"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry/prof"
)

// Virtual-load attribution. The testbed records, at build time, the
// structural identity of every link's two endpoints (core subtree, device
// group subtree, or individual device). VirtualProfile replays those
// identities through the deterministic partitioner at a caller-chosen
// reference domain count, so the attribution describes the topology's
// intrinsic load shape — it is a pure function of (config, simulated
// traffic) and byte-identical no matter how many Domains the run actually
// executed with.

// linkEnd kinds.
const (
	endCore   = iota // core subtree: lan0, TServer, IDS, C2, attacker
	endGroup         // a device group's subtree: edge switch, edge server
	endDevice        // one device (its group/core attachment is the far end)
	endShard         // one core-fabric shard switch (CoreShards > 1)
)

// linkEnd is one structural link endpoint; idx is the group or device
// index (unused for endCore).
type linkEnd struct {
	kind int
	idx  int
}

// evalDomain maps the endpoint into a reference placement.
func (e linkEnd) evalDomain(pl placement) int {
	switch e.kind {
	case endGroup:
		return pl.domainOfGroup(e.idx)
	case endDevice:
		return pl.deviceDomain[e.idx]
	case endShard:
		return pl.domainOfShard(e.idx)
	}
	return 0
}

// profLink pairs a link with its two structural endpoints in netsim end
// order (a = ends[0], b = ends[1]).
type profLink struct {
	link *netsim.Link
	a, b linkEnd
}

// trackLink records one link's endpoint identities for attribution.
func (tb *Testbed) trackLink(l *netsim.Link, a, b linkEnd) {
	tb.profLinks = append(tb.profLinks, profLink{link: l, a: a, b: b})
}

// Profiler exposes the wall-clock profiler (nil unless Config.Profile is
// set and the prof_off build tag is absent; the prof API is nil-receiver
// safe, so callers may use the result directly).
func (tb *Testbed) Profiler() *prof.Profiler { return tb.prof }

// VirtualProfile builds the deterministic virtual-load attribution at the
// given reference domain count (<= 0 picks DeviceGroups+1, the maximal
// one-domain-per-group partitioning). Available on every testbed — serial
// or partitioned, profiled or not — because it reads only simulation
// counters that exist regardless.
func (tb *Testbed) VirtualProfile(evalDomains int) *prof.VirtualProfile {
	if evalDomains <= 0 {
		evalDomains = tb.cfg.DeviceGroups + 1
	}
	pl := tb.cfg.layoutDomains(evalDomains)

	nicEvents := func(c *container.Container) uint64 {
		rxF, _, txF, _ := c.Host().NIC().Stats()
		return rxF + txF
	}
	var entities []prof.Entity
	for _, c := range []*container.Container{tb.tserver, tb.idsC, tb.c2C, tb.attackerC} {
		entities = append(entities, prof.Entity{
			Name: c.Name(), Kind: prof.KindHost, Domain: 0, Events: nicEvents(c),
		})
	}
	for g, c := range tb.edgeCs {
		entities = append(entities, prof.Entity{
			Name: c.Name(), Kind: prof.KindHost, Domain: pl.domainOfGroup(g), Events: nicEvents(c),
		})
	}
	swEvents := func(sw *netsim.Switch) uint64 { fwd, fld := sw.Stats(); return fwd + fld }
	entities = append(entities, prof.Entity{
		Name: tb.sw.Name(), Kind: prof.KindSwitch, Domain: 0, Events: swEvents(tb.sw),
	})
	for s, ssw := range tb.shardSws {
		entities = append(entities, prof.Entity{
			Name: ssw.Name(), Kind: prof.KindSwitch, Domain: pl.domainOfShard(s), Events: swEvents(ssw),
		})
	}
	for g, esw := range tb.edgeSws {
		entities = append(entities, prof.Entity{
			Name: esw.Name(), Kind: prof.KindSwitch, Domain: pl.domainOfGroup(g), Events: swEvents(esw),
		})
	}
	for i := range tb.devs {
		c := tb.devs[i].Container
		entities = append(entities, prof.Entity{
			Name: c.Name(), Kind: prof.KindDevice, Domain: pl.deviceDomain[i], Events: nicEvents(c),
		})
	}
	for _, p := range tb.profLinks {
		entities = append(entities, prof.Entity{
			Name: p.link.String(), Kind: prof.KindLink, Domain: -1,
			Events: p.link.Counters().TxFrames,
		})
	}
	for _, u := range tb.idsUnits {
		entities = append(entities, prof.Entity{
			Name: "ids:" + u.Name(), Kind: prof.KindIDS, Domain: 0, Events: u.PacketsSeen(),
		})
	}
	var injected uint64
	for _, c := range tb.injector.Counters() {
		injected += c.Count
	}
	entities = append(entities, prof.Entity{
		Name: "faults", Kind: prof.KindFaults, Domain: -1, Events: injected,
	})

	// Cross-domain frame matrix: a link whose structural endpoints land in
	// different reference domains contributes each direction's frame count
	// to its (src,dst) pair.
	matrix := make([]uint64, evalDomains*evalDomains)
	for _, p := range tb.profLinks {
		da, db := p.a.evalDomain(pl), p.b.evalDomain(pl)
		if da == db {
			continue
		}
		matrix[da*evalDomains+db] += p.link.CountersSide(0).TxFrames
		matrix[db*evalDomains+da] += p.link.CountersSide(1).TxFrames
	}
	var cross []prof.CrossLoad
	for from := 0; from < evalDomains; from++ {
		for to := 0; to < evalDomains; to++ {
			if n := matrix[from*evalDomains+to]; n > 0 {
				cross = append(cross, prof.CrossLoad{From: from, To: to, Count: n})
			}
		}
	}
	return prof.BuildVirtual(evalDomains, entities, cross, 10)
}

// Profile assembles the combined three-section document: the deterministic
// virtual plane (always), the engine plane (partitioned runs), and the
// wall-clock plane (profiled runs). See the prof package for the contract
// separating the planes.
func (tb *Testbed) Profile(evalDomains int) *prof.Profile {
	p := &prof.Profile{Virtual: tb.VirtualProfile(evalDomains)}
	if tb.engine != nil {
		stats := make([]sim.DomainStats, tb.engine.NumDomains())
		for i := range stats {
			stats[i] = tb.engine.Domain(i).Stats()
		}
		p.Engine = prof.BuildEngine(tb.engine.Lookahead(), tb.engine.Epochs(), stats, tb.prof)
	}
	p.Wall = tb.prof.WallProfile()
	return p
}

// BottleneckReport digests the profile into the straggler/bottleneck
// findings (see prof.BuildReport).
func (tb *Testbed) BottleneckReport(evalDomains int) *prof.Report {
	return prof.BuildReport(tb.Profile(evalDomains))
}
