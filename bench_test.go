// Package ddoshield's root benchmark suite regenerates every table and
// figure of the paper (see DESIGN.md's experiment index) as testing.B
// benchmarks, reporting the reproduced quantities through b.ReportMetric:
//
//	go test -bench=Table1 -benchmem .        Table I rows
//	go test -bench=Table2 .                  Table II rows
//	go test -bench=Fig .                     figure-level series
//	go test -bench=Ablation .                design-choice ablations
//
// Absolute numbers depend on scenario scale (these benches run the Quick
// scenario; cmd/benchtables -scale paper runs the 10-min/5-min scale); the
// shapes mirror the paper as documented in EXPERIMENTS.md.
package ddoshield

import (
	"testing"
	"time"

	"ddoshield/internal/botnet"
	"ddoshield/internal/dataset"
	"ddoshield/internal/experiments"
	"ddoshield/internal/features"
	"ddoshield/internal/ids"
	"ddoshield/internal/mitigation"
	"ddoshield/internal/ml"
	"ddoshield/internal/ml/cnn"
	"ddoshield/internal/ml/forest"
	"ddoshield/internal/ml/kmeans"
	"ddoshield/internal/netsim"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/testbed"
)

// benchScenario is the Quick scenario trimmed for benchmark iterations.
func benchScenario() experiments.Scenario {
	// Training at full Quick scale (the CNN is data-hungry); detection
	// trimmed for per-iteration speed.
	sc := experiments.Quick()
	sc.DetectDuration = 45 * time.Second
	sc.InfectionLead = 60 * time.Second
	return sc
}

// pipeline caches one trained pipeline across benchmark functions so each
// table bench doesn't retrain from scratch.
var pipelineCache struct {
	sc experiments.Scenario
	ds *dataset.Dataset
	tr *experiments.TrainingResult
}

func cachedPipeline(b *testing.B) (*dataset.Dataset, *experiments.TrainingResult) {
	b.Helper()
	if pipelineCache.tr != nil {
		return pipelineCache.ds, pipelineCache.tr
	}
	sc := benchScenario()
	ds, err := sc.GenerateDataset()
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sc.TrainModels(ds)
	if err != nil {
		b.Fatal(err)
	}
	pipelineCache.sc = sc
	pipelineCache.ds = ds
	pipelineCache.tr = tr
	return ds, tr
}

// BenchmarkTableDatasetGeneration regenerates the §IV-D dataset row: a
// traffic-generation run producing a labeled, near-balanced corpus.
func BenchmarkTableDatasetGeneration(b *testing.B) {
	sc := benchScenario()
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(100 + i)
		ds, err := sc.GenerateDataset()
		if err != nil {
			b.Fatal(err)
		}
		sum := ds.Summarize()
		b.ReportMetric(float64(sum.Total), "packets")
		b.ReportMetric(100*float64(sum.Malicious)/float64(sum.Total), "malicious%")
		b.ReportMetric(sum.BalanceRatio(), "balance")
	}
}

// BenchmarkTableTrainingMetrics regenerates the §IV-D offline training
// row: all three models trained with their held-out metrics.
func BenchmarkTableTrainingMetrics(b *testing.B) {
	ds, _ := cachedPipeline(b)
	sc := benchScenario()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := sc.TrainModels(ds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tr.RF.TrainReport.Accuracy*100, "rf-acc%")
		b.ReportMetric(tr.KMeans.TrainReport.Accuracy*100, "km-acc%")
		b.ReportMetric(tr.CNN.TrainReport.Accuracy*100, "cnn-acc%")
	}
}

// BenchmarkTable1RealTimeAccuracy regenerates Table I: average per-window
// real-time accuracy per model (paper: RF 61.22, K-Means 94.82, CNN 95.47).
func BenchmarkTable1RealTimeAccuracy(b *testing.B) {
	_, tr := cachedPipeline(b)
	sc := pipelineCache.sc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := sc.RunRealTime(tr)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rt.Table1 {
			b.ReportMetric(row.AvgAccuracy*100, row.Model+"-acc%")
		}
	}
}

// BenchmarkTable2Sustainability regenerates Table II: CPU %, memory and
// model size per model during real-time detection.
func BenchmarkTable2Sustainability(b *testing.B) {
	_, tr := cachedPipeline(b)
	sc := pipelineCache.sc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := sc.RunRealTime(tr)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rt.Table2 {
			b.ReportMetric(row.CPUPercent, row.Model+"-cpu%")
			b.ReportMetric(row.MemoryKb, row.Model+"-memKb")
			b.ReportMetric(row.ModelSizeKb, row.Model+"-sizeKb")
		}
	}
}

// BenchmarkFigPerSecondAccuracy regenerates the §IV-D per-second series:
// accuracy dips at attack boundaries (paper minimum: 35% for K-Means).
func BenchmarkFigPerSecondAccuracy(b *testing.B) {
	_, tr := cachedPipeline(b)
	sc := pipelineCache.sc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := sc.RunRealTime(tr)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rt.Table1 {
			b.ReportMetric(row.MinAccuracy*100, row.Model+"-min%")
		}
	}
}

// BenchmarkFigThroughputUnderAttack regenerates the DDoSim throughput
// figure: TServer rx rate before vs during a SYN flood.
func BenchmarkFigThroughputUnderAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := testbed.New(testbed.Config{Seed: int64(20 + i), NumDevices: 8})
		if err != nil {
			b.Fatal(err)
		}
		ts := tb.NewThroughputSampler(time.Second)
		tb.Start()
		if err := tb.Run(80 * time.Second); err != nil {
			b.Fatal(err)
		}
		tb.C2().Broadcast(botnet.Command{
			Type: botnet.AttackSYN, Target: tb.TServerAddr(), Port: 80,
			Duration: 20 * time.Second, PPS: 1000,
		})
		if err := tb.Run(25 * time.Second); err != nil {
			b.Fatal(err)
		}
		now := tb.Scheduler().Now()
		before := ts.MeanRxBps(0, 80*sim.Second)
		during := ts.MeanRxBps(80*sim.Second, now)
		b.ReportMetric(before/1e6, "before-mbps")
		b.ReportMetric(during/1e6, "during-mbps")
		if during > 0 && before > 0 {
			b.ReportMetric(during/before, "xfactor")
		}
	}
}

// BenchmarkFigBotsConnected regenerates the DDoSim connected-bots figure:
// peak botnet population with churn enabled.
func BenchmarkFigBotsConnected(b *testing.B) {
	sc := benchScenario()
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(30 + i)
		hist, err := sc.BotsTimeline(true, 2*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		peak := 0
		for _, p := range hist {
			if p.Bots > peak {
				peak = p.Bots
			}
		}
		b.ReportMetric(float64(peak), "peak-bots")
		b.ReportMetric(float64(len(hist)), "population-changes")
	}
}

// BenchmarkFigChurnSweep sweeps device churn rates — the DDoSim experiment
// on how churn limits the standing botnet population.
func BenchmarkFigChurnSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, meanUp := range []time.Duration{30 * time.Second, 2 * time.Minute} {
			tb, err := testbed.New(testbed.Config{
				Seed:       int64(40 + i),
				NumDevices: 10,
				Churn:      testbed.ChurnConfig{Enabled: true, MeanUp: meanUp},
			})
			if err != nil {
				b.Fatal(err)
			}
			tb.Start()
			if err := tb.Run(3 * time.Minute); err != nil {
				b.Fatal(err)
			}
			label := "fast-churn-bots"
			if meanUp >= 2*time.Minute {
				label = "slow-churn-bots"
			}
			b.ReportMetric(float64(tb.C2().Bots()), label)
		}
	}
}

// BenchmarkAblationFeatureSets contrasts the Table I RF (statistics-only
// decisions, the configuration that reproduces the paper's 61%) with the
// full basic∥stats RF — the §III-B aggregation claim: per-packet basic
// features rescue accuracy inside mixed windows.
func BenchmarkAblationFeatureSets(b *testing.B) {
	ds, tr := cachedPipeline(b)
	sc := pipelineCache.sc
	fullRF, err := sc.TrainFullVectorRF(ds)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trFull := &experiments.TrainingResult{
			RF:     experiments.TrainedModel{Model: fullRF},
			KMeans: tr.KMeans,
			CNN:    tr.CNN,
		}
		rt, err := sc.RunRealTime(trFull)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rt.Table1 {
			if row.Model == "rf" {
				b.ReportMetric(row.AvgAccuracy*100, "fullvec-rf-acc%")
			}
		}
		rtStats, err := sc.RunRealTime(tr)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rtStats.Table1 {
			if row.Model == "rf" {
				b.ReportMetric(row.AvgAccuracy*100, "statsonly-rf-acc%")
			}
		}
	}
}

// BenchmarkAblationWindowLength sweeps the aggregation window (the paper's
// §IV-E mitigation: longer windows cut per-second CPU at some accuracy
// cost at boundaries).
func BenchmarkAblationWindowLength(b *testing.B) {
	_, tr := cachedPipeline(b)
	base := pipelineCache.sc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
			sc := base
			sc.Window = w
			rt, err := sc.RunRealTime(tr)
			if err != nil {
				b.Fatal(err)
			}
			for _, row := range rt.Table1 {
				if row.Model == "kmeans" {
					b.ReportMetric(row.AvgAccuracy*100, "km-acc%-"+w.String())
				}
			}
			for _, row := range rt.Table2 {
				if row.Model == "kmeans" {
					b.ReportMetric(row.CPUPercent, "km-cpu%-"+w.String())
				}
			}
		}
	}
}

// BenchmarkAblationModels sweeps model hyperparameters: forest depth,
// K-Means entropy penalty on/off, CNN width.
func BenchmarkAblationModels(b *testing.B) {
	ds, _ := cachedPipeline(b)
	rng := sim.NewRNG(1)
	work := ds.Subsample(12000, rng)
	work.Shuffle(rng)
	train, test := work.Split(0.8)
	// Standardize: the distance- and gradient-based sweeps are meaningless
	// on raw count-scaled features.
	scaler := dataset.FitStandard(train)
	scaler.Apply(train)
	scaler.Apply(test)
	xs, ys := train.XY()
	score := func(m ml.Classifier) float64 {
		ok := 0
		for i := range test.Samples {
			if m.Predict(test.Samples[i].X) == test.Samples[i].Y {
				ok++
			}
		}
		return 100 * float64(ok) / float64(test.Len())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shallow, err := forest.Train(forest.Config{Trees: 20, MaxDepth: 4, Seed: 1}, xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		deep, err := forest.Train(forest.Config{Trees: 20, MaxDepth: 16, Seed: 1}, xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(score(shallow), "rf-depth4-acc%")
		b.ReportMetric(score(deep), "rf-depth16-acc%")

		kmLow, err := kmeans.Train(kmeans.Config{InitClusters: 24, Gamma: 0.01, Seed: 1}, xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		kmHigh, err := kmeans.Train(kmeans.Config{InitClusters: 24, Gamma: 10, Seed: 1}, xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(kmLow.ClusterCount()), "km-clusters-gamma0")
		b.ReportMetric(float64(kmHigh.ClusterCount()), "km-clusters-gamma10")

		narrow, _, err := cnn.Train(cnn.Config{Conv1Filters: 4, Conv2Filters: 8, Hidden: 16, Epochs: 3, Seed: 1}, xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		wide, _, err := cnn.Train(cnn.Config{Conv1Filters: 16, Conv2Filters: 32, Hidden: 96, Epochs: 3, Seed: 1}, xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(score(narrow), "cnn-narrow-acc%")
		b.ReportMetric(score(wide), "cnn-wide-acc%")
	}
}

// --- component micro-benchmarks ---

// BenchmarkIDSPipeline measures the Fig. 2 pipeline's packet throughput.
func BenchmarkIDSPipeline(b *testing.B) {
	_, tr := cachedPipeline(b)
	tm := tr.KMeans
	unit := ids.New(ids.Config{Model: tm.Model, Scaler: tm.Scaler, Window: time.Second})
	raw := packet.BuildTCP(packet.MACFromUint64(1), packet.MACFromUint64(2),
		packet.IPv4{TTL: 64, Src: packet.MustParseAddr("10.0.2.10"), Dst: packet.MustParseAddr("10.0.1.1")},
		packet.TCP{SrcPort: 40000, DstPort: 80, Flags: packet.FlagACK, Window: 512},
		make([]byte, 512))
	tap := unit.Tap()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tap(sim.Time(i)*sim.Millisecond, raw)
	}
}

// BenchmarkFeatureExtraction measures windowed stats computation.
func BenchmarkFeatureExtraction(b *testing.B) {
	rng := sim.NewRNG(1)
	pkts := make([]features.Basic, 1000)
	for i := range pkts {
		pkts[i] = features.Basic{
			Time:    sim.Time(i) * sim.Millisecond,
			Src:     packet.AddrFromUint32(rng.Uint32()),
			Dst:     packet.MustParseAddr("10.0.1.1"),
			Proto:   packet.ProtoTCP,
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: 80,
			Length:  60,
			Flags:   packet.FlagSYN,
			Seq:     rng.Uint32(),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := features.ComputeStats(pkts)
		if st.PacketCount != 1000 {
			b.Fatal("bad stats")
		}
	}
}

// BenchmarkTCPTransfer measures the userspace TCP stack's bulk throughput
// over the simulated network.
func BenchmarkTCPTransfer(b *testing.B) {
	const total = 1 << 20
	for i := 0; i < b.N; i++ {
		s := sim.NewScheduler()
		net := netsim.New(s)
		sw := net.NewSwitch("sw")
		subnet := packet.MustParsePrefix("10.0.0.0/24")
		mk := func(n uint32) *netstack.Host {
			nic := net.NewNode("h").AddNIC()
			net.Connect(nic, sw.NewPort(), netsim.LinkConfig{RateBps: 1_000_000_000})
			return netstack.NewHost(nic, netstack.HostConfig{Addr: subnet.Host(n), Subnet: subnet, Seed: int64(n)})
		}
		client, server := mk(1), mk(2)
		got := 0
		if _, err := server.ListenTCP(80, 0, func(c *netstack.Conn) {
			c.OnData = func(d []byte) { got += len(d) }
		}); err != nil {
			b.Fatal(err)
		}
		conn := client.DialTCP(server.Addr(), 80)
		payload := make([]byte, total)
		conn.OnConnect = func() { conn.Send(payload) }
		s.Drain()
		if got != total {
			b.Fatalf("transferred %d of %d", got, total)
		}
	}
	b.SetBytes(total)
}

// BenchmarkFloodEngine measures raw flood-frame generation.
func BenchmarkFloodEngine(b *testing.B) {
	s := sim.NewScheduler()
	net := netsim.New(s)
	sw := net.NewSwitch("sw")
	subnet := packet.MustParsePrefix("10.0.0.0/16")
	mk := func(n uint32) *netstack.Host {
		nic := net.NewNode("h").AddNIC()
		net.Connect(nic, sw.NewPort(), netsim.LinkConfig{RateBps: 10_000_000_000})
		return netstack.NewHost(nic, netstack.HostConfig{Addr: subnet.Host(n), Subnet: subnet, Seed: int64(n)})
	}
	bot, target := mk(10), mk(0x0100+1)
	target.NIC() // ensure reachable
	sink := 0
	sw.AddTap(func(t sim.Time, raw []byte) { sink += len(raw) })
	// One simulated second of lead covers ARP resolution regardless of b.N.
	dur := time.Second + time.Duration(b.N)*time.Millisecond
	f := botnet.NewFlood(bot, sim.NewRNG(1), botnet.Command{
		Type: botnet.AttackSYN, Target: target.Addr(), Port: 80,
		Duration: dur, PPS: 1000,
	}, packet.MustParsePrefix("10.0.200.0/24"))
	f.Start()
	b.ResetTimer()
	if err := s.RunFor(dur + time.Second); err != nil {
		b.Fatal(err)
	}
	if f.Sent() == 0 {
		b.Fatal("flood emitted nothing")
	}
}

// BenchmarkScheduler measures raw event throughput of the simulation core.
func BenchmarkScheduler(b *testing.B) {
	s := sim.NewScheduler()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, fn)
		}
	}
	s.After(time.Microsecond, fn)
	b.ResetTimer()
	s.Drain()
	if n != b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkExtensionModels runs the §V extension study the paper plans:
// SVM, Isolation Forest and VAE evaluated in the same real-time
// environment as the paper's three models.
func BenchmarkExtensionModels(b *testing.B) {
	ds, _ := cachedPipeline(b)
	sc := pipelineCache.sc
	ext, err := sc.TrainExtendedModels(ds)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := sc.RunRealTimeModels(ext)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rt.Table1 {
			b.ReportMetric(row.AvgAccuracy*100, row.Model+"-acc%")
		}
		for _, row := range rt.Table2 {
			b.ReportMetric(row.ModelSizeKb, row.Model+"-sizeKb")
		}
	}
}

// BenchmarkExtensionMitigation measures the response loop: how much of
// the flood the IDS-driven firewall removes at the TServer's ingress.
func BenchmarkExtensionMitigation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := testbed.New(testbed.Config{Seed: int64(50 + i), NumDevices: 8})
		if err != nil {
			b.Fatal(err)
		}
		idx := map[string]int{}
		for j, n := range features.Names() {
			idx[n] = j
		}
		fw := mitigation.NewFirewall(tb.Scheduler(), tb.TServer().Host().NIC())
		resp := mitigation.NewResponder(fw, mitigation.ResponderConfig{BlockTTL: time.Minute})
		unit := ids.New(ids.Config{
			Model:    benchRule{syn: idx["win_syn_noack_ratio"], udp: idx["win_udp_fraction"]},
			Window:   time.Second,
			OnWindow: resp.HandleWindow,
		})
		tb.AddTap(unit.Tap())
		tb.Start()
		if err := tb.Run(90 * time.Second); err != nil {
			b.Fatal(err)
		}
		tb.C2().Broadcast(botnet.Command{
			Type: botnet.AttackSYN, Target: tb.TServerAddr(), Port: 80,
			Duration: 20 * time.Second, PPS: 1000,
		})
		if err := tb.Run(25 * time.Second); err != nil {
			b.Fatal(err)
		}
		unit.Flush()
		evaluated, dropped := fw.Stats()
		if evaluated > 0 {
			b.ReportMetric(100*float64(dropped)/float64(evaluated), "ingress-drop%")
		}
		alerts, _, prefixRules := resp.Stats()
		b.ReportMetric(float64(alerts), "alerts")
		b.ReportMetric(float64(prefixRules), "prefix-rules")
	}
}

// benchRule is the deterministic flood detector used by the mitigation
// bench.
type benchRule struct{ syn, udp int }

func (r benchRule) Predict(x []float64) int {
	if x[r.syn] > 20 || x[r.udp] > 0.4 {
		return 1
	}
	return 0
}
func (benchRule) Name() string { return "rule" }
