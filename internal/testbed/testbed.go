// Package testbed is DDoShield-IoT itself: the orchestrator that assembles
// the Fig. 1 topology — the Attacker container, the Dev fleet, the TServer
// with its three benign-traffic servers (Apache/HTTP, Nginx-RTMP/video,
// custom FTP) and the IDS container — on one simulated switched network,
// runs the Mirai campaign phases, and exposes the capture, labeling and
// measurement hooks the experiments need.
package testbed

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"ddoshield/internal/apps/ftpapp"
	"ddoshield/internal/apps/httpapp"
	"ddoshield/internal/apps/rtmpapp"
	"ddoshield/internal/botnet"
	"ddoshield/internal/container"
	"ddoshield/internal/dataset"
	"ddoshield/internal/devices"
	"ddoshield/internal/faults"
	"ddoshield/internal/features"
	"ddoshield/internal/ids"
	"ddoshield/internal/netsim"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/prof"
	"ddoshield/internal/telemetry/trace"
)

// Well-known testbed addresses inside the default 10.0.0.0/12 subnet,
// built from octet literals rather than parsed strings so no runtime path
// can hit a parse panic.
var (
	// DefaultSubnet is the simulated LAN (10.0.0.0/12). The /12 leaves room
	// for the extension device plane (10.4.0.0+) that fleets beyond the
	// classic 10.0.2.x plane spill into; every legacy address stays inside
	// it, so routing behaviour for small topologies is unchanged.
	DefaultSubnet = packet.Prefix{Addr: packet.AddrFrom4(10, 0, 0, 0), Bits: 12}
	// DefaultSpoofRange supplies forged flood sources (10.0.200.0/22); it
	// is inside the subnet but never assigned to a real host, so it
	// doubles as an exact ground-truth marker.
	DefaultSpoofRange = packet.Prefix{Addr: packet.AddrFrom4(10, 0, 200, 0), Bits: 22}

	addrTServer  = packet.AddrFrom4(10, 0, 1, 1)
	addrIDS      = packet.AddrFrom4(10, 0, 1, 2)
	addrC2       = packet.AddrFrom4(10, 0, 0, 2)
	addrAttacker = packet.AddrFrom4(10, 0, 0, 3)
)

// MaxDevices bounds the fleet size a Config may request: the classic
// 10.0.2.x plane plus the 10.4.0.0+ extension plane comfortably hold it,
// and it is the scale the 100k-device campaigns target with headroom.
const MaxDevices = 200_000

// classicPlaneDevices is how many devices fit the original 10.0.2.x plane
// (10.0.2.10 .. 10.0.2.255). Only this plane lies inside the attacker's
// 10.0.2.0/24 scan range, so only these devices can ever be conscripted —
// exactly the pre-extension behaviour.
const classicPlaneDevices = 246

// deviceAddr returns the i-th device address: the classic 10.0.2.x plane
// for the first 246 devices (byte-for-byte the historical mapping), then
// the 10.4.0.0+ extension plane for fleet-scale topologies.
func deviceAddr(i int) packet.Addr {
	if i < classicPlaneDevices {
		return packet.AddrFrom4(10, 0, 2, byte(10+i))
	}
	n := i - classicPlaneDevices
	return packet.AddrFrom4(10, byte(4+n>>16), byte(n>>8), byte(n))
}

// scannableLimit reports how many leading devices the attacker's scanner
// can reach: Config.ScannableDevices when set, else the classic 246-device
// 10.0.2.x plane.
func (c Config) scannableLimit() int {
	if c.ScannableDevices > 0 {
		return c.ScannableDevices
	}
	return classicPlaneDevices
}

// deviceScannable reports whether device i is reachable by the attacker's
// scanner (inside its target ranges) and therefore a potential bot. The
// partitioner weighs scannable vulnerable devices as future flood sources.
func (c Config) deviceScannable(i int) bool { return i < c.scannableLimit() }

// maxMetricEntities bounds how many netsim entities (NICs, links,
// switches) publish per-entity metric series. Infrastructure and the
// first ~4000 devices register; beyond that only aggregate metrics grow
// with fleet size. Small topologies never reach the cap.
const maxMetricEntities = 8192

// templateKey identifies one shared device template: the slot in the
// Profiles cycle plus the benign target its instances aim at (per-group
// with EdgeServers, the central TServer otherwise).
type templateKey struct {
	profile int
	target  packet.Addr
}

// edgeServerAddr returns the g-th group's edge-server address (10.0.3.x).
func edgeServerAddr(g int) packet.Addr {
	return packet.AddrFrom4(10, 0, 3, byte(1+g))
}

// ChurnConfig models device reboots: exponential up-times and down-times.
// A rebooted device loses its infection (Mirai is memory-resident). Churn
// reboots are crash exits routed through each device's supervisor, so a
// container stopped by an operator or a fault plan mid-churn stays down
// instead of being resurrected by a stale restart callback.
type ChurnConfig struct {
	// Enabled turns churn on.
	Enabled bool
	// MeanUp is the mean time a device stays up (default 2 min).
	MeanUp time.Duration
	// MeanDown is the mean reboot outage (default 5 s).
	MeanDown time.Duration
}

// Config assembles a testbed.
type Config struct {
	// Seed drives every stochastic component.
	Seed int64
	// NumDevices is the Dev fleet size (default 10, max MaxDevices).
	NumDevices int
	// Profiles cycles device classes (default devices.DefaultFleet).
	Profiles []devices.Profile
	// MeanThink is the base benign think time per device (default 5 s).
	MeanThink time.Duration
	// ScanInterval paces the attacker's telnet scanner (default 200 ms).
	ScanInterval time.Duration
	// Link is the access-link configuration (defaults: 100 Mb/s, 1 ms).
	Link netsim.LinkConfig
	// Churn configures device reboots.
	Churn ChurnConfig
	// TapSwitch captures at the switch (all segment traffic) instead of
	// the TServer uplink only.
	TapSwitch bool
	// ReinfectCooldown is how long the loader leaves a freshly infected
	// device alone before re-probing (default 45 s, so churned devices
	// rejoin the botnet quickly at testbed timescales).
	ReinfectCooldown time.Duration
	// Faults is the fault-injection timeline, scheduled (relative to
	// Start) on every registered container. See the faults package.
	Faults faults.Plan
	// Supervision tunes the per-device supervisors (restart policy,
	// backoff, health probes). The zero value restarts crashed devices
	// with default backoff; churn, when enabled, overrides the restart
	// delay with its exponential outage draw.
	Supervision container.SupervisorConfig
	// TraceCapacity sizes the flight recorder's ring buffer (default
	// telemetry.DefaultRecorderCapacity; negative disables recording).
	TraceCapacity int
	// TraceSampleRate enables causal packet tracing: the fraction of flows
	// (selected by a deterministic hash of the 5-tuple, seeded by Seed)
	// whose packets carry per-hop spans. 0 disables tracing entirely;
	// rates >= 1 trace every flow.
	TraceSampleRate float64
	// TraceSpanCapacity bounds the tracer's finished-span ring (default
	// trace.DefaultSpanCapacity).
	TraceSpanCapacity int
	// DeviceGroups splits the Dev fleet across this many access switches
	// (edge00..edgeNN), each trunked to the core lan0 switch over
	// TrunkLink. 0 or 1 keeps the flat single-switch topology. Devices are
	// packed into groups by the deterministic load-aware partitioner (see
	// partition.go); topology is a function of the config alone — the
	// execution mode (Domains) never changes what is simulated, only how
	// it executes.
	DeviceGroups int
	// TrunkLink configures the edge-to-core trunk links (defaults: the
	// netsim link defaults, i.e. 100 Mb/s and 1 ms). With Domains > 1 the
	// trunk delay is the dominant term of the engine lookahead, so larger
	// values buy wider parallel windows.
	TrunkLink netsim.LinkConfig
	// CoreShards splits the core plane into this many switch shards
	// (core00..coreNN), each uplinked to lan0 over TrunkLink and owning
	// the trunks of the edge groups assigned to it (contiguous blocks:
	// group g trunks to shard g*CoreShards/DeviceGroups, so the scannable
	// plane's groups sit behind one shard). The TServer/IDS/C2/attacker
	// plane stays on
	// lan0, reachable from every shard through its uplink, so all
	// classic paths still exist — sharding only spreads the core relay
	// work across shards, which the partitioner places in distinct PDES
	// domains by their pulled trunk load. 0 or 1 keeps today's single
	// core switch. Requires DeviceGroups >= CoreShards. Like every other
	// topology knob, the shard layout is a pure function of the Config:
	// Domains never changes what is simulated.
	CoreShards int
	// SerialBuild forces topology construction onto one goroutine even
	// for grouped fleets. The staged parallel build is defined to produce
	// a byte-identical testbed (same MACs, link indices, metric
	// registration order); this switch exists so tests can pin that
	// equivalence and so anomalies can be bisected against the reference
	// path.
	SerialBuild bool
	// EdgeServers gives each device group a local HTTP server
	// (10.0.3.1+g) on its access switch, and points the group's devices
	// at it instead of the central TServer. This keeps benign request
	// traffic group-local — the topology shape that lets a partitioned
	// run scale — and implies HTTP-only device profiles (video/FTP
	// against an edge server are refused). Requires DeviceGroups >= 2.
	EdgeServers bool
	// Domains partitions execution into this many conservative-PDES
	// domains: domain 0 owns the core (lan0, TServer, IDS, C2, attacker)
	// and the load-aware partitioner packs device groups (or, in the flat
	// topology, devices) onto domains 1..Domains-1 by expected event rate
	// so no single hot domain serializes the epoch barrier. Values
	// <= 1 run the classic single-scheduler path. Results are
	// byte-identical either way; Domains > 1 only buys parallelism.
	// Churn, fault plans and random link loss all run partitioned: every
	// random draw comes from a per-entity stream (per device, per link
	// direction) and every fault mutates state only from its owning
	// domain's scheduler, so degraded campaigns replay exactly.
	Domains int
	// PDESWorkers bounds how many domains execute concurrently
	// (0 = Domains). Ignored when Domains <= 1.
	PDESWorkers int
	// Profile attaches the simulation profiler: campaign phase timers
	// (build/start/run/teardown) plus, under the PDES engine, per-domain
	// execute/barrier-wait wall clocks, epoch window widths and the merged
	// cross-domain message matrix. The profiler observes only — every
	// deterministic artifact (Summary, metrics, canonical spans) is
	// byte-identical with it on or off, a property the determinism tests
	// pin. Compiled out entirely under the prof_off build tag. The
	// virtual-load attribution (VirtualProfile) needs no profiler and is
	// available regardless.
	Profile bool
	// PrimeARP installs static ARP entries for every pair that will
	// exchange traffic (device and its benign target, attacker/C2/TServer
	// and the scannable plane) instead of resolving on first use, and
	// pre-seeds the switch MAC tables along the same paths. On a shared
	// L2 segment every ARP request — and every unknown-unicast frame —
	// floods all hosts, so at fleet scale resolution and first-contact
	// traffic grows as active-senders x total-hosts and dwarfs the
	// payload traffic being measured; priming removes it the same way
	// large ns-3 topologies pre-populate their ARP caches. Static entries
	// survive churn restarts (the host's ARP cache always has). Off by
	// default: small paper-faithful topologies resolve dynamically.
	PrimeARP bool
	// ScannableDevices widens (or narrows) the attacker's scannable plane:
	// the first ScannableDevices devices are reachable by the scanner and
	// therefore conscriptable. 0 keeps the classic behaviour — only the
	// 246-device 10.0.2.x plane, exactly the attacker's historical
	// 10.0.2.0/24 range. Values above classicPlaneDevices extend the
	// attacker's probe space into the 10.4.0.0+ extension plane (see
	// botnet.AttackerConfig.ExtraRanges), letting fleet-scale campaigns
	// recruit bots beyond the first 246 devices.
	ScannableDevices int
}

func (c Config) withDefaults() Config {
	if c.NumDevices <= 0 {
		c.NumDevices = 10
	}
	if len(c.Profiles) == 0 {
		c.Profiles = devices.DefaultFleet
	}
	if c.MeanThink <= 0 {
		c.MeanThink = 5 * time.Second
	}
	if c.ScanInterval <= 0 {
		c.ScanInterval = 200 * time.Millisecond
	}
	if c.Churn.MeanUp <= 0 {
		c.Churn.MeanUp = 2 * time.Minute
	}
	if c.Churn.MeanDown <= 0 {
		c.Churn.MeanDown = 5 * time.Second
	}
	if c.ReinfectCooldown <= 0 {
		c.ReinfectCooldown = 45 * time.Second
	}
	if c.DeviceGroups == 0 {
		c.DeviceGroups = 1
	}
	if c.CoreShards == 0 {
		c.CoreShards = 1
	}
	if c.Domains < 1 {
		c.Domains = 1
	}
	return c
}

// validate rejects inconsistent configurations. Partitioned mode no longer
// gates features: churn, fault plans and lossy links all run under the
// PDES engine with per-entity RNG streams and domain-local fault routing.
func (c Config) validate() error {
	if c.NumDevices > MaxDevices {
		return fmt.Errorf("testbed: NumDevices %d exceeds MaxDevices %d", c.NumDevices, MaxDevices)
	}
	if c.DeviceGroups < 0 {
		return fmt.Errorf("testbed: DeviceGroups must be >= 0 (got %d)", c.DeviceGroups)
	}
	if c.EdgeServers && c.DeviceGroups < 2 {
		return fmt.Errorf("testbed: EdgeServers requires DeviceGroups >= 2 (got %d)", c.DeviceGroups)
	}
	if c.EdgeServers && c.DeviceGroups > 254 {
		return fmt.Errorf("testbed: EdgeServers supports at most 254 groups (got %d)", c.DeviceGroups)
	}
	if c.CoreShards < 0 {
		return fmt.Errorf("testbed: CoreShards must be >= 0 (got %d)", c.CoreShards)
	}
	if c.CoreShards > 1 && c.DeviceGroups < 2 {
		return fmt.Errorf("testbed: CoreShards > 1 requires DeviceGroups >= 2 (got %d)", c.DeviceGroups)
	}
	if c.CoreShards > c.DeviceGroups && c.CoreShards > 1 {
		return fmt.Errorf("testbed: CoreShards %d exceeds DeviceGroups %d", c.CoreShards, c.DeviceGroups)
	}
	if c.ScannableDevices < 0 {
		return fmt.Errorf("testbed: ScannableDevices must be >= 0 (got %d)", c.ScannableDevices)
	}
	return nil
}

// coreShardCount reports the effective number of core switch shards
// (1 = the classic single lan0 core). Requires withDefaults.
func (c Config) coreShardCount() int {
	if c.CoreShards > 1 && c.DeviceGroups > 1 {
		return c.CoreShards
	}
	return 1
}

// DeviceHandle pairs a device with its container.
type DeviceHandle struct {
	Container *container.Container
	Device    *devices.Device
}

// Testbed is an assembled DDoShield-IoT instance.
type Testbed struct {
	cfg     Config
	sched   *sim.Scheduler
	engine  *sim.Engine // nil when Domains <= 1
	network *netsim.Network
	runtime *container.Runtime
	sw      *netsim.Switch
	// shardSws are the core fabric shards (empty when CoreShards <= 1);
	// shard s uplinks to lan0 and owns the trunks of the groups whose
	// groupShard entry is s (contiguous blocks, see placement.groupShard).
	shardSws   []*netsim.Switch
	groupShard []int
	edgeSws    []*netsim.Switch

	tserver   *container.Container
	idsC      *container.Container
	c2C       *container.Container
	attackerC *container.Container
	devs      []DeviceHandle

	httpSrv  *httpapp.Server
	rtmpSrv  *rtmpapp.Server
	ftpSrv   *ftpapp.Server
	c2       *botnet.C2
	attacker *botnet.Attacker

	edgeSrvs []*httpapp.Server
	edgeCs   []*container.Container

	injector *faults.Injector
	devSups  []*container.Supervisor
	// churn holds one private RNG stream and reboot generation per device,
	// keyed by (seed, device index). The map is fully populated at New and
	// only read afterwards; each entry is touched exclusively from its
	// device's domain, which is what lets churn run under the PDES engine.
	churn map[*container.Container]*churnState

	reg *telemetry.Registry
	// engineReg holds the per-domain PDES gauges. They live in their own
	// registry so the main Registry snapshot stays byte-identical across
	// execution modes (serial runs have no domains to report).
	engineReg *telemetry.Registry
	rec       *telemetry.Recorder
	tracer    *trace.Tracer

	idsUnits []*ids.Unit
	// mitigations are the closed defense loops wired by AttachMitigation;
	// each contributes mitigation lines to Summary and a scoreboard panel.
	mitigations []mitigationHandle

	// prof is the wall-clock profiler (nil unless Config.Profile and the
	// prof build is enabled); profLinks records every link's structural
	// endpoints for the virtual-load attribution (always populated).
	prof      *prof.Profiler
	profLinks []profLink

	started bool
}

// churnState is one device's churn bookkeeping: a private RNG for its
// up/down interval draws and a generation counter that cancels stale
// reboot callbacks. Mutated only on the device's own scheduler.
type churnState struct {
	rng *sim.RNG
	gen int
}

// churnStreamKey salts the per-device (seed, device index) churn streams.
const churnStreamKey = 0x6465762d636875 // "dev-chu"

// bindARP statically resolves both directions of a host pair (see
// Config.PrimeARP).
func bindARP(a, b *netstack.Host) {
	a.AddStaticARP(b.Addr(), b.MAC())
	b.AddStaticARP(a.Addr(), a.MAC())
}

// New assembles the full topology. Nothing runs until Start.
func New(cfg Config) (*Testbed, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tb := &Testbed{
		cfg:   cfg,
		churn: make(map[*container.Container]*churnState),
	}
	if cfg.Profile && prof.Enabled {
		tb.prof = prof.New(cfg.Domains)
	}
	tb.prof.SetDevices(cfg.NumDevices)
	tb.prof.StartPhase(prof.PhaseBuild)
	// Fleet-scale builds allocate tens of millions of small objects, none
	// of which are garbage until the fleet is live — construction is one
	// monotonic allocation burst. At the default GC target the collector
	// re-walks the growing heap dozens of times before the topology
	// exists, so the collector is switched off for the burst and restored
	// before New returns. The peak is bounded by the fleet's live
	// footprint (~3 KB/device plus transients), far below any host this
	// scale runs on, and steady state re-enables normal collection.
	if cfg.NumDevices >= 20_000 {
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
	}
	// Deterministic load-aware placement: device -> group, group -> domain
	// (see partition.go). Computed up front because edge switches must be
	// created in their groups' domains before any device exists.
	pl := cfg.layout()
	tb.groupShard = pl.groupShard
	if cfg.Domains > 1 {
		tb.engine = sim.NewEngine(cfg.Domains, 0)
		tb.sched = tb.engine.Domain(0).Scheduler()
		tb.network = netsim.NewPartitioned(tb.engine)
	} else {
		tb.sched = sim.NewScheduler()
		tb.network = netsim.New(tb.sched)
	}
	// Cap per-entity metric cardinality: the first maxMetricEntities NICs,
	// links and switches (infrastructure first — devices are created last)
	// publish series; a 100k-device fleet would otherwise put millions of
	// entries in every Prometheus snapshot. Small topologies never reach
	// the cap, so their snapshots are unchanged.
	tb.network.SetMetricEntityLimit(maxMetricEntities)
	// Root the network's derived per-link RNG streams (random loss on
	// access or trunk links configured without an explicit RNG).
	tb.network.SetSeed(cfg.Seed)
	// Telemetry hub first, so every NIC, link and switch created below
	// registers its counters at construction time.
	tb.reg = telemetry.NewRegistry()
	traceCap := cfg.TraceCapacity
	if traceCap == 0 {
		traceCap = telemetry.DefaultRecorderCapacity
	}
	if traceCap > 0 {
		tb.rec = telemetry.NewRecorder(traceCap)
	}
	tb.network.SetTelemetry(tb.reg, tb.rec)
	if tb.rec != nil {
		tb.reg.RegisterCounter(tb.rec.Dropped(), "telemetry_recorder_dropped_total")
	}
	if cfg.TraceSampleRate > 0 {
		tb.tracer = trace.New(trace.Config{
			Seed:         cfg.Seed,
			SampleRate:   cfg.TraceSampleRate,
			SpanCapacity: cfg.TraceSpanCapacity,
			Classify:     classifyFlow,
			Registry:     tb.reg,
		})
		tb.network.SetTracer(tb.tracer)
	}
	tb.runtime = container.NewRuntime(tb.network)
	// Pre-size the network's entity collections for the whole topology so
	// fleet-scale builds never re-grow them mid-construction.
	{
		srvs, groups, extraSw := 0, 0, 0
		if cfg.DeviceGroups > 1 {
			groups = cfg.DeviceGroups
			if cfg.EdgeServers {
				srvs = cfg.DeviceGroups
			}
		}
		if s := cfg.coreShardCount(); s > 1 {
			extraSw = s
		}
		tb.network.Grow(4+srvs+cfg.NumDevices, 4+extraSw+groups+srvs+cfg.NumDevices, 1+extraSw+groups)
	}
	tb.sw = tb.network.NewSwitch("lan0")

	hostCfg := func(addr packet.Addr) netstack.HostConfig {
		return netstack.HostConfig{
			Addr:   addr,
			Subnet: DefaultSubnet,
			Seed:   cfg.Seed ^ int64(addr.Uint32()),
		}
	}

	// TServer: the three benign servers in one container.
	tb.httpSrv = httpapp.NewServer(httpapp.ServerConfig{Seed: cfg.Seed + 101})
	tb.rtmpSrv = rtmpapp.NewServer(rtmpapp.ServerConfig{Seed: cfg.Seed + 102})
	tb.ftpSrv = ftpapp.NewServer(ftpapp.ServerConfig{Seed: cfg.Seed + 103})
	tserverApp := container.AppFuncs{
		OnStart: func(c *container.Container) {
			// Ports are fresh at each container start.
			if err := tb.httpSrv.Attach(c.Host()); err != nil {
				return
			}
			if err := tb.rtmpSrv.Attach(c.Host()); err != nil {
				return
			}
			_ = tb.ftpSrv.Attach(c.Host())
		},
		OnStop: func() {
			tb.httpSrv.Detach()
			tb.rtmpSrv.Detach()
			tb.ftpSrv.Detach()
		},
	}
	var err error
	tb.tserver, err = tb.runtime.Create(container.Spec{
		Name: "tserver", Image: "tserver:apache-nginx-ftp",
		Host: hostCfg(addrTServer), App: tserverApp,
	}, tb.sw, cfg.Link)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}

	// IDS container: passive; detection units meter into it.
	tb.idsC, err = tb.runtime.Create(container.Spec{
		Name: "ids", Image: "ids:realtime",
		Host: hostCfg(addrIDS),
	}, tb.sw, cfg.Link)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}

	// C2 container.
	tb.c2 = botnet.NewC2(0)
	c2App := container.AppFuncs{
		OnStart: func(c *container.Container) { _ = tb.c2.Attach(c.Host()) },
		OnStop:  func() { tb.c2.Detach() },
	}
	tb.c2C, err = tb.runtime.Create(container.Spec{
		Name: "c2", Image: "mirai:cnc",
		Host: hostCfg(addrC2), App: c2App,
	}, tb.sw, cfg.Link)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}

	// Attacker container: scanner + loader over the device address plane.
	// With ScannableDevices past the classic 246-device 10.0.2.x plane,
	// the scanner also sweeps the contiguous 10.4.0.0+ extension block
	// those devices live in; the default remains exactly the historical
	// 10.0.2.0/24 range.
	var extraRanges []botnet.ScanRange
	if lim := cfg.scannableLimit(); lim > classicPlaneDevices && cfg.NumDevices > classicPlaneDevices {
		count := min(lim, cfg.NumDevices) - classicPlaneDevices
		extraRanges = []botnet.ScanRange{{Base: deviceAddr(classicPlaneDevices), Count: uint32(count)}}
	}
	tb.attacker = botnet.NewAttacker(botnet.AttackerConfig{
		TargetRange:       packet.Prefix{Addr: packet.AddrFrom4(10, 0, 2, 0), Bits: 24},
		ExtraRanges:       extraRanges,
		C2Addr:            addrC2,
		C2Port:            tb.c2.Port(),
		MeanProbeInterval: cfg.ScanInterval,
		ReinfectCooldown:  cfg.ReinfectCooldown,
		Seed:              cfg.Seed + 301,
	})
	atkApp := container.AppFuncs{
		OnStart: func(c *container.Container) { tb.attacker.Attach(c.Host()) },
		OnStop:  func() { tb.attacker.Detach() },
	}
	tb.attackerC, err = tb.runtime.Create(container.Spec{
		Name: "attacker", Image: "mirai:loader",
		Host: hostCfg(addrAttacker), App: atkApp,
	}, tb.sw, cfg.Link)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	for _, c := range []*container.Container{tb.tserver, tb.idsC, tb.c2C, tb.attackerC} {
		tb.trackLink(c.Link(), linkEnd{kind: endCore}, linkEnd{kind: endCore})
	}

	// Core fabric shards: with CoreShards > 1 the core plane splits into
	// shard switches, each uplinked to lan0 (where the TServer/IDS/C2/
	// attacker plane stays) and owning the trunks of the edge groups
	// assigned to it. shardLanPorts[s] is the lan0-side port of shard s's
	// uplink — the port lan0 must learn to reach anything behind shard s.
	shards := cfg.coreShardCount()
	var shardLanPorts []netsim.Port
	if shards > 1 {
		for s := 0; s < shards; s++ {
			ssw := tb.network.NewSwitchInDomain(fmt.Sprintf("core%02d", s), pl.domainOfShard(s))
			lanPort, upPort := tb.sw.NewPort(), ssw.NewPort()
			uplink := tb.network.Connect(lanPort, upPort, cfg.TrunkLink)
			tb.trackLink(uplink, linkEnd{kind: endCore}, linkEnd{kind: endShard, idx: s})
			tb.shardSws = append(tb.shardSws, ssw)
			shardLanPorts = append(shardLanPorts, lanPort)
			if cfg.PrimeARP {
				// Core-plane hosts reached from behind this shard go via
				// the uplink.
				ssw.Learn(tb.tserver.Host().MAC(), upPort)
				ssw.Learn(tb.attackerC.Host().MAC(), upPort)
				ssw.Learn(tb.c2C.Host().MAC(), upPort)
			}
		}
	}

	// Access-layer infrastructure: every group's edge switch plus its
	// trunk into the core fabric (its shard's switch, or lan0 directly
	// when unsharded), placed in the group's PDES domain. Built serially:
	// switches and trunks are the shared wiring the staged group builds
	// below attach to.
	var trunkCorePorts []netsim.Port
	if cfg.DeviceGroups > 1 {
		for g := 0; g < cfg.DeviceGroups; g++ {
			esw := tb.network.NewSwitchInDomain(fmt.Sprintf("edge%02d", g), pl.domainOfGroup(g))
			coreSw, coreEnd := tb.sw, linkEnd{kind: endCore}
			if shards > 1 {
				s := pl.groupShard[g]
				coreSw, coreEnd = tb.shardSws[s], linkEnd{kind: endShard, idx: s}
			}
			corePort, edgePort := coreSw.NewPort(), esw.NewPort()
			trunk := tb.network.Connect(corePort, edgePort, cfg.TrunkLink)
			tb.trackLink(trunk, coreEnd, linkEnd{kind: endGroup, idx: g})
			trunkCorePorts = append(trunkCorePorts, corePort)
			tb.edgeSws = append(tb.edgeSws, esw)
			if cfg.PrimeARP {
				// Core-side hosts reached from this group go via the trunk.
				esw.Learn(tb.tserver.Host().MAC(), edgePort)
				esw.Learn(tb.attackerC.Host().MAC(), edgePort)
				esw.Learn(tb.c2C.Host().MAC(), edgePort)
			}
		}
	}
	if cfg.PrimeARP {
		for _, c := range []*container.Container{tb.tserver, tb.idsC, tb.c2C, tb.attackerC} {
			tb.sw.Learn(c.Host().MAC(), c.SwitchPort())
		}
	}

	// Device fleet (and per-group edge servers): built group-major, in
	// parallel for grouped topologies unless Config.SerialBuild.
	if err := tb.buildAccessLayer(pl, trunkCorePorts, shardLanPorts, hostCfg); err != nil {
		return nil, err
	}

	// Fault injection: register every container in creation order so glob
	// resolution (and thus injection order) is deterministic.
	tb.injector = faults.NewInjector(tb.sched, cfg.Seed, tb.sw)
	for _, c := range tb.allContainers() {
		tb.injector.RegisterContainer(c)
	}
	tb.injector.SetTelemetry(tb.reg, tb.rec)
	tb.registerCampaignMetrics()
	if tb.engine != nil {
		// Conservative lookahead: the smallest propagation delay of any
		// link that crosses a domain boundary. A degenerate partitioning
		// (every object in domain 0) has no such link; any positive
		// lookahead is then safe.
		la, ok := tb.network.MinCrossDomainDelay()
		if !ok {
			la = sim.Millisecond
		}
		tb.engine.SetLookahead(la)
		tb.registerEngineMetrics()
		if tb.prof != nil {
			tb.engine.SetProbe(tb.prof)
		}
	}
	tb.prof.EndPhase(prof.PhaseBuild)
	return tb, nil
}

// buildAccessLayer constructs the device fleet and per-group edge servers —
// the bulk of the topology at fleet scale. Flat topologies keep the classic
// inline loop. Grouped topologies build group-major through netsim
// construction stages: identity ranges (MACs, link indices) are reserved
// per group in canonical order before any entity exists, entity creation
// fans out one goroutine per group (unless Config.SerialBuild), and the
// stages merge back serially in the same canonical order — so the parallel
// build is byte-identical to the sequential one. Mutations of shared state
// (core-fabric MAC priming, core-plane hosts' static ARP, churn streams,
// link attribution) are deferred to a final serial pass in global device
// order.
func (tb *Testbed) buildAccessLayer(pl placement, trunkCorePorts, shardLanPorts []netsim.Port, hostCfg func(packet.Addr) netstack.HostConfig) error {
	cfg := tb.cfg
	tb.devs = make([]DeviceHandle, cfg.NumDevices)

	if cfg.DeviceGroups <= 1 {
		// Flat topology: every device on lan0, aimed at the central
		// TServer. Class state is shared — one flyweight template per
		// profile slot serves every instance.
		templates := make(map[templateKey]*devices.Template)
		for i := 0; i < cfg.NumDevices; i++ {
			profile := cfg.Profiles[i%len(cfg.Profiles)]
			name := fmt.Sprintf("dev%02d-%s", i, profile.Kind)
			tk := templateKey{profile: i % len(cfg.Profiles), target: addrTServer}
			tmpl := templates[tk]
			if tmpl == nil {
				tmpl = devices.NewTemplate(devices.TemplateConfig{
					Profile:    profile,
					TServer:    addrTServer,
					SpoofRange: DefaultSpoofRange,
					MeanThink:  cfg.MeanThink,
				})
				templates[tk] = tmpl
			}
			dev := tmpl.Instantiate(name, cfg.Seed+1000+int64(i)*13)
			devC, err := tb.runtime.Create(container.Spec{
				Name: name, Image: "iot:" + profile.Kind,
				Host: hostCfg(deviceAddr(i)), App: dev, Domain: pl.deviceDomain[i],
			}, tb.sw, cfg.Link)
			if err != nil {
				return fmt.Errorf("testbed: %w", err)
			}
			tb.devs[i] = DeviceHandle{Container: devC, Device: dev}
			tb.trackLink(devC.Link(), linkEnd{kind: endDevice, idx: i}, linkEnd{kind: endCore})
			if cfg.PrimeARP {
				devH := devC.Host()
				tb.sw.Learn(devH.MAC(), devC.SwitchPort())
				bindARP(devH, tb.tserver.Host())
				if cfg.deviceScannable(i) {
					bindARP(devH, tb.attackerC.Host())
					bindARP(devH, tb.c2C.Host())
				}
			}
			// Per-device churn stream, fixed now so the map is read-only
			// once the simulation runs (entries mutate only in the owning
			// domain). Skipped entirely when churn is off — at fleet scale
			// the unused RNG states would dominate per-device cost.
			if cfg.Churn.Enabled {
				tb.churn[devC] = &churnState{rng: sim.KeyedStream(cfg.Seed, churnStreamKey, uint64(i))}
			}
		}
		return nil
	}

	// Canonical group-major order: group g's slice of the fleet is its
	// edge server (when configured) followed by its devices in ascending
	// global index. Stages are created serially in exactly that order, so
	// every MAC and link index is fixed before any goroutine runs.
	byGroup := make([][]int, cfg.DeviceGroups)
	for i, g := range pl.deviceGroup {
		byGroup[g] = append(byGroup[g], i)
	}
	if cfg.EdgeServers {
		tb.edgeSrvs = make([]*httpapp.Server, cfg.DeviceGroups)
		tb.edgeCs = make([]*container.Container, cfg.DeviceGroups)
	}
	// Stage.Connect cannot split one shared loss RNG across goroutines;
	// such configs fall back to the sequential direct path (st == nil),
	// which executes the same canonical order inline.
	useStages := !(cfg.Link.LossProb > 0 && cfg.Link.RNG != nil)
	stages := make([]*netsim.Stage, cfg.DeviceGroups)
	if useStages {
		for g := range stages {
			n := len(byGroup[g])
			if cfg.EdgeServers {
				n++
			}
			stages[g] = tb.network.NewStage(n, n)
		}
	}
	tb.runtime.Grow(len(tb.devs) + len(tb.edgeCs))
	stageCs := make([][]*container.Container, cfg.DeviceGroups)

	buildGroup := func(g int, st *netsim.Stage) error {
		esw := tb.edgeSws[g]
		dom := pl.domainOfGroup(g)
		cs := make([]*container.Container, 0, len(byGroup[g])+1)
		target := addrTServer
		if cfg.EdgeServers {
			target = edgeServerAddr(g)
			srv := httpapp.NewServer(httpapp.ServerConfig{Seed: cfg.Seed + 2000 + int64(g)})
			srvApp := container.AppFuncs{
				OnStart: func(c *container.Container) { _ = srv.Attach(c.Host()) },
				OnStop:  srv.Detach,
			}
			srvC, err := tb.createIn(st, container.Spec{
				Name: fmt.Sprintf("edge%02d-srv", g), Image: "edge:http",
				Host: hostCfg(edgeServerAddr(g)), App: srvApp, Domain: dom,
			}, esw)
			if err != nil {
				return err
			}
			tb.edgeSrvs[g], tb.edgeCs[g] = srv, srvC
			cs = append(cs, srvC)
			if cfg.PrimeARP {
				esw.Learn(srvC.Host().MAC(), srvC.SwitchPort())
			}
		}
		templates := make(map[templateKey]*devices.Template)
		for _, i := range byGroup[g] {
			profile := cfg.Profiles[i%len(cfg.Profiles)]
			name := fmt.Sprintf("dev%02d-%s", i, profile.Kind)
			tk := templateKey{profile: i % len(cfg.Profiles), target: target}
			tmpl := templates[tk]
			if tmpl == nil {
				tmpl = devices.NewTemplate(devices.TemplateConfig{
					Profile:    profile,
					TServer:    target,
					SpoofRange: DefaultSpoofRange,
					MeanThink:  cfg.MeanThink,
				})
				templates[tk] = tmpl
			}
			dev := tmpl.Instantiate(name, cfg.Seed+1000+int64(i)*13)
			devC, err := tb.createIn(st, container.Spec{
				Name: name, Image: "iot:" + profile.Kind,
				Host: hostCfg(deviceAddr(i)), App: dev, Domain: pl.deviceDomain[i],
			}, esw)
			if err != nil {
				return err
			}
			tb.devs[i] = DeviceHandle{Container: devC, Device: dev}
			cs = append(cs, devC)
			if cfg.PrimeARP {
				// Group-local priming only: the edge switch's table and
				// the device's own ARP entries. The device's entries in
				// core-plane hosts and core switches mutate shared state
				// and are installed by the serial pass after Merge.
				devH := devC.Host()
				esw.Learn(devH.MAC(), devC.SwitchPort())
				srvH := tb.tserver.Host()
				if cfg.EdgeServers {
					srvH = tb.edgeCs[g].Host()
				}
				devH.AddStaticARP(srvH.Addr(), srvH.MAC())
				if cfg.EdgeServers {
					srvH.AddStaticARP(devH.Addr(), devH.MAC())
				}
				if cfg.deviceScannable(i) {
					atkH, c2H := tb.attackerC.Host(), tb.c2C.Host()
					devH.AddStaticARP(atkH.Addr(), atkH.MAC())
					devH.AddStaticARP(c2H.Addr(), c2H.MAC())
					if cfg.EdgeServers {
						tsH := tb.tserver.Host()
						devH.AddStaticARP(tsH.Addr(), tsH.MAC())
					}
				}
			}
		}
		stageCs[g] = cs
		return nil
	}

	errs := make([]error, cfg.DeviceGroups)
	if useStages && !cfg.SerialBuild {
		var wg sync.WaitGroup
		for g := range stages {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				errs[g] = buildGroup(g, stages[g])
			}(g)
		}
		wg.Wait()
	} else {
		for g := range stages {
			errs[g] = buildGroup(g, stages[g])
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if useStages {
		tb.network.Merge(stages...)
		for g := range stageCs {
			if err := tb.runtime.Adopt(stageCs[g]...); err != nil {
				return fmt.Errorf("testbed: %w", err)
			}
		}
	}

	// Serial epilogue in canonical order: link attribution for the staged
	// containers, then the per-device shared-state priming the concurrent
	// stages had to defer — core-fabric MAC learning, core-plane hosts'
	// static ARP entries, churn streams.
	for g := range tb.edgeCs {
		tb.trackLink(tb.edgeCs[g].Link(), linkEnd{kind: endGroup, idx: g}, linkEnd{kind: endGroup, idx: g})
	}
	shards := cfg.coreShardCount()
	for i := range tb.devs {
		devC := tb.devs[i].Container
		g := pl.deviceGroup[i]
		if cfg.PrimeARP {
			devH := devC.Host()
			if !cfg.EdgeServers {
				tb.tserver.Host().AddStaticARP(devH.Addr(), devH.MAC())
			}
			if cfg.deviceScannable(i) {
				// The loader/C2/TServer reach this device through the core
				// fabric: lan0 learns the path toward the device's shard,
				// and the shard (or lan0 itself, unsharded) learns the
				// trunk toward its group.
				tb.coreSwitchOf(g).Learn(devH.MAC(), trunkCorePorts[g])
				if shards > 1 {
					tb.sw.Learn(devH.MAC(), shardLanPorts[pl.groupShard[g]])
				}
				tb.attackerC.Host().AddStaticARP(devH.Addr(), devH.MAC())
				tb.c2C.Host().AddStaticARP(devH.Addr(), devH.MAC())
				if cfg.EdgeServers {
					tb.tserver.Host().AddStaticARP(devH.Addr(), devH.MAC())
				}
			}
		}
		tb.trackLink(devC.Link(), linkEnd{kind: endDevice, idx: i}, linkEnd{kind: endGroup, idx: g})
		if cfg.Churn.Enabled {
			tb.churn[devC] = &churnState{rng: sim.KeyedStream(cfg.Seed, churnStreamKey, uint64(i))}
		}
	}
	return nil
}

// createIn creates a container through the staged path when st is non-nil,
// else directly on the runtime — the sequential-fallback arm of the group
// build, which allocates identities in the same canonical order the stage
// reservations would have.
func (tb *Testbed) createIn(st *netsim.Stage, spec container.Spec, sw *netsim.Switch) (*container.Container, error) {
	if st != nil {
		return tb.runtime.CreateStaged(st, spec, sw, tb.cfg.Link), nil
	}
	c, err := tb.runtime.Create(spec, sw, tb.cfg.Link)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	return c, nil
}

// coreSwitchOf reports the core-fabric switch owning group g's trunk:
// its shard when the core is sharded, lan0 otherwise.
func (tb *Testbed) coreSwitchOf(g int) *netsim.Switch {
	if len(tb.shardSws) > 0 {
		return tb.shardSws[tb.groupShard[g]]
	}
	return tb.sw
}

// registerEngineMetrics publishes the PDES engine's per-domain execution
// gauges into a dedicated registry (see Testbed.EngineMetrics).
func (tb *Testbed) registerEngineMetrics() {
	tb.engineReg = telemetry.NewRegistry()
	reg, e := tb.engineReg, tb.engine
	reg.RegisterCounterFunc(func() uint64 { return e.Epochs() }, "sim_engine_epochs_total")
	reg.RegisterGaugeFunc(func() float64 { return float64(e.Lookahead()) }, "sim_engine_lookahead_ns")
	for i := 0; i < e.NumDomains(); i++ {
		d := e.Domain(i)
		l := telemetry.L("domain", fmt.Sprintf("%d", i))
		reg.RegisterCounterFunc(func() uint64 { return d.Stats().Events }, "sim_domain_events_total", l)
		reg.RegisterCounterFunc(func() uint64 { return d.Stats().BarrierWaits }, "sim_domain_barrier_waits_total", l)
		reg.RegisterCounterFunc(func() uint64 { return d.Stats().MsgsOut }, "sim_domain_msgs_out_total", l)
		reg.RegisterCounterFunc(func() uint64 { return d.Stats().MsgsIn }, "sim_domain_msgs_in_total", l)
		reg.RegisterGaugeFunc(func() float64 { return float64(d.Stats().HorizonLag) }, "sim_domain_horizon_lag_ns", l)
	}
}

// registerCampaignMetrics exposes botnet campaign and fleet-health state as
// export-time metrics: the infection curve, C2 population, attacker
// progress and container crash/restart totals.
func (tb *Testbed) registerCampaignMetrics() {
	reg := tb.reg
	reg.RegisterGaugeFunc(func() float64 { return float64(tb.InfectedCount()) },
		"testbed_infected_devices")
	reg.RegisterGaugeFunc(func() float64 { return float64(tb.c2.Bots()) },
		"botnet_c2_bots")
	reg.RegisterCounterFunc(func() uint64 { r, _ := tb.c2.Stats(); return r },
		"botnet_c2_registered_total")
	reg.RegisterCounterFunc(func() uint64 { _, s := tb.c2.Stats(); return s },
		"botnet_c2_commands_total")
	reg.RegisterCounterFunc(func() uint64 { p, _, _, _ := tb.attacker.Stats(); return p },
		"botnet_attacker_probes_total")
	reg.RegisterCounterFunc(func() uint64 { _, c, _, _ := tb.attacker.Stats(); return c },
		"botnet_attacker_connects_total")
	reg.RegisterCounterFunc(func() uint64 { _, _, c, _ := tb.attacker.Stats(); return c },
		"botnet_attacker_cracked_total")
	reg.RegisterCounterFunc(func() uint64 { _, _, _, i := tb.attacker.Stats(); return i },
		"botnet_attacker_infections_total")
	reg.RegisterCounterFunc(func() uint64 {
		var n uint64
		for _, c := range tb.allContainers() {
			n += c.Crashes()
		}
		return n
	}, "testbed_container_crashes_total")
	reg.RegisterCounterFunc(func() uint64 {
		var n uint64
		for _, c := range tb.allContainers() {
			n += uint64(c.Restarts())
		}
		return n
	}, "testbed_container_restarts_total")
}

// Registry exposes the testbed's metrics registry.
func (tb *Testbed) Registry() *telemetry.Registry { return tb.reg }

// Recorder exposes the flight recorder (nil when TraceCapacity < 0).
func (tb *Testbed) Recorder() *telemetry.Recorder { return tb.rec }

// Tracer exposes the causal packet tracer (nil unless Config.TraceSampleRate
// is set; the trace API is nil-receiver safe, so callers may use the result
// directly).
func (tb *Testbed) Tracer() *trace.Tracer { return tb.tracer }

// allContainers lists every container in creation order.
func (tb *Testbed) allContainers() []*container.Container {
	out := []*container.Container{tb.tserver, tb.idsC, tb.c2C, tb.attackerC}
	out = append(out, tb.edgeCs...)
	for i := range tb.devs {
		out = append(out, tb.devs[i].Container)
	}
	return out
}

// Start brings every container up (TServer first, then C2, attacker and
// devices), attaches a supervisor to each device, schedules churn reboots
// when enabled, and arms the configured fault plan.
func (tb *Testbed) Start() {
	if tb.started {
		return
	}
	tb.started = true
	tb.prof.StartPhase(prof.PhaseStart)
	defer tb.prof.EndPhase(prof.PhaseStart)
	tb.tserver.Start()
	tb.idsC.Start()
	tb.c2C.Start()
	tb.attackerC.Start()
	for _, c := range tb.edgeCs {
		c.Start()
	}
	for i := range tb.devs {
		c := tb.devs[i].Container
		c.Start()
		tb.devSups = append(tb.devSups, tb.runtime.Supervise(c, tb.deviceSupervision(c)))
		if tb.cfg.Churn.Enabled {
			tb.scheduleChurn(c)
		}
	}
	if !tb.cfg.Faults.Empty() {
		tb.injector.Schedule(tb.cfg.Faults)
	}
}

// deviceSupervision builds the supervisor config for one device container:
// Config.Supervision with testbed policy on top. Crashed devices restart by
// default; with churn enabled the restart delay is the device's own churn
// stream's exponential outage draw and every supervised restart re-arms the
// next churn cycle. Both draws come from the same per-device RNG, so a
// device's up/down sequence depends only on its own reboot history — never
// on how other devices' events interleave, in either execution mode.
func (tb *Testbed) deviceSupervision(c *container.Container) container.SupervisorConfig {
	cfg := tb.cfg.Supervision
	if cfg.Policy == container.RestartNever {
		cfg.Policy = container.RestartOnFailure
	}
	if tb.cfg.Churn.Enabled {
		cfg.Policy = container.RestartAlways
		if cfg.Delay == nil {
			st := tb.churn[c]
			cfg.Delay = func(int) time.Duration {
				return time.Duration(st.rng.Exp(float64(tb.cfg.Churn.MeanDown)))
			}
		}
		prev := cfg.OnRestart
		cfg.OnRestart = func(c *container.Container) {
			tb.scheduleChurn(c)
			if prev != nil {
				prev(c)
			}
		}
	}
	return cfg
}

// scheduleChurn arms the next reboot for one device container, on the
// device's own scheduler (the supervisor, the kill and the restart all
// stay inside the device's domain). A reboot is a crash exit (Kill); the
// device's supervisor brings it back after the churn outage draw and
// re-arms the next cycle via OnRestart. A generation counter retires the
// pending timer when the supervisor restarts the device for another reason
// first, and the running-state guard keeps a stale timer from touching a
// container a fault plan or operator took down — nothing silently
// resurrects a deliberately stopped device anymore.
func (tb *Testbed) scheduleChurn(c *container.Container) {
	st := tb.churn[c]
	st.gen++
	gen := st.gen
	up := time.Duration(st.rng.Exp(float64(tb.cfg.Churn.MeanUp)))
	c.Scheduler().After(up, func() {
		if st.gen != gen || c.State() != container.StateRunning {
			return
		}
		c.Kill()
	})
}

// Run advances the simulation by d: on the single scheduler when serial,
// or through the PDES engine's epoch loop (with PDESWorkers goroutines)
// when Domains > 1. Both paths yield byte-identical state.
func (tb *Testbed) Run(d time.Duration) error {
	tb.prof.StartPhase(prof.PhaseRun)
	defer tb.prof.EndPhase(prof.PhaseRun)
	if tb.engine != nil {
		return tb.engine.RunFor(sim.FromDuration(d), tb.Workers())
	}
	return tb.sched.RunFor(d)
}

// Workers reports the effective parallel worker count (Domains when
// Config.PDESWorkers is 0; always 1 in serial mode).
func (tb *Testbed) Workers() int {
	if tb.engine == nil {
		return 1
	}
	if tb.cfg.PDESWorkers > 0 {
		return tb.cfg.PDESWorkers
	}
	return tb.cfg.Domains
}

// Engine exposes the PDES engine (nil when Domains <= 1).
func (tb *Testbed) Engine() *sim.Engine { return tb.engine }

// EngineMetrics exposes the per-domain PDES gauges' registry (nil when
// serial). Kept separate from Registry so the primary metrics snapshot is
// byte-identical across execution modes.
func (tb *Testbed) EngineMetrics() *telemetry.Registry { return tb.engineReg }

// Scheduler exposes the simulation scheduler (domain 0's when partitioned).
func (tb *Testbed) Scheduler() *sim.Scheduler { return tb.sched }

// Network exposes the simulated network.
func (tb *Testbed) Network() *netsim.Network { return tb.network }

// Switch exposes the LAN switch (for span-port taps).
func (tb *Testbed) Switch() *netsim.Switch { return tb.sw }

// CoreShardSwitches lists the core fabric's shard switches (empty when
// CoreShards <= 1).
func (tb *Testbed) CoreShardSwitches() []*netsim.Switch {
	out := make([]*netsim.Switch, len(tb.shardSws))
	copy(out, tb.shardSws)
	return out
}

// TServer exposes the target-server container.
func (tb *Testbed) TServer() *container.Container { return tb.tserver }

// TServerAddr reports the TServer address.
func (tb *Testbed) TServerAddr() packet.Addr { return addrTServer }

// IDSContainer exposes the IDS container (detection units meter into it).
func (tb *Testbed) IDSContainer() *container.Container { return tb.idsC }

// C2 exposes the command-and-control server.
func (tb *Testbed) C2() *botnet.C2 { return tb.c2 }

// Attacker exposes the scan-and-infect component.
func (tb *Testbed) Attacker() *botnet.Attacker { return tb.attacker }

// Devices lists the fleet.
func (tb *Testbed) Devices() []DeviceHandle {
	out := make([]DeviceHandle, len(tb.devs))
	copy(out, tb.devs)
	return out
}

// InfectedCount reports devices currently carrying a bot.
func (tb *Testbed) InfectedCount() int {
	n := 0
	for i := range tb.devs {
		if tb.devs[i].Device.Infected() {
			n++
		}
	}
	return n
}

// Injector exposes the fault injector, e.g. to register extra targets or
// schedule additional plans mid-run.
func (tb *Testbed) Injector() *faults.Injector { return tb.injector }

// FaultCounters reports per-kind fault injection counts, sorted by kind.
func (tb *Testbed) FaultCounters() []faults.Counter { return tb.injector.Counters() }

// DeviceSupervisors lists the per-device supervisors (empty before Start).
func (tb *Testbed) DeviceSupervisors() []*container.Supervisor {
	out := make([]*container.Supervisor, len(tb.devSups))
	copy(out, tb.devSups)
	return out
}

// Summary renders a deterministic end-of-run report: simulated clock,
// switch and link counters, campaign state, supervision activity and fault
// counters. It contains no wall-clock or host-dependent values, so two
// same-seed runs with the same fault plan produce byte-identical output —
// the property the determinism regression test pins down.
func (tb *Testbed) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "clock        %s\n", tb.sched.Now().Duration())
	fwd, fld := tb.sw.Stats()
	fmt.Fprintf(&b, "switch       forwarded=%d flooded=%d partition-drops=%d\n",
		fwd, fld, tb.sw.PartitionDrops())
	if len(tb.shardSws) > 0 {
		var sfwd, sfld, sdrop uint64
		for _, ssw := range tb.shardSws {
			f, l := ssw.Stats()
			sfwd, sfld, sdrop = sfwd+f, sfld+l, sdrop+ssw.PartitionDrops()
		}
		fmt.Fprintf(&b, "corefab      shards=%d forwarded=%d flooded=%d partition-drops=%d\n",
			len(tb.shardSws), sfwd, sfld, sdrop)
	}
	var ls netsim.LinkStats
	for _, c := range tb.allContainers() {
		ls.Add(c.Link().Counters())
	}
	fmt.Fprintf(&b, "links        tx=%d bytes=%d queue-drops=%d loss=%d corrupt=%d dup=%d reorder=%d inflight-drops=%d\n",
		ls.TxFrames, ls.TxBytes, ls.QueueDrops, ls.LossFrames,
		ls.CorruptFrames, ls.DupFrames, ls.ReorderFrames, ls.InFlightDrops)
	probes, connects, cracked, infections := tb.attacker.Stats()
	fmt.Fprintf(&b, "attacker     probes=%d connects=%d cracked=%d infections=%d\n",
		probes, connects, cracked, infections)
	reg, cmds := tb.c2.Stats()
	fmt.Fprintf(&b, "c2           registered=%d commands=%d bots=%d\n", reg, cmds, tb.c2.Bots())
	fmt.Fprintf(&b, "devices      total=%d infected=%d\n", len(tb.devs), tb.InfectedCount())
	restarts := 0
	var crashes uint64
	for _, s := range tb.devSups {
		restarts += s.Restarts()
	}
	for _, c := range tb.allContainers() {
		crashes += c.Crashes()
	}
	fmt.Fprintf(&b, "supervision  restarts=%d crashes=%d\n", restarts, crashes)
	if s := tb.injector.String(); s != "" {
		fmt.Fprintf(&b, "faults       %s\n", s)
	}
	if tb.tracer != nil {
		fmt.Fprintf(&b, "trace        finished=%d active=%d evicted=%d\n",
			len(tb.tracer.Spans()), tb.tracer.Active(), tb.tracer.Evicted())
	}
	for _, u := range tb.idsUnits {
		if d, ok := tb.DetectionLatency(u); ok {
			fmt.Fprintf(&b, "detection    unit=%s latency=%s\n", u.Name(), d)
		} else {
			fmt.Fprintf(&b, "detection    unit=%s latency=n/a\n", u.Name())
		}
	}
	for _, m := range tb.mitigations {
		ev, dr := m.fw.Stats()
		fmt.Fprintf(&b, "mitigation   unit=%s evaluated=%d dropped=%d rate-limited=%d collateral=%d attack-drops=%d attack-passed=%d\n",
			m.unit.Name(), ev, dr, m.fw.RateLimited(), m.fw.CollateralDrops(),
			m.fw.AttackDrops(), m.fw.AttackPassed())
		ha, hp, hf := m.fw.RuleHits()
		cs := m.fw.CacheStats()
		fmt.Fprintf(&b, "verdicts     unit=%s rule-hits addr=%d prefix=%d flow=%d cache size=%d inserts=%d evictions=%d expired=%d hits=%d misses=%d\n",
			m.unit.Name(), ha, hp, hf, cs.Size, cs.Inserts, cs.Evictions, cs.Expired, cs.Hits, cs.Misses)
		if d, ok := tb.TimeToMitigate(m.fw); ok {
			fmt.Fprintf(&b, "mitigate     unit=%s time-to-mitigate=%s\n", m.unit.Name(), d)
		} else {
			fmt.Fprintf(&b, "mitigate     unit=%s time-to-mitigate=n/a\n", m.unit.Name())
		}
	}
	return b.String()
}

// HTTPServer, VideoServer, FTPServer expose the TServer's benign services.
func (tb *Testbed) HTTPServer() *httpapp.Server  { return tb.httpSrv }
func (tb *Testbed) VideoServer() *rtmpapp.Server { return tb.rtmpSrv }
func (tb *Testbed) FTPServer() *ftpapp.Server    { return tb.ftpSrv }

// AddTap installs a capture tap at the configured observation point: the
// TServer uplink by default (where benign and attack traffic converge, as
// the paper's IDS observes), or the whole switch with Config.TapSwitch.
func (tb *Testbed) AddTap(tap netsim.Tap) {
	if tb.cfg.TapSwitch {
		tb.sw.AddTap(tap)
		return
	}
	tb.tserver.Link().AddTap(tap)
}

// AddTapCtx installs a trace-context-aware capture tap at the same
// observation point AddTap uses, so sampled packets' causal chains extend
// into the consumer (the IDS joins its window spans here).
func (tb *Testbed) AddTapCtx(tap netsim.TapCtx) {
	if tb.cfg.TapSwitch {
		tb.sw.AddTapCtx(tap)
		return
	}
	tb.tserver.Link().AddTapCtx(tap)
}

// AttachIDS wires a detection unit into the testbed's observation point via
// its trace-aware tap and registers ids_detection_latency_seconds{unit=...}:
// the gap between the first attack packet's origin and the unit's first
// correct alert (-1 until both anchors exist). The unit also gains a
// detection line in Summary.
func (tb *Testbed) AttachIDS(u *ids.Unit) {
	tb.idsUnits = append(tb.idsUnits, u)
	tb.AddTapCtx(u.TapCtx())
	tb.reg.RegisterGaugeFunc(func() float64 {
		d, ok := tb.DetectionLatency(u)
		if !ok {
			return -1
		}
		return d.Seconds()
	}, "ids_detection_latency_seconds", telemetry.L("unit", u.Name()))
}

// FirstAttackAt reports when the first attack packet left its origin: the
// tracer's first KindAttack origin span when tracing is on, else the first
// C2 attack interval's start. The second return is false before any attack.
func (tb *Testbed) FirstAttackAt() (sim.Time, bool) {
	if t, ok := tb.tracer.FirstAttackOrigin(); ok {
		return t, true
	}
	iv := tb.c2.Intervals()
	if len(iv) == 0 {
		return 0, false
	}
	return iv[0].Start, true
}

// DetectionLatency reports the per-scenario detection latency for one
// attached unit: first attack packet origin → the unit's first alert on a
// window that truly contained attack traffic. False until both exist.
func (tb *Testbed) DetectionLatency(u *ids.Unit) (time.Duration, bool) {
	start, ok := tb.FirstAttackAt()
	if !ok {
		return 0, false
	}
	alert, ok := u.FirstCorrectAlert()
	if !ok || alert < start {
		return 0, false
	}
	return (alert - start).Duration(), true
}

// ScheduleAttack broadcasts one C2 command at the given offset from
// simulation start. Unlike C2.ScheduleAttack it is safe to call before
// Start (it runs on the testbed's scheduler).
func (tb *Testbed) ScheduleAttack(at time.Duration, cmd botnet.Command) {
	tb.sched.At(sim.FromDuration(at), func() { tb.c2.Broadcast(cmd) })
}

// ScheduleAttackWave schedules a sequence of C2 attack commands, the first
// at start, each subsequent one gap after the previous ends.
func (tb *Testbed) ScheduleAttackWave(start time.Duration, gap time.Duration, cmds []botnet.Command) {
	at := start
	for _, cmd := range cmds {
		tb.ScheduleAttack(at, cmd)
		at += cmd.Duration + gap
	}
}

// DefaultAttackWave builds the paper's three vectors against the TServer:
// SYN flood on :80, ACK flood on :80, UDP flood on random ports.
func (tb *Testbed) DefaultAttackWave(dur time.Duration, pps int) []botnet.Command {
	return []botnet.Command{
		{Type: botnet.AttackSYN, Target: addrTServer, Port: httpapp.DefaultPort, Duration: dur, PPS: pps},
		{Type: botnet.AttackACK, Target: addrTServer, Port: httpapp.DefaultPort, Duration: dur, PPS: pps},
		{Type: botnet.AttackUDP, Target: addrTServer, Port: 0, Duration: dur, PPS: pps},
	}
}

// Labeler returns the exact ground-truth oracle for this testbed:
//   - any packet to or from the attacker (telnet scanning, loading)
//   - any packet to or from the C2 (registration, keepalive, commands)
//   - any packet whose source or destination lies in the spoof range
//     (forged floods and their backscatter)
//   - any UDP packet to or from the TServer (no benign service uses UDP,
//     so UDP at the TServer is flood traffic by construction)
//
// is malicious; everything else is benign.
func (tb *Testbed) Labeler() func(b *features.Basic) int {
	return func(b *features.Basic) int {
		switch {
		case b.Src == addrAttacker || b.Dst == addrAttacker:
			return dataset.Malicious
		case b.Src == addrC2 || b.Dst == addrC2:
			return dataset.Malicious
		case DefaultSpoofRange.Contains(b.Src) || DefaultSpoofRange.Contains(b.Dst):
			return dataset.Malicious
		case b.Proto == packet.ProtoUDP && (b.Src == addrTServer || b.Dst == addrTServer):
			return dataset.Malicious
		}
		return dataset.Benign
	}
}

// classifyFlow is the tracer's flow-kind oracle, mirroring Labeler on the
// trace.Flow 5-tuple: C2 traffic is KindC2, attacker/spoofed/UDP-at-TServer
// traffic is KindAttack, everything else KindBenign. Flood engines tag
// their origins KindAttack directly, so this mainly classifies netstack
// origins (benign app flows, C2 sessions, scanner probes).
func classifyFlow(f trace.Flow) trace.Kind {
	src, dst := packet.AddrFromUint32(f.Src), packet.AddrFromUint32(f.Dst)
	switch {
	case src == addrC2 || dst == addrC2:
		return trace.KindC2
	case src == addrAttacker || dst == addrAttacker:
		return trace.KindAttack
	case DefaultSpoofRange.Contains(src) || DefaultSpoofRange.Contains(dst):
		return trace.KindAttack
	case f.Proto == packet.ProtoUDP && (src == addrTServer || dst == addrTServer):
		return trace.KindAttack
	}
	return trace.KindBenign
}
