package netstack

import (
	"testing"

	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// twoSegmentTopology builds: hostA -- swA -- router -- swB -- hostB with
// subnets 10.1.0.0/24 and 10.2.0.0/24. The returned switch is swB (the
// destination segment), for taps.
func twoSegmentTopology(t *testing.T) (*sim.Scheduler, *Host, *Host, *Router, *netsim.Switch) {
	t.Helper()
	s := sim.NewScheduler()
	net := netsim.New(s)
	swA, swB := net.NewSwitch("swA"), net.NewSwitch("swB")

	subA := packet.MustParsePrefix("10.1.0.0/24")
	subB := packet.MustParsePrefix("10.2.0.0/24")

	r := NewRouter("r0", s)
	rNicA := net.NewNode("router").AddNIC()
	net.Connect(rNicA, swA.NewPort(), netsim.LinkConfig{})
	r.AddInterface(rNicA, HostConfig{Addr: subA.Host(1), Subnet: subA, Seed: 1})
	rNicB := net.NewNode("routerB").AddNIC()
	net.Connect(rNicB, swB.NewPort(), netsim.LinkConfig{})
	r.AddInterface(rNicB, HostConfig{Addr: subB.Host(1), Subnet: subB, Seed: 2})
	if err := r.AddRoute(Route{Prefix: subA, IfIndex: 0}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddRoute(Route{Prefix: subB, IfIndex: 1}); err != nil {
		t.Fatal(err)
	}

	nicA := net.NewNode("hostA").AddNIC()
	net.Connect(nicA, swA.NewPort(), netsim.LinkConfig{})
	hostA := NewHost(nicA, HostConfig{Addr: subA.Host(10), Subnet: subA, Gateway: subA.Host(1), Seed: 3})

	nicB := net.NewNode("hostB").AddNIC()
	net.Connect(nicB, swB.NewPort(), netsim.LinkConfig{})
	hostB := NewHost(nicB, HostConfig{Addr: subB.Host(10), Subnet: subB, Gateway: subB.Host(1), Seed: 4})

	return s, hostA, hostB, r, swB
}

func TestRouterForwardsUDPAcrossSegments(t *testing.T) {
	s, a, b, r, _ := twoSegmentTopology(t)
	var got []byte
	var from packet.Addr
	if _, err := b.ListenUDP(9000, func(src packet.Addr, srcPort uint16, data []byte) {
		from, got = src, data
	}); err != nil {
		t.Fatal(err)
	}
	sock, err := a.ListenUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(b.Addr(), 9000, []byte("across"))
	s.Drain()
	if string(got) != "across" {
		t.Fatalf("got %q", got)
	}
	if from != a.Addr() {
		t.Fatalf("from = %v", from)
	}
	fwd, _, _ := r.Stats()
	if fwd == 0 {
		t.Fatal("router forwarded nothing")
	}
}

func TestRouterForwardsTCPAcrossSegments(t *testing.T) {
	s, a, b, _, _ := twoSegmentTopology(t)
	var rcvd []byte
	if _, err := b.ListenTCP(80, 0, func(c *Conn) {
		c.OnData = func(d []byte) { rcvd = append(rcvd, d...) }
	}); err != nil {
		t.Fatal(err)
	}
	conn := a.DialTCP(b.Addr(), 80)
	connected := false
	conn.OnConnect = func() {
		connected = true
		conn.Send([]byte("routed tcp"))
	}
	if err := s.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !connected {
		t.Fatal("handshake never completed across the router")
	}
	if string(rcvd) != "routed tcp" {
		t.Fatalf("rcvd = %q", rcvd)
	}
}

func TestRouterDecrementsTTL(t *testing.T) {
	s, a, b, _, swB := twoSegmentTopology(t)
	if _, err := b.ListenUDP(9000, func(packet.Addr, uint16, []byte) {}); err != nil {
		t.Fatal(err)
	}
	var ttl uint8
	swB.AddTap(netsim.DecodeTap(func(p *packet.Packet) {
		if p.HasUDP && p.IPv4.Dst == b.Addr() {
			ttl = p.IPv4.TTL
		}
	}))
	sock, err := a.ListenUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(b.Addr(), 9000, []byte("x"))
	s.Drain()
	if ttl != 63 { // host TTL 64, one router hop
		t.Fatalf("forwarded TTL = %d, want 63", ttl)
	}
	rx, _, _, _, _ := b.Stats()
	if rx != 1 {
		t.Fatalf("forwarded packet not delivered: rxIPv4=%d", rx)
	}
}

func TestRouterTTLExpiry(t *testing.T) {
	s, a, b, r, _ := twoSegmentTopology(t)
	// Forge a TTL=1 packet from A toward B; the router must drop it.
	var routerMAC packet.MAC
	a.ResolveMAC(b.Addr(), func(mac packet.MAC, ok bool) { routerMAC = mac })
	s.RunFor(sim.Second.Duration())
	raw := packet.BuildUDP(a.MAC(), routerMAC,
		packet.IPv4{TTL: 1, Src: a.Addr(), Dst: b.Addr()},
		packet.UDP{SrcPort: 1, DstPort: 9000}, []byte("dying"))
	a.SendRaw(raw)
	s.Drain()
	_, ttlExpired, _ := r.Stats()
	if ttlExpired != 1 {
		t.Fatalf("ttlExpired = %d, want 1", ttlExpired)
	}
	rx, _, _, _, _ := b.Stats()
	if rx != 0 {
		t.Fatal("TTL=1 packet crossed the router")
	}
}

func TestRouterNoRouteDrop(t *testing.T) {
	s, a, _, r, _ := twoSegmentTopology(t)
	var routerMAC packet.MAC
	a.ResolveMAC(packet.MustParseAddr("10.2.0.10"), func(mac packet.MAC, ok bool) { routerMAC = mac })
	s.RunFor(sim.Second.Duration())
	raw := packet.BuildUDP(a.MAC(), routerMAC,
		packet.IPv4{TTL: 64, Src: a.Addr(), Dst: packet.MustParseAddr("172.16.0.1")},
		packet.UDP{SrcPort: 1, DstPort: 9}, []byte("lost"))
	a.SendRaw(raw)
	s.Drain()
	_, _, noRoute := r.Stats()
	if noRoute != 1 {
		t.Fatalf("noRoute = %d, want 1", noRoute)
	}
}

func TestRouterRejectsBadRoute(t *testing.T) {
	s := sim.NewScheduler()
	r := NewRouter("r", s)
	if err := r.AddRoute(Route{Prefix: packet.MustParsePrefix("10.0.0.0/8"), IfIndex: 3}); err == nil {
		t.Fatal("accepted route to missing interface")
	}
}

func TestRouterLongestPrefixMatch(t *testing.T) {
	s, _, _, r, _ := twoSegmentTopology(t)
	_ = s
	// Add an overlapping more-specific route; lookup must prefer it.
	specific := packet.MustParsePrefix("10.2.0.8/29")
	if err := r.AddRoute(Route{Prefix: specific, IfIndex: 0}); err != nil {
		t.Fatal(err)
	}
	rt, ok := r.lookup(packet.MustParseAddr("10.2.0.10"))
	if !ok || rt.IfIndex != 0 {
		t.Fatalf("lookup chose %+v", rt)
	}
	rt, ok = r.lookup(packet.MustParseAddr("10.2.0.100"))
	if !ok || rt.IfIndex != 1 {
		t.Fatalf("lookup chose %+v for general address", rt)
	}
}
