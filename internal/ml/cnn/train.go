package cnn

import (
	"fmt"
	"math"

	"ddoshield/internal/sim"
)

// grads mirrors the weight tensors for accumulation.
type grads struct {
	w1 [][]float64
	b1 []float64
	w2 [][]float64
	b2 []float64
	w3 [][]float64
	b3 []float64
	w4 [][]float64
	b4 []float64
}

func newGrads(n *Network) *grads {
	like := func(m [][]float64) [][]float64 {
		out := make([][]float64, len(m))
		for i := range m {
			out[i] = make([]float64, len(m[i]))
		}
		return out
	}
	return &grads{
		w1: like(n.W1), b1: make([]float64, len(n.B1)),
		w2: like(n.W2), b2: make([]float64, len(n.B2)),
		w3: like(n.W3), b3: make([]float64, len(n.B3)),
		w4: like(n.W4), b4: make([]float64, len(n.B4)),
	}
}

func (g *grads) zero() {
	z2 := func(m [][]float64) {
		for i := range m {
			for j := range m[i] {
				m[i][j] = 0
			}
		}
	}
	z1 := func(v []float64) {
		for i := range v {
			v[i] = 0
		}
	}
	z2(g.w1)
	z1(g.b1)
	z2(g.w2)
	z1(g.b2)
	z2(g.w3)
	z1(g.b3)
	z2(g.w4)
	z1(g.b4)
}

// backward accumulates gradients of the cross-entropy loss at (a, y).
func (n *Network) backward(a *activations, y int, g *grads, scratch *bwScratch) {
	c := n.Cfg
	// Output layer: dlogit = prob - onehot.
	dout := growv(scratch.dout, c.Classes)
	for o := range dout {
		dout[o] = a.prob[o]
		if o == y {
			dout[o]--
		}
	}
	dhid := growv(scratch.dhid, c.Hidden)
	for h := range dhid {
		dhid[h] = 0
	}
	for o := 0; o < c.Classes; o++ {
		d := dout[o]
		g.b4[o] += d
		w := n.W4[o]
		gw := g.w4[o]
		for h := 0; h < c.Hidden; h++ {
			gw[h] += d * a.hid[h]
			dhid[h] += w[h] * d
		}
	}
	// Hidden ReLU gate.
	for h := 0; h < c.Hidden; h++ {
		if a.hid[h] <= 0 {
			dhid[h] = 0
		}
	}
	// Dense layer.
	dflat := growv(scratch.dflat, n.flat)
	for j := range dflat {
		dflat[j] = 0
	}
	for h := 0; h < c.Hidden; h++ {
		d := dhid[h]
		if d == 0 {
			continue
		}
		g.b3[h] += d
		w := n.W3[h]
		gw := g.w3[h]
		for j := 0; j < n.flat; j++ {
			gw[j] += d * a.flat[j]
			dflat[j] += w[j] * d
		}
	}
	// Unflatten + pool2 backward + conv2 ReLU gate.
	dconv2 := grow2(scratch.dconv2, c.Conv2Filters, n.len2)
	for f := range dconv2 {
		for i := range dconv2[f] {
			dconv2[f][i] = 0
		}
	}
	fi := 0
	for f := 0; f < c.Conv2Filters; f++ {
		for i := 0; i < n.pool2; i++ {
			d := dflat[fi]
			fi++
			src := a.arg2[f][i]
			if a.conv2[f][src] > 0 {
				dconv2[f][src] += d
			}
		}
	}
	// conv2 backward.
	dpool1 := grow2(scratch.dpool1, c.Conv1Filters, n.pool1)
	for f := range dpool1 {
		for i := range dpool1[f] {
			dpool1[f][i] = 0
		}
	}
	for f := 0; f < c.Conv2Filters; f++ {
		w := n.W2[f]
		gw := g.w2[f]
		for i := 0; i < n.len2; i++ {
			d := dconv2[f][i]
			if d == 0 {
				continue
			}
			g.b2[f] += d
			wi := 0
			for ch := 0; ch < c.Conv1Filters; ch++ {
				row := a.pool1[ch]
				drow := dpool1[ch]
				for k := 0; k < c.Kernel; k++ {
					gw[wi] += d * row[i+k]
					drow[i+k] += w[wi] * d
					wi++
				}
			}
		}
	}
	// pool1 backward + conv1 ReLU gate + conv1 weight grads.
	for ch := 0; ch < c.Conv1Filters; ch++ {
		gw := g.w1[ch]
		for i := 0; i < n.pool1; i++ {
			d := dpool1[ch][i]
			if d == 0 {
				continue
			}
			src := a.arg1[ch][i]
			if a.conv1[ch][src] <= 0 {
				continue
			}
			g.b1[ch] += d
			for k := 0; k < c.Kernel; k++ {
				gw[k] += d * a.in[src+k]
			}
		}
	}
}

type bwScratch struct {
	dout, dhid, dflat []float64
	dconv2, dpool1    [][]float64
}

// TrainResult summarizes a training run.
type TrainResult struct {
	// EpochLoss is the mean cross-entropy per epoch.
	EpochLoss []float64
	// FinalAccuracy is the training-set accuracy after the last epoch.
	FinalAccuracy float64
}

// Train fits the network on rows xs with labels ys using mini-batch SGD
// with momentum, and returns the per-epoch loss curve.
func Train(cfg Config, xs [][]float64, ys []int) (*Network, TrainResult, error) {
	if len(xs) == 0 {
		return nil, TrainResult{}, fmt.Errorf("cnn: empty training set")
	}
	if len(xs) != len(ys) {
		return nil, TrainResult{}, fmt.Errorf("cnn: %d rows vs %d labels", len(xs), len(ys))
	}
	cfg.Inputs = len(xs[0])
	n, err := New(cfg)
	if err != nil {
		return nil, TrainResult{}, err
	}
	res, err := n.Fit(xs, ys)
	return n, res, err
}

// Fit runs the configured SGD schedule on an existing network.
func (n *Network) Fit(xs [][]float64, ys []int) (TrainResult, error) {
	cfg := n.Cfg
	rng := sim.Substream(cfg.Seed, "cnn/train")
	g := newGrads(n)
	vel := newGrads(n)
	var a activations
	var scratch bwScratch
	var res TrainResult

	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var lossSum float64
		var seen int
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			g.zero()
			for _, idx := range batch {
				n.forward(xs[idx], &a)
				p := a.prob[ys[idx]]
				lossSum += -math.Log(p + 1e-12)
				seen++
				n.backward(&a, ys[idx], g, &scratch)
			}
			n.step(g, vel, float64(len(batch)))
		}
		res.EpochLoss = append(res.EpochLoss, lossSum/float64(seen))
	}
	correct := 0
	for i := range xs {
		if n.Predict(xs[i]) == ys[i] {
			correct++
		}
	}
	res.FinalAccuracy = float64(correct) / float64(len(xs))
	return res, nil
}

// step applies one momentum-SGD update from accumulated gradients.
func (n *Network) step(g, vel *grads, batch float64) {
	lr, mu := n.Cfg.LearningRate, n.Cfg.Momentum
	upd2 := func(w, gw, vw [][]float64) {
		for i := range w {
			for j := range w[i] {
				vw[i][j] = mu*vw[i][j] - lr*gw[i][j]/batch
				w[i][j] += vw[i][j]
			}
		}
	}
	upd1 := func(w, gw, vw []float64) {
		for i := range w {
			vw[i] = mu*vw[i] - lr*gw[i]/batch
			w[i] += vw[i]
		}
	}
	upd2(n.W1, g.w1, vel.w1)
	upd1(n.B1, g.b1, vel.b1)
	upd2(n.W2, g.w2, vel.w2)
	upd1(n.B2, g.b2, vel.b2)
	upd2(n.W3, g.w3, vel.w3)
	upd1(n.B3, g.b3, vel.b3)
	upd2(n.W4, g.w4, vel.w4)
	upd1(n.B4, g.b4, vel.b4)
}

// Rebind recomputes derived geometry after gob decoding (gob only restores
// exported fields).
func (n *Network) Rebind() { n.geometry() }
