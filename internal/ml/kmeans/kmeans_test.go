package kmeans

import (
	"testing"

	"ddoshield/internal/ml/mltest"
)

func TestKMeansLearnsBlobs(t *testing.T) {
	xs, ys := mltest.Blobs(600, 6, 4, 1)
	m, err := Train(Config{Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := mltest.Blobs(200, 6, 4, 2)
	if acc := mltest.Accuracy(m.Predict, testX, testY); acc < 0.95 {
		t.Fatalf("blob accuracy = %.3f", acc)
	}
}

func TestEntropyPenaltyPrunesClusters(t *testing.T) {
	// Two well-separated blobs, 16 initial clusters: pruning should cut the
	// population well below the surplus.
	xs, ys := mltest.Blobs(800, 4, 8, 3)
	m, err := Train(Config{InitClusters: 16, Gamma: 2, Seed: 3}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if m.ClusterCount() >= 16 {
		t.Fatalf("no pruning: %d clusters survive", m.ClusterCount())
	}
	if m.ClusterCount() < 1 {
		t.Fatal("all clusters pruned")
	}
	if m.Iters <= 0 {
		t.Fatal("Iters not recorded")
	}
}

func TestAlphaSumsToOne(t *testing.T) {
	xs, ys := mltest.Blobs(300, 3, 2, 4)
	m, err := Train(Config{Seed: 4}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, a := range m.Alpha {
		if a < 0 {
			t.Fatalf("negative mixing proportion %v", a)
		}
		sum += a
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("alpha sum = %v", sum)
	}
}

func TestKMeansRejectsBadInput(t *testing.T) {
	if _, err := Train(Config{}, nil, nil); err == nil {
		t.Fatal("accepted empty training set")
	}
	if _, err := Train(Config{}, [][]float64{{1}}, []int{0, 1}); err == nil {
		t.Fatal("accepted mismatched labels")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	xs, ys := mltest.Blobs(200, 4, 3, 5)
	m1, err := Train(Config{Seed: 7}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(Config{Seed: 7}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if m1.ClusterCount() != m2.ClusterCount() {
		t.Fatal("same-seed models differ")
	}
}

func TestTinyDataset(t *testing.T) {
	xs := [][]float64{{0, 0}, {10, 10}}
	ys := []int{0, 1}
	m, err := Train(Config{InitClusters: 16, Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{0.5, 0.5}) != 0 || m.Predict([]float64{9, 9}) != 1 {
		t.Fatal("tiny dataset mispredicted")
	}
}

func TestModelFootprintTiny(t *testing.T) {
	xs, ys := mltest.Blobs(500, 26, 3, 6)
	m, err := Train(Config{Seed: 6}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// The K-Means model is centroids only — the paper's Table II shows it
	// ~60x smaller than RF/CNN. Sanity: well under 64 KiB.
	if m.MemoryBytes() > 64<<10 {
		t.Fatalf("kmeans footprint = %d bytes", m.MemoryBytes())
	}
	if m.Name() != "kmeans" {
		t.Fatal("Name()")
	}
}
