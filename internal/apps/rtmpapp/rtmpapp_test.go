package rtmpapp

import (
	"testing"
	"time"

	"ddoshield/internal/netsim"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

func pair(t *testing.T) (*sim.Scheduler, *netstack.Host, *netstack.Host) {
	t.Helper()
	s := sim.NewScheduler()
	net := netsim.New(s)
	sw := net.NewSwitch("sw")
	subnet := packet.MustParsePrefix("10.0.0.0/24")
	mk := func(i int) *netstack.Host {
		nic := net.NewNode("h").AddNIC()
		net.Connect(nic, sw.NewPort(), netsim.LinkConfig{})
		return netstack.NewHost(nic, netstack.HostConfig{
			Addr: subnet.Host(uint32(i)), Subnet: subnet, Seed: int64(i),
		})
	}
	return s, mk(1), mk(2)
}

func TestStreamingDeliversAtBitrate(t *testing.T) {
	s, ch, sh := pair(t)
	srv := NewServer(ServerConfig{
		BitrateBps:    1_000_000,
		MeanStreamDur: 10 * time.Second,
		Seed:          1,
	})
	if err := srv.Attach(sh); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(sh.Addr(), 0, 3*time.Second, 2)
	cl.Attach(ch)
	if err := s.Run(120 * sim.Second); err != nil {
		t.Fatal(err)
	}
	plays, finished, bytesIn := cl.Stats()
	if plays < 3 {
		t.Fatalf("plays = %d", plays)
	}
	if finished == 0 {
		t.Fatal("no stream finished")
	}
	streams, bytesOut := srv.Stats()
	if streams == 0 {
		t.Fatal("server served no streams")
	}
	if bytesIn == 0 || bytesOut == 0 {
		t.Fatalf("bytesIn=%d bytesOut=%d", bytesIn, bytesOut)
	}
	// At 1 Mb/s and ~10 s mean duration, each finished stream is ~1.25 MB.
	perStream := float64(bytesIn) / float64(finished)
	if perStream < 100_000 {
		t.Fatalf("per-stream bytes = %.0f, too small for the bitrate", perStream)
	}
	// Stop the viewer and let any stream in progress play out.
	cl.Detach()
	if err := s.RunFor((600 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if srv.Active() != 0 {
		t.Fatalf("Active() = %d after drain", srv.Active())
	}
}

func TestUnknownCommandGetsError(t *testing.T) {
	s, ch, sh := pair(t)
	srv := NewServer(ServerConfig{Seed: 1})
	if err := srv.Attach(sh); err != nil {
		t.Fatal(err)
	}
	conn := ch.DialTCP(sh.Addr(), 1935)
	var resp []byte
	conn.OnConnect = func() { conn.Send([]byte("STOP\r\n")) }
	conn.OnData = func(d []byte) { resp = append(resp, d...) }
	if err := s.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(resp) < 5 || string(resp[:5]) != "ERROR" {
		t.Fatalf("response = %q", resp)
	}
}

func TestOneStreamPerViewer(t *testing.T) {
	s, ch, sh := pair(t)
	srv := NewServer(ServerConfig{
		BitrateBps:    500_000,
		MeanStreamDur: 60 * time.Second, // long streams: client stays busy
		Seed:          4,
	})
	if err := srv.Attach(sh); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(sh.Addr(), 0, time.Second, 5) // eager viewer
	cl.Attach(ch)
	if err := s.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if srv.Active() > 1 {
		t.Fatalf("Active() = %d, viewer opened concurrent streams", srv.Active())
	}
}
