package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"ddoshield/internal/devices"
	"ddoshield/internal/netsim"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/prof"
	"ddoshield/internal/testbed"
)

// ScaleConfig parameterizes the fleet-scale benchmark: a sweep over device
// counts measuring the two numbers that gate million-device campaigns —
// heap bytes per device (the memory wall) and devices-per-wall-second
// (the throughput headline). Each count runs the same campaign under
// Domains ∈ DomainSet and cross-checks byte-identical Summary and
// Prometheus output, so the scale numbers are only ever reported for runs
// the determinism machinery has vouched for.
type ScaleConfig struct {
	Seed int64
	// Counts is the fleet-size sweep (default 1k/10k/100k).
	Counts []int
	// Duration is simulated time per run (default 5 s).
	Duration time.Duration
	// MeanThink paces the active minority of the fleet (default 60 s: a
	// mostly-idle fleet, the regime large IoT deployments live in).
	MeanThink time.Duration
	// TrunkDelay bounds the engine lookahead (default 5 ms).
	TrunkDelay time.Duration
	// DomainSet is the Domains values each count is verified under; the
	// fastest partitioned member supplies the headline (default {1, 2,
	// min(NumCPU, groups+1)}).
	DomainSet []int
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.Counts) == 0 {
		c.Counts = []int{1_000, 10_000, 100_000}
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.MeanThink <= 0 {
		c.MeanThink = 60 * time.Second
	}
	if c.TrunkDelay <= 0 {
		c.TrunkDelay = 5 * time.Millisecond
	}
	return c
}

// ScalePoint is one fleet size's measurements.
type ScalePoint struct {
	Devices int `json:"devices"`
	Groups  int `json:"groups"`
	// Domains/Workers identify the fastest partitioned configuration; the
	// headline numbers below come from it.
	Domains    int     `json:"domains"`
	Workers    int     `json:"workers"`
	SimSeconds float64 `json:"sim_seconds"`
	// HeapBytesPerDevice is the live-heap delta of building and starting
	// the fleet, divided by the device count (runtime.MemStats.HeapAlloc
	// after a forced GC on both sides).
	HeapBytesPerDevice float64 `json:"heap_bytes_per_device"`
	// BuildMS is the wall clock to construct and start the topology.
	BuildMS float64 `json:"build_ms"`
	// WallMS is the fastest campaign wall clock across DomainSet runs;
	// SerialWallMS is the Domains=1 member for reference.
	WallMS       float64 `json:"wall_ms"`
	SerialWallMS float64 `json:"serial_wall_ms"`
	Events       uint64  `json:"events"`
	// DevicesPerWallSecond is the headline: device-simulated-seconds
	// delivered per wall-clock second (Devices x SimSeconds / wall).
	DevicesPerWallSecond float64 `json:"devices_per_wall_second"`
	// Profile is the headline run's combined observability document.
	// Partitioned sweep members run with the profiler attached while the
	// serial baseline runs without it, so the byte-identity cross-check
	// doubles as the profiling-on == profiling-off regression. Bottlenecks
	// are the digest findings naming this scale's dominant cost.
	Profile     *prof.Profile `json:"profile,omitempty"`
	Bottlenecks []string      `json:"bottlenecks,omitempty"`
}

// scaleGroups picks the edge-switch count for a fleet: one group per ~256
// devices, between 4 and 64.
func scaleGroups(devices int) int {
	g := devices / 256
	if g < 4 {
		g = 4
	}
	if g > 64 {
		g = 64
	}
	return g
}

// scaleFleet is devices.ScaleFleet restricted to HTTP workloads (the edge
// servers speak HTTP only).
func scaleFleet() []devices.Profile {
	fleet := make([]devices.Profile, 0, len(devices.ScaleFleet))
	for _, p := range devices.ScaleFleet {
		p.Video, p.FTP = false, false
		fleet = append(fleet, p)
	}
	return fleet
}

// liveHeap forces two GC cycles (the second collects pool contents freed
// by the first) and reports the live heap.
func liveHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// buildScale assembles the scale topology for one count at one domain
// setting.
func (c ScaleConfig) buildScale(count, groups, domains int, profiled bool) (*testbed.Testbed, error) {
	return testbed.New(testbed.Config{
		Seed:         c.Seed,
		NumDevices:   count,
		DeviceGroups: groups,
		EdgeServers:  true,
		Profiles:     scaleFleet(),
		MeanThink:    c.MeanThink,
		TrunkLink:    netsim.LinkConfig{Delay: sim.FromDuration(c.TrunkDelay)},
		Domains:      domains,
		Profile:      profiled,
		// At fleet scale, dynamic ARP floods (one broadcast = one delivery
		// per host) would dominate the event count; prime the caches so the
		// sweep measures payload traffic.
		PrimeARP: true,
	})
}

// scaleRun is one (count, domains) measurement: wall clocks, event count,
// the byte-identity artifacts, and — for profiled runs — the combined
// profile document and its digest findings.
type scaleRun struct {
	buildMS, wallMS float64
	events          uint64
	summary, prom   string
	profile         *prof.Profile
	bottlenecks     []string
}

// runScalePoint measures one (count, domains) pair.
func (c ScaleConfig) runScalePoint(count, groups, domains int, profiled bool) (scaleRun, error) {
	tb, err := c.buildScale(count, groups, domains, profiled)
	if err != nil {
		return scaleRun{}, err
	}
	var r scaleRun
	buildStart := time.Now()
	tb.Start()
	r.buildMS = float64(time.Since(buildStart).Nanoseconds()) / 1e6
	runStart := time.Now()
	if err := tb.Run(c.Duration); err != nil {
		return scaleRun{}, err
	}
	r.wallMS = float64(time.Since(runStart).Nanoseconds()) / 1e6
	if e := tb.Engine(); e != nil {
		for i := 0; i < e.NumDomains(); i++ {
			r.events += e.Domain(i).Stats().Events
		}
	} else {
		r.events = tb.Scheduler().Fired()
	}
	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, tb.Registry()); err != nil {
		return scaleRun{}, err
	}
	r.summary, r.prom = tb.Summary(), b.String()
	if profiled {
		r.profile = tb.Profile(0)
		r.bottlenecks = prof.BuildReport(r.profile).Findings
	}
	return r, nil
}

// RunScaleBench sweeps the configured fleet sizes. For each count it
// measures heap bytes per device once (on the widest partitioned build),
// then runs the campaign under every Domains in DomainSet — the serial
// baseline unprofiled, every partitioned member with the profiler attached
// — requiring byte-identical Summary and Prometheus output across all of
// them (which simultaneously pins profiling-on == profiling-off); the
// fastest partitioned run supplies WallMS, the devices-per-wall-second
// headline, and the profile/bottleneck digest.
func RunScaleBench(cfg ScaleConfig) ([]ScalePoint, error) {
	cfg = cfg.withDefaults()
	var out []ScalePoint
	for _, count := range cfg.Counts {
		groups := scaleGroups(count)
		domainSet := cfg.DomainSet
		if len(domainSet) == 0 {
			cpu := runtime.NumCPU()
			if cpu > groups+1 {
				cpu = groups + 1
			}
			domainSet = []int{1, 2, cpu}
		}

		// Heap footprint: live-heap delta across build+start of the widest
		// partitioned topology, amortized per device.
		widest := domainSet[len(domainSet)-1]
		before := liveHeap()
		tb, err := cfg.buildScale(count, groups, widest, false)
		if err != nil {
			return nil, err
		}
		tb.Start()
		after := liveHeap()
		heapPerDevice := float64(after-before) / float64(count)
		runtime.KeepAlive(tb)

		pt := ScalePoint{
			Devices:            count,
			Groups:             groups,
			SimSeconds:         cfg.Duration.Seconds(),
			HeapBytesPerDevice: heapPerDevice,
		}
		var wantSummary, wantProm string
		for _, domains := range domainSet {
			r, err := cfg.runScalePoint(count, groups, domains, domains > 1)
			if err != nil {
				return nil, err
			}
			if wantSummary == "" {
				wantSummary, wantProm = r.summary, r.prom
			} else if r.summary != wantSummary {
				return nil, fmt.Errorf("experiments: scale %d devices: Domains=%d Summary diverged\n--- want ---\n%s--- got ---\n%s",
					count, domains, wantSummary, r.summary)
			} else if r.prom != wantProm {
				return nil, fmt.Errorf("experiments: scale %d devices: Domains=%d Prometheus snapshot diverged", count, domains)
			}
			if domains == 1 {
				pt.SerialWallMS = r.wallMS
			}
			if domains > 1 && (pt.WallMS == 0 || r.wallMS < pt.WallMS) {
				pt.Domains = domains
				pt.Workers = domains
				pt.WallMS = r.wallMS
				pt.BuildMS = r.buildMS
				pt.Events = r.events
				pt.Profile = r.profile
				pt.Bottlenecks = r.bottlenecks
			}
		}
		if pt.WallMS == 0 {
			// DomainSet held only serial runs; report those.
			pt.Domains, pt.Workers, pt.WallMS = 1, 1, pt.SerialWallMS
		}
		pt.DevicesPerWallSecond = float64(count) * pt.SimSeconds / (pt.WallMS / 1e3)
		out = append(out, pt)
	}
	return out, nil
}
