package testbed

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"

	"ddoshield/internal/faults"
	"ddoshield/internal/netsim"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/trace"
)

// pdesRunArtifacts executes one full campaign — scan/infect, an attack
// wave against the TServer, benign traffic throughout — with the given
// execution mode, and returns every byte-comparable artifact: Summary,
// the Prometheus snapshot of the main registry, and the canonical trace
// span JSONL.
func pdesRunArtifacts(t *testing.T, domains, workers int) (summary, prom, spans string) {
	t.Helper()
	tb, err := New(Config{
		Seed:         42,
		NumDevices:   12,
		DeviceGroups: 4,
		MeanThink:    700 * time.Millisecond,
		Domains:      domains,
		PDESWorkers:  workers,
		// Trace enough flows that spans cross domain boundaries, with a
		// ring large enough that nothing is evicted (eviction order is a
		// finish-order artifact).
		TraceSampleRate:   0.2,
		TraceSpanCapacity: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	tb.ScheduleAttackWave(8*time.Second, 2*time.Second,
		tb.DefaultAttackWave(4*time.Second, 150))
	if err := tb.Run(25 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.Tracer().Evicted() != 0 {
		t.Fatalf("span ring evicted %d spans; grow TraceSpanCapacity", tb.Tracer().Evicted())
	}
	var pb, sb bytes.Buffer
	if err := telemetry.WritePrometheus(&pb, tb.Registry()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSpans(&sb, trace.CanonicalSpans(tb.Tracer().Spans())); err != nil {
		t.Fatal(err)
	}
	return tb.Summary(), pb.String(), sb.String()
}

// TestPDESDeterminism is the tentpole regression test: the same seeded
// scenario run serially, with Domains=2, and with Domains=NumCPU (at
// least 4, so multi-worker merge paths execute even on small builders)
// must produce byte-identical Summary output, Prometheus snapshots and
// canonical span files. Run under -race in CI, it also proves the
// parallel engine's synchronization is sound.
func TestPDESDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-campaign determinism matrix is slow")
	}
	wantSummary, wantProm, wantSpans := pdesRunArtifacts(t, 1, 1)
	if wantSpans == "" {
		t.Fatal("serial baseline produced no trace spans")
	}
	cpus := runtime.NumCPU()
	if cpus < 4 {
		cpus = 4
	}
	for _, tc := range []struct{ domains, workers int }{
		{2, 0},    // two domains, workers defaulted to Domains
		{2, 1},    // parallel plumbing, serial window execution
		{cpus, 0}, // one domain per CPU (>= 4)
	} {
		summary, prom, spans := pdesRunArtifacts(t, tc.domains, tc.workers)
		if summary != wantSummary {
			t.Fatalf("domains=%d workers=%d: Summary diverged\n--- serial ---\n%s--- parallel ---\n%s",
				tc.domains, tc.workers, wantSummary, summary)
		}
		if prom != wantProm {
			t.Fatalf("domains=%d workers=%d: Prometheus snapshot diverged (%d vs %d bytes)",
				tc.domains, tc.workers, len(wantProm), len(prom))
		}
		if spans != wantSpans {
			t.Fatalf("domains=%d workers=%d: canonical span output diverged (%d vs %d bytes)",
				tc.domains, tc.workers, len(wantSpans), len(spans))
		}
	}
}

// TestPDESEdgeServerDeterminism pins the scaled-scenario topology (edge
// switches + group-local HTTP servers) to the same byte-identity bar.
// The attack wave matters: flood packets from bots in different domains
// converge on the core switch at identical instants, which is exactly
// the same-time cross-domain collision the tail-phase arrival queue
// normalizes. Without that normalization this scenario diverges (switch
// MAC learning is arrival-order sensitive).
func TestPDESEdgeServerDeterminism(t *testing.T) {
	run := func(domains int) string {
		tb, err := New(Config{
			Seed:         7,
			NumDevices:   16,
			DeviceGroups: 4,
			EdgeServers:  true,
			MeanThink:    400 * time.Millisecond,
			Domains:      domains,
		})
		if err != nil {
			t.Fatal(err)
		}
		tb.Start()
		tb.ScheduleAttackWave(6*time.Second, 2*time.Second,
			tb.DefaultAttackWave(4*time.Second, 200))
		if err := tb.Run(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		var pb bytes.Buffer
		if err := telemetry.WritePrometheus(&pb, tb.Registry()); err != nil {
			t.Fatal(err)
		}
		return tb.Summary() + pb.String()
	}
	want := run(1)
	for _, k := range []int{3, 5} {
		if got := run(k); got != want {
			t.Fatalf("domains=%d diverged from serial", k)
		}
	}
}

// TestPDESConfigValidation pins the validation surface after the
// partitioned-mode gates were lifted: churn, fault plans and lossy links
// with Domains=2 must construct AND run (they were hard errors before),
// while genuinely inconsistent configs still fail.
func TestPDESConfigValidation(t *testing.T) {
	mustRun := func(label string, cfg Config) {
		t.Helper()
		tb, err := New(cfg)
		if err != nil {
			t.Fatalf("%s with Domains=2 rejected: %v", label, err)
		}
		tb.Start()
		if err := tb.Run(3 * time.Second); err != nil {
			t.Fatalf("%s with Domains=2 failed to run: %v", label, err)
		}
	}
	var plan faults.Plan
	plan.Add(faults.Event{Kind: faults.LinkFlap, At: time.Second, Duration: time.Second, Targets: []string{"dev00*"}})
	mustRun("churn", Config{
		Seed: 1, NumDevices: 4, Domains: 2,
		Churn: ChurnConfig{Enabled: true, MeanUp: time.Second, MeanDown: 500 * time.Millisecond},
	})
	mustRun("fault plan", Config{Seed: 2, NumDevices: 4, Domains: 2, Faults: plan})
	mustRun("lossy links", Config{
		Seed: 3, NumDevices: 4, Domains: 2,
		Link:      netsim.LinkConfig{LossProb: 0.05},
		TrunkLink: netsim.LinkConfig{LossProb: 0.05},
	})
	if _, err := New(Config{EdgeServers: true}); err == nil {
		t.Fatal("EdgeServers without DeviceGroups should be rejected")
	}
}

// chaosPlan is the five-kind fault plan of the faulted determinism
// campaign, sized for a 25 s run: a flap and an impairment window on
// devices (per-side sub-events in their owning domains), a crash, a crash
// loop, and a core-switch partition that cuts the attacker off the LAN —
// the partition targets core containers because in a grouped topology only
// their uplinks terminate on lan0.
func chaosPlan() faults.Plan {
	var p faults.Plan
	p.Add(faults.Event{
		Kind: faults.LinkFlap, At: 6 * time.Second, Duration: 2 * time.Second,
		Targets: []string{"dev00*", "dev01*"},
	})
	p.Add(faults.Event{
		Kind: faults.LinkImpair, At: 10 * time.Second, Duration: 8 * time.Second,
		Targets: []string{"dev*"},
		Impair:  netsim.Impairments{LossProb: 0.05, CorruptProb: 0.05, DupProb: 0.02},
	})
	p.Add(faults.Event{Kind: faults.Crash, At: 14 * time.Second, Targets: []string{"dev02*"}})
	p.Add(faults.Event{
		Kind: faults.CrashLoop, At: 15 * time.Second, Duration: 4 * time.Second,
		Every: time.Second, Targets: []string{"dev03*"},
	})
	p.Add(faults.Event{
		Kind: faults.Partition, At: 17 * time.Second, Duration: 3 * time.Second,
		Groups: [][]string{{"attacker"}, {"tserver", "ids", "c2"}},
	})
	return p
}

// pdesFaultedArtifacts is pdesRunArtifacts with the full chaos stack
// enabled: device churn, the five-kind fault plan, and random loss on both
// the access links and the cross-domain trunks.
func pdesFaultedArtifacts(t *testing.T, domains, workers int) (summary, prom, spans string) {
	t.Helper()
	tb, err := New(Config{
		Seed:         42,
		NumDevices:   12,
		DeviceGroups: 4,
		MeanThink:    700 * time.Millisecond,
		Domains:      domains,
		PDESWorkers:  workers,
		Churn: ChurnConfig{
			Enabled:  true,
			MeanUp:   8 * time.Second,
			MeanDown: time.Second,
		},
		Faults:            chaosPlan(),
		Link:              netsim.LinkConfig{LossProb: 0.01},
		TrunkLink:         netsim.LinkConfig{LossProb: 0.02},
		TraceSampleRate:   0.2,
		TraceSpanCapacity: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	tb.ScheduleAttackWave(8*time.Second, 2*time.Second,
		tb.DefaultAttackWave(4*time.Second, 150))
	if err := tb.Run(25 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.Tracer().Evicted() != 0 {
		t.Fatalf("span ring evicted %d spans; grow TraceSpanCapacity", tb.Tracer().Evicted())
	}
	var pb, sb bytes.Buffer
	if err := telemetry.WritePrometheus(&pb, tb.Registry()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSpans(&sb, trace.CanonicalSpans(tb.Tracer().Spans())); err != nil {
		t.Fatal(err)
	}
	return tb.Summary(), pb.String(), sb.String()
}

// TestPDESFaultedCampaignDeterminism is the acceptance regression test for
// fault injection under the parallel engine: a campaign with a five-kind
// fault plan, device churn, and lossy access + trunk links must produce
// byte-identical Summary output, Prometheus snapshots and canonical trace
// spans across Domains ∈ {1, 2, NumCPU}. Run under -race in CI, it also
// proves every fault sub-event executes in its owning domain.
func TestPDESFaultedCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("faulted determinism matrix is slow")
	}
	wantSummary, wantProm, wantSpans := pdesFaultedArtifacts(t, 1, 1)
	if !strings.Contains(wantSummary, "faults") {
		t.Fatalf("faulted baseline injected nothing:\n%s", wantSummary)
	}
	if wantSpans == "" {
		t.Fatal("faulted baseline produced no trace spans")
	}
	cpus := runtime.NumCPU()
	if cpus < 4 {
		cpus = 4
	}
	for _, tc := range []struct{ domains, workers int }{
		{2, 0},
		{cpus, 0},
	} {
		summary, prom, spans := pdesFaultedArtifacts(t, tc.domains, tc.workers)
		if summary != wantSummary {
			t.Fatalf("domains=%d workers=%d: faulted Summary diverged\n--- serial ---\n%s--- parallel ---\n%s",
				tc.domains, tc.workers, wantSummary, summary)
		}
		if prom != wantProm {
			t.Fatalf("domains=%d workers=%d: faulted Prometheus snapshot diverged (%d vs %d bytes)",
				tc.domains, tc.workers, len(wantProm), len(prom))
		}
		if spans != wantSpans {
			t.Fatalf("domains=%d workers=%d: faulted canonical span output diverged (%d vs %d bytes)",
				tc.domains, tc.workers, len(wantSpans), len(spans))
		}
	}
}

// TestPDESEngineTelemetry checks the per-domain gauges land in the
// dedicated engine registry and reflect real execution.
func TestPDESEngineTelemetry(t *testing.T) {
	tb, err := New(Config{Seed: 9, NumDevices: 6, DeviceGroups: 3, Domains: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tb.EngineMetrics() == nil || tb.Engine() == nil {
		t.Fatal("partitioned testbed must expose engine + engine metrics")
	}
	tb.Start()
	if err := tb.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.Engine().Epochs() == 0 {
		t.Fatal("engine executed no epochs")
	}
	for i := 0; i < tb.Engine().NumDomains(); i++ {
		st := tb.Engine().Domain(i).Stats()
		if st.Events == 0 {
			t.Fatalf("domain %d fired no events", i)
		}
		if i > 0 && (st.MsgsIn == 0 || st.MsgsOut == 0) {
			t.Fatalf("domain %d exchanged no cross-domain messages: %+v", i, st)
		}
	}
	var b bytes.Buffer
	if err := telemetry.WritePrometheus(&b, tb.EngineMetrics()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sim_engine_epochs_total", "sim_domain_events_total", "sim_domain_msgs_out_total"} {
		if !bytes.Contains(b.Bytes(), []byte(want)) {
			t.Fatalf("engine metrics missing %s:\n%s", want, b.String())
		}
	}
}
