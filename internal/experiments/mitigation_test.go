package experiments

import (
	"testing"
	"time"
)

// TestMitigationSweepSmoke runs a single grid point under Domains {1, 2}
// and checks the closed loop actually closed: the flood was detected,
// mitigation engaged after detection, and attack traffic was dropped.
func TestMitigationSweepSmoke(t *testing.T) {
	pts, err := RunMitigationSweep(MitigationSweepConfig{
		Seed:           42,
		Thresholds:     []int{4},
		CacheSizes:     []int{256},
		ReactionDelays: []time.Duration{0},
		DomainSet:      []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %d, want 1", len(pts))
	}
	pt := pts[0]
	if pt.DetectionLatencyS < 0 {
		t.Fatal("flood was never detected")
	}
	if pt.TimeToMitigateS < pt.DetectionLatencyS {
		t.Fatalf("time-to-mitigate %.3fs precedes detection latency %.3fs",
			pt.TimeToMitigateS, pt.DetectionLatencyS)
	}
	if pt.AttackDrops == 0 {
		t.Fatal("no attack frames dropped")
	}
	if pt.Evaluated == 0 || pt.Dropped == 0 {
		t.Fatalf("firewall counters empty: evaluated=%d dropped=%d", pt.Evaluated, pt.Dropped)
	}
	if pt.CacheInserts == 0 {
		t.Fatal("verdict cache never populated")
	}
	if s := FormatMitigationSweep(pts); s == "" {
		t.Fatal("empty benchtable")
	}
}
