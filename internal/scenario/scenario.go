// Package scenario loads experiment descriptions from JSON, the
// customization surface the paper advertises ("a customizable environment
// ... allowing researchers to modify and extend the framework"): fleet
// size and profiles, benign intensity, churn, link properties and the
// attack plan are all declared in one reviewable document instead of code.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ddoshield/internal/botnet"
	"ddoshield/internal/netsim"
	"ddoshield/internal/sim"
	"ddoshield/internal/testbed"
)

// Attack describes one scheduled attack command.
type Attack struct {
	// AtSec schedules the command (seconds from simulation start).
	AtSec float64 `json:"atSec"`
	// Type is "syn", "ack", "udp" or "http".
	Type string `json:"type"`
	// Port is the target port (0 = vector default).
	Port uint16 `json:"port"`
	// DurationSec and PPS shape the flood.
	DurationSec float64 `json:"durationSec"`
	PPS         int     `json:"pps"`
}

// Definition is the JSON document root.
type Definition struct {
	// Name labels the scenario in output.
	Name string `json:"name"`
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
	// Devices is the fleet size.
	Devices int `json:"devices"`
	// DurationSec is the run length.
	DurationSec float64 `json:"durationSec"`
	// MeanThinkSec paces benign clients.
	MeanThinkSec float64 `json:"meanThinkSec"`
	// ScanIntervalMillis paces the telnet scanner.
	ScanIntervalMillis int `json:"scanIntervalMillis"`
	// Churn enables device reboots with the given mean up/down times.
	Churn struct {
		Enabled     bool    `json:"enabled"`
		MeanUpSec   float64 `json:"meanUpSec"`
		MeanDownSec float64 `json:"meanDownSec"`
	} `json:"churn"`
	// Link sets access-link properties.
	Link struct {
		RateMbps float64 `json:"rateMbps"`
		DelayMs  float64 `json:"delayMs"`
		QueueKB  int     `json:"queueKB"`
		LossProb float64 `json:"lossProb"`
	} `json:"link"`
	// Attacks is the attack plan.
	Attacks []Attack `json:"attacks"`
	// WindowMillis sets the IDS aggregation window (default 1000).
	WindowMillis int `json:"windowMillis"`
}

// Load parses a JSON scenario.
func Load(r io.Reader) (*Definition, error) {
	var d Definition
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate rejects structurally invalid definitions.
func (d *Definition) Validate() error {
	if d.DurationSec <= 0 {
		return fmt.Errorf("scenario %q: durationSec must be positive", d.Name)
	}
	if d.Devices < 0 || d.Devices > testbed.MaxDevices {
		return fmt.Errorf("scenario %q: devices out of range", d.Name)
	}
	for i, a := range d.Attacks {
		if _, err := botnet.ParseAttackType(a.Type); err != nil {
			return fmt.Errorf("scenario %q: attack %d: %w", d.Name, i, err)
		}
		if a.DurationSec <= 0 || a.PPS <= 0 {
			return fmt.Errorf("scenario %q: attack %d: duration and pps must be positive", d.Name, i)
		}
		if a.AtSec < 0 || a.AtSec >= d.DurationSec {
			return fmt.Errorf("scenario %q: attack %d: atSec outside the run", d.Name, i)
		}
	}
	return nil
}

// Duration returns the run length.
func (d *Definition) Duration() time.Duration {
	return time.Duration(d.DurationSec * float64(time.Second))
}

// Window returns the IDS window (default 1 s).
func (d *Definition) Window() time.Duration {
	if d.WindowMillis <= 0 {
		return time.Second
	}
	return time.Duration(d.WindowMillis) * time.Millisecond
}

// TestbedConfig converts the definition into a testbed configuration.
func (d *Definition) TestbedConfig() testbed.Config {
	cfg := testbed.Config{
		Seed:       d.Seed,
		NumDevices: d.Devices,
	}
	if d.MeanThinkSec > 0 {
		cfg.MeanThink = time.Duration(d.MeanThinkSec * float64(time.Second))
	}
	if d.ScanIntervalMillis > 0 {
		cfg.ScanInterval = time.Duration(d.ScanIntervalMillis) * time.Millisecond
	}
	cfg.Churn = testbed.ChurnConfig{
		Enabled:  d.Churn.Enabled,
		MeanUp:   time.Duration(d.Churn.MeanUpSec * float64(time.Second)),
		MeanDown: time.Duration(d.Churn.MeanDownSec * float64(time.Second)),
	}
	if d.Link.RateMbps > 0 {
		cfg.Link.RateBps = int64(d.Link.RateMbps * 1e6)
	}
	if d.Link.DelayMs > 0 {
		cfg.Link.Delay = sim.Time(d.Link.DelayMs * float64(sim.Millisecond))
	}
	if d.Link.QueueKB > 0 {
		cfg.Link.QueueBytes = d.Link.QueueKB << 10
	}
	if d.Link.LossProb > 0 {
		cfg.Link.LossProb = d.Link.LossProb
		cfg.Link.RNG = sim.Substream(d.Seed, "scenario/loss")
	}
	return cfg
}

// Apply builds the testbed and schedules the attack plan.
func (d *Definition) Apply() (*testbed.Testbed, error) {
	tb, err := testbed.New(d.TestbedConfig())
	if err != nil {
		return nil, err
	}
	for _, a := range d.Attacks {
		at, err := botnet.ParseAttackType(a.Type)
		if err != nil {
			return nil, err
		}
		cmd := botnet.Command{
			Type:     at,
			Target:   tb.TServerAddr(),
			Port:     a.Port,
			Duration: time.Duration(a.DurationSec * float64(time.Second)),
			PPS:      a.PPS,
		}
		tb.ScheduleAttack(time.Duration(a.AtSec*float64(time.Second)), cmd)
	}
	return tb, nil
}

var _ = netsim.LinkConfig{} // the definition maps onto this type
