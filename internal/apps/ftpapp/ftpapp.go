// Package ftpapp implements the customized FTP server of the TServer and
// its client workload: a control channel on port 21 speaking a USER/PASS/
// PASV/RETR/QUIT subset with real reply codes, and per-transfer passive
// data connections — the file-transfer component of the paper's benign mix.
// FTP's two-channel structure gives the benign baseline flows on high,
// short-lived ports, which exercises the IDS's port-entropy features from
// the benign side.
package ftpapp

import (
	"fmt"
	"strings"
	"time"

	"ddoshield/internal/apps/workload"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// DefaultPort is the FTP control port.
const DefaultPort = 21

// ServerConfig tunes the FTP server.
type ServerConfig struct {
	// Port is the control port (default 21).
	Port uint16
	// MeanFileBytes is the mean RETR transfer size (default 64 KiB),
	// drawn from a bounded Pareto.
	MeanFileBytes int
	// Seed drives transfer sizes.
	Seed int64
	// Users maps accepted usernames to passwords; empty accepts anonymous
	// with any password.
	Users map[string]string
}

// Server is the customized FTP server.
type Server struct {
	cfg      ServerConfig
	rng      *sim.RNG
	host     *netstack.Host
	listener *netstack.Listener
	dataPort uint16

	logins    uint64
	transfers uint64
	bytesOut  uint64
	authFails uint64
}

// NewServer returns an unstarted FTP server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Port == 0 {
		cfg.Port = DefaultPort
	}
	if cfg.MeanFileBytes <= 0 {
		cfg.MeanFileBytes = 64 << 10
	}
	return &Server{cfg: cfg, rng: sim.Substream(cfg.Seed, "ftpapp/server"), dataPort: 20000}
}

// Attach binds the server to a host and starts listening on the control port.
func (s *Server) Attach(h *netstack.Host) error {
	s.host = h
	l, err := h.ListenTCP(s.cfg.Port, 0, s.accept)
	if err != nil {
		return fmt.Errorf("ftpapp: %w", err)
	}
	s.listener = l
	return nil
}

// Detach stops accepting control connections.
func (s *Server) Detach() {
	if s.listener != nil {
		s.listener.Close()
		s.listener = nil
	}
}

// Stats reports successful logins, completed transfers, payload bytes sent
// and failed authentications.
func (s *Server) Stats() (logins, transfers, bytesOut, authFails uint64) {
	return s.logins, s.transfers, s.bytesOut, s.authFails
}

type session struct {
	srv  *Server
	ctrl *netstack.Conn
	user string
	auth bool
}

func (s *Server) accept(c *netstack.Conn) {
	sess := &session{srv: s, ctrl: c}
	workload.AttachLines(c, sess.handleLine)
	c.OnRemoteClose = func() { c.Close() }
	sess.reply("220 tserver FTP ready")
}

func (ss *session) reply(line string) { ss.ctrl.Send([]byte(line + "\r\n")) }

func (ss *session) handleLine(line string) {
	cmd, arg, _ := strings.Cut(line, " ")
	switch strings.ToUpper(cmd) {
	case "USER":
		ss.user = arg
		ss.reply("331 password required")
	case "PASS":
		if ss.authenticate(ss.user, arg) {
			ss.auth = true
			ss.srv.logins++
			ss.reply("230 logged in")
		} else {
			ss.srv.authFails++
			ss.reply("530 login incorrect")
		}
	case "PASV":
		if !ss.auth {
			ss.reply("530 not logged in")
			return
		}
		ss.openPassive()
	case "RETR":
		ss.reply("550 use PASV before RETR")
	case "QUIT":
		ss.reply("221 goodbye")
		ss.ctrl.Close()
	default:
		ss.reply("502 command not implemented")
	}
}

func (ss *session) authenticate(user, pass string) bool {
	users := ss.srv.cfg.Users
	if len(users) == 0 {
		return true
	}
	want, ok := users[user]
	return ok && want == pass
}

// openPassive binds an ephemeral data port, announces it with a 227 reply,
// and serves exactly one RETR over it.
func (ss *session) openPassive() {
	s := ss.srv
	var dataListener *netstack.Listener
	var port uint16
	for tries := 0; tries < 100; tries++ {
		s.dataPort++
		if s.dataPort < 20000 {
			s.dataPort = 20000
		}
		l, err := s.host.ListenTCP(s.dataPort, 0, nil)
		if err == nil {
			dataListener = l
			port = s.dataPort
			break
		}
	}
	if dataListener == nil {
		ss.reply("425 cannot open data connection")
		return
	}
	addr := s.host.Addr()
	ss.reply(fmt.Sprintf("227 entering passive mode (%d,%d,%d,%d,%d,%d)",
		addr[0], addr[1], addr[2], addr[3], port>>8, port&0xff))

	// Rebind the control-channel line handler: the next RETR triggers the
	// transfer over whichever data connection arrives.
	var dataConn *netstack.Conn
	pendingRETR := false
	startTransfer := func() {
		size := int(s.rng.Pareto(float64(s.cfg.MeanFileBytes)/3, 1.3))
		if size > 4<<20 {
			size = 4 << 20
		}
		body := make([]byte, size)
		s.rng.Bytes(body)
		ss.reply(fmt.Sprintf("150 opening data connection (%d bytes)", size))
		dataConn.Send(body)
		dataConn.Close()
		s.transfers++
		s.bytesOut += uint64(size)
		ss.reply("226 transfer complete")
		dataListener.Close()
	}
	dataListener.SetAccept(func(c *netstack.Conn) {
		dataConn = c
		c.OnRemoteClose = func() { c.Close() }
		if pendingRETR {
			pendingRETR = false
			startTransfer()
		}
	})
	lr := &workload.LineReader{OnLine: func(line string) {
		cmd, _, _ := strings.Cut(line, " ")
		switch strings.ToUpper(cmd) {
		case "RETR":
			if dataConn != nil {
				startTransfer()
			} else {
				pendingRETR = true
			}
		case "QUIT":
			ss.reply("221 goodbye")
			dataListener.Close()
			ss.ctrl.Close()
		default:
			ss.handleLine(line)
		}
	}}
	ss.ctrl.OnData = func(d []byte) { lr.Feed(d) }
}

// Client logs in, downloads files in a Poisson loop and quits; one session
// per fetch, matching interactive FTP usage.
type Client struct {
	host      *netstack.Host
	server    packet.Addr
	port      uint16
	user      string
	pass      string
	meanThink time.Duration
	proc      *workload.Process
	rng       *sim.RNG

	sessions  uint64
	completed uint64
	failed    uint64
	bytesIn   uint64
}

// NewClient returns an unstarted FTP client workload.
func NewClient(server packet.Addr, port uint16, user, pass string, meanThink time.Duration, seed int64) *Client {
	if port == 0 {
		port = DefaultPort
	}
	if meanThink <= 0 {
		meanThink = 10 * time.Second
	}
	return &Client{
		server:    server,
		port:      port,
		user:      user,
		pass:      pass,
		meanThink: meanThink,
		rng:       sim.Substream(seed, "ftpapp/client"),
	}
}

// Attach binds the client to a host and starts the session loop.
func (c *Client) Attach(h *netstack.Host) {
	c.host = h
	c.proc = workload.NewPoisson(h.Scheduler(), c.rng, c.meanThink, c.session)
	c.proc.Start()
}

// Detach stops the session loop.
func (c *Client) Detach() {
	if c.proc != nil {
		c.proc.Stop()
		c.proc = nil
	}
}

// Stats reports sessions started, transfers completed, failed sessions and
// payload bytes received.
func (c *Client) Stats() (sessions, completed, failed, bytesIn uint64) {
	return c.sessions, c.completed, c.failed, c.bytesIn
}

func (c *Client) session() {
	c.sessions++
	ctrl := c.host.DialTCP(c.server, c.port)
	done := false
	fail := func() {
		if !done {
			done = true
			c.failed++
			ctrl.Close()
		}
	}
	ctrl.OnClose = func(err error) {
		if err != nil && !done {
			done = true
			c.failed++
		}
	}
	ctrl.OnRemoteClose = func() { ctrl.Close() }
	workload.AttachLines(ctrl, func(line string) {
		if len(line) < 3 {
			return
		}
		switch line[:3] {
		case "220":
			ctrl.Send([]byte("USER " + c.user + "\r\n"))
		case "331":
			ctrl.Send([]byte("PASS " + c.pass + "\r\n"))
		case "230":
			ctrl.Send([]byte("PASV\r\n"))
		case "530":
			fail()
		case "227":
			ip, port, ok := parsePASV(line)
			if !ok {
				fail()
				return
			}
			data := c.host.DialTCP(ip, port)
			data.OnData = func(d []byte) { c.bytesIn += uint64(len(d)) }
			data.OnRemoteClose = func() { data.Close() }
			data.OnConnect = func() { ctrl.Send([]byte("RETR file.bin\r\n")) }
		case "226":
			if !done {
				done = true
				c.completed++
			}
			ctrl.Send([]byte("QUIT\r\n"))
		case "221":
			ctrl.Close()
		case "425", "550", "502":
			fail()
		}
	})
}

// parsePASV extracts the data address from a 227 reply.
func parsePASV(line string) (packet.Addr, uint16, bool) {
	lp := strings.IndexByte(line, '(')
	rp := strings.IndexByte(line, ')')
	if lp < 0 || rp < lp {
		return packet.Addr{}, 0, false
	}
	parts := strings.Split(line[lp+1:rp], ",")
	if len(parts) != 6 {
		return packet.Addr{}, 0, false
	}
	var nums [6]int
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &nums[i]); err != nil {
			return packet.Addr{}, 0, false
		}
	}
	addr := packet.AddrFrom4(byte(nums[0]), byte(nums[1]), byte(nums[2]), byte(nums[3]))
	return addr, uint16(nums[4])<<8 | uint16(nums[5]), true
}
