// Package svm implements a linear Support Vector Machine trained with the
// Pegasos stochastic sub-gradient method — the first of the three
// additional detectors the paper's §V names for its planned model study
// (SVM, Isolation Forest, VAE). Like K-Means and the CNN, it expects
// standardized features.
package svm

import (
	"fmt"

	"ddoshield/internal/sim"
)

// Config tunes training.
type Config struct {
	// Lambda is the L2 regularization strength (default 1e-4).
	Lambda float64
	// Epochs is the number of passes over the data (default 5).
	Epochs int
	// Seed drives example sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Lambda <= 0 {
		c.Lambda = 1e-4
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	return c
}

// Model is a trained linear SVM: f(x) = W·x + B, class 1 when positive.
type Model struct {
	Cfg Config
	W   []float64
	B   float64
}

// Name implements ml.Classifier.
func (m *Model) Name() string { return "svm" }

// Predict returns 1 (malicious) when the margin is positive.
func (m *Model) Predict(x []float64) int {
	if m.Margin(x) > 0 {
		return 1
	}
	return 0
}

// Margin returns the signed distance-proportional score W·x + B.
func (m *Model) Margin(x []float64) float64 {
	s := m.B
	for i, w := range m.W {
		s += w * x[i]
	}
	return s
}

// MemoryBytes reports the live model footprint.
func (m *Model) MemoryBytes() int64 { return int64(len(m.W))*8 + 64 }

// Train fits the SVM on rows xs with labels ys (0/1).
func Train(cfg Config, xs [][]float64, ys []int) (*Model, error) {
	cfg = cfg.withDefaults()
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if len(ys) != n {
		return nil, fmt.Errorf("svm: %d rows vs %d labels", n, len(ys))
	}
	d := len(xs[0])
	m := &Model{Cfg: cfg, W: make([]float64, d)}
	rng := sim.Substream(cfg.Seed, "svm")
	t := 1
	steps := cfg.Epochs * n
	for s := 0; s < steps; s++ {
		i := rng.Intn(n)
		y := float64(ys[i])*2 - 1 // {-1,+1}
		eta := 1 / (cfg.Lambda * float64(t))
		t++
		margin := m.Margin(xs[i])
		// Sub-gradient step: shrink weights, push on margin violations.
		for j := range m.W {
			m.W[j] *= 1 - eta*cfg.Lambda
		}
		if y*margin < 1 {
			for j, v := range xs[i] {
				m.W[j] += eta * y * v
			}
			m.B += eta * y * 0.01 // slow bias drift, unregularized
		}
	}
	return m, nil
}
