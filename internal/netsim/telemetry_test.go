package netsim

import (
	"bytes"
	"fmt"
	"testing"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
)

// runTrafficScenario drives a deterministic two-host+switch topology with
// enough traffic to exercise forwarding, flooding, queue drops, random
// loss and ingress-filter drops, then returns a rendering of every legacy
// Stats() accessor.
func runTrafficScenario(t *testing.T, reg *telemetry.Registry, rec *telemetry.Recorder) (string, *Network, *NIC, *NIC, *Switch) {
	t.Helper()
	s := sim.NewScheduler()
	net := New(s)
	if reg != nil || rec != nil {
		net.SetTelemetry(reg, rec)
	}
	sw := net.NewSwitch("lan0")
	a := net.NewNode("a").AddNIC()
	b := net.NewNode("b").AddNIC()
	cfg := LinkConfig{RateBps: 1_000_000, QueueBytes: 2048, Delay: sim.Millisecond}
	la := net.Connect(a, sw.NewPort(), cfg)
	lb := net.Connect(b, sw.NewPort(), LinkConfig{
		RateBps: 1_000_000, QueueBytes: 2048, Delay: sim.Millisecond,
		LossProb: 0.2, RNG: sim.NewRNG(7),
	})
	// b drops every third frame at ingress.
	n := 0
	b.SetIngressFilter(func([]byte) bool { n++; return n%3 != 0 })
	b.SetHandler(func([]byte) {})
	a.SetHandler(func([]byte) {})

	frame := func(src, dst packet.MAC, size int) []byte {
		raw := make([]byte, size)
		copy(raw[0:6], dst[:])
		copy(raw[6:12], src[:])
		return raw
	}
	for i := 0; i < 60; i++ {
		a.Send(frame(a.MAC(), b.MAC(), 200+i))
		if i%4 == 0 {
			b.Send(frame(b.MAC(), a.MAC(), 150))
		}
	}
	s.Drain()

	var out bytes.Buffer
	arx, arb, atx, atb := a.Stats()
	fmt.Fprintf(&out, "a: rx=%d rxb=%d tx=%d txb=%d ingress-drop=%d\n", arx, arb, atx, atb, a.IngressDropped())
	brx, brb, btx, btb := b.Stats()
	fmt.Fprintf(&out, "b: rx=%d rxb=%d tx=%d txb=%d ingress-drop=%d\n", brx, brb, btx, btb, b.IngressDropped())
	for i, l := range []*Link{la, lb} {
		tx, txb, drops := l.Stats()
		fmt.Fprintf(&out, "link%d: tx=%d txb=%d drops=%d full=%+v\n", i, tx, txb, drops, l.Counters())
	}
	fwd, fld := sw.Stats()
	fmt.Fprintf(&out, "switch: fwd=%d fld=%d pdrops=%d\n", fwd, fld, sw.PartitionDrops())
	var agg LinkStats
	agg.Add(la.Counters())
	agg.Add(lb.Counters())
	fmt.Fprintf(&out, "agg: %+v drops=%d\n", agg, agg.Drops())
	return out.String(), net, a, b, sw
}

// TestStatsByteIdenticalWithTelemetryAttached is the counter-unification
// regression guard: moving LinkStats/NIC accounting onto shared telemetry
// counters must leave every legacy Stats() accessor byte-identical,
// whether or not a registry and recorder are attached.
func TestStatsByteIdenticalWithTelemetryAttached(t *testing.T) {
	plain, _, _, _, _ := runTrafficScenario(t, nil, nil)
	instr, _, _, _, _ := runTrafficScenario(t, telemetry.NewRegistry(), telemetry.NewRecorder(1024))
	if plain != instr {
		t.Fatalf("Stats() diverge with telemetry attached:\n--- plain ---\n%s--- instrumented ---\n%s", plain, instr)
	}
	if plain == "" {
		t.Fatal("scenario produced no stats")
	}
}

// TestRegistryAgreesWithStatsAdapters asserts the registry exports the
// exact same values the legacy accessors report — one source of truth.
func TestRegistryAgreesWithStatsAdapters(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(1024)
	_, _, a, b, sw := runTrafficScenario(t, reg, rec)

	vals := map[string]float64{}
	for _, s := range reg.Snapshot() {
		if s.Kind != telemetry.KindHistogram {
			vals[s.Name+s.Labels] = s.Value
		}
	}
	rx, rxb, tx, txb := b.Stats()
	checks := []struct {
		metric string
		want   uint64
	}{
		{`netsim_nic_rx_frames_total{nic="b/eth0"}`, rx},
		{`netsim_nic_rx_bytes_total{nic="b/eth0"}`, rxb},
		{`netsim_nic_tx_frames_total{nic="b/eth0"}`, tx},
		{`netsim_nic_tx_bytes_total{nic="b/eth0"}`, txb},
		{`netsim_nic_ingress_dropped_total{nic="b/eth0"}`, b.IngressDropped()},
	}
	arx, _, _, _ := a.Stats()
	checks = append(checks, struct {
		metric string
		want   uint64
	}{`netsim_nic_rx_frames_total{nic="a/eth0"}`, arx})
	fwd, fld := sw.Stats()
	checks = append(checks,
		struct {
			metric string
			want   uint64
		}{`netsim_switch_forwarded_total{switch="lan0"}`, fwd},
		struct {
			metric string
			want   uint64
		}{`netsim_switch_flooded_total{switch="lan0"}`, fld},
	)
	for _, c := range checks {
		got, ok := vals[c.metric]
		if !ok {
			t.Fatalf("metric %s not registered; have %d metrics", c.metric, len(vals))
		}
		if got != float64(c.want) {
			t.Errorf("%s = %v, legacy accessor says %d", c.metric, got, c.want)
		}
	}
	if b.IngressDropped() == 0 {
		t.Fatal("scenario should have exercised ingress drops")
	}
	// Ingress drops also land in the flight recorder.
	found := false
	for _, ev := range rec.Events() {
		if ev.Name == "ingress-drop" && ev.Actor == "b/eth0" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no ingress-drop trace event recorded")
	}
}

// TestLinkStatsAddAggregatesSharedCounters pins the LinkStats.Add path:
// fleet-wide aggregation over telemetry-backed counters must equal the
// sum of the per-link registry values.
func TestLinkStatsAddAggregatesSharedCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, net, _, _, _ := runTrafficScenario(t, reg, nil)
	var agg LinkStats
	for _, l := range net.links {
		agg.Add(l.Counters())
	}
	var tx, drops, loss uint64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "netsim_link_tx_frames_total":
			tx += uint64(s.Value)
		case "netsim_link_queue_drops_total":
			drops += uint64(s.Value)
		case "netsim_link_loss_frames_total":
			loss += uint64(s.Value)
		}
	}
	if agg.TxFrames != tx || agg.QueueDrops != drops || agg.LossFrames != loss {
		t.Fatalf("aggregation mismatch: LinkStats %+v vs registry tx=%d drops=%d loss=%d",
			agg, tx, drops, loss)
	}
	if agg.LossFrames == 0 {
		t.Fatal("scenario should have exercised random loss")
	}
}
