package netstack

import (
	"fmt"

	"ddoshield/internal/packet"
	"ddoshield/internal/telemetry/trace"
)

// UDPHandler receives inbound datagrams on a bound socket.
type UDPHandler func(src packet.Addr, srcPort uint16, data []byte)

// UDPSocket is a bound UDP port.
type UDPSocket struct {
	host    *Host
	port    uint16
	handler UDPHandler
	closed  bool

	rxDgrams uint64
	rxBytes  uint64
	txDgrams uint64
}

// ListenUDP binds port and delivers inbound datagrams to handler.
func (h *Host) ListenUDP(port uint16, handler UDPHandler) (*UDPSocket, error) {
	if port == 0 {
		port = h.nextEphemeralPort()
	}
	if _, used := h.udpSocks[port]; used {
		return nil, fmt.Errorf("udp port %d already bound on %s", port, h.cfg.Addr)
	}
	s := &UDPSocket{host: h, port: port, handler: handler}
	h.udpMap()[port] = s
	return s, nil
}

// Port reports the bound local port.
func (s *UDPSocket) Port() uint16 { return s.port }

// SendTo transmits a datagram from the socket's port.
func (s *UDPSocket) SendTo(dst packet.Addr, dstPort uint16, data []byte) {
	if s.closed {
		return
	}
	s.txDgrams++
	s.host.sendUDP(s.port, dst, dstPort, data)
}

// Close releases the port.
func (s *UDPSocket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.host.udpSocks, s.port)
}

// Stats reports datagrams/bytes received and datagrams sent.
func (s *UDPSocket) Stats() (rxDgrams, rxBytes, txDgrams uint64) {
	return s.rxDgrams, s.rxBytes, s.txDgrams
}

// sendUDP builds and routes one datagram.
func (h *Host) sendUDP(srcPort uint16, dst packet.Addr, dstPort uint16, data []byte) {
	ip := packet.IPv4{TTL: h.cfg.TTL, ID: h.nextIPID(), Src: h.cfg.Addr, Dst: dst}
	udp := packet.UDP{SrcPort: srcPort, DstPort: dstPort}
	payload := make([]byte, len(data))
	copy(payload, data)
	oc := h.traceOrigin("udp-tx", dst, srcPort, dstPort, packet.ProtoUDP)
	h.sendIPCtx(dst, oc, func(dstMAC packet.MAC) []byte {
		return packet.BuildUDP(h.MAC(), dstMAC, ip, udp, payload)
	})
}

func (h *Host) handleUDP(ip packet.IPv4, payload []byte, tc trace.Context) {
	now := h.sched.Now()
	udp, data, err := packet.UnmarshalUDP(payload, ip.Src, ip.Dst, true)
	if err != nil {
		tc.Drop(now, trace.DropMalformed)
		return
	}
	s, ok := h.udpSocks[udp.DstPort]
	if !ok {
		// No listener: a real stack would emit ICMP port-unreachable.
		tc.Drop(now, trace.DropNoSocket)
		return
	}
	tc.FinishTerminal(now)
	s.rxDgrams++
	s.rxBytes += uint64(len(data))
	if s.handler != nil {
		s.handler(ip.Src, udp.SrcPort, data)
	}
}
