// Package sim provides the discrete-event simulation engine that underpins
// the DDoShield-IoT testbed. It plays the role NS-3's core module plays in
// the paper: a virtual clock, an ordered event queue, and deterministic
// pseudo-random number streams so that every experiment is reproducible
// bit-for-bit from its seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is an instant on the simulated clock, expressed as nanoseconds since
// the beginning of the simulation. It is distinct from wall-clock time: a
// ten-minute simulated run (the paper's dataset-generation phase) typically
// executes in seconds of real time.
type Time int64

// Common simulated-time unit anchors, mirroring time.Duration's constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// Duration returns the simulated instant as a time.Duration offset from the
// simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the simulated instant as fractional seconds since the
// simulation epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add offsets the instant by a real-duration amount of simulated time.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// String renders the instant in time.Duration notation (e.g. "1.5s").
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a duration-since-epoch into a simulated instant.
func FromDuration(d time.Duration) Time { return Time(d) }

// Handler is a callback scheduled to run at a simulated instant.
type Handler func()

// Event is a scheduled callback. Events are ordered by firing time; events
// scheduled for the same instant fire in scheduling order (FIFO), which
// keeps the simulation deterministic.
type Event struct {
	at      Time
	seq     uint64
	index   int // heap index; -1 once removed
	fn      Handler
	cancel  bool
	blocked bool
}

// At reports the instant the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancel }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// ErrStopped is returned by Run when the simulation was halted with Stop
// before reaching its horizon.
var ErrStopped = errors.New("simulation stopped")

// Scheduler is the simulation kernel: it owns the virtual clock and the
// event queue. A Scheduler is not safe for concurrent use; the entire
// simulated world runs on a single logical thread, exactly as an NS-3
// simulation does.
type Scheduler struct {
	now     Time
	queue   eventQueue
	seq     uint64
	running bool
	stopped bool
	fired   uint64
}

// NewScheduler returns a scheduler with the clock at the simulation epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Len reports the number of pending (not yet fired, not cancelled) events.
func (s *Scheduler) Len() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.cancel {
			n++
		}
	}
	return n
}

// Fired reports the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at the absolute simulated instant t. Scheduling in
// the past is an error that would break causality, so it is clamped to the
// current instant instead.
func (s *Scheduler) At(t Time, fn Handler) *Event {
	if t < s.now {
		t = s.now
	}
	ev := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d of simulated time from now.
func (s *Scheduler) After(d time.Duration, fn Handler) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Every schedules fn to run every interval of simulated time, starting one
// interval from now, until the returned Ticker is stopped.
func (s *Scheduler) Every(interval time.Duration, fn Handler) *Ticker {
	if interval <= 0 {
		interval = time.Nanosecond
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	t.schedule()
	return t
}

// Stop halts the simulation: Run returns ErrStopped after the current event
// finishes.
func (s *Scheduler) Stop() { s.stopped = true }

// Step fires the single earliest pending event and advances the clock to
// its instant. It reports false when no events remain.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev, ok := heap.Pop(&s.queue).(*Event)
		if !ok {
			return false
		}
		if ev.cancel {
			continue
		}
		s.now = ev.at
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events in order until the clock passes horizon, the queue
// drains, or Stop is called. Events scheduled exactly at the horizon still
// fire. It returns ErrStopped if halted early, nil otherwise.
func (s *Scheduler) Run(horizon Time) error {
	if s.running {
		return errors.New("scheduler already running")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		next := s.queue[0]
		if next.cancel {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > horizon {
			break
		}
		s.Step()
	}
	// The horizon was reached (or the queue drained): advance the clock so
	// Now() reflects the full span that was simulated.
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunFor executes events for d of simulated time from the current instant.
func (s *Scheduler) RunFor(d time.Duration) error {
	return s.Run(s.now.Add(d))
}

// Drain runs until the event queue is empty (no horizon). Useful in tests.
func (s *Scheduler) Drain() {
	for s.Step() {
	}
}

// Ticker repeatedly fires a handler at a fixed simulated interval.
type Ticker struct {
	s        *Scheduler
	interval time.Duration
	fn       Handler
	pending  *Event
	stopped  bool
	ticks    uint64
}

func (t *Ticker) schedule() {
	t.pending = t.s.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.ticks++
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels all future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.pending != nil {
		t.pending.Cancel()
	}
}

// Ticks reports how many times the ticker has fired.
func (t *Ticker) Ticks() uint64 { return t.ticks }

// Interval reports the tick interval.
func (t *Ticker) Interval() time.Duration { return t.interval }

// String summarizes scheduler state, for debugging.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sim.Scheduler{now=%s pending=%d fired=%d}", s.now, len(s.queue), s.fired)
}
