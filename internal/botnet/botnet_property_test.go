package botnet

import (
	"testing"
	"testing/quick"
	"time"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// Property: every representable command survives the C2 wire round trip.
func TestCommandWireProperty(t *testing.T) {
	f := func(typ uint8, target uint32, port uint16, durS uint16, pps uint16) bool {
		cmd := Command{
			Type:     AttackType(int(typ)%3 + 1),
			Target:   packet.AddrFromUint32(target),
			Port:     port,
			Duration: time.Duration(durS) * time.Second,
			PPS:      int(pps),
		}
		got, err := ParseCommand(cmd.String())
		if err != nil {
			return false
		}
		return got == cmd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: flood frames always dissect as well-formed packets of the
// commanded type aimed at the commanded target.
func TestFloodFramesWellFormedProperty(t *testing.T) {
	r := newRig()
	bot := r.host(10)
	target := r.host(0x0100 + 1)
	spoof := packet.MustParsePrefix("10.0.200.0/24")
	bad := 0
	checked := 0
	r.sw.AddTap(func(at sim.Time, raw []byte) {
		p, err := packet.Decode(at, raw)
		if err != nil {
			bad++
			return
		}
		if !p.HasIPv4 || p.IPv4.Dst != target.Addr() {
			return // ARP etc.
		}
		checked++
		switch {
		case p.HasTCP:
			if p.TCP.DstPort != 80 {
				bad++
			}
			// Transport checksum must verify.
			seg := p.Raw[packet.EthernetHeaderLen+packet.IPv4HeaderLen:]
			if _, _, err := packet.UnmarshalTCP(seg, p.IPv4.Src, p.IPv4.Dst, true); err != nil {
				bad++
			}
		case p.HasUDP:
			seg := p.Raw[packet.EthernetHeaderLen+packet.IPv4HeaderLen:]
			if _, _, err := packet.UnmarshalUDP(seg, p.IPv4.Src, p.IPv4.Dst, true); err != nil {
				bad++
			}
		default:
			bad++
		}
	})
	for i, at := range []AttackType{AttackSYN, AttackACK, AttackUDP} {
		f := NewFlood(bot, sim.NewRNG(int64(i)), Command{
			Type: at, Target: target.Addr(), Port: 80,
			Duration: time.Second, PPS: 100,
		}, spoof)
		f.Start()
		if err := r.sched.RunFor(3 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if checked < 250 {
		t.Fatalf("checked only %d frames", checked)
	}
	if bad != 0 {
		t.Fatalf("%d malformed flood frames of %d", bad, checked)
	}
}

func TestFloodStopMidAttack(t *testing.T) {
	r := newRig()
	bot := r.host(11)
	target := r.host(0x0100 + 1)
	f := NewFlood(bot, sim.NewRNG(1), Command{
		Type: AttackUDP, Target: target.Addr(), Duration: time.Minute, PPS: 100,
	}, packet.Prefix{})
	f.Start()
	if err := r.sched.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	sentAtStop := f.Sent()
	if sentAtStop == 0 {
		t.Fatal("flood never started")
	}
	f.Stop()
	if f.Running() {
		t.Fatal("Running() after Stop")
	}
	if err := r.sched.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if f.Sent() != sentAtStop {
		t.Fatalf("flood kept emitting after Stop: %d -> %d", sentAtStop, f.Sent())
	}
}

func TestC2DuplicateRegistrationReplacesSession(t *testing.T) {
	r := newRig()
	c2Host := r.host(2)
	c2 := NewC2(0)
	if err := c2.Attach(c2Host); err != nil {
		t.Fatal(err)
	}
	// Two bots claim the same ID (a re-imaged device): the second wins.
	b1 := NewBot("dup", c2Host.Addr(), 0, packet.Prefix{}, 1)
	b1.Attach(r.host(20))
	if err := r.sched.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	b2 := NewBot("dup", c2Host.Addr(), 0, packet.Prefix{}, 2)
	b2.Attach(r.host(21))
	if err := r.sched.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c2.Bots() != 1 {
		t.Fatalf("duplicate ID produced %d sessions", c2.Bots())
	}
}

func TestAttackerSkipsC2AndSelf(t *testing.T) {
	r := newRig()
	c2Host := r.host(2)
	atkHost := r.host(3)
	// Range covering only the attacker and C2 addresses: no probes may
	// produce telnet connections.
	atk := NewAttacker(AttackerConfig{
		TargetRange:       packet.MustParsePrefix("10.0.0.0/29"), // .1-.6
		C2Addr:            c2Host.Addr(),
		MeanProbeInterval: 50 * time.Millisecond,
		Seed:              1,
	})
	atk.Attach(atkHost)
	if err := r.sched.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	_, connects, cracked, _ := atk.Stats()
	if cracked != 0 {
		t.Fatalf("cracked %d with no devices in range", cracked)
	}
	_ = connects // connects may be >0 only if something listened on :23
}

func TestFloodAgainstUnresolvableTarget(t *testing.T) {
	r := newRig()
	bot := r.host(12)
	ghost := packet.MustParseAddr("10.0.77.77") // nobody home
	f := NewFlood(bot, sim.NewRNG(1), Command{
		Type: AttackSYN, Target: ghost, Port: 80, Duration: time.Second, PPS: 100,
	}, packet.Prefix{})
	f.Start()
	if err := r.sched.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if f.Sent() != 0 {
		t.Fatalf("flood emitted %d frames to an unresolvable target", f.Sent())
	}
}
