package experiments

import (
	"testing"
	"time"

	"ddoshield/internal/dataset"
	"ddoshield/internal/features"
	"ddoshield/internal/ids"
	"ddoshield/internal/ml"
	"ddoshield/internal/sim"
)

// tiny returns a scenario small enough for unit tests but large enough to
// train all three models meaningfully.
func tiny() Scenario {
	sc := Quick()
	sc.TrainDuration = 90 * time.Second
	sc.DetectDuration = 40 * time.Second
	sc.BenignWarmup = 20 * time.Second
	sc.InfectionLead = 60 * time.Second
	sc.MaxTrainSamples = 12000
	sc.Devices = 8
	return sc
}

func TestGenerateDatasetHasBothClasses(t *testing.T) {
	sc := tiny()
	ds, err := sc.GenerateDataset()
	if err != nil {
		t.Fatal(err)
	}
	sum := ds.Summarize()
	if sum.Benign == 0 || sum.Malicious == 0 {
		t.Fatalf("dataset = %v", sum)
	}
	if ds.NumFeatures() != features.NumFeatures() {
		t.Fatalf("schema = %d features", ds.NumFeatures())
	}
}

func TestFullPipelineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is seconds-long")
	}
	sc := tiny()
	ds, tr, rt, err := sc.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 {
		t.Fatal("empty dataset")
	}

	// Offline metrics: the distance/gradient models must be strong.
	if tr.KMeans.TrainReport.Accuracy < 0.85 {
		t.Fatalf("kmeans train accuracy = %v", tr.KMeans.TrainReport.Accuracy)
	}
	if tr.CNN.TrainReport.Accuracy < 0.9 {
		t.Fatalf("cnn train accuracy = %v", tr.CNN.TrainReport.Accuracy)
	}

	// Table I shape: K-Means and CNN above 90%, RF markedly worst.
	acc := map[string]float64{}
	for _, r := range rt.Table1 {
		acc[r.Model] = r.AvgAccuracy
	}
	// At this reduced scale the CNN is data-starved relative to the Quick
	// and Paper presets (which reach ~95%); assert a floor plus ordering.
	if acc["kmeans"] < 0.75 || acc["cnn"] < 0.7 {
		t.Fatalf("kmeans/cnn real-time accuracy too low: %v", acc)
	}
	if acc["rf"] >= acc["kmeans"] || acc["rf"] >= acc["cnn"] {
		t.Fatalf("RF must be the weakest in real time: %v", acc)
	}

	// Table II shape: K-Means model smallest by far; CNN heaviest memory.
	rows := map[string]Table2Row{}
	for _, r := range rt.Table2 {
		rows[r.Model] = r
	}
	if rows["kmeans"].ModelSizeKb*4 > rows["rf"].ModelSizeKb ||
		rows["kmeans"].ModelSizeKb*4 > rows["cnn"].ModelSizeKb {
		t.Fatalf("kmeans model not smallest: %+v", rt.Table2)
	}
	if rows["cnn"].MemoryKb <= rows["rf"].MemoryKb || rows["cnn"].MemoryKb <= rows["kmeans"].MemoryKb {
		t.Fatalf("cnn not heaviest memory: %+v", rt.Table2)
	}
	if rows["kmeans"].MemoryKb >= rows["rf"].MemoryKb {
		t.Fatalf("kmeans not lightest memory: %+v", rt.Table2)
	}
	for _, r := range rt.Table2 {
		if r.CPUPercent <= 0 || r.CPUPercent > 100 {
			t.Fatalf("CPU%% out of range: %+v", r)
		}
	}

	// Per-second series: dips exist at attack boundaries.
	for _, r := range rt.Table1 {
		if r.MinAccuracy >= r.AvgAccuracy {
			t.Fatalf("%s has no accuracy dips: min=%v avg=%v", r.Model, r.MinAccuracy, r.AvgAccuracy)
		}
	}
}

func TestTrainModelsRejectsEmpty(t *testing.T) {
	sc := tiny()
	ds := dataset.New(features.Names())
	if _, err := sc.TrainModels(ds); err == nil {
		t.Fatal("trained on empty dataset")
	}
}

func TestFormatTables(t *testing.T) {
	t1 := FormatTable1([]Table1Row{{Model: "rf", AvgAccuracy: 0.6122}})
	if t1 == "" || !contains(t1, "61.22") || !contains(t1, "RF") {
		t.Fatalf("table1 = %q", t1)
	}
	t2 := FormatTable2([]Table2Row{{Model: "kmeans", CPUPercent: 67.88, MemoryKb: 86.83, ModelSizeKb: 11.2}})
	if !contains(t2, "67.88") || !contains(t2, "K-Means") {
		t.Fatalf("table2 = %q", t2)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestBotsTimeline(t *testing.T) {
	sc := tiny()
	hist, err := sc.BotsTimeline(false, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) == 0 {
		t.Fatal("no population samples")
	}
	last := hist[len(hist)-1]
	if last.Bots == 0 {
		t.Fatal("no bots recruited in timeline run")
	}
}

func TestOffsetViewIntegration(t *testing.T) {
	inner := stub{}
	v := ml.OffsetView{Inner: inner, Offset: 2}
	if v.Predict([]float64{9, 9, 1}) != 1 {
		t.Fatal("offset view did not drop columns")
	}
	if v.Name() != "stub" {
		t.Fatal("name not delegated")
	}
}

type stub struct{}

func (stub) Predict(x []float64) int {
	if x[0] > 0 {
		return 1
	}
	return 0
}
func (stub) Name() string { return "stub" }

// Silence unused-import guard for ids (referenced in doc examples).
var _ = ids.Config{}

func TestTrainExtendedModels(t *testing.T) {
	sc := tiny()
	ds, err := sc.GenerateDataset()
	if err != nil {
		t.Fatal(err)
	}
	ext, err := sc.TrainExtendedModels(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 3 {
		t.Fatalf("extension models = %d", len(ext))
	}
	names := map[string]bool{}
	for _, tm := range ext {
		names[tm.Model.Name()] = true
		if tm.Scaler == nil {
			t.Fatalf("%s missing scaler", tm.Model.Name())
		}
		if tm.SizeBytes <= 0 {
			t.Fatalf("%s has no size", tm.Model.Name())
		}
		if tm.TrainReport.Accuracy <= 0.4 {
			t.Fatalf("%s train accuracy = %v", tm.Model.Name(), tm.TrainReport.Accuracy)
		}
	}
	for _, want := range []string{"svm", "iforest", "vae"} {
		if !names[want] {
			t.Fatalf("missing %s in %v", want, names)
		}
	}

	// The extended set runs through the same real-time harness.
	rt, err := sc.RunRealTimeModels(ext[:1]) // SVM only, for speed
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Table1) != 1 || rt.Table1[0].Model != "svm" {
		t.Fatalf("table1 = %+v", rt.Table1)
	}
	if rt.Table1[0].AvgAccuracy < 0.5 {
		t.Fatalf("svm real-time accuracy = %v", rt.Table1[0].AvgAccuracy)
	}
}

func TestPaperPresetShape(t *testing.T) {
	p := Paper()
	if p.TrainDuration != 10*time.Minute || p.DetectDuration != 5*time.Minute {
		t.Fatalf("paper preset durations: %v/%v", p.TrainDuration, p.DetectDuration)
	}
	if p.Devices <= Quick().Devices {
		t.Fatal("paper preset should scale the fleet up")
	}
}

func TestTrainFullVectorRF(t *testing.T) {
	sc := tiny()
	ds, err := sc.GenerateDataset()
	if err != nil {
		t.Fatal(err)
	}
	rf, err := sc.TrainFullVectorRF(ds)
	if err != nil {
		t.Fatal(err)
	}
	// The full-vector forest must be strong offline (the ablation's whole
	// point): score it on a held-out subsample.
	rng := sim.NewRNG(99)
	test := ds.Subsample(4000, rng)
	ok := 0
	for i := range test.Samples {
		if rf.Predict(test.Samples[i].X) == test.Samples[i].Y {
			ok++
		}
	}
	if acc := float64(ok) / float64(test.Len()); acc < 0.95 {
		t.Fatalf("full-vector RF offline accuracy = %v", acc)
	}
}
