package netsim

import (
	"fmt"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// Switch is a learning Ethernet switch: the CSMA segment that joins the
// testbed's containers in the paper's topology. It floods unknown and
// broadcast destinations and learns source MACs per port.
type Switch struct {
	net   *Network
	name  string
	ports []*switchPort
	table map[packet.MAC]*switchPort
	taps  []Tap

	forwarded uint64
	flooded   uint64
}

// NewSwitch adds a named learning switch to the network.
func (n *Network) NewSwitch(name string) *Switch {
	return &Switch{net: n, name: name, table: make(map[packet.MAC]*switchPort)}
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// NewPort adds a port to the switch; wire it with Network.Connect.
func (s *Switch) NewPort() Port {
	p := &switchPort{sw: s, index: len(s.ports)}
	s.ports = append(s.ports, p)
	return p
}

// AddTap registers a passive observer invoked for every frame the switch
// relays (once per ingress frame, regardless of fan-out). Tapping the switch
// is the testbed's span-port analog: the IDS sees all segment traffic.
func (s *Switch) AddTap(t Tap) { s.taps = append(s.taps, t) }

// Stats reports frames forwarded to a learned port and frames flooded.
func (s *Switch) Stats() (forwarded, flooded uint64) { return s.forwarded, s.flooded }

// Forget clears the MAC learning table (e.g. after heavy churn).
func (s *Switch) Forget() { s.table = make(map[packet.MAC]*switchPort) }

type switchPort struct {
	sw    *Switch
	index int
	link  *Link
	side  int
}

var _ Port = (*switchPort)(nil)

func (p *switchPort) String() string { return fmt.Sprintf("%s/port%d", p.sw.name, p.index) }

func (p *switchPort) send(raw []byte) {
	if p.link != nil {
		p.link.send(p.side, raw)
	}
}

func (p *switchPort) receive(raw []byte) {
	s := p.sw
	eth, _, err := packet.UnmarshalEthernet(raw)
	if err != nil {
		return // runt frame: discard
	}
	for _, tap := range s.taps {
		tap(s.net.sched.Now(), raw)
	}
	if !eth.Src.IsBroadcast() {
		s.table[eth.Src] = p
	}
	if !eth.Dst.IsBroadcast() {
		if out, ok := s.table[eth.Dst]; ok {
			if out != p {
				s.forwarded++
				out.send(raw)
			}
			return
		}
	}
	// Broadcast or unknown unicast: flood all other ports.
	s.flooded++
	for _, out := range s.ports {
		if out != p {
			out.send(raw)
		}
	}
}

// TapAll attaches the tap to every frame relayed by the switch plus every
// frame delivered on the given extra links. Convenience for experiments.
func TapAll(tap Tap, s *Switch, links ...*Link) {
	if s != nil {
		s.AddTap(tap)
	}
	for _, l := range links {
		l.AddTap(tap)
	}
}

// DecodeTap wraps a packet-level observer as a raw Tap, dropping frames
// that fail Ethernet dissection.
func DecodeTap(fn func(p *packet.Packet)) Tap {
	return func(t sim.Time, raw []byte) {
		p, err := packet.Decode(t, raw)
		if err != nil {
			return
		}
		fn(p)
	}
}
