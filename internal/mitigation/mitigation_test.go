package mitigation

import (
	"testing"
	"time"

	"ddoshield/internal/dataset"
	"ddoshield/internal/features"
	"ddoshield/internal/ids"
	"ddoshield/internal/netsim"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

func pair(t *testing.T) (*sim.Scheduler, *netstack.Host, *netstack.Host) {
	t.Helper()
	s := sim.NewScheduler()
	net := netsim.New(s)
	sw := net.NewSwitch("sw")
	subnet := packet.MustParsePrefix("10.0.0.0/16")
	mk := func(n uint32) *netstack.Host {
		nic := net.NewNode("h").AddNIC()
		net.Connect(nic, sw.NewPort(), netsim.LinkConfig{})
		return netstack.NewHost(nic, netstack.HostConfig{
			Addr: subnet.Host(n), Subnet: subnet, Seed: int64(n),
		})
	}
	return s, mk(1), mk(0x0100 + 1)
}

func TestFirewallBlocksAddr(t *testing.T) {
	s, client, server := pair(t)
	fw := NewFirewall(s, server.NIC())
	got := 0
	if _, err := server.ListenUDP(9, func(packet.Addr, uint16, []byte) { got++ }); err != nil {
		t.Fatal(err)
	}
	sock, err := client.ListenUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(server.Addr(), 9, []byte("1"))
	s.RunFor(time.Second)
	if got != 1 {
		t.Fatalf("pre-block delivery = %d", got)
	}
	fw.BlockAddr(client.Addr(), 10*time.Second)
	sock.SendTo(server.Addr(), 9, []byte("2"))
	s.RunFor(time.Second)
	if got != 1 {
		t.Fatal("blocked source still delivered")
	}
	// Rule expires: traffic resumes.
	s.RunFor(15 * time.Second)
	sock.SendTo(server.Addr(), 9, []byte("3"))
	s.RunFor(time.Second)
	if got != 2 {
		t.Fatal("expired rule still blocking")
	}
	_, dropped := fw.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestFirewallBlocksPrefixButPassesARP(t *testing.T) {
	s, client, server := pair(t)
	fw := NewFirewall(s, server.NIC())
	fw.BlockPrefix(packet.MustParsePrefix("10.0.0.0/24"), time.Minute)
	got := 0
	if _, err := server.ListenUDP(9, func(packet.Addr, uint16, []byte) { got++ }); err != nil {
		t.Fatal(err)
	}
	sock, err := client.ListenUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The datagram needs ARP resolution first; ARP must pass the firewall
	// (otherwise nothing in the segment could ever talk again).
	sock.SendTo(server.Addr(), 9, []byte("x"))
	s.RunFor(time.Second)
	if got != 0 {
		t.Fatal("prefix-blocked source delivered")
	}
	if server.NIC().IngressDropped() == 0 {
		t.Fatal("no ingress drops recorded")
	}
	if fw.BlockedPrefixes() != 1 {
		t.Fatalf("BlockedPrefixes = %d", fw.BlockedPrefixes())
	}
}

func TestFirewallDetach(t *testing.T) {
	s, client, server := pair(t)
	fw := NewFirewall(s, server.NIC())
	fw.BlockAddr(client.Addr(), time.Minute)
	fw.Detach()
	got := 0
	if _, err := server.ListenUDP(9, func(packet.Addr, uint16, []byte) { got++ }); err != nil {
		t.Fatal(err)
	}
	sock, err := client.ListenUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(server.Addr(), 9, []byte("x"))
	s.RunFor(time.Second)
	if got != 1 {
		t.Fatal("detached firewall still filtering")
	}
}

// alertModel flags everything from the spoof range.
type alertModel struct{}

func (alertModel) Predict(x []float64) int {
	// win_src_addr_entropy high → the flood window; but per-packet we use
	// the src-port feature as a proxy: this stub is driven via labeler-free
	// windows, so just flag all TCP SYNs (feature index 5 = flag_syn).
	if x[5] > 0.5 {
		return dataset.Malicious
	}
	return dataset.Benign
}
func (alertModel) Name() string { return "stub" }

func TestResponderBlocksSpoofedFloodByPrefix(t *testing.T) {
	s, client, server := pair(t)
	fw := NewFirewall(s, server.NIC())
	resp := NewResponder(fw, ResponderConfig{
		BlockTTL:           20 * time.Second,
		AggregateThreshold: 8,
		Protected:          []packet.Addr{client.Addr()},
	})
	unit := ids.New(ids.Config{
		Model:    alertModel{},
		Window:   time.Second,
		OnWindow: resp.HandleWindow,
	})
	// The IDS observes traffic *before* the firewall (span port at the
	// switch side): tap the server's uplink.
	server.NIC() // ensure wired
	// Feed the unit directly with forged SYNs from one /24.
	tap := unit.Tap()
	rng := sim.NewRNG(1)
	for i := 0; i < 200; i++ {
		src := packet.AddrFrom4(10, 0, 200, byte(rng.Intn(250)+1))
		raw := packet.BuildTCP(packet.MACFromUint64(9), server.MAC(),
			packet.IPv4{TTL: 64, Src: src, Dst: server.Addr()},
			packet.TCP{SrcPort: uint16(1024 + i), DstPort: 80, Seq: rng.Uint32(), Flags: packet.FlagSYN, Window: 512},
			nil)
		tap(sim.Time(i)*5*sim.Millisecond, raw)
	}
	unit.Flush()
	alerts, addrRules, prefixRules := resp.Stats()
	if alerts == 0 {
		t.Fatal("no alert handled")
	}
	if prefixRules == 0 {
		t.Fatalf("no prefix rule despite dense /24 (addrRules=%d)", addrRules)
	}
	if fw.BlockedPrefixes() == 0 {
		t.Fatal("firewall has no prefix rule")
	}
	// The protected client must not be blocked even if flagged.
	if fw.BlockedAddrs() > 0 {
		// Allowed, but never the protected address.
		fwAddr := client.Addr()
		if _, ok := fw.addrs[fwAddr]; ok {
			t.Fatal("protected address blocked")
		}
	}
}

func TestResponderIgnoresQuietWindows(t *testing.T) {
	s, _, server := pair(t)
	fw := NewFirewall(s, server.NIC())
	resp := NewResponder(fw, ResponderConfig{})
	w := &ids.WindowResult{Alert: false, FlaggedSrcs: []packet.Addr{{1, 2, 3, 4}}}
	resp.HandleWindow(w)
	if fw.BlockedAddrs() != 0 || fw.BlockedPrefixes() != 0 {
		t.Fatal("responder acted on a non-alert window")
	}
	_ = features.NumFeatures // document the feature-layout dependency
}
