package telemetry

import (
	"bytes"
	"net/http"
	"net/http/pprof"
	"sync"

	"ddoshield/internal/sim"
)

// LiveServer exposes /metrics (Prometheus text), /metrics.json (JSON
// snapshot) and /trace (chrome-tracing JSON) over HTTP for watching a
// live run.
//
// The simulation world is single-threaded and many registered gauge
// functions read simulator state, so HTTP handlers must never touch the
// registry directly from the server goroutine. Instead the simulation
// thread calls Update at whatever cadence it likes (cmd/ddoshield ticks
// once per simulated second); Update renders everything into byte
// buffers, and handlers serve the latest snapshot under a read lock.
// This keeps live export race-free without slowing the hot path.
type LiveServer struct {
	opts       LiveServerOptions
	mu         sync.RWMutex
	prom       []byte
	json       []byte
	trace      []byte
	profile    []byte
	mitigation []byte
	updates    uint64
}

// LiveServerOptions tunes the optional endpoints.
type LiveServerOptions struct {
	// EnablePprof mounts net/http/pprof under /debug/pprof/, exposing the
	// Go runtime's CPU/heap/goroutine profiles for the host process. Off
	// by default: pprof reveals process internals and belongs only on
	// explicitly requested debug listeners.
	EnablePprof bool
}

// NewLiveServer returns a server with empty snapshots.
func NewLiveServer() *LiveServer { return &LiveServer{} }

// NewLiveServerOptions returns a server with the given options.
func NewLiveServerOptions(opts LiveServerOptions) *LiveServer {
	return &LiveServer{opts: opts}
}

// Update re-renders all three snapshots. Call from the simulation thread.
func (s *LiveServer) Update(now sim.Time, reg *Registry, rec *Recorder) {
	var prom, jsonBuf, trace bytes.Buffer
	_ = WritePrometheus(&prom, reg)
	_ = WriteJSON(&jsonBuf, now, reg)
	_ = WriteChromeTrace(&trace, rec)
	s.mu.Lock()
	s.prom = prom.Bytes()
	s.json = jsonBuf.Bytes()
	s.trace = trace.Bytes()
	s.updates++
	s.mu.Unlock()
}

// UpdateProfile publishes the latest simulation profile document (served
// at /profile.json). Kept separate from Update because rendering the
// profile walks the whole topology, which callers may want at a coarser
// cadence than the metrics tick.
func (s *LiveServer) UpdateProfile(data []byte) {
	s.mu.Lock()
	s.profile = data
	s.mu.Unlock()
}

// UpdateMitigation publishes the latest defense scoreboard document
// (served at /mitigation.json). Like UpdateProfile it is republished from
// the simulation thread on its own sim-time cadence.
func (s *LiveServer) UpdateMitigation(data []byte) {
	s.mu.Lock()
	s.mitigation = data
	s.mu.Unlock()
}

// Updates reports how many snapshots have been published.
func (s *LiveServer) Updates() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.updates
}

func (s *LiveServer) serve(w http.ResponseWriter, contentType string, pick func() []byte) {
	s.mu.RLock()
	body := pick()
	s.mu.RUnlock()
	w.Header().Set("Content-Type", contentType)
	if len(body) == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	_, _ = w.Write(body)
}

// Handler returns the HTTP mux serving the snapshots.
func (s *LiveServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.serve(w, "text/plain; version=0.0.4; charset=utf-8", func() []byte { return s.prom })
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		s.serve(w, "application/json", func() []byte { return s.json })
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		s.serve(w, "application/json", func() []byte { return s.trace })
	})
	mux.HandleFunc("/profile.json", func(w http.ResponseWriter, _ *http.Request) {
		s.serve(w, "application/json", func() []byte { return s.profile })
	})
	mux.HandleFunc("/mitigation.json", func(w http.ResponseWriter, _ *http.Request) {
		s.serve(w, "application/json", func() []byte { return s.mitigation })
	})
	if s.opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
