package devices

import (
	"testing"
	"time"

	"ddoshield/internal/apps/httpapp"
	"ddoshield/internal/botnet"
	"ddoshield/internal/netsim"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

var subnet = packet.MustParsePrefix("10.0.0.0/16")

type rig struct {
	sched *sim.Scheduler
	net   *netsim.Network
	sw    *netsim.Switch
}

func newRig() *rig {
	s := sim.NewScheduler()
	net := netsim.New(s)
	return &rig{sched: s, net: net, sw: net.NewSwitch("sw")}
}

func (r *rig) host(n uint32) *netstack.Host {
	nic := r.net.NewNode("h").AddNIC()
	r.net.Connect(nic, r.sw.NewPort(), netsim.LinkConfig{})
	return netstack.NewHost(nic, netstack.HostConfig{
		Addr: subnet.Host(n), Subnet: subnet, Seed: int64(n),
	})
}

func TestTelnetAcceptsFactoryCredential(t *testing.T) {
	r := newRig()
	devHost := r.host(10)
	svc := NewTelnetService("root", "xc3511")
	if err := svc.Attach(devHost); err != nil {
		t.Fatal(err)
	}
	attacker := r.host(3)
	var got []byte
	conn := attacker.DialTCP(devHost.Addr(), TelnetPort)
	conn.OnData = func(d []byte) {
		got = append(got, d...)
		s := string(got)
		switch {
		case s == "login: ":
			conn.Send([]byte("root\r\n"))
		case len(s) >= 10 && s[len(s)-10:] == "Password: ":
			conn.Send([]byte("xc3511\r\n"))
		}
	}
	if err := r.sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	s := string(got)
	if len(s) < 2 || s[len(s)-2:] != "$ " {
		t.Fatalf("no shell prompt, transcript: %q", s)
	}
	logins, failures, _ := svc.Stats()
	if logins != 1 || failures != 0 {
		t.Fatalf("logins=%d failures=%d", logins, failures)
	}
}

func TestTelnetLockoutAfterThreeFailures(t *testing.T) {
	r := newRig()
	devHost := r.host(10)
	svc := NewTelnetService("root", "secret")
	if err := svc.Attach(devHost); err != nil {
		t.Fatal(err)
	}
	attacker := r.host(3)
	conn := attacker.DialTCP(devHost.Addr(), TelnetPort)
	closed := false
	var buf []byte
	conn.OnData = func(d []byte) {
		buf = append(buf, d...)
		s := string(buf)
		if len(s) >= 7 && s[len(s)-7:] == "login: " {
			conn.Send([]byte("root\r\n"))
		} else if len(s) >= 10 && s[len(s)-10:] == "Password: " {
			conn.Send([]byte("wrong\r\n"))
		}
	}
	conn.OnClose = func(err error) { closed = true }
	conn.OnRemoteClose = func() { conn.Close() }
	if err := r.sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !closed {
		t.Fatal("connection not closed after lockout")
	}
	_, failures, _ := svc.Stats()
	if failures != 3 {
		t.Fatalf("failures = %d, want 3", failures)
	}
}

func TestHardenedDeviceRejectsEverything(t *testing.T) {
	svc := NewTelnetService("", "")
	if !svc.hardened {
		t.Fatal("empty user should harden")
	}
}

func TestInstallCommandTriggersCallback(t *testing.T) {
	r := newRig()
	devHost := r.host(10)
	svc := NewTelnetService("admin", "admin")
	var gotAddr packet.Addr
	var gotPort uint16
	svc.OnInstall = func(a packet.Addr, p uint16) { gotAddr, gotPort = a, p }
	if err := svc.Attach(devHost); err != nil {
		t.Fatal(err)
	}
	attacker := r.host(3)
	conn := attacker.DialTCP(devHost.Addr(), TelnetPort)
	var buf []byte
	sawOK := false
	conn.OnData = func(d []byte) {
		buf = append(buf, d...)
		s := string(buf)
		switch {
		case len(s) >= 7 && s[len(s)-7:] == "login: ":
			conn.Send([]byte("admin\r\n"))
		case len(s) >= 10 && s[len(s)-10:] == "Password: ":
			conn.Send([]byte("admin\r\n"))
		case !sawOK && len(s) >= 2 && s[len(s)-2:] == "$ ":
			conn.Send([]byte("INSTALL 10.0.0.2 5555\r\n"))
			sawOK = true
		}
	}
	if err := r.sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if gotAddr != packet.AddrFrom4(10, 0, 0, 2) || gotPort != 5555 {
		t.Fatalf("install = %v:%d", gotAddr, gotPort)
	}
	_, _, installs := svc.Stats()
	if installs != 1 {
		t.Fatalf("installs = %d", installs)
	}
}

func TestDeviceRunsBenignWorkloads(t *testing.T) {
	r := newRig()
	serverHost := r.host(0x0100 + 1) // 10.0.1.1
	httpSrv := httpapp.NewServer(httpapp.ServerConfig{Seed: 1})
	if err := httpSrv.Attach(serverHost); err != nil {
		t.Fatal(err)
	}
	devHost := r.host(10)
	dev := New(Config{
		Name:      "dev1",
		Profile:   ProfileSensor, // HTTP only, chatty
		TServer:   serverHost.Addr(),
		Seed:      7,
		MeanThink: time.Second,
	})
	dev.StartOn(devHost)
	if err := r.sched.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	started, completed := dev.BenignStats()
	if started < 20 || completed < 15 {
		t.Fatalf("benign activity: started=%d completed=%d", started, completed)
	}
	if dev.Infected() {
		t.Fatal("clean device reports infected")
	}
	if dev.Vulnerable() {
		t.Fatal("sensor profile should be hardened")
	}
}

// TestEndToEndInfectionChain drives the full Mirai lifecycle: scanner
// cracks the device, loader installs, bot registers with C2, C2 commands a
// flood, flood packets hit the target.
func TestEndToEndInfectionChain(t *testing.T) {
	r := newRig()

	// Target server (TServer stand-in).
	targetHost := r.host(0x0100 + 1)

	// C2.
	c2Host := r.host(2)
	c2 := botnet.NewC2(0)
	if err := c2.Attach(c2Host); err != nil {
		t.Fatal(err)
	}

	// Vulnerable device.
	devHost := r.host(10)
	dev := New(Config{
		Name:       "cam0",
		Profile:    ProfileIPCamera,
		TServer:    targetHost.Addr(),
		SpoofRange: packet.MustParsePrefix("10.0.200.0/24"),
		Seed:       5,
		MeanThink:  time.Hour, // silence benign chatter for this test
	})
	dev.StartOn(devHost)

	// Attacker scanning a narrow range that contains the device.
	atkHost := r.host(3)
	atk := botnet.NewAttacker(botnet.AttackerConfig{
		TargetRange:       packet.MustParsePrefix("10.0.0.8/29"), // .9-.14
		C2Addr:            c2Host.Addr(),
		MeanProbeInterval: 200 * time.Millisecond,
		Seed:              1,
	})
	var infectedAddr packet.Addr
	atk.OnInfected = func(a packet.Addr, cred botnet.Credential) {
		infectedAddr = a
		if cred.Pass != "xc3511" {
			t.Errorf("cracked with unexpected credential %v", cred)
		}
	}
	atk.Attach(atkHost)

	// Count flood SYNs at the target.
	syns := 0
	r.sw.AddTap(netsim.DecodeTap(func(p *packet.Packet) {
		if p.HasTCP && p.IPv4.Dst == targetHost.Addr() && p.TCP.DstPort == 80 &&
			p.TCP.Flags == packet.FlagSYN && p.IPv4.Src != devHost.Addr() {
			syns++
		}
	}))

	// Let the scan-and-infect phase run.
	if err := r.sched.Run(120 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if infectedAddr != devHost.Addr() {
		t.Fatalf("device not infected (got %v)", infectedAddr)
	}
	if !dev.Infected() {
		t.Fatal("device has no bot")
	}
	if c2.Bots() != 1 {
		t.Fatalf("C2 bots = %d", c2.Bots())
	}

	// Command an attack.
	c2.Broadcast(botnet.Command{
		Type: botnet.AttackSYN, Target: targetHost.Addr(), Port: 80,
		Duration: 2 * time.Second, PPS: 200,
	})
	if err := r.sched.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if syns < 300 {
		t.Fatalf("flood SYNs at target = %d", syns)
	}

	// Stop the scanner, then reboot the device: infection is lost and,
	// with no scanner running, stays lost.
	atk.Detach()
	dev.Stop()
	dev.StartOn(devHost)
	if dev.Infected() {
		t.Fatal("infection survived reboot")
	}
	if err := r.sched.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c2.Bots() != 0 {
		t.Fatalf("C2 still sees %d bots after reboot", c2.Bots())
	}
	probes, connects, cracked, infections := atk.Stats()
	if probes == 0 || connects == 0 || cracked == 0 || infections == 0 {
		t.Fatalf("attacker stats: %d %d %d %d", probes, connects, cracked, infections)
	}
}

func TestDeviceReinfectionAfterReboot(t *testing.T) {
	r := newRig()
	c2Host := r.host(2)
	c2 := botnet.NewC2(0)
	if err := c2.Attach(c2Host); err != nil {
		t.Fatal(err)
	}
	devHost := r.host(10)
	dev := New(Config{
		Name: "dvr0", Profile: ProfileDVR,
		TServer:   c2Host.Addr(), // unused: benign silenced
		Seed:      3,
		MeanThink: time.Hour,
	})
	dev.StartOn(devHost)
	atkHost := r.host(3)
	atk := botnet.NewAttacker(botnet.AttackerConfig{
		TargetRange:       packet.MustParsePrefix("10.0.0.8/30"), // .9-.10
		C2Addr:            c2Host.Addr(),
		MeanProbeInterval: 200 * time.Millisecond,
		ReinfectCooldown:  30 * time.Second,
		Seed:              2,
	})
	atk.Attach(atkHost)
	if err := r.sched.Run(120 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !dev.Infected() {
		t.Fatal("initial infection failed")
	}
	dev.Stop()
	dev.StartOn(devHost)
	// Scanner keeps probing; the device is re-infected.
	if err := r.sched.RunFor(240 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !dev.Infected() {
		t.Fatal("device never re-infected after reboot")
	}
	if dev.Infections() < 2 {
		t.Fatalf("Infections() = %d, want >= 2", dev.Infections())
	}
}

// TestTelnetServiceRetainedPerDevice pins the service-object ownership
// rule: a device keeps its own TelnetService across restarts (same object,
// re-armed) and two devices never share one. Telnet sessions opened before
// a crash outlive Stop(), so a service that changed owners would leak one
// device's credential and install hook into another's late events — and
// which device inherited the object would depend on runtime scheduling,
// breaking cross-run determinism in churned campaigns.
func TestTelnetServiceRetainedPerDevice(t *testing.T) {
	r := newRig()
	hostA, hostB := r.host(10), r.host(11)
	devA := New(Config{Name: "a", Profile: ProfileDVR, Seed: 1, MeanThink: time.Hour})
	devB := New(Config{Name: "b", Profile: ProfileDVR, Seed: 2, MeanThink: time.Hour})
	devA.StartOn(hostA)
	devB.StartOn(hostB)
	if devA.Telnet() == devB.Telnet() {
		t.Fatal("two devices share one TelnetService")
	}
	svc := devA.Telnet()
	if svc == nil {
		t.Fatal("no service after start")
	}
	devA.Stop()
	if devA.Telnet() != svc {
		t.Fatal("Stop released the service object")
	}
	devA.StartOn(hostA)
	if devA.Telnet() != svc {
		t.Fatal("restart did not reuse the device's own service")
	}
	if devA.Telnet() == devB.Telnet() {
		t.Fatal("restart handed over another device's service")
	}
}
