package fl

import (
	"testing"

	"ddoshield/internal/dataset"
	"ddoshield/internal/ml/mltest"
	"ddoshield/internal/sim"
)

// corpus builds a labeled dataset from the shared blob generator.
func corpus(n int, seed int64) *dataset.Dataset {
	xs, ys := mltest.Blobs(n, 16, 2, seed)
	ds := dataset.New(make([]string, 16))
	for i := range ds.Names {
		ds.Names[i] = "f"
	}
	for i := range xs {
		ds.Add(xs[i], ys[i])
	}
	return ds
}

func TestFedAvgLearnsAcrossClients(t *testing.T) {
	ds := corpus(1200, 1)
	rng := sim.NewRNG(1)
	shards := Partition(ds, 4, false, rng)
	res, err := Train(Config{Rounds: 4, LocalEpochs: 2, Seed: 1}, shards)
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := mltest.Blobs(400, 16, 2, 2)
	if acc := mltest.Accuracy(res.Global.Predict, testX, testY); acc < 0.9 {
		t.Fatalf("federated accuracy = %.3f", acc)
	}
	if len(res.Rounds) != 4 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	for _, r := range res.Rounds {
		if r.Participants != 4 {
			t.Fatalf("round %d participants = %d", r.Round, r.Participants)
		}
		if r.EnergyJoules <= 0 {
			t.Fatalf("round %d energy = %v", r.Round, r.EnergyJoules)
		}
	}
	if res.TotalEnergyJoules <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestFedAvgNonIIDStillLearns(t *testing.T) {
	ds := corpus(1600, 3)
	rng := sim.NewRNG(3)
	shards := Partition(ds, 4, true, rng)
	// Non-IID: shard balances must differ materially.
	ratios := make([]float64, len(shards))
	for i, sh := range shards {
		sum := sh.Summarize()
		if sum.Total == 0 {
			t.Fatalf("shard %d empty", i)
		}
		ratios[i] = float64(sum.Malicious) / float64(sum.Total)
	}
	spread := 0.0
	for _, r := range ratios {
		for _, r2 := range ratios {
			if d := r - r2; d > spread {
				spread = d
			}
		}
	}
	if spread < 0.3 {
		t.Fatalf("label skew too weak: ratios %v", ratios)
	}
	res, err := Train(Config{Rounds: 6, LocalEpochs: 2, Seed: 3}, shards)
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := mltest.Blobs(400, 16, 2, 4)
	if acc := mltest.Accuracy(res.Global.Predict, testX, testY); acc < 0.85 {
		t.Fatalf("non-IID federated accuracy = %.3f", acc)
	}
}

func TestClientFractionSampling(t *testing.T) {
	ds := corpus(800, 5)
	rng := sim.NewRNG(5)
	shards := Partition(ds, 8, false, rng)
	res, err := Train(Config{Rounds: 3, LocalEpochs: 1, ClientFraction: 0.5, Seed: 5}, shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rounds {
		if r.Participants != 4 {
			t.Fatalf("round %d participants = %d, want 4 of 8", r.Round, r.Participants)
		}
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := Train(Config{}, nil); err == nil {
		t.Fatal("accepted no shards")
	}
	empty := []*dataset.Dataset{dataset.New([]string{"a"})}
	if _, err := Train(Config{}, empty); err == nil {
		t.Fatal("accepted all-empty shards")
	}
}

func TestPartitionSingleShard(t *testing.T) {
	ds := corpus(100, 7)
	shards := Partition(ds, 1, true, sim.NewRNG(7))
	if len(shards) != 1 || shards[0].Len() != 100 {
		t.Fatalf("single-shard partition broken: %d shards", len(shards))
	}
}

func TestPartitionPreservesSamples(t *testing.T) {
	ds := corpus(999, 8)
	shards := Partition(ds, 5, true, sim.NewRNG(8))
	total := 0
	for _, sh := range shards {
		total += sh.Len()
	}
	if total != 999 {
		t.Fatalf("partition lost samples: %d of 999", total)
	}
}
