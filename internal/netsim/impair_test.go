package netsim

import (
	"bytes"
	"math/bits"
	"testing"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

func TestLinkDownCutsInFlightFrames(t *testing.T) {
	// 1000-byte frame at 1 Mb/s: serialization ends at 8 ms, arrival at
	// 18 ms. Cutting the link at 10 ms catches the frame on the wire.
	s, a, b := twoNodes(t, LinkConfig{RateBps: 1_000_000, Delay: 10 * sim.Millisecond})
	delivered := 0
	b.SetHandler(func(raw []byte) { delivered++ })
	a.Send(frame(a.MAC(), b.MAC(), 1000-packet.EthernetHeaderLen))
	s.At(10*sim.Millisecond, func() { a.link.SetUp(false) })
	s.Drain()
	if delivered != 0 {
		t.Fatal("in-flight frame survived a link cut")
	}
	st := a.link.Counters()
	if st.InFlightDrops != 1 {
		t.Fatalf("InFlightDrops = %d, want 1", st.InFlightDrops)
	}
	if st.TxFrames != 1 {
		t.Fatalf("TxFrames = %d, want 1 (transmitter already finished)", st.TxFrames)
	}
	// The legacy three-value Stats must also account for the cut frame.
	_, _, drops := a.link.Stats()
	if drops != 1 {
		t.Fatalf("Stats drops = %d, want 1", drops)
	}
}

func TestLinkDownThenUpDoesNotResurrectFrames(t *testing.T) {
	// A frame cut mid-flight stays lost even if the link comes back up
	// before its original arrival instant.
	s, a, b := twoNodes(t, LinkConfig{RateBps: 1_000_000, Delay: 10 * sim.Millisecond})
	delivered := 0
	b.SetHandler(func(raw []byte) { delivered++ })
	a.Send(frame(a.MAC(), b.MAC(), 1000-packet.EthernetHeaderLen))
	s.At(9*sim.Millisecond, func() { a.link.SetUp(false) })
	s.At(20*sim.Millisecond, func() { a.link.SetUp(true) })
	s.Drain()
	// Arrival at 18ms hits a down link; restore at 20ms must not replay it.
	if delivered != 0 {
		t.Fatal("cut frame was resurrected by link restore")
	}
	if st := a.link.Counters(); st.InFlightDrops != 1 {
		t.Fatalf("InFlightDrops = %d, want 1", st.InFlightDrops)
	}
}

func TestImpairmentCorruption(t *testing.T) {
	s, a, b := twoNodes(t, LinkConfig{})
	a.link.SetImpairments(Impairments{CorruptProb: 1, RNG: sim.NewRNG(7)})
	var got []byte
	b.SetHandler(func(raw []byte) { got = raw })
	sent := frame(a.MAC(), b.MAC(), 64)
	orig := append([]byte(nil), sent...)
	a.Send(sent)
	s.Drain()
	if got == nil {
		t.Fatal("corrupted frame was not delivered")
	}
	if bytes.Equal(got, orig) {
		t.Fatal("frame delivered uncorrupted despite CorruptProb=1")
	}
	if !bytes.Equal(sent, orig) {
		t.Fatal("corruption mutated the sender's buffer")
	}
	flipped := 0
	for i := range got {
		flipped += bits.OnesCount8(got[i] ^ orig[i])
	}
	if flipped != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", flipped)
	}
	if st := a.link.Counters(); st.CorruptFrames != 1 || st.TxFrames != 1 {
		t.Fatalf("counters = %+v, want 1 corrupt / 1 tx", st)
	}
}

func TestImpairmentDuplication(t *testing.T) {
	s, a, b := twoNodes(t, LinkConfig{})
	a.link.SetImpairments(Impairments{DupProb: 1, RNG: sim.NewRNG(3)})
	delivered := 0
	b.SetHandler(func(raw []byte) { delivered++ })
	a.Send(frame(a.MAC(), b.MAC(), 64))
	s.Drain()
	if delivered != 2 {
		t.Fatalf("delivered %d copies, want 2", delivered)
	}
	st := a.link.Counters()
	if st.DupFrames != 1 || st.TxFrames != 1 {
		t.Fatalf("counters = %+v, want 1 dup / 1 tx", st)
	}
}

func TestImpairmentLoss(t *testing.T) {
	s, a, b := twoNodes(t, LinkConfig{})
	a.link.SetImpairments(Impairments{LossProb: 1, RNG: sim.NewRNG(5)})
	delivered := 0
	b.SetHandler(func(raw []byte) { delivered++ })
	a.Send(frame(a.MAC(), b.MAC(), 64))
	s.Drain()
	if delivered != 0 {
		t.Fatal("frame survived LossProb=1")
	}
	st := a.link.Counters()
	if st.LossFrames != 1 {
		t.Fatalf("LossFrames = %d, want 1", st.LossFrames)
	}
	if _, _, drops := a.link.Stats(); drops != 1 {
		t.Fatalf("Stats drops = %d, want 1", drops)
	}
}

func TestImpairmentReorder(t *testing.T) {
	// First frame is held by ReorderDelay; the second, sent right after,
	// overtakes it.
	s, a, b := twoNodes(t, LinkConfig{RateBps: 1_000_000, Delay: sim.Millisecond})
	var order []byte
	b.SetHandler(func(raw []byte) { order = append(order, raw[len(raw)-1]) })
	mk := func(tag byte) []byte {
		f := frame(a.MAC(), b.MAC(), 100-packet.EthernetHeaderLen)
		f[len(f)-1] = tag
		return f
	}
	a.link.SetImpairments(Impairments{ReorderProb: 1, ReorderDelay: 50 * sim.Millisecond, RNG: sim.NewRNG(9)})
	a.Send(mk(1)) // transmits immediately: reordered, held 50 ms extra
	a.link.SetImpairments(Impairments{})
	a.Send(mk(2)) // queued; transmits after frame 1's serialization, unimpaired
	s.Drain()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("arrival order = %v, want [2 1]", order)
	}
	if st := a.link.Counters(); st.ReorderFrames != 1 {
		t.Fatalf("ReorderFrames = %d, want 1", st.ReorderFrames)
	}
}

func TestImpairmentConservation(t *testing.T) {
	// With loss+dup+corrupt active, every transmitted frame is delivered
	// (possibly twice), lost, or dropped — the counters must balance.
	s, a, b := twoNodes(t, LinkConfig{RateBps: 100_000_000, QueueBytes: 1 << 20})
	a.link.SetImpairments(Impairments{
		LossProb:    0.2,
		CorruptProb: 0.1,
		DupProb:     0.15,
		RNG:         sim.NewRNG(11),
	})
	delivered := 0
	b.SetHandler(func(raw []byte) { delivered++ })
	const n = 500
	for i := 0; i < n; i++ {
		a.Send(frame(a.MAC(), b.MAC(), 64))
	}
	s.Drain()
	st := a.link.Counters()
	if st.TxFrames != n {
		t.Fatalf("TxFrames = %d, want %d", st.TxFrames, n)
	}
	want := int(st.TxFrames - st.LossFrames + st.DupFrames)
	if delivered != want {
		t.Fatalf("delivered %d, want tx-loss+dup = %d (%+v)", delivered, want, st)
	}
	if st.LossFrames == 0 || st.DupFrames == 0 || st.CorruptFrames == 0 {
		t.Fatalf("expected all impairment counters non-zero: %+v", st)
	}
}

func TestSwitchPartition(t *testing.T) {
	s, sw, nics := buildStar(t)
	counts := make([]int, len(nics))
	for i, nic := range nics {
		i := i
		nic.SetHandler(func(raw []byte) { counts[i]++ })
	}
	// Teach the switch where everyone lives.
	for _, nic := range nics {
		nic.Send(frame(nic.MAC(), packet.BroadcastMAC, 64))
	}
	s.Drain()
	base := append([]int(nil), counts...)

	// Partition {0,1} | {2,3}.
	for i, nic := range nics {
		if !sw.SetGroup(nic.link.Ends()[1], i/2+1) {
			t.Fatalf("SetGroup failed for port %d", i)
		}
	}
	nics[0].Send(frame(nics[0].MAC(), nics[1].MAC(), 64)) // same side: delivered
	nics[0].Send(frame(nics[0].MAC(), nics[2].MAC(), 64)) // across: dropped
	s.Drain()
	if counts[1] != base[1]+1 {
		t.Fatal("intra-partition frame not delivered")
	}
	if counts[2] != base[2] {
		t.Fatal("frame crossed the partition")
	}
	if sw.PartitionDrops() != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", sw.PartitionDrops())
	}
	// Broadcast floods only the sender's side.
	nics[3].Send(frame(nics[3].MAC(), packet.BroadcastMAC, 64))
	s.Drain()
	if counts[2] != base[2]+1 || counts[0] != base[0] || counts[1] != base[1]+1 {
		t.Fatalf("partitioned broadcast counts = %v (base %v)", counts, base)
	}

	// Healing restores full connectivity.
	sw.ClearGroups()
	nics[0].Send(frame(nics[0].MAC(), nics[2].MAC(), 64))
	s.Drain()
	if counts[2] != base[2]+2 {
		t.Fatal("partition heal did not restore forwarding")
	}
}

func TestSetGroupRejectsForeignPort(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	sw := net.NewSwitch("sw0")
	other := net.NewSwitch("sw1")
	p := other.NewPort()
	if sw.SetGroup(p, 1) {
		t.Fatal("SetGroup accepted another switch's port")
	}
	nic := net.NewNode("n").AddNIC()
	if sw.SetGroup(nic, 1) {
		t.Fatal("SetGroup accepted a NIC")
	}
}
