// Package packet defines the wire formats carried by the simulated network:
// Ethernet II frames, ARP, IPv4, TCP and UDP, with real big-endian
// serialization and Internet checksums. Captured traffic therefore parses
// with standard tooling, and the IDS feature extractor (destination-port
// entropy, SYN-without-ACK analysis, ...) operates on genuine header fields
// rather than on synthetic records.
package packet

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// BroadcastMAC is the all-ones Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// MACFromUint64 derives a locally-administered unicast MAC from a counter;
// the testbed assigns NICs sequential MACs this way.
func MACFromUint64(v uint64) MAC {
	var m MAC
	m[0] = 0x02 // locally administered, unicast
	m[1] = byte(v >> 32)
	m[2] = byte(v >> 24)
	m[3] = byte(v >> 16)
	m[4] = byte(v >> 8)
	m[5] = byte(v)
	return m
}

// IsBroadcast reports whether the address is the Ethernet broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// String renders the address in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Addr is an IPv4 address in network (big-endian) byte order.
type Addr [4]byte

// AddrFrom4 builds an address from four octets.
func AddrFrom4(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// AddrFromUint32 builds an address from its 32-bit big-endian value.
func AddrFromUint32(v uint32) Addr {
	var a Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// ParseAddr parses dotted-quad notation ("10.0.0.1").
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return Addr{}, fmt.Errorf("parse addr %q: need 4 octets", s)
	}
	var a Addr
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return Addr{}, fmt.Errorf("parse addr %q: bad octet %q", s, p)
		}
		a[i] = byte(v)
	}
	return a, nil
}

// MustParseAddr is ParseAddr for constant literals in tests; it panics on
// malformed input. Production code must use ParseAddr (for external input)
// or AddrFrom4 (for known octets) — no non-test code path may reach this
// panic.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Uint32 returns the address as a 32-bit big-endian value.
func (a Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// IsZero reports whether the address is 0.0.0.0.
func (a Addr) IsZero() bool { return a == Addr{} }

// String renders dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Prefix is an IPv4 CIDR prefix used for routing and subnet membership.
type Prefix struct {
	Addr Addr
	Bits int
}

// ParsePrefix parses CIDR notation ("10.0.0.0/24").
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("parse prefix %q: missing '/'", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("parse prefix %q: bad length", s)
	}
	return Prefix{Addr: a, Bits: bits}, nil
}

// MustParsePrefix is ParsePrefix for constant literals in tests; it panics
// on malformed input. Production code must use ParsePrefix or build the
// Prefix struct directly — no non-test code path may reach this panic.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (p Prefix) mask() uint32 {
	if p.Bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(p.Bits))
}

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	m := p.mask()
	return a.Uint32()&m == p.Addr.Uint32()&m
}

// Host returns the n-th host address inside the prefix (n=1 is the first
// usable host). It does not guard against overflowing the prefix.
func (p Prefix) Host(n uint32) Addr {
	return AddrFromUint32((p.Addr.Uint32() & p.mask()) + n)
}

// NumHosts reports the number of assignable host addresses in the prefix
// (excluding network and broadcast addresses for prefixes shorter than /31).
func (p Prefix) NumHosts() uint32 {
	span := uint32(1) << (32 - uint(p.Bits))
	if span <= 2 {
		return span
	}
	return span - 2
}

// String renders CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }
