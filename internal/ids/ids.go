// Package ids implements the Real-Time IDS Unit of Fig. 2: a passive
// monitor taps the simulated network, a preprocessing stage aggregates
// basic and statistical features over user-configurable time windows (1 s
// in the paper's experiments), and a pluggable ML model classifies every
// packet of each closed window as benign or malicious. Per-window accuracy
// is recorded against the testbed's ground-truth oracle, exactly as §IV-D
// evaluates the three models — and only accuracy, since single-class
// windows make precision/recall undefined in real time.
package ids

import (
	"time"

	"ddoshield/internal/dataset"
	"ddoshield/internal/features"
	"ddoshield/internal/ml"
	"ddoshield/internal/ml/metrics"
	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/trace"
)

// Labeler is the ground-truth oracle: it maps a packet to dataset.Benign
// or dataset.Malicious. The testbed supplies one built from its knowledge
// of the botnet's addresses and spoof ranges.
type Labeler func(b *features.Basic) int

// Meter receives CPU attributions (container.Container satisfies it).
type Meter interface {
	AddCPU(d time.Duration)
}

// Config assembles a detection unit.
type Config struct {
	// Model is the trained classifier (required for detection; a nil
	// model records windows without predictions).
	Model ml.Classifier
	// Scaler, when set, standardizes vectors before prediction with the
	// training-time statistics.
	Scaler *dataset.StandardScaler
	// Window is the aggregation window (default 1 s).
	Window time.Duration
	// Labeler provides ground truth for accuracy scoring (optional).
	Labeler Labeler
	// Meter, when set, additionally receives CPU attributions (e.g. the
	// IDS container).
	Meter Meter
	// OnWindow, when set, receives every closed window's result as soon as
	// it is scored — the hook automated responses (mitigation) attach to.
	OnWindow func(r *WindowResult)
	// Name labels this unit's telemetry (default "ids").
	Name string
	// Registry, when set, exposes packet/window/alert counters and a
	// per-window CPU histogram under ids_* metric names.
	Registry *telemetry.Registry
	// Recorder, when set, receives one trace event per closed window,
	// stamped with the window's opening instant.
	Recorder *telemetry.Recorder
}

// WindowResult is the detection outcome for one closed window.
type WindowResult struct {
	// Start is the window's opening instant.
	Start sim.Time
	// Packets is the number of classified packets.
	Packets int
	// PredMalicious and TruthMalicious count packets per class.
	PredMalicious  int
	TruthMalicious int
	// Correct counts packets whose prediction matched ground truth.
	Correct int
	// Accuracy is Correct/Packets (0 when no labeler is configured).
	Accuracy float64
	// Alert reports whether the majority of packets were classified
	// malicious — the unit's per-window verdict.
	Alert bool
	// FlaggedSrcs are the distinct source addresses of packets the model
	// classified malicious in this window (response actions target them).
	FlaggedSrcs []packet.Addr
	// FlaggedFlows are the distinct 5-tuples of packets the model
	// classified malicious, capped at maxFlaggedFlows — the per-flow
	// verdicts an inline mitigation stage installs.
	FlaggedFlows []trace.Flow
	// CPU is the compute time spent processing this window.
	CPU time.Duration
}

// Unit is the real-time detection pipeline.
type Unit struct {
	cfg       Config
	extractor *features.Extractor
	results   []WindowResult
	confusion metrics.Confusion
	// hooks are additional OnWindow consumers registered after New (the
	// testbed attaches mitigation responders here); they run after
	// cfg.OnWindow, in registration order.
	hooks []func(r *WindowResult)

	cpu      time.Duration
	peakMem  int64
	vecBuf   []float64
	packets  uint64
	alerts   uint64
	detached bool
	winCPU   *telemetry.Histogram

	// pending holds the "ids-window" spans of sampled packets in the
	// currently open window; they finish with the window's verdict tag.
	pending []trace.Context
	// firstCorrectAlert is when the unit first alerted on a window that
	// truly contained malicious packets — the detection-latency end anchor.
	firstCorrectAlert     sim.Time
	haveFirstCorrectAlert bool
}

// maxPendingSpans caps verdict-pending spans per window so a fully sampled
// flood cannot grow the slice without bound; excess packets simply end
// their traces at delivery.
const maxPendingSpans = 4096

// maxFlaggedFlows caps the distinct 5-tuples reported per window: a
// spoofed flood forges a fresh tuple per packet, and the responder's
// per-flow verdicts are pointless past its own install cap anyway.
const maxFlaggedFlows = 512

// windowCPUBounds buckets per-window processing cost in microseconds.
var windowCPUBounds = []float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// New assembles a unit.
func New(cfg Config) *Unit {
	if cfg.Name == "" {
		cfg.Name = "ids"
	}
	u := &Unit{cfg: cfg}
	u.extractor = features.NewExtractor(cfg.Window, u.onWindow)
	unit := telemetry.L("unit", cfg.Name)
	cfg.Registry.RegisterCounterFunc(func() uint64 { return u.packets }, "ids_packets_total", unit)
	cfg.Registry.RegisterCounterFunc(func() uint64 { return uint64(len(u.results)) }, "ids_windows_total", unit)
	cfg.Registry.RegisterCounterFunc(func() uint64 { return u.alerts }, "ids_alerts_total", unit)
	u.winCPU = cfg.Registry.NewHistogram("ids_window_cpu_us", windowCPUBounds, unit)
	return u
}

// Name reports the unit's telemetry label.
func (u *Unit) Name() string { return u.cfg.Name }

// AddWindowHook registers an additional per-window consumer on an already
// constructed unit (Config.OnWindow still runs first). Response stages
// attach here so one unit can feed detection metrics and mitigation at
// the same time.
func (u *Unit) AddWindowHook(fn func(r *WindowResult)) {
	u.hooks = append(u.hooks, fn)
}

// Tap returns a netsim.Tap that feeds the unit — attach it to the switch
// (span port) or to the TServer's link, as Fig. 1 places the IDS.
func (u *Unit) Tap() netsim.Tap {
	return func(t sim.Time, raw []byte) {
		if u.detached {
			return
		}
		start := time.Now()
		// Pooled decode: AddPacket copies the Basic features out by value,
		// so the Packet never outlives the tap callback.
		p := packet.Acquire()
		if err := packet.DecodeInto(p, t, raw); err == nil {
			u.extractor.AddPacket(p)
		}
		p.Release()
		u.addCPU(time.Since(start))
	}
}

// TapCtx is Tap joined to the causal-tracing plane: a sampled packet's
// chain gains an "ids-window" span that stays open until the packet's
// window closes and finishes tagged with the verdict ("alert"/"clear").
// Attach via testbed.AttachIDS or netsim's AddTapCtx.
func (u *Unit) TapCtx() netsim.TapCtx {
	return func(t sim.Time, raw []byte, tc trace.Context) {
		if u.detached {
			return
		}
		start := time.Now()
		p := packet.Acquire()
		if err := packet.DecodeInto(p, t, raw); err == nil {
			p.Trace = tc
			// AddPacket first: if this packet rotates the window, the old
			// window's pending spans are flushed before this one enrolls.
			u.extractor.AddPacket(p)
			if tc.Sampled() && len(u.pending) < maxPendingSpans {
				u.pending = append(u.pending, tc.Start(t, "ids-window", u.cfg.Name))
			}
		}
		p.Release()
		u.addCPU(time.Since(start))
	}
}

// FirstCorrectAlert reports when the unit first raised an alert on a
// window that truly contained attack traffic (the per-scenario detection
// latency's end anchor), and whether that has happened.
func (u *Unit) FirstCorrectAlert() (sim.Time, bool) {
	return u.firstCorrectAlert, u.haveFirstCorrectAlert
}

// Feed classifies an already-dissected packet (offline replay path).
func (u *Unit) Feed(p *packet.Packet) {
	start := time.Now()
	u.extractor.AddPacket(p)
	u.addCPU(time.Since(start))
}

// Flush closes the trailing window. Call at end of run.
func (u *Unit) Flush() {
	start := time.Now()
	u.extractor.Flush()
	u.addCPU(time.Since(start))
}

// Detach stops consuming tapped traffic.
func (u *Unit) Detach() { u.detached = true }

func (u *Unit) addCPU(d time.Duration) {
	u.cpu += d
	if u.cfg.Meter != nil {
		u.cfg.Meter.AddCPU(d)
	}
}

// onWindow runs preprocessing + detection for one closed window.
func (u *Unit) onWindow(w *features.Window) {
	start := time.Now()
	res := WindowResult{Start: w.Start, Packets: len(w.Packets)}
	// Track the window buffer high-water mark for the memory report.
	if mem := u.liveMem(len(w.Packets)); mem > u.peakMem {
		u.peakMem = mem
	}
	var flagged map[packet.Addr]bool
	var flaggedFlows map[trace.Flow]bool
	for i := range w.Packets {
		b := &w.Packets[i]
		u.packets++
		truth := -1
		if u.cfg.Labeler != nil {
			truth = u.cfg.Labeler(b)
			if truth == dataset.Malicious {
				res.TruthMalicious++
			}
		}
		if u.cfg.Model == nil {
			continue
		}
		u.vecBuf = features.AppendVector(u.vecBuf[:0], b, &w.Stats)
		if u.cfg.Scaler != nil {
			u.cfg.Scaler.Transform(u.vecBuf)
		}
		pred := u.cfg.Model.Predict(u.vecBuf)
		if pred == dataset.Malicious {
			res.PredMalicious++
			if flagged == nil {
				flagged = make(map[packet.Addr]bool)
			}
			if !flagged[b.Src] {
				flagged[b.Src] = true
				res.FlaggedSrcs = append(res.FlaggedSrcs, b.Src)
			}
			if len(res.FlaggedFlows) < maxFlaggedFlows {
				f := trace.Flow{
					Src: b.Src.Uint32(), Dst: b.Dst.Uint32(),
					SrcPort: b.SrcPort, DstPort: b.DstPort,
					Proto: b.Proto,
				}
				if flaggedFlows == nil {
					flaggedFlows = make(map[trace.Flow]bool)
				}
				if !flaggedFlows[f] {
					flaggedFlows[f] = true
					res.FlaggedFlows = append(res.FlaggedFlows, f)
				}
			}
		}
		if truth >= 0 {
			if pred == truth {
				res.Correct++
			}
			u.confusion.Add(truth, pred)
		}
	}
	if res.Packets > 0 {
		res.Accuracy = float64(res.Correct) / float64(res.Packets)
		res.Alert = res.PredMalicious*2 > res.Packets
	}
	res.CPU = time.Since(start)
	u.addCPU(res.CPU)
	u.winCPU.Observe(float64(res.CPU) / float64(time.Microsecond))
	verdict := "clear"
	if res.Alert {
		u.alerts++
		verdict = "alert"
	}
	// Close the window's sampled-packet spans with the verdict at the
	// window boundary — the instant the verdict actually exists.
	windowEnd := w.Start.Add(u.extractor.WindowSize())
	for _, tc := range u.pending {
		tc.FinishTag(windowEnd, verdict)
	}
	u.pending = u.pending[:0]
	if res.Alert && res.TruthMalicious > 0 && !u.haveFirstCorrectAlert {
		u.haveFirstCorrectAlert = true
		u.firstCorrectAlert = windowEnd
	}
	u.cfg.Recorder.Emit(w.Start, telemetry.CatIDS, verdict, u.cfg.Name, int64(res.PredMalicious))
	u.results = append(u.results, res)
	last := &u.results[len(u.results)-1]
	if u.cfg.OnWindow != nil {
		u.cfg.OnWindow(last)
	}
	for _, hook := range u.hooks {
		hook(last)
	}
}

// liveMem estimates current memory held by the unit: the model, the scaler
// and the window buffer.
func (u *Unit) liveMem(windowPackets int) int64 {
	var mem int64
	if mr, ok := u.cfg.Model.(interface{ MemoryBytes() int64 }); ok {
		mem += mr.MemoryBytes()
	}
	if u.cfg.Scaler != nil {
		mem += int64(len(u.cfg.Scaler.Mean)+len(u.cfg.Scaler.Std)) * 8
	}
	mem += int64(windowPackets) * 40 // features.Basic footprint
	mem += int64(cap(u.vecBuf)) * 8
	return mem
}

// Results returns the per-window detection timeline.
func (u *Unit) Results() []WindowResult {
	out := make([]WindowResult, len(u.results))
	copy(out, u.results)
	return out
}

// AverageAccuracy is the mean per-window accuracy — the quantity Table I
// reports for each model.
func (u *Unit) AverageAccuracy() float64 {
	if len(u.results) == 0 {
		return 0
	}
	var s float64
	for i := range u.results {
		s += u.results[i].Accuracy
	}
	return s / float64(len(u.results))
}

// MinAccuracy is the worst single-window accuracy — the per-second dip the
// paper reports at attack boundaries (35% minimum for K-Means).
func (u *Unit) MinAccuracy() float64 {
	if len(u.results) == 0 {
		return 0
	}
	m := u.results[0].Accuracy
	for i := range u.results {
		if u.results[i].Accuracy < m {
			m = u.results[i].Accuracy
		}
	}
	return m
}

// Confusion returns the packet-level confusion matrix across all windows.
func (u *Unit) Confusion() metrics.Confusion { return u.confusion }

// PacketsSeen reports total classified packets.
func (u *Unit) PacketsSeen() uint64 { return u.packets }

// CPUTime implements sysmon.Metered: cumulative processing time.
func (u *Unit) CPUTime() time.Duration { return u.cpu }

// MemBytes implements sysmon.Metered: the peak live footprint observed.
func (u *Unit) MemBytes() int64 {
	if u.peakMem == 0 {
		return u.liveMem(0)
	}
	return u.peakMem
}

// WindowSize reports the configured aggregation window.
func (u *Unit) WindowSize() time.Duration { return u.extractor.WindowSize() }
