package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
	FlagURG uint8 = 1 << 5
)

// FlagString renders a TCP flag byte as "SYN|ACK"-style text.
func FlagString(f uint8) string {
	names := []struct {
		bit  uint8
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"},
		{FlagRST, "RST"}, {FlagPSH, "PSH"}, {FlagURG, "URG"},
	}
	var parts []string
	for _, n := range names {
		if f&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// TCPHeaderLen is the length of an option-less TCP header in bytes.
const TCPHeaderLen = 20

// TCP is a TCP header without options.
type TCP struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8
	Window   uint16
	Checksum uint16 // filled by Marshal
	Urgent   uint16
}

// Marshal appends the wire encoding of the header plus payload to b,
// computing the transport checksum over the (src, dst) pseudo-header.
func (h *TCP) Marshal(b []byte, src, dst Addr, payload []byte) []byte {
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint32(b, h.Seq)
	b = binary.BigEndian.AppendUint32(b, h.Ack)
	b = append(b, 5<<4, h.Flags) // data offset 5 words
	b = binary.BigEndian.AppendUint16(b, h.Window)
	b = append(b, 0, 0) // checksum placeholder
	b = binary.BigEndian.AppendUint16(b, h.Urgent)
	b = append(b, payload...)
	cs := TransportChecksum(src, dst, ProtoTCP, b[start:])
	h.Checksum = cs
	binary.BigEndian.PutUint16(b[start+16:start+18], cs)
	return b
}

// UnmarshalTCP decodes a TCP header and returns it with the payload bytes.
// When verify is true the transport checksum is validated against the
// pseudo-header built from src and dst.
func UnmarshalTCP(b []byte, src, dst Addr, verify bool) (TCP, []byte, error) {
	if len(b) < TCPHeaderLen {
		return TCP{}, nil, fmt.Errorf("tcp: segment too short (%d bytes)", len(b))
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return TCP{}, nil, fmt.Errorf("tcp: bad data offset %d", off)
	}
	if verify && TransportChecksum(src, dst, ProtoTCP, b) != 0 {
		return TCP{}, nil, fmt.Errorf("tcp: checksum mismatch")
	}
	var h TCP
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:16])
	h.Checksum = binary.BigEndian.Uint16(b[16:18])
	h.Urgent = binary.BigEndian.Uint16(b[18:20])
	return h, b[off:], nil
}
