// Package mitigation closes the detection→response loop — the "shield" in
// DDoShield: a stateless firewall installed at a NIC's ingress, and a
// Responder that converts the Real-Time IDS Unit's per-window verdicts
// into time-limited block rules. DDoSim's §III-A positions its experiments
// as "benchmarks for evaluating the effectiveness of defense mechanisms,
// ranging from intrusion detection systems to traffic filtering and
// mitigation techniques"; this package implements the filtering half.
package mitigation

import (
	"time"

	"ddoshield/internal/ids"
	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// Firewall drops frames from blocked sources before the protected host's
// stack sees them. Rules expire after a TTL so false positives heal.
type Firewall struct {
	sched *sim.Scheduler
	nic   *netsim.NIC

	addrs    map[packet.Addr]sim.Time // addr → expiry
	prefixes map[packet.Prefix]sim.Time

	evaluated uint64
	dropped   uint64
}

// NewFirewall installs a firewall on nic's ingress path.
func NewFirewall(sched *sim.Scheduler, nic *netsim.NIC) *Firewall {
	fw := &Firewall{
		sched:    sched,
		nic:      nic,
		addrs:    make(map[packet.Addr]sim.Time),
		prefixes: make(map[packet.Prefix]sim.Time),
	}
	nic.SetIngressFilter(fw.admit)
	return fw
}

// Detach removes the firewall from the NIC.
func (fw *Firewall) Detach() { fw.nic.SetIngressFilter(nil) }

// BlockAddr drops traffic from a single source for ttl.
func (fw *Firewall) BlockAddr(a packet.Addr, ttl time.Duration) {
	fw.addrs[a] = fw.sched.Now().Add(ttl)
}

// BlockPrefix drops traffic from a whole prefix for ttl — the aggregated
// rule spoofed-source floods require (blocking millions of forged
// addresses individually is not a real-world option).
func (fw *Firewall) BlockPrefix(p packet.Prefix, ttl time.Duration) {
	fw.prefixes[p] = fw.sched.Now().Add(ttl)
}

// BlockedAddrs reports currently active single-address rules.
func (fw *Firewall) BlockedAddrs() int {
	n := 0
	now := fw.sched.Now()
	for _, exp := range fw.addrs {
		if exp > now {
			n++
		}
	}
	return n
}

// BlockedPrefixes reports currently active prefix rules.
func (fw *Firewall) BlockedPrefixes() int {
	n := 0
	now := fw.sched.Now()
	for _, exp := range fw.prefixes {
		if exp > now {
			n++
		}
	}
	return n
}

// Stats reports frames evaluated and dropped.
func (fw *Firewall) Stats() (evaluated, dropped uint64) {
	return fw.evaluated, fw.dropped
}

// admit is the ingress filter: false drops the frame. Non-IP frames (ARP)
// always pass, as a network-layer ACL would let them.
func (fw *Firewall) admit(raw []byte) bool {
	fw.evaluated++
	eth, rest, err := packet.UnmarshalEthernet(raw)
	if err != nil || eth.Type != packet.EtherTypeIPv4 || len(rest) < packet.IPv4HeaderLen {
		return true
	}
	// Fast path: the IPv4 source sits at a fixed offset; no full parse.
	var src packet.Addr
	copy(src[:], rest[12:16])
	now := fw.sched.Now()
	if exp, ok := fw.addrs[src]; ok {
		if exp > now {
			fw.dropped++
			return false
		}
		delete(fw.addrs, src)
	}
	for p, exp := range fw.prefixes {
		if exp <= now {
			delete(fw.prefixes, p)
			continue
		}
		if p.Contains(src) {
			fw.dropped++
			return false
		}
	}
	return true
}

// ResponderConfig tunes the IDS-driven response policy.
type ResponderConfig struct {
	// BlockTTL is how long rules last (default 30 s).
	BlockTTL time.Duration
	// AggregateThreshold collapses per-address rules into a /24 block when
	// at least this many flagged sources share the /24 (default 8) — the
	// defense against spoofed-source floods.
	AggregateThreshold int
	// MaxAddrRules caps individual address rules per window (default 64).
	MaxAddrRules int
	// Protected lists addresses never to block (the infrastructure).
	Protected []packet.Addr
}

func (c ResponderConfig) withDefaults() ResponderConfig {
	if c.BlockTTL <= 0 {
		c.BlockTTL = 30 * time.Second
	}
	if c.AggregateThreshold <= 0 {
		c.AggregateThreshold = 8
	}
	if c.MaxAddrRules <= 0 {
		c.MaxAddrRules = 64
	}
	return c
}

// Responder converts IDS window verdicts into firewall rules. Wire it via
// ids.Config.OnWindow.
type Responder struct {
	cfg ResponderConfig
	fw  *Firewall

	alertsHandled uint64
	addrRules     uint64
	prefixRules   uint64
}

// NewResponder returns a responder driving fw.
func NewResponder(fw *Firewall, cfg ResponderConfig) *Responder {
	return &Responder{cfg: cfg.withDefaults(), fw: fw}
}

// Stats reports alerts acted on and rules installed.
func (r *Responder) Stats() (alerts, addrRules, prefixRules uint64) {
	return r.alertsHandled, r.addrRules, r.prefixRules
}

// HandleWindow implements the ids.Config.OnWindow contract: on an alert
// window it blocks the flagged sources, aggregating dense /24s into
// prefix rules.
func (r *Responder) HandleWindow(w *ids.WindowResult) {
	if !w.Alert || len(w.FlaggedSrcs) == 0 {
		return
	}
	r.alertsHandled++
	per24 := make(map[packet.Addr][]packet.Addr) // /24 base → members
	for _, src := range w.FlaggedSrcs {
		if r.protected(src) {
			continue
		}
		base := packet.AddrFrom4(src[0], src[1], src[2], 0)
		per24[base] = append(per24[base], src)
	}
	installed := 0
	for base, members := range per24 {
		if len(members) >= r.cfg.AggregateThreshold {
			r.fw.BlockPrefix(packet.Prefix{Addr: base, Bits: 24}, r.cfg.BlockTTL)
			r.prefixRules++
			continue
		}
		for _, src := range members {
			if installed >= r.cfg.MaxAddrRules {
				return
			}
			r.fw.BlockAddr(src, r.cfg.BlockTTL)
			r.addrRules++
			installed++
		}
	}
}

func (r *Responder) protected(a packet.Addr) bool {
	for _, p := range r.cfg.Protected {
		if p == a {
			return true
		}
	}
	return false
}
