package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// buildPDESModel assembles a synthetic K-domain workload: every domain runs
// a self-rescheduling local event stream off its own RNG substream and
// periodically posts work into the next domain (ring topology), always at
// least lookahead ahead. Each domain appends to its own log, so the
// concatenated logs capture exactly what executed, when, and in what order.
func buildPDESModel(k int, lookahead Time, horizon Time) (*Engine, [][]int64) {
	e := NewEngine(k, lookahead)
	logs := make([][]int64, k)
	for i := 0; i < k; i++ {
		i := i
		d := e.Domain(i)
		next := e.Domain((i + 1) % k)
		rng := Substream(1234, fmt.Sprintf("pdes-test/%d", i))
		var tick Handler
		tick = func() {
			now := d.Scheduler().Now()
			logs[i] = append(logs[i], int64(now)<<4|int64(i))
			if rng.Bool(0.3) {
				at := now + lookahead + Time(rng.Intn(int(lookahead)))
				j := i
				d.Post(next, at, func() {
					nd := next.Scheduler().Now()
					logs[next.idx] = append(logs[next.idx], int64(nd)<<4|int64(8+j))
				})
			}
			if again := now + Time(1+rng.Intn(int(lookahead/2+1))); again <= horizon {
				d.Scheduler().At(again, tick)
			}
		}
		d.Scheduler().At(Time(i), tick)
	}
	return e, logs
}

func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	const (
		k        = 4
		la       = Time(50)
		horizon  = Time(20_000)
		baseline = 1
	)
	run := func(workers int) ([][]int64, []uint64, uint64) {
		e, logs := buildPDESModel(k, la, horizon)
		if err := e.Run(horizon, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fired := make([]uint64, k)
		for i := range fired {
			fired[i] = e.Domain(i).Scheduler().Fired()
			if got := e.Domain(i).Scheduler().Now(); got != horizon {
				t.Fatalf("workers=%d domain %d clock = %v, want %v", workers, i, got, horizon)
			}
		}
		return logs, fired, e.Epochs()
	}
	wantLogs, wantFired, wantEpochs := run(baseline)
	for _, w := range []int{2, 4, 8} {
		logs, fired, epochs := run(w)
		if !reflect.DeepEqual(logs, wantLogs) {
			t.Fatalf("workers=%d: execution log diverged from serial", w)
		}
		if !reflect.DeepEqual(fired, wantFired) {
			t.Fatalf("workers=%d: fired counts %v, want %v", w, fired, wantFired)
		}
		if epochs != wantEpochs {
			t.Fatalf("workers=%d: epochs %d, want %d", w, epochs, wantEpochs)
		}
	}
	var total int
	for _, l := range wantLogs {
		total += len(l)
	}
	if total < 1000 {
		t.Fatalf("model too small to be meaningful: %d events", total)
	}
}

// TestEngineMergeOrder pins the deterministic merge rule: same-instant
// cross-domain messages execute ordered by sender domain index, then by
// each sender's posting sequence.
func TestEngineMergeOrder(t *testing.T) {
	e := NewEngine(3, 10)
	var got []string
	deliver := func(tag string) Handler { return func() { got = append(got, tag) } }
	// Post from domains 2 and 1 (reverse index order, interleaved seq) for
	// the same arrival instant; add a later instant to check time ordering.
	e.Domain(2).Post(e.Domain(0), 100, deliver("d2s0"))
	e.Domain(1).Post(e.Domain(0), 100, deliver("d1s0"))
	e.Domain(2).Post(e.Domain(0), 100, deliver("d2s1"))
	e.Domain(1).Post(e.Domain(0), 50, deliver("d1-early"))
	if err := e.Run(200, 1); err != nil {
		t.Fatal(err)
	}
	want := []string{"d1-early", "d1s0", "d2s0", "d2s1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order = %v, want %v", got, want)
	}
}

func TestEnginePostViolationPanics(t *testing.T) {
	e := NewEngine(2, 100)
	e.Domain(0).Scheduler().At(0, func() {
		e.Domain(0).Post(e.Domain(1), 10, func() {}) // < window end: must panic
	})
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
	}()
	_ = e.Run(1000, 1)
}

func TestEngineParallelWindowPanicReported(t *testing.T) {
	e := NewEngine(2, 100)
	e.Domain(1).Scheduler().At(5, func() { panic("boom") })
	err := e.Run(1000, 2)
	if err == nil {
		t.Fatal("want error from panicking window")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(2, 10)
	d := e.Domain(0)
	var tick Handler
	tick = func() { d.Scheduler().After(time.Nanosecond, tick) }
	d.Scheduler().At(0, tick)
	d.Scheduler().At(500, func() { e.Stop() })
	if err := e.Run(1_000_000, 1); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestEngineRequiresLookahead(t *testing.T) {
	e := NewEngine(2, 0)
	if err := e.Run(100, 1); err == nil {
		t.Fatal("Run with zero lookahead should fail")
	}
}

// TestEngineMultiRun checks messages in flight across a Run boundary are
// neither lost nor reordered: a ping-pong spanning two RunFor calls ends
// with the same totals as one long run.
func TestEngineMultiRun(t *testing.T) {
	build := func() (*Engine, *int) {
		e := NewEngine(2, 25)
		n := new(int)
		var ping, pong Handler
		ping = func() {
			*n++
			e.Domain(0).Post(e.Domain(1), e.Domain(0).Scheduler().Now()+25, pong)
		}
		pong = func() {
			*n++
			e.Domain(1).Post(e.Domain(0), e.Domain(1).Scheduler().Now()+25, ping)
		}
		e.Domain(0).Scheduler().At(0, ping)
		return e, n
	}
	one, n1 := build()
	if err := one.Run(10_000, 1); err != nil {
		t.Fatal(err)
	}
	two, n2 := build()
	if err := two.Run(4_987, 2); err != nil {
		t.Fatal(err)
	}
	if err := two.Run(10_000, 2); err != nil {
		t.Fatal(err)
	}
	if *n1 != *n2 || *n1 == 0 {
		t.Fatalf("split run executed %d events, single run %d", *n2, *n1)
	}
}

// TestEngineCrossDomainMessageAllocFree guards the acceptance criterion:
// the steady-state cross-domain fast path — Post (pooled message, reused
// outbox), barrier merge (reused scratch, pooled scheduler nodes), delivery
// — performs zero allocations per message.
func TestEngineCrossDomainMessageAllocFree(t *testing.T) {
	e := NewEngine(2, 25)
	var ping, pong Handler
	ping = func() {
		e.Domain(0).Post(e.Domain(1), e.Domain(0).Scheduler().Now()+25, pong)
	}
	pong = func() {
		e.Domain(1).Post(e.Domain(0), e.Domain(1).Scheduler().Now()+25, ping)
	}
	e.Domain(0).Scheduler().At(0, ping)
	// Warm pools: message structs, outbox slices, scheduler nodes, scratch.
	if err := e.RunFor(10_000, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.RunFor(1_000, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cross-domain message path allocated %.1f/op, want 0", allocs)
	}
	st0, st1 := e.Domain(0).Stats(), e.Domain(1).Stats()
	if st0.MsgsOut == 0 || st0.MsgsOut != st1.MsgsIn || st1.MsgsOut != st0.MsgsIn {
		t.Fatalf("message accounting inconsistent: %+v %+v", st0, st1)
	}
}

// TestHorizonLagRunningMax pins the DomainStats.HorizonLag regression:
// the stat must report the maximum lag across every window, not the last
// window's value. Domain 1 trails the frontier by 44 in the first epoch
// but finishes the final window right at its edge (lag 0); the old
// last-window-only accounting reported 0, which made the stat useless for
// post-run straggler diagnosis.
func TestHorizonLagRunningMax(t *testing.T) {
	e := NewEngine(2, 50)
	noop := func() {}
	e.Domain(0).Scheduler().At(0, noop)
	e.Domain(0).Scheduler().At(1000, noop)
	e.Domain(1).Scheduler().At(5, noop)
	e.Domain(1).Scheduler().At(1049, noop)
	if err := e.Run(2000, 1); err != nil {
		t.Fatal(err)
	}
	// Epoch 1 window is [0,50): domain 1 ends at clock 5, lag 49-5 = 44.
	// Epoch 2 window is [1000,1050): domain 1 ends at 1049, lag 0.
	if got := e.Domain(1).Stats().HorizonLag; got != 44 {
		t.Fatalf("domain 1 HorizonLag = %d, want running max 44", got)
	}
	// Domain 0 lags 49 in both windows.
	if got := e.Domain(0).Stats().HorizonLag; got != 49 {
		t.Fatalf("domain 0 HorizonLag = %d, want 49", got)
	}
}

func TestEngineIdleDomains(t *testing.T) {
	e := NewEngine(4, 10)
	fired := 0
	e.Domain(0).Scheduler().At(7, func() { fired++ })
	if err := e.Run(100, 4); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	for i := 0; i < 4; i++ {
		if now := e.Domain(i).Scheduler().Now(); now != 100 {
			t.Fatalf("domain %d clock %v, want 100", i, now)
		}
	}
}
