package testbed

import (
	"time"

	"ddoshield/internal/botnet"
	"ddoshield/internal/dataset"
	"ddoshield/internal/features"
	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// DatasetCollector turns tapped traffic into a labeled dataset, the
// testbed's replacement for the paper's capture-then-preprocess pipeline:
// every packet of every closed window becomes one labeled feature vector.
type DatasetCollector struct {
	extractor *features.Extractor
	labeler   func(b *features.Basic) int
	ds        *dataset.Dataset
	detached  bool
}

// NewDatasetCollector builds a collector over the given window size
// labeled by the testbed's ground-truth oracle.
func (tb *Testbed) NewDatasetCollector(window time.Duration) *DatasetCollector {
	dc := &DatasetCollector{
		labeler: tb.Labeler(),
		ds:      dataset.New(features.Names()),
	}
	dc.extractor = features.NewExtractor(window, dc.onWindow)
	return dc
}

func (dc *DatasetCollector) onWindow(w *features.Window) {
	for i := range w.Packets {
		b := &w.Packets[i]
		x := features.AppendVector(make([]float64, 0, features.NumFeatures()), b, &w.Stats)
		dc.ds.Add(x, dc.labeler(b))
	}
}

// Tap returns the capture tap to install with Testbed.AddTap.
func (dc *DatasetCollector) Tap() netsim.Tap {
	return func(t sim.Time, raw []byte) {
		if dc.detached {
			return
		}
		// Pooled decode: AddPacket copies the Basic features out by value,
		// so the Packet never outlives the tap callback.
		p := packet.Acquire()
		if err := packet.DecodeInto(p, t, raw); err == nil {
			dc.extractor.AddPacket(p)
		}
		p.Release()
	}
}

// Detach stops consuming traffic (the tap cannot be physically removed).
func (dc *DatasetCollector) Detach() { dc.detached = true }

// Dataset closes the trailing window and returns the corpus.
func (dc *DatasetCollector) Dataset() *dataset.Dataset {
	dc.extractor.Flush()
	return dc.ds
}

// ThroughputSample is one point of a per-interval byte-rate timeline.
type ThroughputSample struct {
	Time sim.Time
	// RxBytes is bytes received by the observed NIC during the interval.
	RxBytes uint64
	// TxBytes is bytes sent by the observed NIC during the interval.
	TxBytes uint64
}

// ThroughputSampler records a NIC's per-interval receive/send volume —
// the "alterations in the target server's throughput" measurement DDoSim
// reports during attacks.
type ThroughputSampler struct {
	nic      *netsim.NIC
	ticker   *sim.Ticker
	interval time.Duration
	lastRx   uint64
	lastTx   uint64
	samples  []ThroughputSample
}

// NewThroughputSampler starts sampling the TServer's NIC every interval
// (default 1 s).
func (tb *Testbed) NewThroughputSampler(interval time.Duration) *ThroughputSampler {
	if interval <= 0 {
		interval = time.Second
	}
	ts := &ThroughputSampler{nic: tb.tserver.Host().NIC(), interval: interval}
	_, ts.lastRx, _, ts.lastTx = ts.nic.Stats()
	ts.ticker = tb.sched.Every(interval, func() {
		_, rx, _, tx := ts.nic.Stats()
		ts.samples = append(ts.samples, ThroughputSample{
			Time:    tb.sched.Now(),
			RxBytes: rx - ts.lastRx,
			TxBytes: tx - ts.lastTx,
		})
		ts.lastRx, ts.lastTx = rx, tx
	})
	return ts
}

// Stop halts sampling.
func (ts *ThroughputSampler) Stop() {
	if ts.ticker != nil {
		ts.ticker.Stop()
		ts.ticker = nil
	}
}

// Samples returns the timeline.
func (ts *ThroughputSampler) Samples() []ThroughputSample {
	out := make([]ThroughputSample, len(ts.samples))
	copy(out, ts.samples)
	return out
}

// MeanRxBps averages receive throughput (bits/s) over a time range.
func (ts *ThroughputSampler) MeanRxBps(from, to sim.Time) float64 {
	var bytes uint64
	n := 0
	for _, s := range ts.samples {
		if s.Time > from && s.Time <= to {
			bytes += s.RxBytes
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(bytes) * 8 / (float64(n) * ts.interval.Seconds())
}

// LabelerWithIntervals extends the exact header-based oracle with
// interval+source rules for application-level attacks: a TCP packet
// between a recorded bot and the attack target during a recorded
// HTTP-flood interval is malicious even though its headers are
// protocol-indistinguishable from benign browsing. (A small grace period
// covers requests still in flight when the interval closes.) The paper
// excludes application-level floods precisely because of this labeling
// ambiguity; this labeler makes the extended vector usable.
func (tb *Testbed) LabelerWithIntervals() func(b *features.Basic) int {
	base := tb.Labeler()
	const grace = 2 * sim.Second
	return func(b *features.Basic) int {
		if y := base(b); y == dataset.Malicious {
			return y
		}
		if b.Proto != packet.ProtoTCP {
			return dataset.Benign
		}
		for _, iv := range tb.c2.Intervals() {
			if iv.Cmd.Type != botnet.AttackHTTP {
				continue
			}
			if b.Time < iv.Start || b.Time > iv.End+grace {
				continue
			}
			if b.Dst == addrTServer && b.DstPort == iv.Cmd.Port && containsAddr(iv.Bots, b.Src) {
				return dataset.Malicious
			}
			if b.Src == addrTServer && b.SrcPort == iv.Cmd.Port && containsAddr(iv.Bots, b.Dst) {
				return dataset.Malicious
			}
		}
		return dataset.Benign
	}
}

func containsAddr(addrs []packet.Addr, a packet.Addr) bool {
	for _, x := range addrs {
		if x == a {
			return true
		}
	}
	return false
}
