// Package vae implements a Variational Autoencoder anomaly detector — the
// third §V extension model. The VAE is trained on benign traffic only; at
// detection time a packet whose reconstruction error exceeds a threshold
// calibrated on benign training data is classified malicious. This is the
// classic semi-supervised NIDS formulation: no attack examples are needed
// at all, the detector learns what "normal" looks like.
package vae

import (
	"fmt"
	"math"
	"sort"

	"ddoshield/internal/sim"
)

// Config describes the architecture and training schedule.
type Config struct {
	// Inputs is the feature width (set from the data by Train).
	Inputs int
	// Hidden is the encoder/decoder hidden width (default 32).
	Hidden int
	// Latent is the bottleneck width (default 4).
	Latent int
	// Beta weighs the KL term (default 0.1).
	Beta float64
	// Epochs, LearningRate drive SGD (defaults 10, 0.005).
	Epochs       int
	LearningRate float64
	// ThresholdQuantile calibrates the benign reconstruction-error cut
	// (default 0.995).
	ThresholdQuantile float64
	// Seed drives init, sampling noise and shuffling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.Latent <= 0 {
		c.Latent = 4
	}
	if c.Beta <= 0 {
		c.Beta = 0.1
	}
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.005
	}
	if c.ThresholdQuantile <= 0 || c.ThresholdQuantile >= 1 {
		c.ThresholdQuantile = 0.995
	}
	return c
}

// Model is a trained VAE with its calibrated anomaly threshold. Weight
// matrices are exported for gob; layout: W1 [hidden][in] encoder, W2/W3
// [latent][hidden] mu/logvar heads, W4 [hidden][latent] decoder, W5
// [in][hidden] output.
type Model struct {
	Cfg Config
	W1  [][]float64
	B1  []float64
	W2  [][]float64
	B2  []float64
	W3  [][]float64
	B3  []float64
	W4  [][]float64
	B4  []float64
	W5  [][]float64
	B5  []float64
	// Threshold is the reconstruction-error cut for Predict.
	Threshold float64
}

// Name implements ml.Classifier.
func (m *Model) Name() string { return "vae" }

// Predict returns 1 (malicious) when reconstruction error exceeds the
// calibrated benign threshold.
func (m *Model) Predict(x []float64) int {
	if m.ReconError(x) > m.Threshold {
		return 1
	}
	return 0
}

// MemoryBytes reports the live model footprint.
func (m *Model) MemoryBytes() int64 {
	count := func(w [][]float64) int64 {
		var n int64
		for _, r := range w {
			n += int64(len(r))
		}
		return n
	}
	params := count(m.W1) + count(m.W2) + count(m.W3) + count(m.W4) + count(m.W5) +
		int64(len(m.B1)+len(m.B2)+len(m.B3)+len(m.B4)+len(m.B5))
	acts := int64(m.Cfg.Hidden*2 + m.Cfg.Latent*2 + m.Cfg.Inputs)
	return (params + acts) * 8
}

func relu(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

func matVec(w [][]float64, b, x, out []float64) []float64 {
	for i := range w {
		s := b[i]
		row := w[i]
		for j, v := range x {
			s += row[j] * v
		}
		out[i] = s
	}
	return out
}

// ReconError computes mean squared reconstruction error through the
// deterministic (z = mu) path.
func (m *Model) ReconError(x []float64) float64 {
	c := m.Cfg
	h1 := make([]float64, c.Hidden)
	matVec(m.W1, m.B1, x, h1)
	for i := range h1 {
		h1[i] = relu(h1[i])
	}
	mu := make([]float64, c.Latent)
	matVec(m.W2, m.B2, h1, mu)
	h2 := make([]float64, c.Hidden)
	matVec(m.W4, m.B4, mu, h2)
	for i := range h2 {
		h2[i] = relu(h2[i])
	}
	xhat := make([]float64, c.Inputs)
	matVec(m.W5, m.B5, h2, xhat)
	var mse float64
	for i := range x {
		d := x[i] - xhat[i]
		mse += d * d
	}
	return mse / float64(len(x))
}

// Train fits the VAE on the benign rows of (xs, ys) and calibrates the
// detection threshold on those rows' reconstruction errors.
func Train(cfg Config, xs [][]float64, ys []int) (*Model, error) {
	var benign [][]float64
	for i := range xs {
		if ys[i] == 0 {
			benign = append(benign, xs[i])
		}
	}
	if len(benign) == 0 {
		return nil, fmt.Errorf("vae: no benign rows to train on")
	}
	cfg.Inputs = len(benign[0])
	cfg = cfg.withDefaults()
	rng := sim.Substream(cfg.Seed, "vae")

	mat := func(rows, cols int) [][]float64 {
		scale := math.Sqrt(2 / float64(cols))
		w := make([][]float64, rows)
		for i := range w {
			w[i] = make([]float64, cols)
			for j := range w[i] {
				w[i][j] = rng.NormFloat64() * scale
			}
		}
		return w
	}
	m := &Model{
		Cfg: cfg,
		W1:  mat(cfg.Hidden, cfg.Inputs), B1: make([]float64, cfg.Hidden),
		W2: mat(cfg.Latent, cfg.Hidden), B2: make([]float64, cfg.Latent),
		W3: mat(cfg.Latent, cfg.Hidden), B3: make([]float64, cfg.Latent),
		W4: mat(cfg.Hidden, cfg.Latent), B4: make([]float64, cfg.Hidden),
		W5: mat(cfg.Inputs, cfg.Hidden), B5: make([]float64, cfg.Inputs),
	}
	m.fit(benign, rng)

	// Calibrate the benign reconstruction-error quantile.
	errs := make([]float64, len(benign))
	for i, x := range benign {
		errs[i] = m.ReconError(x)
	}
	sort.Float64s(errs)
	cut := int(float64(len(errs)) * cfg.ThresholdQuantile)
	if cut >= len(errs) {
		cut = len(errs) - 1
	}
	m.Threshold = errs[cut]
	return m, nil
}

// fit runs per-sample SGD on reconstruction + KL loss.
func (m *Model) fit(data [][]float64, rng *sim.RNG) {
	c := m.Cfg
	lr := c.LearningRate
	h1 := make([]float64, c.Hidden)
	mu := make([]float64, c.Latent)
	logvar := make([]float64, c.Latent)
	z := make([]float64, c.Latent)
	eps := make([]float64, c.Latent)
	h2 := make([]float64, c.Hidden)
	xhat := make([]float64, c.Inputs)
	dxhat := make([]float64, c.Inputs)
	dh2 := make([]float64, c.Hidden)
	dz := make([]float64, c.Latent)
	dmu := make([]float64, c.Latent)
	dlogvar := make([]float64, c.Latent)
	dh1 := make([]float64, c.Hidden)

	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < c.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			x := data[idx]
			// Forward.
			matVec(m.W1, m.B1, x, h1)
			for i := range h1 {
				h1[i] = relu(h1[i])
			}
			matVec(m.W2, m.B2, h1, mu)
			matVec(m.W3, m.B3, h1, logvar)
			for i := range z {
				if logvar[i] > 10 {
					logvar[i] = 10 // clamp for numeric safety
				}
				eps[i] = rng.NormFloat64()
				z[i] = mu[i] + math.Exp(0.5*logvar[i])*eps[i]
			}
			matVec(m.W4, m.B4, z, h2)
			for i := range h2 {
				h2[i] = relu(h2[i])
			}
			matVec(m.W5, m.B5, h2, xhat)

			// Backward: reconstruction term.
			invD := 1 / float64(c.Inputs)
			for i := range dxhat {
				dxhat[i] = 2 * (xhat[i] - x[i]) * invD
			}
			for i := range dh2 {
				dh2[i] = 0
			}
			for i := range m.W5 {
				g := dxhat[i]
				row := m.W5[i]
				for j := range row {
					dh2[j] += row[j] * g
					row[j] -= lr * g * h2[j]
				}
				m.B5[i] -= lr * g
			}
			for i := range dh2 {
				if h2[i] <= 0 {
					dh2[i] = 0
				}
			}
			for i := range dz {
				dz[i] = 0
			}
			for i := range m.W4 {
				g := dh2[i]
				if g == 0 {
					continue
				}
				row := m.W4[i]
				for j := range row {
					dz[j] += row[j] * g
					row[j] -= lr * g * z[j]
				}
				m.B4[i] -= lr * g
			}
			// KL term gradients + reparameterization.
			invL := c.Beta / float64(c.Latent)
			for i := range dmu {
				dmu[i] = dz[i] + invL*mu[i]
				dlogvar[i] = dz[i]*eps[i]*0.5*math.Exp(0.5*logvar[i]) + invL*0.5*(math.Exp(logvar[i])-1)
			}
			for i := range dh1 {
				dh1[i] = 0
			}
			for i := range m.W2 {
				g := dmu[i]
				row := m.W2[i]
				for j := range row {
					dh1[j] += row[j] * g
					row[j] -= lr * g * h1[j]
				}
				m.B2[i] -= lr * g
			}
			for i := range m.W3 {
				g := dlogvar[i]
				row := m.W3[i]
				for j := range row {
					dh1[j] += row[j] * g
					row[j] -= lr * g * h1[j]
				}
				m.B3[i] -= lr * g
			}
			for i := range dh1 {
				if h1[i] <= 0 {
					dh1[i] = 0
				}
			}
			for i := range m.W1 {
				g := dh1[i]
				if g == 0 {
					continue
				}
				row := m.W1[i]
				for j := range row {
					row[j] -= lr * g * x[j]
				}
				m.B1[i] -= lr * g
			}
		}
	}
}
