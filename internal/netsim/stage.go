package netsim

import (
	"strconv"

	"ddoshield/internal/packet"
)

// Stage is a construction context for building one slice of the topology off
// the main goroutine. Fleet-scale builds split the access layer into
// per-edge-group stages: each stage owns a pre-reserved, contiguous range of
// MAC addresses and link creation indices (so identity assignment is a pure
// function of topology, not of goroutine interleaving), buffers every node
// and link it creates locally, and defers per-entity metric registration.
// Stages are created serially, in canonical group order, via NewStage;
// populated concurrently (one goroutine per stage, touching only
// stage-local and entity-local state); and folded back into the network
// serially, again in canonical order, via Merge. A build that runs its
// stages sequentially on one goroutine produces byte-identical topology —
// that equivalence is what the SerialBuild regression pins.
type Stage struct {
	net *Network

	macNext, macEnd   uint64 // half-open reserved MAC ordinal range
	linkNext, linkEnd int    // half-open reserved link index range

	nodes []*Node
	links []*Link
	// regOrder replays per-entity metric registration at Merge in exactly
	// the order the stage created entities, so the metric-entity cap cuts
	// off at the same entity as a sequential build.
	regOrder []stagedReg
}

type stagedReg struct {
	nic  *NIC
	link *Link
}

// NewStage reserves identity ranges for a stage that will create exactly
// nics NICs and links links. Must be called from the construction
// goroutine, before any stage is being populated concurrently; reservations
// are handed out in call order. The count contract is strict — Merge panics
// if a stage allocated more or fewer identities than reserved, because a
// mismatch would silently shift every later entity's identity away from the
// equivalent sequential build.
func (n *Network) NewStage(nics, links int) *Stage {
	// Pre-create every arrival queue a staged Connect could bind, so the
	// lazily-built queue map is strictly read-only while stages run.
	n.arrivalQueueFor(n.sched)
	if n.engine != nil {
		for i := 0; i < n.engine.NumDomains(); i++ {
			n.arrivalQueueFor(n.engine.Domain(i).Scheduler())
		}
	}
	st := &Stage{
		net:      n,
		macNext:  n.macSeq + 1,
		macEnd:   n.macSeq + uint64(nics) + 1,
		linkNext: n.linkSeq,
		linkEnd:  n.linkSeq + links,
		nodes:    make([]*Node, 0, nics),
		links:    make([]*Link, 0, links),
		regOrder: make([]stagedReg, 0, nics+links),
	}
	n.macSeq += uint64(nics)
	n.linkSeq += links
	return st
}

// Network returns the network the stage builds into.
func (st *Stage) Network() *Network { return st.net }

func (st *Stage) nextMAC() uint64 {
	if st.macNext >= st.macEnd {
		panic("netsim: stage exceeded its reserved MAC range")
	}
	m := st.macNext
	st.macNext++
	return m
}

func (st *Stage) nextLinkIdx() int {
	if st.linkNext >= st.linkEnd {
		panic("netsim: stage exceeded its reserved link index range")
	}
	i := st.linkNext
	st.linkNext++
	return i
}

// NewNodeInDomain adds a host node to the stage. Unlike the network-level
// variant there is no duplicate-name rename — the caller must guarantee
// global uniqueness (fleet builders derive names from global device
// indices); Merge panics on a collision.
func (st *Stage) NewNodeInDomain(name string, domain int) *Node {
	node := &Node{net: st.net, name: name, stage: st}
	node.dom, node.sched = st.net.domainFor(domain)
	st.nodes = append(st.nodes, node)
	return node
}

// Connect wires two ports exactly like Network.Connect, except the link's
// creation index comes from the stage's reserved range and registration is
// deferred to Merge. Both ports must be stage-local or otherwise untouched
// by concurrent stages (a switch created before the fan-out and owned by
// this stage's group qualifies). Sharing cfg.RNG across concurrently built
// links is not supported — loss streams must key off the network seed.
func (st *Stage) Connect(a, b Port, cfg LinkConfig) *Link {
	if cfg.LossProb > 0 && cfg.RNG != nil {
		panic("netsim: staged Connect cannot split a shared loss RNG; leave cfg.RNG nil")
	}
	l := wireLink(st.net, a, b, cfg, st.nextLinkIdx())
	st.links = append(st.links, l)
	st.regOrder = append(st.regOrder, stagedReg{link: l})
	return l
}

// addNIC is the staged arm of Node.AddNIC.
func (st *Stage) addNIC(nd *Node) *NIC {
	nic := &NIC{node: nd, mac: packet.MACFromUint64(st.nextMAC()), index: len(nd.nics)}
	nic.name = nd.name + "/eth" + strconv.Itoa(nic.index)
	nd.nics = append(nd.nics, nic)
	st.regOrder = append(st.regOrder, stagedReg{nic: nic})
	return nic
}

// Merge folds populated stages back into the network, in argument order:
// nodes and links are adopted into the shared collections, node names claim
// their nameSet entries, and deferred metric registration replays in
// per-stage creation order. Call from the construction goroutine after
// every stage's populating goroutine has finished.
func (n *Network) Merge(stages ...*Stage) {
	for _, st := range stages {
		if st.macNext != st.macEnd {
			panic("netsim: stage allocated fewer MACs than reserved")
		}
		if st.linkNext != st.linkEnd {
			panic("netsim: stage allocated fewer link indices than reserved")
		}
		for _, nd := range st.nodes {
			if n.nameSet[nd.name] {
				panic("netsim: staged node name collision: " + nd.name)
			}
			n.nameSet[nd.name] = true
			nd.stage = nil
			n.nodes = append(n.nodes, nd)
		}
		n.links = append(n.links, st.links...)
		for _, r := range st.regOrder {
			switch {
			case r.nic != nil:
				n.registerNIC(r.nic)
			case r.link != nil:
				n.registerLink(r.link)
			}
		}
		st.nodes, st.links, st.regOrder = nil, nil, nil
	}
}
