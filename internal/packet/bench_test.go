package packet

import "testing"

func benchFrameArgs() (MAC, MAC, IPv4, TCP, []byte) {
	src := MACFromUint64(1)
	dst := MACFromUint64(2)
	ip := IPv4{Src: AddrFrom4(10, 0, 0, 1), Dst: AddrFrom4(10, 0, 0, 2), TTL: 64}
	tcp := TCP{SrcPort: 40000, DstPort: 80, Seq: 1234, Ack: 5678, Flags: FlagSYN, Window: 65535}
	payload := []byte("GET / HTTP/1.1\r\n\r\n")
	return src, dst, ip, tcp, payload
}

// BenchmarkPacketRoundtrip measures the capture hot path: build a TCP frame
// into a reused buffer, then dissect it into a pooled Packet. The alloc
// guard below pins the reused-buffer path at zero allocations.
func BenchmarkPacketRoundtrip(b *testing.B) {
	src, dst, ip, tcp, payload := benchFrameArgs()
	buf := make([]byte, 0, 128)
	p := Acquire()
	defer p.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendTCP(buf[:0], src, dst, ip, tcp, payload)
		if err := DecodeInto(p, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketBuild measures the one-allocation Build path the flood
// engines use (the link retains frames in flight, so they cannot reuse a
// send buffer).
func BenchmarkPacketBuild(b *testing.B) {
	src, dst, ip, tcp, payload := benchFrameArgs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = BuildTCP(src, dst, ip, tcp, payload)
	}
}

func TestPacketRoundtripAllocs(t *testing.T) {
	src, dst, ip, tcp, payload := benchFrameArgs()
	buf := make([]byte, 0, 128)
	p := Acquire()
	defer p.Release()
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendTCP(buf[:0], src, dst, ip, tcp, payload)
		if err := DecodeInto(p, 0, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("append+decode roundtrip allocated %.1f/op, want 0", allocs)
	}
}

// TestAppendMatchesBuild pins the Append* builders to the Build* wire format.
func TestAppendMatchesBuild(t *testing.T) {
	src, dst, ip, tcp, payload := benchFrameArgs()
	built := BuildTCP(src, dst, ip, tcp, payload)
	appended := AppendTCP(nil, src, dst, ip, tcp, payload)
	if string(built) != string(appended) {
		t.Fatal("AppendTCP wire format diverges from BuildTCP")
	}
	udp := UDP{SrcPort: 53, DstPort: 9999}
	if string(BuildUDP(src, dst, ip, udp, payload)) != string(AppendUDP(nil, src, dst, ip, udp, payload)) {
		t.Fatal("AppendUDP wire format diverges from BuildUDP")
	}
	arp := ARP{Op: ARPRequest}
	if string(BuildARP(src, BroadcastMAC, arp)) != string(AppendARP(nil, src, BroadcastMAC, arp)) {
		t.Fatal("AppendARP wire format diverges from BuildARP")
	}
}
