package features

import (
	"math"
	"testing"
	"time"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

func tcpBasic(t sim.Time, src, dst byte, srcPort, dstPort uint16, flags uint8, seq uint32) Basic {
	return Basic{
		Time: t, Src: packet.AddrFrom4(10, 0, 0, src), Dst: packet.AddrFrom4(10, 0, 1, dst),
		Proto: packet.ProtoTCP, SrcPort: srcPort, DstPort: dstPort,
		Length: 60, Flags: flags, Seq: seq,
	}
}

func udpBasic(t sim.Time, src byte, dstPort uint16) Basic {
	return Basic{
		Time: t, Src: packet.AddrFrom4(10, 0, 0, src), Dst: packet.AddrFrom4(10, 0, 1, 1),
		Proto: packet.ProtoUDP, SrcPort: 4000, DstPort: dstPort, Length: 554,
	}
}

func TestFromPacket(t *testing.T) {
	raw := packet.BuildTCP(packet.MACFromUint64(1), packet.MACFromUint64(2),
		packet.IPv4{TTL: 64, Src: packet.MustParseAddr("10.0.0.5"), Dst: packet.MustParseAddr("10.0.1.1")},
		packet.TCP{SrcPort: 40000, DstPort: 80, Seq: 777, Flags: packet.FlagSYN, Window: 512},
		nil)
	p, err := packet.Decode(2*sim.Second, raw)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := FromPacket(p)
	if !ok {
		t.Fatal("TCP packet not feature-bearing")
	}
	if b.SrcPort != 40000 || b.DstPort != 80 || b.Seq != 777 || b.Flags != packet.FlagSYN {
		t.Fatalf("basic = %+v", b)
	}
	// ARP is not feature-bearing.
	arpRaw := packet.BuildARP(packet.MACFromUint64(1), packet.BroadcastMAC, packet.ARP{Op: packet.ARPRequest})
	ap, err := packet.Decode(0, arpRaw)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := FromPacket(ap); ok {
		t.Fatal("ARP marked feature-bearing")
	}
}

func TestStatsBenignWindow(t *testing.T) {
	// A handshake plus data: SYN, SYN-ACK, ACK, data.
	pkts := []Basic{
		tcpBasic(0, 5, 1, 40000, 80, packet.FlagSYN, 100),
		tcpBasic(10*sim.Millisecond, 1, 5, 80, 40000, packet.FlagSYN|packet.FlagACK, 200),
		tcpBasic(20*sim.Millisecond, 5, 1, 40000, 80, packet.FlagACK, 101),
		tcpBasic(30*sim.Millisecond, 5, 1, 40000, 80, packet.FlagACK|packet.FlagPSH, 101),
	}
	st := ComputeStats(pkts)
	if st.PacketCount != 4 || st.ByteCount != 240 {
		t.Fatalf("counts: %+v", st)
	}
	if st.SynCount != 1 || st.SynAckCount != 1 {
		t.Fatalf("syn counting: %+v", st)
	}
	if st.SynNoAckRatio != 0.5 { // 1/(1+1)
		t.Fatalf("SynNoAckRatio = %v", st.SynNoAckRatio)
	}
	if st.RepeatedConnAttempts != 0 {
		t.Fatalf("RepeatedConnAttempts = %d", st.RepeatedConnAttempts)
	}
	if st.UDPFraction != 0 {
		t.Fatalf("UDPFraction = %v", st.UDPFraction)
	}
	// Sequence numbers are clustered: tiny normalized std.
	if st.SeqStd > 0.01 {
		t.Fatalf("SeqStd = %v for clustered seqs", st.SeqStd)
	}
}

func TestStatsFloodWindowSignature(t *testing.T) {
	// A SYN flood: every packet a pure SYN from a distinct source with a
	// random sequence number.
	rng := sim.NewRNG(1)
	pkts := make([]Basic, 0, 500)
	for i := 0; i < 500; i++ {
		pkts = append(pkts, tcpBasic(
			sim.Time(i)*sim.Millisecond,
			byte(i%250), 1,
			uint16(1024+rng.Intn(60000)), 80,
			packet.FlagSYN, rng.Uint32()))
	}
	st := ComputeStats(pkts)
	if st.SynCount != 500 || st.SynAckCount != 0 {
		t.Fatalf("syn counting: %+v", st)
	}
	if st.SynNoAckRatio != 500 {
		t.Fatalf("SynNoAckRatio = %v", st.SynNoAckRatio)
	}
	// Random 32-bit seqs: normalized std near uniform value 1/sqrt(12)≈0.289.
	if st.SeqStd < 0.2 || st.SeqStd > 0.4 {
		t.Fatalf("SeqStd = %v for random seqs", st.SeqStd)
	}
	if st.ShortLivedConns < 400 {
		t.Fatalf("ShortLivedConns = %d", st.ShortLivedConns)
	}
	if st.RepeatedConnAttempts < 200 {
		// 500 SYNs across 250 (src,dst,port) triples: every triple repeats.
		t.Fatalf("RepeatedConnAttempts = %d", st.RepeatedConnAttempts)
	}
	if st.SrcAddrEntropy < 7 { // 250 sources ≈ 7.97 bits
		t.Fatalf("SrcAddrEntropy = %v", st.SrcAddrEntropy)
	}
	if st.DstPortEntropy != 0 { // single target port
		t.Fatalf("DstPortEntropy = %v", st.DstPortEntropy)
	}
}

func TestStatsUDPFloodSignature(t *testing.T) {
	rng := sim.NewRNG(2)
	pkts := make([]Basic, 0, 300)
	for i := 0; i < 300; i++ {
		pkts = append(pkts, udpBasic(sim.Time(i)*sim.Millisecond, 7, uint16(1024+rng.Intn(60000))))
	}
	st := ComputeStats(pkts)
	if st.UDPFraction != 1 {
		t.Fatalf("UDPFraction = %v", st.UDPFraction)
	}
	if st.DstPortEntropy < 7 { // sprayed ports: high entropy
		t.Fatalf("DstPortEntropy = %v", st.DstPortEntropy)
	}
	if st.UniqueDstPorts < 250 {
		t.Fatalf("UniqueDstPorts = %d", st.UniqueDstPorts)
	}
}

func TestEntropyKnownValues(t *testing.T) {
	// Uniform over 4 symbols: 2 bits.
	h := entropy(map[int]int{1: 5, 2: 5, 3: 5, 4: 5}, 20)
	if math.Abs(h-2) > 1e-12 {
		t.Fatalf("entropy = %v, want 2", h)
	}
	// Single symbol: 0 bits.
	if got := entropy(map[int]int{1: 9}, 9); got != 0 {
		t.Fatalf("entropy = %v, want 0", got)
	}
	if got := entropy(map[int]int{}, 0); got != 0 {
		t.Fatalf("empty entropy = %v", got)
	}
}

func TestEmptyStats(t *testing.T) {
	st := ComputeStats(nil)
	if st.PacketCount != 0 || st.MeanPacketLen != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
}

func TestVectorLayout(t *testing.T) {
	if len(Names()) != NumFeatures() {
		t.Fatalf("Names()=%d NumFeatures()=%d", len(Names()), NumFeatures())
	}
	b := tcpBasic(0, 5, 1, 40000, 80, packet.FlagSYN|packet.FlagPSH, 1)
	st := ComputeStats([]Basic{b})
	v := AppendVector(nil, &b, &st)
	if len(v) != NumFeatures() {
		t.Fatalf("vector length = %d, want %d", len(v), NumFeatures())
	}
	names := Names()
	at := func(name string) float64 {
		for i, n := range names {
			if n == name {
				return v[i]
			}
		}
		t.Fatalf("feature %q missing", name)
		return 0
	}
	if at("proto_tcp") != 1 || at("proto_udp") != 0 {
		t.Fatal("protocol one-hot wrong")
	}
	if at("flag_syn") != 1 || at("flag_psh") != 1 || at("flag_ack") != 0 {
		t.Fatal("flag encoding wrong")
	}
	if at("pkt_len") != 60 {
		t.Fatal("pkt_len wrong")
	}
	if at("win_pkt_count") != 1 {
		t.Fatal("stat block wrong")
	}
}

func TestStatisticalBlockSharedAcrossWindowPackets(t *testing.T) {
	pkts := []Basic{
		tcpBasic(0, 5, 1, 40000, 80, packet.FlagSYN, 1),
		udpBasic(100*sim.Millisecond, 6, 1900),
		tcpBasic(200*sim.Millisecond, 7, 1, 40001, 80, packet.FlagACK, 2),
	}
	w := &Window{Packets: pkts, Stats: ComputeStats(pkts)}
	vecs := w.Vectors()
	nb := NumBasic()
	for i := 1; i < len(vecs); i++ {
		for j := nb; j < NumFeatures(); j++ {
			if vecs[i][j] != vecs[0][j] {
				t.Fatalf("stat feature %d differs between packets in one window", j)
			}
		}
	}
	// Basic block must differ (different protocols).
	same := true
	for j := 0; j < nb; j++ {
		if vecs[0][j] != vecs[1][j] {
			same = false
		}
	}
	if same {
		t.Fatal("basic blocks identical for different packets")
	}
}

// cloneWindow deep-copies an emitted window: the extractor reuses its
// emission buffer across windows, so tests that retain windows must copy.
func cloneWindow(w *Window) *Window {
	c := *w
	c.Packets = append([]Basic(nil), w.Packets...)
	return &c
}

func TestExtractorWindowing(t *testing.T) {
	var windows []*Window
	e := NewExtractor(time.Second, func(w *Window) { windows = append(windows, cloneWindow(w)) })
	// 3 packets in window 0, 2 in window 2 (window 1 empty).
	e.Add(tcpBasic(100*sim.Millisecond, 1, 1, 1, 80, 0, 0))
	e.Add(tcpBasic(500*sim.Millisecond, 1, 1, 1, 80, 0, 0))
	e.Add(tcpBasic(999*sim.Millisecond, 1, 1, 1, 80, 0, 0))
	e.Add(tcpBasic(2100*sim.Millisecond, 1, 1, 1, 80, 0, 0))
	e.Add(tcpBasic(2900*sim.Millisecond, 1, 1, 1, 80, 0, 0))
	e.Flush()
	if len(windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(windows))
	}
	if len(windows[0].Packets) != 3 || len(windows[1].Packets) != 2 {
		t.Fatalf("window sizes = %d/%d", len(windows[0].Packets), len(windows[1].Packets))
	}
	if windows[0].Start != 0 || windows[1].Start != 2*sim.Second {
		t.Fatalf("window starts = %v/%v", windows[0].Start, windows[1].Start)
	}
	wins, pkts := e.Counts()
	if wins != 2 || pkts != 5 {
		t.Fatalf("counts = %d/%d", wins, pkts)
	}
}

func TestExtractorCustomWindow(t *testing.T) {
	var windows []*Window
	e := NewExtractor(5*time.Second, func(w *Window) { windows = append(windows, cloneWindow(w)) })
	if e.WindowSize() != 5*time.Second {
		t.Fatal("WindowSize")
	}
	for i := 0; i < 10; i++ {
		e.Add(tcpBasic(sim.Time(i)*sim.Second, 1, 1, 1, 80, 0, 0))
	}
	e.Flush()
	if len(windows) != 2 {
		t.Fatalf("windows = %d, want 2 at 5s granularity", len(windows))
	}
}

func TestExtractorDoubleFlushSafe(t *testing.T) {
	n := 0
	e := NewExtractor(time.Second, func(*Window) { n++ })
	e.Add(tcpBasic(0, 1, 1, 1, 80, 0, 0))
	e.Flush()
	e.Flush()
	if n != 1 {
		t.Fatalf("flushes emitted %d windows", n)
	}
}
