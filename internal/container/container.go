// Package container provides the Docker-container analog of the testbed:
// named, isolated execution contexts that host an application (an IoT
// binary, the attacker toolkit, the target servers or the IDS), own a
// network stack bound to a simulated NIC, and meter their own CPU and
// memory consumption. The paper uses Docker for exactly these observable
// properties — isolation, a network namespace bridged into NS-3, and
// `docker stats`-style resource metrics — all of which this package
// reproduces inside the simulation process.
package container

import (
	"fmt"
	"time"

	"ddoshield/internal/netsim"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
)

// State is a container lifecycle state.
type State int

// Container lifecycle states.
const (
	StateCreated State = iota + 1
	StateRunning
	StateStopped
)

// String renders the lifecycle state.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// App is the workload a container hosts. Start is invoked when the
// container starts and must register all simulation callbacks; Stop must
// cancel them.
type App interface {
	Start(c *Container)
	Stop()
}

// AppFuncs adapts a pair of functions to the App interface.
type AppFuncs struct {
	OnStart func(c *Container)
	OnStop  func()
}

// Start implements App.
func (a AppFuncs) Start(c *Container) {
	if a.OnStart != nil {
		a.OnStart(c)
	}
}

// Stop implements App.
func (a AppFuncs) Stop() {
	if a.OnStop != nil {
		a.OnStop()
	}
}

var _ App = AppFuncs{}

// Runtime creates and tracks containers, the way a Docker daemon does.
type Runtime struct {
	net        *netsim.Network
	containers []*Container
	byName     map[string]*Container
}

// NewRuntime returns a runtime attached to the simulated network.
func NewRuntime(net *netsim.Network) *Runtime {
	return &Runtime{net: net, byName: make(map[string]*Container)}
}

// Network returns the simulated network the runtime attaches containers to.
func (r *Runtime) Network() *netsim.Network { return r.net }

// Spec describes a container to create.
type Spec struct {
	// Name is the unique container name ("attacker", "tserver", "ids", ...).
	Name string
	// Image is a free-form label recorded for diagnostics ("mirai:latest").
	Image string
	// Host configures the container's network stack.
	Host netstack.HostConfig
	// App is the hosted workload (may be nil for bare network containers).
	App App
	// Domain assigns the container's node to a PDES domain when the
	// network is partitioned; ignored (everything is domain 0) otherwise.
	Domain int
}

// Create provisions a container with its own node, NIC and network stack,
// and wires the NIC to the given switch port via link config cfg.
func (r *Runtime) Create(spec Spec, sw *netsim.Switch, link netsim.LinkConfig) (*Container, error) {
	if _, dup := r.byName[spec.Name]; dup {
		return nil, fmt.Errorf("container %q already exists", spec.Name)
	}
	node := r.net.NewNodeInDomain(spec.Name, spec.Domain)
	nic := node.AddNIC()
	port := sw.NewPort()
	l := r.net.Connect(nic, port, link)
	host := netstack.NewHost(nic, spec.Host)
	c := &Container{
		runtime: r,
		name:    spec.Name,
		image:   spec.Image,
		node:    node,
		link:    l,
		port:    port,
		host:    host,
		app:     spec.App,
		state:   StateCreated,
	}
	r.containers = append(r.containers, c)
	r.byName[spec.Name] = c
	return c, nil
}

// CreateStaged provisions a container inside a netsim construction stage:
// node, NIC and link identity come from the stage's reserved ranges, and
// nothing in the runtime's shared tracking structures is touched, so one
// goroutine per stage may create containers concurrently. sw must be owned
// by the stage's builder (an edge switch of the same group). Register the
// result — in canonical order, after netsim.Network.Merge — with Adopt.
func (r *Runtime) CreateStaged(st *netsim.Stage, spec Spec, sw *netsim.Switch, link netsim.LinkConfig) *Container {
	node := st.NewNodeInDomain(spec.Name, spec.Domain)
	nic := node.AddNIC()
	port := sw.NewPort()
	l := st.Connect(nic, port, link)
	host := netstack.NewHost(nic, spec.Host)
	return &Container{
		runtime: r,
		name:    spec.Name,
		image:   spec.Image,
		node:    node,
		link:    l,
		port:    port,
		host:    host,
		app:     spec.App,
		state:   StateCreated,
	}
}

// Adopt registers staged containers into the runtime's tracking structures
// in argument order — the canonical creation order a sequential build would
// have produced. Call after netsim.Network.Merge.
func (r *Runtime) Adopt(cs ...*Container) error {
	for _, c := range cs {
		if _, dup := r.byName[c.name]; dup {
			return fmt.Errorf("container %q already exists", c.name)
		}
		r.containers = append(r.containers, c)
		r.byName[c.name] = c
	}
	return nil
}

// Grow pre-sizes the runtime's container tracking for a build of known
// size (negative or zero hints are ignored).
func (r *Runtime) Grow(n int) {
	if n <= 0 {
		return
	}
	if cap(r.containers)-len(r.containers) < n {
		grown := make([]*Container, len(r.containers), len(r.containers)+n)
		copy(grown, r.containers)
		r.containers = grown
	}
	bigger := make(map[string]*Container, len(r.byName)+n)
	for k, v := range r.byName {
		bigger[k] = v
	}
	r.byName = bigger
}

// Get returns the named container, or nil.
func (r *Runtime) Get(name string) *Container { return r.byName[name] }

// Containers lists containers in creation order.
func (r *Runtime) Containers() []*Container {
	out := make([]*Container, len(r.containers))
	copy(out, r.containers)
	return out
}

// Container is one isolated workload with its own network identity and
// resource accounting.
type Container struct {
	runtime *Runtime
	name    string
	image   string
	node    *netsim.Node
	link    *netsim.Link
	port    netsim.Port
	host    *netstack.Host
	app     App
	state   State

	cpu      time.Duration    // accumulated attributed compute time
	mem      map[string]int64 // labeled live memory accounts, bytes (lazy)
	memPeak  int64
	started  sim.Time
	stopped  sim.Time
	restarts int

	exitCrash bool // last exit was a crash (Kill), not a clean Stop
	crashes   uint64
	sup       *Supervisor
}

// Name returns the container name.
func (c *Container) Name() string { return c.name }

// Image returns the image label.
func (c *Container) Image() string { return c.image }

// Host returns the container's network stack.
func (c *Container) Host() *netstack.Host { return c.host }

// Addr returns the container's IPv4 address.
func (c *Container) Addr() packet.Addr { return c.host.Addr() }

// Link returns the container's uplink; churn models cut and restore it.
func (c *Container) Link() *netsim.Link { return c.link }

// SwitchPort is the switch-side port the container's access link lands on
// (the argument topology primers pass to Switch.Learn).
func (c *Container) SwitchPort() netsim.Port { return c.port }

// State reports the lifecycle state.
func (c *Container) State() State { return c.state }

// StartedAt reports when the container last started.
func (c *Container) StartedAt() sim.Time { return c.started }

// Restarts reports how many times the container has been restarted.
func (c *Container) Restarts() int { return c.restarts }

// Running reports whether the container is currently up (sysmon samples it
// for availability accounting).
func (c *Container) Running() bool { return c.state == StateRunning }

// Crashed reports whether the container's most recent exit was abnormal
// (Kill), as opposed to a clean Stop.
func (c *Container) Crashed() bool { return c.state == StateStopped && c.exitCrash }

// Crashes reports the total number of abnormal exits.
func (c *Container) Crashes() uint64 { return c.crashes }

// Supervisor returns the attached supervisor, or nil when unsupervised.
func (c *Container) Supervisor() *Supervisor { return c.sup }

// emit records a lifecycle trace event in the network's flight recorder
// (a no-op when none is attached). The timestamp is the container's own
// domain clock, which in a partitioned run is the only "now" its events
// may observe.
func (c *Container) emit(event string, value int64) {
	c.runtime.net.Recorder().Emit(c.node.Scheduler().Now(), telemetry.CatContainer, event, c.name, value)
}

// Scheduler is the event queue the container's workload runs on (its
// node's domain scheduler in a partitioned network).
func (c *Container) Scheduler() *sim.Scheduler { return c.node.Scheduler() }

// Start runs the hosted app. Starting a running container is a no-op. A
// manual Start re-enables a supervisor that a manual Stop suspended.
func (c *Container) Start() {
	if c.state == StateRunning {
		return
	}
	if c.state == StateStopped {
		c.restarts++
	}
	c.state = StateRunning
	c.started = c.node.Scheduler().Now()
	c.exitCrash = false
	c.emit("start", int64(c.restarts))
	// Plug in our own side only: side state is owned by the NIC's domain,
	// so a restart never reaches across a domain boundary. The far (switch)
	// side is cut only by fault events, which restore it themselves.
	c.host.NIC().SetLinkUp(true)
	if c.app != nil {
		c.app.Start(c)
	}
	if c.sup != nil && !c.sup.restarting {
		c.sup.noteManualStart()
	}
}

// Stop halts the hosted app and cuts the uplink (the container disappears
// from the network, as `docker stop` makes it do). A manual stop also
// suspends any supervisor — like `docker stop` on a restart=always
// container, the operator's intent to keep it down wins over the restart
// policy, and any already-pending supervised restart is cancelled.
func (c *Container) Stop() {
	if c.sup != nil {
		c.sup.noteManualStop()
	}
	if c.state != StateRunning {
		return
	}
	c.halt(false)
}

// Kill terminates the container abnormally — the crash/OOM analog. Unlike
// Stop, a kill counts as a failure exit, so a supervisor with an on-failure
// or always policy will schedule a restart.
func (c *Container) Kill() {
	if c.state != StateRunning {
		return
	}
	c.halt(true)
	c.crashes++
	if c.sup != nil {
		c.sup.noteExit()
	}
}

func (c *Container) halt(crash bool) {
	c.state = StateStopped
	c.stopped = c.node.Scheduler().Now()
	c.exitCrash = crash
	if crash {
		c.emit("crash", int64(c.crashes+1))
	} else {
		c.emit("stop", 0)
	}
	if c.app != nil {
		c.app.Stop()
	}
	// Unplug our own side only (domain-local; see Start). Frames already
	// heading for the dead container transmit and are then cut in flight.
	c.host.NIC().SetLinkUp(false)
	// With the app stopped its sockets are gone; hand any now-empty stack
	// tables back to the shared pools until the next start needs them.
	c.host.ReleaseIdle()
}

// SetApp replaces the hosted app; the replacement starts with the container.
func (c *Container) SetApp(a App) { c.app = a }

// --- resource accounting (the `docker stats` analog) ---

// AddCPU attributes d of compute time to the container.
func (c *Container) AddCPU(d time.Duration) {
	if d > 0 {
		c.cpu += d
	}
}

// MeterCPU starts a stopwatch and returns a function that, when called,
// attributes the elapsed real time to the container:
//
//	defer c.MeterCPU()()
func (c *Container) MeterCPU() func() {
	start := time.Now()
	return func() { c.AddCPU(time.Since(start)) }
}

// CPUTime reports total attributed compute time.
func (c *Container) CPUTime() time.Duration { return c.cpu }

// SetMem records the live size of a labeled memory account (e.g. "model",
// "window-buffer"). Passing 0 releases the account.
func (c *Container) SetMem(label string, bytes int64) {
	if bytes <= 0 {
		delete(c.mem, label)
	} else {
		if c.mem == nil {
			c.mem = make(map[string]int64)
		}
		c.mem[label] = bytes
	}
	if t := c.MemBytes(); t > c.memPeak {
		c.memPeak = t
	}
}

// MemBytes reports current accounted memory in bytes.
func (c *Container) MemBytes() int64 {
	var t int64
	for _, v := range c.mem {
		t += v
	}
	return t
}

// MemPeakBytes reports the high-water mark of accounted memory.
func (c *Container) MemPeakBytes() int64 { return c.memPeak }

// String renders a `docker ps`-style line.
func (c *Container) String() string {
	return fmt.Sprintf("%s (%s, %s, ip=%v)", c.name, c.image, c.state, c.host.Addr())
}
