package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

// TestWorkersTracksGOMAXPROCS pins the call-time resolution contract:
// Workers(0) follows runtime.GOMAXPROCS as it changes, rather than
// caching the CPU count once at package init.
func TestWorkersTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	runtime.GOMAXPROCS(3)
	if got := Workers(0); got != 3 {
		t.Fatalf("Workers(0) = %d after GOMAXPROCS(3)", got)
	}
	runtime.GOMAXPROCS(old + 2)
	if got := Workers(0); got != old+2 {
		t.Fatalf("Workers(0) = %d after GOMAXPROCS(%d)", got, old+2)
	}
}

// TestForClampsWorkersToN proves a workers count beyond n spawns no idle
// goroutines: with every index parked inside fn, the goroutine count has
// risen by n workers plus the For caller — not by the requested 64.
func TestForClampsWorkersToN(t *testing.T) {
	const n = 2
	before := runtime.NumGoroutine()
	arrived := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		For(n, 64, func(int) {
			arrived <- struct{}{}
			<-release
		})
		close(done)
	}()
	for i := 0; i < n; i++ {
		<-arrived
	}
	added := runtime.NumGoroutine() - before
	close(release)
	<-done
	// n workers + the goroutine calling For; allow a little slack for
	// unrelated runtime goroutines, while still failing loudly if all 64
	// requested workers had been spawned.
	if added > n+3 {
		t.Fatalf("For(%d, 64) added %d goroutines, want ~%d", n, added, n+1)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var hits [n]int32
		For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForSerialRunsInOrder(t *testing.T) {
	var order []int
	For(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	ran := false
	For(0, 4, func(int) { ran = true })
	For(-5, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}
