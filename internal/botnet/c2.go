package botnet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ddoshield/internal/apps/workload"
	"ddoshield/internal/netstack"
	"ddoshield/internal/sim"
)

// DefaultC2Port is the TCP port bots report to. The real Mirai C2 accepted
// bots on port 23; the testbed keeps the C2 on its own port so telnet scan
// traffic and C2 traffic remain distinguishable in captures.
const DefaultC2Port = 5555

// C2 is the command-and-control server: it accepts bot registrations,
// answers keepalives, broadcasts attack commands and tracks the connected
// population over time (the "number of connected bots" metric DDoSim
// reports).
type C2 struct {
	port      uint16
	host      *netstack.Host
	listener  *netstack.Listener
	bots      map[string]*botSession
	history   []PopulationSample
	intervals []AttackInterval

	commandsSent uint64
	registered   uint64
}

// PopulationSample is one point of the connected-bots timeline.
type PopulationSample struct {
	Time sim.Time
	Bots int
}

type botSession struct {
	id   string
	conn *netstack.Conn
}

// NewC2 returns an unstarted C2 on the given port (0 = DefaultC2Port).
func NewC2(port uint16) *C2 {
	if port == 0 {
		port = DefaultC2Port
	}
	return &C2{port: port, bots: make(map[string]*botSession)}
}

// Port reports the C2 listen port.
func (c *C2) Port() uint16 { return c.port }

// Attach binds the C2 to a host and starts listening.
func (c *C2) Attach(h *netstack.Host) error {
	c.host = h
	l, err := h.ListenTCP(c.port, 0, c.accept)
	if err != nil {
		return fmt.Errorf("c2: %w", err)
	}
	c.listener = l
	return nil
}

// Detach stops the C2.
func (c *C2) Detach() {
	if c.listener != nil {
		c.listener.Close()
		c.listener = nil
	}
}

// Bots reports the currently connected bot count.
func (c *C2) Bots() int { return len(c.bots) }

// History returns the connected-bots timeline (one sample per change).
func (c *C2) History() []PopulationSample {
	out := make([]PopulationSample, len(c.history))
	copy(out, c.history)
	return out
}

// Stats reports total registrations and commands sent.
func (c *C2) Stats() (registered, commandsSent uint64) {
	return c.registered, c.commandsSent
}

func (c *C2) samplePopulation() {
	c.history = append(c.history, PopulationSample{Time: c.host.Now(), Bots: len(c.bots)})
}

func (c *C2) accept(conn *netstack.Conn) {
	var sess *botSession
	workload.AttachLines(conn, func(line string) {
		switch {
		case strings.HasPrefix(line, "REG "):
			id := strings.TrimSpace(strings.TrimPrefix(line, "REG "))
			if id == "" {
				return
			}
			if old, ok := c.bots[id]; ok && old.conn != conn {
				old.conn.Close()
			}
			sess = &botSession{id: id, conn: conn}
			c.bots[id] = sess
			c.registered++
			c.samplePopulation()
			conn.Send([]byte("OK\r\n"))
		case line == "PING":
			conn.Send([]byte("PONG\r\n"))
		}
	})
	drop := func() {
		if sess != nil && c.bots[sess.id] == sess {
			delete(c.bots, sess.id)
			c.samplePopulation()
		}
		sess = nil
	}
	conn.OnRemoteClose = func() {
		conn.Close()
		drop()
	}
	conn.OnClose = func(err error) { drop() }
}

// sessions returns the connected bots ordered by id. Iterating the bots
// map directly would let Go's randomized map order decide which bot's
// flood engine starts first, breaking the same-seed-same-packets
// guarantee (and with it byte-identical trace output).
func (c *C2) sessions() []*botSession {
	out := make([]*botSession, 0, len(c.bots))
	for _, b := range c.bots {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Broadcast sends an attack command to every connected bot, records the
// attack interval for labeling, and returns how many bots received it.
func (c *C2) Broadcast(cmd Command) int {
	line := []byte(cmd.String() + "\r\n")
	n := 0
	for _, b := range c.sessions() {
		b.conn.Send(line)
		n++
	}
	c.commandsSent += uint64(n)
	if n > 0 {
		now := c.host.Now()
		c.intervals = append(c.intervals, AttackInterval{
			Cmd:   cmd,
			Start: now,
			End:   now.Add(cmd.Duration),
			Bots:  c.BotAddrs(),
		})
	}
	return n
}

// ScheduleAttack broadcasts cmd at simulated instant at. Bots that join
// between scheduling and firing are included (the broadcast reads the
// population at fire time).
func (c *C2) ScheduleAttack(at sim.Time, cmd Command) {
	c.host.Scheduler().At(at, func() { c.Broadcast(cmd) })
}

// ScheduleWave schedules a sequence of attacks starting at start, each gap
// apart, cycling through vectors in order.
func (c *C2) ScheduleWave(start sim.Time, gap time.Duration, cmds []Command) {
	at := start
	for _, cmd := range cmds {
		c.ScheduleAttack(at, cmd)
		at = at.Add(cmd.Duration + gap)
	}
}
