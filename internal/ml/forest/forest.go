// Package forest implements CART decision trees and the bagged Random
// Forest classifier the paper evaluates (§III-B): bootstrap-sampled trees
// with per-split random feature subsets and majority-vote prediction.
package forest

import (
	"fmt"
	"math"
	"sort"

	"ddoshield/internal/sim"
)

// Config tunes forest training.
type Config struct {
	// Trees is the ensemble size (default 50).
	Trees int
	// MaxDepth bounds tree depth (default 12).
	MaxDepth int
	// MinSamplesLeaf is the smallest admissible leaf (default 2).
	MinSamplesLeaf int
	// FeaturesPerSplit is the number of random features considered per
	// split; 0 means floor(sqrt(numFeatures)).
	FeaturesPerSplit int
	// Classes is the number of class labels (default 2).
	Classes int
	// Seed drives bootstrap sampling and feature selection.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Trees <= 0 {
		c.Trees = 50
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 2
	}
	if c.Classes <= 0 {
		c.Classes = 2
	}
	return c
}

// Node is one tree node in the flattened representation (exported fields
// for gob serialization).
type Node struct {
	// Feature is the split feature index (-1 for leaves).
	Feature int32
	// Threshold routes x[Feature] <= Threshold to Left, else Right.
	Threshold float64
	// Left and Right are child indices into the tree's node slice.
	Left, Right int32
	// Class is the predicted label at leaves.
	Class int32
}

// Tree is one CART decision tree.
type Tree struct {
	Nodes []Node
}

// Predict routes x to a leaf.
func (t *Tree) Predict(x []float64) int {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return int(n.Class)
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Depth reports the tree's maximum depth.
func (t *Tree) Depth() int {
	var walk func(i int32) int
	walk = func(i int32) int {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return 1
		}
		l, r := walk(n.Left), walk(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if len(t.Nodes) == 0 {
		return 0
	}
	return walk(0)
}

// Forest is the trained ensemble.
type Forest struct {
	Cfg      Config
	TreeList []*Tree
	Features int
}

// Name implements ml.Classifier.
func (f *Forest) Name() string { return "rf" }

// Predict returns the majority vote over the ensemble.
func (f *Forest) Predict(x []float64) int {
	votes := make([]int, f.Cfg.Classes)
	for _, t := range f.TreeList {
		votes[t.Predict(x)]++
	}
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// NumNodes reports total nodes across the ensemble (drives model size).
func (f *Forest) NumNodes() int {
	n := 0
	for _, t := range f.TreeList {
		n += len(t.Nodes)
	}
	return n
}

// MemoryBytes estimates the live in-memory footprint of the model: node
// storage plus per-tree overhead.
func (f *Forest) MemoryBytes() int64 {
	const nodeBytes = 32 // Feature(4)+pad+Threshold(8)+Left/Right(8)+Class(4)+pad
	return int64(f.NumNodes())*nodeBytes + int64(len(f.TreeList))*48
}

// Train fits a forest on rows xs with labels ys.
func Train(cfg Config, xs [][]float64, ys []int) (*Forest, error) {
	cfg = cfg.withDefaults()
	if len(xs) == 0 {
		return nil, fmt.Errorf("forest: empty training set")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("forest: %d rows vs %d labels", len(xs), len(ys))
	}
	nf := len(xs[0])
	mtry := cfg.FeaturesPerSplit
	if mtry <= 0 {
		mtry = int(math.Sqrt(float64(nf)))
		if mtry < 1 {
			mtry = 1
		}
	}
	if mtry > nf {
		mtry = nf
	}
	f := &Forest{Cfg: cfg, Features: nf}
	rng := sim.Substream(cfg.Seed, "forest")
	for i := 0; i < cfg.Trees; i++ {
		idx := make([]int, len(xs))
		for j := range idx {
			idx[j] = rng.Intn(len(xs)) // bootstrap with replacement
		}
		b := &builder{
			cfg: cfg, xs: xs, ys: ys, rng: rng, mtry: mtry, nf: nf,
		}
		b.build(idx, 0) // root lands at node index 0
		f.TreeList = append(f.TreeList, &Tree{Nodes: b.nodes})
	}
	return f, nil
}

type builder struct {
	cfg   Config
	xs    [][]float64
	ys    []int
	rng   *sim.RNG
	mtry  int
	nf    int
	nodes []Node
}

// majority returns the most common label among idx.
func (b *builder) majority(idx []int) int32 {
	counts := make([]int, b.cfg.Classes)
	for _, i := range idx {
		counts[b.ys[i]]++
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return int32(best)
}

// gini computes impurity of a count histogram with total n.
func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

func pure(counts []int) bool {
	nz := 0
	for _, c := range counts {
		if c > 0 {
			nz++
		}
	}
	return nz <= 1
}

// build grows the subtree over idx and returns its node index.
func (b *builder) build(idx []int, depth int) int32 {
	counts := make([]int, b.cfg.Classes)
	for _, i := range idx {
		counts[b.ys[i]]++
	}
	leaf := func() int32 {
		b.nodes = append(b.nodes, Node{Feature: -1, Class: b.majority(idx)})
		return int32(len(b.nodes) - 1)
	}
	if depth >= b.cfg.MaxDepth || len(idx) < 2*b.cfg.MinSamplesLeaf || pure(counts) {
		return leaf()
	}

	// Pick mtry random features and find the best gini split.
	parentGini := gini(counts, len(idx))
	bestFeat, bestThr, bestGain := -1, 0.0, 1e-12
	feats := b.rng.Perm(b.nf)[:b.mtry]
	type pair struct {
		v float64
		y int
	}
	pairs := make([]pair, len(idx))
	for _, feat := range feats {
		for k, i := range idx {
			pairs[k] = pair{v: b.xs[i][feat], y: b.ys[i]}
		}
		sort.Slice(pairs, func(a, c int) bool { return pairs[a].v < pairs[c].v })
		left := make([]int, b.cfg.Classes)
		right := make([]int, b.cfg.Classes)
		copy(right, counts)
		for k := 0; k < len(pairs)-1; k++ {
			left[pairs[k].y]++
			right[pairs[k].y]--
			if pairs[k].v == pairs[k+1].v {
				continue
			}
			nl, nr := k+1, len(pairs)-k-1
			if nl < b.cfg.MinSamplesLeaf || nr < b.cfg.MinSamplesLeaf {
				continue
			}
			w := (float64(nl)*gini(left, nl) + float64(nr)*gini(right, nr)) / float64(len(pairs))
			if gain := parentGini - w; gain > bestGain {
				bestGain = gain
				bestFeat = feat
				bestThr = (pairs[k].v + pairs[k+1].v) / 2
			}
		}
	}
	if bestFeat < 0 {
		return leaf()
	}

	var li, ri []int
	for _, i := range idx {
		if b.xs[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return leaf()
	}
	self := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{Feature: int32(bestFeat), Threshold: bestThr})
	l := b.build(li, depth+1)
	r := b.build(ri, depth+1)
	b.nodes[self].Left = l
	b.nodes[self].Right = r
	return self
}
