// Mitigation demonstrates the full shield: the Real-Time IDS Unit detects
// a Mirai SYN flood, the Responder converts its per-window verdicts into
// firewall rules at the TServer's ingress, and service quality recovers
// while the flood is still being emitted. Run it to watch detection,
// response and recovery on one timeline.
package main

import (
	"fmt"
	"log"
	"time"

	"ddoshield/internal/botnet"
	"ddoshield/internal/dataset"
	"ddoshield/internal/features"
	"ddoshield/internal/ids"
	"ddoshield/internal/mitigation"
	"ddoshield/internal/testbed"
)

// rule is a hand-written detector (same shape as examples/customids); a
// trained model from cmd/trainids plugs in identically.
type rule struct{ synIdx, udpIdx int }

func (r rule) Predict(x []float64) int {
	if x[r.synIdx] > 20 || x[r.udpIdx] > 0.4 {
		return dataset.Malicious
	}
	return dataset.Benign
}
func (r rule) Name() string { return "threshold-rule" }

func main() {
	tb, err := testbed.New(testbed.Config{Seed: 31, NumDevices: 10})
	if err != nil {
		log.Fatal(err)
	}

	idx := map[string]int{}
	for i, n := range features.Names() {
		idx[n] = i
	}

	// The shield: firewall at the TServer ingress + IDS-driven responder.
	fw := mitigation.NewFirewall(tb.Scheduler(), tb.TServer().Host().NIC())
	resp := mitigation.NewResponder(fw, mitigation.ResponderConfig{
		BlockTTL:           45 * time.Second,
		AggregateThreshold: 8,
	})
	unit := ids.New(ids.Config{
		Model:    rule{synIdx: idx["win_syn_noack_ratio"], udpIdx: idx["win_udp_fraction"]},
		Window:   time.Second,
		Labeler:  tb.Labeler(),
		OnWindow: resp.HandleWindow,
	})
	tb.AddTap(unit.Tap())

	tb.Start()
	fmt.Println("=== phase 1: infection (90 s) ===")
	if err := tb.Run(90 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("botnet: %d bots connected\n", tb.C2().Bots())

	fmt.Println("\n=== phase 2: SYN flood vs. the shield (30 s) ===")
	tb.C2().Broadcast(botnet.Command{
		Type: botnet.AttackSYN, Target: tb.TServerAddr(), Port: 80,
		Duration: 25 * time.Second, PPS: 1500,
	})
	if err := tb.Run(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	unit.Flush()

	alerts, addrRules, prefixRules := resp.Stats()
	evaluated, dropped := fw.Stats()
	fmt.Printf("IDS alerts handled: %d\n", alerts)
	fmt.Printf("firewall rules: %d address, %d prefix (spoof-range aggregation)\n",
		addrRules, prefixRules)
	fmt.Printf("firewall: %d frames evaluated, %d dropped at ingress\n", evaluated, dropped)
	_, synDropped, halfExpired := tb.HTTPServer().Listener().Stats()
	fmt.Printf("TServer listener: %d SYNs dropped at backlog, %d half-open expired\n",
		synDropped, halfExpired)
	httpReqs, _ := tb.HTTPServer().Stats()
	fmt.Printf("benign HTTP requests served across the whole run: %d\n", httpReqs)

	fmt.Println("\nper-window verdict timeline (■ = alert):")
	line := ""
	for _, w := range unit.Results() {
		if w.Alert {
			line += "■"
		} else {
			line += "·"
		}
	}
	fmt.Println(line)
}
