// Package devices models the IoT device fleet (the "Devs" of the paper's
// topology): each device exposes a factory-credentialed telnet service —
// the vulnerability Mirai exploits — and runs the benign client workloads
// (HTTP browsing, video watching, FTP transfers) that the TServer's
// servers answer. Devices reboot under a churn model and come back clean,
// so the botnet must re-infect them, exactly as memory-resident Mirai must.
package devices

import (
	"fmt"
	"strconv"
	"strings"

	"ddoshield/internal/apps/workload"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
)

// TelnetPort is the vulnerable service's port.
const TelnetPort = 23

const maxLoginAttempts = 3

// TelnetService is the weak-credential remote shell the scanner cracks.
type TelnetService struct {
	user string
	pass string
	// OnInstall fires when an authenticated session issues
	// "INSTALL <c2-addr> <c2-port>" — the loader planting the bot.
	OnInstall func(c2 packet.Addr, port uint16)
	listener  *netstack.Listener

	logins   uint64
	failures uint64
	installs uint64
	hardened bool
}

// NewTelnetService returns a service guarding a shell with one credential
// pair. An empty user hardens the device: every login fails.
func NewTelnetService(user, pass string) *TelnetService {
	return &TelnetService{user: user, pass: pass, hardened: user == ""}
}

// Attach binds the service to a host.
func (t *TelnetService) Attach(h *netstack.Host) error {
	l, err := h.ListenTCP(TelnetPort, 0, t.accept)
	if err != nil {
		return fmt.Errorf("telnet: %w", err)
	}
	t.listener = l
	return nil
}

// Detach closes the service.
func (t *TelnetService) Detach() {
	if t.listener != nil {
		t.listener.Close()
		t.listener = nil
	}
}

// Stats reports successful logins, failed attempts and INSTALLs executed.
func (t *TelnetService) Stats() (logins, failures, installs uint64) {
	return t.logins, t.failures, t.installs
}

func (t *TelnetService) accept(c *netstack.Conn) {
	attempts := 0
	var user string
	phase := 0 // 0 awaiting user, 1 awaiting password, 2 shell
	workload.AttachLines(c, func(line string) {
		switch phase {
		case 0:
			user = line
			phase = 1
			c.Send([]byte("Password: "))
		case 1:
			if !t.hardened && user == t.user && line == t.pass {
				phase = 2
				t.logins++
				c.Send([]byte("$ "))
				return
			}
			t.failures++
			attempts++
			if attempts >= maxLoginAttempts {
				c.Send([]byte("Login incorrect\r\n"))
				c.Close()
				return
			}
			phase = 0
			c.Send([]byte("Login incorrect\r\nlogin: "))
		case 2:
			t.shell(c, line)
		}
	})
	c.OnRemoteClose = func() { c.Close() }
	c.Send([]byte("login: "))
}

func (t *TelnetService) shell(c *netstack.Conn, line string) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		c.Send([]byte("$ "))
		return
	}
	switch strings.ToUpper(fields[0]) {
	case "INSTALL":
		if len(fields) != 3 {
			c.Send([]byte("usage: INSTALL <addr> <port>\r\n$ "))
			return
		}
		addr, err := packet.ParseAddr(fields[1])
		if err != nil {
			c.Send([]byte("bad address\r\n$ "))
			return
		}
		port, err := strconv.Atoi(fields[2])
		if err != nil || port <= 0 || port > 65535 {
			c.Send([]byte("bad port\r\n$ "))
			return
		}
		t.installs++
		if t.OnInstall != nil {
			t.OnInstall(addr, uint16(port))
		}
		c.Send([]byte("OK\r\n$ "))
	case "EXIT":
		c.Close()
	default:
		c.Send([]byte("sh: " + fields[0] + ": not found\r\n$ "))
	}
}
