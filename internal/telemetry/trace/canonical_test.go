package trace

import (
	"bytes"
	"testing"
)

// scrambleIDs renumbers a span set the way a differently-interleaved run
// would: trace IDs permuted, span IDs reassigned in a different global
// order, parents remapped consistently, slice order shuffled
// deterministically.
func scrambleIDs(spans []Span) []Span {
	traceMap := map[TraceID]TraceID{}
	spanMap := map[SpanID]SpanID{}
	nextSpan := SpanID(1000)
	// Walk back-to-front so allocation order differs from the original.
	out := make([]Span, 0, len(spans))
	for i := len(spans) - 1; i >= 0; i-- {
		s := spans[i]
		if _, ok := traceMap[s.Trace]; !ok {
			traceMap[s.Trace] = TraceID(500 + len(traceMap)*7)
		}
		if _, ok := spanMap[s.ID]; !ok {
			nextSpan += 13
			spanMap[s.ID] = nextSpan
		}
		out = append(out, s)
	}
	for i := range out {
		out[i].Trace = traceMap[out[i].Trace]
		out[i].ID = spanMap[out[i].ID]
		if out[i].Parent != 0 {
			out[i].Parent = spanMap[out[i].Parent]
		}
	}
	return out
}

func TestCanonicalSpansInvariantUnderRenumbering(t *testing.T) {
	// Two traces; the second fans out (a flooded frame) so sibling order
	// matters. IDs are intentionally sparse and interleaved.
	spans := []Span{
		{Trace: 3, ID: 31, Name: "origin", Actor: "a", Kind: KindAttack, Flow: Flow{Src: 1, Dst: 2, Proto: 6}, Start: 100, End: 100},
		{Trace: 3, ID: 34, Parent: 31, Name: "link", Actor: "x->y", Start: 100, End: 140},
		{Trace: 7, ID: 32, Name: "origin", Actor: "b", Kind: KindBenign, Flow: Flow{Src: 5, Dst: 6, Proto: 17}, Start: 50, End: 50},
		{Trace: 7, ID: 33, Parent: 32, Name: "switch", Actor: "sw/p0", Start: 90, End: 90},
		{Trace: 7, ID: 36, Parent: 33, Name: "link", Actor: "sw->n1", Start: 90, End: 130},
		{Trace: 7, ID: 35, Parent: 33, Name: "link", Actor: "sw->n2", Start: 90, End: 120},
		{Trace: 7, ID: 38, Parent: 36, Name: "nic-rx", Actor: "n1/eth0", Start: 130, End: 130},
	}
	var a, b bytes.Buffer
	if err := WriteSpans(&a, CanonicalSpans(spans)); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpans(&b, CanonicalSpans(scrambleIDs(spans))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("canonical output differs:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
	// Traces must be ordered by origin start: the Start=50 benign trace first.
	canon := CanonicalSpans(spans)
	if canon[0].Start != 50 || canon[0].Trace != 1 || canon[0].ID != 1 {
		t.Fatalf("canonical head = %+v, want the t=50 origin renumbered to trace 1 span 1", canon[0])
	}
	// Sibling link spans sort structurally (End 120 before End 130).
	var ends []int64
	for _, s := range canon {
		if s.Name == "link" && s.Trace == 1 {
			ends = append(ends, int64(s.End))
		}
	}
	if len(ends) != 2 || ends[0] != 120 {
		t.Fatalf("sibling order = %v, want [120 ...]", ends)
	}
}

func TestCanonicalSpansOrphanBecomesRoot(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 2, Parent: 99, Name: "link", Actor: "x->y", Start: 10, End: 20},
	}
	canon := CanonicalSpans(spans)
	if len(canon) != 1 || canon[0].Parent != 0 || canon[0].ID != 1 {
		t.Fatalf("orphan = %+v, want root with Parent 0, ID 1", canon[0])
	}
}
