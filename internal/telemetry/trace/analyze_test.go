package trace

import (
	"bytes"
	"strings"
	"testing"
)

// buildSample makes two traces: trace 1 delivered over a forked path (the
// critical path follows the slower branch), trace 2 dropped at the link.
func buildSample() []Span {
	return []Span{
		{Trace: 1, ID: 1, Name: "flood-syn", Actor: "bot", Kind: KindAttack,
			Flow: Flow{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 6}, Start: 0, End: 10},
		{Trace: 1, ID: 2, Parent: 1, Name: "link", Actor: "a->b", Kind: KindAttack, Start: 0, End: 100},
		{Trace: 1, ID: 3, Parent: 1, Name: "link", Actor: "a->c", Kind: KindAttack, Start: 0, End: 300},
		{Trace: 1, ID: 4, Parent: 3, Name: "deliver", Actor: "srv", Kind: KindAttack, Start: 300, End: 350},
		{Trace: 2, ID: 5, Name: "udp-tx", Actor: "dev", Kind: KindBenign,
			Flow: Flow{Src: 9, Dst: 8, SrcPort: 7, DstPort: 6, Proto: 17}, Start: 50, End: 60},
		{Trace: 2, ID: 6, Parent: 5, Name: "link", Actor: "a->b", Kind: KindBenign,
			Start: 50, End: 80, Drop: DropQueueFull},
	}
}

func TestBreakdown(t *testing.T) {
	stats := Breakdown(buildSample())
	if len(stats) != 4 {
		t.Fatalf("got %d hop stats, want 4", len(stats))
	}
	// Sorted by name: deliver, flood-syn, link, udp-tx.
	link := stats[2]
	if link.Name != "link" || link.Count != 3 || link.Drops != 1 {
		t.Fatalf("link stat: %+v", link)
	}
	if link.Min != 30 || link.Max != 300 || link.Mean() != (100+300+30)/3 {
		t.Fatalf("link latency stats: %+v", link)
	}
}

func TestSummariesAndTopSlowest(t *testing.T) {
	sums := Summaries(buildSample())
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	t1, t2 := sums[0], sums[1]
	if t1.Trace != 1 || t1.Origin != "flood-syn" || !t1.Delivered() || t1.Latency() != 350 || t1.Spans != 4 {
		t.Fatalf("trace 1 summary: %+v", t1)
	}
	if t2.Trace != 2 || t2.Drop != DropQueueFull || t2.Delivered() || t2.Latency() != 30 {
		t.Fatalf("trace 2 summary: %+v", t2)
	}
	top := TopSlowest(sums, 1)
	if len(top) != 1 || top[0].Trace != 1 {
		t.Fatalf("TopSlowest: %+v", top)
	}
}

func TestCriticalPath(t *testing.T) {
	path := CriticalPath(buildSample(), 1)
	if len(path) != 3 {
		t.Fatalf("critical path has %d spans, want 3", len(path))
	}
	if path[0].ID != 1 || path[1].ID != 3 || path[2].ID != 4 {
		t.Fatalf("critical path = %v,%v,%v want 1,3,4", path[0].ID, path[1].ID, path[2].ID)
	}
	if CriticalPath(buildSample(), 42) != nil {
		t.Fatal("missing trace should yield nil path")
	}
}

func TestWriteChromeSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, buildSample()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph":"X"`, `"tid":1`, `"tid":2`, `"drop":"queue-full"`, `"flow":"0.0.0.1:3>0.0.0.2:4/6"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %s in:\n%s", want, out)
		}
	}
}
