// Package telemetry is the testbed's unified observability plane: a
// virtual-clock-aware metrics registry (counters, gauges, histograms with
// fixed bucket layouts) plus a bounded flight recorder of trace events
// stamped with sim.Time. It replaces the scattered ad-hoc counters the
// subsystems grew organically — netsim NIC/link fields, sysmon sample
// slices, fault-injector maps — with one registry every exporter, table
// and benchmark reads from, the way `docker stats` and the NS-3 trace
// files back every figure in the paper.
//
// Design constraints, in order:
//
//  1. Hot-path increments are allocation-free (guarded by AllocsPerRun
//     benchmarks). Counters and gauges are single atomic words; histogram
//     observation is a linear scan over a fixed bucket layout.
//  2. Instruments are usable standalone: a zero telemetry.Counter works
//     without any registry, so netsim's per-NIC counters exist whether or
//     not anyone attached a registry. Attaching registers them by
//     reference — reads and exports always agree with Stats() adapters.
//  3. All registry methods are nil-receiver safe no-ops, so subsystems
//     wire telemetry unconditionally and pay nothing when it is off.
//  4. Export order is deterministic (sorted by name, then label string),
//     so two same-seed runs produce byte-identical snapshots.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric: frames forwarded, drops,
// retransmits. The zero value is ready to use. Increments are a single
// atomic add, so counters embedded in hot-path structs (NIC, link
// direction) cost nothing beyond the arithmetic they replace and stay
// race-safe under the live HTTP exporter and `go test -race`.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down: CPU share, live memory,
// connected bots. The zero value is ready to use and reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add offsets the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into a fixed cumulative bucket layout.
// Bucket bounds are upper bounds; an implicit +Inf bucket catches the
// rest. Observation is allocation-free: a linear scan over the (small,
// fixed) bound slice plus two atomic adds.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    Gauge           // CAS-accumulated sum of observed values
	count  atomic.Uint64
}

// NewHistogram builds a standalone histogram over the given upper bounds
// (which must be sorted ascending; they are copied).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports total observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Buckets returns the bucket upper bounds and their (non-cumulative)
// counts; the final pair is the +Inf bucket, reported as math.Inf(1).
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	bounds = make([]float64, len(h.counts))
	counts = make([]uint64, len(h.counts))
	copy(bounds, h.bounds)
	bounds[len(bounds)-1] = math.Inf(1)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L is Label construction sugar: telemetry.L("nic", "tserver/eth0").
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates registered metric types.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String renders the kind in Prometheus TYPE notation.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registry entry. Exactly one of the value sources is set.
type metric struct {
	name      string
	labelStr  string // rendered {k="v",...} form, "" when unlabeled
	kind      Kind
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
}

// Registry holds named metrics for export. Registration is cheap but not
// hot-path; increments on the returned instruments are. A nil *Registry
// is safe: registration methods return standalone instruments and record
// nothing, so subsystems need no telemetry-enabled/disabled branches.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	index   map[string]int // name+labelStr -> metrics index
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// renderLabels renders a sorted, escaped {k="v",...} string ("" if none).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// add registers m, replacing any previous metric with the same name and
// label set (idempotent re-registration, e.g. a re-attached network).
func (r *Registry) add(m metric) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := m.name + m.labelStr
	if i, dup := r.index[key]; dup {
		r.metrics[i] = m
		return
	}
	r.index[key] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter. On a nil registry the
// counter is standalone but fully functional.
func (r *Registry) NewCounter(name string, labels ...Label) *Counter {
	c := &Counter{}
	r.RegisterCounter(c, name, labels...)
	return c
}

// RegisterCounter registers an externally owned counter — how netsim's
// embedded per-NIC counters join the registry without changing owners.
func (r *Registry) RegisterCounter(c *Counter, name string, labels ...Label) {
	r.add(metric{name: name, labelStr: renderLabels(labels), kind: KindCounter, counter: c})
}

// RenderLabels renders the sorted, escaped {k="v",...} label form once, for
// callers that register many metrics against the same entity. Rendering is
// the allocation-heavy part of registration; at fleet scale (16 counters per
// link, 5 per NIC) re-rendering identical labels dominated topology build.
func RenderLabels(labels ...Label) string { return renderLabels(labels) }

// RegisterCounterRendered registers an externally owned counter under a
// label string previously produced by RenderLabels — the bulk-registration
// fast path used by netsim's per-entity counter blocks.
func (r *Registry) RegisterCounterRendered(c *Counter, name, labelStr string) {
	r.add(metric{name: name, labelStr: labelStr, kind: KindCounter, counter: c})
}

// RegisterCounterFuncRendered is RegisterCounterFunc with a pre-rendered
// label string.
func (r *Registry) RegisterCounterFuncRendered(fn func() uint64, name, labelStr string) {
	r.add(metric{name: name, labelStr: labelStr, kind: KindCounter, counterFn: fn})
}

// RegisterCounterFunc registers a counter whose value is computed at
// export time (for pre-existing uint64 fields that cannot move).
func (r *Registry) RegisterCounterFunc(fn func() uint64, name string, labels ...Label) {
	r.add(metric{name: name, labelStr: renderLabels(labels), kind: KindCounter, counterFn: fn})
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(g, name, labels...)
	return g
}

// RegisterGauge registers an externally owned gauge.
func (r *Registry) RegisterGauge(g *Gauge, name string, labels ...Label) {
	r.add(metric{name: name, labelStr: renderLabels(labels), kind: KindGauge, gauge: g})
}

// RegisterGaugeFunc registers a gauge computed at export time. The
// function runs on whatever goroutine exports, so it must only read
// state that is safe to read there (the testbed exports from the
// simulation thread).
func (r *Registry) RegisterGaugeFunc(fn func() float64, name string, labels ...Label) {
	r.add(metric{name: name, labelStr: renderLabels(labels), kind: KindGauge, gaugeFn: fn})
}

// NewHistogram registers and returns a histogram over the given upper
// bounds.
func (r *Registry) NewHistogram(name string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.add(metric{name: name, labelStr: renderLabels(labels), kind: KindHistogram, hist: h})
	return h
}

// Snapshot is one exported metric value.
type Snapshot struct {
	Name   string
	Labels string // rendered {k="v"} form, "" when unlabeled
	Kind   Kind
	// Value carries counter (as float) and gauge values.
	Value float64
	// Buckets/BucketCounts, Sum and Count carry histogram state.
	Buckets      []float64
	BucketCounts []uint64
	Sum          float64
	Count        uint64
}

// Snapshot captures every registered metric, sorted by name then label
// string, so exports are deterministic.
func (r *Registry) Snapshot() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	out := make([]Snapshot, 0, len(ms))
	for _, m := range ms {
		s := Snapshot{Name: m.name, Labels: m.labelStr, Kind: m.kind}
		switch {
		case m.counter != nil:
			s.Value = float64(m.counter.Value())
		case m.counterFn != nil:
			s.Value = float64(m.counterFn())
		case m.gauge != nil:
			s.Value = m.gauge.Value()
		case m.gaugeFn != nil:
			s.Value = m.gaugeFn()
		case m.hist != nil:
			s.Buckets, s.BucketCounts = m.hist.Buckets()
			s.Sum = m.hist.Sum()
			s.Count = m.hist.Count()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// Len reports how many metrics are registered.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.metrics)
}
