package packet

import (
	"encoding/binary"
	"fmt"
)

// IP protocol numbers carried by the testbed.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// IPv4HeaderLen is the length of an option-less IPv4 header in bytes.
const IPv4HeaderLen = 20

// IPv4 is an IPv4 header without options.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16 // header + payload, filled by Marshal when zero
	ID       uint16
	Flags    uint8  // 3-bit flags field (bit 1 = don't fragment)
	FragOff  uint16 // 13-bit fragment offset, in 8-byte units
	TTL      uint8
	Proto    uint8
	Checksum uint16 // filled by Marshal
	Src      Addr
	Dst      Addr
}

// Marshal appends the wire encoding of the header to b, computing TotalLen
// (from payloadLen) and the header checksum.
func (h *IPv4) Marshal(b []byte, payloadLen int) []byte {
	total := uint16(IPv4HeaderLen + payloadLen)
	h.TotalLen = total
	start := len(b)
	b = append(b, 0x45, h.TOS) // version 4, IHL 5
	b = binary.BigEndian.AppendUint16(b, total)
	b = binary.BigEndian.AppendUint16(b, h.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b = append(b, h.TTL, h.Proto)
	b = append(b, 0, 0) // checksum placeholder
	b = append(b, h.Src[:]...)
	b = append(b, h.Dst[:]...)
	cs := Checksum(b[start : start+IPv4HeaderLen])
	h.Checksum = cs
	binary.BigEndian.PutUint16(b[start+10:start+12], cs)
	return b
}

// UnmarshalIPv4 decodes an IPv4 header, verifies its checksum, and returns
// the header along with the payload bytes (trimmed to TotalLen).
func UnmarshalIPv4(b []byte) (IPv4, []byte, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4{}, nil, fmt.Errorf("ipv4: packet too short (%d bytes)", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return IPv4{}, nil, fmt.Errorf("ipv4: bad version %d", v)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return IPv4{}, nil, fmt.Errorf("ipv4: bad header length %d", ihl)
	}
	if Checksum(b[:ihl]) != 0 {
		return IPv4{}, nil, fmt.Errorf("ipv4: header checksum mismatch")
	}
	var h IPv4
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Proto = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(b) {
		return IPv4{}, nil, fmt.Errorf("ipv4: bad total length %d (frame %d)", h.TotalLen, len(b))
	}
	return h, b[ihl:h.TotalLen], nil
}
