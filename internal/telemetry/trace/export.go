package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"ddoshield/internal/sim"
)

// FlowString renders a flow as "src:sport>dst:dport/proto" with dotted-quad
// addresses — the compact provenance form written on root-span lines.
func FlowString(f Flow) string {
	return string(appendFlow(make([]byte, 0, 48), f))
}

func appendIPv4(b []byte, a uint32) []byte {
	b = strconv.AppendUint(b, uint64(a>>24&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a>>16&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a>>8&0xff), 10)
	b = append(b, '.')
	return strconv.AppendUint(b, uint64(a&0xff), 10)
}

func appendFlow(b []byte, f Flow) []byte {
	b = appendIPv4(b, f.Src)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(f.SrcPort), 10)
	b = append(b, '>')
	b = appendIPv4(b, f.Dst)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(f.DstPort), 10)
	b = append(b, '/')
	return strconv.AppendUint(b, uint64(f.Proto), 10)
}

// ParseFlow inverts FlowString.
func ParseFlow(s string) (Flow, error) {
	var f Flow
	var srcA, srcB, srcC, srcD, dstA, dstB, dstC, dstD, sport, dport, proto int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d:%d>%d.%d.%d.%d:%d/%d",
		&srcA, &srcB, &srcC, &srcD, &sport, &dstA, &dstB, &dstC, &dstD, &dport, &proto)
	if err != nil || n != 11 {
		return f, fmt.Errorf("trace: malformed flow %q", s)
	}
	f.Src = uint32(srcA)<<24 | uint32(srcB)<<16 | uint32(srcC)<<8 | uint32(srcD)
	f.Dst = uint32(dstA)<<24 | uint32(dstB)<<16 | uint32(dstC)<<8 | uint32(dstD)
	f.SrcPort = uint16(sport)
	f.DstPort = uint16(dport)
	f.Proto = uint8(proto)
	return f, nil
}

// WriteSpans writes spans as one JSON object per line, in slice order.
// Zero-valued optional fields (parent, flow, drop, tag) are omitted, and
// field order is fixed, so equal span sets serialize byte-identically.
func WriteSpans(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	var scratch []byte
	for _, s := range spans {
		bw.WriteString(`{"trace":`)
		bw.WriteString(strconv.FormatUint(uint64(s.Trace), 10))
		bw.WriteString(`,"span":`)
		bw.WriteString(strconv.FormatUint(uint64(s.ID), 10))
		if s.Parent != 0 {
			bw.WriteString(`,"parent":`)
			bw.WriteString(strconv.FormatUint(uint64(s.Parent), 10))
		}
		bw.WriteString(`,"name":`)
		bw.WriteString(strconv.Quote(s.Name))
		bw.WriteString(`,"actor":`)
		bw.WriteString(strconv.Quote(s.Actor))
		bw.WriteString(`,"kind":"`)
		bw.WriteString(s.Kind.String())
		bw.WriteByte('"')
		if s.Parent == 0 {
			bw.WriteString(`,"flow":"`)
			scratch = appendFlow(scratch[:0], s.Flow)
			bw.Write(scratch)
			bw.WriteByte('"')
		}
		bw.WriteString(`,"start":`)
		bw.WriteString(strconv.FormatInt(int64(s.Start), 10))
		bw.WriteString(`,"end":`)
		bw.WriteString(strconv.FormatInt(int64(s.End), 10))
		if s.Drop != DropNone {
			bw.WriteString(`,"drop":"`)
			bw.WriteString(s.Drop.String())
			bw.WriteByte('"')
		}
		if s.Tag != "" {
			bw.WriteString(`,"tag":`)
			bw.WriteString(strconv.Quote(s.Tag))
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

// wireSpan is the JSON shape WriteSpans emits, for read-back.
type wireSpan struct {
	Trace  uint64 `json:"trace"`
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent"`
	Name   string `json:"name"`
	Actor  string `json:"actor"`
	Kind   string `json:"kind"`
	Flow   string `json:"flow"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Drop   string `json:"drop"`
	Tag    string `json:"tag"`
}

// ReadSpans parses WriteSpans output (JSONL). Blank lines are skipped.
func ReadSpans(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ws wireSpan
		if err := json.Unmarshal(raw, &ws); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		s := Span{
			Trace:  TraceID(ws.Trace),
			ID:     SpanID(ws.Span),
			Parent: SpanID(ws.Parent),
			Name:   ws.Name,
			Actor:  ws.Actor,
			Kind:   ParseKind(ws.Kind),
			Start:  sim.Time(ws.Start),
			End:    sim.Time(ws.End),
			Drop:   ParseDropCause(ws.Drop),
			Tag:    ws.Tag,
		}
		if ws.Flow != "" {
			f, err := ParseFlow(ws.Flow)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			s.Flow = f
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
