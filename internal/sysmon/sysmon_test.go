package sysmon

import (
	"testing"
	"time"

	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
)

// fakeTarget is a scriptable Metered.
type fakeTarget struct {
	cpu time.Duration
	mem int64
}

func (f *fakeTarget) CPUTime() time.Duration { return f.cpu }
func (f *fakeTarget) MemBytes() int64        { return f.mem }

func TestMonitorSamplesDeltas(t *testing.T) {
	s := sim.NewScheduler()
	target := &fakeTarget{}
	m := NewMonitor(target, time.Second)
	// Burn 10 ms of "CPU" and hold 100 KiB during each of 5 intervals.
	// The burner is scheduled before the monitor so same-instant FIFO
	// ordering burns first, samples second.
	tk := s.Every(time.Second, func() {
		target.cpu += 10 * time.Millisecond
		target.mem = 100 << 10
	})
	defer tk.Stop()
	m.Start(s)
	if err := s.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	samples := m.Samples()
	if len(samples) != 5 {
		t.Fatalf("samples = %d", len(samples))
	}
	for i, smp := range samples {
		if smp.CPU != 10*time.Millisecond {
			t.Fatalf("sample %d CPU = %v (delta, not cumulative)", i, smp.CPU)
		}
		if smp.MemBytes != 100<<10 {
			t.Fatalf("sample %d mem = %d", i, smp.MemBytes)
		}
	}
}

func TestReportAggregation(t *testing.T) {
	s := sim.NewScheduler()
	target := &fakeTarget{}
	m := NewMonitor(target, time.Second)
	tk := s.Every(time.Second, func() {
		target.cpu += 5 * time.Millisecond
		target.mem = 200 << 10
	})
	defer tk.Stop()
	m.Start(s)
	if err := s.Run(4 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// 5 ms per 1 s interval = 0.5%; with SpeedFactor 100 => 50%.
	r := m.Report(100)
	if r.Intervals != 4 {
		t.Fatalf("intervals = %d", r.Intervals)
	}
	if r.CPUPercent < 49.9 || r.CPUPercent > 50.1 {
		t.Fatalf("CPUPercent = %v, want 50", r.CPUPercent)
	}
	if r.MeanMemKb != 200 || r.PeakMemKb != 200 {
		t.Fatalf("mem = %v/%v", r.MeanMemKb, r.PeakMemKb)
	}
}

func TestReportSaturatesAt100(t *testing.T) {
	s := sim.NewScheduler()
	target := &fakeTarget{}
	m := NewMonitor(target, time.Second)
	tk := s.Every(time.Second, func() { target.cpu += 50 * time.Millisecond })
	defer tk.Stop()
	m.Start(s)
	if err := s.Run(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	r := m.Report(1000) // 5% * 1000 would be 5000%: clamp
	if r.CPUPercent != 100 {
		t.Fatalf("CPUPercent = %v, want clamp 100", r.CPUPercent)
	}
}

func TestEmptyReport(t *testing.T) {
	m := NewMonitor(&fakeTarget{}, time.Second)
	r := m.Report(1)
	if r.Intervals != 0 || r.CPUPercent != 0 {
		t.Fatalf("empty report = %+v", r)
	}
}

func TestMonitorIdempotentStartStop(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMonitor(&fakeTarget{}, time.Second)
	m.Start(s)
	m.Start(s)
	if err := s.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	m.Stop()
	if len(m.Samples()) != 2 {
		t.Fatalf("samples = %d (double start duplicated ticker?)", len(m.Samples()))
	}
}

// flakyTarget adds an up/down state to fakeTarget.
type flakyTarget struct {
	fakeTarget
	up bool
}

func (f *flakyTarget) Running() bool { return f.up }

func TestReportAvailability(t *testing.T) {
	s := sim.NewScheduler()
	target := &flakyTarget{up: true}
	m := NewMonitor(target, time.Second)
	m.Start(s)
	if err := s.Run(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	target.up = false
	if err := s.Run(8 * sim.Second); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	// 6 of 8 samples up.
	if r := m.Report(1); r.AvailabilityPct != 75 {
		t.Fatalf("AvailabilityPct = %v, want 75", r.AvailabilityPct)
	}
	// A target without an up/down state is always available.
	m2 := NewMonitor(&fakeTarget{}, time.Second)
	m2.Start(s)
	if err := s.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if r := m2.Report(1); r.AvailabilityPct != 100 {
		t.Fatalf("stateless AvailabilityPct = %v, want 100", r.AvailabilityPct)
	}
}

func TestEnergyJoules(t *testing.T) {
	s := sim.NewScheduler()
	target := &fakeTarget{}
	m := NewMonitor(target, time.Second)
	tk := s.Every(time.Second, func() { target.cpu += 100 * time.Millisecond })
	defer tk.Stop()
	m.Start(s)
	if err := s.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// 1 s of busy time at 3 W = 3 J.
	if got := m.EnergyJoules(3); got < 2.99 || got > 3.01 {
		t.Fatalf("EnergyJoules = %v, want 3", got)
	}
	if m.EnergyJoules(0) != 0 {
		t.Fatal("zero watts should cost nothing")
	}
}

// upDownTarget is a fakeTarget with an up/down state.
type upDownTarget struct {
	fakeTarget
	up bool
}

func (u *upDownTarget) Running() bool { return u.up }

// TestPublishAgreesWithReport is the satellite guard: the registry gauges
// Publish installs must report float-for-float exactly what Report()
// computes from the same samples, including the availability column.
func TestPublishAgreesWithReport(t *testing.T) {
	s := sim.NewScheduler()
	target := &upDownTarget{up: true}
	m := NewMonitor(target, time.Second)
	tk := s.Every(time.Second, func() {
		target.cpu += 137 * time.Millisecond // awkward share: exercises float math
		target.mem += 33_333
	})
	defer tk.Stop()
	m.Start(s)
	reg := telemetry.NewRegistry()
	const speedFactor = 7.5
	m.Publish(reg, "ids-lr", speedFactor)
	if err := s.Run(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	target.up = false
	if err := s.Run(9 * sim.Second); err != nil {
		t.Fatal(err)
	}
	m.Stop()

	want := m.Report(speedFactor)
	got := map[string]float64{}
	for _, snap := range reg.Snapshot() {
		if snap.Labels == `{target="ids-lr"}` {
			got[snap.Name] = snap.Value
		}
	}
	checks := []struct {
		metric string
		want   float64
	}{
		{"sysmon_cpu_percent", want.CPUPercent},
		{"sysmon_mem_kb", want.MeanMemKb},
		{"sysmon_mem_peak_kb", want.PeakMemKb},
		{"sysmon_availability_pct", want.AvailabilityPct},
		{"sysmon_intervals", float64(want.Intervals)},
	}
	for _, c := range checks {
		v, ok := got[c.metric]
		if !ok {
			t.Fatalf("gauge %s not published", c.metric)
		}
		if v != c.want {
			t.Errorf("%s = %v, Report says %v", c.metric, v, c.want)
		}
	}
	if want.AvailabilityPct == 100 || want.AvailabilityPct == 0 {
		t.Fatalf("scenario should mix up and down samples, got %v%%", want.AvailabilityPct)
	}
	if want.CPUPercent == 0 {
		t.Fatal("scenario should burn CPU")
	}
}
