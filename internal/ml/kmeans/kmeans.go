// Package kmeans implements the unsupervised K-Means detector of the paper
// (§III-B), following the entropy-penalized "U-k-means" scheme of Sinaga &
// Yang (2020) that the paper cites: the algorithm starts with a surplus of
// clusters, penalizes small mixing proportions through an entropy term in
// the assignment objective, and discards starved clusters as it iterates —
// determining the cluster count dynamically instead of fixing k a priori.
// For classification, each surviving cluster takes the majority label of
// its training members; prediction assigns the nearest centroid's label.
package kmeans

import (
	"fmt"
	"math"

	"ddoshield/internal/sim"
)

// Config tunes training.
type Config struct {
	// InitClusters is the starting cluster surplus (default 16).
	InitClusters int
	// Gamma weighs the entropy penalty -γ·ln(α_k) added to the squared
	// distance during assignment (default 1.0). Larger γ prunes harder.
	Gamma float64
	// MinProportion discards clusters whose mixing proportion α_k falls
	// below it (default 1/(4·InitClusters)).
	MinProportion float64
	// MaxIter bounds the update loop (default 100).
	MaxIter int
	// Classes is the number of labels for cluster→label mapping (default 2).
	Classes int
	// Seed drives centroid initialization.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.InitClusters <= 0 {
		c.InitClusters = 16
	}
	if c.Gamma <= 0 {
		c.Gamma = 1.0
	}
	if c.MinProportion <= 0 {
		c.MinProportion = 1 / float64(4*c.InitClusters)
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.Classes <= 0 {
		c.Classes = 2
	}
	return c
}

// Model is the trained detector: surviving centroids, their mixing
// proportions and their majority labels.
type Model struct {
	Cfg       Config
	Centroids [][]float64
	Alpha     []float64
	Labels    []int32
	Iters     int
}

// Name implements ml.Classifier.
func (m *Model) Name() string { return "kmeans" }

// ClusterCount reports how many clusters survived pruning — the paper's
// "optimal number of clusters" determined dynamically.
func (m *Model) ClusterCount() int { return len(m.Centroids) }

// Predict assigns x to the nearest centroid and returns its label.
func (m *Model) Predict(x []float64) int {
	best, bestD := 0, math.Inf(1)
	for k, c := range m.Centroids {
		if d := sqDist(x, c); d < bestD {
			best, bestD = k, d
		}
	}
	return int(m.Labels[best])
}

// MemoryBytes estimates the live model footprint.
func (m *Model) MemoryBytes() int64 {
	var b int64
	for _, c := range m.Centroids {
		b += int64(len(c)) * 8
	}
	return b + int64(len(m.Alpha))*8 + int64(len(m.Labels))*4 + 64
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Train fits the model on rows xs; labels ys are used only for the final
// cluster→label mapping (the clustering itself is unsupervised, as in the
// paper).
func Train(cfg Config, xs [][]float64, ys []int) (*Model, error) {
	cfg = cfg.withDefaults()
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("kmeans: empty training set")
	}
	if len(ys) != n {
		return nil, fmt.Errorf("kmeans: %d rows vs %d labels", n, len(ys))
	}
	d := len(xs[0])
	rng := sim.Substream(cfg.Seed, "kmeans")

	k := cfg.InitClusters
	if k > n {
		k = n
	}
	// Initialize centroids on distinct random points.
	centroids := make([][]float64, 0, k)
	for _, idx := range rng.Perm(n)[:k] {
		c := make([]float64, d)
		copy(c, xs[idx])
		centroids = append(centroids, c)
	}
	alpha := make([]float64, k)
	for i := range alpha {
		alpha[i] = 1 / float64(k)
	}

	assign := make([]int, n)
	iters := 0
	for ; iters < cfg.MaxIter; iters++ {
		// Assignment step with entropy-penalized distance.
		changed := 0
		counts := make([]int, len(centroids))
		for i, x := range xs {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				pd := sqDist(x, centroids[c]) - cfg.Gamma*math.Log(alpha[c]+1e-300)
				if pd < bestD {
					best, bestD = c, pd
				}
			}
			if assign[i] != best {
				changed++
			}
			assign[i] = best
			counts[best]++
		}

		// Update mixing proportions and prune starved clusters.
		keep := make([]int, 0, len(centroids))
		for c := range centroids {
			if float64(counts[c])/float64(n) >= cfg.MinProportion {
				keep = append(keep, c)
			}
		}
		if len(keep) == 0 {
			keep = append(keep, argmax(counts))
		}
		pruned := len(keep) != len(centroids)
		if pruned {
			remap := make([]int, len(centroids))
			for i := range remap {
				remap[i] = -1
			}
			newCentroids := make([][]float64, len(keep))
			for ni, c := range keep {
				remap[c] = ni
				newCentroids[ni] = centroids[c]
			}
			centroids = newCentroids
			// Reassign points of dropped clusters to the nearest survivor.
			counts = make([]int, len(centroids))
			for i, x := range xs {
				c := remap[assign[i]]
				if c < 0 {
					best, bestD := 0, math.Inf(1)
					for cc := range centroids {
						if dd := sqDist(x, centroids[cc]); dd < bestD {
							best, bestD = cc, dd
						}
					}
					c = best
				}
				assign[i] = c
				counts[c]++
			}
		}

		// Centroid update.
		alpha = make([]float64, len(centroids))
		sums := make([][]float64, len(centroids))
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i, x := range xs {
			c := assign[i]
			for j, v := range x {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] > 0 {
				for j := range sums[c] {
					sums[c][j] /= float64(counts[c])
				}
				centroids[c] = sums[c]
			}
			alpha[c] = float64(counts[c]) / float64(n)
		}

		if changed == 0 && !pruned {
			break
		}
	}

	// Majority label per cluster.
	votes := make([][]int, len(centroids))
	for c := range votes {
		votes[c] = make([]int, cfg.Classes)
	}
	for i := range xs {
		votes[assign[i]][ys[i]]++
	}
	labels := make([]int32, len(centroids))
	for c := range votes {
		labels[c] = int32(argmax(votes[c]))
	}
	return &Model{Cfg: cfg, Centroids: centroids, Alpha: alpha, Labels: labels, Iters: iters + 1}, nil
}

func argmax(vals []int) int {
	best, bestV := 0, -1
	for i, v := range vals {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
