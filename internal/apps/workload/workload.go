// Package workload provides the stochastic drivers behind benign traffic:
// Poisson arrival processes, on/off session schedulers and line-oriented
// buffering over the event-driven TCP connections. The paper stresses that
// a diverse, realistic benign baseline (HTTP, video, FTP) is what lets the
// IDS learn "proper traffic patterns"; these helpers make the client
// behaviours bursty and heavy-tailed instead of metronomic.
package workload

import (
	"bytes"
	"time"

	"ddoshield/internal/netstack"
	"ddoshield/internal/sim"
)

// Process repeatedly invokes an action with randomized inter-arrival times
// until stopped.
type Process struct {
	sched   *sim.Scheduler
	rng     *sim.RNG
	next    func() time.Duration
	action  func()
	pending sim.Event
	stopped bool
	fired   uint64
}

// NewPoisson returns a Poisson process: exponential inter-arrivals with the
// given mean, each firing action.
func NewPoisson(sched *sim.Scheduler, rng *sim.RNG, mean time.Duration, action func()) *Process {
	return &Process{
		sched:  sched,
		rng:    rng,
		next:   func() time.Duration { return time.Duration(rng.Exp(float64(mean))) },
		action: action,
	}
}

// NewUniform returns a process with uniform inter-arrivals in [lo, hi).
func NewUniform(sched *sim.Scheduler, rng *sim.RNG, lo, hi time.Duration, action func()) *Process {
	return &Process{
		sched:  sched,
		rng:    rng,
		next:   func() time.Duration { return time.Duration(rng.Uniform(float64(lo), float64(hi))) },
		action: action,
	}
}

// Start schedules the first arrival. Starting a started process is a no-op.
func (p *Process) Start() {
	if !p.pending.IsZero() || p.stopped {
		return
	}
	p.schedule()
}

func (p *Process) schedule() {
	p.pending = p.sched.After(p.next(), func() {
		if p.stopped {
			return
		}
		p.fired++
		p.action()
		if !p.stopped {
			p.schedule()
		}
	})
}

// Stop cancels all future arrivals.
func (p *Process) Stop() {
	p.stopped = true
	p.pending.Cancel()
	p.pending = sim.Event{}
}

// Fired reports the number of arrivals so far.
func (p *Process) Fired() uint64 { return p.fired }

// LineReader accumulates stream bytes and emits complete CRLF- or
// LF-terminated lines, the framing used by the FTP/telnet-style control
// protocols in the testbed.
type LineReader struct {
	buf    bytes.Buffer
	OnLine func(line string)
	// MaxLine guards against unbounded buffering (default 4096).
	MaxLine int
}

// Feed appends stream data and fires OnLine for each completed line,
// stripped of its terminator.
func (lr *LineReader) Feed(data []byte) {
	maxLine := lr.MaxLine
	if maxLine == 0 {
		maxLine = 4096
	}
	lr.buf.Write(data)
	for {
		b := lr.buf.Bytes()
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			if lr.buf.Len() > maxLine {
				lr.buf.Reset() // poisoned line: discard
			}
			return
		}
		line := string(bytes.TrimRight(b[:i], "\r"))
		lr.buf.Next(i + 1)
		if lr.OnLine != nil {
			lr.OnLine(line)
		}
	}
}

// AttachLines wires a LineReader to a connection's data callback and
// returns it.
func AttachLines(c *netstack.Conn, onLine func(string)) *LineReader {
	lr := &LineReader{OnLine: onLine}
	c.OnData = func(d []byte) { lr.Feed(d) }
	return lr
}

// Chunker delivers a byte stream in fixed-size chunks at a fixed interval,
// modeling a media server pushing segments at a target bitrate.
type Chunker struct {
	sched     *sim.Scheduler
	conn      *netstack.Conn
	chunk     []byte
	interval  time.Duration
	remaining int
	ticker    *sim.Ticker
	OnDone    func()
}

// NewChunker streams total bytes over conn in chunkSize pieces every
// interval, then fires OnDone.
func NewChunker(sched *sim.Scheduler, conn *netstack.Conn, total, chunkSize int, interval time.Duration) *Chunker {
	if chunkSize <= 0 {
		chunkSize = 4096
	}
	ck := &Chunker{
		sched:     sched,
		conn:      conn,
		chunk:     make([]byte, chunkSize),
		interval:  interval,
		remaining: total,
	}
	return ck
}

// Start begins streaming.
func (ck *Chunker) Start() {
	if ck.ticker != nil {
		return
	}
	ck.ticker = ck.sched.Every(ck.interval, func() {
		if ck.remaining <= 0 || ck.conn.State() != netstack.StateEstablished {
			ck.Stop()
			if ck.OnDone != nil {
				ck.OnDone()
			}
			return
		}
		n := len(ck.chunk)
		if n > ck.remaining {
			n = ck.remaining
		}
		ck.conn.Send(ck.chunk[:n])
		ck.remaining -= n
	})
}

// Stop halts streaming.
func (ck *Chunker) Stop() {
	if ck.ticker != nil {
		ck.ticker.Stop()
		ck.ticker = nil
	}
}

// Remaining reports bytes not yet sent.
func (ck *Chunker) Remaining() int { return ck.remaining }
