package packet

import (
	"fmt"

	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry/trace"
)

// Packet is a decoded view of one captured frame. Capture taps hand Packets
// to the pcap writer and to the IDS feature extractor; the raw frame bytes
// are retained so captures can be re-serialized losslessly.
type Packet struct {
	// Time is the simulated capture instant.
	Time sim.Time
	// Raw is the full frame as it appeared on the wire.
	Raw []byte

	Eth Ethernet
	// L3 dissection. Exactly one of HasIPv4/HasARP is set for well-formed
	// frames produced by the testbed.
	HasIPv4 bool
	IPv4    IPv4
	HasARP  bool
	ARP     ARP
	// L4 dissection, present when HasIPv4 and the protocol is TCP or UDP.
	HasTCP bool
	TCP    TCP
	HasUDP bool
	UDP    UDP
	// Payload is the transport payload (TCP/UDP), or the IP payload for
	// other protocols.
	Payload []byte

	// Trace is the frame's causal-trace context, set by context-aware taps
	// (netsim.TapCtx consumers) after decoding; the zero value means the
	// frame's flow was not sampled. DecodeInto and Release both reset it so
	// a pooled Packet can never leak a stale TraceID into the next frame.
	Trace trace.Context
}

// Decode dissects a raw frame captured at time t. Dissection is best-effort:
// a frame whose inner layers fail to parse is still returned with the layers
// that did parse, because a flood tool may emit malformed packets on purpose.
//
// Decode allocates a fresh Packet per frame; hot capture taps that do not
// retain the packet past the callback should use DecodeInto with a pooled
// Packet from Acquire instead.
func Decode(t sim.Time, raw []byte) (*Packet, error) {
	p := &Packet{}
	if err := DecodeInto(p, t, raw); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeInto dissects a raw frame captured at time t into p, overwriting all
// of p's fields. p may come from Acquire (see the pooling contract there) or
// be any caller-owned Packet being reused across frames. The error cases
// match Decode; on error p is left fully reset except for Time and Raw.
func DecodeInto(p *Packet, t sim.Time, raw []byte) error {
	*p = Packet{Time: t, Raw: raw}
	eth, rest, err := UnmarshalEthernet(raw)
	if err != nil {
		return err
	}
	p.Eth = eth
	switch eth.Type {
	case EtherTypeARP:
		arp, err := UnmarshalARP(rest)
		if err != nil {
			return nil
		}
		p.HasARP = true
		p.ARP = arp
	case EtherTypeIPv4:
		ip, payload, err := UnmarshalIPv4(rest)
		if err != nil {
			return nil
		}
		p.HasIPv4 = true
		p.IPv4 = ip
		p.Payload = payload
		switch ip.Proto {
		case ProtoTCP:
			tcp, data, err := UnmarshalTCP(payload, ip.Src, ip.Dst, false)
			if err == nil {
				p.HasTCP = true
				p.TCP = tcp
				p.Payload = data
			}
		case ProtoUDP:
			udp, data, err := UnmarshalUDP(payload, ip.Src, ip.Dst, false)
			if err == nil {
				p.HasUDP = true
				p.UDP = udp
				p.Payload = data
			}
		}
	}
	return nil
}

// Len reports the on-wire frame length in bytes.
func (p *Packet) Len() int { return len(p.Raw) }

// Proto reports the IP protocol number, or 0 for non-IP frames.
func (p *Packet) Proto() uint8 {
	if !p.HasIPv4 {
		return 0
	}
	return p.IPv4.Proto
}

// SrcPort reports the transport source port, or 0 when not applicable.
func (p *Packet) SrcPort() uint16 {
	switch {
	case p.HasTCP:
		return p.TCP.SrcPort
	case p.HasUDP:
		return p.UDP.SrcPort
	}
	return 0
}

// DstPort reports the transport destination port, or 0 when not applicable.
func (p *Packet) DstPort() uint16 {
	switch {
	case p.HasTCP:
		return p.TCP.DstPort
	case p.HasUDP:
		return p.UDP.DstPort
	}
	return 0
}

// FlowKey identifies the unidirectional 5-tuple flow the packet belongs to.
type FlowKey struct {
	Src     Addr
	Dst     Addr
	Proto   uint8
	SrcPort uint16
	DstPort uint16
}

// Flow returns the packet's unidirectional flow key (zero ports for non-TCP/UDP).
func (p *Packet) Flow() FlowKey {
	k := FlowKey{Proto: p.Proto(), SrcPort: p.SrcPort(), DstPort: p.DstPort()}
	if p.HasIPv4 {
		k.Src = p.IPv4.Src
		k.Dst = p.IPv4.Dst
	}
	return k
}

// Reverse returns the flow key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, Proto: k.Proto, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// String renders a tcpdump-style one-line summary.
func (p *Packet) String() string {
	switch {
	case p.HasTCP:
		return fmt.Sprintf("%s %s:%d > %s:%d TCP [%s] seq=%d ack=%d len=%d",
			p.Time, p.IPv4.Src, p.TCP.SrcPort, p.IPv4.Dst, p.TCP.DstPort,
			FlagString(p.TCP.Flags), p.TCP.Seq, p.TCP.Ack, len(p.Payload))
	case p.HasUDP:
		return fmt.Sprintf("%s %s:%d > %s:%d UDP len=%d",
			p.Time, p.IPv4.Src, p.UDP.SrcPort, p.IPv4.Dst, p.UDP.DstPort, len(p.Payload))
	case p.HasARP:
		op := "request"
		if p.ARP.Op == ARPReply {
			op = "reply"
		}
		return fmt.Sprintf("%s ARP %s %s -> %s", p.Time, op, p.ARP.SenderIP, p.ARP.TargetIP)
	case p.HasIPv4:
		return fmt.Sprintf("%s %s > %s proto=%d len=%d",
			p.Time, p.IPv4.Src, p.IPv4.Dst, p.IPv4.Proto, len(p.Payload))
	}
	return fmt.Sprintf("%s %s > %s ethertype=%#04x len=%d",
		p.Time, p.Eth.Src, p.Eth.Dst, uint16(p.Eth.Type), len(p.Raw))
}

// AppendTCP appends a complete Ethernet+IPv4+TCP frame to b and returns the
// extended slice. It marshals every layer directly into the destination —
// no intermediate segment buffer — so callers that own a reusable scratch
// buffer build frames without allocating. The frame builders below and the
// Mirai flood engines are the hot callers.
func AppendTCP(b []byte, srcMAC, dstMAC MAC, ip IPv4, tcp TCP, payload []byte) []byte {
	ip.Proto = ProtoTCP
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4}
	b = eth.Marshal(b)
	b = ip.Marshal(b, TCPHeaderLen+len(payload))
	return tcp.Marshal(b, ip.Src, ip.Dst, payload)
}

// AppendUDP appends a complete Ethernet+IPv4+UDP frame to b and returns the
// extended slice. See AppendTCP for the buffer-reuse contract.
func AppendUDP(b []byte, srcMAC, dstMAC MAC, ip IPv4, udp UDP, payload []byte) []byte {
	ip.Proto = ProtoUDP
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4}
	b = eth.Marshal(b)
	b = ip.Marshal(b, UDPHeaderLen+len(payload))
	return udp.Marshal(b, ip.Src, ip.Dst, payload)
}

// AppendARP appends a complete Ethernet+ARP frame to b and returns the
// extended slice.
func AppendARP(b []byte, srcMAC, dstMAC MAC, a ARP) []byte {
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, Type: EtherTypeARP}
	return a.Marshal(eth.Marshal(b))
}

// BuildTCP assembles a complete Ethernet+IPv4+TCP frame in one exactly-sized
// allocation. It is the low-level builder used by the netstack and, directly,
// by the Mirai flood engines (which forge headers without a connection,
// exactly as the real malware's raw-socket attacks do).
func BuildTCP(srcMAC, dstMAC MAC, ip IPv4, tcp TCP, payload []byte) []byte {
	b := make([]byte, 0, EthernetHeaderLen+IPv4HeaderLen+TCPHeaderLen+len(payload))
	return AppendTCP(b, srcMAC, dstMAC, ip, tcp, payload)
}

// BuildUDP assembles a complete Ethernet+IPv4+UDP frame in one exactly-sized
// allocation.
func BuildUDP(srcMAC, dstMAC MAC, ip IPv4, udp UDP, payload []byte) []byte {
	b := make([]byte, 0, EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen+len(payload))
	return AppendUDP(b, srcMAC, dstMAC, ip, udp, payload)
}

// BuildARP assembles a complete Ethernet+ARP frame in one exactly-sized
// allocation.
func BuildARP(srcMAC, dstMAC MAC, a ARP) []byte {
	return AppendARP(make([]byte, 0, EthernetHeaderLen+ARPLen), srcMAC, dstMAC, a)
}
