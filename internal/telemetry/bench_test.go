package telemetry

import (
	"testing"

	"ddoshield/internal/sim"
)

// TestHotPathAllocFree is the PR's acceptance guard: counter and gauge
// updates, histogram observation and flight-recorder emission must not
// allocate — they sit on the per-frame and per-window hot paths.
func TestHotPathAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("bench_counter_total")
	g := reg.NewGauge("bench_gauge")
	h := reg.NewHistogram("bench_hist", []float64{1, 10, 100, 1000})
	rec := NewRecorder(64)

	if allocs := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); allocs != 0 {
		t.Fatalf("Counter.Inc/Add allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { g.Set(1.5); g.Add(0.5) }); allocs != 0 {
		t.Fatalf("Gauge.Set/Add allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(42) }); allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		rec.Emit(sim.Second, CatNet, "queue-drop", "dev00/eth0", 64)
	}); allocs != 0 {
		t.Fatalf("Recorder.Emit allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram([]float64{1, 10, 100, 1000, 10000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 20000))
	}
}

func BenchmarkRecorderEmit(b *testing.B) {
	r := NewRecorder(DefaultRecorderCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(sim.Time(i), CatNet, "queue-drop", "dev00/eth0", 64)
	}
}

func BenchmarkPrometheusExport(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 64; i++ {
		reg.NewCounter("bench_total", L("i", string(rune('a'+i%26))+string(rune('a'+i/26)))).Add(uint64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = WritePrometheus(discard{}, reg)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
