package experiments

import (
	"strings"
	"testing"
	"time"

	"ddoshield/internal/ml/metrics"
)

// constModel is a trivial classifier so resilience tests don't pay for
// training; detection quality is not under test here, the sweep harness is.
type constModel struct {
	name  string
	class int
}

func (m constModel) Predict(x []float64) int { return m.class }
func (m constModel) Name() string            { return m.name }

func TestResilienceSweepDeterministicAndFaulted(t *testing.T) {
	sc := tiny()
	sc.Devices = 5
	sc.InfectionLead = 30 * time.Second
	sc.DetectDuration = 40 * time.Second
	models := []TrainedModel{
		{Model: constModel{name: "allpos", class: 1}},
		{Model: constModel{name: "allneg", class: 0}},
	}
	cfg := ResilienceConfig{Intensities: []float64{0, 1}}
	run := func() *ResilienceResult {
		res, err := sc.RunResilience(models, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()

	// Same seed, same plan: the rendered sweep must be byte-identical.
	f1, f2 := FormatResilience(r1), FormatResilience(r2)
	if f1 != f2 {
		t.Fatalf("same-seed sweeps diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", f1, f2)
	}

	if len(r1.Points) != 2 {
		t.Fatalf("points = %d", len(r1.Points))
	}
	base, full := r1.Points[0], r1.Points[1]
	if len(base.Faults) != 0 {
		t.Fatalf("zero-intensity baseline injected faults: %v", base.Faults)
	}
	// Full intensity must activate at least three fault kinds, all with
	// non-zero counters.
	if len(full.Faults) < 3 {
		t.Fatalf("only %d fault kinds active at full intensity: %v", len(full.Faults), full.Faults)
	}
	for _, c := range full.Faults {
		if c.Count == 0 {
			t.Fatalf("fault kind %s has a zero counter", c.Kind)
		}
	}
	if full.Restarts == 0 {
		t.Fatal("crash loops produced no supervised restarts")
	}
	if full.DeviceAvailabilityPct >= base.DeviceAvailabilityPct {
		t.Fatalf("availability did not degrade: base %.2f vs full %.2f",
			base.DeviceAvailabilityPct, full.DeviceAvailabilityPct)
	}

	// The always-positive model keeps recall 1 regardless of faults; its
	// degradation curve has one entry per intensity.
	curve := r1.Curve("allpos", func(r metrics.Report) float64 { return r.Recall })
	if len(curve) != 2 {
		t.Fatalf("curve = %v", curve)
	}
	for _, v := range curve {
		if v != 1 {
			t.Fatalf("allpos recall = %v, want 1", curve)
		}
	}
	// The always-negative model has undefined precision, rendered as n/a.
	if !strings.Contains(f1, "n/a") {
		t.Fatalf("undefined metrics not rendered as n/a:\n%s", f1)
	}
	if !strings.Contains(f1, "recall vs intensity") {
		t.Fatalf("missing degradation curves:\n%s", f1)
	}
}

// TestResilienceDomainsMatchesSerial pins the new ResilienceConfig.Domains
// knob: partitioning every intensity point's testbed across PDES domains
// must change wall-clock only — the rendered sweep (confusion metrics,
// fault counters, restarts, availability) stays byte-identical to serial.
func TestResilienceDomainsMatchesSerial(t *testing.T) {
	sc := tiny()
	sc.Devices = 5
	sc.InfectionLead = 30 * time.Second
	sc.DetectDuration = 40 * time.Second
	models := []TrainedModel{{Model: constModel{name: "allpos", class: 1}}}
	run := func(domains int) string {
		cfg := ResilienceConfig{Intensities: []float64{0, 1}, Domains: domains}
		res, err := sc.RunResilience(models, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return FormatResilience(res)
	}
	serial, partitioned := run(1), run(3)
	if serial != partitioned {
		t.Fatalf("Domains=3 sweep diverged from serial:\n--- serial ---\n%s--- partitioned ---\n%s",
			serial, partitioned)
	}
}
