package testbed

import (
	"encoding/json"
	"time"

	"ddoshield/internal/ids"
	"ddoshield/internal/mitigation"
	"ddoshield/internal/packet"
	"ddoshield/internal/telemetry"
)

// MitigationConfig tunes the testbed's closed-loop defense: the inline
// verdict-cache firewall at the TServer ingress plus the responder that
// feeds it from one IDS unit's window verdicts. The zero value is usable.
type MitigationConfig struct {
	// Responder is the response policy (TTLs, aggregation, reaction
	// delay, rate limiting). Protected always additionally includes the
	// testbed's own infrastructure addresses.
	Responder mitigation.ResponderConfig
	// CacheSize is the verdict-cache capacity (default 1024).
	CacheSize int
	// FlowTTL bounds cached verdict lifetimes (default 5 s).
	FlowTTL time.Duration
	// SweepInterval is the deterministic cache-aging cadence (default 1 s).
	SweepInterval time.Duration
}

// mitigationHandle ties one IDS unit to its firewall and responder for
// Summary and scoreboard rendering.
type mitigationHandle struct {
	unit *ids.Unit
	fw   *mitigation.Firewall
	resp *mitigation.Responder
}

// AttachMitigation closes the detection loop for one attached IDS unit:
// it installs an inline verdict-cache firewall on the TServer's NIC (on
// the TServer's own domain scheduler, so aging and rule installs stay
// deterministic under any Domains setting), wires a responder to the
// unit's window verdicts, and registers
// mitigation_time_to_mitigate_seconds{unit=...} — the gap between the
// first attack packet's origin and the first mitigated attack drop, the
// defense-side sibling of ids_detection_latency_seconds. The unit also
// gains mitigation lines in Summary and a panel in MitigationScoreboard.
func (tb *Testbed) AttachMitigation(u *ids.Unit, cfg MitigationConfig) *mitigation.Firewall {
	fw := mitigation.NewFirewallConfig(tb.tserver.Scheduler(), tb.tserver.Host().NIC(),
		mitigation.FirewallConfig{
			CacheSize:     cfg.CacheSize,
			FlowTTL:       cfg.FlowTTL,
			SweepInterval: cfg.SweepInterval,
			Classify:      classifyFlow,
			Registry:      tb.reg,
			Name:          u.Name(),
		})
	rcfg := cfg.Responder
	rcfg.Protected = append(tb.protectedAddrs(), rcfg.Protected...)
	rcfg.Registry = tb.reg
	if rcfg.Name == "" {
		rcfg.Name = u.Name()
	}
	resp := mitigation.NewResponder(fw, rcfg)
	u.AddWindowHook(resp.HandleWindow)
	tb.mitigations = append(tb.mitigations, mitigationHandle{unit: u, fw: fw, resp: resp})
	tb.reg.RegisterGaugeFunc(func() float64 {
		d, ok := tb.TimeToMitigate(fw)
		if !ok {
			return -1
		}
		return d.Seconds()
	}, "mitigation_time_to_mitigate_seconds", telemetry.L("unit", u.Name()))
	return fw
}

// protectedAddrs lists the infrastructure a responder must never block:
// the TServer itself, the IDS tap and the edge servers. (Backscatter from
// a UDP flood carries the TServer as source, so an unprotected responder
// would blackhole its own protected service.)
func (tb *Testbed) protectedAddrs() []packet.Addr {
	out := []packet.Addr{addrTServer, addrIDS}
	for g := range tb.edgeCs {
		out = append(out, edgeServerAddr(g))
	}
	return out
}

// TimeToMitigate reports the closed-loop reaction latency for one attached
// firewall: first attack packet origin → the firewall's first drop of an
// attack-classified frame. False until both anchors exist.
func (tb *Testbed) TimeToMitigate(fw *mitigation.Firewall) (time.Duration, bool) {
	start, ok := tb.FirstAttackAt()
	if !ok {
		return 0, false
	}
	hit, ok := fw.FirstMitigatedDrop()
	if !ok || hit < start {
		return 0, false
	}
	return (hit - start).Duration(), true
}

// MitigationScoreboard is the live defense dashboard served at
// /mitigation.json: per-unit reaction latency, drop/collateral accounting,
// rule activity and verdict-cache state. All values derive from simulated
// time and deterministic counters, so two same-seed runs publish
// byte-identical boards at the same simulated instant.
type MitigationScoreboard struct {
	NowS  float64               `json:"now_s"`
	Units []MitigationUnitBoard `json:"units"`
}

// MitigationUnitBoard is one IDS unit's defense panel.
type MitigationUnitBoard struct {
	Unit string `json:"unit"`
	// DetectionLatencyS and TimeToMitigateS are -1 until their anchors
	// exist (mirroring the registry gauges).
	DetectionLatencyS float64 `json:"detection_latency_s"`
	TimeToMitigateS   float64 `json:"time_to_mitigate_s"`
	Alerts            uint64  `json:"alerts"`
	Evaluated         uint64  `json:"frames_evaluated"`
	Dropped           uint64  `json:"frames_dropped"`
	RateLimited       uint64  `json:"frames_rate_limited"`
	CollateralDrops   uint64  `json:"collateral_drops"`
	AttackDrops       uint64  `json:"attack_drops"`
	AttackPassed      uint64  `json:"attack_passed"`
	RuleHits          struct {
		Addr   uint64 `json:"addr"`
		Prefix uint64 `json:"prefix"`
		Flow   uint64 `json:"flow"`
	} `json:"rule_hits"`
	ActiveRules struct {
		Addr   int `json:"addr"`
		Prefix int `json:"prefix"`
		Flow   int `json:"flow"`
	} `json:"active_rules"`
	RulesInstalled struct {
		Addr   uint64 `json:"addr"`
		Prefix uint64 `json:"prefix"`
		Flow   uint64 `json:"flow"`
	} `json:"rules_installed"`
	Cache mitigation.CacheStats `json:"cache"`
}

// MitigationScoreboard snapshots the defense state of every attached
// mitigation loop (empty Units when none is attached).
func (tb *Testbed) MitigationScoreboard() *MitigationScoreboard {
	sb := &MitigationScoreboard{NowS: tb.sched.Now().Duration().Seconds()}
	for _, m := range tb.mitigations {
		b := MitigationUnitBoard{
			Unit:              m.unit.Name(),
			DetectionLatencyS: -1,
			TimeToMitigateS:   -1,
			Cache:             m.fw.CacheStats(),
		}
		if d, ok := tb.DetectionLatency(m.unit); ok {
			b.DetectionLatencyS = d.Seconds()
		}
		if d, ok := tb.TimeToMitigate(m.fw); ok {
			b.TimeToMitigateS = d.Seconds()
		}
		b.Evaluated, b.Dropped = m.fw.Stats()
		b.RateLimited = m.fw.RateLimited()
		b.CollateralDrops = m.fw.CollateralDrops()
		b.AttackDrops = m.fw.AttackDrops()
		b.AttackPassed = m.fw.AttackPassed()
		b.RuleHits.Addr, b.RuleHits.Prefix, b.RuleHits.Flow = m.fw.RuleHits()
		b.ActiveRules.Addr = m.fw.BlockedAddrs()
		b.ActiveRules.Prefix = m.fw.BlockedPrefixes()
		b.ActiveRules.Flow = m.fw.BlockedFlows()
		alerts, addr, prefix := m.resp.Stats()
		b.Alerts = alerts
		b.RulesInstalled.Addr = addr
		b.RulesInstalled.Prefix = prefix
		b.RulesInstalled.Flow = m.resp.FlowRules()
		sb.Units = append(sb.Units, b)
	}
	return sb
}

// JSON renders the scoreboard as indented, key-order-stable JSON.
func (s *MitigationScoreboard) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
