// Package pcap reads and writes libpcap capture files and provides capture
// taps for the simulated network. DDoShield-IoT uses captures both as the
// training datasets for the IDS models and for offline inspection with
// standard tools (the paper mentions Wireshark); files written here use the
// standard magic, version and Ethernet link type, so they are readable by
// any pcap consumer.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"ddoshield/internal/netsim"
	"ddoshield/internal/sim"
)

const (
	// MagicMicroseconds is the classic little-endian pcap magic.
	MagicMicroseconds uint32 = 0xa1b2c3d4
	versionMajor      uint16 = 2
	versionMinor      uint16 = 4
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet uint32 = 1
	// DefaultSnapLen is the default capture length.
	DefaultSnapLen uint32 = 65535
)

// Record is one captured frame.
type Record struct {
	// Time is the simulated capture instant.
	Time sim.Time
	// Data is the captured frame (possibly truncated to snaplen).
	Data []byte
	// OrigLen is the frame's original on-wire length.
	OrigLen int
}

// Writer streams records into a pcap file.
type Writer struct {
	w       io.Writer
	snapLen uint32
	wrote   uint64
	err     error
}

// NewWriter writes the pcap global header and returns a record writer.
// snapLen of 0 means DefaultSnapLen.
func NewWriter(w io.Writer, snapLen uint32) (*Writer, error) {
	if snapLen == 0 {
		snapLen = DefaultSnapLen
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MagicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone=0, sigfigs=0 already zero.
	binary.LittleEndian.PutUint32(hdr[16:20], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: write header: %w", err)
	}
	return &Writer{w: w, snapLen: snapLen}, nil
}

// WriteFrame captures one frame at simulated time t.
func (w *Writer) WriteFrame(t sim.Time, frame []byte) error {
	if w.err != nil {
		return w.err
	}
	capLen := len(frame)
	if uint32(capLen) > w.snapLen {
		capLen = int(w.snapLen)
	}
	usec := int64(t) / 1000
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(usec/1_000_000))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(usec%1_000_000))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(frame)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = fmt.Errorf("pcap: write record header: %w", err)
		return w.err
	}
	if _, err := w.w.Write(frame[:capLen]); err != nil {
		w.err = fmt.Errorf("pcap: write record data: %w", err)
		return w.err
	}
	w.wrote++
	return nil
}

// Count reports records written so far.
func (w *Writer) Count() uint64 { return w.wrote }

// Tap returns a netsim.Tap that captures every observed frame into the
// writer. Write errors are sticky and silently stop the capture.
func (w *Writer) Tap() netsim.Tap {
	return func(t sim.Time, raw []byte) {
		_ = w.WriteFrame(t, raw)
	}
}

// Reader iterates over the records of a pcap file.
type Reader struct {
	r       io.Reader
	snapLen uint32
	order   binary.ByteOrder
}

// NewReader validates the global header and returns a record reader. Both
// byte orders are accepted.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read header: %w", err)
	}
	var order binary.ByteOrder
	switch magic := binary.LittleEndian.Uint32(hdr[0:4]); magic {
	case MagicMicroseconds:
		order = binary.LittleEndian
	case 0xd4c3b2a1:
		order = binary.BigEndian
	default:
		return nil, fmt.Errorf("pcap: bad magic %#08x", magic)
	}
	if lt := order.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{r: r, snapLen: order.Uint32(hdr[16:20]), order: order}, nil
}

// Next returns the next record, or io.EOF at end of file.
func (r *Reader) Next() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Record{}, err
	}
	sec := r.order.Uint32(hdr[0:4])
	usec := r.order.Uint32(hdr[4:8])
	capLen := r.order.Uint32(hdr[8:12])
	origLen := r.order.Uint32(hdr[12:16])
	if capLen > r.snapLen+65536 {
		return Record{}, fmt.Errorf("pcap: implausible record length %d", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: truncated record: %w", err)
	}
	t := sim.Time(int64(sec)*int64(sim.Second) + int64(usec)*int64(sim.Microsecond))
	return Record{Time: t, Data: data, OrigLen: int(origLen)}, nil
}

// ReadAll drains the reader into a slice.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Buffer is an in-memory capture: a Tap that retains decode-ready records.
// The testbed uses it to hand a finished run's traffic to the dataset
// builder without round-tripping through the filesystem.
type Buffer struct {
	records []Record
	limit   int
}

// NewBuffer returns an in-memory capture retaining at most limit records
// (0 = unlimited).
func NewBuffer(limit int) *Buffer { return &Buffer{limit: limit} }

// Tap returns a netsim.Tap that appends frames to the buffer.
func (b *Buffer) Tap() netsim.Tap {
	return func(t sim.Time, raw []byte) {
		if b.limit > 0 && len(b.records) >= b.limit {
			return
		}
		data := make([]byte, len(raw))
		copy(data, raw)
		b.records = append(b.records, Record{Time: t, Data: data, OrigLen: len(raw)})
	}
}

// Records returns the captured records (not a copy; treat as read-only).
func (b *Buffer) Records() []Record { return b.records }

// Len reports the number of captured records.
func (b *Buffer) Len() int { return len(b.records) }

// Reset discards all captured records.
func (b *Buffer) Reset() { b.records = nil }

// WriteTo dumps the buffer as a pcap stream.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	pw, err := NewWriter(w, 0)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, rec := range b.records {
		if err := pw.WriteFrame(rec.Time, rec.Data); err != nil {
			return n, err
		}
		n += int64(16 + len(rec.Data))
	}
	return n + 24, nil
}
