package testbed

import (
	"bytes"
	"testing"
	"time"

	"ddoshield/internal/botnet"
	"ddoshield/internal/features"
	"ddoshield/internal/ids"
	"ddoshield/internal/mitigation"
	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/pcap"
	"ddoshield/internal/sim"
)

// TestPcapCaptureRoundTrip drives the Wireshark-compatibility claim: a
// testbed run captured to pcap parses back frame-for-frame.
func TestPcapCaptureRoundTrip(t *testing.T) {
	tb := smallTestbed(t, 21)
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.AddTap(w.Tap())
	tb.Start()
	if err := tb.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if w.Count() == 0 {
		t.Fatal("nothing captured")
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != w.Count() {
		t.Fatalf("read %d of %d records", len(recs), w.Count())
	}
	// Timestamps are monotone non-decreasing (capture order).
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatal("capture timestamps not monotone")
		}
	}
}

// TestLossyLinksEndToEnd injects random frame loss on every access link:
// the campaign and the benign services must still function (TCP recovers).
func TestLossyLinksEndToEnd(t *testing.T) {
	tb, err := New(Config{
		Seed:         22,
		NumDevices:   5,
		MeanThink:    2 * time.Second,
		ScanInterval: 100 * time.Millisecond,
		Link: netsim.LinkConfig{
			LossProb: 0.02,
			RNG:      sim.NewRNG(99),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	if err := tb.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if tb.InfectedCount() == 0 {
		t.Fatal("no infections over lossy links")
	}
	httpReqs, _ := tb.HTTPServer().Stats()
	if httpReqs == 0 {
		t.Fatal("no HTTP served over lossy links")
	}
}

// TestLargeFleet exercises a 60-device topology — the scalability claim.
func TestLargeFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("large fleet takes seconds")
	}
	tb, err := New(Config{
		Seed:         23,
		NumDevices:   60,
		MeanThink:    5 * time.Second,
		ScanInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	if err := tb.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// 60 devices cycling 5 profiles: 36 vulnerable. Most get conscripted.
	if got := tb.InfectedCount(); got < 20 {
		t.Fatalf("infected = %d of 36 vulnerable", got)
	}
	if tb.C2().Bots() < 20 {
		t.Fatalf("C2 bots = %d", tb.C2().Bots())
	}
}

// TestIDSWindowSweep verifies the Fig. 2 pipeline accepts the paper's
// "user-customizable" window sizes.
func TestIDSWindowSweep(t *testing.T) {
	for _, win := range []time.Duration{500 * time.Millisecond, time.Second, 3 * time.Second} {
		tb := smallTestbed(t, 24)
		unit := ids.New(ids.Config{Window: win, Labeler: tb.Labeler()})
		tb.AddTap(unit.Tap())
		tb.Start()
		if err := tb.Run(15 * time.Second); err != nil {
			t.Fatal(err)
		}
		unit.Flush()
		if unit.WindowSize() != win {
			t.Fatalf("window = %v", unit.WindowSize())
		}
		n := len(unit.Results())
		want := int(15 * time.Second / win)
		if n < want/2 || n > want {
			t.Fatalf("window %v produced %d windows, expected ~%d", win, n, want)
		}
	}
}

// TestDeterministicRuns verifies the reproducibility claim: identical
// seeds give identical traffic, infections and captures.
func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, int, uint64) {
		tb := smallTestbed(t, 25)
		cap := pcap.NewBuffer(0)
		tb.AddTap(cap.Tap())
		tb.Start()
		tb.ScheduleAttackWave(40*time.Second, 3*time.Second,
			tb.DefaultAttackWave(10*time.Second, 200))
		if err := tb.Run(70 * time.Second); err != nil {
			t.Fatal(err)
		}
		probes, _, _, infections := tb.Attacker().Stats()
		return probes, tb.InfectedCount(), uint64(cap.Len()) + infections
	}
	p1, i1, c1 := run()
	p2, i2, c2 := run()
	if p1 != p2 || i1 != i2 || c1 != c2 {
		t.Fatalf("same-seed runs diverged: (%d,%d,%d) vs (%d,%d,%d)", p1, i1, c1, p2, i2, c2)
	}
}

// TestAttackWaveOrdering verifies the wave scheduler serializes vectors
// with the configured gaps.
func TestAttackWaveOrdering(t *testing.T) {
	tb := smallTestbed(t, 26)
	var kinds []botnet.AttackType
	var starts []sim.Time
	// Observe attack onsets via the first flood packet of each type.
	seen := map[botnet.AttackType]bool{}
	tb.AddTap(netsim.DecodeTap(func(p *packet.Packet) {
		var at botnet.AttackType
		switch {
		case p.HasTCP && p.TCP.Flags == packet.FlagSYN && DefaultSpoofRange.Contains(p.IPv4.Src):
			at = botnet.AttackSYN
		case p.HasTCP && p.TCP.Flags == packet.FlagACK && DefaultSpoofRange.Contains(p.IPv4.Src):
			at = botnet.AttackACK
		case p.HasUDP && p.IPv4.Dst == tb.TServerAddr():
			at = botnet.AttackUDP
		default:
			return
		}
		if !seen[at] {
			seen[at] = true
			kinds = append(kinds, at)
			starts = append(starts, p.Time)
		}
	}))
	tb.Start()
	tb.ScheduleAttackWave(60*time.Second, 2*time.Second,
		tb.DefaultAttackWave(5*time.Second, 100))
	if err := tb.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 3 {
		t.Fatalf("observed %d attack types: %v", len(kinds), kinds)
	}
	want := []botnet.AttackType{botnet.AttackSYN, botnet.AttackACK, botnet.AttackUDP}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("wave order = %v", kinds)
		}
	}
	for i := 1; i < len(starts); i++ {
		if gap := starts[i] - starts[i-1]; gap < 6*sim.Second {
			t.Fatalf("vectors overlap: onset gap %v", gap)
		}
	}
}

// TestHTTPFloodIntervalLabeling drives the extended application-level
// vector end-to-end: bots GET-flood the TServer, the header-only oracle
// cannot see it, and the interval-aware labeler can.
func TestHTTPFloodIntervalLabeling(t *testing.T) {
	tb := smallTestbed(t, 27)
	baseLabel := tb.Labeler()
	intervalLabel := tb.LabelerWithIntervals()
	var floodReqs, baseMal, intervalMal int
	tb.AddTap(netsim.DecodeTap(func(p *packet.Packet) {
		b, ok := featuresFromPacket(p)
		if !ok {
			return
		}
		// Count TCP:80 packets toward the TServer from device addresses.
		if b.Proto == packet.ProtoTCP && b.Dst == tb.TServerAddr() && b.DstPort == 80 {
			floodReqs++
			if baseLabel(&b) == 1 {
				baseMal++
			}
			if intervalLabel(&b) == 1 {
				intervalMal++
			}
		}
	}))
	tb.Start()
	if err := tb.Run(90 * time.Second); err != nil { // infection phase
		t.Fatal(err)
	}
	if tb.C2().Bots() == 0 {
		t.Fatal("no bots")
	}
	pre := floodReqs
	tb.C2().Broadcast(botnet.Command{
		Type: botnet.AttackHTTP, Target: tb.TServerAddr(), Port: 80,
		Duration: 10 * time.Second, PPS: 100,
	})
	if err := tb.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if floodReqs-pre < 1000 {
		t.Fatalf("HTTP flood generated only %d packets", floodReqs-pre)
	}
	if baseMal != 0 {
		t.Fatalf("header-only oracle flagged %d HTTP packets (should be blind)", baseMal)
	}
	if intervalMal < (floodReqs-pre)/2 {
		t.Fatalf("interval labeler flagged %d of %d flood-phase packets",
			intervalMal, floodReqs-pre)
	}
	ivs := tb.C2().Intervals()
	if len(ivs) != 1 || ivs[0].Cmd.Type != botnet.AttackHTTP {
		t.Fatalf("intervals = %+v", ivs)
	}
}

// featuresFromPacket adapts packet dissection to the features.Basic type
// without importing the features package under a clashing name.
func featuresFromPacket(p *packet.Packet) (features.Basic, bool) {
	return features.FromPacket(p)
}

// mitigationRule alerts on windows with flood-like SYN behaviour: the
// deterministic stand-in for a trained model in the response-loop test.
type mitigationRule struct{ synRatioIdx, udpIdx int }

func (m mitigationRule) Predict(x []float64) int {
	if x[m.synRatioIdx] > 20 || x[m.udpIdx] > 0.4 {
		return 1
	}
	return 0
}
func (m mitigationRule) Name() string { return "rule" }

// TestMitigationShieldsTServer closes the loop: the IDS detects the flood
// and the responder's firewall rules cut it off at the TServer's ingress
// while benign service continues.
func TestMitigationShieldsTServer(t *testing.T) {
	tb := smallTestbed(t, 28)
	idx := map[string]int{}
	for i, n := range features.Names() {
		idx[n] = i
	}
	fw := mitigation.NewFirewall(tb.Scheduler(), tb.TServer().Host().NIC())
	resp := mitigation.NewResponder(fw, mitigation.ResponderConfig{
		BlockTTL:           time.Minute,
		AggregateThreshold: 8,
	})
	unit := ids.New(ids.Config{
		Model:    mitigationRule{synRatioIdx: idx["win_syn_noack_ratio"], udpIdx: idx["win_udp_fraction"]},
		Window:   time.Second,
		Labeler:  tb.Labeler(),
		OnWindow: resp.HandleWindow,
	})
	tb.AddTap(unit.Tap()) // span port: sees traffic before the firewall
	tb.Start()
	if err := tb.Run(90 * time.Second); err != nil { // infection phase
		t.Fatal(err)
	}
	if tb.C2().Bots() == 0 {
		t.Fatal("no bots recruited")
	}
	preDrops := tb.TServer().Host().NIC().IngressDropped()
	tb.C2().Broadcast(botnet.Command{
		Type: botnet.AttackSYN, Target: tb.TServerAddr(), Port: 80,
		Duration: 20 * time.Second, PPS: 1000,
	})
	if err := tb.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	unit.Flush()

	alerts, _, prefixRules := resp.Stats()
	if alerts == 0 {
		t.Fatal("IDS raised no alert during the flood")
	}
	if prefixRules == 0 {
		t.Fatal("responder installed no prefix rules against the spoofed flood")
	}
	drops := tb.TServer().Host().NIC().IngressDropped() - preDrops
	if drops < 5000 {
		t.Fatalf("firewall dropped only %d flood frames", drops)
	}
	// Benign service survived the (mitigated) attack.
	httpReqs, _ := tb.HTTPServer().Stats()
	if httpReqs == 0 {
		t.Fatal("no HTTP served")
	}
}
