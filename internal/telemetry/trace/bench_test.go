package trace

import "testing"

// TestUnsampledTraceAllocFree pins the fast path the entire simulation rides
// on: a packet whose flow is not sampled must cost zero allocations at the
// origin decision and at every downstream Context method. CI runs this by
// name in the telemetry-overhead job.
func TestUnsampledTraceAllocFree(t *testing.T) {
	tr := New(Config{Seed: 1, SampleRate: 1e-18}) // nonzero rate, ~never samples
	f := Flow{Src: 0x0a000003, Dst: 0x0a000101, SrcPort: 40000, DstPort: 80, Proto: 6}
	if tr.Sampled(f) {
		t.Skip("flow unexpectedly sampled at 1e-18; pick another tuple")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		oc := tr.Origin(0, f, "tcp-tx", "host")
		hop := oc.Start(0, "nic-tx", "host/eth0")
		hop.Finish(0)
		link := hop.Start(0, "link", "a->b")
		link.Drop(1, DropQueueFull)
		oc.FinishTerminal(2)
	})
	if allocs != 0 {
		t.Fatalf("unsampled trace path allocated %.1f/op, want 0", allocs)
	}
}

func BenchmarkOriginUnsampled(b *testing.B) {
	tr := New(Config{Seed: 1, SampleRate: 1e-18})
	f := Flow{Src: 0x0a000003, Dst: 0x0a000101, SrcPort: 40000, DstPort: 80, Proto: 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		oc := tr.Origin(0, f, "tcp-tx", "host")
		oc.Finish(0)
	}
}

func BenchmarkSampledHopChain(b *testing.B) {
	tr := New(Config{SampleRate: 1, SpanCapacity: 1024})
	f := Flow{Src: 0x0a000003, Dst: 0x0a000101, SrcPort: 40000, DstPort: 80, Proto: 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		oc := tr.OriginKind(0, f, KindAttack, "flood-syn", "bot")
		hop := oc.Start(0, "link", "a->b")
		oc.Finish(1)
		hop.Finish(2)
		del := hop.Start(2, "deliver", "srv")
		del.FinishTerminal(3)
	}
}
