//go:build prof_off

package prof

// Enabled is false under -tags prof_off: profiler attach sites compile
// away and the engine never sees a probe.
const Enabled = false
