package testbed

import (
	"bytes"
	"testing"
	"time"

	"ddoshield/internal/botnet"
	"ddoshield/internal/dataset"
	"ddoshield/internal/ids"
	"ddoshield/internal/telemetry/trace"
)

// alwaysMalicious is a stub detector that flags every packet, so the first
// window containing true attack traffic is a correct alert — the cheapest
// way to exercise the detection-latency anchors without training a model.
type alwaysMalicious struct{}

func (alwaysMalicious) Predict([]float64) int { return dataset.Malicious }
func (alwaysMalicious) Name() string          { return "stub" }

// TestTraceEndToEndSpans is the acceptance check for the causal-tracing
// plane: a fully sampled run must produce, for at least one attack flow and
// one benign flow, the complete hop chain origin → nic-tx → link → switch →
// nic-rx → deliver, plus IDS verdict spans and a detection latency.
func TestTraceEndToEndSpans(t *testing.T) {
	tb, err := New(Config{
		Seed:            1,
		NumDevices:      5,
		MeanThink:       2 * time.Second,
		ScanInterval:    100 * time.Millisecond,
		TraceSampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Tracer() == nil {
		t.Fatal("TraceSampleRate > 0 must attach a tracer")
	}
	unit := ids.New(ids.Config{
		Model:   alwaysMalicious{},
		Window:  time.Second,
		Labeler: tb.Labeler(),
		Meter:   tb.IDSContainer(),
	})
	tb.AttachIDS(unit)
	tb.Start()

	// Infection phase, then one commanded SYN flood.
	if err := tb.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	tb.C2().Broadcast(botnet.Command{
		Type: botnet.AttackSYN, Target: tb.TServerAddr(), Port: 80,
		Duration: 5 * time.Second, PPS: 200,
	})
	if err := tb.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	unit.Flush()

	spans := tb.Tracer().Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}

	// Collect the set of hop names per trace, and each trace's kind.
	names := map[trace.TraceID]map[string]bool{}
	kinds := map[trace.TraceID]trace.Kind{}
	verdicts := 0
	for i := range spans {
		sp := &spans[i]
		m := names[sp.Trace]
		if m == nil {
			m = map[string]bool{}
			names[sp.Trace] = m
		}
		m[sp.Name] = true
		if sp.Root() {
			kinds[sp.Trace] = sp.Kind
		}
		if sp.Name == "ids-window" && (sp.Tag == "alert" || sp.Tag == "clear") {
			verdicts++
		}
	}
	chain := []string{"nic-tx", "link", "switch", "nic-rx", "deliver"}
	complete := func(id trace.TraceID, origin string) bool {
		m := names[id]
		if !m[origin] {
			return false
		}
		for _, hop := range chain {
			if !m[hop] {
				return false
			}
		}
		return true
	}
	var haveAttack, haveBenign bool
	for id, k := range kinds {
		switch k {
		case trace.KindAttack:
			if complete(id, "flood-syn") {
				haveAttack = true
			}
		case trace.KindBenign:
			if complete(id, "tcp-tx") {
				haveBenign = true
			}
		}
	}
	if !haveAttack {
		t.Error("no attack trace with the full flood-syn → … → deliver hop chain")
	}
	if !haveBenign {
		t.Error("no benign trace with the full tcp-tx → … → deliver hop chain")
	}
	if verdicts == 0 {
		t.Error("no ids-window spans carrying a verdict tag")
	}

	if _, ok := tb.Tracer().FirstAttackOrigin(); !ok {
		t.Fatal("no first-attack-origin anchor recorded")
	}
	d, ok := tb.DetectionLatency(unit)
	if !ok {
		t.Fatal("detection latency not measurable despite alerts")
	}
	if d < 0 {
		t.Fatalf("negative detection latency %s", d)
	}
	sum := tb.Summary()
	if !bytes.Contains([]byte(sum), []byte("detection    unit=ids latency=")) {
		t.Fatalf("Summary missing detection line:\n%s", sum)
	}
	if !bytes.Contains([]byte(sum), []byte("trace        finished=")) {
		t.Fatalf("Summary missing trace line:\n%s", sum)
	}
}

// TestTraceDeterministicOutput runs the same seeded scenario twice and
// requires byte-identical serialized trace output — the property that makes
// trace diffs meaningful across runs.
func TestTraceDeterministicOutput(t *testing.T) {
	run := func() ([]byte, string) {
		tb, err := New(Config{
			Seed:            11,
			NumDevices:      4,
			MeanThink:       time.Second,
			ScanInterval:    100 * time.Millisecond,
			TraceSampleRate: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		tb.Start()
		if err := tb.Run(45 * time.Second); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteSpans(&buf, tb.Tracer().Spans()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), tb.Summary()
	}
	a, sumA := run()
	b, sumB := run()
	if len(a) == 0 {
		t.Fatal("empty trace output")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed trace outputs differ (%d vs %d bytes)", len(a), len(b))
	}
	if sumA != sumB {
		t.Fatalf("same-seed summaries differ:\n%s\n---\n%s", sumA, sumB)
	}
}
