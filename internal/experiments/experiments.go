// Package experiments encodes the paper's evaluation (§IV) as runnable
// procedures: the dataset-generation run, offline model training, the
// real-time detection run behind Table I, the sustainability measurements
// behind Table II, the per-second accuracy series, and the DDoSim-inherited
// substrate experiments (throughput under attack, bots-connected timeline,
// churn and attack-duration sweeps). cmd/benchtables and the repository's
// benchmarks are thin wrappers around this package.
package experiments

import (
	"fmt"
	"time"

	"ddoshield/internal/botnet"
	"ddoshield/internal/dataset"
	"ddoshield/internal/features"
	"ddoshield/internal/ids"
	"ddoshield/internal/ml"
	"ddoshield/internal/ml/cnn"
	"ddoshield/internal/ml/forest"
	"ddoshield/internal/ml/iforest"
	"ddoshield/internal/ml/kmeans"
	"ddoshield/internal/ml/metrics"
	"ddoshield/internal/ml/modelio"
	"ddoshield/internal/ml/svm"
	"ddoshield/internal/ml/vae"
	"ddoshield/internal/parallel"
	"ddoshield/internal/sim"
	"ddoshield/internal/sysmon"
	"ddoshield/internal/testbed"
)

// Scenario parameterizes one full experiment: a training run, offline
// training, and a real-time detection run. The paper's runs are 10 min
// (training data) and 5 min (real-time detection); the Quick preset scales
// everything down for CI-speed iterations while preserving structure.
type Scenario struct {
	// Seed drives the training run; the detection run uses Seed+1 so the
	// two runs differ exactly as two separate testbed sessions do.
	Seed int64
	// Devices is the fleet size.
	Devices int
	// TrainDuration and DetectDuration are the two run lengths.
	TrainDuration  time.Duration
	DetectDuration time.Duration
	// BenignWarmup delays the first attack of the training run so models
	// see a clean baseline; DetectWarmup is its detection-run counterpart.
	BenignWarmup time.Duration
	DetectWarmup time.Duration
	// AttackDuration and AttackGap shape the repeating SYN/ACK/UDP wave.
	AttackDuration time.Duration
	AttackGap      time.Duration
	// TrainPPS and DetectPPS are per-bot flood rates. Different values
	// model the run-to-run intensity drift real campaigns show.
	TrainPPS  int
	DetectPPS int
	// InfectionLead runs the detection testbed before measurement starts,
	// so the botnet is established when the 5-minute-style evaluation
	// begins (as it was in the paper's real-time runs).
	InfectionLead time.Duration
	// Window is the IDS aggregation window (1 s in the paper).
	Window time.Duration
	// MaxTrainSamples caps the training set via stratified subsampling.
	MaxTrainSamples int
	// ChurnInDetect enables device churn during the detection run.
	ChurnInDetect bool
	// SpeedFactor converts measured compute to IoT-class CPU%
	// (see sysmon package doc).
	SpeedFactor float64
	// Workers bounds experiment-level parallelism: independent model fits
	// and sweep points run on at most this many goroutines. 0 means one
	// worker per CPU; 1 forces serial execution. Results are byte-identical
	// regardless of the setting — every parallel site writes into
	// index-addressed slices and shares no mutable state.
	Workers int
	// TraceSampleRate enables causal packet tracing in every testbed the
	// scenario builds (fraction of flows traced; 0 disables). Tracing
	// anchors the detection-latency measurement, so the presets keep a
	// small rate on by default.
	TraceSampleRate float64
	// Domains partitions every testbed the scenario builds across this
	// many PDES domains (<= 1 is the serial path). Since the gates were
	// lifted, churned and faulted runs are byte-identical either way, so
	// the knob only trades wall-clock for cores.
	Domains int
}

// Quick is the CI-scale preset: ~90 s of simulated training traffic and
// 60 s of detection.
func Quick() Scenario {
	return Scenario{
		Seed:            42,
		Devices:         10,
		TrainDuration:   90 * time.Second,
		DetectDuration:  60 * time.Second,
		BenignWarmup:    30 * time.Second,
		AttackDuration:  12 * time.Second,
		AttackGap:       3 * time.Second,
		DetectWarmup:    5 * time.Second,
		TrainPPS:        400,
		DetectPPS:       600,
		InfectionLead:   75 * time.Second,
		Window:          time.Second,
		MaxTrainSamples: 30000,
		ChurnInDetect:   true,
		SpeedFactor:     200,
		TraceSampleRate: 1.0 / 64,
	}
}

// Paper is the paper-scale preset: 10 min training run, 5 min detection.
func Paper() Scenario {
	s := Quick()
	s.TrainDuration = 10 * time.Minute
	s.DetectDuration = 5 * time.Minute
	s.BenignWarmup = 60 * time.Second
	s.AttackDuration = 30 * time.Second
	s.AttackGap = 10 * time.Second
	s.Devices = 20
	s.MaxTrainSamples = 80000
	return s
}

// buildTestbed assembles a testbed for one run of the scenario.
func (sc Scenario) buildTestbed(seed int64, churn bool) (*testbed.Testbed, error) {
	return testbed.New(testbed.Config{
		Seed:         seed,
		NumDevices:   sc.Devices,
		MeanThink:    3 * time.Second,
		ScanInterval: 150 * time.Millisecond,
		Churn: testbed.ChurnConfig{
			Enabled: churn,
			MeanUp:  90 * time.Second,
		},
		TraceSampleRate: sc.TraceSampleRate,
		Domains:         sc.Domains,
	})
}

// scheduleAttacks arms repeating SYN/ACK/UDP waves from warmup to the end
// of the run.
func (sc Scenario) scheduleAttacks(tb *testbed.Testbed, warmup, total time.Duration, pps int) {
	wave := tb.DefaultAttackWave(sc.AttackDuration, pps)
	period := time.Duration(len(wave))*(sc.AttackDuration+sc.AttackGap) + sc.AttackGap
	for start := warmup; start < total; start += period {
		tb.ScheduleAttackWave(start, sc.AttackGap, wave)
	}
}

// GenerateDataset runs the training-phase testbed and returns the labeled
// corpus — the §IV-D data-generation experiment.
func (sc Scenario) GenerateDataset() (*dataset.Dataset, error) {
	tb, err := sc.buildTestbed(sc.Seed, false)
	if err != nil {
		return nil, err
	}
	dc := tb.NewDatasetCollector(sc.Window)
	tb.AddTap(dc.Tap())
	tb.Start()
	sc.scheduleAttacks(tb, sc.BenignWarmup, sc.TrainDuration, sc.TrainPPS)
	if err := tb.Run(sc.TrainDuration); err != nil {
		return nil, err
	}
	return dc.Dataset(), nil
}

// TrainedModel bundles a trained classifier with its scaler and training
// metrics.
type TrainedModel struct {
	Model ml.Classifier
	// Scaler is non-nil for the models trained on standardized features
	// (K-Means, CNN); RF consumes raw features, as trees are
	// scale-invariant.
	Scaler *dataset.StandardScaler
	// TrainReport holds offline train/test metrics (the §IV-D training
	// evaluation, where all four metrics are defined).
	TrainReport metrics.Report
	// SizeBytes is the serialized (PKL-analog) model size.
	SizeBytes int64
}

// TrainingResult holds the three trained detectors.
type TrainingResult struct {
	RF     TrainedModel
	KMeans TrainedModel
	CNN    TrainedModel
	// DataSummary describes the corpus models were trained on.
	DataSummary dataset.Summary
}

// Models iterates the three detectors in the paper's Table order.
func (tr *TrainingResult) Models() []TrainedModel {
	return []TrainedModel{tr.RF, tr.KMeans, tr.CNN}
}

// TrainModels fits RF, K-Means and CNN on the corpus with an 80/20
// train/test split, mirroring §IV-D's offline training phase.
func (sc Scenario) TrainModels(ds *dataset.Dataset) (*TrainingResult, error) {
	rng := sim.Substream(sc.Seed, "experiments/train")
	work := ds.Subsample(sc.MaxTrainSamples, rng)
	work.Shuffle(rng)
	train, test := work.Split(0.8)

	res := &TrainingResult{DataSummary: ds.Summarize()}

	evaluate := func(m ml.Classifier, scaler *dataset.StandardScaler) metrics.Report {
		var conf metrics.Confusion
		buf := make([]float64, ds.NumFeatures())
		for i := range test.Samples {
			s := &test.Samples[i]
			x := s.X
			if scaler != nil {
				copy(buf, s.X)
				x = scaler.Transform(buf[:len(s.X)])
			}
			conf.Add(s.Y, m.Predict(x))
		}
		return metrics.NewReport(conf)
	}

	// Serial data preparation: everything consuming the shared rng stays in
	// program order so results match the historical serial run exactly.
	//
	// Random Forest data. Per Table I's observed behaviour (61.22% in real
	// time, attributed by §IV-D to the shared per-window statistical
	// features), the paper's RF decides on the window-statistics block; we
	// train it on that block, scikit-style deep (unbounded in sklearn;
	// depth 18 here). TrainFullVectorRF provides the basic∥stats ablation,
	// which recovers to ~98% — the paper's §III-B "aggregation improves
	// accuracy" claim.
	off := features.NumBasic()
	sxsOnly := make([][]float64, train.Len())
	ys := make([]int, train.Len())
	for i := range train.Samples {
		sxsOnly[i] = train.Samples[i].X[off:]
		ys[i] = train.Samples[i].Y
	}

	// Standardized copy for the distance/gradient models.
	scaler := dataset.FitStandard(train)
	scaledTrain := train.Subsample(train.Len(), rng) // deep-enough copy of sample list
	// Subsample copies the sample slice but shares vectors; rescale into
	// fresh vectors to leave the raw corpus untouched.
	for i := range scaledTrain.Samples {
		scaledTrain.Samples[i].X = scaler.Transformed(scaledTrain.Samples[i].X)
	}
	sxs, sys := scaledTrain.XY()

	// The three fits are independent (each seeds its own substream) and
	// evaluate against the read-only test split, so they run on the worker
	// pool; each writes only its own TrainedModel slot and error slot.
	fits := []func() error{
		func() error {
			rfInner, err := forest.Train(forest.Config{
				Trees: 60, MaxDepth: 18, MinSamplesLeaf: 1, Seed: sc.Seed + 11,
			}, sxsOnly, ys)
			if err != nil {
				return fmt.Errorf("train rf: %w", err)
			}
			rf := ml.OffsetView{Inner: rfInner, Offset: off}
			res.RF = TrainedModel{Model: rf, TrainReport: evaluate(rf, nil)}
			return nil
		},
		func() error {
			km, err := kmeans.Train(kmeans.Config{
				InitClusters: 24, Gamma: 1.5, Seed: sc.Seed + 12,
			}, sxs, sys)
			if err != nil {
				return fmt.Errorf("train kmeans: %w", err)
			}
			res.KMeans = TrainedModel{Model: km, Scaler: scaler, TrainReport: evaluate(km, scaler)}
			return nil
		},
		func() error {
			net, _, err := cnn.Train(cnn.Config{
				Conv1Filters: 8, Conv2Filters: 16, Hidden: 48,
				Epochs: 6, BatchSize: 64, LearningRate: 0.01, Seed: sc.Seed + 13,
			}, sxs, sys)
			if err != nil {
				return fmt.Errorf("train cnn: %w", err)
			}
			res.CNN = TrainedModel{Model: net, Scaler: scaler, TrainReport: evaluate(net, scaler)}
			return nil
		},
	}
	errs := make([]error, len(fits))
	parallel.For(len(fits), sc.Workers, func(i int) { errs[i] = fits[i]() })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	for _, tm := range []*TrainedModel{&res.RF, &res.KMeans, &res.CNN} {
		m := tm.Model
		if v, ok := m.(ml.OffsetView); ok {
			m = v.Inner
		}
		size, err := modelio.SizeBytes(m)
		if err != nil {
			return nil, err
		}
		tm.SizeBytes = size
	}
	return res, nil
}

// TrainFullVectorRF fits a Random Forest on the full basic∥stats vector —
// the feature-aggregation ablation. With per-packet basic features
// available, the forest separates the classes inside mixed windows and
// real-time accuracy recovers, demonstrating §III-B's claim that the
// aggregation "prevents the misclassification of packets belonging to
// different classes within the same time window".
func (sc Scenario) TrainFullVectorRF(ds *dataset.Dataset) (*forest.Forest, error) {
	rng := sim.Substream(sc.Seed, "experiments/train-fullrf")
	work := ds.Subsample(sc.MaxTrainSamples, rng)
	work.Shuffle(rng)
	train, _ := work.Split(0.8)
	xs, ys := train.XY()
	return forest.Train(forest.Config{
		Trees: 60, MaxDepth: 18, MinSamplesLeaf: 1, Seed: sc.Seed + 11,
	}, xs, ys)
}

// Table1Row is one row of Table I plus the per-second detail behind the
// §IV-D boundary-dip discussion.
type Table1Row struct {
	Model string
	// AvgAccuracy is the mean per-window accuracy (the table's number).
	AvgAccuracy float64
	// MinAccuracy is the worst single window (the reported dip).
	MinAccuracy float64
	// Series is the full per-window accuracy timeline.
	Series []ids.WindowResult
}

// Table2Row is one row of Table II.
type Table2Row struct {
	Model       string
	CPUPercent  float64
	MemoryKb    float64
	ModelSizeKb float64
}

// DetectionRow is one model's detection-latency measurement: the gap
// between the first attack packet leaving its origin and the model's first
// alert on a window that truly contained attack traffic.
type DetectionRow struct {
	Model   string
	Latency time.Duration
	// Detected is false when the unit never correctly alerted (Latency is
	// then meaningless).
	Detected bool
}

// RealTimeResult bundles the detection-run outputs.
type RealTimeResult struct {
	Table1 []Table1Row
	Table2 []Table2Row
	// Detection holds per-model detection latencies, in Table order.
	Detection []DetectionRow
	// Packets is the number of packets each unit classified.
	Packets uint64
}

// RunRealTime executes the 5-minute-style real-time detection run for the
// paper's three models: all observe the same fresh traffic concurrently
// (same tap, same windows), exactly as the testbed evaluates them in the
// same environment.
func (sc Scenario) RunRealTime(tr *TrainingResult) (*RealTimeResult, error) {
	return sc.RunRealTimeModels(tr.Models())
}

// RunRealTimeModels executes the real-time detection run for an arbitrary
// detector list (e.g. the §V extension models).
func (sc Scenario) RunRealTimeModels(models []TrainedModel) (*RealTimeResult, error) {
	tb, err := sc.buildTestbed(sc.Seed+1, sc.ChurnInDetect)
	if err != nil {
		return nil, err
	}
	type liveUnit struct {
		name string
		unit *ids.Unit
		mon  *sysmon.Monitor
		size int64
	}
	// Establish the botnet before measurement begins.
	tb.Start()
	if err := tb.Run(sc.InfectionLead); err != nil {
		return nil, err
	}
	lead := time.Duration(tb.Scheduler().Now())
	units := make([]liveUnit, 0, len(models))
	for _, tm := range models {
		u := ids.New(ids.Config{
			Model:    tm.Model,
			Scaler:   tm.Scaler,
			Window:   sc.Window,
			Labeler:  tb.Labeler(),
			Meter:    tb.IDSContainer(),
			Name:     tm.Model.Name(),
			Registry: tb.Registry(),
			Recorder: tb.Recorder(),
		})
		tb.AttachIDS(u)
		mon := sysmon.NewMonitor(u, sc.Window)
		mon.Start(tb.Scheduler())
		mon.Publish(tb.Registry(), tm.Model.Name(), sc.SpeedFactor)
		units = append(units, liveUnit{name: tm.Model.Name(), unit: u, mon: mon, size: tm.SizeBytes})
	}
	sc.scheduleAttacks(tb, lead+sc.DetectWarmup, lead+sc.DetectDuration, sc.DetectPPS)
	if err := tb.Run(sc.DetectDuration); err != nil {
		return nil, err
	}
	res := &RealTimeResult{}
	for _, lu := range units {
		lu.unit.Flush()
		lu.mon.Stop()
		res.Table1 = append(res.Table1, Table1Row{
			Model:       lu.name,
			AvgAccuracy: lu.unit.AverageAccuracy(),
			MinAccuracy: lu.unit.MinAccuracy(),
			Series:      lu.unit.Results(),
		})
		rep := lu.mon.Report(sc.SpeedFactor)
		res.Table2 = append(res.Table2, Table2Row{
			Model:       lu.name,
			CPUPercent:  rep.CPUPercent,
			MemoryKb:    rep.PeakMemKb,
			ModelSizeKb: float64(lu.size) / 1024,
		})
		d, ok := tb.DetectionLatency(lu.unit)
		res.Detection = append(res.Detection, DetectionRow{Model: lu.name, Latency: d, Detected: ok})
		res.Packets = lu.unit.PacketsSeen()
	}
	return res, nil
}

// RunAll executes the full pipeline: generate, train, detect.
func (sc Scenario) RunAll() (*dataset.Dataset, *TrainingResult, *RealTimeResult, error) {
	ds, err := sc.GenerateDataset()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("generate: %w", err)
	}
	tr, err := sc.TrainModels(ds)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("train: %w", err)
	}
	rt, err := sc.RunRealTime(tr)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("detect: %w", err)
	}
	return ds, tr, rt, nil
}

// TrainExtendedModels fits the three additional detectors the paper's §V
// plans to study — linear SVM, Isolation Forest and a VAE anomaly detector
// — on the same standardized features as K-Means and the CNN. The VAE
// trains on benign rows only (semi-supervised); the Isolation Forest's
// threshold is calibrated to the training contamination.
func (sc Scenario) TrainExtendedModels(ds *dataset.Dataset) ([]TrainedModel, error) {
	rng := sim.Substream(sc.Seed, "experiments/train-ext")
	work := ds.Subsample(sc.MaxTrainSamples, rng)
	work.Shuffle(rng)
	train, test := work.Split(0.8)
	scaler := dataset.FitStandard(train)
	scaler.Apply(train)
	scaler.Apply(test)
	xs, ys := train.XY()

	evaluate := func(m ml.Classifier) metrics.Report {
		var conf metrics.Confusion
		for i := range test.Samples {
			conf.Add(test.Samples[i].Y, m.Predict(test.Samples[i].X))
		}
		return metrics.NewReport(conf)
	}

	sv, err := svm.Train(svm.Config{Seed: sc.Seed + 21}, xs, ys)
	if err != nil {
		return nil, fmt.Errorf("train svm: %w", err)
	}
	ifo, err := iforest.Train(iforest.Config{Seed: sc.Seed + 22}, xs, ys)
	if err != nil {
		return nil, fmt.Errorf("train iforest: %w", err)
	}
	va, err := vae.Train(vae.Config{Seed: sc.Seed + 23}, xs, ys)
	if err != nil {
		return nil, fmt.Errorf("train vae: %w", err)
	}

	out := make([]TrainedModel, 0, 3)
	for _, m := range []ml.Classifier{sv, ifo, va} {
		size, err := modelio.SizeBytes(m)
		if err != nil {
			return nil, err
		}
		out = append(out, TrainedModel{
			Model:       m,
			Scaler:      scaler,
			TrainReport: evaluate(m),
			SizeBytes:   size,
		})
	}
	return out, nil
}

// FormatTable1 renders rows in the paper's Table I layout.
func FormatTable1(rows []Table1Row) string {
	out := "Model    | Accuracy (%)\n---------+-------------\n"
	for _, r := range rows {
		out += fmt.Sprintf("%-8s | %6.2f\n", displayName(r.Model), r.AvgAccuracy*100)
	}
	return out
}

// FormatTable2 renders rows in the paper's Table II layout.
func FormatTable2(rows []Table2Row) string {
	out := "Model    | CPU (%) | Memory (Kb) | Model Size (Kb)\n---------+---------+-------------+----------------\n"
	for _, r := range rows {
		out += fmt.Sprintf("%-8s | %7.2f | %11.2f | %14.2f\n",
			displayName(r.Model), r.CPUPercent, r.MemoryKb, r.ModelSizeKb)
	}
	return out
}

// FormatDetection renders the per-model detection-latency table.
func FormatDetection(rows []DetectionRow) string {
	out := "Model    | Detection latency\n---------+------------------\n"
	for _, r := range rows {
		lat := "n/a"
		if r.Detected {
			lat = r.Latency.String()
		}
		out += fmt.Sprintf("%-8s | %s\n", displayName(r.Model), lat)
	}
	return out
}

func displayName(name string) string {
	switch name {
	case "rf":
		return "RF"
	case "kmeans":
		return "K-Means"
	case "cnn":
		return "CNN"
	case "svm":
		return "SVM"
	case "iforest":
		return "IF"
	case "vae":
		return "VAE"
	}
	return name
}

// BotsTimeline runs an infection-phase-only scenario and returns the
// connected-bots population samples — DDoSim's bots-connected figure.
func (sc Scenario) BotsTimeline(churn bool, dur time.Duration) ([]botnet.PopulationSample, error) {
	tb, err := sc.buildTestbed(sc.Seed, churn)
	if err != nil {
		return nil, err
	}
	tb.Start()
	if err := tb.Run(dur); err != nil {
		return nil, err
	}
	return tb.C2().History(), nil
}
