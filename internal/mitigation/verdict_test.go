package mitigation

import (
	"testing"
	"time"

	"ddoshield/internal/ids"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/trace"
)

// testHist returns a standalone age histogram (a nil registry hands out
// functional unregistered instances).
func testHist() *telemetry.Histogram {
	return (*telemetry.Registry)(nil).NewHistogram("age", cacheAgeBounds)
}

func TestVerdictCacheHitExpireAndRevInvalidation(t *testing.T) {
	vc := newVerdictCache(64, testHist())
	k := flowKey{src: 1, dst: 2, ports: 3, proto: packet.ProtoUDP}
	vc.insert(k, VerdictDrop, 0, 1, 0, 100*sim.Millisecond)
	e := vc.lookup(k, 50*sim.Millisecond, 1)
	if e == nil || e.verdict != VerdictDrop {
		t.Fatal("live entry missed")
	}
	if vc.hits.Value() != 1 {
		t.Fatalf("hits = %d", vc.hits.Value())
	}
	// A rule change bumps the revision: the memoized verdict must die even
	// though its expiry is still in the future.
	if e := vc.lookup(k, 60*sim.Millisecond, 2); e != nil {
		t.Fatal("stale-revision entry returned")
	}
	if vc.expirations.Value() != 1 {
		t.Fatalf("expirations after rev bump = %d", vc.expirations.Value())
	}
	// Reinsert under the new revision, then age it out by time.
	vc.insert(k, VerdictAllow, 0, 2, 60*sim.Millisecond, 200*sim.Millisecond)
	if e := vc.lookup(k, 200*sim.Millisecond, 2); e != nil {
		t.Fatal("expired entry returned")
	}
	if vc.expirations.Value() != 2 {
		t.Fatalf("expirations after TTL = %d", vc.expirations.Value())
	}
}

func TestVerdictCacheEvictsEarliestExpiring(t *testing.T) {
	// A probeWindow-sized table: every probe covers the whole table, so
	// eight distinct keys fill it completely.
	vc := newVerdictCache(probeWindow, testHist())
	for i := 0; i < probeWindow; i++ {
		vc.insert(flowKey{src: uint32(i + 1)}, VerdictAllow, 0, 1, 0, sim.Time(i+1)*sim.Second)
	}
	if vc.evictions.Value() != 0 {
		t.Fatalf("evictions while table had room = %d", vc.evictions.Value())
	}
	// The ninth insert must deterministically evict the earliest-expiring
	// entry (src=1, expiry 1 s), never an arbitrary one.
	vc.insert(flowKey{src: 99}, VerdictDrop, 0, 1, 0, 10*sim.Second)
	if vc.evictions.Value() != 1 {
		t.Fatalf("evictions = %d", vc.evictions.Value())
	}
	if e := vc.lookup(flowKey{src: 1}, 0, 1); e != nil {
		t.Fatal("earliest-expiring entry survived the eviction")
	}
	if e := vc.lookup(flowKey{src: 99}, 0, 1); e == nil || e.verdict != VerdictDrop {
		t.Fatal("newly inserted entry missing")
	}
}

func TestVerdictCacheSweepAndSize(t *testing.T) {
	vc := newVerdictCache(64, testHist())
	vc.insert(flowKey{src: 1}, VerdictDrop, 0, 1, 0, sim.Second)
	vc.insert(flowKey{src: 2}, VerdictDrop, 0, 1, 0, 3*sim.Second)
	if n := vc.size(0, 1); n != 2 {
		t.Fatalf("size = %d, want 2", n)
	}
	vc.sweep(2*sim.Second, 1)
	if vc.expirations.Value() != 1 {
		t.Fatalf("sweep expired %d entries, want 1", vc.expirations.Value())
	}
	if n := vc.size(2*sim.Second, 1); n != 1 {
		t.Fatalf("size after sweep = %d, want 1", n)
	}
	// A revision bump makes the survivor stale too.
	vc.sweep(2*sim.Second, 2)
	if n := vc.size(2*sim.Second, 2); n != 0 {
		t.Fatalf("size after rev sweep = %d, want 0", n)
	}
}

func TestFirewallRateLimitVerdict(t *testing.T) {
	s, client, server := pair(t)
	fw := NewFirewall(s, server.NIC())
	got := 0
	if _, err := server.ListenUDP(9, func(packet.Addr, uint16, []byte) { got++ }); err != nil {
		t.Fatal(err)
	}
	sock, err := client.ListenUDP(5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	// First datagram resolves ARP and lands normally.
	sock.SendTo(server.Addr(), 9, []byte("x"))
	s.RunFor(time.Second)
	if got != 1 {
		t.Fatalf("pre-rule delivery = %d", got)
	}
	flow := trace.Flow{
		Src: client.Addr().Uint32(), Dst: server.Addr().Uint32(),
		SrcPort: 5000, DstPort: 9, Proto: packet.ProtoUDP,
	}
	fw.InstallFlowVerdicts([]trace.Flow{flow}, VerdictRateLimit, 4, time.Minute)
	if fw.BlockedFlows() != 1 {
		t.Fatalf("BlockedFlows = %d", fw.BlockedFlows())
	}
	for i := 0; i < 8; i++ {
		sock.SendTo(server.Addr(), 9, []byte("y"))
		s.RunFor(100 * time.Millisecond)
	}
	// keep=4 passes counts 1 and 5 of the 8 limited frames.
	if got != 3 {
		t.Fatalf("delivered %d datagrams, want 3 (1 pre-rule + 2 kept)", got)
	}
	if fw.RateLimited() != 6 {
		t.Fatalf("RateLimited = %d, want 6", fw.RateLimited())
	}
}

// TestStatsMatchRegistryCounters pins the shared-counter contract: Stats()
// and friends are thin adapters over the same telemetry.Counter instances
// the registry exports, so the two views can never drift.
func TestStatsMatchRegistryCounters(t *testing.T) {
	s, client, server := pair(t)
	reg := telemetry.NewRegistry()
	fw := NewFirewallConfig(s, server.NIC(), FirewallConfig{Registry: reg, Name: "fw0"})
	resp := NewResponder(fw, ResponderConfig{Registry: reg, Name: "r0"})
	if _, err := server.ListenUDP(9, nil); err != nil {
		t.Fatal(err)
	}
	sock, err := client.ListenUDP(5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(server.Addr(), 9, []byte("1"))
	s.RunFor(time.Second)
	resp.HandleWindow(&ids.WindowResult{Alert: true, FlaggedSrcs: []packet.Addr{client.Addr()}})
	for i := 0; i < 5; i++ {
		sock.SendTo(server.Addr(), 9, []byte("2"))
		s.RunFor(100 * time.Millisecond)
	}
	sums := map[string]float64{}
	for _, m := range reg.Snapshot() {
		sums[m.Name] += m.Value
	}
	evaluated, dropped := fw.Stats()
	if dropped == 0 {
		t.Fatal("no drops recorded; the adapter comparison would be vacuous")
	}
	addr, prefix, flowHits := fw.RuleHits()
	alerts, addrRules, prefixRules := resp.Stats()
	for _, tc := range []struct {
		metric string
		value  uint64
	}{
		{"mitigation_frames_evaluated_total", evaluated},
		{"mitigation_frames_dropped_total", dropped},
		{"mitigation_frames_rate_limited_total", fw.RateLimited()},
		{"mitigation_collateral_drops_total", fw.CollateralDrops()},
		{"mitigation_attack_drops_total", fw.AttackDrops()},
		{"mitigation_attack_passed_total", fw.AttackPassed()},
		{"mitigation_rule_hits_total", addr + prefix + flowHits},
		{"mitigation_cache_hits_total", fw.CacheStats().Hits},
		{"mitigation_cache_inserts_total", fw.CacheStats().Inserts},
		{"mitigation_responder_alerts_total", alerts},
		{"mitigation_responder_rules_total", addrRules + prefixRules + resp.FlowRules()},
	} {
		got, ok := sums[tc.metric]
		if !ok {
			t.Fatalf("%s not exported by the registry", tc.metric)
		}
		if got != float64(tc.value) {
			t.Fatalf("%s: registry = %v, adapter = %d", tc.metric, got, tc.value)
		}
	}
}

// TestMitigationIngressAllocFree pins the hot-path contract the CI alloc
// guard enforces: admitting a frame allocates nothing, on cache hits and
// on misses that re-evaluate the rule tables alike.
func TestMitigationIngressAllocFree(t *testing.T) {
	s, client, server := pair(t)
	fw := NewFirewall(s, server.NIC())
	fw.BlockAddr(client.Addr(), time.Hour)
	raw := packet.BuildTCP(client.MAC(), server.MAC(),
		packet.IPv4{TTL: 64, Src: client.Addr(), Dst: server.Addr()},
		packet.TCP{SrcPort: 4000, DstPort: 80, Flags: packet.FlagSYN, Window: 512},
		nil)
	var tc trace.Context
	fw.admit(raw, tc) // warm: memoize the drop verdict
	if a := testing.AllocsPerRun(200, func() { fw.admit(raw, tc) }); a != 0 {
		t.Fatalf("cache-hit admit: %v allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		fw.bumpRev() // invalidate: force the miss + rule-evaluation path
		fw.admit(raw, tc)
	}); a != 0 {
		t.Fatalf("cache-miss admit: %v allocs/op, want 0", a)
	}
}

func TestResponderReactionDelay(t *testing.T) {
	s, client, server := pair(t)
	fw := NewFirewall(s, server.NIC())
	resp := NewResponder(fw, ResponderConfig{ReactionDelay: 2 * time.Second})
	resp.HandleWindow(&ids.WindowResult{Alert: true, FlaggedSrcs: []packet.Addr{client.Addr()}})
	if fw.BlockedAddrs() != 0 {
		t.Fatal("rules installed before the reaction delay elapsed")
	}
	s.RunFor(time.Second)
	if fw.BlockedAddrs() != 0 {
		t.Fatal("rules installed mid-delay")
	}
	s.RunFor(2 * time.Second)
	if fw.BlockedAddrs() != 1 {
		t.Fatalf("BlockedAddrs after delay = %d, want 1", fw.BlockedAddrs())
	}
}

func TestResponderFlowRulesSkipProtected(t *testing.T) {
	s, _, server := pair(t)
	fw := NewFirewall(s, server.NIC())
	protected := packet.AddrFrom4(10, 0, 9, 9)
	resp := NewResponder(fw, ResponderConfig{Protected: []packet.Addr{protected}})
	resp.HandleWindow(&ids.WindowResult{Alert: true, FlaggedFlows: []trace.Flow{
		{Src: packet.AddrFrom4(10, 0, 200, 1).Uint32(), Dst: server.Addr().Uint32(), SrcPort: 1234, DstPort: 80, Proto: packet.ProtoTCP},
		{Src: protected.Uint32(), Dst: server.Addr().Uint32(), SrcPort: 1235, DstPort: 80, Proto: packet.ProtoTCP},
	}})
	if fw.BlockedFlows() != 1 {
		t.Fatalf("BlockedFlows = %d, want 1 (protected flow filtered)", fw.BlockedFlows())
	}
	if resp.FlowRules() != 1 {
		t.Fatalf("FlowRules = %d, want 1", resp.FlowRules())
	}
}
