package container

import (
	"testing"
	"time"

	"ddoshield/internal/netsim"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

func testRuntime(t *testing.T) (*sim.Scheduler, *Runtime, *netsim.Switch) {
	t.Helper()
	s := sim.NewScheduler()
	net := netsim.New(s)
	return s, NewRuntime(net), net.NewSwitch("sw0")
}

func spec(name string, hostByte byte) Spec {
	return Spec{
		Name:  name,
		Image: "test:latest",
		Host: netstack.HostConfig{
			Addr:   packet.AddrFrom4(10, 0, 0, hostByte),
			Subnet: packet.MustParsePrefix("10.0.0.0/24"),
			Seed:   int64(hostByte),
		},
	}
}

func TestCreateAndLookup(t *testing.T) {
	_, rt, sw := testRuntime(t)
	c, err := rt.Create(spec("dev1", 10), sw, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Get("dev1") != c {
		t.Fatal("Get lookup failed")
	}
	if rt.Get("missing") != nil {
		t.Fatal("Get returned phantom container")
	}
	if len(rt.Containers()) != 1 {
		t.Fatal("Containers() length")
	}
	if c.State() != StateCreated {
		t.Fatalf("initial state = %v", c.State())
	}
	if c.Addr() != packet.AddrFrom4(10, 0, 0, 10) {
		t.Fatalf("Addr = %v", c.Addr())
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	_, rt, sw := testRuntime(t)
	if _, err := rt.Create(spec("dup", 1), sw, netsim.LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Create(spec("dup", 2), sw, netsim.LinkConfig{}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestAppLifecycle(t *testing.T) {
	_, rt, sw := testRuntime(t)
	started, stopped := 0, 0
	app := AppFuncs{
		OnStart: func(c *Container) { started++ },
		OnStop:  func() { stopped++ },
	}
	sp := spec("app", 3)
	sp.App = app
	c, err := rt.Create(sp, sw, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Start() // idempotent
	if started != 1 || c.State() != StateRunning {
		t.Fatalf("started=%d state=%v", started, c.State())
	}
	c.Stop()
	c.Stop() // idempotent
	if stopped != 1 || c.State() != StateStopped {
		t.Fatalf("stopped=%d state=%v", stopped, c.State())
	}
	c.Start()
	if c.Restarts() != 1 {
		t.Fatalf("Restarts() = %d, want 1", c.Restarts())
	}
}

func TestStopCutsNetwork(t *testing.T) {
	s, rt, sw := testRuntime(t)
	a, err := rt.Create(spec("a", 1), sw, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Create(spec("b", 2), sw, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	got := 0
	if _, err := b.Host().ListenUDP(9, func(packet.Addr, uint16, []byte) { got++ }); err != nil {
		t.Fatal(err)
	}
	sock, err := a.Host().ListenUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(b.Addr(), 9, []byte("1"))
	s.Drain()
	if got != 1 {
		t.Fatalf("pre-stop delivery = %d", got)
	}
	b.Stop()
	sock.SendTo(b.Addr(), 9, []byte("2"))
	s.Drain()
	if got != 1 {
		t.Fatal("stopped container still received traffic")
	}
	b.Start()
	sock.SendTo(b.Addr(), 9, []byte("3"))
	s.Drain()
	if got != 2 {
		t.Fatal("restarted container unreachable")
	}
}

func TestCPUAccounting(t *testing.T) {
	_, rt, sw := testRuntime(t)
	c, err := rt.Create(spec("cpu", 4), sw, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c.AddCPU(30 * time.Millisecond)
	c.AddCPU(20 * time.Millisecond)
	c.AddCPU(-5 * time.Millisecond) // negative ignored
	if got := c.CPUTime(); got != 50*time.Millisecond {
		t.Fatalf("CPUTime = %v", got)
	}
	done := c.MeterCPU()
	busyWait(2 * time.Millisecond)
	done()
	if c.CPUTime() < 52*time.Millisecond {
		t.Fatalf("MeterCPU attributed too little: %v", c.CPUTime())
	}
}

func busyWait(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

func TestMemAccounting(t *testing.T) {
	_, rt, sw := testRuntime(t)
	c, err := rt.Create(spec("mem", 5), sw, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c.SetMem("model", 700<<10)
	c.SetMem("buffer", 100<<10)
	if got := c.MemBytes(); got != 800<<10 {
		t.Fatalf("MemBytes = %d", got)
	}
	c.SetMem("buffer", 50<<10)
	if got := c.MemBytes(); got != 750<<10 {
		t.Fatalf("MemBytes after shrink = %d", got)
	}
	if got := c.MemPeakBytes(); got != 800<<10 {
		t.Fatalf("MemPeakBytes = %d", got)
	}
	c.SetMem("model", 0)
	if got := c.MemBytes(); got != 50<<10 {
		t.Fatalf("MemBytes after release = %d", got)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StateCreated: "created", StateRunning: "running", StateStopped: "stopped",
	} {
		if st.String() != want {
			t.Fatalf("%v", st)
		}
	}
}
