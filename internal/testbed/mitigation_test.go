package testbed

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"

	"ddoshield/internal/ids"
	"ddoshield/internal/netsim"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/trace"
)

// pdesMitigatedArtifacts is pdesFaultedArtifacts with the detection loop
// closed: the full chaos stack (churn, five-kind fault plan, lossy access
// and trunk links) plus an IDS unit driving the verdict-cache firewall at
// the TServer ingress. The IDS unit itself registers no metrics —
// ids_window_cpu_us is wall-clock — so every exported byte derives from
// simulated time.
func pdesMitigatedArtifacts(t *testing.T, domains, workers int) (summary, prom, spans string) {
	t.Helper()
	tb, err := New(Config{
		Seed:         42,
		NumDevices:   12,
		DeviceGroups: 4,
		MeanThink:    700 * time.Millisecond,
		Domains:      domains,
		PDESWorkers:  workers,
		ScanInterval: 100 * time.Millisecond,
		Churn: ChurnConfig{
			Enabled:  true,
			MeanUp:   14 * time.Second,
			MeanDown: time.Second,
		},
		Faults:            chaosPlan(),
		Link:              netsim.LinkConfig{LossProb: 0.01},
		TrunkLink:         netsim.LinkConfig{LossProb: 0.02},
		TraceSampleRate:   0.5,
		TraceSpanCapacity: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	unit := ids.New(ids.Config{
		Model:   ids.NewThresholdRule(),
		Window:  time.Second,
		Labeler: tb.Labeler(),
	})
	tb.AttachIDS(unit)
	tb.AttachMitigation(unit, MitigationConfig{})
	tb.Start()
	// The wave starts later and floods harder than the plain faulted
	// campaign: infection needs ~12 s under churn, and the threshold rule
	// only trips when the flood actually dominates a window.
	tb.ScheduleAttackWave(12*time.Second, 2*time.Second,
		tb.DefaultAttackWave(4*time.Second, 1500))
	if err := tb.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	unit.Flush()
	if tb.Tracer().Evicted() != 0 {
		t.Fatalf("span ring evicted %d spans; grow TraceSpanCapacity", tb.Tracer().Evicted())
	}
	var pb, sb bytes.Buffer
	if err := telemetry.WritePrometheus(&pb, tb.Registry()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSpans(&sb, trace.CanonicalSpans(tb.Tracer().Spans())); err != nil {
		t.Fatal(err)
	}
	return tb.Summary(), pb.String(), sb.String()
}

// TestPDESMitigatedCampaignDeterminism is the acceptance test for the
// closed mitigation loop under the parallel engine: a faulted campaign
// with inline mitigation active — verdict-cache aging, reaction installs
// and rule expiry all in play — must produce byte-identical Summary
// output, Prometheus snapshots and canonical trace spans across
// Domains ∈ {1, 2, NumCPU}. Run under -race in CI.
func TestPDESMitigatedCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("mitigated determinism matrix is slow")
	}
	wantSummary, wantProm, wantSpans := pdesMitigatedArtifacts(t, 1, 1)
	if !strings.Contains(wantSummary, "mitigation") {
		t.Fatalf("mitigated baseline has no mitigation summary lines:\n%s", wantSummary)
	}
	if !strings.Contains(wantProm, "mitigation_frames_dropped_total") {
		t.Fatal("mitigation counters missing from the Prometheus snapshot")
	}
	if !strings.Contains(wantSpans, `"mitigated"`) {
		t.Fatal("no sampled flow was terminated by the mitigation hop")
	}
	cpus := runtime.NumCPU()
	if cpus < 4 {
		cpus = 4
	}
	for _, tc := range []struct{ domains, workers int }{
		{2, 0},
		{cpus, 0},
	} {
		summary, prom, spans := pdesMitigatedArtifacts(t, tc.domains, tc.workers)
		if summary != wantSummary {
			t.Fatalf("domains=%d workers=%d: mitigated Summary diverged\n--- serial ---\n%s--- parallel ---\n%s",
				tc.domains, tc.workers, wantSummary, summary)
		}
		if prom != wantProm {
			t.Fatalf("domains=%d workers=%d: mitigated Prometheus snapshot diverged (%d vs %d bytes)",
				tc.domains, tc.workers, len(wantProm), len(prom))
		}
		if spans != wantSpans {
			t.Fatalf("domains=%d workers=%d: mitigated canonical span output diverged (%d vs %d bytes)",
				tc.domains, tc.workers, len(wantSpans), len(spans))
		}
	}
}

// TestMitigationScoreboard drives a small clean campaign through the
// closed loop and checks the observable outcomes end to end: detection
// precedes mitigation, attack traffic is actually dropped, and the
// scoreboard JSON carries the full accounting.
func TestMitigationScoreboard(t *testing.T) {
	tb, err := New(Config{Seed: 42, NumDevices: 8, DeviceGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	unit := ids.New(ids.Config{
		Model:   ids.NewThresholdRule(),
		Window:  time.Second,
		Labeler: tb.Labeler(),
	})
	tb.AttachIDS(unit)
	fw := tb.AttachMitigation(unit, MitigationConfig{})
	tb.Start()
	tb.ScheduleAttackWave(15*time.Second, 0, tb.DefaultAttackWave(6*time.Second, 300))
	if err := tb.Run(40 * time.Second); err != nil {
		t.Fatal(err)
	}
	unit.Flush()

	det, ok := tb.DetectionLatency(unit)
	if !ok {
		t.Fatal("flood never detected")
	}
	ttm, ok := tb.TimeToMitigate(fw)
	if !ok {
		t.Fatal("mitigation never engaged")
	}
	if ttm < det {
		t.Fatalf("time-to-mitigate %v precedes detection latency %v", ttm, det)
	}
	if fw.AttackDrops() == 0 {
		t.Fatal("no attack frames dropped")
	}
	if !strings.Contains(tb.Summary(), "time-to-mitigate=") {
		t.Fatalf("Summary misses the mitigate line:\n%s", tb.Summary())
	}

	sb := tb.MitigationScoreboard()
	if len(sb.Units) != 1 {
		t.Fatalf("scoreboard units = %d, want 1", len(sb.Units))
	}
	u := sb.Units[0]
	if u.Unit != unit.Name() {
		t.Fatalf("scoreboard unit = %q", u.Unit)
	}
	if u.TimeToMitigateS != ttm.Seconds() || u.DetectionLatencyS != det.Seconds() {
		t.Fatalf("scoreboard latencies (%v, %v) disagree with accessors (%v, %v)",
			u.DetectionLatencyS, u.TimeToMitigateS, det.Seconds(), ttm.Seconds())
	}
	if u.AttackDrops != fw.AttackDrops() || u.Evaluated == 0 {
		t.Fatalf("scoreboard accounting diverges: %+v", u)
	}
	data, err := sb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back MitigationScoreboard
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("scoreboard JSON does not round-trip: %v", err)
	}
	if len(back.Units) != 1 || back.Units[0].AttackDrops != u.AttackDrops {
		t.Fatal("scoreboard JSON lost fields")
	}
}
