package experiments

import (
	"reflect"
	"testing"
	"time"
)

// TestResilienceParallelMatchesSerial is the determinism regression guard
// for the parallel sweep: a forced-serial run (Workers=1) and a parallel run
// (Workers=4) at the same seed must produce identical Points and identical
// rendered reports, byte for byte.
func TestResilienceParallelMatchesSerial(t *testing.T) {
	sc := tiny()
	sc.Devices = 5
	sc.InfectionLead = 30 * time.Second
	sc.DetectDuration = 40 * time.Second
	models := []TrainedModel{
		{Model: constModel{name: "allpos", class: 1}},
		{Model: constModel{name: "allneg", class: 0}},
	}
	cfg := ResilienceConfig{Intensities: []float64{0, 0.5, 1}}

	sc.Workers = 1
	serial, err := sc.RunResilience(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc.Workers = 4
	par, err := sc.RunResilience(models, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial.Points, par.Points) {
		t.Fatalf("parallel sweep diverged from serial:\nserial: %+v\nparallel: %+v",
			serial.Points, par.Points)
	}
	fs, fp := FormatResilience(serial), FormatResilience(par)
	if fs != fp {
		t.Fatalf("rendered reports diverged:\n--- serial ---\n%s--- parallel ---\n%s", fs, fp)
	}
}

// BenchmarkResilienceSweep measures the full fault-intensity sweep; with
// Workers=0 it uses every available CPU, so this is the wall-clock speedup
// benchmark for the parallel sweep harness.
func BenchmarkResilienceSweep(b *testing.B) {
	sc := tiny()
	sc.Devices = 4
	sc.InfectionLead = 20 * time.Second
	sc.DetectDuration = 20 * time.Second
	models := []TrainedModel{{Model: constModel{name: "allpos", class: 1}}}
	cfg := ResilienceConfig{Intensities: []float64{0, 0.25, 0.5, 1}}
	for i := 0; i < b.N; i++ {
		if _, err := sc.RunResilience(models, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
